// Tests for the §4-preamble preprocessor: each degenerate rule, cascades,
// the decided-zero path, and lifting solutions back to the raw space.
#include <gtest/gtest.h>

#include "core/solver_api.hpp"
#include "lp/maxmin_solver.hpp"
#include "lp/preprocess.hpp"

namespace locmm {
namespace {

TEST(Preprocess, CleanInstancePassesThrough) {
  RawInstance raw;
  raw.num_agents = 2;
  raw.constraints = {{{0, 1.0}, {1, 1.0}}};
  raw.objectives = {{{0, 1.0}, {1, 1.0}}};
  const PreprocessResult res = preprocess(raw);
  ASSERT_FALSE(res.decided());
  EXPECT_EQ(res.instance().num_agents(), 2);
  EXPECT_EQ(res.instance().num_constraints(), 1);
  EXPECT_EQ(res.instance().num_objectives(), 1);
  EXPECT_TRUE(res.unbounded_agents().empty());
}

TEST(Preprocess, DeletesIsolatedConstraints) {
  RawInstance raw;
  raw.num_agents = 2;
  raw.constraints = {{}, {{0, 1.0}, {1, 1.0}}};  // first row empty
  raw.objectives = {{{0, 1.0}, {1, 1.0}}};
  const PreprocessResult res = preprocess(raw);
  ASSERT_FALSE(res.decided());
  EXPECT_EQ(res.instance().num_constraints(), 1);
}

TEST(Preprocess, IsolatedObjectiveForcesZero) {
  RawInstance raw;
  raw.num_agents = 1;
  raw.constraints = {{{0, 1.0}}};
  raw.objectives = {{{0, 1.0}}, {}};  // second objective empty
  const PreprocessResult res = preprocess(raw);
  EXPECT_TRUE(res.decided());
  EXPECT_TRUE(res.decided_zero());
  const std::vector<double> x = res.lift({}, 0.0);
  EXPECT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(Preprocess, NonContributingAgentZeroed) {
  RawInstance raw;
  raw.num_agents = 3;  // agent 2 serves no objective
  raw.constraints = {{{0, 1.0}, {2, 1.0}}, {{1, 1.0}}};
  raw.objectives = {{{0, 1.0}, {1, 1.0}}};
  const PreprocessResult res = preprocess(raw);
  ASSERT_FALSE(res.decided());
  EXPECT_EQ(res.instance().num_agents(), 2);
  const MaxMinLpResult opt = solve_lp_optimum(res.instance());
  const std::vector<double> x = res.lift(opt.x, opt.omega);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
}

TEST(Preprocess, UnconstrainedAgentRemovesItsObjectives) {
  RawInstance raw;
  raw.num_agents = 3;  // agent 2 unconstrained, serves objective 1
  raw.constraints = {{{0, 1.0}, {1, 1.0}}};
  raw.objectives = {{{0, 2.0}, {1, 1.0}}, {{2, 0.5}}};
  const PreprocessResult res = preprocess(raw);
  ASSERT_FALSE(res.decided());
  EXPECT_EQ(res.instance().num_objectives(), 1);
  ASSERT_EQ(res.unbounded_agents().size(), 1u);
  EXPECT_EQ(res.unbounded_agents()[0], 2);

  // Lift: agent 2 must serve its removed objective at the utility level.
  const MaxMinLpResult opt = solve_lp_optimum(res.instance());
  const std::vector<double> x = res.lift(opt.x, opt.omega);
  EXPECT_GE(0.5 * x[2], opt.omega - 1e-12);

  // The lifted solution achieves the reduced utility on the raw system.
  double raw_util = std::numeric_limits<double>::infinity();
  for (const auto& row : raw.objectives) {
    double val = 0.0;
    for (const Entry& e : row) val += e.coeff * x[e.agent];
    raw_util = std::min(raw_util, val);
  }
  EXPECT_GE(raw_util, opt.omega - 1e-9);
}

TEST(Preprocess, CascadeUnboundedThenOrphaned) {
  // Agent 1 is unconstrained -> objective {1} removed -> nothing else uses
  // agent 1.  Agent 0 remains with its own objective and constraint.
  RawInstance raw;
  raw.num_agents = 2;
  raw.constraints = {{{0, 1.0}}};
  raw.objectives = {{{0, 1.0}}, {{1, 1.0}}};
  const PreprocessResult res = preprocess(raw);
  ASSERT_FALSE(res.decided());
  EXPECT_EQ(res.instance().num_agents(), 1);
  EXPECT_EQ(res.instance().num_objectives(), 1);
}

TEST(Preprocess, CascadeZeroedAgentEmptiesObjective) {
  // Agent 1 has no objective -> zeroed; objective {1}?  No: give objective
  // row containing ONLY agents that get zeroed -> optimum pinned to 0.
  RawInstance raw;
  raw.num_agents = 2;
  raw.constraints = {{{0, 1.0}, {1, 1.0}}};
  raw.objectives = {{{0, 1.0}}};
  // Agent 1 is non-contributing: zeroed.  Now make a second raw where the
  // only objective's support is agent 1:
  RawInstance raw2;
  raw2.num_agents = 2;
  raw2.constraints = {{{0, 1.0}, {1, 1.0}}};
  raw2.objectives = {{{1, 1.0}}, {{0, 1.0}}};
  // Here both agents contribute; nothing degenerates.
  EXPECT_FALSE(preprocess(raw2).decided());
  // But if agent 1's only objective also contains an unconstrained ghost…
  // keep this simple: raw is fine and reduces to one agent.
  const PreprocessResult res = preprocess(raw);
  ASSERT_FALSE(res.decided());
  EXPECT_EQ(res.instance().num_agents(), 1);
}

TEST(Preprocess, AllObjectivesUnboundedIsRejected) {
  RawInstance raw;
  raw.num_agents = 1;  // unconstrained agent, single objective
  raw.objectives = {{{0, 1.0}}};
  EXPECT_THROW(preprocess(raw), CheckError);  // optimum would be +infinity
}

TEST(Preprocess, EndToEndWithLocalSolver) {
  // A messy raw instance: empty constraint, a ghost agent, an unconstrained
  // server.  After preprocessing, the local algorithm runs and the lifted
  // solution is feasible for the live raw constraints.
  RawInstance raw;
  raw.num_agents = 5;
  raw.constraints = {
      {},                          // isolated constraint
      {{0, 1.0}, {1, 2.0}},
      {{1, 1.0}, {2, 1.0}},
      {{4, 3.0}},                  // ghost: agent 4 has no objective
  };
  raw.objectives = {
      {{0, 1.0}, {1, 1.0}},
      {{2, 3.0}},
      {{3, 0.5}},                  // agent 3 unconstrained
  };
  const PreprocessResult res = preprocess(raw);
  ASSERT_FALSE(res.decided());
  const LocalSolution sol = solve_local(res.instance(), {.R = 3});
  const std::vector<double> x = res.lift(sol.x, sol.omega);
  ASSERT_EQ(x.size(), 5u);
  EXPECT_DOUBLE_EQ(x[4], 0.0);              // ghost zeroed
  EXPECT_GE(0.5 * x[3], sol.omega - 1e-12); // server lifted
  // Raw packing rows hold.
  for (const auto& row : raw.constraints) {
    double lhs = 0.0;
    for (const Entry& e : row) lhs += e.coeff * x[e.agent];
    EXPECT_LE(lhs, 1.0 + 1e-8);
  }
}

}  // namespace
}  // namespace locmm
