// Randomized four-way differential property test over the engine quartet:
//
//   C  centralized shared-DP simulation        (core/local_solver.hpp)
//   L  per-agent local-view evaluation         (core/view_solver.hpp)
//   M  message passing with view gathering     (dist/gather.hpp)
//   S  message passing with scalar phases      (dist/streaming.hpp)
//
// All four are realisations of the same §5 algorithm, so on every instance
// they must agree to 1e-9 (they are in fact engineered to agree bitwise; the
// tolerance is the contract).  The message engines must additionally report
// round counts that depend only on R -- never on the instance size -- which
// is the paper's definition of a local algorithm.
#include <gtest/gtest.h>

#include <vector>

#include "core/local_solver.hpp"
#include "core/view_solver.hpp"
#include "dist/gather.hpp"
#include "dist/streaming.hpp"
#include "gen/generators.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

void expect_four_way_agreement(const MaxMinInstance& special, std::int32_t R) {
  ASSERT_TRUE(is_special_form(special));
  const SpecialFormInstance sf(special);
  const SpecialRunResult c = solve_special_centralized(sf, R);
  const std::vector<double> l = solve_special_local_views(special, R);
  const MessageRunResult m = solve_special_message_passing(special, R);
  const StreamingRunResult s = solve_special_streaming(special, R);

  EXPECT_EQ(m.stats.rounds, view_radius(R));
  EXPECT_EQ(s.stats.rounds, streaming_rounds(R));

  ASSERT_EQ(l.size(), c.x.size());
  ASSERT_EQ(m.x.size(), c.x.size());
  ASSERT_EQ(s.x.size(), c.x.size());
  for (std::size_t v = 0; v < c.x.size(); ++v) {
    EXPECT_NEAR(l[v], c.x[v], 1e-9) << "engine L, agent " << v << " R=" << R;
    EXPECT_NEAR(m.x[v], c.x[v], 1e-9) << "engine M, agent " << v << " R=" << R;
    EXPECT_NEAR(s.x[v], c.x[v], 1e-9) << "engine S, agent " << v << " R=" << R;
  }
}

TEST(DistEngines, FourWayOnRandomSpecial) {
  RandomSpecialParams p;
  p.num_agents = 10;
  p.delta_k = 3;
  for (std::uint64_t seed : {11, 12, 13}) {
    expect_four_way_agreement(random_special_form(p, seed), 2);
  }
  // R = 3 on a sparser family: radius-17 views of denser random instances
  // outgrow what engines L/M can gather (same limit as dp_engine_test).
  p.num_agents = 10;
  p.delta_k = 2;
  p.extra_constraints = 0.3;
  expect_four_way_agreement(random_special_form(p, 14), 3);
}

TEST(DistEngines, FourWayOnCycleViaPipeline) {
  // Cycles have |Kv| = 2, so they reach the engines through the §4 pipeline.
  for (std::uint64_t seed : {1, 2}) {
    const MaxMinInstance inst = cycle_instance(
        {.num_agents = 6, .coeff_lo = 0.5, .coeff_hi = 2.0}, seed);
    const MaxMinInstance special = to_special_form(inst).special;
    expect_four_way_agreement(special, 2);
  }
}

TEST(DistEngines, FourWayOnWheel) {
  expect_four_way_agreement(
      layered_instance({.delta_k = 3, .layers = 4, .width = 2, .twist = 1}),
      2);
  expect_four_way_agreement(
      layered_instance({.delta_k = 2, .layers = 5, .width = 1, .twist = 0}),
      3);
}

TEST(DistEngines, FourWayOnSpecialGrid) {
  for (std::uint64_t seed : {3, 4}) {
    expect_four_way_agreement(
        special_grid_instance(
            {.rows = 4, .cols = 4, .coeff_lo = 0.5, .coeff_hi = 2.0}, seed),
        2);
  }
  expect_four_way_agreement(
      special_grid_instance({.rows = 4, .cols = 5}, 5), 3);
}

TEST(DistEngines, RoundsIndependentOfInstanceSize) {
  // The locality headline, for both message engines: growing the instance
  // grows the message volume but never the round count.
  for (std::int32_t R : {2, 3}) {
    RunStats m_small, m_large, s_small, s_large;
    {
      const MaxMinInstance inst = layered_instance(
          {.delta_k = 2, .layers = 6, .width = 1, .twist = 0});
      m_small = solve_special_message_passing(inst, R).stats;
      s_small = solve_special_streaming(inst, R).stats;
    }
    {
      const MaxMinInstance inst = layered_instance(
          {.delta_k = 2, .layers = 12, .width = 1, .twist = 0});
      m_large = solve_special_message_passing(inst, R).stats;
      s_large = solve_special_streaming(inst, R).stats;
    }
    EXPECT_EQ(m_small.rounds, m_large.rounds) << "R=" << R;
    EXPECT_EQ(s_small.rounds, s_large.rounds) << "R=" << R;
    EXPECT_GT(m_large.messages, m_small.messages) << "R=" << R;
    EXPECT_GT(s_large.messages, s_small.messages) << "R=" << R;
    // The +2-rounds-for-smaller-messages trade (engine S vs engine M).
    EXPECT_EQ(s_large.rounds, m_large.rounds + 2) << "R=" << R;
  }
}

}  // namespace
}  // namespace locmm
