// Tests for the cross-agent view canonicalization layer:
//
//   * hash soundness -- equal canonical hash implies structurally_equal on
//     views generated from the workload families (randomized);
//   * WL soundness -- agents grouped into one view-equivalence class by
//     colour refinement really have structurally equal views;
//   * differential -- cached/canonicalized solve_special_local_views agrees
//     bit-for-bit with the uncanonicalized per-agent path and with engine C
//     to 1e-9, for both engine-L implementations;
//   * determinism -- results are bitwise identical across threads {1, 4, 0}
//     and across cold/warm ViewClassCache solves;
//   * class collapse -- on vertex-transitive instances TSearchStats proves
//     evaluations-performed == distinct-class count, and the class count is
//     a small constant independent of the instance size.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/local_solver.hpp"
#include "core/view_class_cache.hpp"
#include "core/view_solver.hpp"
#include "dynamic/incremental_solver.hpp"
#include "gen/generators.hpp"
#include "graph/color_refine.hpp"
#include "graph/comm_graph.hpp"
#include "graph/view_tree.hpp"
#include "lp/delta.hpp"
#include "support/prng.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(std::memcmp(&a[v], &b[v], sizeof(double)), 0)
        << what << ": agent " << v << " " << a[v] << " vs " << b[v];
  }
}

TEST(CanonicalHash, EqualHashImpliesStructurallyEqual) {
  // Bucket every agent view of several instances by canonical hash and
  // verify each bucket is structurally uniform.  Mixing instance families
  // and seeds also exercises cross-instance collisions.
  std::map<std::uint64_t, ViewTree> bucket_head;
  std::int64_t verified = 0;
  auto check_instance = [&](const MaxMinInstance& inst, std::int32_t depth) {
    const CommGraph g(inst);
    for (AgentId v = 0; v < inst.num_agents(); ++v) {
      ViewTree view = ViewTree::build(g, g.agent_node(v), depth);
      auto [it, inserted] =
          bucket_head.emplace(view.canonical_hash(), std::move(view));
      if (!inserted) {
        EXPECT_TRUE(ViewTree::structurally_equal(
            it->second, ViewTree::build(g, g.agent_node(v), depth)))
            << "hash " << it->first << " agent " << v;
        ++verified;
      }
    }
  };
  for (std::uint64_t seed : {1, 2, 3}) {
    check_instance(cycle_instance({.num_agents = 10}, seed), 5);
    check_instance(
        cycle_instance({.num_agents = 8, .coeff_lo = 0.5, .coeff_hi = 2.0},
                       seed),
        5);
    check_instance(grid_instance({.rows = 4, .cols = 5}, seed), 5);
    RandomSpecialParams p;
    p.num_agents = 14;
    check_instance(random_special_form(p, seed), 5);
  }
  // The symmetric families must actually produce hash-equal pairs,
  // otherwise this test verifies nothing.
  EXPECT_GT(verified, 0);
}

TEST(CanonicalHash, StructurallyEqualViewsShareHash) {
  // The deterministic direction: symmetric cycle agents (see
  // ViewTree.SameViewForSymmetricRoots) must collide.
  const MaxMinInstance inst = cycle_instance({.num_agents = 10}, 3);
  const CommGraph g(inst);
  const ViewTree a = ViewTree::build(g, g.agent_node(3), 5);
  const ViewTree b = ViewTree::build(g, g.agent_node(7), 5);
  ASSERT_TRUE(ViewTree::structurally_equal(a, b));
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  EXPECT_EQ(a.secondary_hash(), b.secondary_hash());
}

TEST(ColorRefine, ClassesAreStructurallyUniform) {
  // Every agent must land in the class of an agent with a structurally
  // equal view -- refinement may only merge true duplicates.
  for (std::uint64_t seed : {1, 7}) {
    const MaxMinInstance inst = cycle_instance({.num_agents = 12}, seed);
    const CommGraph g(inst);
    const std::int32_t depth = 6;
    const ViewClasses classes = refine_view_classes(g, depth);
    ASSERT_EQ(classes.class_of.size(),
              static_cast<std::size_t>(inst.num_agents()));
    for (AgentId v = 0; v < inst.num_agents(); ++v) {
      const AgentId rep =
          classes.representative[static_cast<std::size_t>(
              classes.class_of[static_cast<std::size_t>(v)])];
      const ViewTree a = ViewTree::build(g, g.agent_node(v), depth);
      const ViewTree b = ViewTree::build(g, g.agent_node(rep), depth);
      EXPECT_TRUE(ViewTree::structurally_equal(a, b))
          << "agent " << v << " grouped with " << rep;
    }
  }
}

TEST(ColorRefine, DistinguishesCoefficients) {
  // Random coefficients break the cycle's symmetry: refinement must not
  // collapse agents whose views differ in a coefficient.
  const MaxMinInstance inst = cycle_instance(
      {.num_agents = 8, .coeff_lo = 0.5, .coeff_hi = 2.0}, 11);
  const CommGraph g(inst);
  const ViewClasses classes = refine_view_classes(g, 6);
  EXPECT_GT(classes.num_classes(), 1);
  std::int32_t members = 0;
  for (std::int32_t s : classes.class_size) members += s;
  EXPECT_EQ(members, inst.num_agents());
}

TEST(ColorRefine, StabilizesEarlyOnSymmetricInstances) {
  // Agent 0's wrap-around asymmetry splits one hop further per round, so on
  // a small cycle the partition saturates long before a radius-29 request
  // and the class-count bookkeeping stops there.  The hash streams still run
  // all 29 rounds: the colours must fingerprint the full depth-29 unfolding
  // to be sound as cross-instance cache keys (ViewClassCache::color_key).
  const MaxMinInstance inst = cycle_instance({.num_agents = 12}, 3);
  const CommGraph g(inst);
  const ViewClasses classes = refine_view_classes(g, 29);
  EXPECT_TRUE(classes.stabilized);
  EXPECT_LT(classes.stable_rounds, 29);
  EXPECT_EQ(classes.rounds, 29);
  EXPECT_LE(classes.num_classes(), inst.num_agents());

  // Economy mode (full_depth = false, the cache-less solver path) stops the
  // hash sweeps at stabilization and must produce the identical partition.
  const ViewClasses economy = refine_view_classes(g, 29, false);
  EXPECT_TRUE(economy.stabilized);
  EXPECT_EQ(economy.rounds, economy.stable_rounds);
  EXPECT_EQ(economy.stable_rounds, classes.stable_rounds);
  EXPECT_EQ(economy.class_of, classes.class_of);
  EXPECT_EQ(economy.representative, classes.representative);
}

TEST(ColorRefine, ClassCountIndependentOfInstanceSize) {
  // The wrap-around splits reach at most `depth` hops, so growing a
  // symmetric instance leaves the class inventory unchanged: the property
  // that makes whole-instance solves scale with classes, not agents.
  const std::int32_t depth = 5;  // = view_radius(2)
  std::int32_t counts[2];
  std::size_t i = 0;
  for (std::int32_t objectives : {40, 80}) {
    const MaxMinInstance inst = circulant_special_instance(
        {.num_objectives = objectives, .delta_k = 3, .stride = 5}, 1);
    counts[i++] = refine_view_classes(CommGraph(inst), depth).num_classes();
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_LE(counts[0], 32);
}

// Cycle of `n` agents in §5 special form whose constraint coefficients
// follow `pattern` around the cycle: constraint i_j spans {a_j, a_{j+1}}
// with coefficient pattern[2j mod |pattern|] at a_j and
// pattern[2j+1 mod |pattern|] at a_{j+1}; objectives are unit blocks
// {a_{2k}, a_{2k+1}}.  With 2n % |pattern| == 0 the pattern closes
// seamlessly, so two instances sharing a pattern prefix are locally
// identical around an agent until the patterns diverge -- the raw material
// for cross-instance aliasing regressions.
MaxMinInstance patterned_cycle(std::int32_t n,
                               const std::vector<double>& pattern) {
  const auto m = static_cast<std::int32_t>(pattern.size());
  LOCMM_CHECK(n % 2 == 0 && (2 * n) % m == 0);
  InstanceBuilder b(n);
  for (std::int32_t j = 0; j < n; ++j) {
    b.add_constraint(
        {{j, pattern[static_cast<std::size_t>((2 * j) % m)]},
         {(j + 1) % n, pattern[static_cast<std::size_t>((2 * j + 1) % m)]}});
  }
  for (std::int32_t j = 0; j < n; j += 2) {
    b.add_objective({{j, 1.0}, {j + 1, 1.0}});
  }
  return b.build();
}

TEST(ColorRefine, ColorsFingerprintFullDepthAcrossInstances) {
  // Regression for the colour-keyed cross-solve fast path: the colours are
  // instance-independent cache keys (ViewClassCache::color_key), so they
  // must fingerprint the FULL requested depth even when the partition
  // stabilizes earlier.  Here agent 1 of the 1,2,1,3-patterned cycle and
  // agent 1 of the 1,2,1,3,1,4-patterned cycle see identical depth-2 views
  // (the patterns share a prefix around them) but different depth-D views
  // (the next coefficient out is 3 vs 4), so their full-depth colours must
  // separate regardless of where either instance's bookkeeping stopped.
  const std::int32_t depth = 29;
  const MaxMinInstance a = patterned_cycle(12, {1, 2, 1, 3});
  const MaxMinInstance b = patterned_cycle(12, {1, 2, 1, 3, 1, 4});
  const CommGraph ga(a);
  const CommGraph gb(b);
  // Pin the premise: shallow views coincide, deep views differ.
  EXPECT_TRUE(ViewTree::structurally_equal(
      ViewTree::build(ga, ga.agent_node(1), 2),
      ViewTree::build(gb, gb.agent_node(1), 2)));
  EXPECT_FALSE(ViewTree::structurally_equal(
      ViewTree::build(ga, ga.agent_node(1), depth),
      ViewTree::build(gb, gb.agent_node(1), depth)));
  const ViewClasses ca = refine_view_classes(ga, depth);
  const ViewClasses cb = refine_view_classes(gb, depth);
  // The hash streams never stop early...
  EXPECT_EQ(ca.rounds, depth);
  EXPECT_EQ(cb.rounds, depth);
  // ...even though the class-count bookkeeping does.
  EXPECT_TRUE(ca.stabilized);
  EXPECT_TRUE(cb.stabilized);
  EXPECT_LT(ca.stable_rounds, depth);
  EXPECT_LT(cb.stable_rounds, depth);
  const auto ia = static_cast<std::size_t>(ca.class_of[1]);
  const auto ib = static_cast<std::size_t>(cb.class_of[1]);
  EXPECT_FALSE(ca.color_a[ia] == cb.color_a[ib] &&
               ca.color_b[ia] == cb.color_b[ib])
      << "agents with different depth-" << depth
      << " views share a full-depth colour";
}

TEST(ViewCache, SharedCacheAcrossInstancesStaysExact) {
  // End-to-end version of the colour-key regression: solve instance A, then
  // solve its shallow twin B warm through the same cross-solve cache.  Any
  // colour aliasing would silently hand B outputs evaluated on A's views.
  const MaxMinInstance a = patterned_cycle(24, {1, 2, 1, 3});
  const MaxMinInstance b = patterned_cycle(24, {1, 2, 1, 3, 1, 4});
  TSearchOptions uncached;
  uncached.canonicalize_views = false;
  const std::vector<double> base_a =
      solve_special_local_views(a, 2, uncached);
  const std::vector<double> base_b =
      solve_special_local_views(b, 2, uncached);
  // The premise: the twins genuinely produce different outputs.
  EXPECT_NE(base_a, base_b);

  ViewClassCache cache;
  TSearchOptions cached;
  cached.view_cache = &cache;
  const std::vector<double> xa = solve_special_local_views(a, 2, cached);
  const std::vector<double> xb = solve_special_local_views(b, 2, cached);
  expect_bitwise_equal(base_a, xa, "instance A through the shared cache");
  expect_bitwise_equal(base_b, xb, "instance B warm through the shared cache");
}

TEST(ViewCache, RejectsTruncatedViews) {
  // Two views truncated at the same node budget can be indistinguishable --
  // identical surviving node arrays -- even though the full views differ
  // beyond the cut.  No local identity can separate them, so the cache
  // must refuse truncated views outright.
  const MaxMinInstance a = patterned_cycle(12, {1, 2, 1, 3});
  const MaxMinInstance b = patterned_cycle(12, {1, 2, 1, 3, 1, 4});
  const CommGraph ga(a);
  const CommGraph gb(b);
  // Budget 7 cuts both builds at the depth-2/depth-3 boundary, where the
  // instances are still identical around agent 1.
  ViewTree ta;
  ViewTree tb;
  EXPECT_FALSE(ViewTree::try_build_into(ga, ga.agent_node(1), 5, ta, 7));
  EXPECT_FALSE(ViewTree::try_build_into(gb, gb.agent_node(1), 5, tb, 7));
  ASSERT_TRUE(ta.truncated());
  ASSERT_TRUE(tb.truncated());
  EXPECT_FALSE(ViewTree::structurally_equal(
      ViewTree::build(ga, ga.agent_node(1), 5),
      ViewTree::build(gb, gb.agent_node(1), 5)));
  EXPECT_TRUE(ViewTree::structurally_equal(ta, tb));
  EXPECT_EQ(ta.canonical_hash(), tb.canonical_hash());
  ViewClassCache cache;
  double x = 0.0;
  EXPECT_THROW(cache.lookup(ta, 2, 0, &x), CheckError);
  EXPECT_THROW(cache.insert(ta, 2, 0, 1.0), CheckError);
}

void expect_cached_matches_uncached(const MaxMinInstance& inst,
                                    std::int32_t R, ViewEngine engine) {
  TSearchOptions uncached;
  uncached.engine = engine;
  uncached.canonicalize_views = false;
  const std::vector<double> base =
      solve_special_local_views(inst, R, uncached);

  ViewClassCache cache;
  TSearchOptions cached;
  cached.engine = engine;
  cached.view_cache = &cache;
  const std::vector<double> canon =
      solve_special_local_views(inst, R, cached);
  expect_bitwise_equal(base, canon, "canonicalized vs per-agent");

  // Warm solve: every class must come from the cache, bit-identically.
  const std::vector<double> warm = solve_special_local_views(inst, R, cached);
  expect_bitwise_equal(base, warm, "warm cache vs per-agent");
  EXPECT_GT(cache.hits(), 0);

  const SpecialFormInstance sf(inst);
  const SpecialRunResult c = solve_special_centralized(sf, R);
  for (std::size_t v = 0; v < base.size(); ++v) {
    EXPECT_NEAR(canon[v], c.x[v], 1e-9) << "agent " << v << " R=" << R;
  }
}

TEST(ViewCache, CachedMatchesUncachedCycle) {
  // General cycles go through the §4 pipeline first (solve_special_local_
  // views requires special form); the wheel is the natively special cycle.
  for (std::uint64_t seed : {1, 2}) {
    const MaxMinInstance inst = cycle_instance(
        {.num_agents = 9, .coeff_lo = 0.5, .coeff_hi = 2.0}, seed);
    expect_cached_matches_uncached(to_special_form(inst).special, 2,
                                   ViewEngine::kMemoizedDp);
    expect_cached_matches_uncached(to_special_form(inst).special, 2,
                                   ViewEngine::kNaive);
  }
  expect_cached_matches_uncached(
      layered_instance({.delta_k = 2, .layers = 6, .width = 1, .twist = 0}),
      3, ViewEngine::kMemoizedDp);
}

TEST(ViewCache, CachedMatchesUncachedGrid) {
  const MaxMinInstance pipeline_grid = grid_instance(
      {.rows = 4, .cols = 4, .coeff_lo = 0.5, .coeff_hi = 2.0}, 3);
  expect_cached_matches_uncached(to_special_form(pipeline_grid).special, 2,
                                 ViewEngine::kMemoizedDp);
  const MaxMinInstance special_grid = special_grid_instance(
      {.rows = 4, .cols = 4, .coeff_lo = 0.5, .coeff_hi = 2.0}, 9);
  expect_cached_matches_uncached(special_grid, 2, ViewEngine::kMemoizedDp);
  expect_cached_matches_uncached(special_grid, 3, ViewEngine::kMemoizedDp);
}

TEST(ViewCache, CachedMatchesUncachedRegularAndRandom) {
  const MaxMinInstance reg = regular_special_instance(
      {.num_objectives = 4, .delta_k = 3, .constraints_per_agent = 2,
       .coeff_lo = 0.5, .coeff_hi = 2.0},
      6);
  expect_cached_matches_uncached(reg, 2, ViewEngine::kMemoizedDp);
  expect_cached_matches_uncached(reg, 3, ViewEngine::kMemoizedDp);

  const MaxMinInstance circ = circulant_special_instance(
      {.num_objectives = 6, .delta_k = 3, .stride = 4, .coeff_lo = 0.5,
       .coeff_hi = 2.0},
      8);
  expect_cached_matches_uncached(circ, 2, ViewEngine::kMemoizedDp);

  RandomSpecialParams p;
  p.num_agents = 12;
  for (std::uint64_t seed : {11, 12}) {
    expect_cached_matches_uncached(random_special_form(p, seed), 2,
                                   ViewEngine::kMemoizedDp);
  }
}

TEST(ViewCache, ThreadCountDoesNotChangeResults) {
  const MaxMinInstance inst = special_grid_instance(
      {.rows = 6, .cols = 5, .coeff_lo = 0.5, .coeff_hi = 2.0}, 17);
  TSearchOptions opt;  // canonicalize_views default-on
  const std::vector<double> serial =
      solve_special_local_views(inst, 2, opt, 1);
  const std::vector<double> four = solve_special_local_views(inst, 2, opt, 4);
  const std::vector<double> all = solve_special_local_views(inst, 2, opt, 0);
  expect_bitwise_equal(serial, four, "threads 1 vs 4");
  expect_bitwise_equal(serial, all, "threads 1 vs 0");

  // Same determinism with a shared cache under contention.
  ViewClassCache cache;
  opt.view_cache = &cache;
  const std::vector<double> cold = solve_special_local_views(inst, 2, opt, 0);
  const std::vector<double> warm = solve_special_local_views(inst, 2, opt, 4);
  expect_bitwise_equal(serial, cold, "cold shared cache");
  expect_bitwise_equal(serial, warm, "warm shared cache");
}

// On vertex-transitive instances the pipeline must run exactly one
// evaluation per class, and the class count must be a small constant
// independent of the instance size.  Returns the class count so callers can
// assert size-independence.
std::int64_t expect_class_collapse(const MaxMinInstance& inst, std::int32_t R,
                                   std::int64_t max_classes) {
  TSearchStats stats;
  TSearchOptions opt;
  opt.stats = &stats;
  const std::vector<double> x = solve_special_local_views(inst, R, opt);
  EXPECT_EQ(x.size(), static_cast<std::size_t>(inst.num_agents()));
  EXPECT_EQ(stats.view_evals.load(), stats.view_classes.load());
  EXPECT_LE(stats.view_classes.load(), max_classes);
  EXPECT_EQ(stats.evals_avoided.load(),
            inst.num_agents() - stats.view_evals.load());
  return stats.view_classes.load();
}

TEST(ViewCache, ClassCollapseOnVertexTransitiveInstances) {
  // Wrap-around port orders split views within `depth` hops of the seam
  // (see ViewTree.SameViewForSymmetricRoots), hence "small constant" rather
  // than exactly 1 -- but growing the instance must leave the class count
  // unchanged while agents double.
  // Cycle (wheel): natively special 4L-cycle.
  const std::int64_t wheel16 = expect_class_collapse(
      layered_instance({.delta_k = 2, .layers = 16, .width = 1, .twist = 0}),
      2, 24);
  const std::int64_t wheel32 = expect_class_collapse(
      layered_instance({.delta_k = 2, .layers = 32, .width = 1, .twist = 0}),
      2, 24);
  EXPECT_EQ(wheel16, wheel32);
  // Torus grid.
  const std::int64_t grid8 = expect_class_collapse(
      special_grid_instance({.rows = 8, .cols = 8}, 3), 2, 64);
  const std::int64_t grid16 = expect_class_collapse(
      special_grid_instance({.rows = 8, .cols = 16}, 3), 2, 64);
  EXPECT_EQ(grid8, grid16);
  // 3-regular circulant.
  const std::int64_t circ40 = expect_class_collapse(
      circulant_special_instance(
          {.num_objectives = 40, .delta_k = 3, .stride = 5}, 3),
      2, 48);
  const std::int64_t circ80 = expect_class_collapse(
      circulant_special_instance(
          {.num_objectives = 80, .delta_k = 3, .stride = 5}, 3),
      2, 48);
  EXPECT_EQ(circ40, circ80);
}

TEST(ViewCache, StatsReportStageTimings) {
  TSearchStats stats;
  TSearchOptions opt;
  opt.stats = &stats;
  solve_special_local_views(special_grid_instance({.rows = 6, .cols = 5}, 2),
                            2, opt);
  EXPECT_GT(stats.view_classes.load(), 0);
  // Stage timers are cumulative microseconds; they must at least be
  // written (>= 0 trivially, but class_eval covers real work).
  EXPECT_GE(stats.refine_us.load(), 0);
  EXPECT_GT(stats.class_eval_us.load(), 0);
  EXPECT_GE(stats.broadcast_us.load(), 0);
}

TEST(ViewClassCacheUnit, HitRequiresMatchingKey) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 10}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(3), 5);
  ViewClassCache cache;
  const std::uint64_t fp = ViewClassCache::options_fingerprint({});
  double x = 0.0;
  EXPECT_FALSE(cache.lookup(view, 2, fp, &x));
  cache.insert(view, 2, fp, 0.25);
  EXPECT_TRUE(cache.lookup(view, 2, fp, &x));
  EXPECT_EQ(x, 0.25);
  // Different R or different options miss.
  EXPECT_FALSE(cache.lookup(view, 3, fp, &x));
  TSearchOptions other;
  other.tol = 1e-6;
  EXPECT_FALSE(
      cache.lookup(view, 2, ViewClassCache::options_fingerprint(other), &x));
  // A structurally different view misses even at the same R.
  const ViewTree deeper = ViewTree::build(g, g.agent_node(3), 6);
  EXPECT_FALSE(cache.lookup(deeper, 2, fp, &x));
  EXPECT_EQ(cache.entries(), 1);
  cache.clear();
  EXPECT_FALSE(cache.lookup(view, 2, fp, &x));
  EXPECT_EQ(cache.entries(), 0);
}

TEST(ViewClassCacheUnit, FingerprintSeparatesSubQuantumCoefficients) {
  // The canonical hash quantizes coefficients (~2^-40 relative), so two
  // views whose coefficients differ by 1e-15 share it -- the exact arbiter
  // must still separate them.  On the fingerprint-only path (no stored
  // representative) that arbiter is the secondary stream, which folds the
  // EXACT coefficient bits: a regression here would hand one instance's
  // output to the other.
  auto tiny = [](double coeff) {
    InstanceBuilder b(2);
    b.add_constraint({{0, coeff}, {1, 1.0}});
    b.add_objective({{0, 1.0}, {1, 1.0}});
    return b.build();
  };
  const MaxMinInstance ia = tiny(1.0);
  const MaxMinInstance ib = tiny(1.0 + 1e-15);
  const CommGraph ga(ia), gb(ib);
  const ViewTree va = ViewTree::build(ga, ga.agent_node(0), 5);
  const ViewTree vb = ViewTree::build(gb, gb.agent_node(0), 5);
  ASSERT_FALSE(ViewTree::structurally_equal(va, vb));
  // Sub-quantum difference: canonical hashes collide by design...
  EXPECT_EQ(va.canonical_hash(), vb.canonical_hash());
  // ...and the exact-coefficient stream separates them.
  EXPECT_NE(va.secondary_hash(), vb.secondary_hash());

  ViewClassCache::Config cfg;
  cfg.verify_node_limit = 0;  // force the fingerprint-only path
  ViewClassCache cache(cfg);
  const std::uint64_t fp = ViewClassCache::options_fingerprint({});
  cache.insert(va, 2, fp, 1.0);
  double x = 0.0;
  EXPECT_TRUE(cache.lookup(va, 2, fp, &x));
  EXPECT_FALSE(cache.lookup(vb, 2, fp, &x));  // must NOT merge
}

TEST(ViewClassCacheUnit, ColorKeyedFastPath) {
  ViewClassCache cache;
  const std::uint64_t k1 = ViewClassCache::color_key(1, 2, 5, 2, 7);
  double x = 0.0;
  EXPECT_FALSE(cache.lookup_color(k1, &x));
  cache.insert_color(k1, 0.75);
  EXPECT_TRUE(cache.lookup_color(k1, &x));
  EXPECT_EQ(x, 0.75);
  // Any differing component -- colours, rounds, R, fingerprint -- misses.
  EXPECT_FALSE(cache.lookup_color(ViewClassCache::color_key(1, 3, 5, 2, 7),
                                  &x));
  EXPECT_FALSE(cache.lookup_color(ViewClassCache::color_key(1, 2, 6, 2, 7),
                                  &x));
  EXPECT_FALSE(cache.lookup_color(ViewClassCache::color_key(1, 2, 5, 3, 7),
                                  &x));
  EXPECT_FALSE(cache.lookup_color(ViewClassCache::color_key(1, 2, 5, 2, 8),
                                  &x));
  cache.clear();
  EXPECT_FALSE(cache.lookup_color(k1, &x));
}

TEST(ViewCache, WarmSolveSkipsViewBuilds) {
  // A warm solve must answer every class from the colour-keyed fast path:
  // zero evaluations, hits == classes, still bit-identical.
  const MaxMinInstance inst = special_grid_instance(
      {.rows = 6, .cols = 5, .coeff_lo = 0.5, .coeff_hi = 2.0}, 21);
  ViewClassCache cache;
  TSearchOptions opt;
  opt.view_cache = &cache;
  const std::vector<double> cold = solve_special_local_views(inst, 2, opt);
  const std::int64_t hits_after_cold = cache.hits();

  TSearchStats stats;
  opt.stats = &stats;
  const std::vector<double> warm = solve_special_local_views(inst, 2, opt);
  expect_bitwise_equal(cold, warm, "warm vs cold");
  EXPECT_EQ(stats.view_evals.load(), 0);
  EXPECT_EQ(stats.class_cache_hits.load(), stats.view_classes.load());
  EXPECT_EQ(cache.hits() - hits_after_cold, stats.view_classes.load());
}

TEST(ViewClassCacheUnit, StructuralCopyAnswersLikeTheOriginal) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 10}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(3), 5);
  const ViewTree copy = view.structural_copy();
  EXPECT_TRUE(ViewTree::structurally_equal(view, copy));
  EXPECT_EQ(view.canonical_hash(), copy.canonical_hash());
  EXPECT_EQ(view.secondary_hash(), copy.secondary_hash());
  EXPECT_EQ(view.size(), copy.size());
}

TEST(ViewClassCacheEviction, EpochSweepDropsStaleEntries) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 10}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(3), 5);
  ViewClassCache::Config cfg;
  cfg.max_entry_age = 2;
  ViewClassCache cache(cfg);
  const std::uint64_t fp = ViewClassCache::options_fingerprint({});
  cache.insert(view, 2, fp, 1.5);
  cache.insert_color(ViewClassCache::color_key(7, 9, 5, 2, fp), 2.5);
  ASSERT_EQ(cache.entries(), 1);
  ASSERT_EQ(cache.color_entries(), 1);
  ASSERT_GT(cache.resident_nodes(), 0);

  // Age 2: sweeps run on every 2nd epoch and drop entries unhit for more
  // than 2 epochs, so an unhit entry survives 2-4 epochs.
  cache.begin_epoch();  // epoch 1: below the age threshold, no sweep
  cache.begin_epoch();  // epoch 2: sweep, cutoff 0 -> both survive
  EXPECT_EQ(cache.entries() + cache.color_entries(), 2);
  EXPECT_EQ(cache.evictions(), 0);
  double x = 0.0;
  EXPECT_TRUE(cache.lookup(view, 2, fp, &x));  // refreshes the hash entry
  cache.begin_epoch();  // epoch 3: off-cadence, no sweep
  cache.begin_epoch();  // epoch 4: sweep, cutoff 2
  EXPECT_EQ(cache.entries(), 1);        // hit at epoch 2 -> survives
  EXPECT_EQ(cache.color_entries(), 0);  // never hit -> swept
  EXPECT_EQ(cache.evictions(), 1);
  cache.begin_epoch();  // epoch 5
  cache.begin_epoch();  // epoch 6: sweep, cutoff 4 -> last entry goes
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.evictions(), 2);
  EXPECT_EQ(cache.resident_nodes(), 0);  // budget released with the copy
}

TEST(ViewClassCacheEviction, LongEditStreamStaysBoundedAndBitIdentical) {
  // ROADMAP "cross-solve cache eviction": every edit mints a handful of new
  // colour keys, so a keep-everything cache grows without bound across a
  // long edit stream.  With epoch eviction (IncrementalSolver::apply
  // advances the epoch once per update) the entry count plateaus, while
  // every output stays bit-identical to a from-scratch solve -- eviction
  // can only cost re-evaluations, never correctness.
  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = 10}, 2);
  const std::int32_t R = 2;
  const int steps = 30;

  ViewClassCache::Config evict_cfg;
  evict_cfg.max_entry_age = 3;
  ViewClassCache evicting(evict_cfg);
  ViewClassCache unbounded;  // the PR-4 behaviour: keep everything

  IncrementalSolver::Options opt_e, opt_u;
  opt_e.R = opt_u.R = R;
  opt_e.cache = &evicting;
  opt_u.cache = &unbounded;
  IncrementalSolver inc_e(grid, opt_e);
  IncrementalSolver inc_u(grid, opt_u);

  MaxMinInstance cur = grid;
  Rng rng(97);
  std::int64_t peak_bounded = 0;
  for (int step = 0; step < steps; ++step) {
    InstanceDelta delta;
    const auto v = static_cast<AgentId>(
        rng.below(static_cast<std::uint64_t>(grid.num_agents())));
    const auto arcs = inc_e.special().arcs(v);
    const auto& arc = arcs[rng.below(arcs.size())];
    delta.set_constraint_coeff(arc.id, v, rng.uniform(0.25, 4.0));
    inc_e.apply(delta);
    inc_u.apply(delta);
    cur.apply(delta);
    peak_bounded = std::max(
        peak_bounded, evicting.entries() + evicting.color_entries());
    expect_bitwise_equal(inc_e.x(), inc_u.x(),
                         "evicting vs keep-everything solver");
  }
  expect_bitwise_equal(inc_e.x(), solve_special_local_views(cur, R),
                       "evicting solver vs from-scratch");
  EXPECT_GT(evicting.evictions(), 0);
  // The stream mints classes monotonically into the unbounded cache; the
  // evicting one's live set stays a strict subset of that growth.
  EXPECT_LT(peak_bounded,
            unbounded.entries() + unbounded.color_entries());
}

TEST(ViewClassCacheUnit, FingerprintOnlyEntriesAboveVerifyLimit) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 10}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(3), 5);
  ViewClassCache::Config cfg;
  cfg.verify_node_limit = 4;  // smaller than any real view
  ViewClassCache cache(cfg);
  const std::uint64_t fp = ViewClassCache::options_fingerprint({});
  cache.insert(view, 2, fp, 1.5);
  EXPECT_EQ(cache.resident_nodes(), 0);  // no representative copy kept
  double x = 0.0;
  EXPECT_TRUE(cache.lookup(view, 2, fp, &x));
  EXPECT_EQ(x, 1.5);
  // The structurally different deeper view still misses (size + hashes).
  const ViewTree deeper = ViewTree::build(g, g.agent_node(3), 6);
  EXPECT_FALSE(cache.lookup(deeper, 2, fp, &x));
}

}  // namespace
}  // namespace locmm
