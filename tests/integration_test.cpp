// Cross-module integration: the full Theorem-1 pipeline against certified
// LP optima on every family, dynamic-update locality, relabelling
// invariance, and serialization through the solver.
#include <gtest/gtest.h>

#include <sstream>

#include "core/local_solver.hpp"
#include "core/safe_baseline.hpp"
#include "core/solver_api.hpp"
#include "core/view_solver.hpp"
#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"
#include "lp/io.hpp"
#include "lp/maxmin_solver.hpp"

namespace locmm {
namespace {

TEST(Integration, LocalBeatsOrMatchesSafeOnAllFamilies) {
  // The headline improvement of the paper: the local algorithm's a-priori
  // guarantee beats the safe algorithm's delta_I for large R, and in
  // measurement the local algorithm should not lose to safe by more than
  // the shifting slack.
  const std::vector<MaxMinInstance> instances = {
      random_general({.num_agents = 18, .delta_i = 3, .delta_k = 3}, 3),
      cycle_instance({.num_agents = 10}, 4),
      sensor_instance({.num_sensors = 10, .num_sinks = 4}, 5),
      tree_instance({.max_agents = 16}, 6),
  };
  for (const MaxMinInstance& inst : instances) {
    const MaxMinLpResult opt = solve_lp_optimum(inst);
    ASSERT_EQ(opt.status, LpStatus::kOptimal);
    const LocalSolution local = solve_local(inst, {.R = 6});
    const std::vector<double> safe = solve_safe(inst);
    EXPECT_TRUE(inst.is_feasible(local.x, 1e-8));
    EXPECT_TRUE(inst.is_feasible(safe, 1e-9));
    EXPECT_GE(local.omega * local.guarantee, opt.omega - 1e-7);
    // a-priori: guarantee < delta_I once R > delta_K/(delta_K-1)+1.
    const auto s = inst.stats();
    if (s.delta_i >= 2 && s.delta_k >= 2) {
      EXPECT_LT(local.guarantee, static_cast<double>(s.delta_i) + 1e-12);
    }
  }
}

TEST(Integration, DynamicUpdateAffectsOnlyTheLocalBall) {
  // Fault tolerance / dynamic locality (§1.3): changing one coefficient
  // changes outputs only within the local horizon D of the touched edge.
  const MaxMinInstance base = layered_instance(
      {.delta_k = 2, .layers = 10, .width = 1, .twist = 0});
  const std::int32_t R = 2;
  const SpecialFormInstance sf_base(base);
  const SpecialRunResult before = solve_special_centralized(sf_base, R);

  // Rebuild with constraint 0's first coefficient perturbed.
  InstanceBuilder b(base.num_agents());
  for (ConstraintId i = 0; i < base.num_constraints(); ++i) {
    auto row = base.constraint_row(i);
    std::vector<Entry> out(row.begin(), row.end());
    if (i == 0) out[0].coeff = 1.7;
    b.add_constraint(std::move(out));
  }
  for (ObjectiveId k = 0; k < base.num_objectives(); ++k) {
    auto row = base.objective_row(k);
    b.add_objective(std::vector<Entry>(row.begin(), row.end()));
  }
  const MaxMinInstance bumped = b.build();
  const SpecialFormInstance sf_bumped(bumped);
  const SpecialRunResult after = solve_special_centralized(sf_bumped, R);

  const CommGraph g(base);
  const auto dist =
      g.bfs_distances(g.constraint_node(0), g.num_nodes() > 0 ? 1000 : 0);
  const std::int32_t D = view_radius(R);
  int changed = 0;
  for (AgentId v = 0; v < base.num_agents(); ++v) {
    if (std::abs(before.x[v] - after.x[v]) > 1e-12) {
      ++changed;
      EXPECT_LE(dist[g.agent_node(v)], D + 1)
          << "agent " << v << " changed outside the local horizon";
    }
  }
  EXPECT_GT(changed, 0) << "perturbation had no effect at all";
  EXPECT_LT(changed, base.num_agents()) << "perturbation was global";
}

TEST(Integration, RelabellingInvariance) {
  // A local algorithm in the port-numbering model cannot depend on agent
  // identities: relabelled instances yield identically relabelled outputs.
  const MaxMinInstance inst = random_special_form({.num_agents = 16}, 13);
  const std::int32_t n = inst.num_agents();
  std::vector<AgentId> perm(static_cast<std::size_t>(n));
  for (AgentId v = 0; v < n; ++v)
    perm[static_cast<std::size_t>(v)] = (v * 7 + 3) % n;  // gcd(7, n) = 1
  const MaxMinInstance rel = relabel_agents(inst, perm);

  const SpecialFormInstance sf_a(inst);
  const SpecialFormInstance sf_b(rel);
  const SpecialRunResult a = solve_special_centralized(sf_a, 3);
  const SpecialRunResult b = solve_special_centralized(sf_b, 3);
  for (AgentId v = 0; v < n; ++v) {
    EXPECT_NEAR(a.x[static_cast<std::size_t>(v)],
                b.x[static_cast<std::size_t>(perm[v])], 1e-12);
  }
}

TEST(Integration, SolveAfterSerializationRoundTrip) {
  const MaxMinInstance inst =
      bandwidth_instance({.num_routers = 10, .num_customers = 5}, 17);
  std::stringstream ss;
  write_instance(ss, inst);
  const MaxMinInstance back = read_instance(ss);
  const LocalSolution a = solve_local(inst, {.R = 3});
  const LocalSolution b = solve_local(back, {.R = 3});
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t v = 0; v < a.x.size(); ++v)
    EXPECT_DOUBLE_EQ(a.x[v], b.x[v]);
}

TEST(Integration, DisconnectedComponentsSolvedIndependently) {
  // Two disjoint pair-instances glued into one: per-component outputs must
  // equal the per-instance outputs.
  InstanceBuilder b(4);
  b.add_constraint({{0, 1.0}, {1, 2.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  b.add_constraint({{2, 3.0}, {3, 1.0}});
  b.add_objective({{2, 1.0}, {3, 1.0}});
  const MaxMinInstance joint = b.build();
  EXPECT_FALSE(joint.connected());

  InstanceBuilder b1(2);
  b1.add_constraint({{0, 1.0}, {1, 2.0}});
  b1.add_objective({{0, 1.0}, {1, 1.0}});
  InstanceBuilder b2(2);
  b2.add_constraint({{0, 3.0}, {1, 1.0}});
  b2.add_objective({{0, 1.0}, {1, 1.0}});

  const SpecialRunResult joint_run =
      solve_special_centralized(SpecialFormInstance(joint), 3);
  const SpecialRunResult run1 =
      solve_special_centralized(SpecialFormInstance(b1.build()), 3);
  const SpecialRunResult run2 =
      solve_special_centralized(SpecialFormInstance(b2.build()), 3);
  EXPECT_DOUBLE_EQ(joint_run.x[0], run1.x[0]);
  EXPECT_DOUBLE_EQ(joint_run.x[1], run1.x[1]);
  EXPECT_DOUBLE_EQ(joint_run.x[2], run2.x[0]);
  EXPECT_DOUBLE_EQ(joint_run.x[3], run2.x[1]);
}

TEST(Integration, GuaranteeTracksMeasuredRatioAcrossR) {
  const MaxMinInstance inst =
      random_general({.num_agents = 14, .delta_i = 3, .delta_k = 3}, 23);
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);
  for (std::int32_t R : {2, 3, 4, 6, 8}) {
    const LocalSolution sol = solve_local(inst, {.R = R});
    const double measured = opt.omega / std::max(sol.omega, 1e-300);
    EXPECT_LE(measured, sol.guarantee + 1e-7) << "R=" << R;
  }
}

}  // namespace
}  // namespace locmm
