// Tests for truncated unfoldings: structure on trees vs cycles, port-order
// iteration, structural equality, blow-up guard.
#include <gtest/gtest.h>

#include <vector>

#include "gen/generators.hpp"
#include "graph/view_tree.hpp"

namespace locmm {
namespace {

TEST(ViewTree, TreeGraphUnfoldsToItself) {
  // path_instance's communication graph is a tree: a deep enough view is
  // the whole graph, each node exactly once.
  const MaxMinInstance inst = path_instance(8);
  const CommGraph g(inst);
  const NodeId total = g.num_nodes();
  const ViewTree view = ViewTree::build(g, g.agent_node(0), 100);
  EXPECT_EQ(static_cast<NodeId>(view.size()), total);
  // Every origin appears exactly once.
  std::vector<int> seen(static_cast<std::size_t>(total), 0);
  for (std::int32_t i = 0; i < view.size(); ++i)
    ++seen[static_cast<std::size_t>(view.node(i).origin)];
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(ViewTree, CycleViewBranchingRecurrence) {
  // Cycle agents have degree 4 (two constraints, two objectives);
  // constraints/objectives have degree 2.  So in the unfolding, level
  // counts follow: root agent -> 4 mid nodes; every mid node -> 1 agent;
  // every non-root agent -> 3 mid nodes.
  const MaxMinInstance inst = cycle_instance({.num_agents = 12}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(0), 6);
  // Levels: 1 (agent), 4, 4, 12, 12, 36, 36 -> 105 nodes.
  EXPECT_EQ(view.size(), 1 + 4 + 4 + 12 + 12 + 36 + 36);
  EXPECT_EQ(view.node(0).degree, 4);
  EXPECT_EQ(view.node(0).constraint_degree, 2);
}

TEST(ViewTree, CycleViewExceedingGirthRepeatsOrigins) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 4}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(0), 9);
  // Unfolding is infinite: more view nodes than graph nodes.
  EXPECT_GT(static_cast<NodeId>(view.size()), g.num_nodes());
}

TEST(ViewTree, DepthZeroIsJustTheRoot) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 6}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(2), 0);
  EXPECT_EQ(view.size(), 1);
  EXPECT_EQ(view.node(0).origin, g.agent_node(2));
  EXPECT_FALSE(view.expanded(0));
}

TEST(ViewTree, ParentPortPointsBack) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 8}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(0), 4);
  for (std::int32_t i = 1; i < view.size(); ++i) {
    const ViewNode& n = view.node(i);
    const ViewNode& p = view.node(n.parent);
    // In G, the neighbour of n.origin at port n.parent_port is p.origin.
    EXPECT_EQ(g.neighbors(n.origin)[n.parent_port].to, p.origin);
  }
}

TEST(ViewTree, ForEachNeighborInterleavesParentAtItsPort) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 8}, 3);
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(0), 4);
  for (std::int32_t i = 0; i < view.size(); ++i) {
    if (!view.expanded(i)) continue;
    std::vector<std::int32_t> ports;
    view.for_each_neighbor(i, [&](std::int32_t port, std::int32_t nbr,
                                  double coeff) {
      ports.push_back(port);
      // The neighbour in G at this port is the neighbour's origin, with the
      // same coefficient.
      const HalfEdge& e = g.neighbors(view.node(i).origin)[port];
      EXPECT_EQ(e.to, view.node(nbr).origin);
      EXPECT_DOUBLE_EQ(e.coeff, coeff);
    });
    ASSERT_EQ(static_cast<std::int32_t>(ports.size()),
              g.degree(view.node(i).origin));
    for (std::size_t j = 0; j < ports.size(); ++j)
      EXPECT_EQ(ports[j], static_cast<std::int32_t>(j));
  }
}

TEST(ViewTree, SameViewForSymmetricRoots) {
  // Interior agents of a unit-coefficient cycle have isomorphic views with
  // identical port numbering.  (Agent 0 is excluded: its wrap-around
  // constraint is inserted in a different port position, which a
  // port-numbering algorithm legitimately observes.)
  const MaxMinInstance inst = cycle_instance({.num_agents = 10}, 3);
  const CommGraph g(inst);
  const ViewTree a = ViewTree::build(g, g.agent_node(3), 5);
  const ViewTree b = ViewTree::build(g, g.agent_node(7), 5);
  EXPECT_TRUE(ViewTree::same_view(a, b));
}

TEST(ViewTree, SameViewDetectsCoefficientDifference) {
  CycleParams p{.num_agents = 10, .coeff_lo = 0.5, .coeff_hi = 2.0};
  const MaxMinInstance inst = cycle_instance(p, 3);
  const CommGraph g(inst);
  const ViewTree a = ViewTree::build(g, g.agent_node(0), 3);
  const ViewTree b = ViewTree::build(g, g.agent_node(5), 3);
  EXPECT_FALSE(ViewTree::same_view(a, b));  // random coefficients differ
}

TEST(ViewTree, MaxNodesGuardTrips) {
  const MaxMinInstance inst = grid_instance({.rows = 6, .cols = 6}, 3);
  const CommGraph g(inst);
  EXPECT_THROW(ViewTree::build(g, g.agent_node(0), 30, /*max_nodes=*/100),
               CheckError);
}

TEST(ViewTree, MaxNodesGuardNamesTheCulprit) {
  // The overflow diagnostic must identify the offending root, requested
  // radius and node budget, so a failing whole-instance solve is
  // actionable without a debugger.
  const MaxMinInstance inst = grid_instance({.rows = 6, .cols = 6}, 3);
  const CommGraph g(inst);
  try {
    ViewTree::build(g, g.agent_node(7), 30, /*max_nodes=*/100);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("root 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("depth 30"), std::string::npos) << msg;
    EXPECT_NE(msg.find("max_nodes 100"), std::string::npos) << msg;
  }
}

TEST(ViewTree, TryBuildIntoRecordsTruncation) {
  const MaxMinInstance inst = grid_instance({.rows = 6, .cols = 6}, 3);
  const CommGraph g(inst);
  ViewTree view;
  EXPECT_FALSE(
      ViewTree::try_build_into(g, g.agent_node(0), 30, view, 100));
  EXPECT_TRUE(view.truncated());
  EXPECT_LE(view.size(), 100);
  // The truncated tree stays internally consistent: every recorded child
  // points back at its parent, and unexpanded nodes read as frontier.
  for (std::int32_t i = 1; i < view.size(); ++i) {
    EXPECT_EQ(g.neighbors(view.node(i).origin)[view.node(i).parent_port].to,
              view.node(view.node(i).parent).origin);
  }
  // A successful try_build clears the flag (arena reuse).
  EXPECT_TRUE(ViewTree::try_build_into(g, g.agent_node(0), 2, view));
  EXPECT_FALSE(view.truncated());
}

TEST(ViewTree, TruncatedNeighborCacheStaysInBounds) {
  // Regression: a truncation cut can strand a node whose parent_port lies
  // beyond its materialised children (the parent edge's port was never
  // reached); the adjacency cache used to walk that node's child list past
  // its end.  Sweep budgets on a degree-3 instance so cuts land at every
  // phase of the BFS, and check every cached slot is a valid node with the
  // parent edge always present.
  const MaxMinInstance inst = circulant_special_instance(
      {.num_objectives = 6, .delta_k = 3, .stride = 5}, 1);
  const CommGraph g(inst);
  ViewTree t;
  for (std::int64_t budget = 1; budget <= 40; ++budget) {
    ViewTree::try_build_into(g, g.agent_node(0), 6, t, budget);
    for (std::int32_t i = 0; i < t.size(); ++i) {
      const auto ids = t.neighbor_ids(i);
      const auto coeffs = t.neighbor_coeffs(i);
      ASSERT_EQ(ids.size(), coeffs.size());
      bool saw_parent = t.node(i).parent < 0;
      for (const std::int32_t id : ids) {
        ASSERT_GE(id, 0) << "node " << i << " budget " << budget;
        ASSERT_LT(id, t.size()) << "node " << i << " budget " << budget;
        if (id == t.node(i).parent) saw_parent = true;
      }
      // The parent edge is how the node was reached, so it must be
      // materialised even when its port lies beyond the truncation cut.
      EXPECT_TRUE(saw_parent) << "node " << i << " budget " << budget;
    }
  }
}

TEST(ViewTree, ByteSizeScalesWithNodes) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 8}, 3);
  const CommGraph g(inst);
  const ViewTree small = ViewTree::build(g, g.agent_node(0), 2);
  const ViewTree large = ViewTree::build(g, g.agent_node(0), 6);
  EXPECT_GT(large.byte_size(), small.byte_size());
  EXPECT_EQ(small.byte_size(), static_cast<std::int64_t>(small.size()) * 13);
}

}  // namespace
}  // namespace locmm
