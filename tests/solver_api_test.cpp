// Tests for the end-to-end public API: Theorem 1's contract on arbitrary
// instances, diagnostics consistency, guarantee formulas, engine choice.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "core/solver_api.hpp"
#include "core/view_solver.hpp"
#include "dist/streaming.hpp"
#include "gen/generators.hpp"
#include "lp/delta.hpp"
#include "lp/maxmin_solver.hpp"
#include "support/prng.hpp"

namespace locmm {
namespace {

TEST(Guarantees, Formulas) {
  EXPECT_DOUBLE_EQ(special_form_guarantee(2, 2), 2.0);      // 2*(1/2)*2
  EXPECT_DOUBLE_EQ(special_form_guarantee(3, 3), 2.0);      // 2*(2/3)*(3/2)
  EXPECT_DOUBLE_EQ(theorem1_guarantee(2, 2, 2), 2.0);
  EXPECT_DOUBLE_EQ(theorem1_guarantee(3, 3, 3), 3.0);
  EXPECT_NEAR(theorem1_guarantee(3, 3, 101), 3.0 * (2.0 / 3.0) * 1.01, 1e-12);
  // As R grows the guarantee approaches the threshold delta_I (1 - 1/delta_K).
  EXPECT_GT(theorem1_guarantee(4, 3, 4), theorem1_guarantee(4, 3, 16));
  EXPECT_GT(theorem1_guarantee(4, 3, 1000), 4.0 * (2.0 / 3.0));
}

void expect_theorem1_contract(const MaxMinInstance& inst,
                              const LocalParams& params) {
  const LocalSolution sol = solve_local(inst, params);
  EXPECT_TRUE(inst.is_feasible(sol.x, 1e-8))
      << "violation " << inst.violation(sol.x);
  EXPECT_NEAR(sol.omega, inst.utility(sol.x), 1e-12);

  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);
  EXPECT_GE(sol.omega * sol.guarantee, opt.omega - 1e-7)
      << "measured ratio " << opt.omega / sol.omega << " > guarantee "
      << sol.guarantee;
  // t_min upper-bounds the special-form optimum, which dominates the
  // original optimum.
  EXPECT_GE(sol.t_min_special, opt.omega - 1e-7);
  // Diagnostics.
  EXPECT_GE(sol.ratio_factor, 1.0);
  EXPECT_EQ(sol.view_radius, 12 * (params.R - 2) + 5);
}

class ApiOnFamilies : public ::testing::TestWithParam<int> {};

TEST_P(ApiOnFamilies, Theorem1Contract) {
  LocalParams params;
  params.R = 3;
  switch (GetParam()) {
    case 0:
      expect_theorem1_contract(random_general({.num_agents = 16}, 5), params);
      break;
    case 1:
      expect_theorem1_contract(cycle_instance({.num_agents = 8}, 7), params);
      break;
    case 2:
      expect_theorem1_contract(path_instance(8), params);
      break;
    case 3:
      expect_theorem1_contract(
          sensor_instance({.num_sensors = 8, .num_sinks = 4}, 8), params);
      break;
    case 4:
      expect_theorem1_contract(
          bandwidth_instance({.num_routers = 8, .num_customers = 4}, 9),
          params);
      break;
    default:
      expect_theorem1_contract(tree_instance({.max_agents = 14}, 10), params);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ApiOnFamilies, ::testing::Range(0, 6));

TEST(Api, OutputSizesMatchOriginal) {
  const MaxMinInstance inst = path_instance(8);
  const LocalSolution sol = solve_local(inst, {.R = 2});
  EXPECT_EQ(static_cast<std::int32_t>(sol.x.size()), inst.num_agents());
  // The special instance is larger (gadgets + copies).
  EXPECT_GT(sol.special_stats.agents, inst.num_agents());
}

TEST(Api, LocalViewEngineMatchesCentralized) {
  const MaxMinInstance inst = random_general({.num_agents = 10,
                                              .delta_i = 2,
                                              .delta_k = 2},
                                             21);
  LocalParams c{.R = 2, .engine = LocalEngine::kCentralized};
  LocalParams l{.R = 2, .engine = LocalEngine::kLocalViews};
  const LocalSolution sc = solve_local(inst, c);
  const LocalSolution sl = solve_local(inst, l);
  ASSERT_EQ(sc.x.size(), sl.x.size());
  for (std::size_t v = 0; v < sc.x.size(); ++v)
    EXPECT_NEAR(sc.x[v], sl.x[v], 1e-12);
}

TEST(Api, DistributedEnginesMatchCentralized) {
  const MaxMinInstance inst = random_general({.num_agents = 10,
                                              .delta_i = 2,
                                              .delta_k = 2},
                                             22);
  const LocalSolution sc =
      solve_local(inst, {.R = 2, .engine = LocalEngine::kCentralized});
  const LocalSolution sm =
      solve_local(inst, {.R = 2, .engine = LocalEngine::kMessagePassing});
  const LocalSolution ss =
      solve_local(inst, {.R = 2, .engine = LocalEngine::kStreaming});
  ASSERT_EQ(sm.x.size(), sc.x.size());
  ASSERT_EQ(ss.x.size(), sc.x.size());
  for (std::size_t v = 0; v < sc.x.size(); ++v) {
    EXPECT_NEAR(sm.x[v], sc.x[v], 1e-12) << "engine M, agent " << v;
    EXPECT_NEAR(ss.x[v], sc.x[v], 1e-12) << "engine S, agent " << v;
  }
  EXPECT_NEAR(sm.t_min_special, sc.t_min_special, 1e-12);
  EXPECT_NEAR(ss.t_min_special, sc.t_min_special, 1e-12);
}

TEST(Api, DistributedEnginesReportSchedulerStats) {
  const MaxMinInstance inst = path_instance(8);
  const LocalSolution sc =
      solve_local(inst, {.R = 2, .engine = LocalEngine::kCentralized});
  const LocalSolution sm =
      solve_local(inst, {.R = 2, .engine = LocalEngine::kMessagePassing});
  const LocalSolution ss =
      solve_local(inst, {.R = 2, .engine = LocalEngine::kStreaming});
  // Engine M gathers for the full local horizon; engine S pays two extra
  // rounds for exponentially smaller messages.
  EXPECT_EQ(sm.net_stats.rounds, view_radius(2));
  EXPECT_EQ(ss.net_stats.rounds, streaming_rounds(2));
  EXPECT_EQ(ss.net_stats.rounds, sm.net_stats.rounds + 2);
  EXPECT_GT(sm.net_stats.messages, 0);
  EXPECT_GT(ss.net_stats.messages, 0);
  EXPECT_GT(sm.net_stats.bytes, 0);
  EXPECT_GT(sm.net_stats.max_message_bytes, 0);
  EXPECT_LE(ss.net_stats.max_message_bytes, sm.net_stats.max_message_bytes);
  // The simulated engines never touch the network substrate.
  EXPECT_EQ(sc.net_stats.rounds, 0);
  EXPECT_EQ(sc.net_stats.messages, 0);
}

TEST(Api, ResolverCarriesDistributedEnginesWithNetStats) {
  // LocalResolver honours LocalParams::engine: the distributed engines
  // re-solve by SyncNetwork replay and report the fresh-vs-replayed message
  // split of the dynamic path (§1.3) through LocalSolution::net_stats.
  const MaxMinInstance inst = path_instance(10);
  for (const LocalEngine engine :
       {LocalEngine::kMessagePassing, LocalEngine::kStreaming}) {
    LocalParams params;
    params.R = 2;
    params.engine = engine;
    LocalResolver resolver(inst, params);
    // Cold: a full recorded run, all fresh.
    const RunStats cold = resolver.solution().net_stats;
    EXPECT_EQ(cold.rounds, engine == LocalEngine::kMessagePassing
                               ? view_radius(2)
                               : streaming_rounds(2));
    EXPECT_GT(cold.fresh_messages, 0);
    EXPECT_EQ(cold.replayed_messages, 0);

    // A coefficient edit takes the delta fast path: ball-sized fresh
    // traffic, the rest replayed from the recorded history.
    const Entry hit = inst.constraint_row(2)[0];
    InstanceDelta delta;
    delta.set_constraint_coeff(2, hit.agent, hit.coeff * 1.5);
    resolver.resolve(delta);
    EXPECT_TRUE(resolver.last_resolve_was_delta());
    const RunStats warm = resolver.solution().net_stats;
    EXPECT_GT(warm.fresh_messages, 0);
    EXPECT_GT(warm.replayed_messages, 0);
    EXPECT_LT(warm.fresh_messages, cold.fresh_messages);

    // And the solution matches a from-scratch solve_local with the same
    // engine on the edited instance.
    MaxMinInstance cur = inst;
    cur.apply(delta);
    const LocalSolution oracle = solve_local(cur, params);
    ASSERT_EQ(resolver.solution().x.size(), oracle.x.size());
    for (std::size_t v = 0; v < oracle.x.size(); ++v) {
      EXPECT_EQ(std::memcmp(&resolver.solution().x[v], &oracle.x[v],
                            sizeof(double)),
                0)
          << (engine == LocalEngine::kMessagePassing ? "engine M" : "engine S")
          << ", agent " << v;
    }
  }
}

TEST(Api, LargerRNeverHurtsMuch) {
  const MaxMinInstance inst = random_general({.num_agents = 20}, 31);
  const LocalSolution r2 = solve_local(inst, {.R = 2});
  const LocalSolution r5 = solve_local(inst, {.R = 5});
  // The guarantee tightens with R...
  EXPECT_LT(r5.guarantee, r2.guarantee);
  // ...and both satisfy it (checked in the families test); additionally the
  // R = 5 output should not collapse versus R = 2.
  EXPECT_GT(r5.omega, 0.0);
  EXPECT_GT(r2.omega, 0.0);
}

TEST(Api, RejectsInvalidR) {
  const MaxMinInstance inst = path_instance(4);
  EXPECT_THROW(solve_local(inst, {.R = 1}), CheckError);
}

// --- LocalResolver strong exception safety --------------------------------
//
// resolve() promises that a rejected delta leaves the resolver bitwise
// untouched: instance, solution, diagnostics and the delta-fast-path flag.
// These tests diff the complete observable state against an identically
// constructed control resolver after every rejected-delta shape, then prove
// the resolver is still fully functional by applying a valid edit and
// matching a scratch solve bitwise.

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool vectors_bit_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void expect_bitwise_instance(const MaxMinInstance& a, const MaxMinInstance& b,
                             const char* ctx) {
  ASSERT_EQ(a.num_agents(), b.num_agents()) << ctx;
  ASSERT_EQ(a.num_constraints(), b.num_constraints()) << ctx;
  ASSERT_EQ(a.num_objectives(), b.num_objectives()) << ctx;
  auto rows_equal = [&](auto ra, auto rb) {
    if (ra.size() != rb.size()) return false;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      if (ra[j].agent != rb[j].agent || !bits_equal(ra[j].coeff, rb[j].coeff))
        return false;
    }
    return true;
  };
  for (ConstraintId i = 0; i < a.num_constraints(); ++i) {
    EXPECT_TRUE(rows_equal(a.constraint_row(i), b.constraint_row(i)))
        << ctx << ": constraint " << i;
  }
  for (ObjectiveId k = 0; k < a.num_objectives(); ++k) {
    EXPECT_TRUE(rows_equal(a.objective_row(k), b.objective_row(k)))
        << ctx << ": objective " << k;
  }
}

void expect_bitwise_resolver_state(const LocalResolver& a,
                                   const LocalResolver& b, const char* ctx) {
  expect_bitwise_instance(a.instance(), b.instance(), ctx);
  const LocalSolution& sa = a.solution();
  const LocalSolution& sb = b.solution();
  EXPECT_TRUE(vectors_bit_equal(sa.x, sb.x)) << ctx;
  EXPECT_TRUE(vectors_bit_equal(sa.x_special, sb.x_special)) << ctx;
  EXPECT_TRUE(bits_equal(sa.omega, sb.omega)) << ctx;
  EXPECT_TRUE(bits_equal(sa.omega_special, sb.omega_special)) << ctx;
  EXPECT_TRUE(bits_equal(sa.t_min_special, sb.t_min_special)) << ctx;
  EXPECT_TRUE(bits_equal(sa.ratio_factor, sb.ratio_factor)) << ctx;
  EXPECT_TRUE(bits_equal(sa.guarantee, sb.guarantee)) << ctx;
  EXPECT_EQ(sa.view_radius, sb.view_radius) << ctx;
  EXPECT_EQ(a.last_resolve_was_delta(), b.last_resolve_was_delta()) << ctx;
}

TEST(LocalResolverTransactional, RejectedDeltasLeaveStateUntouched) {
  const MaxMinInstance inst = grid_instance({.rows = 3, .cols = 4}, 6);
  const LocalParams params{.R = 2, .engine = LocalEngine::kLocalViews};
  LocalResolver resolver(inst, params);
  const LocalResolver control(inst, params);

  const AgentId a0 = inst.constraint_row(0)[0].agent;
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();

  // An agent absent from constraint 0, for the absent-edit shapes.
  AgentId absent = -1;
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    bool in_row = false;
    for (const Entry& e : inst.constraint_row(0)) in_row |= (e.agent == v);
    if (!in_row) {
      absent = v;
      break;
    }
  }
  ASSERT_GE(absent, 0);

  struct Shape {
    const char* name;
    InstanceDelta delta;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"constraint row out of range",
                    InstanceDelta{}.set_constraint_coeff(
                        inst.num_constraints() + 3, a0, 1.0)});
  shapes.push_back({"objective row out of range",
                    InstanceDelta{}.set_objective_coeff(
                        inst.num_objectives(), a0, 1.0)});
  shapes.push_back(
      {"agent out of range",
       InstanceDelta{}.set_constraint_coeff(0, inst.num_agents() + 1, 1.0)});
  shapes.push_back({"negative agent id",
                    InstanceDelta{}.set_objective_coeff(0, -1, 1.0)});
  shapes.push_back({"negative coefficient",
                    InstanceDelta{}.set_constraint_coeff(0, a0, -1.0)});
  shapes.push_back(
      {"nan coefficient", InstanceDelta{}.set_constraint_coeff(0, a0, kNan)});
  shapes.push_back({"infinite coefficient on add",
                    InstanceDelta{}.add_to_constraint(0, absent, kInf)});
  shapes.push_back({"coefficient edit on absent entry",
                    InstanceDelta{}.set_constraint_coeff(0, absent, 1.0)});
  shapes.push_back({"remove of absent entry",
                    InstanceDelta{}.remove_from_constraint(0, absent)});
  shapes.push_back({"duplicate add",
                    InstanceDelta{}.add_to_constraint(0, a0, 1.0)});
  {
    // Emptying a row entirely: every member of constraint 0 removed.
    InstanceDelta d;
    for (const Entry& e : inst.constraint_row(0)) {
      d.remove_from_constraint(0, e.agent);
    }
    shapes.push_back({"row emptied", d});
  }
  shapes.push_back(
      {"valid edit plus bad edit rejects the whole batch",
       InstanceDelta{}
           .set_constraint_coeff(0, a0, 1.25)
           .set_constraint_coeff(inst.num_constraints(), a0, 1.0)});

  for (const Shape& s : shapes) {
    EXPECT_THROW(resolver.resolve(s.delta), CheckError) << s.name;
    expect_bitwise_resolver_state(resolver, control, s.name);
  }

  // The resolver is still fully functional: a valid coefficient edit takes
  // the delta fast path and lands bitwise on the scratch solve of the
  // edited instance.
  InstanceDelta good;
  good.set_constraint_coeff(0, a0, 1.375);
  const LocalSolution& sol = resolver.resolve(good);
  EXPECT_TRUE(resolver.last_resolve_was_delta());
  const LocalSolution scratch = solve_local(resolver.instance(), params);
  EXPECT_TRUE(vectors_bit_equal(sol.x, scratch.x));
  EXPECT_TRUE(bits_equal(sol.omega, scratch.omega));
}

TEST(LocalResolverTransactional, RejectionsAreStateless) {
  // A rejection must not leak into subsequent resolves: interleave rejected
  // and valid edits and check the survivor sequence alone determines the
  // final state, by replaying it on a fresh resolver.
  const MaxMinInstance inst = random_general({.num_agents = 10}, 17);
  const LocalParams params{.R = 2, .engine = LocalEngine::kLocalViews};
  LocalResolver noisy(inst, params);
  LocalResolver clean(inst, params);

  const AgentId a0 = inst.constraint_row(0)[0].agent;
  for (int step = 0; step < 4; ++step) {
    InstanceDelta bad;
    bad.set_constraint_coeff(inst.num_constraints() + step, a0, 1.0);
    EXPECT_THROW(noisy.resolve(bad), CheckError);

    InstanceDelta good;
    good.set_constraint_coeff(0, a0, 1.0 + 0.125 * (step + 1));
    noisy.resolve(good);
    clean.resolve(good);
    expect_bitwise_resolver_state(noisy, clean, "after step");
  }
}

// A structural churn batch against a natively-special instance: half
// remove-then-re-add coefficient refreshes, half |Vi| = 2 rewires.
InstanceDelta structural_churn(const MaxMinInstance& inst, Rng& rng) {
  InstanceDelta delta;
  if (!rng.bernoulli(0.5)) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto i = static_cast<ConstraintId>(
          rng.below(static_cast<std::uint64_t>(inst.num_constraints())));
      const auto r = inst.constraint_row(i);
      const AgentId lose = r[rng.below(2)].agent;
      if (inst.agent_constraints(lose).size() < 2) continue;
      const auto gain = static_cast<AgentId>(
          rng.below(static_cast<std::uint64_t>(inst.num_agents())));
      if (gain == r[0].agent || gain == r[1].agent) continue;
      delta.remove_from_constraint(i, lose);
      delta.add_to_constraint(i, gain, rng.uniform(0.5, 2.0));
      return delta;
    }
  }
  const auto i = static_cast<ConstraintId>(
      rng.below(static_cast<std::uint64_t>(inst.num_constraints())));
  // Refresh the FIRST of the two entries: the re-add appends at the row
  // end, so the agent sequence provably changes and the differential
  // oracle cannot express the edit as a coefficient diff.  (Refreshing the
  // last entry is structurally a no-op -- the diff path would absorb it.)
  const AgentId v = inst.constraint_row(i)[0].agent;
  delta.remove_from_constraint(i, v);
  delta.add_to_constraint(i, v, rng.uniform(0.5, 2.0));
  return delta;
}

TEST(LocalResolver, StructuralFastPathMatchesDifferentialOracle) {
  // Two resolvers over the same churn script: one on the id-map fast path
  // (map_structural_deltas, the default), one with the knob off -- the
  // differential oracle, which must re-initialise on every structural edit
  // because diff_instances cannot express a sparsity change.  The solutions
  // must agree bitwise after every step regardless of the path taken.
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 6}, 2);
  LocalParams fast;
  fast.R = 2;
  fast.engine = LocalEngine::kLocalViews;
  LocalParams oracle = fast;
  oracle.map_structural_deltas = false;

  LocalResolver a(grid, fast);
  LocalResolver b(grid, oracle);
  MaxMinInstance cur = grid;
  Rng rng(4242);
  for (int step = 0; step < 4; ++step) {
    const InstanceDelta d = structural_churn(cur, rng);
    a.resolve(d);
    b.resolve(d);
    cur.apply(d);

    EXPECT_TRUE(a.last_resolve_was_delta()) << "step " << step;
    EXPECT_FALSE(b.last_resolve_was_delta()) << "step " << step;

    expect_bitwise_instance(a.instance(), b.instance(), "fast vs oracle");
    const LocalSolution& sa = a.solution();
    const LocalSolution& sb = b.solution();
    EXPECT_TRUE(vectors_bit_equal(sa.x, sb.x)) << "step " << step;
    EXPECT_TRUE(vectors_bit_equal(sa.x_special, sb.x_special))
        << "step " << step;
    EXPECT_TRUE(bits_equal(sa.omega, sb.omega)) << "step " << step;
    EXPECT_TRUE(bits_equal(sa.omega_special, sb.omega_special))
        << "step " << step;
    EXPECT_TRUE(bits_equal(sa.guarantee, sb.guarantee)) << "step " << step;
  }
}

TEST(Api, ZeroOptimumInstanceHandled) {
  // An objective whose agent is capped at 0 utility cannot happen with
  // positive coefficients, but a *tiny* optimum is fine: scale constraints
  // hard against one objective.
  InstanceBuilder b(2);
  b.add_constraint({{0, 1e6}, {1, 1.0}});
  b.add_objective({{0, 1.0}});
  b.add_objective({{1, 1.0}});
  const MaxMinInstance inst = b.build();
  const LocalSolution sol = solve_local(inst, {.R = 3});
  EXPECT_TRUE(inst.is_feasible(sol.x, 1e-9));
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  EXPECT_GE(sol.omega * sol.guarantee, opt.omega - 1e-9);
}

}  // namespace
}  // namespace locmm
