// Tests for engine L: the per-agent local-view evaluation must reproduce
// engine C exactly (position-independence of t/s/g), and the view radius
// must be exactly sufficient (CHECK-guarded frontier).
#include <gtest/gtest.h>

#include "core/local_solver.hpp"
#include "core/view_solver.hpp"
#include "gen/generators.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

void expect_engines_agree(const MaxMinInstance& special, std::int32_t R) {
  const SpecialFormInstance sf(special);
  const SpecialRunResult c = solve_special_centralized(sf, R);
  const std::vector<double> l = solve_special_local_views(special, R);
  ASSERT_EQ(c.x.size(), l.size());
  for (std::size_t v = 0; v < l.size(); ++v) {
    EXPECT_NEAR(c.x[v], l[v], 1e-12) << "agent " << v << " R=" << R;
  }
}

TEST(ViewRadius, Formula) {
  EXPECT_EQ(view_radius(2), 5);    // r = 0
  EXPECT_EQ(view_radius(3), 17);   // r = 1
  EXPECT_EQ(view_radius(4), 29);   // r = 2
}

TEST(ViewSolver, PairInstance) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0}, {1, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  const MaxMinInstance inst = b.build();
  expect_engines_agree(inst, 2);
  expect_engines_agree(inst, 3);
  expect_engines_agree(inst, 4);
}

TEST(ViewSolver, RandomSpecialSmallR2) {
  RandomSpecialParams p;
  p.num_agents = 14;
  p.delta_k = 3;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    expect_engines_agree(random_special_form(p, seed), 2);
  }
}

TEST(ViewSolver, RandomSpecialSmallR3) {
  RandomSpecialParams p;
  p.num_agents = 10;
  p.delta_k = 2;
  p.extra_constraints = 0.3;
  for (std::uint64_t seed : {7, 8}) {
    expect_engines_agree(random_special_form(p, seed), 3);
  }
}

TEST(ViewSolver, LayeredWheel) {
  // Width-1, delta_k = 2 wheels are 4L-cycles: views stay linear in D.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 6, .width = 1, .twist = 0});
  expect_engines_agree(inst, 2);
  expect_engines_agree(inst, 3);
  expect_engines_agree(inst, 4);
}

TEST(ViewSolver, LayeredWiderWheel) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 3, .layers = 4, .width = 2, .twist = 1});
  expect_engines_agree(inst, 2);
}

TEST(ViewSolver, SymmetricAgentsGetEqualValues) {
  // On a unit-coefficient special-form cycle every agent's view is
  // isomorphic, so a port-numbering algorithm must output equal values.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 5, .width = 1, .twist = 0});
  const std::vector<double> x = solve_special_local_views(inst, 3);
  for (std::size_t v = 1; v < x.size(); ++v) EXPECT_NEAR(x[0], x[v], 1e-12);
}

TEST(ViewSolver, UndersizedViewFailsLoudly) {
  // view_radius() is a worst-case bound, so a view one hop short can still
  // suffice on favourable instances; a view at half the radius cannot --
  // the smoothing BFS alone needs t values whose recursions overrun it.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 6, .width = 1, .twist = 0});
  const CommGraph g(inst);
  const ViewTree view =
      ViewTree::build(g, g.agent_node(0), view_radius(3) / 2);
  EXPECT_THROW(solve_agent_from_view(view, 3), CheckError);
}

TEST(ViewSolver, ThreadedMatchesSerial) {
  RandomSpecialParams p;
  p.num_agents = 12;
  const MaxMinInstance inst = random_special_form(p, 9);
  const std::vector<double> serial =
      solve_special_local_views(inst, 2, {}, 1);
  const std::vector<double> threaded =
      solve_special_local_views(inst, 2, {}, 4);
  for (std::size_t v = 0; v < serial.size(); ++v)
    EXPECT_DOUBLE_EQ(serial[v], threaded[v]);
}

}  // namespace
}  // namespace locmm
