// Tests for engine S (streaming): output equality with engine C, the round
// schedule, and the message-size advantage over engine M's view gathering.
#include <gtest/gtest.h>

#include "core/local_solver.hpp"
#include "dist/gather.hpp"
#include "dist/streaming.hpp"
#include "gen/generators.hpp"

namespace locmm {
namespace {

void expect_s_equals_c(const MaxMinInstance& special, std::int32_t R) {
  const SpecialFormInstance sf(special);
  const SpecialRunResult c = solve_special_centralized(sf, R);
  const StreamingRunResult s = solve_special_streaming(special, R);
  EXPECT_EQ(s.stats.rounds, streaming_rounds(R));
  ASSERT_EQ(s.x.size(), c.x.size());
  for (std::size_t v = 0; v < s.x.size(); ++v)
    EXPECT_NEAR(s.x[v], c.x[v], 1e-12) << "agent " << v << " R=" << R;
}

TEST(Streaming, RoundSchedule) {
  EXPECT_EQ(streaming_rounds(2), 7);    // 3 + 2 + 2
  EXPECT_EQ(streaming_rounds(3), 19);   // 7 + 6 + 6
  EXPECT_EQ(streaming_rounds(4), 31);
}

TEST(Streaming, MatchesEngineCOnPair) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0}, {1, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  const MaxMinInstance inst = b.build();
  expect_s_equals_c(inst, 2);
  expect_s_equals_c(inst, 3);
  expect_s_equals_c(inst, 4);
}

TEST(Streaming, MatchesEngineCOnRandomSpecial) {
  RandomSpecialParams p;
  p.num_agents = 16;
  p.delta_k = 3;
  for (std::uint64_t seed : {1, 2, 3}) {
    expect_s_equals_c(random_special_form(p, seed), 2);
  }
}

TEST(Streaming, MatchesEngineCOnRandomSpecialR3) {
  RandomSpecialParams p;
  p.num_agents = 12;
  p.delta_k = 2;
  p.extra_constraints = 0.3;
  expect_s_equals_c(random_special_form(p, 7), 3);
}

TEST(Streaming, MatchesEngineCOnWheel) {
  expect_s_equals_c(layered_instance(
                        {.delta_k = 3, .layers = 4, .width = 2, .twist = 1}),
                    2);
  expect_s_equals_c(layered_instance(
                        {.delta_k = 2, .layers = 6, .width = 1, .twist = 0}),
                    4);
}

TEST(Streaming, SmallerMaxMessageThanGather) {
  // Engine S's largest message is a radius-(4r+3) view; engine M ships
  // radius-(12r+4) views.  For R >= 3 the gap is decisive.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 12, .width = 1, .twist = 0});
  const StreamingRunResult s = solve_special_streaming(inst, 3);
  const MessageRunResult m = solve_special_message_passing(inst, 3);
  EXPECT_LT(s.stats.max_message_bytes, m.stats.max_message_bytes);
  EXPECT_LT(s.stats.bytes, m.stats.bytes);
  // ... at the cost of two extra rounds.
  EXPECT_EQ(s.stats.rounds, m.stats.rounds + 2);
}

TEST(Streaming, ScalarPhasesDominateMessageCount) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 8, .width = 1, .twist = 0});
  const StreamingRunResult s = solve_special_streaming(inst, 2);
  // 7 rounds total over 64 directed edges; phases 2-3 send on alternating
  // sides only, so the count is well under rounds * directed_edges.
  EXPECT_GT(s.stats.messages, 0);
  EXPECT_LT(s.stats.messages, 7 * 64);
}

}  // namespace
}  // namespace locmm
