// Tests for engine C on special-form instances: feasibility (Lemma 11),
// the per-objective bound of Lemma 12, and the end-to-end special-form
// guarantee 2 (1 - 1/delta_K)(1 + 1/(R-1)) of §6.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/local_solver.hpp"
#include "core/solver_api.hpp"
#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"

namespace locmm {
namespace {

struct Case {
  std::uint64_t seed;
  std::int32_t delta_k;
  std::int32_t R;
};

class SpecialRun : public ::testing::TestWithParam<Case> {};

TEST_P(SpecialRun, FeasibleAndWithinGuarantee) {
  const Case c = GetParam();
  RandomSpecialParams p;
  p.num_agents = 24;
  p.delta_k = c.delta_k;
  const MaxMinInstance inst = random_special_form(p, c.seed);
  const SpecialFormInstance sf(inst);
  const SpecialRunResult run = solve_special_centralized(sf, c.R);

  // Lemma 11: feasibility.
  EXPECT_TRUE(inst.is_feasible(run.x, 1e-9))
      << "violation = " << inst.violation(run.x);

  // Theorem 1 (special form): omega(x) >= omega* / guarantee.
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);
  const double guarantee = special_form_guarantee(c.delta_k, c.R);
  EXPECT_GE(inst.utility(run.x) * guarantee, opt.omega - 1e-7)
      << "measured ratio " << opt.omega / inst.utility(run.x)
      << " exceeds guarantee " << guarantee;
}

TEST_P(SpecialRun, Lemma12PerObjectiveBound) {
  const Case c = GetParam();
  RandomSpecialParams p;
  p.num_agents = 24;
  p.delta_k = c.delta_k;
  const MaxMinInstance inst = random_special_form(p, c.seed);
  const SpecialFormInstance sf(inst);
  const SpecialRunResult run = solve_special_centralized(sf, c.R);

  const auto vals = inst.objective_values(run.x);
  const double R = c.R;
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    const auto row = inst.objective_row(k);
    const double vk = static_cast<double>(row.size());
    double smin = std::numeric_limits<double>::infinity();
    for (const Entry& e : row) smin = std::min(smin, run.s[e.agent]);
    EXPECT_GE(vals[k],
              0.5 * (1.0 - 1.0 / R) * vk / (vk - 1.0) * smin - 1e-9)
        << "objective " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpecialRun,
    ::testing::Values(Case{1, 2, 2}, Case{2, 2, 3}, Case{3, 2, 4},
                      Case{4, 3, 2}, Case{5, 3, 3}, Case{6, 3, 4},
                      Case{7, 4, 2}, Case{8, 4, 3}, Case{9, 4, 5},
                      Case{10, 5, 3}, Case{11, 3, 6}, Case{12, 2, 6}));

TEST(SpecialRunBasics, RejectsSmallR) {
  RandomSpecialParams p;
  p.num_agents = 8;
  const MaxMinInstance inst = random_special_form(p, 1);
  const SpecialFormInstance sf(inst);
  EXPECT_THROW(solve_special_centralized(sf, 1), CheckError);
}

TEST(SpecialRunBasics, RunBundleConsistent) {
  RandomSpecialParams p;
  p.num_agents = 16;
  const MaxMinInstance inst = random_special_form(p, 2);
  const SpecialFormInstance sf(inst);
  const SpecialRunResult run = solve_special_centralized(sf, 4);
  EXPECT_EQ(run.R, 4);
  EXPECT_EQ(run.r, 2);
  EXPECT_EQ(run.t.size(), static_cast<std::size_t>(inst.num_agents()));
  EXPECT_EQ(run.s.size(), run.t.size());
  EXPECT_EQ(run.g.plus.size(), 3u);
  EXPECT_EQ(run.x.size(), run.t.size());
}

TEST(SpecialRunBasics, ThreadedRunBitwiseEqual) {
  RandomSpecialParams p;
  p.num_agents = 40;
  const MaxMinInstance inst = random_special_form(p, 3);
  const SpecialFormInstance sf(inst);
  const SpecialRunResult serial = solve_special_centralized(sf, 3, {}, 1);
  const SpecialRunResult threaded = solve_special_centralized(sf, 3, {}, 4);
  for (std::size_t v = 0; v < serial.x.size(); ++v)
    EXPECT_DOUBLE_EQ(serial.x[v], threaded.x[v]);
}

TEST(SpecialRunBasics, UtilityDominatedByUpperBound) {
  // omega(x) <= omega* <= min_v t_v (+ tolerance): the output never beats
  // the certified optimum and the t bound dominates both.
  RandomSpecialParams p;
  p.num_agents = 20;
  const MaxMinInstance inst = random_special_form(p, 4);
  const SpecialFormInstance sf(inst);
  const SpecialRunResult run = solve_special_centralized(sf, 3);
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  const double tmin = *std::min_element(run.t.begin(), run.t.end());
  EXPECT_LE(inst.utility(run.x), opt.omega + 1e-8);
  EXPECT_GE(tmin, opt.omega - 1e-7);
}

TEST(SpecialRunBasics, GrowingRImprovesRatioOnLayered) {
  // On the layered wheel the shifting loss decays with R; the measured
  // utility should be (weakly) increasing in R modulo small wiggle.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 3, .layers = 8, .width = 3, .twist = 1});
  const SpecialFormInstance sf(inst);
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  double util2 = 0.0, util6 = 0.0;
  {
    const SpecialRunResult run = solve_special_centralized(sf, 2);
    util2 = inst.utility(run.x);
  }
  {
    const SpecialRunResult run = solve_special_centralized(sf, 6);
    util6 = inst.utility(run.x);
  }
  EXPECT_GE(opt.omega, util6 - 1e-9);
  EXPECT_GE(util6, util2 - 1e-6);  // more horizon, no worse
}

}  // namespace
}  // namespace locmm
