// Tests for the dynamic message-passing mode (paper §1.3, distributed end
// to end): SyncNetwork record/replay semantics at the substrate level, the
// fresh-vs-replayed accounting, and -- the headline -- a cross-engine
// edit-script harness holding incremental engines M, S and L bit-identical
// to from-scratch solves after every step of randomized edit scripts over
// cycle / grid / 3-regular instances at R in {2, 3}, with fresh message
// counts bounded by the dirty ball times the round count.
//
// Bitwise anchors (measured, and locked down here): engine S reduces in
// engine C's exact port order, so S == C in bits on every instance; engines
// L and M share the per-view evaluator, so M == L in bits.  L/M vs C also
// coincide bitwise on the UNEDITED symmetric families, but a random
// coefficient edit breaks the symmetry and with it the tie: the shared-DP
// engine C then orders a handful of reductions differently, a pre-existing
// last-bit divergence (~1 ulp) the property tests bound at 1e-9.  The
// harness therefore pins every incremental engine bitwise to its own
// from-scratch oracle (scratch L for M and L, scratch C for S) and
// cross-checks the two oracle families at 1e-9.
//
// Long variants of the randomized scripts live behind the ctest `slow`
// label (gtest DISABLED_ + the explicit slow_randomized_suites ctest entry
// in CMakeLists.txt; the CI ASan job runs the label in full).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "core/local_solver.hpp"
#include "core/special_form.hpp"
#include "core/view_solver.hpp"
#include "dist/gather.hpp"
#include "dist/streaming.hpp"
#include "dynamic/incremental_solver.hpp"
#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"
#include "lp/delta.hpp"
#include "support/prng.hpp"

namespace locmm {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_vector(const std::vector<double>& got,
                        const std::vector<double>& want, const char* what,
                        int step) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_TRUE(same_bits(got[v], want[v]))
        << what << ", step " << step << ", agent " << v << ": " << got[v]
        << " vs " << want[v];
  }
}

void expect_near_vector(const std::vector<double>& got,
                        const std::vector<double>& want, const char* what,
                        int step) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], want[v], 1e-9)
        << what << ", step " << step << ", agent " << v;
  }
}

// The dirty seeds of a delta, exactly as IncrementalSolver::apply derives
// them: both endpoints of every touched edge.
std::vector<NodeId> seeds_of(const CommGraph& g, const InstanceDelta& delta) {
  std::vector<NodeId> seeds;
  delta.for_each_touched_edge(
      [&](RowKind kind, std::int32_t row, AgentId agent) {
        seeds.push_back(kind == RowKind::kConstraint ? g.constraint_node(row)
                                                     : g.objective_node(row));
        seeds.push_back(g.agent_node(agent));
      });
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

// Sum of degrees over ball(seeds, depth) in `g`: one round's worth of the
// dirty ball's sending capacity -- the per-round cap on fresh messages.
// Uses the same multi-source flood the replay's activation does.
std::int64_t ball_degree_sum(const CommGraph& g,
                             const std::vector<NodeId>& seeds,
                             std::int32_t depth) {
  const std::vector<std::int32_t> dist =
      g.bfs_distances(std::span<const NodeId>(seeds), depth);
  std::int64_t sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    if (dist[static_cast<std::size_t>(u)] >= 0) sum += g.degree(u);
  return sum;
}

// A random special-form-preserving delta (the incremental_test distribution:
// coefficient bumps, constraint rewires, objective moves).
InstanceDelta random_special_delta(const SpecialFormInstance& sf, Rng& rng,
                                   bool allow_structural) {
  const MaxMinInstance& inst = sf.instance();
  InstanceDelta delta;
  const std::uint64_t kind = rng.below(allow_structural ? 4 : 2);
  if (kind == 2) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto i = static_cast<ConstraintId>(
          rng.below(static_cast<std::uint64_t>(inst.num_constraints())));
      const auto r = inst.constraint_row(i);
      const AgentId lose = r[rng.below(2)].agent;
      if (inst.agent_constraints(lose).size() < 2) continue;
      const auto gain = static_cast<AgentId>(
          rng.below(static_cast<std::uint64_t>(inst.num_agents())));
      if (gain == r[0].agent || gain == r[1].agent) continue;
      delta.remove_from_constraint(i, lose);
      delta.add_to_constraint(i, gain, rng.uniform(0.5, 2.0));
      return delta;
    }
  } else if (kind == 3) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto k = static_cast<ObjectiveId>(
          rng.below(static_cast<std::uint64_t>(inst.num_objectives())));
      const auto r = inst.objective_row(k);
      if (r.size() < 3) continue;
      const AgentId v = r[rng.below(r.size())].agent;
      const auto k2 = static_cast<ObjectiveId>(
          rng.below(static_cast<std::uint64_t>(inst.num_objectives())));
      if (k2 == k) continue;
      bool already = false;
      for (const Entry& e : inst.objective_row(k2)) already |= (e.agent == v);
      if (already) continue;
      delta.remove_from_objective(k, v);
      delta.add_to_objective(k2, v, 1.0);
      return delta;
    }
  }
  const int edits = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < edits; ++e) {
    const auto v = static_cast<AgentId>(
        rng.below(static_cast<std::uint64_t>(inst.num_agents())));
    const auto arcs = sf.arcs(v);
    const auto& arc = arcs[rng.below(arcs.size())];
    delta.set_constraint_coeff(arc.id, v, rng.uniform(0.25, 4.0));
  }
  return delta;
}

// ---------------------------------------------------------------------------
// SyncNetwork record/replay substrate semantics
// ---------------------------------------------------------------------------

// A replay re-gathers exactly the ball(seeds, T-1) nodes, splices their
// views bit-identically to a direct unfolding of the edited graph, and a
// later far-away edit touches only its own ball (the steady state: the
// history left behind by one replay serves the next).
TEST(ReplaySubstrate, RegathersOnlyTheDirtyBall) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 60, .width = 1, .twist = 0});
  CommGraph g(inst);
  SyncNetwork net(g);
  const std::int32_t D = 5;  // gather-only depth (R = 0 mode)
  const auto factory = [&](NodeId) {
    return std::make_unique<GatherProgram>(D, 0, TSearchOptions{});
  };

  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId u = 0; u < g.num_nodes(); ++u) programs.push_back(factory(u));
  const RunStats cold = net.run(programs, 1 << 20, /*record=*/true);
  ASSERT_EQ(cold.rounds, D);
  EXPECT_EQ(cold.fresh_messages, cold.messages);
  EXPECT_EQ(cold.replayed_messages, 0);
  ASSERT_TRUE(net.has_history());

  auto run_edit = [&](ConstraintId row) {
    const Entry hit = inst.constraint_row(row)[0];
    g.set_edge_coefficient(g.constraint_node(row), g.agent_node(hit.agent),
                           hit.coeff * 1.75);
    const std::vector<NodeId> seeds = {g.agent_node(hit.agent),
                                       g.constraint_node(row)};
    return net.replay(seeds, factory);
  };

  const SyncNetwork::ReplayResult first = run_edit(0);
  EXPECT_EQ(first.stats.rounds, D);
  EXPECT_GT(first.stats.fresh_messages, 0);
  EXPECT_GT(first.stats.replayed_messages, 0);
  EXPECT_EQ(first.stats.messages,
            first.stats.fresh_messages + first.stats.replayed_messages);
  EXPECT_EQ(first.stats.bytes,
            first.stats.fresh_bytes + first.stats.replayed_bytes);
  // Executed is contained in ball(seeds, D-1); the seed agent is adjacent
  // to the seed row, so everything executed is within D of the row node.
  const auto dist = g.bfs_distances(g.constraint_node(0), D);
  for (const NodeId u : first.executed) {
    const std::int32_t du = dist[static_cast<std::size_t>(u)];
    EXPECT_TRUE(du >= 0 && du <= D)
        << "node " << u << " re-executed outside the dirty ball";
  }
  EXPECT_LT(static_cast<NodeId>(first.executed.size()), g.num_nodes());
  // Every re-gathered view equals the direct unfolding of the edited graph.
  for (std::size_t i = 0; i < first.executed.size(); ++i) {
    const auto* prog =
        static_cast<const GatherProgram*>(first.programs[i].get());
    const ViewTree direct = ViewTree::build(g, first.executed[i], D);
    EXPECT_TRUE(ViewTree::same_view(prog->view(), direct))
        << "node " << first.executed[i];
  }

  // Steady state: an edit far from the first touches only its own ball --
  // same fresh volume (the wheel is locally homogeneous), and no overlap
  // with the first ball.
  const auto far_row =
      static_cast<ConstraintId>(inst.num_constraints() / 2);
  const SyncNetwork::ReplayResult second = run_edit(far_row);
  EXPECT_EQ(second.stats.fresh_messages, first.stats.fresh_messages);
  EXPECT_EQ(second.executed.size(), first.executed.size());
  for (const NodeId u : second.executed) {
    EXPECT_TRUE(std::find(first.executed.begin(), first.executed.end(), u) ==
                first.executed.end())
        << "far edit re-executed node " << u << " of the first edit's ball";
  }
  for (std::size_t i = 0; i < second.executed.size(); ++i) {
    const auto* prog =
        static_cast<const GatherProgram*>(second.programs[i].get());
    const ViewTree direct = ViewTree::build(g, second.executed[i], D);
    EXPECT_TRUE(ViewTree::same_view(prog->view(), direct))
        << "node " << second.executed[i];
  }
}

TEST(ReplaySubstrate, EmptySeedsReplayNothing) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 8, .width = 1, .twist = 0});
  const CommGraph g(inst);
  SyncNetwork net(g);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    programs.push_back(std::make_unique<GatherProgram>(3, 0, TSearchOptions{}));
  net.run(programs, 1 << 20, /*record=*/true);
  const SyncNetwork::ReplayResult rep =
      net.replay({}, [&](NodeId) {
        return std::make_unique<GatherProgram>(3, 0, TSearchOptions{});
      });
  EXPECT_TRUE(rep.executed.empty());
  EXPECT_EQ(rep.stats.messages, 0);
}

// ---------------------------------------------------------------------------
// Cross-engine edit scripts: incremental M == incremental S == incremental L
// == from-scratch solves, bit for bit, after every step
// ---------------------------------------------------------------------------

void run_cross_engine_script(const MaxMinInstance& special, std::int32_t R,
                             std::uint64_t seed, int steps,
                             bool allow_structural) {
  Rng rng(seed);
  IncrementalSolver::Options mo, so, lo;
  mo.R = so.R = lo.R = R;
  mo.engine = DynamicEngine::kMessagePassing;
  so.engine = DynamicEngine::kStreaming;
  IncrementalSolver inc_m(special, mo);
  IncrementalSolver inc_s(special, so);
  IncrementalSolver inc_l(special, lo);
  MaxMinInstance cur = special;

  // Cold solves must already agree (S carries engine C's bits, M carries
  // engine L's; on these symmetric families all four coincide).
  {
    const std::vector<double> oracle_l = solve_special_local_views(cur, R);
    const SpecialRunResult oracle_c =
        solve_special_centralized(SpecialFormInstance(cur), R);
    expect_same_vector(inc_l.x(), oracle_l, "cold L", -1);
    expect_same_vector(inc_m.x(), oracle_l, "cold M", -1);
    expect_same_vector(inc_s.x(), oracle_c.x, "cold S", -1);
    expect_same_vector(oracle_l, oracle_c.x, "cold L vs C", -1);
  }
  // (The cold L-vs-C check above CAN be bitwise: the unedited families are
  // symmetric.  After an edit it degrades to 1e-9, see the preamble.)
  EXPECT_EQ(inc_m.cold_net_stats().rounds, view_radius(R));
  EXPECT_EQ(inc_s.cold_net_stats().rounds, streaming_rounds(R));

  for (int step = 0; step < steps; ++step) {
    const InstanceDelta delta =
        random_special_delta(inc_l.special(), rng, allow_structural);
    // The ball bound needs both graphs for structural deltas (a removed
    // edge's pre-edit ball is part of what may re-send).
    const std::int64_t pre_ball_m = ball_degree_sum(
        inc_m.graph(), seeds_of(inc_m.graph(), delta), view_radius(R) - 1);
    const std::int64_t pre_ball_s =
        ball_degree_sum(inc_s.graph(), seeds_of(inc_s.graph(), delta),
                        streaming_rounds(R) - 1);

    inc_m.apply(delta);
    inc_s.apply(delta);
    inc_l.apply(delta);
    cur.apply(delta);

    const std::vector<double> oracle_l = solve_special_local_views(cur, R);
    const SpecialRunResult oracle_c =
        solve_special_centralized(SpecialFormInstance(cur), R);
    expect_same_vector(inc_l.x(), oracle_l, "incremental L vs scratch L",
                       step);
    expect_same_vector(inc_m.x(), oracle_l, "incremental M vs scratch L",
                       step);
    expect_same_vector(inc_s.x(), oracle_c.x, "incremental S vs scratch C",
                       step);
    expect_near_vector(oracle_l, oracle_c.x, "scratch L vs scratch C", step);

    // Fresh messages are bounded by the dirty ball's sending capacity times
    // the round count (pre + post graphs; a node sends at most deg per
    // round, and only ball nodes ever re-send).
    const auto& um = inc_m.last_update();
    const auto& us = inc_s.last_update();
    const std::int64_t post_ball_m = ball_degree_sum(
        inc_m.graph(), seeds_of(inc_m.graph(), delta), view_radius(R) - 1);
    const std::int64_t post_ball_s =
        ball_degree_sum(inc_s.graph(), seeds_of(inc_s.graph(), delta),
                        streaming_rounds(R) - 1);
    EXPECT_LE(um.net.fresh_messages,
              (pre_ball_m + post_ball_m) *
                  static_cast<std::int64_t>(um.net.rounds))
        << "step " << step;
    EXPECT_LE(us.net.fresh_messages,
              (pre_ball_s + post_ball_s) *
                  static_cast<std::int64_t>(us.net.rounds))
        << "step " << step;
    EXPECT_GT(um.net.fresh_messages, 0);
    EXPECT_GT(us.net.fresh_messages, 0);
    EXPECT_EQ(um.net.rounds, view_radius(R));
    EXPECT_EQ(us.net.rounds, streaming_rounds(R));
    EXPECT_EQ(um.agents_dirty + um.agents_reused, cur.num_agents());
    EXPECT_EQ(us.agents_dirty + us.agents_reused, cur.num_agents());
    EXPECT_EQ(um.net.messages,
              um.net.fresh_messages + um.net.replayed_messages);
    EXPECT_EQ(um.net.bytes, um.net.fresh_bytes + um.net.replayed_bytes);
  }
}

TEST(DynamicDist, CycleWheelScripts) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 24, .width = 1, .twist = 0});
  for (const std::int32_t R : {2, 3}) {
    run_cross_engine_script(wheel, R, 511 + static_cast<std::uint64_t>(R), 3,
                            /*allow_structural=*/false);
  }
}

TEST(DynamicDist, GridScripts) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  for (const std::int32_t R : {2, 3}) {
    run_cross_engine_script(grid, R, 522 + static_cast<std::uint64_t>(R), 3,
                            /*allow_structural=*/false);
  }
}

TEST(DynamicDist, ThreeRegularScriptsWithStructuralEdits) {
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 12, .delta_k = 3}, 3);
  run_cross_engine_script(circ, 2, 533, 4, /*allow_structural=*/true);
  run_cross_engine_script(circ, 3, 534, 2, /*allow_structural=*/false);
}

// Long scripts: ctest label `slow` (see CMakeLists.txt); the gtest names
// carry DISABLED_ so tier-1's discovered tests skip them, and the explicit
// slow_randomized_suites entry re-enables them for the CI ASan job.
TEST(DynamicDistSlow, DISABLED_LongMixedScripts) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 30, .width = 1, .twist = 0});
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 9}, 2);
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 14, .delta_k = 3}, 3);
  for (const std::int32_t R : {2, 3}) {
    run_cross_engine_script(wheel, R, 611 + static_cast<std::uint64_t>(R), 8,
                            /*allow_structural=*/true);
    run_cross_engine_script(grid, R, 622 + static_cast<std::uint64_t>(R), 8,
                            /*allow_structural=*/true);
    run_cross_engine_script(circ, R, 633 + static_cast<std::uint64_t>(R),
                            R == 2 ? 8 : 4, /*allow_structural=*/R == 2);
  }
}

// ---------------------------------------------------------------------------
// From-scratch same-engine seal: the incremental distributed solvers land
// exactly where their own cold engines land
// ---------------------------------------------------------------------------

TEST(DynamicDist, IncrementalMatchesScratchSameEngine) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 12, .width = 1, .twist = 0});
  const std::int32_t R = 3;
  IncrementalSolver::Options mo, so;
  mo.R = so.R = R;
  mo.engine = DynamicEngine::kMessagePassing;
  so.engine = DynamicEngine::kStreaming;
  IncrementalSolver inc_m(wheel, mo);
  IncrementalSolver inc_s(wheel, so);

  MaxMinInstance cur = wheel;
  InstanceDelta delta;
  const Entry hit = wheel.constraint_row(3)[0];
  delta.set_constraint_coeff(3, hit.agent, hit.coeff * 0.625);
  inc_m.apply(delta);
  inc_s.apply(delta);
  cur.apply(delta);

  const MessageRunResult m = solve_special_message_passing(cur, R);
  const StreamingRunResult s = solve_special_streaming(cur, R);
  expect_same_vector(inc_m.x(), m.x, "incremental M vs scratch M", 0);
  expect_same_vector(inc_s.x(), s.x, "incremental S vs scratch S", 0);
  // A scratch run is all fresh; the incremental one replayed most of it.
  EXPECT_LT(inc_m.last_update().net.fresh_messages, m.stats.messages);
  EXPECT_LT(inc_s.last_update().net.fresh_messages, s.stats.messages);
}

// ---------------------------------------------------------------------------
// Replay cache invalidation on edge removal: nodes that could reach the
// removed edge in the PRE-edit graph hold stale cached messages and must be
// re-executed even when the post-edit graph puts them far from every seed
// (the pre+post-graph flood IncrementalSolver::apply has always run for
// engine L, mirrored into replay() via pre_dist).
// ---------------------------------------------------------------------------

// Two path-clusters of agents joined by one bridge constraint; cluster A's
// capacities are 8x tighter, so cluster B's smoothed bounds s_v genuinely
// depend on what crosses the bridge -- removing it changes B's outputs.
MaxMinInstance bridged_clusters() {
  InstanceBuilder b(12);
  for (AgentId v = 0; v < 5; ++v)
    b.add_constraint({{v, 8.0}, {v + 1, 8.0}});  // rows 0..4: cluster A
  for (AgentId v = 6; v < 11; ++v)
    b.add_constraint({{v, 1.0}, {v + 1, 1.0}});  // rows 5..9: cluster B
  b.add_constraint({{5, 8.0}, {6, 1.0}});        // row 10: the bridge
  for (AgentId v = 0; v < 12; v += 2)
    b.add_objective({{v, 1.0}, {v + 1, 1.0}});
  return b.build();
}

TEST(DynamicDist, BridgeRemovalDirtiesThePreGraphBall) {
  const MaxMinInstance base = bridged_clusters();
  const std::int32_t R = 3;

  // The edit must actually matter across the bridge, or this test guards
  // nothing: removing it changes every cluster-B output.
  MaxMinInstance cur = base;
  InstanceDelta delta;
  delta.remove_from_constraint(10, 6);     // cut the bridge at cluster B...
  delta.add_to_constraint(10, 3, 8.0);     // ...rewire it inside cluster A
  cur.apply(delta);
  const SpecialRunResult before =
      solve_special_centralized(SpecialFormInstance(base), R);
  const SpecialRunResult after =
      solve_special_centralized(SpecialFormInstance(cur), R);
  int changed = 0;
  for (AgentId v = 6; v < 12; ++v)
    changed += !same_bits(before.x[static_cast<std::size_t>(v)],
                          after.x[static_cast<std::size_t>(v)]);
  ASSERT_GT(changed, 0) << "test instance lost its cross-bridge dependence";

  for (const DynamicEngine engine :
       {DynamicEngine::kMemoizedDp, DynamicEngine::kMessagePassing,
        DynamicEngine::kStreaming}) {
    IncrementalSolver::Options opt;
    opt.R = R;
    opt.engine = engine;
    IncrementalSolver inc(base, opt);
    inc.apply(delta);
    const std::vector<double>& oracle =
        engine == DynamicEngine::kStreaming
            ? after.x
            : solve_special_local_views(cur, R);
    expect_same_vector(inc.x(), oracle, "bridge removal", 0);
    // The whole far side sits inside the dirty ball here (the instance is
    // tiny); what matters is that it was NOT skipped.
    EXPECT_GE(inc.last_update().agents_dirty, 6);
  }
}

}  // namespace
}  // namespace locmm
