// Tests for the fat-view fast path: TValueStore semantics and budget
// accounting (core/dp_snapshot.hpp), the delta-aware DP warm start of
// IncrementalSolver (persisted t-tables, cone invalidation on coefficient
// AND structural deltas), the SoA sweep counters, and the pooled
// evaluation arenas' allocation-churn proof.
//
// The headline contract, asserted on randomized edit scripts over the
// fat-view generators (paired torus and circulant at R = 3; R = 4 in the
// *Slow fixtures): a warm-started solver, a warm-start-disabled solver and
// a from-scratch solve_special_local_views agree BIT-for-bit after every
// step.  Warm start is pure acceleration -- t is position-independent
// (PAPER §5, Example 2) and the bisection deterministic, so serving a
// stored t reproduces the exact bits the skipped search would have
// produced, provided the edit's dependency cone was invalidated.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/dp_snapshot.hpp"
#include "core/view_class_cache.hpp"
#include "core/view_solver.hpp"
#include "dynamic/incremental_solver.hpp"
#include "gen/generators.hpp"
#include "lp/delta.hpp"
#include "support/prng.hpp"

namespace locmm {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// One random special-form-preserving delta: a coefficient bump, or (with
// probability ~1/3) the always-legal structural refresh (remove-then-re-add
// of one constraint membership with a new coefficient), which exercises the
// structural pre+post cone floods.
InstanceDelta random_delta(const SpecialFormInstance& sf, Rng& rng,
                           bool allow_structural) {
  const MaxMinInstance& inst = sf.instance();
  InstanceDelta delta;
  if (allow_structural && rng.below(3) == 0) {
    const auto i = static_cast<ConstraintId>(
        rng.below(static_cast<std::uint64_t>(inst.num_constraints())));
    const AgentId v = inst.constraint_row(i)[rng.below(2)].agent;
    delta.remove_from_constraint(i, v);
    delta.add_to_constraint(i, v, rng.uniform(0.5, 2.0));
    return delta;
  }
  const auto v = static_cast<AgentId>(
      rng.below(static_cast<std::uint64_t>(inst.num_agents())));
  const auto arcs = sf.arcs(v);
  const auto& arc = arcs[rng.below(arcs.size())];
  delta.set_constraint_coeff(arc.id, v, rng.uniform(0.25, 4.0));
  return delta;
}

// The headline harness: warm solver vs warm-start-disabled solver vs
// scratch oracle, bitwise, after the cold solve and after every step.
void run_warm_script(const MaxMinInstance& special, std::int32_t R,
                     std::uint64_t seed, int steps, bool allow_structural) {
  Rng rng(seed);
  IncrementalSolver::Options wopt;
  wopt.R = R;
  wopt.warm_start = true;
  IncrementalSolver warm(special, wopt);
  IncrementalSolver::Options copt;
  copt.R = R;
  copt.warm_start = false;
  IncrementalSolver cold(special, copt);
  MaxMinInstance cur = special;

  ASSERT_NE(warm.snapshot_store(), nullptr);
  ASSERT_TRUE(warm.snapshot_store()->enabled());
  EXPECT_GT(warm.snapshot_store()->entries(), 0)
      << "the cold solve must populate the snapshot";
  EXPECT_EQ(cold.snapshot_store(), nullptr);

  {
    const std::vector<double> oracle = solve_special_local_views(cur, R);
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      ASSERT_TRUE(same_bits(warm.x()[v], oracle[v])) << "cold, agent " << v;
    }
  }

  std::int64_t total_reused = 0;
  for (int step = 0; step < steps; ++step) {
    const InstanceDelta delta =
        random_delta(warm.special(), rng, allow_structural);
    warm.apply(delta);
    cold.apply(delta);
    cur.apply(delta);

    const std::vector<double> oracle = solve_special_local_views(cur, R);
    ASSERT_EQ(warm.x().size(), oracle.size());
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      ASSERT_TRUE(same_bits(warm.x()[v], oracle[v]))
          << "warm, step " << step << ", agent " << v << ": " << warm.x()[v]
          << " vs " << oracle[v];
      ASSERT_TRUE(same_bits(cold.x()[v], oracle[v]))
          << "cold, step " << step << ", agent " << v;
    }

    const auto& wu = warm.last_update();
    const auto& cu = cold.last_update();
    // The existing incremental invariant holds on both paths...
    EXPECT_EQ(wu.class_cache_hits + wu.evals, wu.classes_invalidated);
    EXPECT_EQ(cu.class_cache_hits + cu.evals, cu.classes_invalidated);
    // ...and the warm counters flow only where the store is live.
    EXPECT_EQ(cu.warm_t_reused, 0);
    EXPECT_EQ(cu.cone_t_recomputed, 0);
    EXPECT_EQ(cu.cone_invalidated, 0);
    if (wu.evals > 0) EXPECT_GT(wu.cone_invalidated, 0);
    total_reused += wu.warm_t_reused;
  }
  // Fat views re-derive overlapping t-sets across dirty classes (and across
  // steps), so a multi-step script must have served SOMETHING warm.
  EXPECT_GT(total_reused, 0);
}

// ---------------------------------------------------------------------------
// TValueStore
// ---------------------------------------------------------------------------

TEST(TValueStore, PublishLookupInvalidateRoundTrip) {
  auto budget = std::make_shared<SnapshotBudget>(1 << 20);
  TValueStore store(8, budget);
  ASSERT_TRUE(store.enabled());
  EXPECT_EQ(store.entries(), 0);
  EXPECT_EQ(budget->bytes.load(), store.bytes());

  double t = -1.0;
  EXPECT_FALSE(store.lookup(3, &t));
  store.publish(3, 0.625);
  EXPECT_EQ(store.entries(), 1);
  ASSERT_TRUE(store.lookup(3, &t));
  EXPECT_TRUE(same_bits(t, 0.625));

  // Re-publish is idempotent on the entry count; invalidate drops it.
  store.publish(3, 0.625);
  EXPECT_EQ(store.entries(), 1);
  store.invalidate(3);
  EXPECT_EQ(store.entries(), 0);
  EXPECT_FALSE(store.lookup(3, &t));
  store.invalidate(3);  // idempotent
  EXPECT_EQ(store.entries(), 0);

  // Out-of-range traffic is ignored, never UB.
  store.publish(-1, 1.0);
  store.publish(8, 1.0);
  EXPECT_FALSE(store.lookup(-1, &t));
  EXPECT_FALSE(store.lookup(8, &t));

  store.publish(0, 2.0);
  store.publish(7, 3.0);
  store.invalidate_all();
  EXPECT_EQ(store.entries(), 0);
}

TEST(TValueStore, BudgetIsAHardCap) {
  auto budget = std::make_shared<SnapshotBudget>(100);
  // 16 bytes per origin: 4 origins fit, 100 do not.
  TValueStore small(4, budget);
  EXPECT_TRUE(small.enabled());
  const std::int64_t reserved = budget->bytes.load();
  EXPECT_GT(reserved, 0);
  EXPECT_LE(reserved, 100);

  {
    TValueStore big(100, budget);
    EXPECT_FALSE(big.enabled()) << "overshoot must disable, not truncate";
    EXPECT_EQ(budget->drops.load(), 1);
    EXPECT_EQ(budget->bytes.load(), reserved) << "no partial reservation";
    // A disabled store is inert but safe.
    double t;
    big.publish(0, 1.0);
    EXPECT_FALSE(big.lookup(0, &t));
    EXPECT_EQ(big.entries(), 0);
  }
  EXPECT_EQ(budget->bytes.load(), reserved);
}

TEST(TValueStore, DestructionReturnsBudget) {
  auto budget = std::make_shared<SnapshotBudget>(1 << 20);
  {
    TValueStore store(64, budget);
    EXPECT_EQ(budget->bytes.load(), store.bytes());
  }
  EXPECT_EQ(budget->bytes.load(), 0);
}

// ---------------------------------------------------------------------------
// Warm-started incremental scripts: bitwise vs cold vs scratch
// ---------------------------------------------------------------------------

TEST(WarmStart, PairedTorusScriptsBitIdentical) {
  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = 24}, 2);
  run_warm_script(grid, 3, 1301, 5, /*allow_structural=*/true);
}

TEST(WarmStart, CirculantScriptsBitIdentical) {
  const MaxMinInstance circ = circulant_special_instance(
      {.num_objectives = 24, .delta_k = 3, .stride = 7}, 1);
  run_warm_script(circ, 3, 1402, 5, /*allow_structural=*/true);
}

// Long fat-view scripts at R = 4 (D = 29, t-cone radius 11): the regime the
// fast path exists for.  Behind the `slow` ctest label.
TEST(WarmStartSlow, DISABLED_LongFatViewScripts) {
  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = 32}, 2);
  run_warm_script(grid, 4, 2301, 4, /*allow_structural=*/true);
  const MaxMinInstance circ = circulant_special_instance(
      {.num_objectives = 32, .delta_k = 3, .stride = 7}, 1);
  run_warm_script(circ, 4, 2402, 4, /*allow_structural=*/true);
}

// ---------------------------------------------------------------------------
// Cone invalidation on structural deltas
// ---------------------------------------------------------------------------

TEST(WarmStart, StructuralDeltaInvalidatesTheCone) {
  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = 32}, 3);
  IncrementalSolver::Options opt;
  opt.R = 3;
  IncrementalSolver inc(grid, opt);
  ASSERT_NE(inc.snapshot_store(), nullptr);
  const std::int64_t cold_entries = inc.snapshot_store()->entries();
  EXPECT_GT(cold_entries, 0);

  // A membership refresh: structural (remove + re-add), so the cone is
  // flooded on the pre- AND post-edit graphs.
  const SpecialFormInstance& sf = inc.special();
  const ConstraintId i0 = sf.arcs(5)[0].id;
  InstanceDelta delta;
  delta.remove_from_constraint(i0, 5);
  delta.add_to_constraint(i0, 5, 1.375);
  inc.apply(delta);

  const auto& u = inc.last_update();
  EXPECT_GT(u.cone_invalidated, 0);
  EXPECT_GT(u.cone_t_recomputed, 0)
      << "cone origins must re-bisect, not serve stale values";
  EXPECT_LT(u.cone_invalidated, grid.num_agents())
      << "the 4r+3 cone must stay local on a torus this long";

  // Bitwise against scratch, the whole point.
  MaxMinInstance cur = grid;
  cur.apply(delta);
  const std::vector<double> oracle = solve_special_local_views(cur, 3);
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    ASSERT_TRUE(same_bits(inc.x()[v], oracle[v])) << "agent " << v;
  }
}

// ---------------------------------------------------------------------------
// Snapshot byte budget through ViewClassCache
// ---------------------------------------------------------------------------

TEST(WarmStart, SnapshotBudgetRefusalKeepsOutputsBitwise) {
  // A cache whose snapshot budget cannot hold the store: the solver runs
  // with warm start nominally on, the mint is refused (drops == 1), every
  // solve goes cold -- and outputs are bitwise unchanged.
  ViewClassCache::Config cfg;
  cfg.snapshot_byte_budget = 8;  // < 16 bytes/agent * anything
  ViewClassCache cache(cfg);
  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = 16}, 2);
  IncrementalSolver::Options opt;
  opt.R = 3;
  opt.cache = &cache;
  IncrementalSolver inc(grid, opt);

  ASSERT_NE(inc.snapshot_store(), nullptr);
  EXPECT_FALSE(inc.snapshot_store()->enabled());
  EXPECT_EQ(cache.snapshot_drops(), 1);
  EXPECT_LE(cache.snapshot_bytes(), cfg.snapshot_byte_budget);

  Rng rng(77);
  MaxMinInstance cur = grid;
  for (int step = 0; step < 3; ++step) {
    const InstanceDelta delta = random_delta(inc.special(), rng, true);
    inc.apply(delta);
    cur.apply(delta);
    EXPECT_EQ(inc.last_update().warm_t_reused, 0);
    EXPECT_EQ(inc.last_update().cone_t_recomputed, 0);
    const std::vector<double> oracle = solve_special_local_views(cur, 3);
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      ASSERT_TRUE(same_bits(inc.x()[v], oracle[v]))
          << "step " << step << ", agent " << v;
    }
  }
}

TEST(WarmStart, CacheAccountsLiveStores) {
  ViewClassCache cache;
  EXPECT_EQ(cache.snapshot_bytes(), 0);
  auto a = cache.new_snapshot_store(100);
  auto b = cache.new_snapshot_store(50);
  ASSERT_TRUE(a->enabled());
  ASSERT_TRUE(b->enabled());
  EXPECT_EQ(cache.snapshot_bytes(), a->bytes() + b->bytes());
  a.reset();
  EXPECT_EQ(cache.snapshot_bytes(), b->bytes());
  b.reset();
  EXPECT_EQ(cache.snapshot_bytes(), 0);
  EXPECT_EQ(cache.snapshot_drops(), 0);
}

// ---------------------------------------------------------------------------
// Pooled evaluation arenas: the allocation-churn proof
// ---------------------------------------------------------------------------

TEST(WarmStart, ScratchPoolStopsReallocatingInSteadyState) {
  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = 24}, 2);
  IncrementalSolver::Options opt;
  opt.R = 3;
  opt.threads = 1;
  IncrementalSolver inc(grid, opt);
  EXPECT_EQ(inc.scratch_arenas(), 1) << "serial evaluation leases one arena";

  // Warm-up: the DP tables grow to the high-water mark of the class shapes
  // the edit stream surfaces (the first few steps of this seed surface them
  // all; verified against a longer run)...
  Rng rng(55);
  for (int step = 0; step < 5; ++step) {
    inc.apply(random_delta(inc.special(), rng, /*allow_structural=*/false));
  }
  const std::int64_t settled = inc.scratch_reallocations();

  // ...after which a steady-state edit stream must not allocate AT ALL.
  for (int step = 0; step < 5; ++step) {
    inc.apply(random_delta(inc.special(), rng, /*allow_structural=*/false));
  }
  EXPECT_EQ(inc.scratch_reallocations(), settled)
      << "steady-state applies must reuse the pooled DP tables";
  EXPECT_EQ(inc.scratch_arenas(), 1);
}

// ---------------------------------------------------------------------------
// Counters: TSearchStats plumbing and the SoA sweep accounting
// ---------------------------------------------------------------------------

TEST(WarmStart, CountersFlowIntoTSearchStats) {
  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = 24}, 2);
  TSearchStats stats;
  IncrementalSolver::Options opt;
  opt.R = 3;
  opt.t_search.stats = &stats;
  IncrementalSolver inc(grid, opt);

  stats.reset();
  Rng rng(99);
  std::int64_t reused = 0, recomputed = 0;
  for (int step = 0; step < 3; ++step) {
    inc.apply(random_delta(inc.special(), rng, /*allow_structural=*/true));
    reused += inc.last_update().warm_t_reused;
    recomputed += inc.last_update().cone_t_recomputed;
  }
  EXPECT_EQ(stats.warm_entries_reused.load(), reused);
  EXPECT_EQ(stats.cone_entries_recomputed.load(), recomputed);
  EXPECT_GT(reused, 0);
  EXPECT_GT(recomputed, 0);

  // The SoA sweeps: randomized coefficients give the batched bisections
  // distinct probe omegas, so multi-lane fills must have happened -- and
  // omega_sweeps keeps its per-distinct-omega meaning, so it dominates the
  // chunk count.
  EXPECT_GT(stats.vector_sweeps.load(), 0);
  EXPECT_GT(stats.omega_sweeps.load(), stats.vector_sweeps.load());
}

}  // namespace
}  // namespace locmm
