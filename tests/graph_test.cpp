// Tests for the CommGraph flattening: node typing, port order, BFS.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"

namespace locmm {
namespace {

MaxMinInstance tiny() {
  InstanceBuilder b(3);
  b.add_constraint({{0, 1.0}, {1, 2.0}});
  b.add_constraint({{1, 1.0}, {2, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  b.add_objective({{2, 3.0}});
  return b.build();
}

TEST(CommGraph, NodeLayoutAndTypes) {
  const MaxMinInstance inst = tiny();
  const CommGraph g(inst);
  EXPECT_EQ(g.num_nodes(), 3 + 2 + 2);
  EXPECT_EQ(g.type(g.agent_node(0)), NodeType::kAgent);
  EXPECT_EQ(g.type(g.constraint_node(0)), NodeType::kConstraint);
  EXPECT_EQ(g.type(g.objective_node(1)), NodeType::kObjective);
  EXPECT_EQ(g.class_index(g.constraint_node(1)), 1);
  EXPECT_EQ(g.class_index(g.objective_node(0)), 0);
}

TEST(CommGraph, AgentPortsConstraintsFirst) {
  const MaxMinInstance inst = tiny();
  const CommGraph g(inst);
  // Agent 1: constraints c0, c1 then objective k0.
  const NodeId a1 = g.agent_node(1);
  EXPECT_EQ(g.degree(a1), 3);
  EXPECT_EQ(g.constraint_degree(a1), 2);
  const auto n = g.neighbors(a1);
  EXPECT_EQ(n[0].to, g.constraint_node(0));
  EXPECT_DOUBLE_EQ(n[0].coeff, 2.0);
  EXPECT_EQ(n[1].to, g.constraint_node(1));
  EXPECT_DOUBLE_EQ(n[1].coeff, 1.0);
  EXPECT_EQ(n[2].to, g.objective_node(0));
  EXPECT_DOUBLE_EQ(n[2].coeff, 1.0);
}

TEST(CommGraph, ConstraintPortsFollowRowOrder) {
  const MaxMinInstance inst = tiny();
  const CommGraph g(inst);
  const auto n = g.neighbors(g.constraint_node(0));
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0].to, g.agent_node(0));
  EXPECT_DOUBLE_EQ(n[0].coeff, 1.0);
  EXPECT_EQ(n[1].to, g.agent_node(1));
  EXPECT_DOUBLE_EQ(n[1].coeff, 2.0);
}

TEST(CommGraph, BfsDistances) {
  const MaxMinInstance inst = tiny();
  const CommGraph g(inst);
  const auto dist = g.bfs_distances(g.agent_node(0), 10);
  EXPECT_EQ(dist[g.agent_node(0)], 0);
  EXPECT_EQ(dist[g.constraint_node(0)], 1);
  EXPECT_EQ(dist[g.agent_node(1)], 2);
  EXPECT_EQ(dist[g.constraint_node(1)], 3);
  EXPECT_EQ(dist[g.agent_node(2)], 4);
  EXPECT_EQ(dist[g.objective_node(1)], 5);
}

TEST(CommGraph, BfsRespectsCap) {
  const MaxMinInstance inst = tiny();
  const CommGraph g(inst);
  const auto dist = g.bfs_distances(g.agent_node(0), 2);
  EXPECT_EQ(dist[g.agent_node(2)], -1);   // distance 4, beyond the cap
  EXPECT_EQ(dist[g.agent_node(1)], 2);
}

TEST(CommGraph, BallContainsExactlyTheNeighbourhood) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 10}, 7);
  const CommGraph g(inst);
  const auto ball = g.ball(g.agent_node(0), 2);
  // Agent 0 on a cycle: itself, 2 constraints + 2 objectives at distance 1,
  // 2 agents at distance 2 (each reachable via two routes; counted once).
  EXPECT_EQ(ball.size(), 1u + 4u + 2u);
  EXPECT_EQ(ball[0], g.agent_node(0));
  const auto dist = g.bfs_distances(g.agent_node(0), 2);
  for (NodeId v : ball) EXPECT_GE(dist[v], 0);
}

TEST(CommGraph, GridIsFourRegularOverAgents) {
  const MaxMinInstance inst = grid_instance({.rows = 4, .cols = 5}, 1);
  const CommGraph g(inst);
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    EXPECT_EQ(g.degree(g.agent_node(v)), 4);
    EXPECT_EQ(g.constraint_degree(g.agent_node(v)), 2);
  }
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i)
    EXPECT_EQ(g.degree(g.constraint_node(i)), 2);
}

}  // namespace
}  // namespace locmm
