// Tests for the mixed packing/covering application (paper §1's claimed
// corollary): reduction correctness, status logic, preprocessing of
// degenerate shapes, and the nonnegative-linear-system special case.
#include <gtest/gtest.h>

#include "core/packing_covering.hpp"
#include "support/prng.hpp"

namespace locmm {
namespace {

TEST(PackingCovering, FeasibleSystemSolvedExactly) {
  // x0 + x1 <= 2, x0 >= 1, x1 >= 1: feasible (x = (1,1)).
  PackingCoveringProblem p;
  p.num_vars = 2;
  p.packing = {{{{0, 1.0}, {1, 1.0}}, 2.0}};
  p.covering = {{{{0, 1.0}}, 1.0}, {{{1, 1.0}}, 1.0}};
  const PackingCoveringResult res = solve_packing_covering_exact(p);
  EXPECT_EQ(res.status, PcStatus::kFeasible);
  EXPECT_LE(packing_violation(p, res.x), 1e-9);
  EXPECT_GE(res.cover_factor, 1.0 - 1e-9);
}

TEST(PackingCovering, InfeasibleSystemCertified) {
  // x0 <= 1 but x0 >= 3.
  PackingCoveringProblem p;
  p.num_vars = 1;
  p.packing = {{{{0, 1.0}}, 1.0}};
  p.covering = {{{{0, 1.0}}, 3.0}};
  EXPECT_EQ(solve_packing_covering_exact(p).status, PcStatus::kInfeasible);
  // The local solver must not claim feasibility either.
  const PackingCoveringResult local = solve_packing_covering_local(p, {.R = 4});
  EXPECT_EQ(local.status, PcStatus::kInfeasible);
}

TEST(PackingCovering, LocalSolverRelaxedContract) {
  // Feasible but tight system: local solve satisfies packing exactly and
  // covering to >= 1/alpha.
  PackingCoveringProblem p;
  p.num_vars = 3;
  p.packing = {{{{0, 1.0}, {1, 2.0}}, 2.0}, {{{1, 1.0}, {2, 1.0}}, 1.5}};
  p.covering = {{{{0, 1.0}, {1, 1.0}}, 1.0}, {{{2, 2.0}}, 1.0}};
  const PackingCoveringResult exact = solve_packing_covering_exact(p);
  ASSERT_EQ(exact.status, PcStatus::kFeasible);
  const PackingCoveringResult local =
      solve_packing_covering_local(p, {.R = 4});
  EXPECT_LE(packing_violation(p, local.x), 1e-8);
  EXPECT_GE(local.cover_factor, 1.0 / local.alpha - 1e-8);
  EXPECT_NE(local.status, PcStatus::kInfeasible)
      << "local solver wrongly certified a feasible system infeasible";
}

TEST(PackingCovering, ZeroRhsPackingForcesVariables) {
  // 5 x0 <= 0 forces x0 = 0; covering on x0 alone becomes infeasible.
  PackingCoveringProblem p;
  p.num_vars = 2;
  p.packing = {{{{0, 5.0}}, 0.0}, {{{1, 1.0}}, 4.0}};
  p.covering = {{{{0, 1.0}}, 1.0}};
  EXPECT_EQ(solve_packing_covering_exact(p).status, PcStatus::kInfeasible);

  // Same forcing, but covering served by the other variable: feasible.
  p.covering = {{{{0, 1.0}, {1, 1.0}}, 2.0}};
  const PackingCoveringResult res = solve_packing_covering_exact(p);
  EXPECT_EQ(res.status, PcStatus::kFeasible);
  EXPECT_DOUBLE_EQ(res.x[0], 0.0);
}

TEST(PackingCovering, UncoveredVariablesStayZero) {
  // x1 appears only in packing: it can only hurt, so it is zeroed.
  PackingCoveringProblem p;
  p.num_vars = 2;
  p.packing = {{{{0, 1.0}, {1, 1.0}}, 1.0}};
  p.covering = {{{{0, 2.0}}, 1.0}};
  const PackingCoveringResult res = solve_packing_covering_exact(p);
  EXPECT_EQ(res.status, PcStatus::kFeasible);
  EXPECT_DOUBLE_EQ(res.x[1], 0.0);
}

TEST(PackingCovering, UnpackedVariableGetsSyntheticCapacity) {
  // x0 has no packing row at all; it must still be able to satisfy its
  // covering row ("set unconstrained agents to +infinity", §4 preamble).
  PackingCoveringProblem p;
  p.num_vars = 1;
  p.covering = {{{{0, 0.5}}, 3.0}};
  const PackingCoveringResult res = solve_packing_covering_exact(p);
  EXPECT_EQ(res.status, PcStatus::kFeasible);
  EXPECT_GE(res.x[0], 6.0 - 1e-9);
}

TEST(PackingCovering, NoCoveringRowsTriviallyFeasible) {
  PackingCoveringProblem p;
  p.num_vars = 2;
  p.packing = {{{{0, 1.0}, {1, 1.0}}, 1.0}};
  const PackingCoveringResult res = solve_packing_covering_exact(p);
  EXPECT_EQ(res.status, PcStatus::kFeasible);
  EXPECT_DOUBLE_EQ(res.x[0], 0.0);
  EXPECT_DOUBLE_EQ(res.x[1], 0.0);
}

TEST(PackingCovering, RejectsNegativeData) {
  PackingCoveringProblem p;
  p.num_vars = 1;
  p.packing = {{{{0, -1.0}}, 1.0}};
  p.covering = {{{{0, 1.0}}, 1.0}};
  EXPECT_THROW(solve_packing_covering_exact(p), CheckError);
}

TEST(LinearSystem, SolvesNonnegativeEquations) {
  // The §1 special case: M x = d with nonnegative M, d.
  //   x0 + x1 = 2
  //   x1 + x2 = 2
  //   x0 + x2 = 2        solution x = (1,1,1).
  std::vector<SparseLpRow> eqs = {
      {{{0, 1.0}, {1, 1.0}}, 2.0},
      {{{1, 1.0}, {2, 1.0}}, 2.0},
      {{{0, 1.0}, {2, 1.0}}, 2.0},
  };
  const PackingCoveringProblem p = linear_system_problem(3, eqs);
  const PackingCoveringResult exact = solve_packing_covering_exact(p);
  EXPECT_EQ(exact.status, PcStatus::kFeasible);
  EXPECT_LE(packing_violation(p, exact.x), 1e-9);

  // The local route: equations hold with M x <= d and M x >= d / alpha.
  const PackingCoveringResult local =
      solve_packing_covering_local(p, {.R = 6});
  EXPECT_LE(packing_violation(p, local.x), 1e-8);
  EXPECT_GE(local.cover_factor, 1.0 / local.alpha - 1e-8);
}

class RandomSystems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSystems, FeasibleByConstructionContract) {
  // rhs generated from a hidden ground truth: packing rows get slack,
  // covering rows are 90% of what the ground truth achieves -> feasible.
  Rng rng(GetParam());
  const std::int32_t vars = 18;
  std::vector<double> x_star(static_cast<std::size_t>(vars));
  for (auto& v : x_star) v = rng.uniform(0.2, 2.0);

  PackingCoveringProblem p;
  p.num_vars = vars;
  auto row_at = [&](double factor) {
    SparseLpRow row;
    const auto size = static_cast<std::int32_t>(rng.range(2, 4));
    std::vector<char> used(static_cast<std::size_t>(vars), 0);
    for (std::int32_t e = 0; e < size; ++e) {
      auto col = static_cast<std::int32_t>(
          rng.below(static_cast<std::uint64_t>(vars)));
      while (used[static_cast<std::size_t>(col)]) col = (col + 1) % vars;
      used[static_cast<std::size_t>(col)] = 1;
      row.entries.emplace_back(col, rng.uniform(0.5, 2.0));
    }
    double at = 0.0;
    for (const auto& [col, coeff] : row.entries)
      at += coeff * x_star[static_cast<std::size_t>(col)];
    row.rhs = at * factor;
    return row;
  };
  for (int i = 0; i < 12; ++i) {
    p.packing.push_back(row_at(rng.uniform(1.0, 1.4)));
    p.covering.push_back(row_at(0.9));
  }

  const PackingCoveringResult exact = solve_packing_covering_exact(p);
  EXPECT_EQ(exact.status, PcStatus::kFeasible);

  const PackingCoveringResult local =
      solve_packing_covering_local(p, {.R = 4});
  EXPECT_LE(packing_violation(p, local.x), 1e-8);
  EXPECT_GE(local.cover_factor, 1.0 / local.alpha - 1e-8);
  EXPECT_NE(local.status, PcStatus::kInfeasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystems,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

TEST(LinearSystem, DetectsInconsistentEquations) {
  // x0 = 1 and x0 = 3 cannot both hold.
  std::vector<SparseLpRow> eqs = {{{{0, 1.0}}, 1.0}, {{{0, 1.0}}, 3.0}};
  const PackingCoveringProblem p = linear_system_problem(1, eqs);
  EXPECT_EQ(solve_packing_covering_exact(p).status, PcStatus::kInfeasible);
}

}  // namespace
}  // namespace locmm
