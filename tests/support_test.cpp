// Tests for the support kernel: PRNG determinism, statistics, thread pool,
// table rendering, check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "support/check.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace locmm {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    LOCMM_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { LOCMM_CHECK(2 + 2 == 4); }

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.5, 3.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, BelowCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 10 - trials / 50);
    EXPECT_LT(c, trials / 10 + trials / 50);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(5);
  Rng a = parent.split();
  Rng b = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  shuffle(w.begin(), w.end(), rng);
  std::set<int> s(w.begin(), w.end());
  EXPECT_EQ(s.size(), v.size());
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, EmptyThrows) {
  Accumulator acc;
  EXPECT_THROW(acc.mean(), CheckError);
}

TEST(Quantile, MatchesOrderStatistics) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, SerialFallback) {
  int count = 0;
  parallel_for(10, 1, [&](std::size_t) { ++count; });  // inline path
  EXPECT_EQ(count, 10);
}

TEST(ThreadPool, ZeroIterations) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // Regression: parallel_for from one of the pool's own workers used to
  // enqueue the inner loop and block on done_cv -- once every worker was a
  // blocked nested caller, nothing drained the queue and the pool
  // deadlocked (the dist/ SyncNetwork triggers exactly this when a node
  // program's receive calls back into the library).  Nested calls must run
  // inline on the calling worker and still cover every index exactly once.
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 64, kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t i) {
    pool.parallel_for(kInner, [&](std::size_t j) {
      hits[i * kInner + j].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForViaGlobalWrapper) {
  // Same regression through the free-function wrapper both per-agent loops
  // actually use (outer loop on the global pool, nested loop re-entering
  // the same pool).
  const std::shared_ptr<ThreadPool> pool = ThreadPool::global(4);
  std::vector<std::atomic<int>> hits(48 * 16);
  pool->parallel_for(48, [&](std::size_t i) {
    parallel_for(16, /*threads=*/4,
                 [&](std::size_t j) { hits[i * 16 + j].fetch_add(1); });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   pool.parallel_for(8, [&](std::size_t j) {
                                     if (i == 3 && j == 5)
                                       throw std::runtime_error("inner boom");
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, GlobalResizeKeepsOldPoolAlive) {
  // Regression: global(threads) used to return ThreadPool& and destroy the
  // old singleton in place on a resize, leaving earlier callers with a
  // dangling reference.  With shared ownership the old pool must stay
  // usable for as long as someone holds it.
  const std::shared_ptr<ThreadPool> a = ThreadPool::global(2);
  ASSERT_EQ(a->thread_count(), 2u);
  const std::shared_ptr<ThreadPool> b = ThreadPool::global(3);
  ASSERT_EQ(b->thread_count(), 3u);
  EXPECT_NE(a.get(), b.get());

  // The pre-resize pool still schedules work correctly.
  std::vector<std::atomic<int>> hits(200);
  a->parallel_for(200, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);

  // Same-count (and 0 = "don't care") requests reuse the current pool.
  EXPECT_EQ(ThreadPool::global(3).get(), b.get());
  EXPECT_EQ(ThreadPool::global(0).get(), b.get());
}

TEST(Table, RendersRowsAndNotes) {
  Table t("demo");
  t.columns({"a", "bb"});
  t.row({Table::cell(1), Table::cell(2.5, 2)});
  t.note("hello");
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| a | bb"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("note: hello"), std::string::npos);
}

TEST(Table, RejectsMisshapenRow) {
  Table t("x");
  t.columns({"a"});
  EXPECT_THROW(t.row({Table::cell(1), Table::cell(2)}), CheckError);
}

}  // namespace
}  // namespace locmm
