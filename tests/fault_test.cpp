// Tests for the fault-tolerance layer (dist/fault.hpp): the seeded
// FaultPlan decision procedure, the delivery-boundary detectors
// (message_checksum + message_well_formed), and -- the headline -- chaos
// runs of engines M and S under combined drop / corruption / duplication /
// reordering / crash-with-restart scenarios that must recover bitwise
// identical to the fault-free oracle, plus degradation scenarios (exhausted
// retransmit budget, permanent crash) whose per-agent `degraded` flags must
// be exactly the unrecoverable light cone.
//
// The corruption detector gets an implicit exhaustive workout beyond the
// unit tests here: every chaos run's delivery guard CHECK-fails the whole
// test if any injected corruption of real engine traffic ever evades
// checksum + well-formedness (see run_under_faults).
//
// Long variants of the chaos matrix live behind the ctest `slow` label
// (gtest DISABLED_ + the slow_randomized_suites entry in CMakeLists.txt).
#include "dist/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "core/local_solver.hpp"
#include "core/solver_api.hpp"
#include "core/special_form.hpp"
#include "core/view_solver.hpp"
#include "dist/gather.hpp"
#include "dist/streaming.hpp"
#include "dist/wire.hpp"
#include "dynamic/incremental_solver.hpp"
#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"
#include "lp/delta.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"
#include "support/prng.hpp"

namespace locmm {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_vector(const std::vector<double>& got,
                        const std::vector<double>& want, const char* what,
                        int step) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_TRUE(same_bits(got[v], want[v]))
        << what << ", step " << step << ", agent " << v << ": " << got[v]
        << " vs " << want[v];
  }
}

// A random special-form-preserving coefficient delta (the incremental_test
// distribution, coefficient edits only: the dynamic fault tests exercise
// the repaired history through the delta fast path).
InstanceDelta random_coeff_delta(const SpecialFormInstance& sf, Rng& rng) {
  const MaxMinInstance& inst = sf.instance();
  InstanceDelta delta;
  const int edits = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < edits; ++e) {
    const auto v = static_cast<AgentId>(
        rng.below(static_cast<std::uint64_t>(inst.num_agents())));
    const auto arcs = sf.arcs(v);
    const auto& arc = arcs[rng.below(arcs.size())];
    delta.set_constraint_coeff(arc.id, v, rng.uniform(0.25, 4.0));
  }
  return delta;
}

// ---------------------------------------------------------------------------
// FaultPlan: validation, determinism, rate calibration
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ValidatesSpec) {
  EXPECT_NO_THROW(FaultPlan(FaultSpec{}));
  EXPECT_FALSE(FaultPlan(FaultSpec{}).any_faults());

  FaultSpec bad;
  bad.drop_rate = 1.5;
  EXPECT_THROW(FaultPlan{bad}, CheckError);
  bad = {};
  bad.corrupt_rate = -0.1;
  EXPECT_THROW(FaultPlan{bad}, CheckError);
  bad = {};
  bad.max_retransmits = -1;
  EXPECT_THROW(FaultPlan{bad}, CheckError);
  bad = {};
  bad.crashes.push_back({.node = 0, .round = 0});
  EXPECT_THROW(FaultPlan{bad}, CheckError);
  bad = {};
  bad.crashes.push_back({.node = 0, .round = 5, .restart_round = 3});
  EXPECT_THROW(FaultPlan{bad}, CheckError);
  bad = {};
  bad.crashes.push_back({.node = 0, .round = 5, .restart_round = 5});
  EXPECT_NO_THROW(FaultPlan{bad});
}

TEST(FaultPlanTest, DeterministicAndSeedSensitive) {
  FaultSpec spec;
  spec.seed = 42;
  spec.drop_rate = 0.3;
  spec.corrupt_rate = 0.3;
  const FaultPlan a(spec);
  const FaultPlan b(spec);
  spec.seed = 43;
  const FaultPlan c(spec);

  int diffs = 0;
  for (std::int32_t round = 1; round <= 10; ++round) {
    for (NodeId node = 0; node < 20; ++node) {
      for (std::int32_t port = 0; port < 3; ++port) {
        for (std::int32_t attempt = 0; attempt < 2; ++attempt) {
          EXPECT_EQ(a.drops(round, node, port, attempt),
                    b.drops(round, node, port, attempt));
          EXPECT_EQ(a.corrupts(round, node, port, attempt),
                    b.corrupts(round, node, port, attempt));
          EXPECT_EQ(a.corruption_bits(round, node, port),
                    b.corruption_bits(round, node, port));
          diffs += a.drops(round, node, port, attempt) !=
                   c.drops(round, node, port, attempt);
        }
      }
    }
  }
  EXPECT_GT(diffs, 0) << "seed change produced identical drop decisions";
}

TEST(FaultPlanTest, RatesAreCalibrated) {
  FaultSpec spec;
  spec.seed = 7;
  spec.drop_rate = 0.1;
  const FaultPlan plan(spec);
  std::int64_t fired = 0, total = 0;
  for (std::int32_t round = 1; round <= 50; ++round) {
    for (NodeId node = 0; node < 100; ++node) {
      for (std::int32_t port = 0; port < 4; ++port) {
        fired += plan.drops(round, node, port, 0);
        ++total;
      }
    }
  }
  const double freq = static_cast<double>(fired) / static_cast<double>(total);
  EXPECT_NEAR(freq, 0.1, 0.01);

  spec.drop_rate = 0.0;
  EXPECT_FALSE(FaultPlan(spec).drops(1, 0, 0, 0));
  spec.drop_rate = 1.0;
  EXPECT_TRUE(FaultPlan(spec).drops(1, 0, 0, 0));
}

// ---------------------------------------------------------------------------
// Delivery-boundary detection: checksum + well-formedness
// ---------------------------------------------------------------------------

// A structurally valid two-level wire blob, shaped like what
// ViewGatherCore::send actually emits (root's parent_port = the port
// leading back to the receiver, non-backtracking children below it).
std::vector<WireNode> valid_blob() {
  WireNode root;
  root.type = NodeType::kAgent;
  root.degree = 3;
  root.constraint_degree = 2;
  root.parent_port = 1;
  root.parent_coeff = 1.25;
  root.num_children = 2;
  WireNode c1;
  c1.type = NodeType::kConstraint;
  c1.degree = 2;
  c1.parent_port = 0;
  c1.parent_coeff = 0.75;
  c1.num_children = 0;
  WireNode c2;
  c2.type = NodeType::kObjective;
  c2.degree = 2;
  c2.parent_port = 1;
  c2.parent_coeff = 1.0;
  c2.num_children = 0;
  return {root, c1, c2};
}

TEST(FaultDetection, ScalarSingleBitFlipsDetectedExhaustively) {
  // Every one of the 17 * 8 frame bits -- kind byte, all 64 payload bits
  // (including the sign bit of 0.0), and the checksum field itself.  Any
  // single flip must make the real decoder reject the frame: every header
  // bit is load-bearing and every payload bit is checksummed.
  for (const double value : {1.7, 0.0, -3.25e-12}) {
    const std::vector<std::uint8_t> clean =
        encode_message(Message::make_scalar(value));
    ASSERT_EQ(static_cast<std::int64_t>(clean.size()), kScalarFrameBytes);
    for (std::uint64_t b = 0; b < 8 * clean.size(); ++b) {
      std::vector<std::uint8_t> frame = clean;
      corrupt_frame(frame, b);
      Message out;
      EXPECT_NE(decode_message_frame(frame, out), WireDecodeStatus::kOk)
          << "bit " << b << " of scalar " << value << " evaded the decoder";
    }
  }
}

TEST(FaultDetection, ViewCorruptionsDetected) {
  const Message clean_msg = Message::make_view(valid_blob());
  ASSERT_TRUE(message_well_formed(clean_msg));
  const std::vector<std::uint8_t> clean = encode_message(clean_msg);
  ASSERT_EQ(static_cast<std::int64_t>(clean.size()), clean_msg.byte_size());
  // Exhaustively flip every bit of the encoded view frame -- envelope,
  // packed headers, coefficients, checksum -- and sweep 4096 extra
  // pseudo-random selectors through corrupt_frame's modular bit choice.
  // The decoder must reject every single-bit corruption.
  for (std::uint64_t b = 0; b < 8 * clean.size(); ++b) {
    std::vector<std::uint8_t> frame = clean;
    corrupt_frame(frame, b);
    Message out;
    EXPECT_NE(decode_message_frame(frame, out), WireDecodeStatus::kOk)
        << "frame bit " << b << " evaded the decoder";
  }
  for (std::uint64_t t = 0; t < 4096; ++t) {
    std::vector<std::uint8_t> frame = clean;
    corrupt_frame(frame, mix64(t));
    Message out;
    EXPECT_NE(decode_message_frame(frame, out), WireDecodeStatus::kOk)
        << "selector " << t << " evaded the decoder";
  }
}

TEST(FaultDetection, DetectableCorruptionNeverCollides) {
  // corrupt_frame_detectably must hand back a frame the decoder rejects --
  // it regenerates on (astronomically unlikely) checksum collisions and
  // CHECKs if the decoder were ever to accept 64 distinct flips, so a
  // successful return IS the guarantee.  Exercise it across both kinds and
  // many seeds.
  const Message msgs[] = {Message::make_scalar(2.5),
                          Message::make_view(valid_blob())};
  for (const Message& m : msgs) {
    const std::vector<std::uint8_t> clean = encode_message(m);
    for (std::uint64_t seed = 0; seed < 512; ++seed) {
      std::vector<std::uint8_t> frame = clean;
      corrupt_frame_detectably(frame, seed);
      EXPECT_NE(frame, clean);
      Message out;
      EXPECT_NE(decode_message_frame(frame, out), WireDecodeStatus::kOk);
    }
  }
}

TEST(FaultDetection, MalformedBlobsRejected) {
  EXPECT_FALSE(wire_view_well_formed({}));
  EXPECT_TRUE(wire_view_well_formed(valid_blob()));

  auto mutate = [](auto fn) {
    std::vector<WireNode> blob = valid_blob();
    fn(blob);
    return wire_view_well_formed(blob);
  };
  // Field damage.
  EXPECT_FALSE(mutate([](auto& b) { b[1].degree = 0; }));
  EXPECT_FALSE(mutate([](auto& b) { b[0].parent_port = 3; }));
  EXPECT_FALSE(mutate([](auto& b) { b[0].parent_port = -1; }));
  EXPECT_FALSE(mutate([](auto& b) { b[0].num_children = 3; }));
  EXPECT_FALSE(mutate([](auto& b) { b[1].constraint_degree = 1; }));
  EXPECT_FALSE(mutate([](auto& b) { b[0].constraint_degree = 4; }));
  EXPECT_FALSE(
      mutate([](auto& b) { b[0].type = static_cast<NodeType>(7); }));
  // Structural damage: forest instead of one tree, or missing subtrees.
  EXPECT_FALSE(mutate([](auto& b) { b[0].num_children = 1; }));
  EXPECT_FALSE(mutate([](auto& b) { b.pop_back(); }));

  // A corrupted kind byte fails message_well_formed outright.
  Message m = Message::make_scalar(1.0);
  m.kind = static_cast<Message::Kind>(9);
  EXPECT_FALSE(message_well_formed(m));
  // A scalar that somehow grew a payload blob is malformed too.
  Message s = Message::make_scalar(1.0);
  s.view = valid_blob();
  EXPECT_FALSE(message_well_formed(s));
}

// ---------------------------------------------------------------------------
// Headline chaos matrix: recoverable scenarios must land bitwise on the
// fault-free oracle with accurate accounting
// ---------------------------------------------------------------------------

FaultPlan chaos_plan(const CommGraph& g, std::uint64_t seed) {
  FaultSpec fs;
  fs.seed = seed;
  fs.drop_rate = 0.08;
  fs.corrupt_rate = 0.04;
  fs.duplicate_rate = 0.05;
  fs.reorder_rate = 0.10;
  fs.max_retransmits = 12;
  // One mid-schedule crash that restarts: recoverable by cone replay.
  fs.crashes.push_back(
      {.node = g.num_nodes() / 3, .round = 2, .restart_round = 3});
  return FaultPlan(fs);
}

void check_recovered_stats(const RunStats& st, std::int32_t rounds,
                           std::int32_t max_retransmits) {
  EXPECT_EQ(st.rounds, rounds);
  EXPECT_EQ(st.messages, st.fresh_messages + st.replayed_messages);
  EXPECT_EQ(st.bytes, st.fresh_bytes + st.replayed_bytes);
  EXPECT_GT(st.dropped_messages, 0);
  EXPECT_GT(st.corrupted_messages, 0);
  EXPECT_GT(st.duplicated_messages, 0);
  EXPECT_GT(st.reordered_messages, 0);
  EXPECT_GT(st.retransmitted_messages, 0);
  EXPECT_GT(st.retransmitted_bytes, 0);
  // Every retransmitted slot traces back to a drop or a rejected
  // corruption, and in a recovered run all of them eventually landed.
  EXPECT_GT(st.recovered_messages, 0);
  EXPECT_LE(st.recovered_messages,
            st.dropped_messages + st.corrupted_messages);
  EXPECT_EQ(st.unrecovered_slots, 0);
  EXPECT_GE(st.recovery_rounds, 1);
  EXPECT_LE(st.recovery_rounds, max_retransmits * rounds);
}

void run_chaos(const MaxMinInstance& special, std::int32_t R,
               std::uint64_t seed) {
  const CommGraph g(special);
  const FaultPlan plan = chaos_plan(g, seed);

  const MessageRunResult oracle_m = solve_special_message_passing(special, R);
  MessageRunResult m =
      solve_special_message_passing(special, R, {}, 1, &plan);
  expect_same_vector(m.x, oracle_m.x, "chaos M vs fault-free M", 0);
  ASSERT_EQ(m.degraded.size(), m.x.size());
  for (std::size_t v = 0; v < m.degraded.size(); ++v)
    EXPECT_EQ(m.degraded[v], 0) << "agent " << v;
  check_recovered_stats(m.stats, view_radius(R), plan.spec().max_retransmits);

  const StreamingRunResult oracle_s = solve_special_streaming(special, R);
  StreamingRunResult s = solve_special_streaming(special, R, {}, 1, &plan);
  expect_same_vector(s.x, oracle_s.x, "chaos S vs fault-free S", 0);
  ASSERT_EQ(s.degraded.size(), s.x.size());
  for (std::size_t v = 0; v < s.degraded.size(); ++v)
    EXPECT_EQ(s.degraded[v], 0) << "agent " << v;
  check_recovered_stats(s.stats, streaming_rounds(R),
                        plan.spec().max_retransmits);
}

TEST(FaultChaos, WheelRecoversBitwise) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 24, .width = 1, .twist = 0});
  for (const std::int32_t R : {2, 3})
    run_chaos(wheel, R, 811 + static_cast<std::uint64_t>(R));
}

TEST(FaultChaos, GridRecoversBitwise) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  run_chaos(grid, 2, 822);
}

TEST(FaultChaos, CirculantRecoversBitwise) {
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 12, .delta_k = 3}, 3);
  run_chaos(circ, 2, 833);
}

// Long chaos matrix: ctest label `slow` (see CMakeLists.txt).
TEST(FaultChaosSlow, DISABLED_FullMatrix) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 30, .width = 1, .twist = 0});
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 9}, 2);
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 14, .delta_k = 3}, 3);
  for (const std::int32_t R : {2, 3}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      run_chaos(wheel, R, 900 + 10 * seed + static_cast<std::uint64_t>(R));
      run_chaos(grid, R, 940 + 10 * seed + static_cast<std::uint64_t>(R));
      run_chaos(circ, R, 980 + 10 * seed + static_cast<std::uint64_t>(R));
    }
  }
}

// ---------------------------------------------------------------------------
// Degradation: exhausted budgets and permanent crashes complete with
// accurate flags instead of aborting
// ---------------------------------------------------------------------------

TEST(FaultDegradation, ExhaustedBudgetDegradesAccurately) {
  // A long wheel and a low drop rate keep the terminal cones (radius up to
  // D - 1 = 4 here) from swallowing the whole ring: the containment
  // assertion below is the point of the test.
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 60, .width = 1, .twist = 0});
  const std::int32_t R = 2;
  FaultSpec fs;
  fs.seed = 17;
  fs.drop_rate = 0.02;
  fs.max_retransmits = 0;  // recovery disabled: every drop is terminal
  const FaultPlan plan(fs);

  // Engine M: the fallback is the same per-view evaluation engine M itself
  // runs, so even degraded agents land bitwise on the oracle -- what the
  // flags add is the honest report of which values the network never
  // actually produced.
  const MessageRunResult oracle_m = solve_special_message_passing(wheel, R);
  const MessageRunResult m =
      solve_special_message_passing(wheel, R, {}, 1, &plan);
  expect_same_vector(m.x, oracle_m.x, "degraded M vs fault-free M", 0);
  std::int64_t flagged = 0;
  for (const std::uint8_t f : m.degraded) flagged += f;
  EXPECT_GT(flagged, 0) << "10% drop with zero budget degraded nothing";
  EXPECT_LT(flagged, static_cast<std::int64_t>(m.degraded.size()))
      << "the whole network degraded: the cone containment failed";
  EXPECT_GT(m.stats.unrecovered_slots, 0);
  EXPECT_EQ(m.stats.recovered_messages, 0);
  EXPECT_EQ(m.stats.recovery_rounds, 0);

  // Engine S: un-degraded agents bitwise, degraded ones carry the engine-L
  // fallback (~1 ulp from S's reduction order; 1e-9 bounds it).
  const StreamingRunResult oracle_s = solve_special_streaming(wheel, R);
  const StreamingRunResult s =
      solve_special_streaming(wheel, R, {}, 1, &plan);
  ASSERT_EQ(s.x.size(), oracle_s.x.size());
  std::int64_t s_flagged = 0;
  for (std::size_t v = 0; v < s.x.size(); ++v) {
    if (s.degraded[v] != 0) {
      ++s_flagged;
      EXPECT_NEAR(s.x[v], oracle_s.x[v], 1e-9) << "agent " << v;
    } else {
      EXPECT_TRUE(same_bits(s.x[v], oracle_s.x[v]))
          << "un-degraded agent " << v << " not bitwise fault-free: "
          << s.x[v] << " vs " << oracle_s.x[v];
    }
  }
  EXPECT_GT(s_flagged, 0);
}

TEST(FaultDegradation, PermanentCrashDegradesExactlyTheCone) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 24, .width = 1, .twist = 0});
  const std::int32_t R = 2;
  const std::int32_t D = view_radius(R);
  const CommGraph g(wheel);
  const NodeId dead = g.num_nodes() / 2;
  const std::int32_t crash_round = 2;

  FaultSpec fs;
  fs.seed = 5;
  fs.crashes.push_back(
      {.node = dead, .round = crash_round, .restart_round = -1});
  const FaultPlan plan(fs);
  const MessageRunResult m =
      solve_special_message_passing(wheel, R, {}, 1, &plan);

  // Silence spreads at speed 1 from the crash round: a node at distance d
  // freezes during round crash_round + d - 1, so the unrecoverable cone of
  // a schedule of D rounds is exactly ball(dead, D - crash_round + 1).
  const std::vector<std::int32_t> dist = g.bfs_distances(dead, D + 1);
  const std::int32_t reach = D - crash_round + 1;
  ASSERT_EQ(m.degraded.size(), static_cast<std::size_t>(wheel.num_agents()));
  int inside = 0, outside = 0;
  for (AgentId v = 0; v < wheel.num_agents(); ++v) {
    const std::int32_t dv =
        dist[static_cast<std::size_t>(g.agent_node(v))];
    const bool expect_degraded = dv >= 0 && dv <= reach;
    EXPECT_EQ(m.degraded[static_cast<std::size_t>(v)] != 0, expect_degraded)
        << "agent " << v << " at distance " << dv;
    (expect_degraded ? inside : outside) += 1;
  }
  ASSERT_GT(inside, 0) << "crash cone misses every agent: test is vacuous";
  ASSERT_GT(outside, 0) << "crash cone covers the graph: test is vacuous";

  // The outputs still all match the oracle (engine M's fallback is exact);
  // what must differ is the accounting.
  const MessageRunResult oracle = solve_special_message_passing(wheel, R);
  expect_same_vector(m.x, oracle.x, "permanent crash M", 0);
}

// ---------------------------------------------------------------------------
// Dynamic mode: a recovered faulty cold solve is indistinguishable from a
// never-faulted one; an unrecoverable one degrades to the engine-L path
// ---------------------------------------------------------------------------

TEST(FaultDynamic, RecoveredColdSolveReplaysBitIdentical) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 24, .width = 1, .twist = 0});
  const std::int32_t R = 2;
  const CommGraph g(wheel);
  const FaultPlan plan = chaos_plan(g, 271);

  for (const DynamicEngine engine :
       {DynamicEngine::kMessagePassing, DynamicEngine::kStreaming}) {
    IncrementalSolver::Options fo, co;
    fo.R = co.R = R;
    fo.engine = co.engine = engine;
    fo.cold_faults = &plan;
    IncrementalSolver faulty(wheel, fo);
    IncrementalSolver control(wheel, co);
    EXPECT_FALSE(faulty.degraded_to_local());
    expect_same_vector(faulty.x(), control.x(), "faulty cold solve", -1);

    // The repaired history must be bitwise the fault-free recording: every
    // subsequent delta replays to identical outputs AND identical traffic.
    Rng rng(57 + static_cast<std::uint64_t>(engine));
    for (int step = 0; step < 4; ++step) {
      const InstanceDelta delta = random_coeff_delta(faulty.special(), rng);
      faulty.apply(delta);
      control.apply(delta);
      expect_same_vector(faulty.x(), control.x(), "post-fault replay", step);
      EXPECT_EQ(faulty.last_update().net.fresh_messages,
                control.last_update().net.fresh_messages)
          << "step " << step;
      EXPECT_EQ(faulty.last_update().net.replayed_messages,
                control.last_update().net.replayed_messages)
          << "step " << step;
    }
  }
}

TEST(FaultDynamic, UnrecoverableColdSolveDegradesToLocalPath) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 24, .width = 1, .twist = 0});
  const std::int32_t R = 2;
  const CommGraph g(wheel);
  FaultSpec fs;
  fs.seed = 3;
  fs.crashes.push_back(
      {.node = g.num_nodes() / 2, .round = 2, .restart_round = -1});
  const FaultPlan plan(fs);

  IncrementalSolver::Options opt;
  opt.R = R;
  opt.engine = DynamicEngine::kMessagePassing;
  opt.cold_faults = &plan;
  IncrementalSolver inc(wheel, opt);
  EXPECT_TRUE(inc.degraded_to_local());
  EXPECT_EQ(inc.engine(), DynamicEngine::kMemoizedDp);
  expect_same_vector(inc.x(), solve_special_local_views(wheel, R),
                     "degraded cold solve vs scratch L", -1);

  // Updates carry on over the engine-L dirty-ball machinery, still exact.
  MaxMinInstance cur = wheel;
  Rng rng(58);
  for (int step = 0; step < 3; ++step) {
    const InstanceDelta delta = random_coeff_delta(inc.special(), rng);
    inc.apply(delta);
    cur.apply(delta);
    expect_same_vector(inc.x(), solve_special_local_views(cur, R),
                       "degraded-path update vs scratch L", step);
    EXPECT_EQ(inc.last_update().net.fresh_messages, 0);
  }
}

TEST(FaultDynamic, ColdFaultsRejectedForMemoizedEngine) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 8, .width = 1, .twist = 0});
  const FaultPlan plan(FaultSpec{.drop_rate = 0.1});
  IncrementalSolver::Options opt;
  opt.engine = DynamicEngine::kMemoizedDp;
  opt.cold_faults = &plan;
  EXPECT_THROW(IncrementalSolver(wheel, opt), CheckError);
}

// ---------------------------------------------------------------------------
// solve_local plumbing: degraded flags map through the §4 pipeline
// ---------------------------------------------------------------------------

TEST(FaultSolverApi, FaultsRejectedForSimulatedEngines) {
  const MaxMinInstance inst = random_general({.num_agents = 12}, 9);
  const FaultPlan plan(FaultSpec{.drop_rate = 0.1});
  LocalParams params;
  params.engine = LocalEngine::kCentralized;
  params.faults = &plan;
  EXPECT_THROW(solve_local(inst, params), CheckError);
  params.engine = LocalEngine::kLocalViews;
  EXPECT_THROW(solve_local(inst, params), CheckError);
  EXPECT_THROW(LocalResolver(inst, params), CheckError);
}

TEST(FaultSolverApi, RecoveredRunReportsNoDegradation) {
  const MaxMinInstance inst = random_general({.num_agents = 16}, 11);
  const std::int32_t R = 2;
  const Pipeline pipeline = to_special_form(inst);
  const CommGraph g(pipeline.special);
  const FaultPlan plan = chaos_plan(g, 137);

  LocalParams clean_params;
  clean_params.R = R;
  clean_params.engine = LocalEngine::kMessagePassing;
  const LocalSolution clean = solve_local(inst, clean_params);
  EXPECT_TRUE(clean.degraded.empty());
  EXPECT_TRUE(clean.degraded_special.empty());

  LocalParams params = clean_params;
  params.faults = &plan;
  const LocalSolution sol = solve_local(inst, params);
  expect_same_vector(sol.x, clean.x, "recovered solve_local", 0);
  ASSERT_EQ(sol.degraded_special.size(),
            static_cast<std::size_t>(pipeline.special.num_agents()));
  ASSERT_EQ(sol.degraded.size(), static_cast<std::size_t>(inst.num_agents()));
  for (const std::uint8_t f : sol.degraded_special) EXPECT_EQ(f, 0);
  for (const std::uint8_t f : sol.degraded) EXPECT_EQ(f, 0);
  EXPECT_FALSE(sol.degraded_to_local);
}

TEST(FaultSolverApi, DegradedFlagsCoverEveryInexactOriginalAgent) {
  // Engine S under a permanent crash: degraded special agents carry the
  // engine-L fallback (~1 ulp off S), so the mapped-back flags must cover
  // every original coordinate that is not bitwise fault-free -- that is the
  // guarantee the flags exist to give.
  const MaxMinInstance inst = random_general({.num_agents = 16}, 13);
  const std::int32_t R = 2;
  const Pipeline pipeline = to_special_form(inst);
  const CommGraph g(pipeline.special);
  FaultSpec fs;
  fs.seed = 29;
  fs.crashes.push_back(
      {.node = g.num_nodes() / 2, .round = 2, .restart_round = -1});
  const FaultPlan plan(fs);

  LocalParams clean_params;
  clean_params.R = R;
  clean_params.engine = LocalEngine::kStreaming;
  const LocalSolution clean = solve_local(inst, clean_params);
  LocalParams params = clean_params;
  params.faults = &plan;
  const LocalSolution sol = solve_local(inst, params);

  std::int64_t special_flagged = 0;
  for (const std::uint8_t f : sol.degraded_special) special_flagged += f;
  ASSERT_GT(special_flagged, 0) << "crash degraded nothing: test is vacuous";

  ASSERT_EQ(sol.degraded.size(), clean.x.size());
  std::int64_t flagged = 0;
  for (std::size_t v = 0; v < sol.x.size(); ++v) {
    flagged += sol.degraded[v];
    if (sol.degraded[v] == 0) {
      EXPECT_TRUE(same_bits(sol.x[v], clean.x[v]))
          << "un-flagged original agent " << v << " is not bitwise exact";
    } else {
      EXPECT_NEAR(sol.x[v], clean.x[v], 1e-9) << "agent " << v;
    }
  }
  EXPECT_GT(flagged, 0);
}

// ---------------------------------------------------------------------------
// Parallel replay: bitwise thread-count invariance (satellite 1)
// ---------------------------------------------------------------------------

TEST(ParallelReplay, RecoveryReplayIsThreadCountInvariant) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  const std::int32_t R = 2;
  const CommGraph g(grid);
  const FaultPlan plan = chaos_plan(g, 401);
  const auto factory = [&](NodeId) {
    return std::make_unique<GatherProgram>(view_radius(R), R,
                                           TSearchOptions{});
  };

  SyncNetwork serial(g, /*threads=*/1);
  SyncNetwork parallel(g, /*threads=*/0);
  const FaultTolerantResult a =
      run_fault_tolerant(serial, plan, factory, view_radius(R), R);
  const FaultTolerantResult b =
      run_fault_tolerant(parallel, plan, factory, view_radius(R), R);
  expect_same_vector(a.x, b.x, "threads=1 vs threads=0", 0);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.recovered_nodes, b.recovered_nodes);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.fresh_messages, b.stats.fresh_messages);
  EXPECT_EQ(a.stats.replayed_messages, b.stats.replayed_messages);
  EXPECT_EQ(a.stats.bytes, b.stats.bytes);
  EXPECT_EQ(a.stats.max_message_bytes, b.stats.max_message_bytes);
  EXPECT_EQ(a.stats.recovered_messages, b.stats.recovered_messages);
  EXPECT_EQ(a.stats.recovery_rounds, b.stats.recovery_rounds);
}

TEST(ParallelReplay, DynamicUpdatesAreThreadCountInvariant) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  IncrementalSolver::Options so, po;
  so.R = po.R = 2;
  so.engine = po.engine = DynamicEngine::kMessagePassing;
  so.threads = 1;
  po.threads = 0;
  IncrementalSolver serial(grid, so);
  IncrementalSolver parallel(grid, po);
  Rng rng(402);
  for (int step = 0; step < 3; ++step) {
    const InstanceDelta delta = random_coeff_delta(serial.special(), rng);
    serial.apply(delta);
    parallel.apply(delta);
    expect_same_vector(parallel.x(), serial.x(), "parallel replay", step);
    EXPECT_EQ(serial.last_update().net.fresh_messages,
              parallel.last_update().net.fresh_messages);
    EXPECT_EQ(serial.last_update().net.replayed_messages,
              parallel.last_update().net.replayed_messages);
    EXPECT_EQ(serial.last_update().net.max_message_bytes,
              parallel.last_update().net.max_message_bytes);
  }
}

}  // namespace
}  // namespace locmm
