// Tests for the wire codec (dist/wire.hpp): byte-exact round trips of nodes,
// message frames and whole views across every generator family (pinning
// ViewTree::byte_size() == encode_view().size() -- byte_size is a quote of
// the encoder, not a parallel formula), and a hostile-bytes corpus against
// the delivery-boundary decoder: truncations, trailing garbage, unknown
// kinds, count lies, field overflows, non-canonical headers, preorder
// structure damage, and NaN payload bit patterns (all of which must
// checksum distinctly and decode safely).
#include "dist/wire.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "dist/fault.hpp"
#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"
#include "graph/view_tree.hpp"
#include "support/hash.hpp"
#include "support/wire_layout.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Re-stamps a valid checksum over a (possibly doctored) frame, modelling an
// adversary that fixes the digest after tampering: whatever it hides must be
// caught by the structural layers instead.
void restamp(std::vector<std::uint8_t>& frame) {
  ASSERT_GE(frame.size(), 8u);
  store_le(frame.data() + frame.size() - 8,
           frame_checksum({frame.data(), frame.size() - 8}), 8);
}

std::array<std::uint8_t, 13> raw_node(const WireHeader& h, double coeff) {
  std::array<std::uint8_t, 13> bytes{};
  store_le(bytes.data(), pack_wire_header(h), 5);
  store_le(bytes.data() + 5, std::bit_cast<std::uint64_t>(coeff), 8);
  return bytes;
}

// Builds a view frame straight from raw node bytes (bypassing the encoder's
// validity CHECKs) with a correct checksum: the hostile-structure probe.
std::vector<std::uint8_t> raw_view_frame(
    const std::vector<std::array<std::uint8_t, 13>>& nodes) {
  std::vector<std::uint8_t> f;
  f.push_back(2);  // kind = view
  f.resize(5);
  store_le(f.data() + 1, nodes.size(), 4);
  for (const auto& n : nodes) f.insert(f.end(), n.begin(), n.end());
  f.resize(f.size() + 8);
  restamp(f);
  return f;
}

WireDecodeStatus decode_status(const std::vector<std::uint8_t>& frame) {
  Message out;
  return decode_message_frame(frame, out);
}

std::vector<WireNode> valid_blob() {
  WireNode root;
  root.type = NodeType::kAgent;
  root.degree = 3;
  root.constraint_degree = 2;
  root.parent_port = 1;
  root.parent_coeff = 1.25;
  root.num_children = 2;
  WireNode c1;
  c1.type = NodeType::kConstraint;
  c1.degree = 2;
  c1.parent_port = 0;
  c1.parent_coeff = 0.75;
  c1.num_children = 0;
  WireNode c2;
  c2.type = NodeType::kObjective;
  c2.degree = 2;
  c2.parent_port = 1;
  c2.parent_coeff = 1.0;
  c2.num_children = 0;
  return {root, c1, c2};
}

void expect_node_eq(const WireNode& a, const WireNode& b,
                    const std::string& what) {
  EXPECT_EQ(a.type, b.type) << what;
  EXPECT_EQ(a.degree, b.degree) << what;
  EXPECT_EQ(a.constraint_degree, b.constraint_degree) << what;
  EXPECT_EQ(a.parent_port, b.parent_port) << what;
  EXPECT_EQ(a.num_children, b.num_children) << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.parent_coeff),
            std::bit_cast<std::uint64_t>(b.parent_coeff))
      << what;
}

// ---------------------------------------------------------------------------
// Node codec
// ---------------------------------------------------------------------------

TEST(WireNodeCodec, RoundTripsEveryFieldIncludingCoeffBitPatterns) {
  std::vector<WireNode> cases = valid_blob();
  WireNode big;
  big.type = NodeType::kAgent;
  big.degree = static_cast<std::int32_t>(kWireMaxDegree);
  big.constraint_degree =
      static_cast<std::int32_t>(kWireMaxDegree - kWireMaxObjDeg);
  big.parent_port = static_cast<std::int32_t>(kWireMaxDegree) - 1;
  big.num_children = static_cast<std::int32_t>(kWireMaxDegree);
  cases.push_back(big);
  WireNode rootish = cases[0];
  rootish.parent_port = -1;  // whole-view roots have no parent edge
  cases.push_back(rootish);

  const double coeffs[] = {0.0, -0.0, 1.0, -3.25e-12,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::bit_cast<double>(0x7ff0000000000001ull)};
  for (WireNode w : cases) {
    for (const double c : coeffs) {
      w.parent_coeff = c;
      std::uint8_t bytes[13];
      encode_wire_node(w, bytes);
      WireNode out;
      ASSERT_TRUE(decode_wire_node(bytes, out));
      expect_node_eq(w, out, "node round trip");
    }
  }
}

TEST(WireNodeCodec, RejectsOutOfRangeAndNonCanonicalHeaders) {
  const auto rejected = [](const WireHeader& h) {
    const auto bytes = raw_node(h, 1.0);
    WireNode out;
    return !decode_wire_node(bytes.data(), out);
  };
  const WireHeader ok = {.type = 0, .degree = 3, .pport1 = 2, .nchild = 2,
                         .objdeg = 1};
  EXPECT_FALSE(rejected(ok));
  EXPECT_TRUE(rejected({.type = 3, .degree = 3, .pport1 = 2, .nchild = 2,
                        .objdeg = 1}));  // bad type
  EXPECT_TRUE(rejected({.type = 0, .degree = 0, .pport1 = 0, .nchild = 0,
                        .objdeg = 0}));  // zero degree
  EXPECT_TRUE(rejected({.type = 0, .degree = 3, .pport1 = 4, .nchild = 2,
                        .objdeg = 1}));  // parent port past the degree
  EXPECT_TRUE(rejected({.type = 0, .degree = 3, .pport1 = 2, .nchild = 4,
                        .objdeg = 1}));  // child count past the degree
  EXPECT_TRUE(rejected({.type = 0, .degree = 3, .pport1 = 2, .nchild = 2,
                        .objdeg = 4}));  // objective degree past the degree
  // A relay whose objective-degree field is nonzero has no encoder origin:
  // the decoder must reject the non-canonical header even though every
  // field is individually in range.
  EXPECT_TRUE(rejected({.type = 1, .degree = 3, .pport1 = 2, .nchild = 2,
                        .objdeg = 1}));
  EXPECT_TRUE(rejected({.type = 2, .degree = 3, .pport1 = 2, .nchild = 2,
                        .objdeg = 1}));
}

// ---------------------------------------------------------------------------
// Message frames
// ---------------------------------------------------------------------------

TEST(WireFrames, ByteSizeIsTheEncoderNotAFormula) {
  Message none;
  EXPECT_EQ(encode_message(none).size(), 0u);
  EXPECT_EQ(none.byte_size(), 0);

  const Message s = Message::make_scalar(2.5);
  EXPECT_EQ(static_cast<std::int64_t>(encode_message(s).size()),
            s.byte_size());
  EXPECT_EQ(s.byte_size(), kScalarFrameBytes);

  const Message v = Message::make_view(valid_blob());
  EXPECT_EQ(static_cast<std::int64_t>(encode_message(v).size()),
            v.byte_size());
  EXPECT_EQ(v.byte_size(), view_frame_bytes(3));
}

TEST(WireFrames, ScalarAndViewRoundTripBitwise) {
  for (const double value : {1.7, 0.0, -0.0, -3.25e-12,
                             std::numeric_limits<double>::infinity()}) {
    const std::vector<std::uint8_t> f =
        encode_message(Message::make_scalar(value));
    Message out;
    ASSERT_EQ(decode_message_frame(f, out), WireDecodeStatus::kOk);
    EXPECT_EQ(out.kind, Message::Kind::kScalar);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.scalar),
              std::bit_cast<std::uint64_t>(value));
  }

  const std::vector<WireNode> blob = valid_blob();
  const std::vector<std::uint8_t> f =
      encode_message(Message::make_view(blob));
  Message out;
  ASSERT_EQ(decode_message_frame(f, out), WireDecodeStatus::kOk);
  EXPECT_EQ(out.kind, Message::Kind::kView);
  ASSERT_EQ(out.view.size(), blob.size());
  for (std::size_t i = 0; i < blob.size(); ++i)
    expect_node_eq(blob[i], out.view[i], "blob node " + std::to_string(i));

  Message empty;
  EXPECT_EQ(decode_message_frame({}, empty), WireDecodeStatus::kOk);
  EXPECT_EQ(empty.kind, Message::Kind::kNone);
}

TEST(WireFrames, NaNPayloadsChecksumDistinctlyAndDecodeSafely) {
  // Distinct NaN encodings (quiet/signalling, different payload bits, both
  // signs) must stay distinct through encode -> checksum -> decode: the
  // checksum folds raw bit patterns, and the decoder hands them back
  // bit-exactly without ever doing arithmetic on them.
  const std::uint64_t nan_bits[] = {
      0x7ff8000000000000ull, 0x7ff8000000000001ull, 0x7ff0000000000001ull,
      0xfff8000000000000ull, 0xfff0deadbeef0001ull, 0x7fffffffffffffffull};
  std::set<std::uint64_t> checksums;
  for (const std::uint64_t bits : nan_bits) {
    const double nan = std::bit_cast<double>(bits);
    const Message m = Message::make_scalar(nan);
    const std::vector<std::uint8_t> f = encode_message(m);
    checksums.insert(load_le(f.data() + f.size() - 8, 8));
    EXPECT_EQ(message_checksum(m), load_le(f.data() + f.size() - 8, 8));
    Message out;
    ASSERT_EQ(decode_message_frame(f, out), WireDecodeStatus::kOk);
    EXPECT_TRUE(std::isnan(out.scalar));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.scalar), bits);
  }
  EXPECT_EQ(checksums.size(), std::size(nan_bits));
}

TEST(WireFrames, HostileBytesCorpus) {
  const std::vector<std::uint8_t> scalar =
      encode_message(Message::make_scalar(1.5));
  const std::vector<std::uint8_t> view =
      encode_message(Message::make_view(valid_blob()));

  // Every strict prefix is truncated; checksums cannot save it.
  for (const auto& clean : {scalar, view}) {
    for (std::size_t len = 1; len < clean.size(); ++len) {
      Message out;
      const WireDecodeStatus st =
          decode_message_frame({clean.data(), len}, out);
      EXPECT_NE(st, WireDecodeStatus::kOk) << "prefix " << len;
      EXPECT_EQ(out.kind, Message::Kind::kNone) << "prefix " << len;
    }
    // Trailing garbage is rejected even when the original bytes are intact.
    std::vector<std::uint8_t> longer = clean;
    longer.push_back(0);
    EXPECT_EQ(decode_status(longer), WireDecodeStatus::kTrailingBytes);
  }

  // Unknown kind bytes, with the checksum honestly re-stamped: kBadKind.
  for (const std::uint8_t kind : {std::uint8_t{0}, std::uint8_t{3},
                                  std::uint8_t{0xff}}) {
    std::vector<std::uint8_t> f = scalar;
    f[0] = kind;
    restamp(f);
    EXPECT_EQ(decode_status(f), WireDecodeStatus::kBadKind) << int(kind);
  }

  // A lying node count (re-stamped): the frame length no longer matches.
  {
    std::vector<std::uint8_t> f = view;
    store_le(f.data() + 1, 2, 4);
    restamp(f);
    EXPECT_EQ(decode_status(f), WireDecodeStatus::kTrailingBytes);
    store_le(f.data() + 1, 4, 4);
    restamp(f);
    EXPECT_EQ(decode_status(f), WireDecodeStatus::kTruncated);
    // The hostile extreme: count = 2^32 - 1 must fail the length check
    // cheaply (64-bit arithmetic, no allocation), not attempt a 52 GB
    // resize.
    store_le(f.data() + 1, 0xffffffffull, 4);
    restamp(f);
    EXPECT_EQ(decode_status(f), WireDecodeStatus::kTruncated);
  }

  // Plain bit corruption without re-stamping: the checksum layer.
  {
    std::vector<std::uint8_t> f = view;
    f[7] ^= 0x10;
    EXPECT_EQ(decode_status(f), WireDecodeStatus::kBadChecksum);
  }

  // Field overflows behind a valid checksum: kBadNode.
  {
    const WireHeader bad = {.type = 0, .degree = 3, .pport1 = 5, .nchild = 0,
                            .objdeg = 0};
    EXPECT_EQ(decode_status(raw_view_frame({raw_node(bad, 1.0)})),
              WireDecodeStatus::kBadNode);
  }

  // Structure damage behind a valid checksum and valid nodes: kBadStructure.
  const WireHeader leafish = {.type = 1, .degree = 2, .pport1 = 1,
                              .nchild = 0, .objdeg = 0};
  {
    // Root claims two subtrees but only one follows: preorder underflow.
    const WireHeader root2 = {.type = 0, .degree = 3, .pport1 = 2,
                              .nchild = 2, .objdeg = 2};
    EXPECT_EQ(decode_status(raw_view_frame(
                  {raw_node(root2, 1.0), raw_node(leafish, 1.0)})),
              WireDecodeStatus::kBadStructure);
  }
  {
    // Two complete trees side by side: a forest, not one blob.
    EXPECT_EQ(decode_status(raw_view_frame(
                  {raw_node(leafish, 1.0), raw_node(leafish, 1.0)})),
              WireDecodeStatus::kBadStructure);
  }
}

// ---------------------------------------------------------------------------
// Whole-view codec, across every generator family
// ---------------------------------------------------------------------------

struct Family {
  std::string name;
  MaxMinInstance inst;
};

std::vector<Family> all_families() {
  std::vector<Family> fams;
  fams.push_back({"random_special",
                  random_special_form({.num_agents = 10, .delta_k = 3}, 7)});
  fams.push_back(
      {"random_general",
       to_special_form(random_general({.num_agents = 12}, 3)).special});
  fams.push_back({"cycle", cycle_instance({.num_agents = 8}, 1)});
  fams.push_back({"path", path_instance(8)});
  fams.push_back({"grid", grid_instance({.rows = 4, .cols = 4}, 2)});
  fams.push_back(
      {"special_grid", special_grid_instance({.rows = 4, .cols = 4}, 3)});
  fams.push_back({"tree", tree_instance({.max_agents = 20}, 4)});
  fams.push_back({"sensor",
                  sensor_instance({.num_sensors = 12, .num_sinks = 4}, 5)});
  fams.push_back({"bandwidth",
                  bandwidth_instance({.num_routers = 8, .num_chords = 3,
                                      .num_customers = 5}, 6)});
  fams.push_back({"regular",
                  regular_special_instance({.num_objectives = 6}, 8)});
  fams.push_back({"circulant",
                  circulant_special_instance({.num_objectives = 8}, 9)});
  fams.push_back({"layered", layered_instance({.delta_k = 2, .layers = 4,
                                               .width = 2, .twist = 1})});
  return fams;
}

TEST(WireViewCodec, RoundTripsEveryGeneratorFamily) {
  for (const Family& fam : all_families()) {
    const CommGraph g(fam.inst);
    // A few roots of each type, a few depths -- including depth 0 (a
    // single-node view) and the engines' R = 2 gather radius.
    const NodeId roots[] = {g.agent_node(0),
                            g.constraint_node(0),
                            g.objective_node(0),
                            g.agent_node(g.num_agents() - 1)};
    for (const NodeId root : roots) {
      for (const std::int32_t depth : {0, 1, 3, 7}) {
        const ViewTree v = ViewTree::build(g, root, depth);
        const std::vector<std::uint8_t> bytes = encode_view(v);
        ASSERT_EQ(static_cast<std::int64_t>(bytes.size()), v.byte_size())
            << fam.name << " root " << root << " depth " << depth;
        ViewTree back;
        ASSERT_EQ(decode_view(bytes, v.depth(), back), WireDecodeStatus::kOk)
            << fam.name << " root " << root << " depth " << depth;
        EXPECT_TRUE(ViewTree::structurally_equal(v, back))
            << fam.name << " root " << root << " depth " << depth;
        // And the decoded tree re-encodes to the identical bytes: the codec
        // is a bijection on canonical payloads.
        EXPECT_EQ(encode_view(back), bytes)
            << fam.name << " root " << root << " depth " << depth;
      }
    }
  }
}

TEST(WireViewCodec, RejectsNonCanonicalPayloads) {
  const CommGraph g(cycle_instance({.num_agents = 6}, 1));
  const ViewTree v = ViewTree::build(g, g.agent_node(0), 3);
  const std::vector<std::uint8_t> bytes = encode_view(v);

  ViewTree out;
  // Sizes that are not a whole number of nodes.
  EXPECT_EQ(decode_view({bytes.data(), bytes.size() - 1}, v.depth(), out),
            WireDecodeStatus::kTruncated);
  EXPECT_EQ(decode_view({}, v.depth(), out), WireDecodeStatus::kTruncated);
  // A root that claims a parent edge.
  {
    std::vector<std::uint8_t> d = bytes;
    WireNode root;
    ASSERT_TRUE(decode_wire_node(d.data(), root));
    root.parent_port = 0;
    encode_wire_node(root, d.data());
    EXPECT_EQ(decode_view(d, v.depth(), out), WireDecodeStatus::kBadStructure);
  }
  // Chopping whole nodes off the tail leaves children unclaimed or claimed
  // counts untiled: kBadStructure (never a crash or an over-read).
  for (std::size_t nodes = 1;
       nodes < bytes.size() / static_cast<std::size_t>(kWireNodeBytes);
       ++nodes) {
    const std::span<const std::uint8_t> prefix{
        bytes.data(), nodes * static_cast<std::size_t>(kWireNodeBytes)};
    EXPECT_NE(decode_view(prefix, v.depth(), out), WireDecodeStatus::kOk)
        << nodes;
  }
}

}  // namespace
}  // namespace locmm
