// Tests for explicit alternating trees: structure (Lemma 1), exact-LP t_u
// versus the production bisection (§5.2's two routes to the same number),
// and Lemma 3's extreme-point bounds on optimal solutions of A_u.
#include <gtest/gtest.h>

#include "core/alt_tree.hpp"
#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"

namespace locmm {
namespace {

MaxMinInstance pair_instance() {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0}, {1, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  return b.build();
}

TEST(AltTree, PairInstanceShape) {
  const SpecialFormInstance sf(pair_instance());
  const AltTree tree = build_alternating_tree(sf, 0, 0);
  // Root (minus) + one sibling (plus); constraints: root leaf + sibling
  // leaf; one objective.
  EXPECT_EQ(tree.instance.num_agents(), 2);
  EXPECT_EQ(tree.instance.num_constraints(), 2);
  EXPECT_EQ(tree.instance.num_objectives(), 1);
  EXPECT_EQ(tree.copies[0].origin, 0);
  EXPECT_FALSE(tree.copies[0].plus);
  EXPECT_EQ(tree.copies[1].origin, 1);
  EXPECT_TRUE(tree.copies[1].plus);
  // Optimum of A_u: both capacities relaxed to leaves -> 2.
  const MaxMinLpResult res = solve_lp_optimum(tree.instance);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.omega, 2.0, 1e-9);
}

TEST(AltTree, CopiesRepeatAcrossPaths) {
  // On a cycle-like wheel, deeper trees revisit G-agents as fresh copies.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 2, .width = 1, .twist = 0});
  const SpecialFormInstance sf(inst);
  const AltTree tree = build_alternating_tree(sf, 0, 2);
  EXPECT_GT(tree.instance.num_agents(), inst.num_agents());
}

class ExactVsBisection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBisection, LpAndBisectionAgree) {
  RandomSpecialParams p;
  p.num_agents = 12;
  p.delta_k = 3;
  const MaxMinInstance inst = random_special_form(p, GetParam());
  const SpecialFormInstance sf(inst);
  for (std::int32_t r : {0, 1}) {
    for (AgentId u = 0; u < inst.num_agents(); u += 3) {
      const double lp = t_exact_lp(sf, u, r);
      const double bisect = compute_t_single(sf, u, r);
      EXPECT_NEAR(lp, bisect, 1e-6) << "u=" << u << " r=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBisection,
                         ::testing::Values(201, 202, 203, 204, 205));

TEST(AltTree, Lemma3ExtremePointBounds) {
  // Any optimal solution x of the A_u LP satisfies
  //   x_v <= f+_{v,d}(omega*)  at plus positions,
  //   x_v >= f-_{v,d}(omega*)  at minus positions (paper (10)-(11)).
  RandomSpecialParams p;
  p.num_agents = 14;
  const MaxMinInstance inst = random_special_form(p, 210);
  const SpecialFormInstance sf(inst);
  const std::int32_t r = 1;
  for (AgentId u = 0; u < inst.num_agents(); u += 4) {
    const AltTree tree = build_alternating_tree(sf, u, r);
    const MaxMinLpResult res = solve_lp_optimum(tree.instance);
    ASSERT_EQ(res.status, LpStatus::kOptimal);
    const FTables ft = evaluate_f_global(sf, r, res.omega);
    for (std::size_t c = 0; c < tree.copies.size(); ++c) {
      const CopyInfo& info = tree.copies[c];
      const double xc = res.x[c];
      if (info.plus) {
        EXPECT_LE(xc, ft.plus[info.d][info.origin] + 1e-6)
            << "copy " << c << " of agent " << info.origin;
      } else {
        EXPECT_GE(xc, ft.minus[info.d][info.origin] - 1e-6)
            << "copy " << c << " of agent " << info.origin;
      }
    }
  }
}

TEST(AltTree, TreeOptimumUpperBoundsGraphOptimum) {
  // Lemma 2 verbatim: opt(A_u) >= opt(G), via the exact LP route.
  RandomSpecialParams p;
  p.num_agents = 12;
  const MaxMinInstance inst = random_special_form(p, 211);
  const SpecialFormInstance sf(inst);
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);
  for (AgentId u = 0; u < inst.num_agents(); u += 2) {
    EXPECT_GE(t_exact_lp(sf, u, 1), opt.omega - 1e-7);
  }
}

TEST(AltTree, CopyGuardTrips) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 4, .layers = 4, .width = 3, .twist = 1});
  const SpecialFormInstance sf(inst);
  EXPECT_THROW(build_alternating_tree(sf, 0, 6, /*max_copies=*/50),
               CheckError);
}

}  // namespace
}  // namespace locmm
