// Tests for the workload generators: validity, degree bounds, determinism,
// connectivity, special-form guarantees, family-specific structure.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

TEST(RandomGeneral, RespectsDegreeBoundsAndConnectivity) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    RandomGeneralParams p;
    p.num_agents = 50;
    p.delta_i = 4;
    p.delta_k = 3;
    const MaxMinInstance inst = random_general(p, seed);
    const InstanceStats s = inst.stats();
    EXPECT_EQ(s.agents, 50);
    EXPECT_LE(s.delta_i, 4);
    EXPECT_LE(s.delta_k, 3);
    EXPECT_TRUE(inst.connected());
  }
}

TEST(RandomGeneral, DeterministicInSeed) {
  RandomGeneralParams p;
  const MaxMinInstance a = random_general(p, 42);
  const MaxMinInstance b = random_general(p, 42);
  EXPECT_EQ(describe(a), describe(b));
  ASSERT_EQ(a.num_constraints(), b.num_constraints());
  for (ConstraintId i = 0; i < a.num_constraints(); ++i) {
    const auto ra = a.constraint_row(i);
    const auto rb = b.constraint_row(i);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()));
  }
}

TEST(RandomGeneral, SeedsProduceDistinctInstances) {
  RandomGeneralParams p;
  const MaxMinInstance a = random_general(p, 1);
  const MaxMinInstance b = random_general(p, 2);
  bool differ = a.num_constraints() != b.num_constraints();
  if (!differ) {
    for (ConstraintId i = 0; i < a.num_constraints() && !differ; ++i) {
      const auto ra = a.constraint_row(i);
      const auto rb = b.constraint_row(i);
      differ = !std::equal(ra.begin(), ra.end(), rb.begin(), rb.end());
    }
  }
  EXPECT_TRUE(differ);
}

TEST(RandomGeneral, UnitCoefficientsMode) {
  RandomGeneralParams p;
  p.unit_coefficients = true;
  const MaxMinInstance inst = random_general(p, 7);
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i)
    for (const Entry& e : inst.constraint_row(i))
      EXPECT_DOUBLE_EQ(e.coeff, 1.0);
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k)
    for (const Entry& e : inst.objective_row(k))
      EXPECT_DOUBLE_EQ(e.coeff, 1.0);
}

TEST(RandomSpecialForm, IsSpecialForm) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    RandomSpecialParams p;
    p.num_agents = 30;
    p.delta_k = 4;
    const MaxMinInstance inst = random_special_form(p, seed);
    EXPECT_TRUE(is_special_form(inst)) << "seed " << seed;
    EXPECT_LE(inst.stats().delta_k, 4);
    EXPECT_TRUE(inst.connected());
  }
}

TEST(Cycle, StructureAndDegrees) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 9}, 1);
  const InstanceStats s = inst.stats();
  EXPECT_EQ(s.agents, 9);
  EXPECT_EQ(s.constraints, 9);
  EXPECT_EQ(s.objectives, 9);
  EXPECT_EQ(s.delta_i, 2);
  EXPECT_EQ(s.delta_k, 2);
  EXPECT_EQ(s.max_iv, 2);
  EXPECT_EQ(s.max_kv, 2);
  EXPECT_TRUE(inst.connected());
}

TEST(Path, EndpointsGetSingletonObjectives) {
  const MaxMinInstance inst = path_instance(6);
  EXPECT_EQ(inst.agent_objectives(0).size(), 1u);
  EXPECT_EQ(inst.objective_row(inst.agent_objectives(0)[0].row).size(), 1u);
  EXPECT_TRUE(inst.connected());
  // Not special form (singleton objectives), but valid.
  EXPECT_FALSE(is_special_form(inst));
}

TEST(Grid, TorusCounts) {
  const MaxMinInstance inst = grid_instance({.rows = 5, .cols = 7}, 2);
  const InstanceStats s = inst.stats();
  EXPECT_EQ(s.agents, 35);
  EXPECT_EQ(s.constraints, 35);  // one per horizontal edge
  EXPECT_EQ(s.objectives, 35);   // one per vertical edge
  EXPECT_EQ(s.max_iv, 2);
  EXPECT_EQ(s.max_kv, 2);
  EXPECT_TRUE(inst.connected());
}

TEST(Tree, ValidAndDeterministic) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const MaxMinInstance a = tree_instance({}, seed);
    const MaxMinInstance b = tree_instance({}, seed);
    EXPECT_EQ(describe(a), describe(b));
    EXPECT_GE(a.num_agents(), 2);
  }
}

TEST(Sensor, BipartiteStructure) {
  const MaxMinInstance inst = sensor_instance({}, 5);
  // Each agent (sensor-sink pair) touches exactly one constraint and one
  // objective: a bipartite max-min LP.
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    EXPECT_EQ(inst.agent_constraints(v).size(), 1u);
    EXPECT_EQ(inst.agent_objectives(v).size(), 1u);
  }
  // Every sensor is covered.
  EXPECT_EQ(inst.num_objectives(), 30);
}

TEST(Sensor, SinkBoundRespectedWhenCapacitySuffices) {
  // 30 sensors, 10 sinks, cap 3: capacity is exactly sufficient, so the
  // nearest-first assignment must respect the cap strictly.
  SensorParams p;
  p.max_sensors_per_sink = 3;
  for (std::uint64_t seed : {11, 12, 13, 14}) {
    const MaxMinInstance inst = sensor_instance(p, seed);
    EXPECT_LE(inst.stats().delta_i, 3) << "seed " << seed;
  }
}

TEST(Sensor, OverfullFieldOverflowsGracefully) {
  SensorParams p;
  p.num_sensors = 12;
  p.num_sinks = 2;
  p.max_sensors_per_sink = 4;  // capacity 8 < 12 sensors
  const MaxMinInstance inst = sensor_instance(p, 15);
  EXPECT_EQ(inst.num_objectives(), 12);  // all sensors still covered
  EXPECT_GT(inst.stats().delta_i, 4);    // necessarily over cap
}

TEST(Bandwidth, RoutesAreLinkDisjointish) {
  const MaxMinInstance inst = bandwidth_instance({}, 17);
  EXPECT_EQ(inst.num_objectives(), 10);
  // Agents ride >= 1 link.
  for (AgentId v = 0; v < inst.num_agents(); ++v)
    EXPECT_GE(inst.agent_constraints(v).size(), 1u);
  // Customers have >= 1 route.
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k)
    EXPECT_GE(inst.objective_row(k).size(), 1u);
}

TEST(RegularSpecial, FullyRegularAndSpecialForm) {
  for (std::uint64_t seed : {1, 2, 3}) {
    RegularSpecialParams p;
    p.num_objectives = 10;
    p.delta_k = 3;
    p.constraints_per_agent = 2;
    const MaxMinInstance inst = regular_special_instance(p, seed);
    EXPECT_TRUE(is_special_form(inst)) << "seed " << seed;
    const InstanceStats s = inst.stats();
    EXPECT_EQ(s.agents, 30);
    EXPECT_EQ(s.objectives, 10);
    EXPECT_EQ(s.constraints, 30);  // n * c / 2
    EXPECT_EQ(s.delta_k, 3);
    for (AgentId v = 0; v < inst.num_agents(); ++v) {
      EXPECT_EQ(inst.agent_constraints(v).size(), 2u) << "agent " << v;
    }
  }
}

TEST(RegularSpecial, DeterministicInSeed) {
  RegularSpecialParams p;
  const MaxMinInstance a = regular_special_instance(p, 5);
  const MaxMinInstance c = regular_special_instance(p, 5);
  EXPECT_EQ(describe(a), describe(c));
}

TEST(Layered, SpecialFormWithExpectedCounts) {
  for (int dk : {2, 3, 4}) {
    const MaxMinInstance inst = layered_instance(
        {.delta_k = dk, .layers = 5, .width = 3, .twist = 1});
    EXPECT_TRUE(is_special_form(inst)) << "delta_k " << dk;
    const InstanceStats s = inst.stats();
    EXPECT_EQ(s.agents, 5 * 3 * dk);
    EXPECT_EQ(s.objectives, 5 * 3);
    EXPECT_EQ(s.constraints, 5 * 3 * (dk - 1));
    EXPECT_EQ(s.delta_k, dk);
    EXPECT_EQ(s.delta_i, 2);
    EXPECT_TRUE(inst.connected());
  }
}

TEST(Layered, UpAgentsCollectConstraints) {
  const MaxMinInstance inst =
      layered_instance({.delta_k = 4, .layers = 4, .width = 2, .twist = 1});
  // Up-agents have delta_k - 1 constraints; down-agents exactly one.
  int ups = 0, downs = 0;
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const auto deg = inst.agent_constraints(v).size();
    if (deg == 3) ++ups;
    if (deg == 1) ++downs;
  }
  EXPECT_EQ(ups, 4 * 2);
  EXPECT_EQ(downs, 4 * 2 * 3);
}

}  // namespace
}  // namespace locmm
