// Tests for the MaxMinInstance problem object: construction, port-order
// preservation, utilities, feasibility, validation failures, relabelling.
#include <gtest/gtest.h>

#include <vector>

#include "lp/instance.hpp"

namespace locmm {
namespace {

// The running example: 3 agents, 2 constraints, 2 objectives.
//   c0: 1*x0 + 2*x1 <= 1        k0: x0 + x1 >= w
//   c1: 1*x1 + 1*x2 <= 1        k1: 3*x2 >= w
MaxMinInstance tiny() {
  InstanceBuilder b(3);
  b.add_constraint({{0, 1.0}, {1, 2.0}});
  b.add_constraint({{1, 1.0}, {2, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  b.add_objective({{2, 3.0}});
  return b.build();
}

TEST(Instance, CountsAndStats) {
  const MaxMinInstance inst = tiny();
  EXPECT_EQ(inst.num_agents(), 3);
  EXPECT_EQ(inst.num_constraints(), 2);
  EXPECT_EQ(inst.num_objectives(), 2);
  const InstanceStats s = inst.stats();
  EXPECT_EQ(s.nnz_a, 4);
  EXPECT_EQ(s.nnz_c, 3);
  EXPECT_EQ(s.delta_i, 2);
  EXPECT_EQ(s.delta_k, 2);
  EXPECT_EQ(s.max_iv, 2);  // agent 1 sits in both constraints
  EXPECT_EQ(s.max_kv, 1);
}

TEST(Instance, RowsPreservePortOrder) {
  const MaxMinInstance inst = tiny();
  const auto row = inst.constraint_row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].agent, 0);
  EXPECT_DOUBLE_EQ(row[0].coeff, 1.0);
  EXPECT_EQ(row[1].agent, 1);
  EXPECT_DOUBLE_EQ(row[1].coeff, 2.0);
}

TEST(Instance, AgentIncidenceInInsertionOrder) {
  const MaxMinInstance inst = tiny();
  const auto inc = inst.agent_constraints(1);
  ASSERT_EQ(inc.size(), 2u);
  EXPECT_EQ(inc[0].row, 0);
  EXPECT_DOUBLE_EQ(inc[0].coeff, 2.0);
  EXPECT_EQ(inc[1].row, 1);
  EXPECT_DOUBLE_EQ(inc[1].coeff, 1.0);
  const auto kinc = inst.agent_objectives(2);
  ASSERT_EQ(kinc.size(), 1u);
  EXPECT_EQ(kinc[0].row, 1);
  EXPECT_DOUBLE_EQ(kinc[0].coeff, 3.0);
}

TEST(Instance, UtilityIsMinOverObjectives) {
  const MaxMinInstance inst = tiny();
  const std::vector<double> x{0.2, 0.3, 0.1};
  EXPECT_DOUBLE_EQ(inst.utility(x), std::min(0.5, 0.3));
  const auto vals = inst.objective_values(x);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0], 0.5);
  EXPECT_NEAR(vals[1], 0.3, 1e-15);
}

TEST(Instance, ViolationMeasuresWorstRow) {
  const MaxMinInstance inst = tiny();
  EXPECT_LE(inst.violation(std::vector<double>{0.0, 0.0, 0.0}), 0.0);
  // c0: 0.5 + 2*0.5 = 1.5 -> violation 0.5.
  EXPECT_NEAR(inst.violation(std::vector<double>{0.5, 0.5, 0.0}), 0.5, 1e-15);
  // Negative coordinates are infeasible too.
  EXPECT_NEAR(inst.violation(std::vector<double>{-0.25, 0.0, 0.0}), 0.25,
              1e-15);
  EXPECT_TRUE(inst.is_feasible(std::vector<double>{0.1, 0.1, 0.1}));
  EXPECT_FALSE(inst.is_feasible(std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(InstanceBuilder, GrowsAgentsImplicitly) {
  InstanceBuilder b;
  b.add_constraint({{4, 1.0}});
  EXPECT_EQ(b.num_agents(), 5);
}

TEST(InstanceValidate, RejectsEmptyRow) {
  InstanceBuilder b(1);
  b.add_constraint({{0, 1.0}});
  b.add_objective({{0, 1.0}});
  b.add_constraint({});
  EXPECT_THROW(b.build(), CheckError);
}

TEST(InstanceValidate, RejectsNonPositiveCoefficient) {
  InstanceBuilder b(1);
  b.add_constraint({{0, 0.0}});
  b.add_objective({{0, 1.0}});
  EXPECT_THROW(b.build(), CheckError);
}

TEST(InstanceValidate, RejectsDuplicateAgentInRow) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0}, {0, 2.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  b.add_constraint({{1, 1.0}});
  EXPECT_THROW(b.build(), CheckError);
}

TEST(InstanceValidate, RejectsUnconstrainedAgent) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  EXPECT_THROW(b.build(), CheckError);  // agent 1 has no constraint
}

TEST(InstanceValidate, RejectsNonContributingAgent) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0}, {1, 1.0}});
  b.add_objective({{0, 1.0}});
  EXPECT_THROW(b.build(), CheckError);  // agent 1 has no objective
}

TEST(Instance, ConnectedDetectsComponents) {
  InstanceBuilder b(4);
  b.add_constraint({{0, 1.0}, {1, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  b.add_constraint({{2, 1.0}, {3, 1.0}});
  b.add_objective({{2, 1.0}, {3, 1.0}});
  const MaxMinInstance inst = b.build();
  EXPECT_FALSE(inst.connected());
  EXPECT_TRUE(tiny().connected());
}

TEST(Instance, RelabelPreservesSemantics) {
  const MaxMinInstance inst = tiny();
  const std::vector<AgentId> perm{2, 0, 1};  // new id of agent v is perm[v]
  const MaxMinInstance rel = relabel_agents(inst, perm);
  const std::vector<double> x{0.2, 0.3, 0.1};
  std::vector<double> xr(3);
  for (int v = 0; v < 3; ++v) xr[perm[v]] = x[v];
  EXPECT_DOUBLE_EQ(inst.utility(x), rel.utility(xr));
  EXPECT_DOUBLE_EQ(inst.violation(x), rel.violation(xr));
}

TEST(Instance, DescribeMentionsAllCounts) {
  const std::string d = describe(tiny());
  EXPECT_NE(d.find("V=3"), std::string::npos);
  EXPECT_NE(d.find("I=2"), std::string::npos);
  EXPECT_NE(d.find("K=2"), std::string::npos);
}

}  // namespace
}  // namespace locmm
