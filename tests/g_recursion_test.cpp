// Tests for smoothing (§5.3) and the g recursion: the BFS-min reference for
// s, and the paper's Lemmata 5-7 as executable properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "core/g_recursion.hpp"
#include "core/smoothing.hpp"
#include "core/special_form.hpp"
#include "core/upper_bound.hpp"
#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"

namespace locmm {
namespace {

struct GFixture {
  MaxMinInstance inst;
  std::int32_t r;
  std::vector<double> t;
  std::vector<double> s;
  GTables g;

  GFixture(MaxMinInstance in, std::int32_t rr)
      : inst(std::move(in)), r(rr) {
    const SpecialFormInstance sf(inst);
    t = compute_t_all(sf, r);
    s = smooth_min(sf, t, r);
    g = compute_g(sf, s, r);
  }
};

TEST(Smoothing, MatchesBfsMinReference) {
  RandomSpecialParams p;
  p.num_agents = 24;
  const MaxMinInstance inst = random_special_form(p, 8);
  const SpecialFormInstance sf(inst);
  const CommGraph cg(inst);
  for (std::int32_t r : {0, 1, 2}) {
    const std::vector<double> t = compute_t_all(sf, r);
    const std::vector<double> s = smooth_min(sf, t, r);
    for (AgentId v = 0; v < inst.num_agents(); ++v) {
      // Reference: min of t over agents within graph distance 4r+2.
      const auto dist = cg.bfs_distances(cg.agent_node(v), 4 * r + 2);
      double ref = std::numeric_limits<double>::infinity();
      for (AgentId u = 0; u < inst.num_agents(); ++u)
        if (dist[cg.agent_node(u)] >= 0) ref = std::min(ref, t[u]);
      EXPECT_DOUBLE_EQ(s[v], ref) << "v=" << v << " r=" << r;
    }
  }
}

TEST(Smoothing, SIsBelowOwnT) {
  RandomSpecialParams p;
  p.num_agents = 30;
  const MaxMinInstance inst = random_special_form(p, 9);
  const SpecialFormInstance sf(inst);
  const std::vector<double> t = compute_t_all(sf, 1);
  const std::vector<double> s = smooth_min(sf, t, 1);
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    EXPECT_LE(s[v], t[v]);
    EXPECT_GE(s[v], 0.0);
  }
}

class Lemmata : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemmata, Lemma5BoundaryBounds) {
  RandomSpecialParams p;
  p.num_agents = 20;
  p.delta_k = 4;
  GFixture su(random_special_form(p, GetParam()), 2);
  const SpecialFormInstance sf(su.inst);
  for (AgentId v = 0; v < su.inst.num_agents(); ++v) {
    EXPECT_GE(su.g.plus[su.r][v], -1e-12) << "g+_{v,r} >= 0";
    EXPECT_LE(su.g.minus[su.r][v], sf.inv_cap(v) + 1e-9)
        << "g-_{v,r} <= min_i 1/a_iv";
  }
}

TEST_P(Lemmata, Lemma6Monotonicity) {
  RandomSpecialParams p;
  p.num_agents = 20;
  GFixture su(random_special_form(p, GetParam()), 3);
  for (std::int32_t d = 1; d <= su.r; ++d) {
    for (AgentId v = 0; v < su.inst.num_agents(); ++v) {
      EXPECT_LE(su.g.minus[d - 1][v], su.g.minus[d][v] + 1e-12);
      EXPECT_GE(su.g.plus[d - 1][v], su.g.plus[d][v] - 1e-12);
    }
  }
}

TEST_P(Lemmata, Lemma7GPlusNonNegative) {
  RandomSpecialParams p;
  p.num_agents = 20;
  GFixture su(random_special_form(p, GetParam()), 3);
  for (std::int32_t d = 0; d <= su.r; ++d)
    for (AgentId v = 0; v < su.inst.num_agents(); ++v)
      EXPECT_GE(su.g.plus[d][v], -1e-12) << "d=" << d << " v=" << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemmata,
                         ::testing::Values(61, 62, 63, 64, 65, 66));

TEST(GRecursion, OutputFormula) {
  RandomSpecialParams p;
  p.num_agents = 12;
  GFixture su(random_special_form(p, 71), 1);
  const std::vector<double> x = output_x(su.g, su.r);
  const double R = su.r + 2;
  for (AgentId v = 0; v < su.inst.num_agents(); ++v) {
    double sum = 0.0;
    for (std::int32_t d = 0; d <= su.r; ++d)
      sum += su.g.plus[d][v] + su.g.minus[d][v];
    EXPECT_DOUBLE_EQ(x[v], sum / (2.0 * R));
    EXPECT_GE(x[v], 0.0);
  }
}

TEST(GRecursion, GPlusAtDepthZeroIsCapacity) {
  RandomSpecialParams p;
  p.num_agents = 12;
  const MaxMinInstance inst = random_special_form(p, 72);
  const SpecialFormInstance sf(inst);
  GFixture su(inst, 2);
  for (AgentId v = 0; v < inst.num_agents(); ++v)
    EXPECT_DOUBLE_EQ(su.g.plus[0][v], sf.inv_cap(v));
}

TEST(GRecursion, Lemma4GBracketsFAtTu) {
  // Lemma 4: for every root u and every state (v, d) in A_u's level sets,
  //   g-_{v,d} <= f-_{u,v,d}(t_u)   and   f+_{u,v,d}(t_u) <= g+_{v,d}.
  RandomSpecialParams p;
  p.num_agents = 16;
  const MaxMinInstance inst = random_special_form(p, 74);
  const SpecialFormInstance sf(inst);
  const std::int32_t r = 2;
  GFixture su(inst, r);

  for (AgentId u = 0; u < inst.num_agents(); u += 2) {
    // Reach set of (u, r, minus) under the recursion's dependencies.
    std::set<std::tuple<AgentId, std::int32_t, bool>> reach;
    std::vector<std::tuple<AgentId, std::int32_t, bool>> stack{{u, r, false}};
    while (!stack.empty()) {
      auto [v, d, plus] = stack.back();
      stack.pop_back();
      if (!reach.insert({v, d, plus}).second) continue;
      if (plus) {
        if (d > 0)
          for (const ConstraintArc& arc : sf.arcs(v))
            stack.push_back({arc.partner, d - 1, false});
      } else {
        for (AgentId w : sf.siblings(v)) stack.push_back({w, d, true});
      }
    }
    const FTables ft = evaluate_f_global(sf, r, su.t[u]);
    for (const auto& [v, d, plus] : reach) {
      if (plus) {
        EXPECT_LE(ft.plus[d][v], su.g.plus[d][v] + 1e-9)
            << "u=" << u << " v=" << v << " d=" << d;
      } else {
        EXPECT_LE(su.g.minus[d][v], ft.minus[d][v] + 1e-9)
            << "u=" << u << " v=" << v << " d=" << d;
      }
    }
  }
}

TEST(GRecursion, ConstraintSlackIdentity) {
  // The heart of Lemma 9's feasibility case d < R-2: for every constraint
  // {v, w}, a_v g+_{v,d} + a_w g-_{w,d-1} <= 1.
  RandomSpecialParams p;
  p.num_agents = 18;
  const MaxMinInstance inst = random_special_form(p, 73);
  const SpecialFormInstance sf(inst);
  GFixture su(inst, 3);
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    for (const ConstraintArc& arc : sf.arcs(v)) {
      for (std::int32_t d = 1; d <= su.r; ++d) {
        EXPECT_LE(arc.a_self * su.g.plus[d][v] +
                      arc.a_partner * su.g.minus[d - 1][arc.partner],
                  1.0 + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace locmm
