// Property-based sweeps: the paper's contracts as universally-quantified
// statements over (family, seed, delta_I, delta_K, R) grids.
#include <gtest/gtest.h>

#include <tuple>

#include "core/local_solver.hpp"
#include "core/solver_api.hpp"
#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"

namespace locmm {
namespace {

// ---------------------------------------------------------------------------
// Property 1: Theorem 1 end-to-end on random general instances.
//   x feasible  AND  omega(x) * guarantee >= omega*.
// ---------------------------------------------------------------------------
using GeneralCase = std::tuple<std::uint64_t /*seed*/, std::int32_t /*dI*/,
                               std::int32_t /*dK*/, std::int32_t /*R*/>;

class Theorem1Property : public ::testing::TestWithParam<GeneralCase> {};

TEST_P(Theorem1Property, HoldsOnRandomGeneral) {
  const auto [seed, di, dk, R] = GetParam();
  RandomGeneralParams p;
  p.num_agents = 14;
  p.delta_i = di;
  p.delta_k = dk;
  const MaxMinInstance inst = random_general(p, seed);
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);

  const LocalSolution sol = solve_local(inst, {.R = R});
  EXPECT_TRUE(inst.is_feasible(sol.x, 1e-8))
      << "violation " << inst.violation(sol.x);
  EXPECT_GE(sol.omega * sol.guarantee, opt.omega - 1e-7)
      << "ratio " << opt.omega / std::max(sol.omega, 1e-300)
      << " vs guarantee " << sol.guarantee;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem1Property,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<std::int32_t>(2, 3, 4),
                       ::testing::Values<std::int32_t>(2, 3),
                       ::testing::Values<std::int32_t>(2, 4)));

// ---------------------------------------------------------------------------
// Property 2: upper-bound soundness through the pipeline.
//   min_v t_v (special) >= omega*(special) >= omega*(original).
// ---------------------------------------------------------------------------
class UpperBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpperBoundProperty, TBoundsDominateOptima) {
  RandomGeneralParams p;
  p.num_agents = 12;
  const MaxMinInstance inst = random_general(p, GetParam());
  const LocalSolution sol = solve_local(inst, {.R = 3});
  const MaxMinLpResult orig = solve_lp_optimum(inst);
  ASSERT_EQ(orig.status, LpStatus::kOptimal);
  EXPECT_GE(sol.t_min_special, orig.omega - 1e-7);
  // And the special solution's utility can't beat the t bound either.
  EXPECT_LE(sol.omega_special, sol.t_min_special + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpperBoundProperty,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39,
                                           40));

// ---------------------------------------------------------------------------
// Property 3: unit-coefficient ({0,1}) instances -- the regime of the
// paper's inapproximability result -- satisfy the same contract.
// ---------------------------------------------------------------------------
class ZeroOneProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZeroOneProperty, Theorem1OnZeroOneCoefficients) {
  RandomGeneralParams p;
  p.num_agents = 14;
  p.unit_coefficients = true;
  const MaxMinInstance inst = random_general(p, GetParam());
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);
  const LocalSolution sol = solve_local(inst, {.R = 4});
  EXPECT_TRUE(inst.is_feasible(sol.x, 1e-8));
  EXPECT_GE(sol.omega * sol.guarantee, opt.omega - 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroOneProperty,
                         ::testing::Values(41, 42, 43, 44, 45, 46));

// ---------------------------------------------------------------------------
// Property 4: output monotonicity knobs -- x scales linearly with a global
// rescaling of constraint coefficients (a -> 2a implies x -> x/2 through
// every stage of the recursion).
// ---------------------------------------------------------------------------
class ScalingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingProperty, GlobalConstraintScalingHalvesOutput) {
  RandomSpecialParams p;
  p.num_agents = 14;
  const MaxMinInstance inst = random_special_form(p, GetParam());
  InstanceBuilder b(inst.num_agents());
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i) {
    std::vector<Entry> row;
    for (const Entry& e : inst.constraint_row(i))
      row.push_back({e.agent, 2.0 * e.coeff});
    b.add_constraint(std::move(row));
  }
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    auto row = inst.objective_row(k);
    b.add_objective(std::vector<Entry>(row.begin(), row.end()));
  }
  const MaxMinInstance doubled = b.build();

  const SpecialRunResult a =
      solve_special_centralized(SpecialFormInstance(inst), 3);
  const SpecialRunResult c =
      solve_special_centralized(SpecialFormInstance(doubled), 3);
  for (std::size_t v = 0; v < a.x.size(); ++v)
    EXPECT_NEAR(c.x[v], 0.5 * a.x[v], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingProperty,
                         ::testing::Values(51, 52, 53, 54));

// ---------------------------------------------------------------------------
// Property 5: determinism -- the full solve is a pure function of the
// instance (no hidden global state across repeated invocations).
// ---------------------------------------------------------------------------
class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, RepeatRunsBitwiseEqual) {
  const MaxMinInstance inst = random_general({.num_agents = 12}, GetParam());
  const LocalSolution a = solve_local(inst, {.R = 3});
  const LocalSolution b = solve_local(inst, {.R = 3});
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t v = 0; v < a.x.size(); ++v)
    EXPECT_DOUBLE_EQ(a.x[v], b.x[v]);
  EXPECT_DOUBLE_EQ(a.t_min_special, b.t_min_special);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(61, 62, 63));

// ---------------------------------------------------------------------------
// Property 6: tolerance of the t bisection controls solution drift.
// ---------------------------------------------------------------------------
TEST(ToleranceProperty, TighterToleranceConverges) {
  const MaxMinInstance inst = random_special_form({.num_agents = 16}, 71);
  const SpecialFormInstance sf(inst);
  TSearchOptions loose{.tol = 1e-4, .max_iters = 200};
  TSearchOptions tight{.tol = 1e-13, .max_iters = 300};
  const SpecialRunResult a = solve_special_centralized(sf, 3, loose);
  const SpecialRunResult c = solve_special_centralized(sf, 3, tight);
  for (std::size_t v = 0; v < a.x.size(); ++v) {
    EXPECT_NEAR(a.x[v], c.x[v], 1e-2);
    // Loose t never exceeds tight t (both return feasible endpoints of the
    // same monotone interval).
    EXPECT_LE(a.t[v], c.t[v] + 1e-3);
  }
}

}  // namespace
}  // namespace locmm
