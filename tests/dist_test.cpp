// Tests for the distributed substrate: scheduler semantics, view gathering
// (engine M) equality with directly-built views, and engine M == engine L
// == engine C on the algorithm's output.
#include <gtest/gtest.h>

#include "core/local_solver.hpp"
#include "core/view_solver.hpp"
#include "dist/gather.hpp"
#include "gen/generators.hpp"

namespace locmm {
namespace {

// A minimal program: floods a counter for `rounds` rounds, then halts.
class PingProgram final : public NodeProgram {
 public:
  explicit PingProgram(std::int32_t rounds) : rounds_(rounds) {}

  void init(const LocalInput& input) override { degree_ = input.degree; }

  std::vector<Message> send(std::int32_t round) override {
    std::vector<Message> out(static_cast<std::size_t>(degree_));
    for (auto& m : out) m = Message::make_scalar(static_cast<double>(round));
    return out;
  }

  void receive(std::int32_t round, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      EXPECT_EQ(m.kind, Message::Kind::kScalar);
      EXPECT_DOUBLE_EQ(m.scalar, static_cast<double>(round));
    }
    done_ = round >= rounds_;
  }

  bool halted() const override { return done_; }

 private:
  std::int32_t rounds_;
  std::int32_t degree_ = 0;
  bool done_ = false;
};

TEST(Scheduler, CountsRoundsAndMessages) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 6}, 1);
  const CommGraph g(inst);
  SyncNetwork net(g);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    programs.push_back(std::make_unique<PingProgram>(3));
  const RunStats stats = net.run(programs);
  EXPECT_EQ(stats.rounds, 3);
  // Each round: one message per directed edge; cycle instance has
  // 6 agents * 4 ports = 24 directed agent-side edges, so 48 total per
  // round including the far ends... every edge counted twice (both
  // directions): 2 * |E| = 2 * 24 = 48.
  EXPECT_EQ(stats.messages, 3 * 48);
  // A scalar costs a full wire frame now (kind + payload + checksum), not
  // just its 8-byte payload.
  EXPECT_EQ(stats.bytes, 3 * 48 * kScalarFrameBytes);
}

TEST(Scheduler, HaltsImmediatelyWhenAllDone) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 4}, 1);
  const CommGraph g(inst);
  SyncNetwork net(g);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    programs.push_back(std::make_unique<PingProgram>(0));
  // rounds_ = 0: receive never runs; but PingProgram only halts inside
  // receive, so it runs exactly one round.
  const RunStats stats = net.run(programs);
  EXPECT_EQ(stats.rounds, 1);
}

TEST(Scheduler, LocalInputMatchesGraph) {
  const MaxMinInstance inst = random_special_form({.num_agents = 10}, 3);
  const CommGraph g(inst);
  SyncNetwork net(g);
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const LocalInput in = net.local_input(g.agent_node(v));
    EXPECT_EQ(in.type, NodeType::kAgent);
    EXPECT_EQ(in.degree, g.degree(g.agent_node(v)));
    EXPECT_EQ(in.constraint_degree,
              static_cast<std::int32_t>(inst.agent_constraints(v).size()));
    ASSERT_EQ(static_cast<std::int32_t>(in.coeffs.size()), in.degree);
  }
}

TEST(Gather, ViewsMatchDirectConstruction) {
  const MaxMinInstance inst = random_special_form({.num_agents = 12}, 5);
  const CommGraph g(inst);
  SyncNetwork net(g);
  const std::int32_t D = 5;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    programs.push_back(std::make_unique<GatherProgram>(D, 2, TSearchOptions{}));
  const RunStats stats = net.run(programs);
  EXPECT_EQ(stats.rounds, D);

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto* prog = static_cast<GatherProgram*>(programs[u].get());
    const ViewTree direct = ViewTree::build(g, u, D);
    EXPECT_TRUE(ViewTree::same_view(prog->view(), direct))
        << "node " << u << ": gathered view differs from direct unfolding";
  }
}

TEST(Gather, ViewMessageBytesGrowWithRound) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 8}, 1);
  const CommGraph g(inst);
  SyncNetwork shallow_net(g), deep_net(g);
  auto mk = [&](std::int32_t D) {
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      programs.push_back(  // gather-only mode: R = 0
          std::make_unique<GatherProgram>(D, 0, TSearchOptions{}));
    return programs;
  };
  auto p1 = mk(2);
  auto p2 = mk(6);
  const RunStats s1 = shallow_net.run(p1);
  const RunStats s2 = deep_net.run(p2);
  EXPECT_GT(s2.bytes, s1.bytes);
  EXPECT_GT(s2.max_message_bytes, s1.max_message_bytes);
}

void expect_m_equals_c(const MaxMinInstance& special, std::int32_t R) {
  const SpecialFormInstance sf(special);
  const SpecialRunResult c = solve_special_centralized(sf, R);
  const MessageRunResult m = solve_special_message_passing(special, R);
  EXPECT_EQ(m.stats.rounds, view_radius(R));
  ASSERT_EQ(m.x.size(), c.x.size());
  for (std::size_t v = 0; v < m.x.size(); ++v)
    EXPECT_NEAR(m.x[v], c.x[v], 1e-12) << "agent " << v;
}

TEST(EngineM, MatchesEngineCOnPair) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0}, {1, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  expect_m_equals_c(b.build(), 2);
  expect_m_equals_c(b.build(), 3);
}

TEST(EngineM, MatchesEngineCOnRandomSpecial) {
  expect_m_equals_c(random_special_form({.num_agents = 10}, 6), 2);
}

TEST(EngineM, MatchesEngineCOnWheel) {
  expect_m_equals_c(layered_instance(
                        {.delta_k = 2, .layers = 5, .width = 1, .twist = 0}),
                    3);
}

TEST(EngineM, RoundsIndependentOfNetworkSize) {
  // The locality headline: doubling the wheel does not change the round
  // count, only the message volume.
  const std::int32_t R = 3;
  MessageRunResult small = solve_special_message_passing(
      layered_instance({.delta_k = 2, .layers = 6, .width = 1, .twist = 0}),
      R);
  MessageRunResult large = solve_special_message_passing(
      layered_instance({.delta_k = 2, .layers = 12, .width = 1, .twist = 0}),
      R);
  EXPECT_EQ(small.stats.rounds, large.stats.rounds);
  EXPECT_GT(large.stats.messages, small.stats.messages);
}

}  // namespace
}  // namespace locmm
