// Tests for the safe baseline: feasibility and the delta_I approximation
// factor on every workload family.
#include <gtest/gtest.h>

#include "core/safe_baseline.hpp"
#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"

namespace locmm {
namespace {

void expect_safe_contract(const MaxMinInstance& inst) {
  const std::vector<double> x = solve_safe(inst);
  EXPECT_TRUE(inst.is_feasible(x, 1e-12))
      << "violation " << inst.violation(x);
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);
  const double delta_i = static_cast<double>(inst.stats().delta_i);
  EXPECT_GE(inst.utility(x) * delta_i, opt.omega - 1e-8)
      << "safe algorithm broke its delta_I = " << delta_i << " factor";
}

TEST(SafeBaseline, HandComputedPair) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 2.0}, {1, 4.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  const MaxMinInstance inst = b.build();
  const std::vector<double> x = solve_safe(inst);
  EXPECT_DOUBLE_EQ(x[0], 1.0 / (2.0 * 2.0));
  EXPECT_DOUBLE_EQ(x[1], 1.0 / (2.0 * 4.0));
}

TEST(SafeBaseline, ExactOnSymmetricUnitCycle) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 10}, 1);
  const std::vector<double> x = solve_safe(inst);
  // x = 1/2 everywhere: actually optimal here.
  EXPECT_NEAR(inst.utility(x), 1.0, 1e-12);
}

class SafeOnFamilies : public ::testing::TestWithParam<int> {};

TEST_P(SafeOnFamilies, FeasibleWithinFactor) {
  switch (GetParam()) {
    case 0:
      expect_safe_contract(random_general({.num_agents = 20}, 5));
      break;
    case 1:
      expect_safe_contract(
          random_special_form({.num_agents = 20}, 6));
      break;
    case 2:
      expect_safe_contract(cycle_instance({.num_agents = 9}, 7));
      break;
    case 3:
      expect_safe_contract(path_instance(8));
      break;
    case 4:
      expect_safe_contract(
          sensor_instance({.num_sensors = 12, .num_sinks = 5}, 8));
      break;
    case 5:
      expect_safe_contract(
          bandwidth_instance({.num_routers = 10, .num_customers = 5}, 9));
      break;
    case 6:
      expect_safe_contract(tree_instance({.max_agents = 18}, 10));
      break;
    default:
      expect_safe_contract(layered_instance(
          {.delta_k = 3, .layers = 4, .width = 2, .twist = 1}));
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SafeOnFamilies, ::testing::Range(0, 8));

}  // namespace
}  // namespace locmm
