// Tests for the t_u machinery (§5.1-§5.2): hand-computed values, the
// upper-bound property t_u >= omega* (Lemmas 2-3), monotonicity of the f
// recursion in omega, and agreement between the production cone evaluation
// and an independent test-side reimplementation driven by the global f
// tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/special_form.hpp"
#include "core/upper_bound.hpp"
#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

// Two agents sharing one objective and one unit constraint.
MaxMinInstance pair_instance() {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0}, {1, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  return b.build();
}

TEST(UpperBound, HandComputedPair) {
  // r = 0: t_0 = max{w : f-_{0,0}(w) = max(0, w - invcap(1)) <= invcap(0)}
  //       = invcap(0) + invcap(1) = 2.
  const MaxMinInstance inst = pair_instance();
  const SpecialFormInstance sf(inst);
  EXPECT_NEAR(compute_t_single(sf, 0, 0), 2.0, 1e-9);
  EXPECT_NEAR(compute_t_single(sf, 1, 0), 2.0, 1e-9);
}

TEST(UpperBound, HandComputedPairScaledCoefficients) {
  // Constraint 2 x0 + 4 x1 <= 1: invcap(0) = 1/2, invcap(1) = 1/4.
  InstanceBuilder b(2);
  b.add_constraint({{0, 2.0}, {1, 4.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  const SpecialFormInstance sf(b.build());
  EXPECT_NEAR(compute_t_single(sf, 0, 0), 0.75, 1e-9);
}

TEST(UpperBound, DeeperTreeTightensTheBound) {
  // Larger r sees more constraints, so t can only get more accurate
  // (non-increasing) on instances where the extra context binds.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 3, .layers = 6, .width = 2, .twist = 1});
  const SpecialFormInstance sf(inst);
  double prev = std::numeric_limits<double>::infinity();
  for (std::int32_t r = 0; r <= 3; ++r) {
    const double t = compute_t_single(sf, 0, r);
    EXPECT_LE(t, prev + 1e-9) << "r=" << r;
    prev = t;
  }
}

TEST(UpperBound, FMonotoneInOmega) {
  RandomSpecialParams p;
  p.num_agents = 20;
  const MaxMinInstance inst = random_special_form(p, 5);
  const SpecialFormInstance sf(inst);
  const std::int32_t r = 2;
  const FTables lo = evaluate_f_global(sf, r, 0.4);
  const FTables hi = evaluate_f_global(sf, r, 1.7);
  for (std::int32_t d = 0; d <= r; ++d) {
    for (AgentId v = 0; v < inst.num_agents(); ++v) {
      // f+ non-increasing, f- non-decreasing in omega.
      EXPECT_GE(lo.plus[d][v], hi.plus[d][v] - 1e-12);
      EXPECT_LE(lo.minus[d][v], hi.minus[d][v] + 1e-12);
    }
  }
}

TEST(UpperBound, FPlusMonotoneInDepth) {
  // The analogue of Lemma 6 for f: deeper recursion can only lower f+.
  RandomSpecialParams p;
  p.num_agents = 24;
  const MaxMinInstance inst = random_special_form(p, 6);
  const SpecialFormInstance sf(inst);
  const FTables ft = evaluate_f_global(sf, 3, 0.8);
  for (std::int32_t d = 1; d <= 3; ++d) {
    for (AgentId v = 0; v < inst.num_agents(); ++v) {
      EXPECT_LE(ft.plus[d][v], ft.plus[d - 1][v] + 1e-12);
      if (d >= 2) {
        EXPECT_GE(ft.minus[d][v], ft.minus[d - 1][v] - 1e-12);
      }
    }
  }
}

// Independent reimplementation: alternating-walk state reachability plus
// bisection over the *global* f tables.  Cross-checks TCone's dedup/order.
double t_reference(const SpecialFormInstance& sf, AgentId u, std::int32_t r,
                   double tol = 1e-12) {
  // Reach set: states (v, d, plus?) from the root (u, r, minus).
  std::set<std::tuple<AgentId, std::int32_t, bool>> reach;
  std::vector<std::tuple<AgentId, std::int32_t, bool>> stack{{u, r, false}};
  while (!stack.empty()) {
    auto [v, d, plus] = stack.back();
    stack.pop_back();
    if (!reach.insert({v, d, plus}).second) continue;
    if (plus) {
      if (d > 0)
        for (const ConstraintArc& arc : sf.arcs(v))
          stack.push_back({arc.partner, d - 1, false});
    } else {
      for (AgentId w : sf.siblings(v)) stack.push_back({w, d, true});
    }
  }
  auto feasible = [&](double omega) {
    const FTables ft = evaluate_f_global(sf, r, omega);
    for (const auto& [v, d, plus] : reach) {
      if (plus && !(ft.plus[d][v] >= 0.0)) return false;
    }
    return ft.minus[r][u] <= sf.inv_cap(u);
  };
  double lo = 0.0, hi = sf.t_search_upper(u);
  if (feasible(hi)) return hi;
  while (hi - lo > tol * std::max(1.0, hi)) {
    const double mid = 0.5 * (lo + hi);
    (feasible(mid) ? lo : hi) = mid;
  }
  return lo;
}

class TReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TReference, ConeMatchesGlobalTableEvaluation) {
  RandomSpecialParams p;
  p.num_agents = 14;
  p.delta_k = 3;
  const MaxMinInstance inst = random_special_form(p, GetParam());
  const SpecialFormInstance sf(inst);
  for (std::int32_t r : {0, 1, 2}) {
    for (AgentId u = 0; u < inst.num_agents(); u += 3) {
      const double a = compute_t_single(sf, u, r);
      const double b = t_reference(sf, u, r);
      EXPECT_NEAR(a, b, 1e-8) << "u=" << u << " r=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TReference,
                         ::testing::Values(101, 102, 103, 104));

class TUpperBoundsOptimum : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TUpperBoundsOptimum, EveryTuDominatesOmegaStar) {
  RandomSpecialParams p;
  p.num_agents = 20;
  const MaxMinInstance inst = random_special_form(p, GetParam());
  const SpecialFormInstance sf(inst);
  const MaxMinLpResult res = solve_lp_optimum(inst);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  for (std::int32_t r : {0, 1, 2, 3}) {
    const std::vector<double> t = compute_t_all(sf, r);
    for (AgentId u = 0; u < inst.num_agents(); ++u) {
      EXPECT_GE(t[u], res.omega - 1e-7)
          << "u=" << u << " r=" << r << " (Lemmas 2-3 violated)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TUpperBoundsOptimum,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(UpperBound, ParallelMatchesSerial) {
  RandomSpecialParams p;
  p.num_agents = 40;
  const MaxMinInstance inst = random_special_form(p, 33);
  const SpecialFormInstance sf(inst);
  const std::vector<double> serial = compute_t_all(sf, 2, {}, 1);
  const std::vector<double> parallel = compute_t_all(sf, 2, {}, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t v = 0; v < serial.size(); ++v)
    EXPECT_DOUBLE_EQ(serial[v], parallel[v]);
}

TEST(UpperBound, ZeroFeasibleAlways) {
  RandomSpecialParams p;
  p.num_agents = 10;
  const MaxMinInstance inst = random_special_form(p, 44);
  const SpecialFormInstance sf(inst);
  for (AgentId u = 0; u < inst.num_agents(); ++u)
    EXPECT_GE(compute_t_single(sf, u, 1), 0.0);
}

}  // namespace
}  // namespace locmm
