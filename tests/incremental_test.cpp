// Tests for the incremental re-solve subsystem: InstanceDelta semantics
// (apply == rebuild, diff round-trips), delta support in SpecialFormInstance
// and CommGraph, the cone-restricted WL recolouring, and -- the headline --
// randomized edit scripts over cycle / grid / 3-regular / random instances
// at R in {2, 3} whose incrementally maintained solutions must stay
// BIT-identical to a from-scratch solve after every step, through
// IncrementalSolver (special-form deltas) and LocalResolver
// (original-instance deltas routed through the §4 pipeline).
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "core/solver_api.hpp"
#include "support/deadline.hpp"
#include "core/view_solver.hpp"
#include "dynamic/incremental_solver.hpp"
#include "gen/generators.hpp"
#include "graph/color_refine.hpp"
#include "graph/comm_graph.hpp"
#include "lp/delta.hpp"
#include "support/prng.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Full bitwise structural equality of two instances: rows (agents and exact
// coefficient bits, in port order) and agent incidence.
void expect_same_instance(const MaxMinInstance& a, const MaxMinInstance& b) {
  ASSERT_EQ(a.num_agents(), b.num_agents());
  ASSERT_EQ(a.num_constraints(), b.num_constraints());
  ASSERT_EQ(a.num_objectives(), b.num_objectives());
  auto same_rows = [&](auto row_a, auto row_b, std::int32_t rows) {
    for (std::int32_t r = 0; r < rows; ++r) {
      const auto ra = row_a(r);
      const auto rb = row_b(r);
      ASSERT_EQ(ra.size(), rb.size()) << "row " << r;
      for (std::size_t j = 0; j < ra.size(); ++j) {
        EXPECT_EQ(ra[j].agent, rb[j].agent) << "row " << r << " port " << j;
        EXPECT_TRUE(same_bits(ra[j].coeff, rb[j].coeff))
            << "row " << r << " port " << j;
      }
    }
  };
  same_rows([&](std::int32_t r) { return a.constraint_row(r); },
            [&](std::int32_t r) { return b.constraint_row(r); },
            a.num_constraints());
  same_rows([&](std::int32_t r) { return a.objective_row(r); },
            [&](std::int32_t r) { return b.objective_row(r); },
            a.num_objectives());
  for (AgentId v = 0; v < a.num_agents(); ++v) {
    const auto ca = a.agent_constraints(v);
    const auto cb = b.agent_constraints(v);
    ASSERT_EQ(ca.size(), cb.size()) << "agent " << v;
    for (std::size_t j = 0; j < ca.size(); ++j) {
      EXPECT_EQ(ca[j].row, cb[j].row) << "agent " << v << " slot " << j;
      EXPECT_TRUE(same_bits(ca[j].coeff, cb[j].coeff));
    }
    const auto ka = a.agent_objectives(v);
    const auto kb = b.agent_objectives(v);
    ASSERT_EQ(ka.size(), kb.size()) << "agent " << v;
    for (std::size_t j = 0; j < ka.size(); ++j) {
      EXPECT_EQ(ka[j].row, kb[j].row) << "agent " << v << " slot " << j;
      EXPECT_TRUE(same_bits(ka[j].coeff, kb[j].coeff));
    }
  }
}

// Rebuilds `inst` from its rows through InstanceBuilder: the ground truth
// apply() must match bit-for-bit.
MaxMinInstance rebuild(const MaxMinInstance& inst) {
  InstanceBuilder b(inst.num_agents());
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i) {
    const auto row = inst.constraint_row(i);
    b.add_constraint(std::vector<Entry>(row.begin(), row.end()));
  }
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    const auto row = inst.objective_row(k);
    b.add_objective(std::vector<Entry>(row.begin(), row.end()));
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// InstanceDelta / MaxMinInstance::apply
// ---------------------------------------------------------------------------

TEST(DeltaApply, CoefficientEditMatchesRebuild) {
  const MaxMinInstance base = random_general({.num_agents = 20}, 11);
  MaxMinInstance edited = base;
  InstanceDelta delta;
  const auto row0 = base.constraint_row(0);
  delta.set_constraint_coeff(0, row0[0].agent, row0[0].coeff * 1.75);
  const auto krow = base.objective_row(1);
  delta.set_objective_coeff(1, krow.back().agent, 0.375);
  edited.apply(delta);

  // Ground truth: rebuild from explicitly edited rows.
  InstanceBuilder b(base.num_agents());
  for (ConstraintId i = 0; i < base.num_constraints(); ++i) {
    const auto row = base.constraint_row(i);
    std::vector<Entry> out(row.begin(), row.end());
    if (i == 0) out[0].coeff = row0[0].coeff * 1.75;
    b.add_constraint(std::move(out));
  }
  for (ObjectiveId k = 0; k < base.num_objectives(); ++k) {
    const auto row = base.objective_row(k);
    std::vector<Entry> out(row.begin(), row.end());
    if (k == 1) out.back().coeff = 0.375;
    b.add_objective(std::move(out));
  }
  expect_same_instance(edited, b.build());
}

TEST(DeltaApply, MembershipAddAppendsAtRowEnd) {
  const MaxMinInstance base = grid_instance({.rows = 4, .cols = 5}, 3);
  // Find an agent not in constraint row 0.
  const auto row0 = base.constraint_row(0);
  AgentId outsider = -1;
  for (AgentId v = 0; v < base.num_agents() && outsider < 0; ++v) {
    bool in_row = false;
    for (const Entry& e : row0) in_row |= (e.agent == v);
    if (!in_row) outsider = v;
  }
  ASSERT_GE(outsider, 0);

  MaxMinInstance edited = base;
  InstanceDelta delta;
  delta.add_to_constraint(0, outsider, 0.625);
  edited.apply(delta);

  InstanceBuilder b(base.num_agents());
  for (ConstraintId i = 0; i < base.num_constraints(); ++i) {
    const auto row = base.constraint_row(i);
    std::vector<Entry> out(row.begin(), row.end());
    if (i == 0) out.push_back({outsider, 0.625});
    b.add_constraint(std::move(out));
  }
  for (ObjectiveId k = 0; k < base.num_objectives(); ++k) {
    const auto row = base.objective_row(k);
    b.add_objective(std::vector<Entry>(row.begin(), row.end()));
  }
  expect_same_instance(edited, b.build());
  edited.validate();
}

TEST(DeltaApply, MembershipRemoveMatchesRebuild) {
  const MaxMinInstance base = random_general({.num_agents = 24}, 17);
  // Find a removable constraint entry: row keeps >= 1 entry, agent keeps
  // >= 1 constraint.
  ConstraintId row = -1;
  AgentId victim = -1;
  for (ConstraintId i = 0; i < base.num_constraints() && row < 0; ++i) {
    const auto r = base.constraint_row(i);
    if (r.size() < 2) continue;
    for (const Entry& e : r) {
      if (base.agent_constraints(e.agent).size() >= 2) {
        row = i;
        victim = e.agent;
        break;
      }
    }
  }
  ASSERT_GE(row, 0);

  MaxMinInstance edited = base;
  InstanceDelta delta;
  delta.remove_from_constraint(row, victim);
  edited.apply(delta);

  InstanceBuilder b(base.num_agents());
  for (ConstraintId i = 0; i < base.num_constraints(); ++i) {
    const auto r = base.constraint_row(i);
    std::vector<Entry> out;
    for (const Entry& e : r) {
      if (!(i == row && e.agent == victim)) out.push_back(e);
    }
    b.add_constraint(std::move(out));
  }
  for (ObjectiveId k = 0; k < base.num_objectives(); ++k) {
    const auto r = base.objective_row(k);
    b.add_objective(std::vector<Entry>(r.begin(), r.end()));
  }
  expect_same_instance(edited, b.build());
  edited.validate();
}

TEST(DeltaApply, RemoveThenReAddSameMembershipInOneBatch) {
  // One batch may remove a membership and re-add the same (row, agent) edge
  // with a fresh coefficient -- the structural coefficient refresh the
  // churn scripts lean on.  The dry run must net the growth to zero (the
  // batch is legal even for an agent whose ONLY constraint is that row,
  // and for a |Vi| = 2 row that dips to one member mid-batch), the touched-
  // edge enumeration must visit the edge once per edit, and apply must land
  // the entry at the row END, exactly like a rebuild of the edited rows.
  const MaxMinInstance base = grid_instance({.rows = 4, .cols = 5}, 3);
  const ConstraintId row = 0;
  const AgentId victim = base.constraint_row(row)[0].agent;

  InstanceDelta delta;
  delta.remove_from_constraint(row, victim);
  delta.add_to_constraint(row, victim, 1.375);
  EXPECT_TRUE(delta.check_applicable(base).empty());

  int visits = 0;
  delta.for_each_touched_edge([&](RowKind k, std::int32_t r, AgentId v) {
    EXPECT_EQ(k, RowKind::kConstraint);
    EXPECT_EQ(r, row);
    EXPECT_EQ(v, victim);
    ++visits;
  });
  EXPECT_EQ(visits, 2);  // the remove and the add each seed the dirty flood

  MaxMinInstance edited = base;
  edited.apply(delta);
  InstanceBuilder b(base.num_agents());
  for (ConstraintId i = 0; i < base.num_constraints(); ++i) {
    const auto r = base.constraint_row(i);
    std::vector<Entry> out;
    for (const Entry& e : r) {
      if (!(i == row && e.agent == victim)) out.push_back(e);
    }
    if (i == row) out.push_back({victim, 1.375});
    b.add_constraint(std::move(out));
  }
  for (ObjectiveId k = 0; k < base.num_objectives(); ++k) {
    const auto r = base.objective_row(k);
    b.add_objective(std::vector<Entry>(r.begin(), r.end()));
  }
  expect_same_instance(edited, b.build());
  edited.validate();

  // The inverse batch (same shape, original coefficient) round-trips the
  // coefficient but NOT the port order -- the entry stays at the row end.
  InstanceDelta back;
  back.remove_from_constraint(row, victim);
  back.add_to_constraint(row, victim, base.constraint_row(row)[0].coeff);
  EXPECT_TRUE(back.check_applicable(edited).empty());
  edited.apply(back);
  EXPECT_EQ(edited.constraint_row(row).back().agent, victim);
  EXPECT_TRUE(same_bits(edited.constraint_row(row).back().coeff,
                        base.constraint_row(row)[0].coeff));
}

TEST(DeltaApply, RejectsBadEdits) {
  MaxMinInstance inst = path_instance(6);
  {
    InstanceDelta d;
    d.set_constraint_coeff(0, inst.constraint_row(0)[0].agent, -1.0);
    MaxMinInstance copy = inst;
    EXPECT_THROW(copy.apply(d), CheckError);
  }
  {
    InstanceDelta d;  // entry does not exist
    d.set_constraint_coeff(inst.num_constraints() - 1, /*agent=*/-7, 1.0);
    MaxMinInstance copy = inst;
    EXPECT_THROW(copy.apply(d), CheckError);
  }
  {
    InstanceDelta d;  // duplicate member
    const Entry e = inst.constraint_row(0)[0];
    d.add_to_constraint(0, e.agent, 1.0);
    MaxMinInstance copy = inst;
    EXPECT_THROW(copy.apply(d), CheckError);
  }
}

TEST(DeltaDiff, RoundTripsCoefficients) {
  const MaxMinInstance a = random_general({.num_agents = 18}, 23);
  MaxMinInstance b = a;
  InstanceDelta edit;
  edit.set_constraint_coeff(2, a.constraint_row(2)[0].agent, 1.9375);
  edit.set_objective_coeff(0, a.objective_row(0)[0].agent, 0.8125);
  b.apply(edit);

  const auto diff = diff_instances(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(diff->coeff_edits.size(), 2u);
  EXPECT_FALSE(diff->structural());
  MaxMinInstance a2 = a;
  a2.apply(*diff);
  expect_same_instance(a2, b);

  // Structural divergence: not diffable.
  InstanceDelta grow;
  const auto row0 = a.constraint_row(0);
  AgentId outsider = -1;
  for (AgentId v = 0; v < a.num_agents() && outsider < 0; ++v) {
    bool in_row = false;
    for (const Entry& e : row0) in_row |= (e.agent == v);
    if (!in_row) outsider = v;
  }
  ASSERT_GE(outsider, 0);
  MaxMinInstance c = a;
  grow.add_to_constraint(0, outsider, 1.0);
  c.apply(grow);
  EXPECT_FALSE(diff_instances(a, c).has_value());
}

// ---------------------------------------------------------------------------
// SpecialFormInstance::apply / CommGraph::set_edge_coefficient
// ---------------------------------------------------------------------------

void expect_same_special(const SpecialFormInstance& a,
                         const SpecialFormInstance& b) {
  ASSERT_EQ(a.num_agents(), b.num_agents());
  for (AgentId v = 0; v < a.num_agents(); ++v) {
    EXPECT_EQ(a.objective(v), b.objective(v));
    EXPECT_TRUE(same_bits(a.inv_cap(v), b.inv_cap(v))) << "agent " << v;
    EXPECT_TRUE(same_bits(a.t_search_upper(v), b.t_search_upper(v)))
        << "agent " << v;
    const auto sa = a.siblings(v);
    const auto sb = b.siblings(v);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t j = 0; j < sa.size(); ++j) EXPECT_EQ(sa[j], sb[j]);
    const auto aa = a.arcs(v);
    const auto ab = b.arcs(v);
    ASSERT_EQ(aa.size(), ab.size());
    for (std::size_t j = 0; j < aa.size(); ++j) {
      EXPECT_EQ(aa[j].id, ab[j].id);
      EXPECT_EQ(aa[j].partner, ab[j].partner);
      EXPECT_TRUE(same_bits(aa[j].a_self, ab[j].a_self));
      EXPECT_TRUE(same_bits(aa[j].a_partner, ab[j].a_partner));
    }
  }
}

TEST(SpecialFormApply, CoefficientPatchMatchesFreshConstruction) {
  const MaxMinInstance special =
      random_special_form({.num_agents = 30}, 41);
  Rng rng(7);
  SpecialFormInstance sf(special);
  MaxMinInstance cur = special;
  for (int step = 0; step < 10; ++step) {
    InstanceDelta delta;
    const int edits = 1 + static_cast<int>(rng.below(3));
    for (int e = 0; e < edits; ++e) {
      const auto v = static_cast<AgentId>(rng.below(
          static_cast<std::uint64_t>(special.num_agents())));
      const auto arcs = sf.arcs(v);
      const auto& arc = arcs[rng.below(arcs.size())];
      delta.set_constraint_coeff(arc.id, v, rng.uniform(0.25, 4.0));
    }
    sf.apply(delta);
    cur.apply(delta);
    expect_same_instance(sf.instance(), cur);
    expect_same_special(sf, SpecialFormInstance(cur));
  }
}

TEST(SpecialFormApply, StructuralRewireMatchesFreshConstruction) {
  const MaxMinInstance special =
      random_special_form({.num_agents = 24, .extra_constraints = 2.0}, 43);
  SpecialFormInstance sf(special);
  // Rewire one |Vi| = 2 constraint: replace a partner that can afford to
  // lose it with a third agent (atomic remove + add keeps the row at 2).
  ConstraintId row = -1;
  AgentId keep = -1, lose = -1, gain = -1;
  for (ConstraintId i = 0; i < special.num_constraints() && row < 0; ++i) {
    const auto r = special.constraint_row(i);
    for (int side = 0; side < 2 && row < 0; ++side) {
      const AgentId cand = r[static_cast<std::size_t>(side)].agent;
      if (special.agent_constraints(cand).size() < 2) continue;
      const AgentId other = r[static_cast<std::size_t>(1 - side)].agent;
      for (AgentId g = 0; g < special.num_agents(); ++g) {
        if (g == cand || g == other) continue;
        bool adjacent = false;  // keep the row's agents distinct
        for (const Entry& e : r) adjacent |= (e.agent == g);
        if (!adjacent) {
          row = i;
          lose = cand;
          keep = other;
          gain = g;
          break;
        }
      }
    }
  }
  ASSERT_GE(row, 0) << "no rewireable constraint in the generated instance";
  (void)keep;

  InstanceDelta delta;
  delta.remove_from_constraint(row, lose);
  delta.add_to_constraint(row, gain, 1.25);
  MaxMinInstance cur = special;
  cur.apply(delta);
  sf.apply(delta);
  expect_same_instance(sf.instance(), cur);
  expect_same_special(sf, SpecialFormInstance(cur));
}

TEST(SpecialFormApply, RejectsObjectiveCoefficientEdit) {
  const MaxMinInstance special = random_special_form({.num_agents = 12}, 5);
  SpecialFormInstance sf(special);
  InstanceDelta delta;
  delta.set_objective_coeff(0, special.objective_row(0)[0].agent, 2.0);
  EXPECT_THROW(sf.apply(delta), CheckError);
}

TEST(CommGraphDelta, CoefficientPatchMatchesFreshGraph) {
  const MaxMinInstance inst = random_general({.num_agents = 16}, 29);
  MaxMinInstance cur = inst;
  CommGraph g(inst);
  InstanceDelta delta;
  const auto row = inst.constraint_row(1);
  delta.set_constraint_coeff(1, row[0].agent, row[0].coeff * 0.5);
  const auto krow = inst.objective_row(0);
  delta.set_objective_coeff(0, krow[0].agent, 1.375);
  cur.apply(delta);
  for (const CoeffEdit& e : delta.coeff_edits) {
    const NodeId rn = e.kind == RowKind::kConstraint ? g.constraint_node(e.row)
                                                     : g.objective_node(e.row);
    g.set_edge_coefficient(rn, g.agent_node(e.agent), e.coeff);
  }
  const CommGraph fresh(cur);
  ASSERT_EQ(g.num_nodes(), fresh.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto ga = g.neighbors(n);
    const auto gb = fresh.neighbors(n);
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t p = 0; p < ga.size(); ++p) {
      EXPECT_EQ(ga[p].to, gb[p].to);
      EXPECT_TRUE(same_bits(ga[p].coeff, gb[p].coeff))
          << "node " << n << " port " << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Cone-restricted WL recolouring
// ---------------------------------------------------------------------------

TEST(PartialRefine, MatchesFullRefineOnSeedAgents) {
  const std::int32_t depth = 11;  // deep enough to outlive stabilization
  const std::vector<MaxMinInstance> insts = {
      special_grid_instance({.rows = 4, .cols = 9}, 1),
      circulant_special_instance({.num_objectives = 10, .delta_k = 3}, 1),
      random_special_form({.num_agents = 26}, 57),
  };
  Rng rng(3);
  for (const MaxMinInstance& inst : insts) {
    const CommGraph g(inst);
    const ViewClasses full = refine_view_classes(g, depth, /*full_depth=*/true);
    ASSERT_EQ(full.rounds, depth);
    std::vector<AgentId> seeds;
    for (int i = 0; i < 6; ++i) {
      seeds.push_back(static_cast<AgentId>(
          rng.below(static_cast<std::uint64_t>(inst.num_agents()))));
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    const PartialColors pc = refine_agent_colors(g, depth, seeds);
    ASSERT_EQ(pc.agents.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const auto ci =
          static_cast<std::size_t>(full.class_of[static_cast<std::size_t>(
              seeds[i])]);
      EXPECT_EQ(pc.color_a[i], full.color_a[ci]) << "agent " << seeds[i];
      EXPECT_EQ(pc.color_b[i], full.color_b[ci]) << "agent " << seeds[i];
    }
    EXPECT_GT(pc.region_nodes, 0);
    EXPECT_LE(pc.region_nodes, g.num_nodes());
  }
}

// ---------------------------------------------------------------------------
// IncrementalSolver: randomized special-form edit scripts
// ---------------------------------------------------------------------------

// One random special-form-preserving delta: coefficient bump(s), a
// constraint rewire, or an objective move, whichever the instance offers.
InstanceDelta random_special_delta(const SpecialFormInstance& sf, Rng& rng,
                                   bool allow_structural) {
  const MaxMinInstance& inst = sf.instance();
  InstanceDelta delta;
  const std::uint64_t kind = rng.below(allow_structural ? 4 : 2);
  if (kind == 2) {
    // Constraint rewire: row {lose, other} -> {other, gain}.
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto i = static_cast<ConstraintId>(
          rng.below(static_cast<std::uint64_t>(inst.num_constraints())));
      const auto r = inst.constraint_row(i);
      const AgentId lose = r[rng.below(2)].agent;
      if (inst.agent_constraints(lose).size() < 2) continue;
      const auto gain = static_cast<AgentId>(
          rng.below(static_cast<std::uint64_t>(inst.num_agents())));
      if (gain == r[0].agent || gain == r[1].agent) continue;
      delta.remove_from_constraint(i, lose);
      delta.add_to_constraint(i, gain, rng.uniform(0.5, 2.0));
      return delta;
    }
  } else if (kind == 3) {
    // Objective move: take v out of a row with >= 3 members into another.
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto k = static_cast<ObjectiveId>(
          rng.below(static_cast<std::uint64_t>(inst.num_objectives())));
      const auto r = inst.objective_row(k);
      if (r.size() < 3) continue;
      const AgentId v = r[rng.below(r.size())].agent;
      const auto k2 = static_cast<ObjectiveId>(
          rng.below(static_cast<std::uint64_t>(inst.num_objectives())));
      if (k2 == k) continue;
      bool already = false;
      for (const Entry& e : inst.objective_row(k2)) already |= (e.agent == v);
      if (already) continue;
      delta.remove_from_objective(k, v);
      delta.add_to_objective(k2, v, 1.0);
      return delta;
    }
  }
  // Coefficient bumps (single or small batch); also the fallback when no
  // legal structural edit was found.
  const int edits = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < edits; ++e) {
    const auto v = static_cast<AgentId>(
        rng.below(static_cast<std::uint64_t>(inst.num_agents())));
    const auto arcs = sf.arcs(v);
    const auto& arc = arcs[rng.below(arcs.size())];
    delta.set_constraint_coeff(arc.id, v, rng.uniform(0.25, 4.0));
  }
  return delta;
}

// Membership-churn batch: EVERY step is structural.  Half the draws are
// remove-then-re-add of the same constraint membership (a coefficient
// refresh through the structural path, which also flips the |Vi| = 2 row's
// port order); the rest are the rewires / objective moves of
// random_special_delta.  Always returns a structural delta.
InstanceDelta random_churn_delta(const SpecialFormInstance& sf, Rng& rng) {
  const MaxMinInstance& inst = sf.instance();
  if (rng.bernoulli(0.5)) {
    const auto i = static_cast<ConstraintId>(
        rng.below(static_cast<std::uint64_t>(inst.num_constraints())));
    const AgentId v = inst.constraint_row(i)[rng.below(2)].agent;
    InstanceDelta delta;
    delta.remove_from_constraint(i, v);
    delta.add_to_constraint(i, v, rng.uniform(0.5, 2.0));
    return delta;  // net growth zero: legal whatever the degrees
  }
  for (int attempt = 0; attempt < 100; ++attempt) {
    const InstanceDelta delta =
        random_special_delta(sf, rng, /*allow_structural=*/true);
    if (delta.structural()) return delta;
  }
  // No legal rewire in 100 draws (never observed on these families); fall
  // back to the always-legal refresh shape.
  const AgentId v0 = inst.constraint_row(0)[0].agent;
  InstanceDelta delta;
  delta.remove_from_constraint(0, v0);
  delta.add_to_constraint(0, v0, 1.25);
  return delta;
}

void run_incremental_script(const MaxMinInstance& special, std::int32_t R,
                            std::uint64_t seed, int steps,
                            bool allow_structural, bool churn = false) {
  Rng rng(seed);
  IncrementalSolver::Options opt;
  opt.R = R;
  IncrementalSolver inc(special, opt);
  MaxMinInstance cur = special;

  // The initial solve must already match a cold engine-L solve bitwise.
  {
    const std::vector<double> oracle = solve_special_local_views(cur, R);
    ASSERT_EQ(inc.x().size(), oracle.size());
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      EXPECT_TRUE(same_bits(inc.x()[v], oracle[v])) << "cold, agent " << v;
    }
  }

  for (int step = 0; step < steps; ++step) {
    const InstanceDelta delta =
        churn ? random_churn_delta(inc.special(), rng)
              : random_special_delta(inc.special(), rng, allow_structural);
    inc.apply(delta);
    cur.apply(delta);
    expect_same_instance(inc.special().instance(), cur);
    // In-place CSR editing must land exactly where an InstanceBuilder
    // rebuild of the same rows would (ports ARE the positions).
    expect_same_instance(cur, rebuild(cur));

    const std::vector<double> oracle = solve_special_local_views(cur, R);
    ASSERT_EQ(inc.x().size(), oracle.size());
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      ASSERT_TRUE(same_bits(inc.x()[v], oracle[v]))
          << "step " << step << ", agent " << v << ": " << inc.x()[v]
          << " vs " << oracle[v];
    }
    const auto& u = inc.last_update();
    EXPECT_EQ(u.agents_dirty + u.agents_reused, cur.num_agents());
    EXPECT_EQ(u.class_cache_hits + u.evals, u.classes_invalidated);
  }
}

// Tier-1 runs SHORT variants of the randomized scripts (enough steps to
// cross the interesting transitions); the long versions live in the
// *Slow fixtures below, behind the ctest `slow` label (CMakeLists.txt; the
// CI sanitizer job runs the label in full).

TEST(IncrementalSolver, CycleScriptsBitIdentical) {
  // Two cycle-shaped workloads: the §4-pipelined cycle at R = 2 (its |Iv|=4
  // copies grow radius-17 views to ~half a million nodes each, so R = 3
  // would dominate the whole suite's runtime), and the natively-special
  // layered wheel -- the benches' cycle workload, thin views -- at R = 3.
  const MaxMinInstance cycle =
      to_special_form(cycle_instance({.num_agents = 24,
                                      .coeff_lo = 0.5,
                                      .coeff_hi = 2.0},
                                     13))
          .special;
  run_incremental_script(cycle, 2, 103, 4, /*allow_structural=*/false);
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 30, .width = 1, .twist = 0});
  for (const std::int32_t R : {2, 3}) {
    run_incremental_script(wheel, R, 111 + static_cast<std::uint64_t>(R), 4,
                           /*allow_structural=*/false);
  }
}

TEST(IncrementalSolver, GridScriptsBitIdentical) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  for (const std::int32_t R : {2, 3}) {
    run_incremental_script(grid, R, 202 + static_cast<std::uint64_t>(R), 4,
                           /*allow_structural=*/false);
  }
}

TEST(IncrementalSolver, ThreeRegularScriptsBitIdentical) {
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 12, .delta_k = 3}, 3);
  for (const std::int32_t R : {2, 3}) {
    run_incremental_script(circ, R, 303 + static_cast<std::uint64_t>(R), 4,
                           /*allow_structural=*/false);
  }
}

TEST(IncrementalSolver, RandomScriptsWithStructuralEditsBitIdentical) {
  // Random special form stays at R = 2: its high-degree agents grow
  // radius-17 views to tens of millions of nodes (the same cap
  // bench_view_cache documents; engine C is the fast path there).
  const MaxMinInstance random_sp =
      random_special_form({.num_agents = 28, .extra_constraints = 1.5}, 71);
  run_incremental_script(random_sp, 2, 404, 5, /*allow_structural=*/true);
}

TEST(IncrementalSolver, MembershipChurnScriptsBitIdentical) {
  // Add/remove-heavy scripts: every step is structural (remove-then-re-add
  // refreshes, rewires, objective moves) on the three natively-special
  // families at R in {2, 3}.  Same contract as the mixed scripts: the
  // maintained solution matches a scratch engine-L solve bitwise after
  // every step.
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 30, .width = 1, .twist = 0});
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 12, .delta_k = 3}, 3);
  for (const std::int32_t R : {2, 3}) {
    const auto s = static_cast<std::uint64_t>(R);
    run_incremental_script(wheel, R, 911 + s, 3, /*allow_structural=*/true,
                           /*churn=*/true);
    run_incremental_script(grid, R, 922 + s, 3, /*allow_structural=*/true,
                           /*churn=*/true);
    run_incremental_script(circ, R, 933 + s, 3, /*allow_structural=*/true,
                           /*churn=*/true);
  }
}

// The promoted long scripts: more steps, structural edits everywhere the
// family supports them.  DISABLED_ keeps them out of the discovered tier-1
// set; the slow_randomized_suites ctest entry (label `slow`) re-enables
// them with --gtest_also_run_disabled_tests.
TEST(IncrementalSolverSlow, DISABLED_LongMixedScripts) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 30, .width = 1, .twist = 0});
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 12, .delta_k = 3}, 3);
  for (const std::int32_t R : {2, 3}) {
    run_incremental_script(wheel, R, 711 + static_cast<std::uint64_t>(R), 12,
                           /*allow_structural=*/true);
    run_incremental_script(grid, R, 722 + static_cast<std::uint64_t>(R), 12,
                           /*allow_structural=*/true);
    run_incremental_script(circ, R, 733 + static_cast<std::uint64_t>(R), 12,
                           /*allow_structural=*/true);
  }
  const MaxMinInstance random_sp =
      random_special_form({.num_agents = 28, .extra_constraints = 1.5}, 71);
  run_incremental_script(random_sp, 2, 744, 16, /*allow_structural=*/true);
}

// Long membership-churn scripts (the ASan/TSan CI job runs the `slow`
// label in full): sustained structural-only pressure on every family.
TEST(IncrementalSolverSlow, DISABLED_LongChurnScripts) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 30, .width = 1, .twist = 0});
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 12, .delta_k = 3}, 3);
  for (const std::int32_t R : {2, 3}) {
    const auto s = static_cast<std::uint64_t>(R);
    run_incremental_script(wheel, R, 951 + s, 10, /*allow_structural=*/true,
                           /*churn=*/true);
    run_incremental_script(grid, R, 962 + s, 10, /*allow_structural=*/true,
                           /*churn=*/true);
    run_incremental_script(circ, R, 973 + s, 10, /*allow_structural=*/true,
                           /*churn=*/true);
  }
}

TEST(IncrementalSolver, ReusesAgentsOutsideTheDirtyBall) {
  // 4 x 48 paired torus at R = 2: D = 5, so a single-coefficient edit's
  // dirty ball is a thin slice of the 192 agents.
  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = 48}, 4);
  IncrementalSolver::Options opt;
  opt.R = 2;
  TSearchStats stats;
  opt.t_search.stats = &stats;
  IncrementalSolver inc(grid, opt);

  const SpecialFormInstance& sf = inc.special();
  InstanceDelta delta;
  delta.set_constraint_coeff(sf.arcs(0)[0].id, 0, 1.625);
  inc.apply(delta);
  const auto& u = inc.last_update();
  EXPECT_GT(u.agents_dirty, 0);
  EXPECT_GT(u.agents_reused, 0);
  EXPECT_LT(u.agents_dirty, grid.num_agents());
  EXPECT_EQ(stats.agents_dirty.load(), u.agents_dirty);
  EXPECT_EQ(stats.agents_reused.load(), u.agents_reused);
  EXPECT_EQ(stats.classes_invalidated.load(), u.classes_invalidated);

  // And the result still matches a from-scratch solve bitwise.
  MaxMinInstance cur = grid;
  cur.apply(delta);
  const std::vector<double> oracle = solve_special_local_views(cur, 2);
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    ASSERT_TRUE(same_bits(inc.x()[v], oracle[v])) << "agent " << v;
  }

  // Reverting the edit must hit the colour cache: the original classes were
  // all inserted during the cold solve.
  InstanceDelta revert;
  revert.set_constraint_coeff(sf.arcs(0)[0].id, 0,
                              grid.constraint_row(sf.arcs(0)[0].id)[0].agent == 0
                                  ? grid.constraint_row(sf.arcs(0)[0].id)[0].coeff
                                  : grid.constraint_row(sf.arcs(0)[0].id)[1].coeff);
  inc.apply(revert);
  EXPECT_EQ(inc.last_update().evals, 0) << "revert should be all cache hits";
  const std::vector<double> oracle0 = solve_special_local_views(grid, 2);
  for (std::size_t v = 0; v < oracle0.size(); ++v) {
    ASSERT_TRUE(same_bits(inc.x()[v], oracle0[v])) << "agent " << v;
  }
}

// ---------------------------------------------------------------------------
// LocalResolver: original-instance edit scripts through the §4 pipeline
// ---------------------------------------------------------------------------

// A random edit against an ORIGINAL instance: coefficient bumps always
// work; membership add/remove when the local invariants allow them.
InstanceDelta random_original_delta(const MaxMinInstance& inst, Rng& rng) {
  InstanceDelta delta;
  const std::uint64_t kind = rng.below(4);
  if (kind == 2) {
    // Add an agent to a row it is not in.
    for (int attempt = 0; attempt < 50; ++attempt) {
      const bool constraint = rng.bernoulli(0.5);
      const std::int32_t rows =
          constraint ? inst.num_constraints() : inst.num_objectives();
      const auto i =
          static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(rows)));
      const auto v = static_cast<AgentId>(
          rng.below(static_cast<std::uint64_t>(inst.num_agents())));
      const auto row = constraint ? inst.constraint_row(i)
                                  : inst.objective_row(i);
      bool in_row = false;
      for (const Entry& e : row) in_row |= (e.agent == v);
      if (in_row) continue;
      if (constraint) {
        delta.add_to_constraint(i, v, rng.uniform(0.5, 2.0));
      } else {
        delta.add_to_objective(i, v, rng.uniform(0.5, 2.0));
      }
      return delta;
    }
  } else if (kind == 3) {
    // Remove an entry whose row and agent can both afford it.
    for (int attempt = 0; attempt < 50; ++attempt) {
      const bool constraint = rng.bernoulli(0.5);
      const std::int32_t rows =
          constraint ? inst.num_constraints() : inst.num_objectives();
      const auto i =
          static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(rows)));
      const auto row = constraint ? inst.constraint_row(i)
                                  : inst.objective_row(i);
      if (row.size() < 2) continue;
      const AgentId v = row[rng.below(row.size())].agent;
      const std::size_t have = constraint ? inst.agent_constraints(v).size()
                                          : inst.agent_objectives(v).size();
      if (have < 2) continue;
      if (constraint) {
        delta.remove_from_constraint(i, v);
      } else {
        delta.remove_from_objective(i, v);
      }
      return delta;
    }
  }
  const int edits = 1 + static_cast<int>(rng.below(2));
  for (int e = 0; e < edits; ++e) {
    const bool constraint = rng.bernoulli(0.5);
    const std::int32_t rows =
        constraint ? inst.num_constraints() : inst.num_objectives();
    const auto i =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(rows)));
    const auto row =
        constraint ? inst.constraint_row(i) : inst.objective_row(i);
    const Entry& entry = row[rng.below(row.size())];
    if (constraint) {
      delta.set_constraint_coeff(i, entry.agent, rng.uniform(0.25, 4.0));
    } else {
      delta.set_objective_coeff(i, entry.agent, rng.uniform(0.25, 4.0));
    }
  }
  return delta;
}

void run_resolver_script(const MaxMinInstance& inst, std::int32_t R,
                         std::uint64_t seed, int steps) {
  Rng rng(seed);
  LocalParams params;
  params.R = R;
  params.engine = LocalEngine::kLocalViews;
  LocalResolver resolver(inst, params);
  MaxMinInstance cur = inst;

  auto expect_matches_scratch = [&](int step) {
    const LocalSolution oracle = solve_local(cur, params);
    const LocalSolution& sol = resolver.solution();
    ASSERT_EQ(sol.x.size(), oracle.x.size());
    for (std::size_t v = 0; v < oracle.x.size(); ++v) {
      ASSERT_TRUE(same_bits(sol.x[v], oracle.x[v]))
          << "step " << step << ", agent " << v << ": " << sol.x[v] << " vs "
          << oracle.x[v];
    }
    EXPECT_TRUE(same_bits(sol.omega, oracle.omega)) << "step " << step;
    EXPECT_TRUE(cur.is_feasible(sol.x, 1e-9));
  };
  expect_matches_scratch(-1);

  for (int step = 0; step < steps; ++step) {
    const InstanceDelta delta = random_original_delta(cur, rng);
    resolver.resolve(delta);
    cur.apply(delta);
    expect_same_instance(resolver.instance(), cur);
    // Coefficient edits always ride a delta (id-map fast path or
    // re-pipeline + diff).  Structural edits depend on the id map's
    // fast-path conditions -- id-stable on natively-special families
    // (pinned true by the churn scripts below), re-initialising when the
    // §4 numbering genuinely shifts -- so no blanket assertion here.
    if (!delta.structural()) {
      EXPECT_TRUE(resolver.last_resolve_was_delta()) << "step " << step;
    }
    expect_matches_scratch(step);
  }
}

// Membership churn through the RESOLVER on natively-special originals: the
// §4 pipeline is structure-neutral there (no gadgets, |Vi| = 2, |Kv| = 1,
// |Vk| >= 2, unit objective coefficients), so every structural edit meets
// the PipelineIdMap fast-path conditions and must resolve as an O(ball)
// special-form delta -- last_resolve_was_delta() == true on EVERY step --
// while staying bitwise on the scratch solve of the edited original.
void run_resolver_churn_script(const MaxMinInstance& inst, std::int32_t R,
                               std::uint64_t seed, int steps) {
  Rng rng(seed);
  LocalParams params;
  params.R = R;
  params.engine = LocalEngine::kLocalViews;
  LocalResolver resolver(inst, params);
  MaxMinInstance cur = inst;
  SpecialFormInstance mirror(inst);  // generator needs the arc view

  for (int step = 0; step < steps; ++step) {
    const InstanceDelta delta = random_churn_delta(mirror, rng);
    ASSERT_TRUE(delta.structural());
    resolver.resolve(delta);
    cur.apply(delta);
    mirror.apply(delta);
    expect_same_instance(resolver.instance(), cur);
    EXPECT_TRUE(resolver.last_resolve_was_delta())
        << "structural edit fell off the id-map fast path at step " << step;

    const LocalSolution oracle = solve_local(cur, params);
    const LocalSolution& sol = resolver.solution();
    ASSERT_EQ(sol.x.size(), oracle.x.size());
    for (std::size_t v = 0; v < oracle.x.size(); ++v) {
      ASSERT_TRUE(same_bits(sol.x[v], oracle.x[v]))
          << "step " << step << ", agent " << v;
    }
    EXPECT_TRUE(same_bits(sol.omega, oracle.omega)) << "step " << step;
    EXPECT_TRUE(cur.is_feasible(sol.x, 1e-9));
  }
}

TEST(LocalResolver, MembershipChurnStaysOnFastPath) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 20, .width = 1, .twist = 0});
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 6}, 2);
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 10, .delta_k = 3}, 3);
  for (const std::int32_t R : {2, 3}) {
    const auto s = static_cast<std::uint64_t>(R);
    run_resolver_churn_script(wheel, R, 551 + s, 3);
    run_resolver_churn_script(grid, R, 562 + s, 3);
    run_resolver_churn_script(circ, R, 573 + s, 3);
  }
}

TEST(LocalResolverSlow, DISABLED_LongChurnScripts) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 20, .width = 1, .twist = 0});
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 6}, 2);
  const MaxMinInstance circ =
      circulant_special_instance({.num_objectives = 10, .delta_k = 3}, 3);
  for (const std::int32_t R : {2, 3}) {
    const auto s = static_cast<std::uint64_t>(R);
    run_resolver_churn_script(wheel, R, 851 + s, 8);
    run_resolver_churn_script(grid, R, 862 + s, 8);
    run_resolver_churn_script(circ, R, 873 + s, 8);
  }
}

TEST(LocalResolver, CycleScriptsBitIdentical) {
  // R = 2 on the true cycle (the pipeline's |Iv|=4 copies make every R = 3
  // solve ~0.5 s -- see IncrementalSolver.CycleScriptsBitIdentical); R = 3
  // rides on the thin-view layered wheel below.
  const MaxMinInstance inst =
      cycle_instance({.num_agents = 14, .coeff_lo = 0.5, .coeff_hi = 2.0}, 5);
  run_resolver_script(inst, 2, 13, 5);
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 20, .width = 1, .twist = 0});
  run_resolver_script(wheel, 3, 14, 4);
}

TEST(LocalResolver, GridScriptsBitIdentical) {
  const MaxMinInstance inst = grid_instance({.rows = 3, .cols = 4}, 6);
  run_resolver_script(inst, 2, 21, 5);
}

TEST(LocalResolver, ThreeRegularScriptsBitIdentical) {
  const MaxMinInstance inst =
      regular_special_instance({.num_objectives = 8, .delta_k = 3}, 7);
  run_resolver_script(inst, 2, 31, 5);
}

TEST(LocalResolver, RandomScriptsBitIdentical) {
  // R = 2 only: the §4 pipeline raises degrees, and random instances have
  // no view symmetry to tame the radius-17 unfoldings of R = 3.
  const MaxMinInstance inst = random_general({.num_agents = 14}, 8);
  run_resolver_script(inst, 2, 41, 5);
}

TEST(LocalResolverSlow, DISABLED_LongScripts) {
  run_resolver_script(
      cycle_instance({.num_agents = 14, .coeff_lo = 0.5, .coeff_hi = 2.0}, 5),
      2, 813, 10);
  run_resolver_script(layered_instance({.delta_k = 2,
                                        .layers = 20,
                                        .width = 1,
                                        .twist = 0}),
                      3, 814, 8);
  run_resolver_script(grid_instance({.rows = 3, .cols = 4}, 6), 2, 821, 10);
  run_resolver_script(random_general({.num_agents = 14}, 8), 2, 841, 10);
}

// ---------------------------------------------------------------------------
// Transactional apply: commit-or-rollback, proved bitwise
// ---------------------------------------------------------------------------

// Snapshot-compares every piece of observable solver state against a second
// solver that never saw the failed apply: instance (full CSR bit compare),
// solution, and the per-agent WL colours.
void expect_same_solver_state(const IncrementalSolver& a,
                              const IncrementalSolver& b) {
  expect_same_instance(a.special().instance(), b.special().instance());
  ASSERT_EQ(a.x().size(), b.x().size());
  for (std::size_t v = 0; v < a.x().size(); ++v) {
    EXPECT_TRUE(same_bits(a.x()[v], b.x()[v])) << "x, agent " << v;
  }
  const auto ca = a.agent_colors_a(), cb = b.agent_colors_a();
  const auto da = a.agent_colors_b(), db = b.agent_colors_b();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t v = 0; v < ca.size(); ++v) {
    EXPECT_EQ(ca[v], cb[v]) << "colour a, agent " << v;
    EXPECT_EQ(da[v], db[v]) << "colour b, agent " << v;
  }
  // Derived special-form arrays (arc mirrors, capacity bounds).
  for (AgentId v = 0; v < a.special().num_agents(); ++v) {
    EXPECT_TRUE(same_bits(a.special().inv_cap(v), b.special().inv_cap(v)));
    EXPECT_TRUE(
        same_bits(a.special().t_search_upper(v), b.special().t_search_upper(v)));
  }
}

// Every rejected-delta shape must throw CheckError from the admission dry
// run with the solver left bitwise identical to a control that never saw
// the batch.
TEST(IncrementalSolverTransactional, RejectedDeltasLeaveStateUntouched) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  IncrementalSolver inc(grid);
  const IncrementalSolver control(grid);

  const AgentId a0 = grid.constraint_row(0)[0].agent;
  const AgentId a1 = grid.constraint_row(0)[1].agent;
  std::vector<InstanceDelta> rejects;
  rejects.push_back(
      InstanceDelta{}.set_constraint_coeff(grid.num_constraints() + 1, a0, 1.0));
  rejects.push_back(
      InstanceDelta{}.set_constraint_coeff(0, grid.num_agents() + 1, 1.0));
  rejects.push_back(InstanceDelta{}.set_constraint_coeff(0, a0, -1.0));
  rejects.push_back(InstanceDelta{}.set_constraint_coeff(
      0, a0, std::numeric_limits<double>::quiet_NaN()));
  rejects.push_back(InstanceDelta{}.set_constraint_coeff(
      0, a0, std::numeric_limits<double>::infinity()));
  rejects.push_back(InstanceDelta{}.set_objective_coeff(0, -1, 1.0));
  // Structural rejects: absent remove, duplicate add, emptied row, |Vi|!=2.
  rejects.push_back(InstanceDelta{}.remove_from_constraint(0, a0 == 0 ? 1 : 0));
  rejects.push_back(InstanceDelta{}.add_to_constraint(0, a0, 1.0));
  rejects.push_back(
      InstanceDelta{}.remove_from_constraint(0, a0).remove_from_constraint(0,
                                                                           a1));
  rejects.push_back(InstanceDelta{}.add_to_constraint(
      0, grid.agent_constraints(0).empty() ? a0 : 0, 1.0));
  // Special-form pin: objective coefficients must stay 1.
  rejects.push_back(
      InstanceDelta{}.set_objective_coeff(0, grid.objective_row(0)[0].agent,
                                          2.0));
  // Mixed batch: one valid edit + one bad one -- the whole batch must be
  // rejected with nothing applied (no partial commit).
  rejects.push_back(InstanceDelta{}
                        .set_constraint_coeff(0, a0, 1.25)
                        .set_constraint_coeff(0, grid.num_agents() + 7, 1.0));

  for (std::size_t i = 0; i < rejects.size(); ++i) {
    EXPECT_THROW(inc.apply(rejects[i]), CheckError) << "reject " << i;
    expect_same_solver_state(inc, control);
  }

  // The solver must still be fully functional after the rejections.
  InstanceDelta ok;
  ok.set_constraint_coeff(0, a0, 1.375);
  MaxMinInstance cur = grid;
  cur.apply(ok);
  inc.apply(ok);
  const std::vector<double> oracle = solve_special_local_views(cur, inc.R());
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    ASSERT_TRUE(same_bits(inc.x()[v], oracle[v])) << "agent " << v;
  }
}

// Deterministic mid-flight abandonment: expire the deadline on its k-th
// probe for every k until the apply commits.  After every abandonment the
// solver must be bitwise the pre-apply state (proved against a control that
// never applied anything); after the final commit it must be bitwise a
// control that applied the delta once, cleanly.
void run_deadline_sweep(const MaxMinInstance& base, const InstanceDelta& delta,
                        std::int64_t max_probes) {
  IncrementalSolver control_before(base);
  IncrementalSolver control_after(base);
  control_after.apply(delta);

  IncrementalSolver inc(base);
  bool committed = false;
  std::int64_t aborts = 0;
  for (std::int64_t k = 0; k < max_probes && !committed; ++k) {
    const Deadline deadline = Deadline::at_check(k);
    try {
      inc.apply(delta, &deadline);
      committed = true;
    } catch (const DeadlineExceeded&) {
      ++aborts;
      expect_same_solver_state(inc, control_before);
    }
  }
  ASSERT_TRUE(committed) << "apply never committed within " << max_probes
                         << " probes";
  EXPECT_GT(aborts, 0) << "at_check(0) should abort at the admission probe";
  expect_same_solver_state(inc, control_after);
}

TEST(IncrementalSolverTransactional, DeadlineSweepCoefficientDelta) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  const SpecialFormInstance sf(grid);
  InstanceDelta delta;
  delta.set_constraint_coeff(sf.arcs(0)[0].id, 0, 1.625);
  delta.set_constraint_coeff(sf.arcs(0)[0].id, 0, 2.25);  // duplicate key
  delta.set_constraint_coeff(sf.arcs(5)[0].id, 5, 0.75);
  run_deadline_sweep(grid, delta, 200);
}

TEST(IncrementalSolverTransactional, DeadlineSweepStructuralDelta) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  // A rewire: find a constraint whose member keeps another constraint.
  ConstraintId row = -1;
  AgentId lose = -1, gain = -1;
  for (ConstraintId i = 0; i < grid.num_constraints() && row < 0; ++i) {
    for (const Entry& e : grid.constraint_row(i)) {
      if (grid.agent_constraints(e.agent).size() >= 2) {
        row = i;
        lose = e.agent;
        break;
      }
    }
  }
  ASSERT_GE(row, 0);
  const auto r = grid.constraint_row(row);
  for (AgentId v = 0; v < grid.num_agents() && gain < 0; ++v) {
    if (v != r[0].agent && v != r[1].agent) gain = v;
  }
  InstanceDelta delta;
  delta.remove_from_constraint(row, lose).add_to_constraint(row, gain, 1.5);
  run_deadline_sweep(grid, delta, 400);
}

TEST(IncrementalSolverTransactional, DeadlineRequiresEngineL) {
  const MaxMinInstance wheel = layered_instance(
      {.delta_k = 2, .layers = 10, .width = 1, .twist = 0});
  IncrementalSolver::Options opt;
  opt.R = 2;
  opt.engine = DynamicEngine::kMessagePassing;
  IncrementalSolver inc(wheel, opt);
  InstanceDelta delta;
  delta.set_constraint_coeff(inc.special().arcs(0)[0].id, 0, 1.5);
  const Deadline deadline = Deadline::at_check(1000);
  EXPECT_THROW(inc.apply(delta, &deadline), CheckError);
  inc.apply(delta);  // without a deadline the engine still works
}

// ---------------------------------------------------------------------------
// Epoch fast-forward: the near-wrap renumbering path
// ---------------------------------------------------------------------------

// Fast-forwards the flood-epoch counter to just below the renumbering
// threshold (0xFFFFFF00) and keeps editing: the counter must renumber
// instead of CHECK-failing, and every update must stay bit-identical to the
// from-scratch oracle (regression for the old hard CHECK at 0xFFFFFFF0,
// which a long-lived serving process would eventually hit).
TEST(IncrementalSolver, EpochFastForwardRenumbersAndStaysExact) {
  const MaxMinInstance grid = special_grid_instance({.rows = 4, .cols = 8}, 2);
  IncrementalSolver inc(grid);
  MaxMinInstance cur = grid;
  Rng rng(909);

  inc.set_flood_epoch_for_test(0xFFFFFEFDu);  // 3 updates below the threshold
  for (int step = 0; step < 8; ++step) {
    const InstanceDelta delta =
        random_special_delta(inc.special(), rng, /*allow_structural=*/true);
    inc.apply(delta);
    cur.apply(delta);
    const std::vector<double> oracle = solve_special_local_views(cur, inc.R());
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      ASSERT_TRUE(same_bits(inc.x()[v], oracle[v]))
          << "step " << step << ", agent " << v;
    }
  }
}

}  // namespace
}  // namespace locmm
