// Tests for the dense simplex and the max-min LP reduction: hand-solved
// LPs, status detection, duals, and certificate-gated random instances.
#include <gtest/gtest.h>

#include <vector>

#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"
#include "lp/simplex.hpp"

namespace locmm {
namespace {

TEST(Simplex, TwoVariableBox) {
  // max x + y  s.t. x <= 1, y <= 2  ->  3 at (1, 2).
  std::vector<SparseLpRow> rows{{{{0, 1.0}}, 1.0}, {{{1, 1.0}}, 2.0}};
  const std::vector<double> c{1.0, 1.0};
  const LpResult res = simplex_solve_max(2, rows, c);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 3.0, 1e-9);
  EXPECT_NEAR(res.primal[0], 1.0, 1e-9);
  EXPECT_NEAR(res.primal[1], 2.0, 1e-9);
  // Duals: both constraints tight with multiplier 1.
  EXPECT_NEAR(res.dual[0], 1.0, 1e-9);
  EXPECT_NEAR(res.dual[1], 1.0, 1e-9);
}

TEST(Simplex, ClassicTextbookLp) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x, y >= 0 -> 12 at (4, 0).
  std::vector<SparseLpRow> rows{{{{0, 1.0}, {1, 1.0}}, 4.0},
                                {{{0, 1.0}, {1, 3.0}}, 6.0}};
  const std::vector<double> c{3.0, 2.0};
  const LpResult res = simplex_solve_max(2, rows, c);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 12.0, 1e-9);
  EXPECT_NEAR(res.primal[0], 4.0, 1e-9);
  EXPECT_NEAR(res.primal[1], 0.0, 1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  // max x with only y bounded.
  std::vector<SparseLpRow> rows{{{{1, 1.0}}, 1.0}};
  const std::vector<double> c{1.0, 0.0};
  EXPECT_EQ(simplex_solve_max(2, rows, c).status, LpStatus::kUnbounded);
}

TEST(Simplex, DetectsInfeasible) {
  // x >= 2 (written -x <= -2) and x <= 1.
  std::vector<SparseLpRow> rows{{{{0, -1.0}}, -2.0}, {{{0, 1.0}}, 1.0}};
  const std::vector<double> c{1.0};
  EXPECT_EQ(simplex_solve_max(1, rows, c).status, LpStatus::kInfeasible);
}

TEST(Simplex, PhaseOneThenOptimal) {
  // x >= 1, x <= 3, max -x ... use c = -1: optimum -1 at x = 1.
  std::vector<SparseLpRow> rows{{{{0, -1.0}}, -1.0}, {{{0, 1.0}}, 3.0}};
  const std::vector<double> c{-1.0};
  const LpResult res = simplex_solve_max(1, rows, c);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -1.0, 1e-9);
  EXPECT_NEAR(res.primal[0], 1.0, 1e-9);
}

TEST(Simplex, NegatedRowDualSign) {
  // max x s.t. x <= 2 and x >= 1; binding row is x <= 2 with dual 1, the
  // >= row is slack with dual 0.
  std::vector<SparseLpRow> rows{{{{0, 1.0}}, 2.0}, {{{0, -1.0}}, -1.0}};
  const std::vector<double> c{1.0};
  const LpResult res = simplex_solve_max(1, rows, c);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 2.0, 1e-9);
  EXPECT_NEAR(res.dual[0], 1.0, 1e-9);
  EXPECT_NEAR(res.dual[1], 0.0, 1e-9);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Multiple redundant constraints through the same vertex.
  std::vector<SparseLpRow> rows{{{{0, 1.0}, {1, 1.0}}, 1.0},
                                {{{0, 1.0}, {1, 1.0}}, 1.0},
                                {{{0, 2.0}, {1, 2.0}}, 2.0},
                                {{{0, 1.0}}, 1.0}};
  const std::vector<double> c{1.0, 1.0};
  const LpResult res = simplex_solve_max(2, rows, c);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-9);
}

TEST(MaxMinSolver, HandSolvedTiny) {
  // max min(x0 + x1, 3 x2) s.t. x0 + 2 x1 <= 1, x1 + x2 <= 1.
  // Optimal: x0 = 1, x1 = 0, x2 = 1/3 -> omega = 1.
  InstanceBuilder b(3);
  b.add_constraint({{0, 1.0}, {1, 2.0}});
  b.add_constraint({{1, 1.0}, {2, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  b.add_objective({{2, 3.0}});
  const MaxMinInstance inst = b.build();
  const MaxMinLpResult res = solve_lp_optimum(inst);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.omega, 1.0, 1e-9);
  EXPECT_TRUE(inst.is_feasible(res.x, 1e-9));
  EXPECT_NEAR(inst.utility(res.x), 1.0, 1e-9);
  EXPECT_TRUE(check_certificate(inst, res).ok());
}

TEST(MaxMinSolver, UnitCycleOptimumIsOne) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 8}, 1);
  const MaxMinLpResult res = solve_lp_optimum(inst);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.omega, 1.0, 1e-9);
  EXPECT_TRUE(check_certificate(inst, res).ok());
}

TEST(MaxMinSolver, PathWithSingletonEnds) {
  // n = 4: max min(x1+x2, x0, x3) s.t. x0+x1 <= 1, x2+x3 <= 1 -> 2/3.
  const MaxMinInstance inst = path_instance(4);
  const MaxMinLpResult res = solve_lp_optimum(inst);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.omega, 2.0 / 3.0, 1e-9);
  EXPECT_TRUE(check_certificate(inst, res).ok());
}

TEST(MaxMinSolver, LayeredWheelOptimum) {
  // The layered family has optimum delta_k - 1 (x = 1 on down-agents).
  for (int dk : {2, 3, 4}) {
    const MaxMinInstance inst = layered_instance(
        {.delta_k = dk, .layers = 4, .width = 3, .twist = 1});
    const MaxMinLpResult res = solve_lp_optimum(inst);
    ASSERT_EQ(res.status, LpStatus::kOptimal);
    EXPECT_NEAR(res.omega, dk - 1.0, 1e-8) << "delta_k=" << dk;
  }
}

TEST(MaxMinSolver, GridOptimum) {
  const MaxMinInstance inst = grid_instance({.rows = 4, .cols = 4}, 3);
  const MaxMinLpResult res = solve_lp_optimum(inst);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.omega, 1.0, 1e-9);  // x = 1/2 everywhere
}

class RandomCertificate : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCertificate, OptimalityIsCertified) {
  RandomGeneralParams p;
  p.num_agents = 24;
  const MaxMinInstance inst = random_general(p, GetParam());
  const MaxMinLpResult res = solve_lp_optimum(inst);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  const CertificateReport rep = check_certificate(inst, res);
  EXPECT_TRUE(rep.ok()) << "primal=" << rep.primal_violation
                        << " dual=" << rep.dual_violation
                        << " gap=" << rep.gap;
  EXPECT_GE(res.omega, -1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCertificate,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

class SpecialFormCertificate
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpecialFormCertificate, OptimalityIsCertified) {
  RandomSpecialParams p;
  p.num_agents = 24;
  const MaxMinInstance inst = random_special_form(p, GetParam());
  const MaxMinLpResult res = solve_lp_optimum(inst);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_TRUE(check_certificate(inst, res).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecialFormCertificate,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace locmm
