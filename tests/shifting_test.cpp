// Tests for the §6 analysis machinery: Lemma 8 (layer classes), Lemma 9
// (the shifted solutions y(j)), Lemma 10 (the shift average), and the
// Lemma 11 identity connecting the analysis to the algorithm's output (18).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/local_solver.hpp"
#include "core/shifting.hpp"
#include "gen/generators.hpp"

namespace locmm {
namespace {

struct WheelFixture {
  MaxMinInstance inst;
  SpecialFormInstance sf;
  LayerAssignment layers;
  SpecialRunResult run;
  std::int32_t R;

  WheelFixture(std::int32_t dk, std::int32_t L, std::int32_t W,
               std::int32_t R_)
      : inst(layered_instance({.delta_k = dk, .layers = L, .width = W,
                               .twist = 0})),
        sf(inst),
        layers(wheel_layers(dk, L, W)),
        run(solve_special_centralized(sf, R_)),
        R(R_) {}
};

TEST(Layers, WheelAssignmentValidates) {
  for (int dk : {2, 3, 4}) {
    const MaxMinInstance inst = layered_instance(
        {.delta_k = dk, .layers = 6, .width = 2, .twist = 0});
    const SpecialFormInstance sf(inst);
    validate_layers(sf, wheel_layers(dk, 6, 2));  // must not throw
  }
}

TEST(Layers, ValidatorCatchesRoleViolation) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 4, .width = 1, .twist = 0});
  const SpecialFormInstance sf(inst);
  LayerAssignment bad = wheel_layers(2, 4, 1);
  bad.is_up[0] = !bad.is_up[0];  // two same-role agents on a constraint
  EXPECT_THROW(validate_layers(sf, bad), CheckError);
}

TEST(Layers, ValidatorCatchesLayerGeometry) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 4, .width = 1, .twist = 0});
  const SpecialFormInstance sf(inst);
  LayerAssignment bad = wheel_layers(2, 4, 1);
  bad.layer[0] = (bad.layer[0] + 4) % bad.modulus;  // class ok, value wrong
  EXPECT_THROW(validate_layers(sf, bad), CheckError);
}

TEST(Layers, FlipValidOnDeltaK2) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 6, .width = 2, .twist = 0});
  const SpecialFormInstance sf(inst);
  const LayerAssignment flipped = flip_roles(wheel_layers(2, 6, 2));
  validate_layers(sf, flipped);  // must not throw
}

TEST(Layers, FlipInvalidOnDeltaK3) {
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 3, .layers = 6, .width = 1, .twist = 0});
  const SpecialFormInstance sf(inst);
  EXPECT_THROW(validate_layers(sf, flip_roles(wheel_layers(3, 6, 1))),
               CheckError);
}

TEST(Lemma9, ShiftedSolutionsFeasibleWithSilentLayers) {
  // L divisible by R so the (mod 4R) classes close around the wheel.
  for (const auto& [dk, L, W, R] :
       {std::tuple{2, 6, 1, 2}, std::tuple{3, 6, 2, 2},
        std::tuple{2, 6, 2, 3}, std::tuple{3, 8, 1, 4}}) {
    WheelFixture fx(dk, L, W, R);
    validate_layers(fx.sf, fx.layers);
    for (std::int32_t j = 0; j < R; ++j) {
      const std::vector<double> y =
          shifting_solution(fx.sf, fx.layers, fx.run.g, R, j);
      // Feasibility (Lemma 9 part 1).
      EXPECT_TRUE(fx.inst.is_feasible(y, 1e-9))
          << "dk=" << dk << " R=" << R << " j=" << j
          << " violation=" << fx.inst.violation(y);
      // Objective ledger (Lemma 9 part 2).
      const auto vals = fx.inst.objective_values(y);
      for (ObjectiveId k = 0; k < fx.inst.num_objectives(); ++k) {
        // Objective layer = its up-agent's layer + 1.
        std::int32_t klayer = -1;
        double smin = std::numeric_limits<double>::infinity();
        for (const Entry& e : fx.inst.objective_row(k)) {
          smin = std::min(smin, fx.run.s[e.agent]);
          if (fx.layers.is_up[static_cast<std::size_t>(e.agent)]) {
            klayer =
                (fx.layers.layer[static_cast<std::size_t>(e.agent)] + 1) %
                fx.layers.modulus;
          }
        }
        const bool silent =
            ((klayer - (4 * j - 4)) % (4 * R) + 4 * R) % (4 * R) == 0;
        if (silent) {
          EXPECT_NEAR(vals[k], 0.0, 1e-12)
              << "silent objective " << k << " not silenced";
        } else {
          EXPECT_GE(vals[k], smin - 1e-9)
              << "active objective " << k << " below min s";
        }
      }
    }
  }
}

TEST(Lemma10, AverageMatchesClosedFormAndBound) {
  WheelFixture fx(3, 6, 2, 3);
  validate_layers(fx.sf, fx.layers);

  // (1/R) sum_j y(j) equals the closed form (20).
  const auto n = static_cast<std::size_t>(fx.inst.num_agents());
  std::vector<double> avg(n, 0.0);
  for (std::int32_t j = 0; j < fx.R; ++j) {
    const auto y = shifting_solution(fx.sf, fx.layers, fx.run.g, fx.R, j);
    for (std::size_t v = 0; v < n; ++v) avg[v] += y[v];
  }
  for (auto& v : avg) v /= fx.R;
  const auto closed = shifted_average(fx.sf, fx.layers, fx.run.g, fx.R);
  for (std::size_t v = 0; v < n; ++v) EXPECT_NEAR(avg[v], closed[v], 1e-12);

  // Feasibility and the (1 - 1/R) min s bound (Lemma 10).
  EXPECT_TRUE(fx.inst.is_feasible(closed, 1e-9));
  const auto vals = fx.inst.objective_values(closed);
  for (ObjectiveId k = 0; k < fx.inst.num_objectives(); ++k) {
    double smin = std::numeric_limits<double>::infinity();
    for (const Entry& e : fx.inst.objective_row(k))
      smin = std::min(smin, fx.run.s[e.agent]);
    EXPECT_GE(vals[k], (1.0 - 1.0 / fx.R) * smin - 1e-9) << "objective " << k;
  }
}

TEST(Lemma11, OutputIsTheRoleAverage) {
  // On delta_K = 2 wheels both role assignments are valid, and (18) is the
  // per-agent average of the two shifted averages -- the §6.2 argument.
  WheelFixture fx(2, 8, 1, 4);
  const LayerAssignment up_first = fx.layers;
  const LayerAssignment down_first = flip_roles(fx.layers);
  validate_layers(fx.sf, up_first);
  validate_layers(fx.sf, down_first);

  const auto ya = shifted_average(fx.sf, up_first, fx.run.g, fx.R);
  const auto yb = shifted_average(fx.sf, down_first, fx.run.g, fx.R);
  for (std::size_t v = 0; v < ya.size(); ++v) {
    EXPECT_NEAR(0.5 * (ya[v] + yb[v]), fx.run.x[v], 1e-12) << "agent " << v;
  }
}

TEST(Shifting, RejectsInconsistentModulus) {
  WheelFixture fx(2, 6, 1, 4);  // 4R = 16 does not divide modulus 24
  EXPECT_THROW(shifting_solution(fx.sf, fx.layers, fx.run.g, 4, 0),
               CheckError);
}

}  // namespace
}  // namespace locmm
