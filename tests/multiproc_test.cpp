// Cross-process conformance for the forked transports (dist/transport.hpp):
// engines M and S running as 2 and 4 OS processes over shared-memory rings
// and AF_UNIX sockets must land BITWISE on their single-process selves --
// and therefore on engine C (S carries C's bits exactly; M agrees with C to
// 1e-12) -- on randomized instances of several generator families, with
// RunStats equal to the in-process run's (the byte counters quote the same
// encoder, and every rank counts its own nodes' sends at frame size
// regardless of where the receiver lives).
//
// The slow variant (DISABLED_*Slow*, picked up by the slow_randomized_suites
// ctest entry) drives an edit script: after every delta the dynamic replay
// path (IncrementalSolver over the recorded in-process history) must agree
// bitwise with a fresh 4-rank cross-process solve of the edited instance --
// pinning that replayed dynamics and real multi-process execution describe
// the same network.
//
// Fork-based tests cannot run under TSan (the runtime does not support
// fork-with-threads); they GTEST_SKIP there.  The ASan CI job runs them
// against the socket transport as well.
#include "dist/transport.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/local_solver.hpp"
#include "core/special_form.hpp"
#include "dist/gather.hpp"
#include "dist/streaming.hpp"
#include "dynamic/incremental_solver.hpp"
#include "gen/generators.hpp"
#include "lp/delta.hpp"
#include "support/prng.hpp"

#if defined(__SANITIZE_THREAD__)
#define LOCMM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LOCMM_TSAN 1
#endif
#endif

#ifdef LOCMM_TSAN
#define LOCMM_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork-based transports are unsupported under TSan"
#else
#define LOCMM_SKIP_UNDER_TSAN() (void)0
#endif

namespace locmm {
namespace {

void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[v]),
              std::bit_cast<std::uint64_t>(want[v]))
        << what << ", agent " << v;
  }
}

const char* transport_name(TransportKind k) {
  return k == TransportKind::kSharedMemory ? "shm" : "socket";
}

// The full conformance bundle for one (instance, R, transport, ranks) cell.
void expect_conformance(const MaxMinInstance& special, std::int32_t R,
                        TransportKind kind, std::int32_t ranks,
                        std::int64_t ring_bytes = 4 << 20) {
  const std::string what =
      std::string(transport_name(kind)) + " x" + std::to_string(ranks);

  const MessageRunResult m1 = solve_special_message_passing(special, R);
  const StreamingRunResult s1 = solve_special_streaming(special, R);
  const SpecialRunResult c =
      solve_special_centralized(SpecialFormInstance(special), R);

  DistOptions dist;
  dist.transport = kind;
  dist.ranks = ranks;
  dist.ring_bytes = ring_bytes;
  const MessageRunResult m =
      solve_special_message_passing(special, R, {}, 1, nullptr, dist);
  const StreamingRunResult s =
      solve_special_streaming(special, R, {}, 1, nullptr, dist);

  // Bitwise against the single-process engines; S additionally carries
  // engine C's exact bits, M agrees with C at 1e-12.
  expect_bitwise(m.x, m1.x, "engine M " + what);
  expect_bitwise(s.x, s1.x, "engine S " + what);
  expect_bitwise(s.x, c.x, "engine S vs C " + what);
  ASSERT_EQ(m.x.size(), c.x.size());
  for (std::size_t v = 0; v < c.x.size(); ++v)
    EXPECT_NEAR(m.x[v], c.x[v], 1e-12) << "engine M vs C " << what;

  // Stats must be partition-independent: identical to in-process.
  for (const auto& [mp, ip] : {std::pair(m.stats, m1.stats),
                               std::pair(s.stats, s1.stats)}) {
    EXPECT_EQ(mp.rounds, ip.rounds) << what;
    EXPECT_EQ(mp.messages, ip.messages) << what;
    EXPECT_EQ(mp.bytes, ip.bytes) << what;
    EXPECT_EQ(mp.max_message_bytes, ip.max_message_bytes) << what;
    EXPECT_EQ(mp.fresh_messages, ip.fresh_messages) << what;
    EXPECT_EQ(mp.fresh_bytes, ip.fresh_bytes) << what;
  }
}

TEST(Multiprocess, TwoAndFourRanksOnRandomSpecial) {
  LOCMM_SKIP_UNDER_TSAN();
  RandomSpecialParams p;
  p.num_agents = 12;
  p.delta_k = 3;
  for (const TransportKind kind :
       {TransportKind::kSharedMemory, TransportKind::kSocket}) {
    for (const std::int32_t ranks : {2, 4}) {
      for (const std::uint64_t seed : {21, 22}) {
        expect_conformance(random_special_form(p, seed), 2, kind, ranks);
      }
    }
  }
}

TEST(Multiprocess, FourRanksAcrossFamilies) {
  LOCMM_SKIP_UNDER_TSAN();
  const MaxMinInstance fams[] = {
      special_grid_instance({.rows = 4, .cols = 4}, 3),
      circulant_special_instance({.num_objectives = 8}, 9),
      regular_special_instance({.num_objectives = 6}, 8),
      layered_instance({.delta_k = 2, .layers = 4, .width = 2, .twist = 1}),
  };
  for (const MaxMinInstance& inst : fams) {
    for (const TransportKind kind :
         {TransportKind::kSharedMemory, TransportKind::kSocket}) {
      expect_conformance(inst, 2, kind, 4);
    }
  }
}

TEST(Multiprocess, RadiusThreeOnSparseFamily) {
  LOCMM_SKIP_UNDER_TSAN();
  // R = 3 on the engine-M-tractable sparse family: 31 streaming rounds and
  // radius-17 view blobs crossing real process boundaries.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 5, .width = 1, .twist = 0});
  for (const TransportKind kind :
       {TransportKind::kSharedMemory, TransportKind::kSocket}) {
    expect_conformance(inst, 3, kind, 2);
  }
}

TEST(Multiprocess, TinyRingForcesWrapAndPartialWrites) {
  LOCMM_SKIP_UNDER_TSAN();
  // The minimum ring capacity: a round of engine-M view traffic is far
  // larger, so every exchange exercises wrap-around, partial write_some and
  // the polling backpressure path.
  RandomSpecialParams p;
  p.num_agents = 12;
  p.delta_k = 3;
  expect_conformance(random_special_form(p, 23), 2,
                     TransportKind::kSharedMemory, 4, /*ring_bytes=*/1024);
}

TEST(Multiprocess, SingleRankDegenerate) {
  LOCMM_SKIP_UNDER_TSAN();
  // ranks = 1: one forked child, no peers, no exchange -- the degenerate
  // case must still match in-process bitwise.
  RandomSpecialParams p;
  p.num_agents = 8;
  expect_conformance(random_special_form(p, 24), 2, TransportKind::kSocket,
                     1);
}

// ---------------------------------------------------------------------------
// Slow: edit script -- dynamic replay vs fresh cross-process solves
// ---------------------------------------------------------------------------

class MultiprocSlow : public ::testing::Test {};

TEST_F(MultiprocSlow, DISABLED_EditScriptReplayMatchesCrossProcess) {
  LOCMM_SKIP_UNDER_TSAN();
  RandomSpecialParams p;
  p.num_agents = 16;
  p.delta_k = 3;
  const MaxMinInstance special = random_special_form(p, 31);
  const std::int32_t R = 2;

  IncrementalSolver::Options mo, so;
  mo.R = so.R = R;
  mo.engine = DynamicEngine::kMessagePassing;
  so.engine = DynamicEngine::kStreaming;
  IncrementalSolver inc_m(special, mo);
  IncrementalSolver inc_s(special, so);
  MaxMinInstance cur = special;

  Rng rng(77);
  for (int step = 0; step < 12; ++step) {
    // Special-form-preserving coefficient bumps on random constraint arcs.
    InstanceDelta delta;
    const int edits = 1 + static_cast<int>(rng.below(3));
    for (int e = 0; e < edits; ++e) {
      const auto i = static_cast<ConstraintId>(
          rng.below(static_cast<std::uint64_t>(cur.num_constraints())));
      const auto row = cur.constraint_row(i);
      const AgentId v = row[rng.below(row.size())].agent;
      delta.set_constraint_coeff(i, v, rng.uniform(0.25, 4.0));
    }
    inc_m.apply(delta);
    inc_s.apply(delta);
    cur.apply(delta);

    // The replayed dynamic state must equal a fresh 4-rank cross-process
    // solve of the edited instance, bitwise, on both transports.
    const TransportKind kind = (step % 2 == 0) ? TransportKind::kSharedMemory
                                               : TransportKind::kSocket;
    DistOptions dist;
    dist.transport = kind;
    dist.ranks = 4;
    const MessageRunResult m =
        solve_special_message_passing(cur, R, {}, 1, nullptr, dist);
    const StreamingRunResult s =
        solve_special_streaming(cur, R, {}, 1, nullptr, dist);
    expect_bitwise(inc_m.x(), m.x,
                   "replayed M vs cross-process, step " + std::to_string(step));
    expect_bitwise(inc_s.x(), s.x,
                   "replayed S vs cross-process, step " + std::to_string(step));
  }
}

}  // namespace
}  // namespace locmm
