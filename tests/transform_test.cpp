// Tests for the §4 transformations: per-step structural postconditions,
// optimum preservation (or the §4.3 accounting), back-map feasibility, and
// the composed pipeline contract.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

double optimum(const MaxMinInstance& inst) {
  const MaxMinLpResult res = solve_lp_optimum(inst);
  EXPECT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_TRUE(check_certificate(inst, res).ok());
  return res.omega;
}

MaxMinInstance with_singleton_constraint() {
  InstanceBuilder b(2);
  b.add_constraint({{0, 2.0}});            // singleton: x0 <= 1/2
  b.add_constraint({{0, 1.0}, {1, 1.0}});  // x0 + x1 <= 1
  b.add_objective({{0, 1.0}, {1, 1.0}});
  return b.build();
}

TEST(AugmentConstraints, MakesAllConstraintsDegreeTwoPlus) {
  const MaxMinInstance in = with_singleton_constraint();
  const TransformStep step = augment_singleton_constraints(in);
  for (ConstraintId i = 0; i < step.instance.num_constraints(); ++i)
    EXPECT_GE(step.instance.constraint_row(i).size(), 2u);
  // Gadget: 3 new agents, 1 new constraint, 2 new objectives.
  EXPECT_EQ(step.instance.num_agents(), in.num_agents() + 3);
  EXPECT_EQ(step.instance.num_constraints(), in.num_constraints() + 1);
  EXPECT_EQ(step.instance.num_objectives(), in.num_objectives() + 2);
  EXPECT_DOUBLE_EQ(step.ratio_factor, 1.0);
}

TEST(AugmentConstraints, PreservesOptimum) {
  const MaxMinInstance in = with_singleton_constraint();
  const TransformStep step = augment_singleton_constraints(in);
  EXPECT_NEAR(optimum(in), optimum(step.instance), 1e-8);
}

TEST(AugmentConstraints, BackMapRestrictsToOriginals) {
  const MaxMinInstance in = with_singleton_constraint();
  const TransformStep step = augment_singleton_constraints(in);
  const MaxMinLpResult res = solve_lp_optimum(step.instance);
  const std::vector<double> x = step.back(res.x);
  ASSERT_EQ(static_cast<std::int32_t>(x.size()), in.num_agents());
  EXPECT_TRUE(in.is_feasible(x, 1e-9));
  EXPECT_GE(in.utility(x), res.omega - 1e-9);
}

TEST(AugmentConstraints, NoOpWithoutSingletons) {
  const MaxMinInstance in = cycle_instance({.num_agents = 6}, 1);
  const TransformStep step = augment_singleton_constraints(in);
  EXPECT_EQ(step.instance.num_agents(), in.num_agents());
  EXPECT_EQ(step.instance.num_constraints(), in.num_constraints());
}

TEST(ReduceDegree, PairwiseRowsAndFactor) {
  InstanceBuilder b(4);
  b.add_constraint({{0, 1.0}, {1, 2.0}, {2, 3.0}, {3, 4.0}});
  b.add_constraint({{0, 1.0}, {1, 1.0}});
  b.add_objective({{0, 1.0}, {1, 1.0}});
  b.add_objective({{2, 1.0}, {3, 1.0}});
  const MaxMinInstance in = b.build();
  const TransformStep step = reduce_constraint_degree(in);
  // C(4,2) = 6 pairs + 1 untouched row.
  EXPECT_EQ(step.instance.num_constraints(), 7);
  for (ConstraintId i = 0; i < step.instance.num_constraints(); ++i)
    EXPECT_EQ(step.instance.constraint_row(i).size(), 2u);
  EXPECT_DOUBLE_EQ(step.ratio_factor, 2.0);  // delta_I / 2
}

TEST(ReduceDegree, TransformedOptimumAtLeastOriginal) {
  const MaxMinInstance in = random_general({.num_agents = 16, .delta_i = 4},
                                           31);
  const TransformStep pre = augment_singleton_constraints(in);
  const TransformStep step = reduce_constraint_degree(pre.instance);
  // The original optimum embeds feasibly (pairwise sums of a feasible row
  // are feasible), so the transformed optimum can only grow.
  EXPECT_GE(optimum(step.instance), optimum(pre.instance) - 1e-8);
}

TEST(ReduceDegree, BackMapFeasibleWithRatioAccounting) {
  const MaxMinInstance in = random_general({.num_agents = 14, .delta_i = 5},
                                           32);
  const TransformStep pre = augment_singleton_constraints(in);
  const TransformStep step = reduce_constraint_degree(pre.instance);
  const MaxMinLpResult res = solve_lp_optimum(step.instance);
  const std::vector<double> x = step.back(res.x);
  EXPECT_TRUE(pre.instance.is_feasible(x, 1e-9));
  // omega(x) >= (2 / delta_I) * omega'(x') = omega'(x') / ratio_factor.
  EXPECT_GE(pre.instance.utility(x),
            res.omega / step.ratio_factor - 1e-9);
}

TEST(SplitAgents, UniqueObjectivePerAgent) {
  const MaxMinInstance in = cycle_instance({.num_agents = 6}, 1);  // |Kv| = 2
  const TransformStep pre = reduce_constraint_degree(
      augment_singleton_constraints(in).instance);
  const TransformStep step = split_agents_per_objective(pre.instance);
  for (AgentId v = 0; v < step.instance.num_agents(); ++v)
    EXPECT_EQ(step.instance.agent_objectives(v).size(), 1u);
  // Every agent of the cycle doubles.
  EXPECT_EQ(step.instance.num_agents(), 12);
}

TEST(SplitAgents, PreservesOptimum) {
  const MaxMinInstance in = cycle_instance({.num_agents = 6}, 9);
  const TransformStep step = split_agents_per_objective(in);
  EXPECT_NEAR(optimum(in), optimum(step.instance), 1e-8);
}

TEST(SplitAgents, BackMapTakesMaxOverCopies) {
  const MaxMinInstance in = cycle_instance({.num_agents = 5}, 9);
  const TransformStep step = split_agents_per_objective(in);
  const MaxMinLpResult res = solve_lp_optimum(step.instance);
  const std::vector<double> x = step.back(res.x);
  EXPECT_TRUE(in.is_feasible(x, 1e-9));
  EXPECT_GE(in.utility(x), res.omega - 1e-9);
}

TEST(AugmentObjectives, SplitsSingletonAgents) {
  const MaxMinInstance in = path_instance(6);
  const TransformStep pre = split_agents_per_objective(
      reduce_constraint_degree(
          augment_singleton_constraints(in).instance).instance);
  const TransformStep step = augment_singleton_objectives(pre.instance);
  for (ObjectiveId k = 0; k < step.instance.num_objectives(); ++k)
    EXPECT_GE(step.instance.objective_row(k).size(), 2u);
  EXPECT_NEAR(optimum(pre.instance), optimum(step.instance), 1e-8);
}

TEST(AugmentObjectives, BackMapFeasible) {
  const MaxMinInstance in = path_instance(6);
  const TransformStep pre = split_agents_per_objective(
      reduce_constraint_degree(
          augment_singleton_constraints(in).instance).instance);
  const TransformStep step = augment_singleton_objectives(pre.instance);
  const MaxMinLpResult res = solve_lp_optimum(step.instance);
  const std::vector<double> x = step.back(res.x);
  EXPECT_TRUE(pre.instance.is_feasible(x, 1e-9));
  EXPECT_GE(pre.instance.utility(x), res.omega - 1e-9);
}

TEST(Normalize, UnitObjectiveCoefficients) {
  RandomSpecialParams p;
  p.num_agents = 12;
  MaxMinInstance in = random_special_form(p, 3);
  // Scale some objective coefficients away from 1 by rebuilding.
  InstanceBuilder b(in.num_agents());
  for (ConstraintId i = 0; i < in.num_constraints(); ++i) {
    auto row = in.constraint_row(i);
    b.add_constraint(std::vector<Entry>(row.begin(), row.end()));
  }
  for (ObjectiveId k = 0; k < in.num_objectives(); ++k) {
    std::vector<Entry> row;
    for (const Entry& e : in.objective_row(k))
      row.push_back({e.agent, 1.0 + 0.5 * (e.agent % 3)});
    b.add_objective(std::move(row));
  }
  const MaxMinInstance scaled = b.build();
  const TransformStep step = normalize_objective_coeffs(scaled);
  for (ObjectiveId k = 0; k < step.instance.num_objectives(); ++k)
    for (const Entry& e : step.instance.objective_row(k))
      EXPECT_DOUBLE_EQ(e.coeff, 1.0);
  EXPECT_NEAR(optimum(scaled), optimum(step.instance), 1e-8);
  const MaxMinLpResult res = solve_lp_optimum(step.instance);
  const std::vector<double> x = step.back(res.x);
  EXPECT_TRUE(scaled.is_feasible(x, 1e-9));
  EXPECT_NEAR(scaled.utility(x), res.omega, 1e-8);
}

class PipelineOnFamilies : public ::testing::TestWithParam<int> {};

MaxMinInstance family_instance(int which) {
  switch (which) {
    case 0: return random_general({.num_agents = 14, .delta_i = 3}, 51);
    case 1: return cycle_instance({.num_agents = 8}, 52);
    case 2: return path_instance(8);
    case 3: return sensor_instance({.num_sensors = 10, .num_sinks = 4}, 53);
    case 4: return bandwidth_instance({.num_routers = 8, .num_customers = 4},
                                      54);
    case 5: return tree_instance({.max_agents = 16}, 55);
    default: return grid_instance({.rows = 3, .cols = 3}, 56);
  }
}

TEST_P(PipelineOnFamilies, ProducesSpecialFormWithSoundBackMap) {
  const MaxMinInstance in = family_instance(GetParam());
  const Pipeline p = to_special_form(in);
  EXPECT_TRUE(is_special_form(p.special));
  EXPECT_EQ(p.steps.size(), 5u);

  // ratio_factor = delta_I(after §4.2) / 2.
  const double d = static_cast<double>(
      std::max<std::int32_t>(2, p.steps[0].instance.stats().delta_i));
  EXPECT_DOUBLE_EQ(p.ratio_factor, d / 2.0);

  // Solve the special instance exactly and map back: feasibility plus the
  // pipeline's utility accounting omega(x) >= omega'(x') / ratio_factor.
  const MaxMinLpResult res = solve_lp_optimum(p.special);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  const std::vector<double> x = p.map_back(res.x);
  EXPECT_TRUE(in.is_feasible(x, 1e-8));
  EXPECT_GE(in.utility(x), res.omega / p.ratio_factor - 1e-8);

  // The special optimum dominates the original (every step's "optimal
  // solutions embed" direction).
  EXPECT_GE(res.omega, optimum(in) - 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Families, PipelineOnFamilies,
                         ::testing::Range(0, 7));

TEST(Pipeline, SpecialFormInputPassesAlmostUntouched) {
  RandomSpecialParams p;
  p.num_agents = 16;
  const MaxMinInstance in = random_special_form(p, 77);
  const Pipeline pipe = to_special_form(in);
  // Already special form: same sizes everywhere.
  EXPECT_EQ(pipe.special.num_agents(), in.num_agents());
  EXPECT_EQ(pipe.special.num_constraints(), in.num_constraints());
  EXPECT_EQ(pipe.special.num_objectives(), in.num_objectives());
  EXPECT_DOUBLE_EQ(pipe.ratio_factor, 1.0);
}

TEST(CheckSpecialForm, RejectsEachViolation) {
  // |Vi| != 2.
  {
    InstanceBuilder b(3);
    b.add_constraint({{0, 1.0}, {1, 1.0}, {2, 1.0}});
    b.add_objective({{0, 1.0}, {1, 1.0}});
    b.add_objective({{2, 1.0}, {0, 1.0}});
    EXPECT_THROW(check_special_form(b.build(false)), CheckError);
  }
  // c != 1.
  {
    InstanceBuilder b(2);
    b.add_constraint({{0, 1.0}, {1, 1.0}});
    b.add_objective({{0, 2.0}, {1, 1.0}});
    EXPECT_THROW(check_special_form(b.build()), CheckError);
  }
  // |Kv| != 1.
  {
    const MaxMinInstance cyc = cycle_instance({.num_agents = 4}, 1);
    EXPECT_THROW(check_special_form(cyc), CheckError);
  }
}

}  // namespace
}  // namespace locmm
