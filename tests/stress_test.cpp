// Stress and robustness: extreme coefficient ranges, larger end-to-end
// instances, the exact-LP t route through the whole solver, and port
// renumbering (the contract must hold under any port order, even though
// the specific output may legitimately differ).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/local_solver.hpp"
#include "core/solver_api.hpp"
#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"

namespace locmm {
namespace {

TEST(Stress, ExtremeCoefficientRangeKeepsContract) {
  // Six orders of magnitude between the smallest and largest coefficient.
  for (std::uint64_t seed : {1, 2, 3, 4}) {
    RandomGeneralParams p;
    p.num_agents = 16;
    p.coeff_lo = 1e-3;
    p.coeff_hi = 1e3;
    const MaxMinInstance inst = random_general(p, seed);
    const MaxMinLpResult opt = solve_lp_optimum(inst);
    ASSERT_EQ(opt.status, LpStatus::kOptimal);
    ASSERT_TRUE(check_certificate(inst, opt).ok(1e-5)) << "seed " << seed;
    const LocalSolution sol = solve_local(inst, {.R = 3});
    EXPECT_TRUE(inst.is_feasible(sol.x, 1e-7));
    EXPECT_GE(sol.omega * sol.guarantee, opt.omega * (1.0 - 1e-6));
  }
}

TEST(Stress, TinyCoefficientsDoNotUnderflowToZeroUtility) {
  RandomSpecialParams p;
  p.num_agents = 16;
  p.coeff_lo = 1e-6;
  p.coeff_hi = 2e-6;  // capacities around 5e5
  const MaxMinInstance inst = random_special_form(p, 9);
  const SpecialFormInstance sf(inst);
  const SpecialRunResult run = solve_special_centralized(sf, 3);
  EXPECT_TRUE(inst.is_feasible(run.x, 1e-6));
  EXPECT_GT(inst.utility(run.x), 0.0);
}

TEST(Stress, ExactLpRouteEndToEnd) {
  // TSearchOptions::exact_lp swaps the bisection for the §5.2 LP route;
  // results must agree to solver precision and keep feasibility (up to the
  // LP's arithmetic, see the header note).
  RandomSpecialParams p;
  p.num_agents = 14;
  const MaxMinInstance inst = random_special_form(p, 17);
  const SpecialFormInstance sf(inst);
  TSearchOptions exact;
  exact.exact_lp = true;
  const SpecialRunResult via_lp = solve_special_centralized(sf, 3, exact);
  const SpecialRunResult via_bisect = solve_special_centralized(sf, 3, {});
  for (std::size_t v = 0; v < via_lp.x.size(); ++v) {
    EXPECT_NEAR(via_lp.t[v], via_bisect.t[v], 1e-6);
    EXPECT_NEAR(via_lp.x[v], via_bisect.x[v], 1e-6);
  }
  EXPECT_TRUE(inst.is_feasible(via_lp.x, 1e-7));
}

TEST(Stress, LargerEndToEndAcrossFamilies) {
  // Bigger than the unit tests, still test-suite friendly.  Ground truth is
  // skipped (simplex would dominate the runtime); the structural contract
  // -- feasibility and t/s/utility sanity -- is checked instead.
  const std::vector<MaxMinInstance> instances = {
      random_general({.num_agents = 300, .delta_i = 3, .delta_k = 3}, 71),
      grid_instance({.rows = 20, .cols = 20}, 72),
      sensor_instance({.num_sensors = 150, .num_sinks = 40}, 73),
      layered_instance({.delta_k = 3, .layers = 24, .width = 4, .twist = 1}),
  };
  for (const MaxMinInstance& inst : instances) {
    const LocalSolution sol = solve_local(inst, {.R = 3, .threads = 0});
    EXPECT_TRUE(inst.is_feasible(sol.x, 1e-8));
    EXPECT_GT(sol.omega, 0.0);
    EXPECT_GE(sol.t_min_special, sol.omega_special - 1e-7);
  }
}

TEST(Stress, PortRenumberingPreservesTheContract) {
  // Reversing every row reverses all port numbers.  A port-numbering
  // algorithm may output a *different* solution, but feasibility and the
  // guarantee must survive.
  const MaxMinInstance inst =
      random_general({.num_agents = 16, .delta_i = 3, .delta_k = 3}, 81);
  InstanceBuilder b(inst.num_agents());
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i) {
    auto row = inst.constraint_row(i);
    std::vector<Entry> rev(row.rbegin(), row.rend());
    b.add_constraint(std::move(rev));
  }
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    auto row = inst.objective_row(k);
    std::vector<Entry> rev(row.rbegin(), row.rend());
    b.add_objective(std::move(rev));
  }
  const MaxMinInstance reversed = b.build();

  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);
  for (const MaxMinInstance* variant : {&inst, &reversed}) {
    const LocalSolution sol = solve_local(*variant, {.R = 3});
    EXPECT_TRUE(variant->is_feasible(sol.x, 1e-8));
    EXPECT_GE(sol.omega * sol.guarantee, opt.omega - 1e-7);
  }
}

TEST(Stress, RepeatedLargeRunsStayBitwiseStable) {
  const MaxMinInstance inst = grid_instance({.rows = 16, .cols = 16}, 91);
  const LocalSolution a = solve_local(inst, {.R = 4, .threads = 0});
  const LocalSolution c = solve_local(inst, {.R = 4, .threads = 0});
  ASSERT_EQ(a.x.size(), c.x.size());
  for (std::size_t v = 0; v < a.x.size(); ++v)
    EXPECT_DOUBLE_EQ(a.x[v], c.x[v]);
}

TEST(Stress, HighDegreeObjectiveInstances) {
  // delta_K = 8 pushes the sibling sums and the threshold 2(1-1/8).
  RandomSpecialParams p;
  p.num_agents = 64;
  p.delta_k = 8;
  const MaxMinInstance inst = random_special_form(p, 92);
  const SpecialFormInstance sf(inst);
  const SpecialRunResult run = solve_special_centralized(sf, 3);
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  ASSERT_EQ(opt.status, LpStatus::kOptimal);
  EXPECT_TRUE(inst.is_feasible(run.x, 1e-9));
  EXPECT_GE(inst.utility(run.x) * special_form_guarantee(8, 3),
            opt.omega - 1e-7);
}

}  // namespace
}  // namespace locmm
