// Tests for the plain-text instance format: round-trips, comments, errors.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/generators.hpp"
#include "lp/io.hpp"

namespace locmm {
namespace {

bool same_instance(const MaxMinInstance& a, const MaxMinInstance& b) {
  if (a.num_agents() != b.num_agents() ||
      a.num_constraints() != b.num_constraints() ||
      a.num_objectives() != b.num_objectives()) {
    return false;
  }
  for (ConstraintId i = 0; i < a.num_constraints(); ++i) {
    const auto ra = a.constraint_row(i);
    const auto rb = b.constraint_row(i);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) return false;
  }
  for (ObjectiveId k = 0; k < a.num_objectives(); ++k) {
    const auto ra = a.objective_row(k);
    const auto rb = b.objective_row(k);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) return false;
  }
  return true;
}

TEST(Io, RoundTripsRandomInstance) {
  const MaxMinInstance inst = random_general({.num_agents = 20}, 99);
  std::stringstream ss;
  write_instance(ss, inst);
  const MaxMinInstance back = read_instance(ss);
  EXPECT_TRUE(same_instance(inst, back));
}

TEST(Io, RoundTripsExactCoefficients) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0 / 3.0}, {1, 0.1234567890123456789}});
  b.add_objective({{0, 1.0}, {1, 2.0}});
  const MaxMinInstance inst = b.build();
  std::stringstream ss;
  write_instance(ss, inst);
  const MaxMinInstance back = read_instance(ss);
  EXPECT_TRUE(same_instance(inst, back));  // %.17g survives doubles exactly
}

TEST(Io, ParsesCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "maxminlp 1\n"
      "\n"
      "agents 2   # trailing comment\n"
      "constraint 0 1.0 1 2.0\n"
      "objective 0 1.0\n"
      "objective 1 1.0\n");
  const MaxMinInstance inst = read_instance(in);
  EXPECT_EQ(inst.num_agents(), 2);
  EXPECT_EQ(inst.num_constraints(), 1);
  EXPECT_EQ(inst.num_objectives(), 2);
}

TEST(Io, RejectsMissingHeader) {
  std::istringstream in("agents 2\n");
  EXPECT_THROW(read_instance(in), CheckError);
}

TEST(Io, RejectsWrongVersion) {
  std::istringstream in("maxminlp 7\n");
  EXPECT_THROW(read_instance(in), CheckError);
}

TEST(Io, RejectsUnknownDirective) {
  std::istringstream in("maxminlp 1\nagents 1\nfrobnicate 1 2\n");
  EXPECT_THROW(read_instance(in), CheckError);
}

TEST(Io, RejectsDanglingAgentId) {
  std::istringstream in("maxminlp 1\nagents 2\nconstraint 0\n");
  EXPECT_THROW(read_instance(in), CheckError);
}

TEST(Io, SaveLoadFile) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 6}, 5);
  const std::string path = ::testing::TempDir() + "/locmm_io_test.mmlp";
  save_instance(path, inst);
  const MaxMinInstance back = load_instance(path);
  EXPECT_TRUE(same_instance(inst, back));
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW(load_instance("/nonexistent/nope.mmlp"), CheckError);
}

}  // namespace
}  // namespace locmm
