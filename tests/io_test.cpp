// Tests for the plain-text instance format: round-trips, comments, errors.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "lp/io.hpp"

namespace locmm {
namespace {

bool same_instance(const MaxMinInstance& a, const MaxMinInstance& b) {
  if (a.num_agents() != b.num_agents() ||
      a.num_constraints() != b.num_constraints() ||
      a.num_objectives() != b.num_objectives()) {
    return false;
  }
  for (ConstraintId i = 0; i < a.num_constraints(); ++i) {
    const auto ra = a.constraint_row(i);
    const auto rb = b.constraint_row(i);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) return false;
  }
  for (ObjectiveId k = 0; k < a.num_objectives(); ++k) {
    const auto ra = a.objective_row(k);
    const auto rb = b.objective_row(k);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) return false;
  }
  return true;
}

TEST(Io, RoundTripsRandomInstance) {
  const MaxMinInstance inst = random_general({.num_agents = 20}, 99);
  std::stringstream ss;
  write_instance(ss, inst);
  const MaxMinInstance back = read_instance(ss);
  EXPECT_TRUE(same_instance(inst, back));
}

TEST(Io, RoundTripsExactCoefficients) {
  InstanceBuilder b(2);
  b.add_constraint({{0, 1.0 / 3.0}, {1, 0.1234567890123456789}});
  b.add_objective({{0, 1.0}, {1, 2.0}});
  const MaxMinInstance inst = b.build();
  std::stringstream ss;
  write_instance(ss, inst);
  const MaxMinInstance back = read_instance(ss);
  EXPECT_TRUE(same_instance(inst, back));  // %.17g survives doubles exactly
}

TEST(Io, ParsesCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "maxminlp 1\n"
      "\n"
      "agents 2   # trailing comment\n"
      "constraint 0 1.0 1 2.0\n"
      "objective 0 1.0\n"
      "objective 1 1.0\n");
  const MaxMinInstance inst = read_instance(in);
  EXPECT_EQ(inst.num_agents(), 2);
  EXPECT_EQ(inst.num_constraints(), 1);
  EXPECT_EQ(inst.num_objectives(), 2);
}

TEST(Io, RejectsMissingHeader) {
  std::istringstream in("agents 2\n");
  EXPECT_THROW(read_instance(in), CheckError);
}

TEST(Io, RejectsWrongVersion) {
  std::istringstream in("maxminlp 7\n");
  EXPECT_THROW(read_instance(in), CheckError);
}

TEST(Io, RejectsUnknownDirective) {
  std::istringstream in("maxminlp 1\nagents 1\nfrobnicate 1 2\n");
  EXPECT_THROW(read_instance(in), CheckError);
}

TEST(Io, RejectsDanglingAgentId) {
  std::istringstream in("maxminlp 1\nagents 2\nconstraint 0\n");
  EXPECT_THROW(read_instance(in), CheckError);
}

// Table-driven hostile-input corpus: read_instance is the one place
// untrusted bytes enter the system, so EVERY malformed stream -- truncated,
// garbage tokens, overflowing numbers, allocation bombs, semantic junk --
// must throw the structured ParseError (with its line-numbered message),
// never crash, loop, or surface a raw internal CheckError.  The ASan/UBSan
// CI job runs this suite, so out-of-bounds parses would be caught even if
// they happened to "work".
TEST(Io, MalformedStreamCorpusThrowsParseError) {
  struct Case {
    const char* name;
    const char* input;
    ReadLimits limits = {};
  };
  const ReadLimits tiny{.max_agents = 8, .max_rows = 4, .max_row_entries = 3};
  const std::vector<Case> corpus = {
      {"empty stream", ""},
      {"whitespace only", "   \n\t\n"},
      {"comment only", "# nothing else\n"},
      {"truncated magic", "maxminlp"},
      {"magic with garbage version", "maxminlp banana\n"},
      {"magic with huge version", "maxminlp 99999999999999999999\n"},
      {"body before header", "agents 2\nmaxminlp 1\n"},
      {"row before header", "constraint 0 1.0 1 1.0\nmaxminlp 1\n"},
      {"agents without count", "maxminlp 1\nagents\n"},
      {"agents garbage", "maxminlp 1\nagents lots\n"},
      {"agents negative", "maxminlp 1\nagents -4\n"},
      {"agents overflowing int64", "maxminlp 1\nagents 99999999999999999999\n"},
      {"agents allocation bomb", "maxminlp 1\nagents 2000000000\n", tiny},
      {"unknown directive", "maxminlp 1\nagents 2\nfrobnicate 1 2\n"},
      {"empty constraint row", "maxminlp 1\nagents 2\nconstraint\n"},
      {"truncated row: id without coeff",
       "maxminlp 1\nagents 2\nconstraint 0 1.0 1\n"},
      {"garbage agent id", "maxminlp 1\nagents 2\nconstraint zero 1.0\n"},
      {"garbage coefficient", "maxminlp 1\nagents 2\nconstraint 0 fast\n"},
      {"agent id overflowing int32",
       "maxminlp 1\nagents 2\nconstraint 99999999999 1.0\n"},
      {"binary garbage", "maxminlp 1\nagents 2\nconstraint \x01\x02\xff\n"},
      {"row-count bomb",
       "maxminlp 1\nagents 2\n"
       "constraint 0 1.0\nconstraint 0 1.0\nconstraint 0 1.0\n"
       "constraint 0 1.0\nconstraint 0 1.0\n",
       tiny},
      {"row-width bomb",
       "maxminlp 1\nagents 8\nconstraint 0 1.0 1 1.0 2 1.0 3 1.0 4 1.0\n",
       tiny},
      // Semantic rejects: parse fine, but the instance is invalid -- the
      // builder's CheckError must surface re-branded as ParseError.
      {"agent id out of range",
       "maxminlp 1\nagents 2\nconstraint 0 1.0 7 1.0\nobjective 0 1.0\n"},
      {"negative coefficient",
       "maxminlp 1\nagents 1\nconstraint 0 -1.0\nobjective 0 1.0\n"},
      {"nan coefficient",
       "maxminlp 1\nagents 1\nconstraint 0 nan\nobjective 0 1.0\n"},
      {"duplicate agent in row",
       "maxminlp 1\nagents 2\nconstraint 0 1.0 0 2.0\nobjective 0 1.0\n"},
      {"agent without constraint",
       "maxminlp 1\nagents 2\nconstraint 0 1.0\nobjective 0 1.0 1 1.0\n"},
      {"agent without objective",
       "maxminlp 1\nagents 2\nconstraint 0 1.0 1 1.0\nobjective 0 1.0\n"},
  };
  for (const Case& c : corpus) {
    std::istringstream in(c.input);
    try {
      read_instance(in, c.limits);
      FAIL() << c.name << ": malformed stream was accepted";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("error"), std::string::npos)
          << c.name;
    } catch (const std::exception& e) {
      FAIL() << c.name << ": threw " << e.what()
             << " instead of a ParseError";
    }
  }
}

// ParseError derives from CheckError, so legacy catch sites keep working;
// the serving layer relies on the subtyping to map tenant-supplied streams
// to structured rejections.
TEST(Io, ParseErrorIsACheckError) {
  std::istringstream in("maxminlp 2\n");
  EXPECT_THROW(read_instance(in), ParseError);
  std::istringstream in2("maxminlp 2\n");
  EXPECT_THROW(read_instance(in2), CheckError);
}

TEST(Io, SaveLoadFile) {
  const MaxMinInstance inst = cycle_instance({.num_agents = 6}, 5);
  const std::string path = ::testing::TempDir() + "/locmm_io_test.mmlp";
  save_instance(path, inst);
  const MaxMinInstance back = load_instance(path);
  EXPECT_TRUE(same_instance(inst, back));
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW(load_instance("/nonexistent/nope.mmlp"), CheckError);
}

}  // namespace
}  // namespace locmm
