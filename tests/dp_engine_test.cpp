// Tests for the memoized bottom-up DP view engine (ViewEngine::kMemoizedDp):
//
//   * differential equivalence -- on cycle, grid, regular and random
//     instances the DP engine must reproduce the naive recursive oracle
//     (ViewEngine::kNaive, the literal transcription of recursions (5)-(14))
//     and engine C (solve_special_centralized) to 1e-9;
//   * complexity -- the instrumentation hook (TSearchOptions::stats) must
//     certify that the DP engine visits O(view_size * r) states per omega
//     sweep, i.e. the exponential re-expansion of the naive recursion is
//     actually gone, not just faster by a constant.
#include <gtest/gtest.h>

#include <vector>

#include "core/local_solver.hpp"
#include "core/view_solver.hpp"
#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"
#include "graph/view_tree.hpp"
#include "transform/transform.hpp"

namespace locmm {
namespace {

// Runs all three evaluators on a special-form instance and checks pairwise
// agreement to 1e-9 (the naive and DP engines follow bit-identical probe
// sequences, so they typically agree exactly; 1e-9 is the contract).
void expect_dp_matches(const MaxMinInstance& special, std::int32_t R) {
  ASSERT_TRUE(is_special_form(special));
  const SpecialFormInstance sf(special);
  const SpecialRunResult c = solve_special_centralized(sf, R);

  TSearchOptions naive_opt;
  naive_opt.engine = ViewEngine::kNaive;
  const std::vector<double> naive = solve_special_local_views(special, R,
                                                              naive_opt);
  TSearchOptions dp_opt;
  dp_opt.engine = ViewEngine::kMemoizedDp;
  const std::vector<double> dp = solve_special_local_views(special, R,
                                                           dp_opt);

  ASSERT_EQ(dp.size(), naive.size());
  ASSERT_EQ(dp.size(), c.x.size());
  for (std::size_t v = 0; v < dp.size(); ++v) {
    EXPECT_NEAR(dp[v], naive[v], 1e-9) << "agent " << v << " R=" << R;
    EXPECT_NEAR(dp[v], c.x[v], 1e-9) << "agent " << v << " R=" << R;
  }
}

// General instances go through the §4 pipeline first.
void expect_dp_matches_general(const MaxMinInstance& inst, std::int32_t R) {
  expect_dp_matches(to_special_form(inst).special, R);
}

TEST(DpEngine, CycleR2R3) {
  // The §4 pipeline raises the comm-graph degree of a cycle enough that the
  // R = 4 view (depth 29) blows past the ViewTree node budget; R = 4 is
  // covered on natively special-form instances (WheelR4) instead.
  for (std::uint64_t seed : {1, 2}) {
    const MaxMinInstance inst = cycle_instance(
        {.num_agents = 9, .coeff_lo = 0.5, .coeff_hi = 2.0}, seed);
    for (std::int32_t R : {2, 3}) expect_dp_matches_general(inst, R);
  }
}

TEST(DpEngine, GridR2R3) {
  const MaxMinInstance inst = grid_instance(
      {.rows = 4, .cols = 4, .coeff_lo = 0.5, .coeff_hi = 2.0}, 3);
  for (std::int32_t R : {2, 3}) expect_dp_matches_general(inst, R);
}

TEST(DpEngine, RegularR2R3) {
  // 3-regular configuration-model instances: every objective has exactly
  // three agents, every agent exactly two degree-2 constraints -- the
  // branching regime where the naive engine's cost explodes.
  for (std::uint64_t seed : {5, 6}) {
    const MaxMinInstance inst = regular_special_instance(
        {.num_objectives = 4, .delta_k = 3, .constraints_per_agent = 2,
         .coeff_lo = 0.5, .coeff_hi = 2.0},
        seed);
    expect_dp_matches(inst, 2);
    expect_dp_matches(inst, 3);
  }
}

TEST(DpEngine, RandomSpecialR2R3) {
  RandomSpecialParams p;
  p.num_agents = 12;
  p.delta_k = 3;
  for (std::uint64_t seed : {11, 12, 13}) {
    expect_dp_matches(random_special_form(p, seed), 2);
  }
  p.num_agents = 10;
  p.delta_k = 2;
  p.extra_constraints = 0.3;
  expect_dp_matches(random_special_form(p, 14), 3);
}

TEST(DpEngine, RandomGeneralViaPipelineR2) {
  for (std::uint64_t seed : {21, 22}) {
    const MaxMinInstance inst = random_general(
        {.num_agents = 10, .delta_i = 3, .delta_k = 3}, seed);
    expect_dp_matches_general(inst, 2);
  }
}

TEST(DpEngine, WheelR4) {
  // Width-1 wheels keep views linear in D, so R = 4 stays cheap for the
  // naive oracle too.
  const MaxMinInstance inst = layered_instance(
      {.delta_k = 2, .layers = 8, .width = 1, .twist = 0});
  expect_dp_matches(inst, 4);
}

TEST(DpEngine, TRootMatchesNaive) {
  const MaxMinInstance inst = regular_special_instance(
      {.num_objectives = 4, .delta_k = 3, .constraints_per_agent = 2,
       .coeff_lo = 0.5, .coeff_hi = 2.0},
      7);
  const CommGraph g(inst);
  for (std::int32_t r : {0, 1, 2}) {
    const std::int32_t D = 4 * r + 3;
    for (AgentId v = 0; v < inst.num_agents(); ++v) {
      const ViewTree view = ViewTree::build(g, g.agent_node(v), D);
      TSearchOptions naive_opt;
      naive_opt.engine = ViewEngine::kNaive;
      const double tn = t_root_from_view(view, r, naive_opt);
      const double td = t_root_from_view(view, r, {});
      EXPECT_NEAR(td, tn, 1e-9) << "agent " << v << " r=" << r;
    }
  }
}

TEST(DpEngine, ScratchReuseAcrossHeterogeneousViews) {
  // One scratch object across views of different instances and radii: the
  // reset path must fully clear per-evaluation state.
  ViewEvalScratch scratch;
  for (std::uint64_t seed : {31, 32, 33}) {
    const MaxMinInstance inst = regular_special_instance(
        {.num_objectives = 3, .delta_k = 3, .constraints_per_agent = 2,
         .coeff_lo = 0.5, .coeff_hi = 2.0},
        seed);
    const CommGraph g(inst);
    for (std::int32_t R : {2, 3}) {
      const std::int32_t D = view_radius(R);
      for (AgentId v = 0; v < inst.num_agents(); v += 5) {
        const ViewTree view = ViewTree::build(g, g.agent_node(v), D);
        TSearchOptions naive_opt;
        naive_opt.engine = ViewEngine::kNaive;
        const double xn = solve_agent_from_view(view, R, naive_opt);
        const double xd = solve_agent_from_view(view, R, {}, &scratch);
        EXPECT_NEAR(xd, xn, 1e-9) << "agent " << v << " R=" << R;
      }
    }
  }
}

TEST(DpEngine, VisitedStatesLinearInViewSizeTimesR) {
  // The complexity certificate: per omega sweep the DP engine evaluates
  // each (agent-node, depth, +/-) state at most once, so across a whole
  // evaluation   f_evals <= omega_sweeps * 2 * view_size * (r+1)
  // and          g_evals <= 2 * view_size * (r+1).
  // The naive engine violates the per-evaluation bound by orders of
  // magnitude on branching instances (asserted below), which is exactly
  // the exponential-vs-polynomial separation this PR removes.
  const MaxMinInstance inst = regular_special_instance(
      {.num_objectives = 4, .delta_k = 3, .constraints_per_agent = 2,
       .coeff_lo = 0.5, .coeff_hi = 2.0},
      42);
  const std::int32_t R = 3;
  const std::int32_t r = R - 2;
  const CommGraph g(inst);
  const ViewTree view = ViewTree::build(g, g.agent_node(0), view_radius(R));
  const auto view_size = static_cast<std::int64_t>(view.size());

  TSearchStats dp_stats;
  TSearchOptions dp_opt;
  dp_opt.stats = &dp_stats;
  const double xd = solve_agent_from_view(view, R, dp_opt);

  const std::int64_t sweeps = dp_stats.omega_sweeps.load();
  ASSERT_GT(sweeps, 0);
  // Each sweep is one bottom-up pass over (a subset of) the marked cone.
  EXPECT_LE(dp_stats.f_evals.load(), sweeps * 2 * view_size * (r + 1));
  EXPECT_LE(dp_stats.g_evals.load(), 2 * view_size * (r + 1));
  // Batching: searches whose next probe coincides share one sweep, so a
  // whole evaluation runs far fewer sweeps than condition checks.
  EXPECT_LT(sweeps, dp_stats.t_checks.load());

  TSearchStats naive_stats;
  TSearchOptions naive_opt;
  naive_opt.engine = ViewEngine::kNaive;
  naive_opt.stats = &naive_stats;
  const double xn = solve_agent_from_view(view, R, naive_opt);
  EXPECT_NEAR(xd, xn, 1e-9);
  // The oracle re-expands the recursion per probe and per agent: it must
  // do strictly more state evaluations than the memoized engine.
  EXPECT_GT(naive_stats.f_evals.load(), 4 * dp_stats.f_evals.load());
}

}  // namespace
}  // namespace locmm
