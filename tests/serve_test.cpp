// Tests for the serving layer (src/serve): the ServeStatus error taxonomy
// (tenant-attributable failures come back as structured rejections, never
// as CheckError throws), exact admission against the projected instance,
// bounded-queue backpressure with coefficient- and structural-batch
// coalescing,
// deadline-degraded serving with idle repair, and -- the headline -- a
// multi-tenant chaos workload (concurrent valid + malformed +
// deadline-pressured streams) whose committed state must stay bitwise
// identical to a scratch solver fed only the accepted batches.  The
// concurrent suites are the repo's first real multi-writer workload; the
// CI TSan job runs the promoted chaos fixture via the slow_serve_chaos
// ctest entry.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/incremental_solver.hpp"
#include "gen/generators.hpp"
#include "lp/delta.hpp"
#include "serve/solver_service.hpp"
#include "support/prng.hpp"

namespace locmm {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

MaxMinInstance wheel_instance(std::int32_t layers) {
  return layered_instance(
      {.delta_k = 2, .layers = layers, .width = 1, .twist = 0});
}

MaxMinInstance grid_family(std::int32_t cols) {
  return special_grid_instance({.rows = 4, .cols = cols}, 2);
}

// A valid special-form-preserving delta against `sf` (mirrors the
// incremental_test generator: coefficient bumps, constraint rewires,
// objective moves).
InstanceDelta valid_delta(const SpecialFormInstance& sf, Rng& rng,
                          bool allow_structural) {
  const MaxMinInstance& inst = sf.instance();
  InstanceDelta delta;
  const std::uint64_t kind = rng.below(allow_structural ? 3 : 1);
  if (kind == 1) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto i = static_cast<ConstraintId>(
          rng.below(static_cast<std::uint64_t>(inst.num_constraints())));
      const auto r = inst.constraint_row(i);
      const AgentId lose = r[rng.below(2)].agent;
      if (inst.agent_constraints(lose).size() < 2) continue;
      const auto gain = static_cast<AgentId>(
          rng.below(static_cast<std::uint64_t>(inst.num_agents())));
      if (gain == r[0].agent || gain == r[1].agent) continue;
      delta.remove_from_constraint(i, lose);
      delta.add_to_constraint(i, gain, rng.uniform(0.5, 2.0));
      return delta;
    }
  } else if (kind == 2) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto k = static_cast<ObjectiveId>(
          rng.below(static_cast<std::uint64_t>(inst.num_objectives())));
      const auto r = inst.objective_row(k);
      if (r.size() < 3) continue;
      const AgentId v = r[rng.below(r.size())].agent;
      const auto k2 = static_cast<ObjectiveId>(
          rng.below(static_cast<std::uint64_t>(inst.num_objectives())));
      if (k2 == k) continue;
      bool already = false;
      for (const Entry& e : inst.objective_row(k2)) already |= (e.agent == v);
      if (already) continue;
      delta.remove_from_objective(k, v);
      delta.add_to_objective(k2, v, 1.0);
      return delta;
    }
  }
  const int edits = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < edits; ++e) {
    const auto v = static_cast<AgentId>(
        rng.below(static_cast<std::uint64_t>(inst.num_agents())));
    const auto arcs = sf.arcs(v);
    const auto& arc = arcs[rng.below(arcs.size())];
    delta.set_constraint_coeff(arc.id, v, rng.uniform(0.25, 4.0));
  }
  return delta;
}

// One malformed delta per call, cycling through every rejection shape the
// admission dry run knows.
InstanceDelta malformed_delta(const MaxMinInstance& inst, std::uint64_t n) {
  InstanceDelta delta;
  switch (n % 8) {
    case 0:  // out-of-range constraint row
      delta.set_constraint_coeff(inst.num_constraints() + 7, 0, 1.0);
      break;
    case 1:  // out-of-range agent
      delta.set_constraint_coeff(0, inst.num_agents() + 3, 1.0);
      break;
    case 2:  // non-positive coefficient
      delta.set_constraint_coeff(0, inst.constraint_row(0)[0].agent, -2.0);
      break;
    case 3:  // NaN coefficient
      delta.set_constraint_coeff(0, inst.constraint_row(0)[0].agent,
                                 std::numeric_limits<double>::quiet_NaN());
      break;
    case 4:  // remove of an absent entry
      delta.remove_from_constraint(
          0, inst.constraint_row(1)[0].agent == inst.constraint_row(0)[0].agent
                 ? inst.num_agents() - 1
                 : inst.constraint_row(1)[0].agent);
      // ensure the agent really is absent from row 0
      if (!delta.removes.empty()) {
        const AgentId v = delta.removes[0].agent;
        for (const Entry& e : inst.constraint_row(0)) {
          if (e.agent == v) {  // unlucky: make it out-of-range instead
            delta.removes[0].agent = inst.num_agents() + 1;
          }
        }
      }
      break;
    case 5:  // duplicate add (already a member)
      delta.add_to_constraint(0, inst.constraint_row(0)[0].agent, 1.0);
      break;
    case 6:  // empties a constraint row (and breaks |Vi| = 2)
      delta.remove_from_constraint(0, inst.constraint_row(0)[0].agent);
      delta.remove_from_constraint(0, inst.constraint_row(0)[1].agent);
      break;
    default:  // objective coefficient != 1 (special-form pin)
      delta.set_objective_coeff(0, inst.objective_row(0)[0].agent, 2.5);
      break;
  }
  return delta;
}

std::vector<double> committed_x(const SolverService& svc,
                                const std::string& name, std::int32_t n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (AgentId v = 0; v < n; ++v) {
    QueryResult q;
    EXPECT_TRUE(svc.query_x(name, v, &q).ok());
    x[static_cast<std::size_t>(v)] = q.value;
  }
  return x;
}

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

TEST(ServeStatus, CodesHaveNames) {
  EXPECT_STREQ(to_string(ServeCode::kOk), "ok");
  EXPECT_STREQ(to_string(ServeCode::kMalformedDelta), "malformed-delta");
  EXPECT_STREQ(to_string(ServeCode::kQueueFull), "queue-full");
  EXPECT_STREQ(to_string(ServeCode::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(to_string(ServeCode::kInternal), "internal-error");
}

TEST(SolverService, UnknownTenantIsAStatusEverywhere) {
  SolverService svc;
  QueryResult q;
  TenantStats st;
  EXPECT_EQ(svc.submit("ghost", InstanceDelta{}).code,
            ServeCode::kUnknownTenant);
  EXPECT_EQ(svc.drain("ghost").code, ServeCode::kUnknownTenant);
  EXPECT_EQ(svc.query_x("ghost", 0, &q).code, ServeCode::kUnknownTenant);
  EXPECT_EQ(svc.utility("ghost", &q).code, ServeCode::kUnknownTenant);
  EXPECT_EQ(svc.stats("ghost", &st).code, ServeCode::kUnknownTenant);
  EXPECT_EQ(svc.drop_tenant("ghost").code, ServeCode::kUnknownTenant);
}

TEST(SolverService, CreateRejectsBadArgumentsAsStatuses) {
  SolverService svc;
  const MaxMinInstance wheel = wheel_instance(12);
  EXPECT_EQ(svc.create_tenant("", wheel).code, ServeCode::kInvalidArgument);
  ASSERT_TRUE(svc.create_tenant("a", wheel).ok());
  EXPECT_EQ(svc.create_tenant("a", wheel).code, ServeCode::kTenantExists);

  // A non-special-form instance must come back as a status, not a throw.
  const MaxMinInstance general =
      cycle_instance({.num_agents = 12, .coeff_lo = 0.5, .coeff_hi = 2.0}, 5);
  EXPECT_EQ(svc.create_tenant("bad", general).code,
            ServeCode::kInvalidArgument);
  EXPECT_EQ(svc.tenant_names(), std::vector<std::string>{"a"});
  EXPECT_TRUE(svc.drop_tenant("a").ok());
}

TEST(SolverService, QueryArgumentValidation) {
  SolverService svc;
  ASSERT_TRUE(svc.create_tenant("t", wheel_instance(10)).ok());
  QueryResult q;
  EXPECT_EQ(svc.query_x("t", -1, &q).code, ServeCode::kInvalidArgument);
  EXPECT_EQ(svc.query_x("t", 1 << 20, &q).code, ServeCode::kInvalidArgument);
  EXPECT_TRUE(svc.query_x("t", 0, &q).ok());
  EXPECT_FALSE(q.stale);
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

TEST(SolverService, MalformedBatchesRejectedWithCommittedStateUntouched) {
  SolverService svc;
  const MaxMinInstance grid = grid_family(8);
  ASSERT_TRUE(svc.create_tenant("t", grid).ok());
  const std::vector<double> before = committed_x(svc, "t", grid.num_agents());

  for (std::uint64_t shape = 0; shape < 16; ++shape) {
    const ServeStatus s = svc.submit("t", malformed_delta(grid, shape));
    EXPECT_EQ(s.code, ServeCode::kMalformedDelta) << "shape " << shape;
    EXPECT_FALSE(s.message.empty());
  }
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.rejected_malformed, 16);
  EXPECT_EQ(st.accepted, 0);
  EXPECT_EQ(st.queued_batches, 0);

  // Nothing queued, nothing mutated: every committed value is bit-equal.
  EXPECT_TRUE(svc.drain("t").ok());
  const std::vector<double> after = committed_x(svc, "t", grid.num_agents());
  for (std::size_t v = 0; v < before.size(); ++v) {
    EXPECT_TRUE(same_bits(before[v], after[v])) << "agent " << v;
  }
}

TEST(SolverService, AdmissionValidatesAgainstQueuedWork) {
  SolverService svc;
  const MaxMinInstance wheel = grid_family(8);
  ASSERT_TRUE(svc.create_tenant("t", wheel).ok());

  // Batch 1 (queued, not drained): rewire a constraint row away from `lose`
  // -- an agent that keeps another constraint after the removal.
  ConstraintId row = -1;
  AgentId lose = -1, gain = -1;
  for (ConstraintId i = 0; i < wheel.num_constraints() && row < 0; ++i) {
    for (const Entry& e : wheel.constraint_row(i)) {
      if (wheel.agent_constraints(e.agent).size() >= 2) {
        row = i;
        lose = e.agent;
        break;
      }
    }
  }
  ASSERT_GE(row, 0);
  const auto r0 = wheel.constraint_row(row);
  for (AgentId v = 0; v < wheel.num_agents() && gain < 0; ++v) {
    if (v != r0[0].agent && v != r0[1].agent) gain = v;
  }
  InstanceDelta rewire;
  rewire.remove_from_constraint(row, lose).add_to_constraint(row, gain, 1.5);
  ASSERT_TRUE(svc.submit("t", rewire).ok());

  // A second batch editing the (committed-state) membership that batch 1
  // removes must be rejected NOW -- the projection already dropped it.
  InstanceDelta stale_edit;
  stale_edit.set_constraint_coeff(row, lose, 2.0);
  EXPECT_EQ(svc.submit("t", stale_edit).code, ServeCode::kMalformedDelta);

  // And a batch editing the membership batch 1 CREATED is admissible even
  // though the committed instance has never seen it.
  InstanceDelta new_edit;
  new_edit.set_constraint_coeff(row, gain, 0.75);
  EXPECT_TRUE(svc.submit("t", new_edit).ok());
  EXPECT_TRUE(svc.drain("t").ok());

  // Committed state now matches a scratch solver fed the same two batches.
  IncrementalSolver oracle(wheel);
  oracle.apply(rewire);
  oracle.apply(new_edit);
  const std::vector<double> got = committed_x(svc, "t", wheel.num_agents());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_TRUE(same_bits(got[v], oracle.x()[v])) << "agent " << v;
  }
}

TEST(SolverService, OversizedBatchRejected) {
  SolverService svc;
  TenantOptions opt;
  opt.limits.max_batch_edits = 3;
  const MaxMinInstance grid = grid_family(6);
  ASSERT_TRUE(svc.create_tenant("t", grid, opt).ok());
  InstanceDelta big;
  for (AgentId v = 0; v < 4; ++v) {
    const auto inc = grid.agent_constraints(v);
    big.set_constraint_coeff(inc[0].row, v, 1.25);
  }
  EXPECT_EQ(svc.submit("t", big).code, ServeCode::kOversizedBatch);
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.rejected_oversized, 1);
}

// ---------------------------------------------------------------------------
// Backpressure and coalescing
// ---------------------------------------------------------------------------

TEST(SolverService, BoundedQueueShedsWhenFull) {
  SolverService svc;
  TenantOptions opt;
  opt.limits.max_queued_batches = 2;
  const MaxMinInstance wheel = wheel_instance(20);
  ASSERT_TRUE(svc.create_tenant("t", wheel, opt).ok());

  // Structural batches never coalesce, so each occupies a queue slot.
  Rng rng(7);
  int accepted = 0, shed = 0;
  for (int i = 0; i < 5; ++i) {
    InstanceDelta d;
    // Rewire a distinct constraint each time (structural, disjoint rows).
    const auto r = svc.tenant_names();  // keep the service awake
    (void)r;
    const ConstraintId row = static_cast<ConstraintId>(i);
    const auto cr = wheel.constraint_row(row);
    d.set_constraint_coeff(row, cr[0].agent, 1.0 + 0.125 * (i + 1));
    d.remove_from_constraint(row, cr[1].agent);
    d.add_to_constraint(row, cr[1].agent, 2.0);
    const ServeStatus s = svc.submit("t", d);
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code, ServeCode::kQueueFull);
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(shed, 3);
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.shed_queue_full, 3);
  EXPECT_EQ(st.queued_batches, 2);

  EXPECT_TRUE(svc.drain("t").ok());
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.queued_batches, 0);
  EXPECT_EQ(st.committed_epoch, 2u);

  // Capacity is back after the drain.
  InstanceDelta d;
  d.set_constraint_coeff(0, wheel.constraint_row(0)[0].agent, 3.0);
  EXPECT_TRUE(svc.submit("t", d).ok());
}

TEST(SolverService, OverlappingCoeffBatchesCoalesce) {
  SolverService svc;
  const MaxMinInstance grid = grid_family(10);
  ASSERT_TRUE(svc.create_tenant("t", grid).ok());

  const auto inc0 = grid.agent_constraints(0);
  InstanceDelta a, b;
  a.set_constraint_coeff(inc0[0].row, 0, 1.5);
  b.set_constraint_coeff(inc0[0].row, 0, 2.5);   // overwrites a's edit
  b.set_constraint_coeff(inc0[1].row, 0, 0.75);  // new entry, same agent

  ASSERT_TRUE(svc.submit("t", a).ok());
  ASSERT_TRUE(svc.submit("t", b).ok());
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.coalesced, 1);
  EXPECT_EQ(st.accepted, 2);
  EXPECT_EQ(st.queued_batches, 1);  // one merged batch, one re-solve

  EXPECT_TRUE(svc.drain("t").ok());
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.committed_epoch, 1u);

  // Merged application == sequential application, bit for bit.
  IncrementalSolver oracle(grid);
  oracle.apply(a);
  oracle.apply(b);
  const std::vector<double> got = committed_x(svc, "t", grid.num_agents());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_TRUE(same_bits(got[v], oracle.x()[v])) << "agent " << v;
  }
}

TEST(SolverService, CoalescingHonoursDuplicateEditsInOneBatch) {
  // A batch may hit the same (row, agent) entry twice; edits apply in
  // vector order, so the batch's own later duplicate must win over a
  // coalesced overwrite of the earlier one (regression: the merge used to
  // patch the FIRST occurrence, which the tail's own duplicate shadowed).
  SolverService svc;
  const MaxMinInstance grid = grid_family(10);
  ASSERT_TRUE(svc.create_tenant("t", grid).ok());

  const ConstraintId row = grid.agent_constraints(0)[0].row;
  InstanceDelta a, b;
  a.set_constraint_coeff(row, 0, 1.5);
  a.set_constraint_coeff(row, 0, 2.0);  // duplicate key, applied second
  b.set_constraint_coeff(row, 0, 3.0);  // must win over BOTH of a's edits

  ASSERT_TRUE(svc.submit("t", a).ok());
  ASSERT_TRUE(svc.submit("t", b).ok());
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.coalesced, 1);
  EXPECT_TRUE(svc.drain("t").ok());

  IncrementalSolver oracle(grid);
  oracle.apply(a);
  oracle.apply(b);
  const std::vector<double> got = committed_x(svc, "t", grid.num_agents());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_TRUE(same_bits(got[v], oracle.x()[v])) << "agent " << v;
  }
}

TEST(SolverService, OverlappingStructuralBatchesCoalesce) {
  // Two structural batches on the same |Vi| = 2 row: a rewires {p, q} ->
  // {q, g}; b rewires {q, g} -> {g, p}.  b removes q -- which a neither
  // added nor coefficient-edited -- so the merge is order-equivalent and
  // must coalesce into ONE queued batch whose commit is bitwise what the
  // two would produce in sequence (including the remove-then-re-add of p).
  SolverService svc;
  const MaxMinInstance grid = grid_family(10);
  ASSERT_TRUE(svc.create_tenant("t", grid).ok());

  const ConstraintId i = 0;
  const AgentId p = grid.constraint_row(i)[0].agent;
  const AgentId q = grid.constraint_row(i)[1].agent;
  AgentId g = -1;
  for (AgentId v = 0; v < grid.num_agents() && g < 0; ++v) {
    if (v != p && v != q) g = v;
  }
  ASSERT_GE(g, 0);
  ASSERT_GE(grid.agent_constraints(p).size(), 2u);
  ASSERT_GE(grid.agent_constraints(q).size(), 2u);

  InstanceDelta a, b;
  a.remove_from_constraint(i, p).add_to_constraint(i, g, 1.5);
  b.remove_from_constraint(i, q).add_to_constraint(i, p, 0.75);

  ASSERT_TRUE(svc.submit("t", a).ok());
  ASSERT_TRUE(svc.submit("t", b).ok());
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.coalesced, 1);
  EXPECT_EQ(st.accepted, 2);
  EXPECT_EQ(st.queued_batches, 1);  // one merged batch, one re-solve

  EXPECT_TRUE(svc.drain("t").ok());
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.committed_epoch, 1u);

  IncrementalSolver oracle(grid);
  oracle.apply(a);
  oracle.apply(b);
  const std::vector<double> got = committed_x(svc, "t", grid.num_agents());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_TRUE(same_bits(got[v], oracle.x()[v])) << "agent " << v;
  }
}

TEST(SolverService, StructuralCoalesceRefusesUnsafeMerges) {
  // b removes the very entry a added: concatenating would hoist the remove
  // ahead of the add and break the batch.  The service must queue b
  // separately -- and still commit both to the exact sequential state.
  SolverService svc;
  const MaxMinInstance grid = grid_family(10);
  ASSERT_TRUE(svc.create_tenant("t", grid).ok());

  const ConstraintId i = 0;
  const AgentId p = grid.constraint_row(i)[0].agent;
  AgentId g = -1;
  for (AgentId v = 0; v < grid.num_agents() && g < 0; ++v) {
    if (v != p && v != grid.constraint_row(i)[1].agent) g = v;
  }
  ASSERT_GE(g, 0);

  InstanceDelta a, b;
  a.remove_from_constraint(i, p).add_to_constraint(i, g, 1.5);
  b.remove_from_constraint(i, g).add_to_constraint(i, p, 0.75);

  ASSERT_TRUE(svc.submit("t", a).ok());
  ASSERT_TRUE(svc.submit("t", b).ok());
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.coalesced, 0);
  EXPECT_EQ(st.queued_batches, 2);

  EXPECT_TRUE(svc.drain("t").ok());
  IncrementalSolver oracle(grid);
  oracle.apply(a);
  oracle.apply(b);
  const std::vector<double> got = committed_x(svc, "t", grid.num_agents());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_TRUE(same_bits(got[v], oracle.x()[v])) << "agent " << v;
  }
}

TEST(SolverService, StructuralCoalesceHonoursBatchSizeLimit) {
  // A merge that would exceed max_batch_edits queues separately instead:
  // coalescing must never manufacture a batch submit() would have rejected.
  SolverService svc;
  const MaxMinInstance grid = grid_family(10);
  TenantOptions opt;
  opt.limits.max_batch_edits = 3;
  ASSERT_TRUE(svc.create_tenant("t", grid, opt).ok());

  const ConstraintId i = 0;
  const AgentId p = grid.constraint_row(i)[0].agent;
  const AgentId q = grid.constraint_row(i)[1].agent;

  InstanceDelta a, b;
  a.remove_from_constraint(i, p).add_to_constraint(i, p, 1.5);
  b.remove_from_constraint(i, q).add_to_constraint(i, q, 0.75);

  ASSERT_TRUE(svc.submit("t", a).ok());
  ASSERT_TRUE(svc.submit("t", b).ok());  // 2 + 2 > 3: no merge
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.coalesced, 0);
  EXPECT_EQ(st.queued_batches, 2);
}

TEST(SolverService, DisjointCoeffBatchesDoNotCoalesce) {
  SolverService svc;
  const MaxMinInstance grid = grid_family(24);
  ASSERT_TRUE(svc.create_tenant("t", grid).ok());
  // Agents 0 and n-1 sit in distant parts of the torus: disjoint rows.
  const AgentId far = grid.num_agents() / 2 + 1;
  InstanceDelta a, b;
  a.set_constraint_coeff(grid.agent_constraints(0)[0].row, 0, 1.5);
  b.set_constraint_coeff(grid.agent_constraints(far)[0].row, far, 2.5);
  ASSERT_TRUE(svc.submit("t", a).ok());
  ASSERT_TRUE(svc.submit("t", b).ok());
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.coalesced, 0);
  EXPECT_EQ(st.queued_batches, 2);
}

// ---------------------------------------------------------------------------
// Deadlines: degraded serving + idle repair
// ---------------------------------------------------------------------------

TEST(SolverService, DeadlineDegradesThenIdleRepairs) {
  SolverService svc;
  TenantOptions opt;
  // A budget this small expires at the first cooperative probe: every
  // budgeted drain abandons transactionally.
  opt.limits.apply_budget_us = 1e-3;
  const MaxMinInstance wheel = wheel_instance(24);
  ASSERT_TRUE(svc.create_tenant("t", wheel, opt).ok());
  const std::vector<double> before = committed_x(svc, "t", wheel.num_agents());

  InstanceDelta d;
  d.set_constraint_coeff(0, wheel.constraint_row(0)[0].agent, 2.5);
  ASSERT_TRUE(svc.submit("t", d).ok());

  const ServeStatus s = svc.drain("t");
  EXPECT_EQ(s.code, ServeCode::kDeadlineExceeded);
  TenantStats st;
  ASSERT_TRUE(svc.stats("t", &st).ok());
  EXPECT_EQ(st.deadline_aborts, 1);
  EXPECT_EQ(st.queued_batches, 1);  // the batch survived the abandonment
  EXPECT_EQ(st.committed_epoch, 0u);

  // Queries keep serving the last committed epoch, flagged stale, bitwise
  // identical to the pre-submit state (the abandonment rolled back).
  QueryResult q;
  ASSERT_TRUE(svc.query_x("t", 0, &q).ok());
  EXPECT_TRUE(q.stale);
  const std::vector<double> during = committed_x(svc, "t", wheel.num_agents());
  for (std::size_t v = 0; v < before.size(); ++v) {
    ASSERT_TRUE(same_bits(before[v], during[v])) << "agent " << v;
  }

  // The idle cycle drains without budgets and repairs to the exact state a
  // scratch solver reaches.
  EXPECT_EQ(svc.repair_idle(), 1);
  ASSERT_TRUE(svc.query_x("t", 0, &q).ok());
  EXPECT_FALSE(q.stale);
  EXPECT_EQ(q.epoch, 1u);
  IncrementalSolver oracle(wheel);
  oracle.apply(d);
  const std::vector<double> after = committed_x(svc, "t", wheel.num_agents());
  for (std::size_t v = 0; v < after.size(); ++v) {
    ASSERT_TRUE(same_bits(after[v], oracle.x()[v])) << "agent " << v;
  }
}

// ---------------------------------------------------------------------------
// Chaos: concurrent multi-tenant streams vs scratch oracles
// ---------------------------------------------------------------------------

struct ChaosConfig {
  int tenants = 4;
  int steps = 12;          // batches attempted per tenant
  bool structural = true;  // mix in rewires / objective moves
  bool deadline_pressure = true;
};

// Each worker thread owns one tenant and drives a randomized stream of
// valid, malformed and (optionally) deadline-pressured batches, interleaved
// with queries; a per-tenant scratch IncrementalSolver replays exactly the
// accepted batches as the oracle.  After the storm: repair, then every
// committed value must be bit-identical to the oracle.  No exception may
// escape the service boundary (gtest would fail the thread).
void run_chaos(const ChaosConfig& cfg) {
  SolverService svc;
  std::vector<std::string> names;
  std::vector<MaxMinInstance> bases;
  for (int t = 0; t < cfg.tenants; ++t) {
    names.push_back("tenant-" + std::to_string(t));
    bases.push_back(t % 2 == 0 ? wheel_instance(16 + 2 * t)
                               : grid_family(6 + t));
    TenantOptions opt;
    opt.limits.max_queued_batches = 4;
    if (cfg.deadline_pressure && t % 2 == 1) {
      opt.limits.apply_budget_us = 1e-3;  // every budgeted drain abandons
    }
    ASSERT_TRUE(svc.create_tenant(names.back(), bases.back(), opt).ok());
  }

  std::vector<std::vector<InstanceDelta>> accepted(
      static_cast<std::size_t>(cfg.tenants));
  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.tenants; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + 17 * static_cast<std::uint64_t>(t));
      // Tenant-local mirror of the projected instance, so the generator
      // can produce valid deltas against queued-but-uncommitted state.
      SpecialFormInstance mirror(bases[static_cast<std::size_t>(t)]);
      for (int step = 0; step < cfg.steps; ++step) {
        const std::uint64_t roll = rng.below(10);
        if (roll < 3) {  // malformed traffic
          const ServeStatus s = svc.submit(
              names[static_cast<std::size_t>(t)],
              malformed_delta(mirror.instance(), rng.below(100)));
          EXPECT_EQ(s.code, ServeCode::kMalformedDelta);
        } else {
          const InstanceDelta d = valid_delta(mirror, rng, cfg.structural);
          const ServeStatus s =
              svc.submit(names[static_cast<std::size_t>(t)], d);
          if (s.ok()) {
            mirror.apply(d);
            accepted[static_cast<std::size_t>(t)].push_back(d);
          } else {
            EXPECT_EQ(s.code, ServeCode::kQueueFull);
          }
        }
        if (roll % 2 == 0) {
          const ServeStatus s = svc.drain(names[static_cast<std::size_t>(t)]);
          EXPECT_TRUE(s.ok() || s.code == ServeCode::kDeadlineExceeded)
              << s.message;
        }
        QueryResult q;
        EXPECT_TRUE(
            svc.query_x(names[static_cast<std::size_t>(t)], 0, &q).ok());
        // Cross-tenant probe: reads on a neighbour while it mutates.
        QueryResult other;
        EXPECT_TRUE(svc.utility(names[static_cast<std::size_t>(
                                    (t + 1) % cfg.tenants)],
                                &other)
                        .ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Repair every queue (deadline-pressured tenants still hold batches),
  // then compare against scratch solvers fed the accepted streams.
  svc.repair_idle();
  for (int t = 0; t < cfg.tenants; ++t) {
    TenantStats st;
    ASSERT_TRUE(svc.stats(names[static_cast<std::size_t>(t)], &st).ok());
    EXPECT_EQ(st.queued_batches, 0) << names[static_cast<std::size_t>(t)];
    EXPECT_EQ(st.internal_errors, 0) << names[static_cast<std::size_t>(t)];

    IncrementalSolver oracle(bases[static_cast<std::size_t>(t)]);
    for (const InstanceDelta& d : accepted[static_cast<std::size_t>(t)]) {
      oracle.apply(d);
    }
    const std::vector<double> got =
        committed_x(svc, names[static_cast<std::size_t>(t)],
                    bases[static_cast<std::size_t>(t)].num_agents());
    for (std::size_t v = 0; v < got.size(); ++v) {
      ASSERT_TRUE(same_bits(got[v], oracle.x()[v]))
          << names[static_cast<std::size_t>(t)] << " agent " << v;
    }
    QueryResult q;
    ASSERT_TRUE(svc.query_x(names[static_cast<std::size_t>(t)], 0, &q).ok());
    EXPECT_FALSE(q.stale);
  }
}

// Tier-1 smoke: small enough for the plain ctest run (and still concurrent,
// so ordinary CI exercises the locking on every push).
TEST(ServeChaos, SmokeConcurrentTenants) {
  run_chaos({.tenants = 3, .steps = 6});
}

// Same-tenant multi-writer: commuting coefficient edits on well-separated
// rows from several threads, with concurrent queries and drains.  The
// service serializes per tenant; the test asserts the end state matches
// SOME serialization (here: edits commute bitwise because each thread owns
// a disjoint entry set and coefficient application is per-entry).
TEST(ServeChaos, SameTenantCommutingWriters) {
  SolverService svc;
  const MaxMinInstance grid = grid_family(24);
  TenantOptions opt;
  opt.limits.max_queued_batches = 64;
  ASSERT_TRUE(svc.create_tenant("shared", grid, opt).ok());

  constexpr int kThreads = 4;
  constexpr int kEditsEach = 5;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kEditsEach; ++i) {
        // Thread w edits only agent w's first constraint: disjoint keys.
        InstanceDelta d;
        d.set_constraint_coeff(grid.agent_constraints(w)[0].row, w,
                               1.0 + 0.0625 * (w + 1) + 0.001 * i);
        ASSERT_TRUE(svc.submit("shared", d).ok());
        QueryResult q;
        ASSERT_TRUE(svc.query_x("shared", w, &q).ok());
        if (i % 2 == 0) {
          const ServeStatus s = svc.drain("shared");
          ASSERT_TRUE(s.ok()) << s.message;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  svc.repair_idle();

  // Final coefficients are the per-thread last writes regardless of the
  // interleaving; the committed solution must equal a scratch solve of the
  // final instance.
  InstanceDelta final_delta;
  for (int w = 0; w < kThreads; ++w) {
    final_delta.set_constraint_coeff(
        grid.agent_constraints(w)[0].row, w,
        1.0 + 0.0625 * (w + 1) + 0.001 * (kEditsEach - 1));
  }
  IncrementalSolver oracle(grid);
  oracle.apply(final_delta);
  const std::vector<double> got =
      committed_x(svc, "shared", grid.num_agents());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_TRUE(same_bits(got[v], oracle.x()[v])) << "agent " << v;
  }
}

// The promoted chaos fixture: more tenants, more steps, structural +
// deadline pressure everywhere.  DISABLED_ keeps it out of tier-1; the
// slow_serve_chaos ctest entry re-enables it (the CI TSan job runs it).
TEST(ServeChaosSlow, DISABLED_FullStorm) {
  run_chaos({.tenants = 6, .steps = 24});
}

}  // namespace
}  // namespace locmm
