// incremental_updates -- serving a drifting instance with the dynamic
// subsystem (paper §1.3): coefficients change one edit at a time, and each
// re-solve touches only the radius-D(R) dirty ball instead of the whole
// instance.
//
//   ./examples/incremental_updates [cols] [R] [edits]
//
// A paired-torus grid (2 x cols agents per row pair; natively in §5 special
// form) is solved once, cold.  Then a stream of single-coefficient edits --
// a link quality drifting up and down, as in the sensor deployments that
// motivated the earlier max-min LP work (arXiv:0710.1499) -- is applied
// through IncrementalSolver::apply, and every update is compared against
// what a from-scratch re-solve would have cost.  The outputs are
// bit-identical (the property tests assert it; here we spot-check), but the
// incremental path pays for the dirty ball only: WL recolouring shrinks
// from O(D |E|) to the ball's cone, and most view classes come back as
// colour-keyed cache hits.
#include <cstdio>
#include <cstdlib>

#include "core/view_solver.hpp"
#include "dynamic/incremental_solver.hpp"
#include "gen/generators.hpp"
#include "lp/delta.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"

using namespace locmm;

int main(int argc, char** argv) {
  std::int32_t cols = 500;
  std::int32_t R = 3;
  std::int32_t edits = 20;
  if (argc > 1) cols = std::atoi(argv[1]);
  if (argc > 2) R = std::atoi(argv[2]);
  if (argc > 3) edits = std::atoi(argv[3]);

  const MaxMinInstance grid =
      special_grid_instance({.rows = 4, .cols = cols}, 1);
  std::printf("paired torus: %d agents, R=%d (local horizon D=%d)\n",
              grid.num_agents(), R, view_radius(R));

  Timer cold_timer;
  IncrementalSolver::Options opt;
  opt.R = R;
  IncrementalSolver inc(grid, opt);
  std::printf("cold solve: %.1f ms\n\n", cold_timer.millis());

  // One from-scratch re-solve, for the comparison column.
  MaxMinInstance cur = grid;
  Timer scratch_timer;
  std::vector<double> scratch = solve_special_local_views(cur, R);
  const double scratch_ms = scratch_timer.millis();

  std::printf("%5s %10s %10s %8s %8s %8s %10s\n", "edit", "inc_ms",
              "scratch_ms", "dirty", "reused", "classes", "cache_hits");
  Rng rng(99);
  double total_inc = 0.0;
  for (std::int32_t e = 0; e < edits; ++e) {
    // Drift one random link: pick an agent, bump one of its constraints.
    const auto v = static_cast<AgentId>(
        rng.below(static_cast<std::uint64_t>(grid.num_agents())));
    const auto arcs = inc.special().arcs(v);
    const ConstraintArc arc = arcs[rng.below(arcs.size())];
    InstanceDelta delta;
    delta.set_constraint_coeff(arc.id, v, rng.uniform(0.5, 2.0));

    Timer inc_timer;
    inc.apply(delta);
    const double inc_ms = inc_timer.millis();
    total_inc += inc_ms;
    cur.apply(delta);

    const auto& u = inc.last_update();
    std::printf("%5d %10.2f %10.1f %8lld %8lld %8lld %10lld\n", e, inc_ms,
                scratch_ms, static_cast<long long>(u.agents_dirty),
                static_cast<long long>(u.agents_reused),
                static_cast<long long>(u.classes_invalidated),
                static_cast<long long>(u.class_cache_hits));
  }

  // Spot-check the final state against a from-scratch solve.
  scratch = solve_special_local_views(cur, R);
  double max_diff = 0.0;
  for (std::size_t v = 0; v < scratch.size(); ++v) {
    const double d = inc.x()[v] - scratch[v];
    max_diff = d > max_diff ? d : (-d > max_diff ? -d : max_diff);
  }
  std::printf("\nafter %d edits: max |incremental - scratch| = %.3g "
              "(bit-identical expected)\n",
              edits, max_diff);
  std::printf("mean incremental update: %.2f ms vs %.1f ms from scratch "
              "(%.0fx)\n",
              total_inc / edits, scratch_ms,
              scratch_ms / (total_inc / edits));
  return 0;
}
