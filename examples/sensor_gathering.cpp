// sensor_gathering -- balanced data gathering in a wireless sensor field
// (the paper's second motivating application).
//
//   ./examples/sensor_gathering [num_sensors] [num_sinks]
//
// Sensors stream data to nearby sinks with distance-dependent energy cost;
// each sink has a unit energy budget per round.  "Balanced" gathering
// maximises the minimum data rate over sensors -- a bipartite max-min LP.
// The local algorithm lets each sensor-sink assignment pick its rate from
// its constant-radius neighbourhood, so the schedule keeps working as the
// field scales or sensors move (only nearby rates change; see bench E9).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/solver_api.hpp"
#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"

using namespace locmm;

int main(int argc, char** argv) {
  SensorParams params;
  if (argc > 1) params.num_sensors = std::atoi(argv[1]);
  if (argc > 2) params.num_sinks = std::atoi(argv[2]);
  params.max_sensors_per_sink = 4;
  params.range = 0.4;

  const MaxMinInstance inst = sensor_instance(params, /*seed=*/7);
  const InstanceStats s = inst.stats();
  std::printf("field: %d sensors, %d sinks, %d assignments\n",
              params.num_sensors, params.num_sinks, inst.num_agents());
  std::printf("busiest sink serves %d sensors (= delta_I after §4.3); "
              "best-covered sensor reaches %d sinks\n\n",
              s.delta_i, s.delta_k);

  const MaxMinLpResult opt = solve_lp_optimum(inst);
  std::printf("exact balanced rate (centralized LP): %.5f\n", opt.omega);

  for (std::int32_t R : {2, 4, 8}) {
    const LocalSolution sol = solve_local(inst, {.R = R, .threads = 0});
    std::printf("local algorithm R=%d: rate %.5f  (ratio %.3f, bound %.3f, "
                "horizon %d)\n",
                R, sol.omega, opt.omega / sol.omega, sol.guarantee,
                sol.view_radius);
  }

  const LocalSolution sol = solve_local(inst, {.R = 8, .threads = 0});
  const auto rates = inst.objective_values(sol.x);
  std::vector<double> sorted(rates);
  std::sort(sorted.begin(), sorted.end());
  std::printf("\nsensor rate distribution (local, R=8):\n");
  std::printf("  min %.5f | p25 %.5f | median %.5f | p75 %.5f | max %.5f\n",
              sorted.front(), sorted[sorted.size() / 4],
              sorted[sorted.size() / 2], sorted[3 * sorted.size() / 4],
              sorted.back());
  std::printf("\nthe min-rate sensor is what 'balanced' protects: no sensor "
              "starves even at the field's edge.\n");
  return 0;
}
