// linear_equations -- approximately solving a nonnegative linear system
// with a local algorithm (the §1 corollary via mixed packing/covering).
//
//   ./examples/linear_equations
//
// A load-balancing flavour: stations share overlapping service zones; zone
// demand must be met exactly by the stations covering it (M x = d with
// nonnegative M, d).  The local route returns x with M x <= d satisfied
// exactly and M x >= d / alpha -- each zone served to within the Theorem 1
// factor -- after constant-radius communication only.
#include <cstdio>

#include "core/packing_covering.hpp"

using namespace locmm;

int main() {
  // Six stations on a ring, zones covering triples of neighbours: zone z is
  // served by stations z-1, z, z+1 with efficiency weights (M x = d).
  // Demands are generated from a ground-truth staffing plan x*, so the
  // system is feasible by construction and the exact solver must say so.
  const std::int32_t n = 6;
  const double x_star[6] = {1.0, 2.0, 0.5, 1.5, 1.0, 2.0};
  std::vector<SparseLpRow> equations;
  for (std::int32_t z = 0; z < 6; ++z) {
    SparseLpRow row;
    row.entries = {{(z + n - 1) % n, 0.5}, {z, 1.0}, {(z + 1) % n, 0.5}};
    row.rhs = 0.0;
    for (const auto& [col, coeff] : row.entries)
      row.rhs += coeff * x_star[col];
    equations.push_back(row);
  }
  const PackingCoveringProblem problem = linear_system_problem(n, equations);

  std::printf("system: %d stations, %zu zone equations (M x = d)\n\n", n,
              equations.size());

  const PackingCoveringResult exact = solve_packing_covering_exact(problem);
  std::printf("exact (centralized simplex): %s\n", to_string(exact.status));
  std::printf("  x = [");
  for (std::int32_t v = 0; v < n; ++v)
    std::printf("%s%.4f", v ? ", " : "", exact.x[v]);
  std::printf("]\n  worst zone service: %.4f of demand\n\n",
              exact.cover_factor);

  for (std::int32_t R : {3, 6, 10}) {
    const PackingCoveringResult local =
        solve_packing_covering_local(problem, {.R = R});
    std::printf("local R=%-2d: %-16s  oversupply=%.2e  "
                "worst service=%.4f  (promise >= 1/alpha = %.4f)\n",
                R, to_string(local.status),
                packing_violation(problem, local.x), local.cover_factor,
                1.0 / local.alpha);
  }

  std::printf(
      "\n'oversupply' stays ~0 (the packing side M x <= d is never\n"
      "violated); the covering side converges to full demand as the\n"
      "locality parameter R buys a wider horizon.\n");
  return 0;
}
