// locmm_solve -- command-line solver for max-min LP instance files.
//
//   ./examples/locmm_solve <file.mmlp> [--R k] [--engine c|l] [--safe]
//                          [--exact] [--threads n] [--dump-x]
//
// Reads the plain-text format of lp/io.hpp (see README) and runs the
// requested solvers, printing utilities, ratios and diagnostics.  With no
// file argument, prints the format specification and a worked example.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/safe_baseline.hpp"
#include "core/solver_api.hpp"
#include "lp/io.hpp"
#include "lp/maxmin_solver.hpp"

using namespace locmm;

namespace {

void usage() {
  std::printf(
      "usage: locmm_solve <file.mmlp> [options]\n"
      "  --R k        shifting parameter (default 4; larger = better ratio,\n"
      "               wider local horizon)\n"
      "  --engine c|l engine: c = centralized simulation (default),\n"
      "               l = per-agent local views (slow, faithful)\n"
      "  --threads n  worker threads (0 = all cores; default 0)\n"
      "  --safe       also run the safe baseline (factor delta_I)\n"
      "  --exact      also compute the LP optimum (bundled simplex)\n"
      "  --dump-x     print the full solution vector\n"
      "\n"
      "file format (one row per line; '#' comments):\n"
      "  maxminlp 1\n"
      "  agents <n>\n"
      "  constraint <agent> <coeff> [<agent> <coeff> ...]   # sum <= 1\n"
      "  objective  <agent> <coeff> [<agent> <coeff> ...]   # sum >= omega\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  std::string path;
  LocalParams params;
  params.R = 4;
  params.threads = 0;
  bool run_safe = false, run_exact = false, dump_x = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--R" && a + 1 < argc) {
      params.R = std::atoi(argv[++a]);
    } else if (arg == "--engine" && a + 1 < argc) {
      const std::string e = argv[++a];
      params.engine = (e == "l") ? LocalEngine::kLocalViews
                                 : LocalEngine::kCentralized;
    } else if (arg == "--threads" && a + 1 < argc) {
      params.threads = static_cast<std::size_t>(std::atoll(argv[++a]));
    } else if (arg == "--safe") {
      run_safe = true;
    } else if (arg == "--exact") {
      run_exact = true;
    } else if (arg == "--dump-x") {
      dump_x = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (path.empty()) {
    usage();
    return 1;
  }

  try {
    const MaxMinInstance inst = load_instance(path);
    std::printf("instance: %s\n", describe(inst).c_str());

    const LocalSolution sol = solve_local(inst, params);
    std::printf("local (R=%d, engine %s): omega = %.8f  guarantee = %.4f  "
                "horizon D = %d\n",
                params.R,
                params.engine == LocalEngine::kCentralized ? "C" : "L",
                sol.omega, sol.guarantee, sol.view_radius);
    std::printf("  special form: %lld agents, %lld constraints "
                "(factor %.2f from §4.3)\n",
                static_cast<long long>(sol.special_stats.agents),
                static_cast<long long>(sol.special_stats.constraints),
                sol.ratio_factor);

    double omega_star = -1.0;
    if (run_exact) {
      const MaxMinLpResult opt = solve_lp_optimum(inst);
      if (opt.status != LpStatus::kOptimal) {
        std::printf("exact LP: %s\n", to_string(opt.status));
      } else {
        omega_star = opt.omega;
        const bool certified = check_certificate(inst, opt).ok();
        std::printf("exact LP: omega* = %.8f  (certified: %s)\n", omega_star,
                    certified ? "yes" : "NO");
        std::printf("  measured ratio: %.4f (guarantee %.4f)\n",
                    omega_star / sol.omega, sol.guarantee);
      }
    }
    if (run_safe) {
      const std::vector<double> safe = solve_safe(inst);
      const double omega_safe = inst.utility(safe);
      std::printf("safe baseline: omega = %.8f", omega_safe);
      if (omega_star > 0.0)
        std::printf("  (ratio %.4f)", omega_star / omega_safe);
      std::printf("\n");
    }
    if (dump_x) {
      std::printf("x =");
      for (double v : sol.x) std::printf(" %.8f", v);
      std::printf("\n");
    }
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
