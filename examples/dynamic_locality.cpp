// dynamic_locality -- why local algorithms make good dynamic/self-healing
// systems (paper §1.3): after a single capacity change, only the
// constant-radius neighbourhood of the change recomputes.
//
//   ./examples/dynamic_locality [layers]
//
// We run the §5 algorithm on a layered wheel, degrade one constraint's
// capacity (as if a link's quality dropped), re-run, and show which agents
// changed their output -- everything outside the local horizon D(R) is
// untouched, so in a real deployment only those nodes would need to react.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/local_solver.hpp"
#include "core/view_solver.hpp"
#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"

using namespace locmm;

int main(int argc, char** argv) {
  std::int32_t layers = 24;
  if (argc > 1) layers = std::atoi(argv[1]);
  const std::int32_t R = 3;

  const MaxMinInstance base = layered_instance(
      {.delta_k = 2, .layers = layers, .width = 1, .twist = 0});
  std::printf("wheel: %d layers, %d agents, R=%d (local horizon D=%d)\n\n",
              layers, base.num_agents(), R, view_radius(R));

  const SpecialRunResult before =
      solve_special_centralized(SpecialFormInstance(base), R);

  // Degrade constraint 0: its first agent now consumes 2x the capacity.
  InstanceBuilder b(base.num_agents());
  for (ConstraintId i = 0; i < base.num_constraints(); ++i) {
    auto row = base.constraint_row(i);
    std::vector<Entry> out(row.begin(), row.end());
    if (i == 0) out[0].coeff *= 2.0;
    b.add_constraint(std::move(out));
  }
  for (ObjectiveId k = 0; k < base.num_objectives(); ++k) {
    auto row = base.objective_row(k);
    b.add_objective(std::vector<Entry>(row.begin(), row.end()));
  }
  const MaxMinInstance bumped = b.build();
  const SpecialRunResult after =
      solve_special_centralized(SpecialFormInstance(bumped), R);

  const CommGraph g(base);
  const auto dist = g.bfs_distances(g.constraint_node(0), 1 << 20);

  std::printf("agents whose output changed after degrading constraint 0:\n");
  std::int32_t changed = 0, max_dist = 0;
  for (AgentId v = 0; v < base.num_agents(); ++v) {
    const double delta = after.x[v] - before.x[v];
    if (std::abs(delta) > 1e-12) {
      ++changed;
      max_dist = std::max(max_dist, dist[g.agent_node(v)]);
      if (changed <= 12) {
        std::printf("  agent %3d (distance %2d): %+.5f -> %+.5f\n", v,
                    dist[g.agent_node(v)], before.x[v], after.x[v]);
      }
    }
  }
  if (changed > 12) std::printf("  ... and %d more\n", changed - 12);
  std::printf("\n%d of %d agents changed; farthest change at distance %d "
              "<= D+1 = %d.\n",
              changed, base.num_agents(), max_dist, view_radius(R) + 1);
  std::printf("grow the wheel (argv[1]) and the changed count stays the "
              "same: updates cost O(1), independent of n.\n");
  return 0;
}
