// dynamic_locality -- why local algorithms make good dynamic/self-healing
// systems (paper §1.3): after a single capacity change, only the
// constant-radius neighbourhood of the change recomputes.
//
//   ./examples/dynamic_locality [layers]
//
// We hold a layered wheel in a LocalResolver, degrade one constraint's
// capacity (as if a link's quality dropped) through resolve() -- no manual
// rebuild, no from-scratch solve: the resolver routes the edit through the
// §4 pipeline and re-evaluates only the radius-D(R) dirty ball
// (src/dynamic/incremental_solver.hpp).  The printed distances show that
// everything outside the local horizon D(R) is untouched, so in a real
// deployment only those nodes would need to react.  See
// examples/incremental_updates.cpp for the update-throughput angle.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/solver_api.hpp"
#include "core/view_solver.hpp"
#include "gen/generators.hpp"
#include "graph/comm_graph.hpp"
#include "lp/delta.hpp"

using namespace locmm;

int main(int argc, char** argv) {
  std::int32_t layers = 24;
  if (argc > 1) layers = std::atoi(argv[1]);
  const std::int32_t R = 3;

  const MaxMinInstance base = layered_instance(
      {.delta_k = 2, .layers = layers, .width = 1, .twist = 0});
  std::printf("wheel: %d layers, %d agents, R=%d (local horizon D=%d)\n\n",
              layers, base.num_agents(), R, view_radius(R));

  LocalParams params;
  params.R = R;
  params.engine = LocalEngine::kLocalViews;
  LocalResolver resolver(base, params);
  const std::vector<double> before = resolver.solution().x;

  // Degrade constraint 0: its first agent now consumes 2x the capacity.
  const Entry hit = base.constraint_row(0)[0];
  InstanceDelta delta;
  delta.set_constraint_coeff(0, hit.agent, hit.coeff * 2.0);
  const std::vector<double>& after = resolver.resolve(delta).x;

  const CommGraph g(base);
  const auto dist = g.bfs_distances(g.constraint_node(0), 1 << 20);

  std::printf("agents whose output changed after degrading constraint 0:\n");
  std::int32_t changed = 0, max_dist = 0;
  for (AgentId v = 0; v < base.num_agents(); ++v) {
    const double d = after[v] - before[v];
    if (std::abs(d) > 1e-12) {
      ++changed;
      max_dist = std::max(max_dist, dist[g.agent_node(v)]);
      if (changed <= 12) {
        std::printf("  agent %3d (distance %2d): %+.5f -> %+.5f\n", v,
                    dist[g.agent_node(v)], before[v], after[v]);
      }
    }
  }
  if (changed > 12) std::printf("  ... and %d more\n", changed - 12);
  std::printf("\n%d of %d agents changed; farthest change at distance %d "
              "<= D+1 = %d.\n",
              changed, base.num_agents(), max_dist, view_radius(R) + 1);
  std::printf("grow the wheel (argv[1]) and the changed count stays the "
              "same: updates cost O(1), independent of n --\n"
              "and resolve() exploits it, re-evaluating only the dirty "
              "ball instead of re-solving from scratch.\n");

  // The same story distributed (§1.3's actual claim): carry the resolver on
  // engine S and the edit is a message-passing replay -- only dirty-ball
  // nodes re-send, everyone else's messages come from the recorded history.
  LocalParams dist_params;
  dist_params.R = R;
  dist_params.engine = LocalEngine::kStreaming;
  LocalResolver dist_resolver(base, dist_params);
  const RunStats cold = dist_resolver.solution().net_stats;
  const RunStats warm = dist_resolver.resolve(delta).net_stats;
  std::printf("\nengine S (streaming): cold solve sent %lld messages "
              "in %d rounds;\nthe same edit re-sent only %lld fresh "
              "(replaying %lld from the history) -- identical bits, "
              "ball-sized traffic.\n",
              static_cast<long long>(cold.fresh_messages), cold.rounds,
              static_cast<long long>(warm.fresh_messages),
              static_cast<long long>(warm.replayed_messages));
  return 0;
}
