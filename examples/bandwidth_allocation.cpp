// bandwidth_allocation -- max-min fair bandwidth in a router network
// (the paper's first motivating application).
//
//   ./examples/bandwidth_allocation [num_routers] [num_customers]
//
// Links are capacity constraints, customers are objectives, candidate
// routes are agents.  Every route decides its own flow after a constant
// number of message exchanges with the links and customer endpoints it
// touches; no router ever learns the whole topology.  We compare against
// the exact LP optimum and the safe baseline.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/safe_baseline.hpp"
#include "core/solver_api.hpp"
#include "gen/generators.hpp"
#include "lp/maxmin_solver.hpp"

using namespace locmm;

int main(int argc, char** argv) {
  BandwidthParams params;
  if (argc > 1) params.num_routers = std::atoi(argv[1]);
  if (argc > 2) params.num_customers = std::atoi(argv[2]);
  params.num_chords = params.num_routers / 2;
  params.paths_per_customer = 3;

  const MaxMinInstance inst = bandwidth_instance(params, /*seed=*/2026);
  const InstanceStats s = inst.stats();
  std::printf("network: %d routers, %lld links in use, %d customers, "
              "%d routes\n",
              params.num_routers, static_cast<long long>(s.constraints),
              params.num_customers, inst.num_agents());
  std::printf("degrees: busiest link carries %d routes (delta_I), largest "
              "customer has %d routes (delta_K)\n\n",
              s.delta_i, s.delta_k);

  const MaxMinLpResult opt = solve_lp_optimum(inst);
  std::printf("exact max-min throughput (centralized LP): %.5f\n", opt.omega);

  const LocalSolution local = solve_local(inst, {.R = 6, .threads = 0});
  std::printf("local algorithm (R=6):                     %.5f "
              "(ratio %.3f, bound %.3f)\n",
              local.omega, opt.omega / local.omega, local.guarantee);

  const std::vector<double> safe = solve_safe(inst);
  const double omega_safe = inst.utility(safe);
  std::printf("safe baseline (prior art, factor dI=%d):   %.5f "
              "(ratio %.3f)\n\n",
              s.delta_i, omega_safe, opt.omega / omega_safe);

  // Per-customer throughput under the local solution.
  const auto vals = inst.objective_values(local.x);
  std::printf("per-customer throughput (local solution):\n");
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    std::printf("  customer %2d: %.5f over %zu route(s)\n", k,
                vals[static_cast<std::size_t>(k)],
                inst.objective_row(k).size());
  }
  std::printf("\nfairness: min %.5f vs max %.5f -- the minimum is the "
              "objective the algorithm maximises.\n",
              *std::min_element(vals.begin(), vals.end()),
              *std::max_element(vals.begin(), vals.end()));
  return 0;
}
