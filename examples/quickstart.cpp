// quickstart -- build a max-min LP by hand, solve it locally, compare with
// the exact optimum.
//
//   ./examples/quickstart
//
// The instance: three producers (agents) feed two consumers (objectives)
// under two shared capacity constraints.  We ask for the allocation that
// maximises the worst-off consumer's intake, computed by the paper's local
// algorithm, and show how the approximation tightens as the locality
// parameter R grows.
#include <cstdio>

#include "core/solver_api.hpp"
#include "lp/io.hpp"
#include "lp/maxmin_solver.hpp"

using namespace locmm;

int main() {
  // maximise min( x0 + x1 , 3 x2 )
  // subject to  x0 + 2 x1 <= 1
  //             x1 +   x2 <= 1,   x >= 0.
  InstanceBuilder builder(3);
  builder.add_constraint({{0, 1.0}, {1, 2.0}});
  builder.add_constraint({{1, 1.0}, {2, 1.0}});
  builder.add_objective({{0, 1.0}, {1, 1.0}});
  builder.add_objective({{2, 3.0}});
  const MaxMinInstance inst = builder.build();

  std::printf("instance: %s\n\n", describe(inst).c_str());

  // Ground truth from the bundled simplex (with a duality certificate).
  const MaxMinLpResult opt = solve_lp_optimum(inst);
  std::printf("LP optimum  omega* = %.6f  (certified: %s)\n\n", opt.omega,
              check_certificate(inst, opt).ok() ? "yes" : "no");

  // The local algorithm at increasing locality.
  for (std::int32_t R : {2, 3, 5, 8}) {
    const LocalSolution sol = solve_local(inst, {.R = R});
    std::printf(
        "R=%d  omega=%.6f  ratio=%.4f  a-priori bound=%.4f  horizon D=%d\n",
        R, sol.omega, opt.omega / sol.omega, sol.guarantee, sol.view_radius);
    std::printf("     x = [");
    for (std::size_t v = 0; v < sol.x.size(); ++v)
      std::printf("%s%.4f", v ? ", " : "", sol.x[v]);
    std::printf("]  feasible=%s\n", inst.is_feasible(sol.x) ? "yes" : "no");
  }

  std::printf(
      "\nEvery agent computed its own x_v from a radius-D neighbourhood\n"
      "only -- the same numbers would come out of a real network (engine M\n"
      "in the tests runs exactly that message-passing computation).\n");
  return 0;
}
