// class_collapse -- solve a 100'000-agent paired-row torus grid with and
// without cross-agent view canonicalization.
//
// In the port-numbering model, agents whose radius-D views coincide provably
// compute identical outputs, so engine L only has to evaluate one agent per
// view-equivalence class.  On a symmetric instance like this grid (see
// special_grid_instance in gen/generators.hpp for its exact geometry) the
// class count is a small constant independent of the instance size: the
// whole 100k-agent solve collapses to a handful of evaluations plus a
// broadcast.
//
// Build and run:
//   cmake --build build --target class_collapse && build/class_collapse
#include <cstdio>

#include "core/view_class_cache.hpp"
#include "core/view_solver.hpp"
#include "gen/generators.hpp"
#include "support/timer.hpp"

using namespace locmm;

int main() {
  const std::int32_t rows = 250, cols = 400;  // 100'000 agents
  const MaxMinInstance inst = special_grid_instance({.rows = rows,
                                                     .cols = cols},
                                                    1);
  const std::int32_t R = 3;
  std::printf("paired-row torus grid %d x %d: %d agents, R = %d "
              "(view radius %d)\n",
              rows, cols, inst.num_agents(), R, view_radius(R));

  // PR-1 baseline: every agent builds and evaluates its own view.
  TSearchOptions plain;
  plain.canonicalize_views = false;
  Timer plain_timer;
  const std::vector<double> base =
      solve_special_local_views(inst, R, plain, /*threads=*/0);
  const double plain_ms = plain_timer.millis();
  std::printf("per-agent solve:          %8.1f ms  (%d evaluations)\n",
              plain_ms, inst.num_agents());

  // Canonicalized: refine classes, evaluate one representative per class,
  // broadcast.
  ViewClassCache cache;
  TSearchStats stats;
  TSearchOptions canon;
  canon.view_cache = &cache;
  canon.stats = &stats;
  Timer canon_timer;
  const std::vector<double> x =
      solve_special_local_views(inst, R, canon, /*threads=*/0);
  const double canon_ms = canon_timer.millis();
  std::printf("class-collapsed solve:    %8.1f ms  (%lld classes, %lld "
              "evaluations, %lld avoided)\n",
              canon_ms,
              static_cast<long long>(stats.view_classes.load()),
              static_cast<long long>(stats.view_evals.load()),
              static_cast<long long>(stats.evals_avoided.load()));

  // Warm cache: repeated solves skip even the representatives.
  stats.reset();
  Timer warm_timer;
  solve_special_local_views(inst, R, canon, /*threads=*/0);
  const double warm_ms = warm_timer.millis();
  std::printf("warm-cache solve:         %8.1f ms  (%lld cache hits)\n",
              warm_ms, static_cast<long long>(cache.hits()));

  for (std::size_t v = 0; v < base.size(); ++v) {
    if (base[v] != x[v]) {
      std::printf("MISMATCH at agent %zu\n", v);
      return 1;
    }
  }
  std::printf("outputs bit-identical; speedup %.1fx cold, %.1fx warm\n",
              plain_ms / canon_ms, plain_ms / warm_ms);
  return 0;
}
