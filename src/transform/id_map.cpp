// id_map.cpp -- the persistent old-id -> new-id map of the §4 pipeline.
//
// Every stage of to_special_form expands its input in input order, so the
// composed image of each original id is a contiguous special-id range whose
// bounds are nested prefix-sum lookups: stage §4.3 turns s1 row i into rows
// [f2[i], f2[i+1]), §4.4 turns s2 row r into [f3[r], f3[r+1]) and s2 agent v
// into copies [cf3[v], cf3[v+1]), §4.5 turns s3 row/agent likewise (f4 /
// hf4), and §4.2 / §4.6 are id-preserving on originals.  Composing:
//   con_first[i]  = f4[f3[f2[i]]],     con_end  = f4[f3[f2[i+1]]]
//   agent_first[v] = hf4[cf3[v]],      agent_end = hf4[cf3[v+1]]
// The prefix arrays are recomputed here from the actual intermediate
// instances (steps[0..3]), with end-to-end CHECKs against the built sizes,
// so the map can never drift from what the stages actually emitted.
//
// map_delta is the O(ball) alternative to "re-run the pipeline and diff":
// under the fast-path conditions documented in transform.hpp the pipeline's
// numbering is provably a fixed point of the edit, and the original delta
// translates edge-by-edge into special coordinates.
#include <algorithm>
#include <bit>
#include <map>
#include <set>

#include "transform/transform.hpp"

namespace locmm {

namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::int32_t narrow(std::int64_t x) {
  LOCMM_CHECK(x >= 0 && x <= 0x7fffffff);
  return static_cast<std::int32_t>(x);
}

}  // namespace

PipelineIdMap build_pipeline_id_map(const MaxMinInstance& in,
                                    const std::vector<TransformStep>& steps) {
  LOCMM_CHECK(steps.size() == 5);
  const MaxMinInstance& s1 = steps[0].instance;
  const MaxMinInstance& s2 = steps[1].instance;
  const MaxMinInstance& s3 = steps[2].instance;
  const MaxMinInstance& s4 = steps[3].instance;
  LOCMM_CHECK(steps[4].instance.num_agents() == s4.num_agents());

  PipelineIdMap m;
  const std::int32_t n0 = in.num_agents();
  const std::int32_t m0 = in.num_constraints();
  const std::int32_t k0 = in.num_objectives();

  // §4.2 sensitivity: per gadget, the singleton row itself, the reference
  // objective k (first objective of the singleton agent) whose row sums the
  // big-M bound, and every agent whose capacity enters that sum.
  m.row_gadget.assign(static_cast<std::size_t>(m0), 0);
  m.agent_sensitive.assign(static_cast<std::size_t>(n0), 0);
  m.obj_sensitive.assign(static_cast<std::size_t>(k0), 0);
  for (ConstraintId i = 0; i < m0; ++i) {
    if (in.constraint_row(i).size() != 1) continue;
    m.row_gadget[static_cast<std::size_t>(i)] = 1;
    m.has_gadgets = true;
    const AgentId v = in.constraint_row(i)[0].agent;
    const ObjectiveId k = in.agent_objectives(v)[0].row;
    m.obj_sensitive[static_cast<std::size_t>(k)] = 1;
    for (const Entry& e : in.objective_row(k)) {
      m.agent_sensitive[static_cast<std::size_t>(e.agent)] = 1;
    }
  }

  // §4.3 row expansion over s1 rows: size-2 rows pass, larger ones become
  // C(s, 2) pairwise rows.
  const std::int32_t m1 = s1.num_constraints();
  std::vector<std::int64_t> f2(static_cast<std::size_t>(m1) + 1, 0);
  for (ConstraintId i = 0; i < m1; ++i) {
    const auto s = static_cast<std::int64_t>(s1.constraint_row(i).size());
    f2[static_cast<std::size_t>(i) + 1] =
        f2[static_cast<std::size_t>(i)] + (s <= 2 ? 1 : s * (s - 1) / 2);
  }
  LOCMM_CHECK(f2[static_cast<std::size_t>(m1)] == s2.num_constraints());

  // §4.4: one copy per objective port, rows expand over the cartesian
  // product of their members' copy counts.
  const std::int32_t n2 = s2.num_agents();
  std::vector<std::int64_t> cf3(static_cast<std::size_t>(n2) + 1, 0);
  for (AgentId v = 0; v < n2; ++v) {
    cf3[static_cast<std::size_t>(v) + 1] =
        cf3[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(s2.agent_objectives(v).size());
  }
  LOCMM_CHECK(cf3[static_cast<std::size_t>(n2)] == s3.num_agents());

  const std::int32_t m2 = s2.num_constraints();
  std::vector<std::int64_t> f3(static_cast<std::size_t>(m2) + 1, 0);
  for (ConstraintId i = 0; i < m2; ++i) {
    std::int64_t prod = 1;
    for (const Entry& e : s2.constraint_row(i)) {
      prod *= static_cast<std::int64_t>(s2.agent_objectives(e.agent).size());
    }
    f3[static_cast<std::size_t>(i) + 1] = f3[static_cast<std::size_t>(i)] + prod;
  }
  LOCMM_CHECK(f3[static_cast<std::size_t>(m2)] == s3.num_constraints());

  // §4.5: agents with a singleton objective row split into two halves, rows
  // expand over the product of their members' half counts.
  const std::int32_t n3 = s3.num_agents();
  std::vector<std::int64_t> hf4(static_cast<std::size_t>(n3) + 1, 0);
  auto halves_of = [&](AgentId v) -> std::int64_t {
    const ObjectiveId k = s3.agent_objectives(v)[0].row;
    return s3.objective_row(k).size() == 1 ? 2 : 1;
  };
  for (AgentId v = 0; v < n3; ++v) {
    hf4[static_cast<std::size_t>(v) + 1] =
        hf4[static_cast<std::size_t>(v)] + halves_of(v);
  }
  LOCMM_CHECK(hf4[static_cast<std::size_t>(n3)] == s4.num_agents());

  const std::int32_t m3 = s3.num_constraints();
  std::vector<std::int64_t> f4(static_cast<std::size_t>(m3) + 1, 0);
  for (ConstraintId i = 0; i < m3; ++i) {
    std::int64_t prod = 1;
    for (const Entry& e : s3.constraint_row(i)) prod *= halves_of(e.agent);
    f4[static_cast<std::size_t>(i) + 1] = f4[static_cast<std::size_t>(i)] + prod;
  }
  LOCMM_CHECK(f4[static_cast<std::size_t>(m3)] == s4.num_constraints());

  // §4.3 divisor from s1 (original agents keep their ids there).
  m.divisor.assign(static_cast<std::size_t>(n0), 2.0);
  for (AgentId v = 0; v < n0; ++v) {
    for (const Incidence& inc : s1.agent_constraints(v)) {
      m.divisor[static_cast<std::size_t>(v)] = std::max(
          m.divisor[static_cast<std::size_t>(v)],
          static_cast<double>(s1.constraint_row(inc.row).size()));
    }
  }

  // §4.6 scale per special agent, read off s4 (§4.6 preserves structure, so
  // s4 and the special instance share agent ids).
  m.gamma.resize(static_cast<std::size_t>(s4.num_agents()));
  for (AgentId w = 0; w < s4.num_agents(); ++w) {
    m.gamma[static_cast<std::size_t>(w)] = s4.agent_objectives(w)[0].coeff;
  }

  // Composed contiguous spans for the original ids.
  m.agent_first.resize(static_cast<std::size_t>(n0));
  m.agent_count.resize(static_cast<std::size_t>(n0));
  for (AgentId v = 0; v < n0; ++v) {
    const std::int64_t lo = hf4[static_cast<std::size_t>(cf3[static_cast<std::size_t>(v)])];
    const std::int64_t hi = hf4[static_cast<std::size_t>(cf3[static_cast<std::size_t>(v) + 1])];
    m.agent_first[static_cast<std::size_t>(v)] = narrow(lo);
    m.agent_count[static_cast<std::size_t>(v)] = narrow(hi - lo);
  }
  m.con_first.resize(static_cast<std::size_t>(m0));
  m.con_count.resize(static_cast<std::size_t>(m0));
  for (ConstraintId i = 0; i < m0; ++i) {
    const std::int64_t lo = f4[static_cast<std::size_t>(f3[static_cast<std::size_t>(f2[static_cast<std::size_t>(i)])])];
    const std::int64_t hi = f4[static_cast<std::size_t>(f3[static_cast<std::size_t>(f2[static_cast<std::size_t>(i) + 1])])];
    m.con_first[static_cast<std::size_t>(i)] = narrow(lo);
    m.con_count[static_cast<std::size_t>(i)] = narrow(hi - lo);
  }
  return m;
}

std::optional<MappedDelta> PipelineIdMap::map_delta(
    const InstanceDelta& delta, const MaxMinInstance& orig) const {
  // Growth accounting and touched-id collection.  An entry in con_growth /
  // obj_growth / kv_growth marks the id as STRUCTURALLY touched even at
  // growth zero (remove-then-re-add rewires a row without resizing it).
  std::map<ConstraintId, std::int64_t> con_growth;
  std::map<ObjectiveId, std::int64_t> obj_growth;
  std::map<AgentId, std::int64_t> kv_growth;
  std::set<ConstraintId> touched_con;
  std::set<ObjectiveId> touched_obj;
  std::set<AgentId> touched_agents;
  auto touch = [&](RowKind kind, std::int32_t row, AgentId agent) {
    (kind == RowKind::kConstraint ? touched_con : touched_obj).insert(row);
    touched_agents.insert(agent);
  };
  auto account = [&](const MembershipEdit& e, std::int64_t d) {
    touch(e.kind, e.row, e.agent);
    if (e.kind == RowKind::kConstraint) {
      con_growth[e.row] += d;
    } else {
      obj_growth[e.row] += d;
      kv_growth[e.agent] += d;
    }
  };
  for (const MembershipEdit& e : delta.removes) account(e, -1);
  for (const MembershipEdit& e : delta.adds) account(e, +1);
  for (const CoeffEdit& e : delta.coeff_edits) touch(e.kind, e.row, e.agent);

  // Fast-path conditions (transform.hpp): reject any touched id that could
  // move the pipeline's numbering.
  for (const ConstraintId i : touched_con) {
    if (row_gadget[static_cast<std::size_t>(i)]) return std::nullopt;
    // Singly-imaged, coefficient edits included: a §4.3-split row's pairwise
    // pieces each hold only TWO of the members, so an edit on it has no
    // single special address (and a membership edit would change the pair
    // set outright).
    if (con_count[static_cast<std::size_t>(i)] != 1) return std::nullopt;
    const auto it = con_growth.find(i);
    if (it == con_growth.end()) continue;  // coefficient-only
    if (it->second != 0) return std::nullopt;
    if (orig.constraint_row(i).size() != 2) return std::nullopt;
  }
  for (const ObjectiveId k : touched_obj) {
    if (obj_sensitive[static_cast<std::size_t>(k)]) return std::nullopt;
    const auto pre = static_cast<std::int64_t>(orig.objective_row(k).size());
    std::int64_t g = 0;
    if (const auto it = obj_growth.find(k); it != obj_growth.end())
      g = it->second;
    if (pre < 2 || pre + g < 2) return std::nullopt;
  }
  for (const AgentId v : touched_agents) {
    if (agent_sensitive[static_cast<std::size_t>(v)]) return std::nullopt;
    if (agent_count[static_cast<std::size_t>(v)] != 1) return std::nullopt;
    if (const auto it = kv_growth.find(v);
        it != kv_growth.end() && it->second != 0) {
      return std::nullopt;
    }
  }

  // Post-edit §4.6 scale per touched agent: the batch can move the agent to
  // another objective row (remove + re-add, growth zero keeps |Kv| = 1) and
  // can rewrite the coefficient (the re-add's value, then coefficient edits
  // in batch order, last one winning) -- the same resolution order apply()
  // uses.
  struct PostObjective {
    ObjectiveId row = -1;
    double coeff = 0.0;
  };
  std::map<AgentId, PostObjective> post;
  for (const AgentId v : touched_agents) {
    const Incidence pre = orig.agent_objectives(v)[0];  // |Kv| == 1 (above)
    post[v] = {pre.row, pre.coeff};
  }
  for (const MembershipEdit& e : delta.adds) {
    if (e.kind == RowKind::kObjective) post.at(e.agent) = {e.row, e.coeff};
  }
  for (const CoeffEdit& e : delta.coeff_edits) {
    if (e.kind != RowKind::kObjective) continue;
    if (PostObjective& p = post.at(e.agent); p.row == e.row) p.coeff = e.coeff;
  }

  const auto v_img = [&](AgentId v) {
    return static_cast<AgentId>(agent_first[static_cast<std::size_t>(v)]);
  };
  const auto gamma_post = [&](AgentId v) { return post.at(v).coeff; };

  // Edge-by-edge translation, in apply() order.  Constraint coefficients
  // divide by the agent's post-edit gamma (the exact expression §4.6
  // evaluates), objective coefficients pin to 1.  Coefficient edits fan out
  // over the row's whole image span: every §4.4/§4.5 replica carries the
  // touched agent's single image with the same coefficient.
  MappedDelta out;
  for (const MembershipEdit& e : delta.removes) {
    const std::int32_t row =
        e.kind == RowKind::kConstraint
            ? con_first[static_cast<std::size_t>(e.row)]
            : e.row;
    out.special.removes.push_back({e.kind, row, v_img(e.agent), 0.0});
  }
  for (const MembershipEdit& e : delta.adds) {
    if (e.kind == RowKind::kConstraint) {
      out.special.adds.push_back({e.kind,
                                  con_first[static_cast<std::size_t>(e.row)],
                                  v_img(e.agent),
                                  e.coeff / gamma_post(e.agent)});
    } else {
      out.special.adds.push_back({e.kind, e.row, v_img(e.agent), 1.0});
    }
  }
  for (const CoeffEdit& e : delta.coeff_edits) {
    if (e.kind != RowKind::kConstraint) continue;  // image obj coeffs == 1
    out.special.coeff_edits.push_back(
        {e.kind, con_first[static_cast<std::size_t>(e.row)], v_img(e.agent),
         e.coeff / gamma_post(e.agent)});
  }

  // Gamma rescale: an agent whose §4.6 scale changed has EVERY surviving
  // constraint coefficient of its image rescaled (the scratch pipeline
  // divides them all by the new gamma).  Batch-added memberships already
  // carry the new scale above; batch-edited ones are re-emitted here with
  // the identical value (last write wins in apply()).
  for (const AgentId v : touched_agents) {
    const double g_new = gamma_post(v);
    const double g_old = gamma[static_cast<std::size_t>(v_img(v))];
    if (same_bits(g_new, g_old)) continue;
    // Every surviving row of v must be singly-imaged too, or the rescale
    // has no single special address per row (same §4.3 argument as above --
    // these rows are NOT in touched_con, so check them here).
    for (const Incidence& inc : orig.agent_constraints(v)) {
      if (con_count[static_cast<std::size_t>(inc.row)] != 1)
        return std::nullopt;
    }
    out.gamma_updates.push_back({v_img(v), g_new});
    std::set<ConstraintId> removed;
    for (const MembershipEdit& e : delta.removes) {
      if (e.kind == RowKind::kConstraint && e.agent == v) removed.insert(e.row);
    }
    std::map<ConstraintId, double> edited;
    for (const CoeffEdit& e : delta.coeff_edits) {
      if (e.kind == RowKind::kConstraint && e.agent == v) edited[e.row] = e.coeff;
    }
    for (const Incidence& inc : orig.agent_constraints(v)) {
      if (removed.count(inc.row) != 0) continue;
      const auto it = edited.find(inc.row);
      const double a = it != edited.end() ? it->second : inc.coeff;
      out.special.coeff_edits.push_back(
          {RowKind::kConstraint, con_first[static_cast<std::size_t>(inc.row)],
           v_img(v), a / g_new});
    }
  }
  return out;
}

void PipelineIdMap::apply_gamma_updates(const MappedDelta& mapped) {
  for (const auto& [w, g] : mapped.gamma_updates) {
    gamma[static_cast<std::size_t>(w)] = g;
  }
}

std::vector<double> PipelineIdMap::map_back(
    std::span<const double> x_special) const {
  LOCMM_CHECK(x_special.size() == gamma.size());
  std::vector<double> x(agent_first.size());
  for (std::size_t v = 0; v < agent_first.size(); ++v) {
    // max over the flattened copies x halves span, seeded 0.0 -- the §4.4 /
    // §4.5 closures' nested max folds flattened (associative, and every
    // candidate is >= +0.0, so the fold is bitwise order-insensitive);
    // division by gamma is §4.6's expression, 2x/divisor is §4.3's.
    double best = 0.0;
    const auto first = static_cast<std::size_t>(agent_first[v]);
    const auto count = static_cast<std::size_t>(agent_count[v]);
    for (std::size_t h = first; h < first + count; ++h) {
      best = std::max(best, x_special[h] / gamma[h]);
    }
    x[v] = 2.0 * best / divisor[v];
  }
  return x;
}

}  // namespace locmm
