// §4.6: normalise objective coefficients to 1.
//
// With |Kv| = 1 (§4.4), each agent v has a unique objective k(v); dividing
// both a_iv and c_k(v)v by gamma_v = c_k(v)v rescales the variable to
// x'_v = gamma_v x_v, making every objective coefficient 1 while preserving
// the graph, the port numbering, the feasible region (after rescaling) and
// the optimum.  Mapping back divides by gamma_v.
#include <vector>

#include "transform/transform.hpp"

namespace locmm {

TransformStep normalize_objective_coeffs(const MaxMinInstance& in) {
  TransformStep step;
  step.name = "§4.6 normalize objective coefficients";
  step.ratio_factor = 1.0;

  const std::int32_t n = in.num_agents();
  std::vector<double> gamma(static_cast<std::size_t>(n), 1.0);
  for (AgentId v = 0; v < n; ++v) {
    const auto kv = in.agent_objectives(v);
    LOCMM_CHECK_MSG(kv.size() == 1,
                    "agent " << v << " has |Kv| = " << kv.size()
                             << "; run §4.4 first");
    gamma[static_cast<std::size_t>(v)] = kv[0].coeff;
  }

  InstanceBuilder b(n);
  for (ConstraintId i = 0; i < in.num_constraints(); ++i) {
    std::vector<Entry> out;
    for (const Entry& e : in.constraint_row(i))
      out.push_back({e.agent, e.coeff / gamma[static_cast<std::size_t>(e.agent)]});
    b.add_constraint(std::move(out));
  }
  for (ObjectiveId k = 0; k < in.num_objectives(); ++k) {
    std::vector<Entry> out;
    for (const Entry& e : in.objective_row(k)) out.push_back({e.agent, 1.0});
    b.add_objective(std::move(out));
  }

  step.instance = b.build();
  step.back = [gamma = std::move(gamma)](std::span<const double> xp) {
    LOCMM_CHECK(xp.size() == gamma.size());
    std::vector<double> x(xp.size());
    for (std::size_t v = 0; v < xp.size(); ++v) x[v] = xp[v] / gamma[v];
    return x;
  };
  return step;
}

}  // namespace locmm
