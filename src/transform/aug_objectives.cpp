// §4.5: augment singleton objectives.
//
// Every objective k with |Vk| = 1 has its unique agent v split into two
// halves t, u with c_kt = c_ku = c_kv / 2, and each constraint mentioning
// split agents is replicated over the cartesian product of the halves.  The
// optimum is preserved (halves can be equalised to their maximum, as every
// combination has its own constraint replica).  Requires |Kv| == 1 (§4.4).
#include <vector>

#include "transform/transform.hpp"

namespace locmm {

TransformStep augment_singleton_objectives(const MaxMinInstance& in) {
  TransformStep step;
  step.name = "§4.5 augment singleton objectives";
  step.ratio_factor = 1.0;

  const std::int32_t n0 = in.num_agents();
  InstanceBuilder b;

  // halves_of[v]: {v'} for unsplit agents, {t, u} for split ones.
  std::vector<std::vector<AgentId>> halves_of(static_cast<std::size_t>(n0));
  for (AgentId v = 0; v < n0; ++v) {
    const auto kv = in.agent_objectives(v);
    LOCMM_CHECK_MSG(kv.size() == 1,
                    "agent " << v << " has |Kv| = " << kv.size()
                             << "; run §4.4 first");
    const bool split = in.objective_row(kv[0].row).size() == 1;
    auto& halves = halves_of[static_cast<std::size_t>(v)];
    halves.push_back(b.add_agent());
    if (split) halves.push_back(b.add_agent());
  }

  for (ConstraintId i = 0; i < in.num_constraints(); ++i) {
    const auto row = in.constraint_row(i);
    std::vector<std::size_t> idx(row.size(), 0);
    for (;;) {
      std::vector<Entry> out;
      out.reserve(row.size());
      for (std::size_t p = 0; p < row.size(); ++p) {
        const auto& halves = halves_of[static_cast<std::size_t>(row[p].agent)];
        out.push_back({halves[idx[p]], row[p].coeff});
      }
      b.add_constraint(std::move(out));
      std::size_t p = 0;
      while (p < row.size()) {
        const auto& halves = halves_of[static_cast<std::size_t>(row[p].agent)];
        if (++idx[p] < halves.size()) break;
        idx[p] = 0;
        ++p;
      }
      if (p == row.size()) break;
    }
  }

  for (ObjectiveId k = 0; k < in.num_objectives(); ++k) {
    const auto row = in.objective_row(k);
    std::vector<Entry> out;
    for (const Entry& e : in.objective_row(k)) {
      const auto& halves = halves_of[static_cast<std::size_t>(e.agent)];
      if (halves.size() == 1) {
        out.push_back({halves[0], e.coeff});
      } else {
        LOCMM_CHECK(row.size() == 1);  // only singleton objectives split
        out.push_back({halves[0], e.coeff / 2.0});
        out.push_back({halves[1], e.coeff / 2.0});
      }
    }
    b.add_objective(std::move(out));
  }

  step.instance = b.build();
  step.back = [halves_of = std::move(halves_of)](std::span<const double> xp) {
    std::vector<double> x(halves_of.size(), 0.0);
    for (std::size_t v = 0; v < halves_of.size(); ++v) {
      double best = 0.0;
      for (AgentId c : halves_of[v])
        best = std::max(best, xp[static_cast<std::size_t>(c)]);
      x[v] = best;
    }
    return x;
  };
  return step;
}

}  // namespace locmm
