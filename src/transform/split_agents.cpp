// §4.4: associate a unique objective with each agent.
//
// Every agent v with |Kv| > 1 becomes |Kv| copies, one per incident
// objective; every constraint mentioning split agents is replicated over the
// cartesian product of its members' copies (applying the paper's per-agent
// replacement to all agents simultaneously).  The optimum is preserved: any
// solution of the original lifts by duplication, and conversely the copies
// of v can be equalised to their maximum without violating anything, since
// every combination of copies has its own constraint replica.
#include <vector>

#include "transform/transform.hpp"

namespace locmm {

TransformStep split_agents_per_objective(const MaxMinInstance& in) {
  TransformStep step;
  step.name = "§4.4 split agents per objective";
  step.ratio_factor = 1.0;

  const std::int32_t n0 = in.num_agents();
  InstanceBuilder b;

  // copies_of[v][j] = id of the copy of v associated with v's j-th
  // objective port.  Agents with |Kv| == 1 keep a single copy.
  std::vector<std::vector<AgentId>> copies_of(static_cast<std::size_t>(n0));
  for (AgentId v = 0; v < n0; ++v) {
    const auto kv = in.agent_objectives(v);
    LOCMM_CHECK_MSG(!kv.empty(), "agent " << v << " has no objective");
    auto& copies = copies_of[static_cast<std::size_t>(v)];
    copies.resize(kv.size());
    for (std::size_t j = 0; j < kv.size(); ++j) copies[j] = b.add_agent();
  }

  // Constraints: cartesian product over members' copies (odometer).
  for (ConstraintId i = 0; i < in.num_constraints(); ++i) {
    const auto row = in.constraint_row(i);
    std::vector<std::size_t> idx(row.size(), 0);
    for (;;) {
      std::vector<Entry> out;
      out.reserve(row.size());
      for (std::size_t p = 0; p < row.size(); ++p) {
        const auto& copies = copies_of[static_cast<std::size_t>(row[p].agent)];
        out.push_back({copies[idx[p]], row[p].coeff});
      }
      b.add_constraint(std::move(out));
      // Advance the odometer.
      std::size_t p = 0;
      while (p < row.size()) {
        const auto& copies = copies_of[static_cast<std::size_t>(row[p].agent)];
        if (++idx[p] < copies.size()) break;
        idx[p] = 0;
        ++p;
      }
      if (p == row.size()) break;
    }
  }

  // Objectives: each original row keeps its coefficients, with every member
  // replaced by the copy associated with this objective.
  for (ObjectiveId k = 0; k < in.num_objectives(); ++k) {
    std::vector<Entry> out;
    for (const Entry& e : in.objective_row(k)) {
      const auto kv = in.agent_objectives(e.agent);
      AgentId copy = -1;
      for (std::size_t j = 0; j < kv.size(); ++j) {
        if (kv[j].row == k) {
          copy = copies_of[static_cast<std::size_t>(e.agent)][j];
          break;
        }
      }
      LOCMM_CHECK_MSG(copy >= 0, "inconsistent incidence for agent "
                                     << e.agent << " objective " << k);
      out.push_back({copy, e.coeff});
    }
    b.add_objective(std::move(out));
  }

  step.instance = b.build();
  step.back = [copies_of = std::move(copies_of)](std::span<const double> xp) {
    std::vector<double> x(copies_of.size(), 0.0);
    for (std::size_t v = 0; v < copies_of.size(); ++v) {
      double best = 0.0;
      for (AgentId c : copies_of[v])
        best = std::max(best, xp[static_cast<std::size_t>(c)]);
      x[v] = best;
    }
    return x;
  };
  return step;
}

}  // namespace locmm
