// pipeline.cpp -- the composed §4.2 -> §4.6 reduction and the special-form
// contract checks used by the §5 algorithm.
#include <cmath>

#include "transform/transform.hpp"

namespace locmm {

std::vector<double> Pipeline::map_back(std::span<const double> x_special) const {
  // The id map's closed form, not the step closures: bitwise equal on a
  // freshly built pipeline (tests/transform_test.cpp pins the two against
  // each other), and the only one that stays correct after fast-path edits
  // updated PipelineIdMap::gamma in place.
  return id_map.map_back(x_special);
}

Pipeline to_special_form(const MaxMinInstance& in) {
  in.validate();
  Pipeline p;
  p.steps.push_back(augment_singleton_constraints(in));
  p.steps.push_back(reduce_constraint_degree(p.steps.back().instance));
  p.steps.push_back(split_agents_per_objective(p.steps.back().instance));
  p.steps.push_back(augment_singleton_objectives(p.steps.back().instance));
  p.steps.push_back(normalize_objective_coeffs(p.steps.back().instance));
  p.special = p.steps.back().instance;
  for (const TransformStep& s : p.steps) p.ratio_factor *= s.ratio_factor;
  p.id_map = build_pipeline_id_map(in, p.steps);
  check_special_form(p.special);
  return p;
}

void check_special_form(const MaxMinInstance& inst, double tol) {
  inst.validate();
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i) {
    LOCMM_CHECK_MSG(inst.constraint_row(i).size() == 2,
                    "special form violated: |V_" << i << "| = "
                        << inst.constraint_row(i).size() << " != 2");
  }
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    const auto row = inst.objective_row(k);
    LOCMM_CHECK_MSG(row.size() >= 2, "special form violated: |V_k" << k
                                         << "| = " << row.size() << " < 2");
    for (const Entry& e : row) {
      LOCMM_CHECK_MSG(std::abs(e.coeff - 1.0) <= tol,
                      "special form violated: c_{" << k << "," << e.agent
                          << "} = " << e.coeff << " != 1");
    }
  }
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    LOCMM_CHECK_MSG(inst.agent_objectives(v).size() == 1,
                    "special form violated: |K_" << v << "| = "
                        << inst.agent_objectives(v).size() << " != 1");
    LOCMM_CHECK_MSG(!inst.agent_constraints(v).empty(),
                    "special form violated: |I_" << v << "| = 0");
  }
}

bool is_special_form(const MaxMinInstance& inst, double tol) {
  try {
    check_special_form(inst, tol);
    return true;
  } catch (const CheckError&) {
    return false;
  }
}

}  // namespace locmm
