// transform.hpp -- the local transformations of paper §4.
//
// Five rewrites reduce an arbitrary max-min LP to the *special form* required
// by the §5 algorithm:
//   §4.2 augment_singleton_constraints : |Vi| >= 2 afterwards (cycle gadget)
//   §4.3 reduce_constraint_degree      : |Vi| == 2 afterwards (pairwise rows;
//                                        costs a factor delta_I/2)
//   §4.4 split_agents_per_objective    : |Kv| == 1 afterwards (agent copies)
//   §4.5 augment_singleton_objectives  : |Vk| >= 2 afterwards (agent halves)
//   §4.6 normalize_objective_coeffs    : c_kv == 1 afterwards (rescale x)
//
// Each step returns the rewritten instance plus a *back-map* taking any
// feasible solution of the rewritten instance to a feasible solution of the
// input instance, with the utility accounting of the paper (§4: "description,
// mapping back, implications to approximability").  The steps are local
// rewrites in the sense of §4.1 -- each output row depends only on a
// constant-radius neighbourhood of the input -- which we realise here as
// whole-instance passes with deterministic output order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "lp/delta.hpp"
#include "lp/instance.hpp"

namespace locmm {

using BackMap = std::function<std::vector<double>(std::span<const double>)>;

struct TransformStep {
  std::string name;
  MaxMinInstance instance;   // rewritten instance
  BackMap back;              // solution of `instance` -> solution of input
  double ratio_factor = 1.0; // approximation-ratio multiplier of this step
};

TransformStep augment_singleton_constraints(const MaxMinInstance& in);  // §4.2
TransformStep reduce_constraint_degree(const MaxMinInstance& in);       // §4.3
TransformStep split_agents_per_objective(const MaxMinInstance& in);     // §4.4
TransformStep augment_singleton_objectives(const MaxMinInstance& in);   // §4.5
TransformStep normalize_objective_coeffs(const MaxMinInstance& in);     // §4.6

// An original-instance delta translated through the §4.2 -> §4.6 id map
// into special-form coordinates (PipelineIdMap::map_delta).
struct MappedDelta {
  // The special-form image of the batch: same removes/adds/coeff-edit
  // structure, rows and agents renamed through the composed images,
  // constraint coefficients divided by the agents' post-edit §4.6 scale and
  // objective coefficients pinned to 1.
  InstanceDelta special;
  // (special agent, new gamma) pairs for agents whose §4.6 scale the batch
  // changed.  Fold into PipelineIdMap::gamma (apply_gamma_updates) once the
  // mapped delta committed downstream -- map_back reads gamma, so skipping
  // this leaves the back-map dividing by stale scales.
  std::vector<std::pair<AgentId, double>> gamma_updates;
};

// Persistent old-id -> new-id map of the composed §4.2 -> §4.6 pipeline.
//
// Every stage expands its input in input order (gadgets, pairwise rows,
// copies, halves are APPENDED; original objective-row ids survive all five
// stages untouched), so the final image of each original id is a CONTIGUOUS
// range of special ids: original agent v owns the special agents
// [agent_first[v], agent_first[v] + agent_count[v]) (its §4.4 copies x §4.5
// halves, copies-major) and original constraint row i owns the special rows
// [con_first[i], con_first[i] + con_count[i]) (its §4.3 pairwise pieces x
// §4.4/§4.5 replicas).
//
// The map turns an original-instance membership edit into a special-form
// structural delta (map_delta) WITHOUT re-running the pipeline, whenever the
// edit provably leaves the pipeline's numbering fixed -- the "fast path"
// conditions, each of which pins one way the stages could renumber:
//   * touched constraint rows: not gadget-carrying (§4.2), pre-size 2 with
//     zero growth (§4.3 emits no pairwise split), singly-imaged (§4.4/§4.5
//     emit no replicas);
//   * touched agents: outside every gadget's big-M support (§4.2 computes M
//     from their capacities), singly-imaged (|Kv| = 1 and un-halved), zero
//     objective-membership growth (§4.4 copy counts are |Kv|);
//   * touched objective rows: not a gadget's reference row, size >= 2 before
//     and after (§4.5 splits exactly the singleton rows).
// Under these, multiplicities (gadgets, pairwise splits, copies, halves)
// are unchanged for every id, all prefix sums -- and hence this map itself,
// except gamma -- stay valid, and the maintained special instance after the
// mapped delta is bitwise what the scratch pipeline produces on the edited
// original (pinned by tests/solver_api_test.cpp).  Edits outside the fast
// path return nullopt and the caller falls back to re-running the pipeline.
struct PipelineIdMap {
  // Composed images of ORIGINAL ids (see above).
  std::vector<std::int32_t> agent_first, agent_count;
  std::vector<std::int32_t> con_first, con_count;
  // §4.3 back-map divisor per original agent: max(2, max_{i in Iv} |Vi|).
  std::vector<double> divisor;
  // §4.6 scale per SPECIAL agent: the objective coefficient its variable
  // was multiplied by.  The only mutable piece of the map: fast-path edits
  // that change an agent's objective coefficient update it via
  // apply_gamma_updates.
  std::vector<double> gamma;
  // §4.2 sensitivity over original ids: singleton constraint rows (they
  // carry the gadget edge), the gadgets' reference objective rows, and the
  // agents whose capacities enter a gadget's big-M.
  std::vector<std::uint8_t> row_gadget;       // per original constraint row
  std::vector<std::uint8_t> agent_sensitive;  // per original agent
  std::vector<std::uint8_t> obj_sensitive;    // per original objective row
  bool has_gadgets = false;

  // Maps `delta` (validated against `orig`, the pre-edit original) into
  // special-form coordinates, or nullopt when any touched id fails the
  // fast-path conditions above.  Never mutates; O(batch * row degree +
  // touched-agent image degree).
  std::optional<MappedDelta> map_delta(const InstanceDelta& delta,
                                       const MaxMinInstance& orig) const;

  // Folds a committed mapped delta's gamma changes into the map.
  void apply_gamma_updates(const MappedDelta& mapped);

  // Closed-form composed back-map: x[v] = 2 * max(0, max_h xs[h] /
  // gamma[h]) / divisor[v] over v's flattened image span.  Bitwise equal to
  // folding the five step closures in reverse, but reads THIS map's gamma
  // -- after fast-path edits the step closures hold stale coefficients and
  // this is the only correct back-map.
  std::vector<double> map_back(std::span<const double> x_special) const;
};

// Builds the composed id map from the original instance and the five
// executed steps (to_special_form calls this; exposed for tests).
PipelineIdMap build_pipeline_id_map(const MaxMinInstance& in,
                                    const std::vector<TransformStep>& steps);

// The composed pipeline §4.2 -> §4.6.
struct Pipeline {
  MaxMinInstance special;            // final special-form instance
  std::vector<TransformStep> steps;  // in application order
  PipelineIdMap id_map;              // composed old-id -> new-id map
  double ratio_factor = 1.0;         // product of step factors (= delta_I/2)

  // Maps a solution of `special` back to the original instance, via the
  // id map's closed form (== folding steps' closures in reverse, except it
  // stays correct after fast-path edits updated gamma; the closures are
  // kept for the per-stage transform tests).
  std::vector<double> map_back(std::span<const double> x_special) const;
};

Pipeline to_special_form(const MaxMinInstance& in);

// Checks the §5 preconditions: |Vi| == 2, |Vk| >= 2, |Kv| == 1, |Iv| >= 1,
// c_kv == 1 (within tol).  Throws CheckError describing the first violation.
void check_special_form(const MaxMinInstance& inst, double tol = 1e-12);

bool is_special_form(const MaxMinInstance& inst, double tol = 1e-12);

}  // namespace locmm
