// transform.hpp -- the local transformations of paper §4.
//
// Five rewrites reduce an arbitrary max-min LP to the *special form* required
// by the §5 algorithm:
//   §4.2 augment_singleton_constraints : |Vi| >= 2 afterwards (cycle gadget)
//   §4.3 reduce_constraint_degree      : |Vi| == 2 afterwards (pairwise rows;
//                                        costs a factor delta_I/2)
//   §4.4 split_agents_per_objective    : |Kv| == 1 afterwards (agent copies)
//   §4.5 augment_singleton_objectives  : |Vk| >= 2 afterwards (agent halves)
//   §4.6 normalize_objective_coeffs    : c_kv == 1 afterwards (rescale x)
//
// Each step returns the rewritten instance plus a *back-map* taking any
// feasible solution of the rewritten instance to a feasible solution of the
// input instance, with the utility accounting of the paper (§4: "description,
// mapping back, implications to approximability").  The steps are local
// rewrites in the sense of §4.1 -- each output row depends only on a
// constant-radius neighbourhood of the input -- which we realise here as
// whole-instance passes with deterministic output order.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "lp/instance.hpp"

namespace locmm {

using BackMap = std::function<std::vector<double>(std::span<const double>)>;

struct TransformStep {
  std::string name;
  MaxMinInstance instance;   // rewritten instance
  BackMap back;              // solution of `instance` -> solution of input
  double ratio_factor = 1.0; // approximation-ratio multiplier of this step
};

TransformStep augment_singleton_constraints(const MaxMinInstance& in);  // §4.2
TransformStep reduce_constraint_degree(const MaxMinInstance& in);       // §4.3
TransformStep split_agents_per_objective(const MaxMinInstance& in);     // §4.4
TransformStep augment_singleton_objectives(const MaxMinInstance& in);   // §4.5
TransformStep normalize_objective_coeffs(const MaxMinInstance& in);     // §4.6

// The composed pipeline §4.2 -> §4.6.
struct Pipeline {
  MaxMinInstance special;            // final special-form instance
  std::vector<TransformStep> steps;  // in application order
  double ratio_factor = 1.0;         // product of step factors (= delta_I/2)

  // Maps a solution of `special` back to the original instance.
  std::vector<double> map_back(std::span<const double> x_special) const;
};

Pipeline to_special_form(const MaxMinInstance& in);

// Checks the §5 preconditions: |Vi| == 2, |Vk| >= 2, |Kv| == 1, |Iv| >= 1,
// c_kv == 1 (within tol).  Throws CheckError describing the first violation.
void check_special_form(const MaxMinInstance& inst, double tol = 1e-12);

bool is_special_form(const MaxMinInstance& inst, double tol = 1e-12);

}  // namespace locmm
