// §4.2: augment singleton constraints.
//
// Every constraint i with |Vi| = 1 is completed to degree 2 by attaching a
// six-node gadget: agents s, t, u, objectives h, l, constraint j, wired as
// the cycle s-h-t-j-u-l-s, with s also joining the original constraint i.
// The objective coefficients c_ht = c_lu = M are chosen so large (twice an
// upper bound on any achievable utility, computed from an objective k
// adjacent to the original agent) that setting x_t = x_u = 1/2, x_s = 0
// satisfies the gadget objectives at value >= optimum; hence the optimum is
// unchanged and any approximation ratio is preserved.
#include <algorithm>
#include <limits>

#include "transform/transform.hpp"

namespace locmm {

TransformStep augment_singleton_constraints(const MaxMinInstance& in) {
  TransformStep step;
  step.name = "§4.2 augment singleton constraints";
  step.ratio_factor = 1.0;

  const std::int32_t n0 = in.num_agents();
  InstanceBuilder b(n0);

  // Copy all objective rows verbatim first (original objectives keep their
  // ids; gadget objectives are appended).  Constraint rows are rebuilt so
  // that the modified row for each singleton constraint lands at the
  // original row position (the gadget edge is appended as the *last* port of
  // i, matching the paper's "the edge {i, s} ... is the last edge").
  // Per-agent upper-bound cache: min_{i in Iv} 1/a_iv.
  std::vector<double> inv_cap(static_cast<std::size_t>(n0),
                              std::numeric_limits<double>::infinity());
  for (AgentId v = 0; v < n0; ++v) {
    for (const Incidence& inc : in.agent_constraints(v)) {
      inv_cap[static_cast<std::size_t>(v)] =
          std::min(inv_cap[static_cast<std::size_t>(v)], 1.0 / inc.coeff);
    }
  }

  struct Gadget {
    ConstraintId i;
    AgentId s, t, u;
    double big;  // M = 2 * sum_{w in Vk} c_kw min_{i' in Iw} 1/a_i'w
  };
  std::vector<Gadget> gadgets;
  for (ConstraintId i = 0; i < in.num_constraints(); ++i) {
    if (in.constraint_row(i).size() != 1) continue;
    const AgentId v = in.constraint_row(i)[0].agent;
    // k = the first objective adjacent to v (port order => deterministic).
    LOCMM_CHECK(!in.agent_objectives(v).empty());
    const ObjectiveId k = in.agent_objectives(v)[0].row;
    double bound = 0.0;
    for (const Entry& e : in.objective_row(k))
      bound += e.coeff * inv_cap[static_cast<std::size_t>(e.agent)];
    Gadget gd;
    gd.i = i;
    gd.s = b.add_agent();
    gd.t = b.add_agent();
    gd.u = b.add_agent();
    gd.big = 2.0 * bound;
    gadgets.push_back(gd);
  }

  // Constraint rows.
  std::size_t gi = 0;
  for (ConstraintId i = 0; i < in.num_constraints(); ++i) {
    auto row = in.constraint_row(i);
    std::vector<Entry> out(row.begin(), row.end());
    if (gi < gadgets.size() && gadgets[gi].i == i) {
      out.push_back({gadgets[gi].s, 1.0});  // a_is = 1, last port of i
      ++gi;
    }
    b.add_constraint(std::move(out));
  }
  for (const Gadget& gd : gadgets) {
    b.add_constraint({{gd.t, 1.0}, {gd.u, 1.0}});  // j: a_jt = a_ju = 1
  }

  // Objective rows: originals verbatim, then h and l per gadget.
  for (ObjectiveId k = 0; k < in.num_objectives(); ++k) {
    auto row = in.objective_row(k);
    b.add_objective(std::vector<Entry>(row.begin(), row.end()));
  }
  for (const Gadget& gd : gadgets) {
    b.add_objective({{gd.s, 1.0}, {gd.t, gd.big}});  // h
    b.add_objective({{gd.s, 1.0}, {gd.u, gd.big}});  // l
  }

  step.instance = b.build();
  step.back = [n0](std::span<const double> xp) {
    LOCMM_CHECK(static_cast<std::int32_t>(xp.size()) >= n0);
    return std::vector<double>(xp.begin(), xp.begin() + n0);
  };
  return step;
}

}  // namespace locmm
