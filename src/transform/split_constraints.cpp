// §4.3: reduce constraint degree to exactly 2.
//
// Every constraint i with |Vi| > 2 is replaced by the C(|Vi|, 2) pairwise
// constraints a_iu x_u + a_iv x_v <= 1.  Mapping back divides each agent's
// value by max_{i in Iv} |Vi| / 2 (paper eq. (4)); the step costs a factor
// delta_I / 2 in the approximation ratio -- the only lossy step of the
// pipeline, and the source of the delta_I term in Theorem 1.
#include <algorithm>

#include "transform/transform.hpp"

namespace locmm {

TransformStep reduce_constraint_degree(const MaxMinInstance& in) {
  TransformStep step;
  step.name = "§4.3 reduce constraint degree";

  const std::int32_t n = in.num_agents();
  InstanceBuilder b(n);

  std::int32_t delta_i = 2;
  for (ConstraintId i = 0; i < in.num_constraints(); ++i) {
    const auto row = in.constraint_row(i);
    LOCMM_CHECK_MSG(row.size() >= 2,
                    "constraint " << i << " has degree " << row.size()
                                  << "; run §4.2 first");
    delta_i = std::max(delta_i, static_cast<std::int32_t>(row.size()));
    if (row.size() == 2) {
      b.add_constraint(std::vector<Entry>(row.begin(), row.end()));
    } else {
      for (std::size_t p = 0; p < row.size(); ++p) {
        for (std::size_t q = p + 1; q < row.size(); ++q) {
          b.add_constraint({row[p], row[q]});
        }
      }
    }
  }
  for (ObjectiveId k = 0; k < in.num_objectives(); ++k) {
    auto row = in.objective_row(k);
    b.add_objective(std::vector<Entry>(row.begin(), row.end()));
  }

  // Per-agent divisor: max_{i in Iv} |Vi| (>= 2 after §4.2).
  std::vector<double> divisor(static_cast<std::size_t>(n), 2.0);
  for (AgentId v = 0; v < n; ++v) {
    for (const Incidence& inc : in.agent_constraints(v)) {
      divisor[static_cast<std::size_t>(v)] = std::max(
          divisor[static_cast<std::size_t>(v)],
          static_cast<double>(in.constraint_row(inc.row).size()));
    }
  }

  step.instance = b.build();
  step.ratio_factor = static_cast<double>(delta_i) / 2.0;
  step.back = [divisor = std::move(divisor)](std::span<const double> xp) {
    LOCMM_CHECK(xp.size() == divisor.size());
    std::vector<double> x(xp.size());
    for (std::size_t v = 0; v < xp.size(); ++v)
      x[v] = 2.0 * xp[v] / divisor[v];
    return x;
  };
  return step;
}

}  // namespace locmm
