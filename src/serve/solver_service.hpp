// solver_service.hpp -- a long-lived multi-tenant serving front for the
// incremental solver (the ROADMAP's "SolverService" item; paper §1.3 is
// what makes it viable: every edit re-solves a radius-D(R) ball, so one
// process can serve many mutating instances).
//
// Each tenant owns one engine-L IncrementalSolver (its COMMITTED state: the
// solution every query answers from) plus a bounded queue of admitted but
// not yet applied delta batches.  The design makes every failure mode a
// contained, reported outcome:
//
//   * admission -- submit() dry-runs the batch against the tenant's
//     PROJECTED instance (committed + queued, maintained as a shadow
//     SpecialFormInstance) via check_applicable.  A malformed batch comes
//     back as ServeCode::kMalformedDelta with the violation messages; the
//     projection makes admission exact for queued work: the front batch is
//     always applicable to the committed state, by induction.
//   * backpressure -- the queue is bounded (TenantLimits::max_queued_batches).
//     A batch whose dirty footprint overlaps the queue tail coalesces into
//     it when the merge is order-equivalent: coefficient edits last-write-
//     wins (always safe), and STRUCTURAL batches concatenate their remove /
//     add lists whenever nothing the new batch removes was added or
//     coefficient-edited by the tail (and the merged batch stays within
//     max_batch_edits) -- equivalent to applying both in order, one re-solve
//     instead of two, committing the same state bitwise.  Otherwise a full
//     queue sheds the batch as kQueueFull.  Counters track accepted /
//     rejected / coalesced / shed.
//   * deadlines -- drain() applies queued batches to the committed solver,
//     each under TenantLimits::apply_budget_us.  An expired budget abandons
//     that batch TRANSACTIONALLY (IncrementalSolver::apply rolls back
//     bitwise) and returns kDeadlineExceeded; the batch stays queued,
//     queries keep answering from the last committed epoch with
//     QueryResult::stale set, and repair_idle() -- the idle-cycle hook --
//     re-drains without budgets.
//   * taxonomy -- no exception crosses this boundary.  CheckError inside a
//     drain (impossible if the admission induction holds) is counted,
//     reported as kInternal, and contained by dropping the tenant's queue
//     and resynchronizing the projection from the committed state.
//
// Thread safety: the tenant map is under a shared_mutex, each tenant under
// its own mutex, so distinct tenants submit / drain / query fully in
// parallel (the serve chaos suite runs this under TSan); calls on the SAME
// tenant serialize.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "dynamic/incremental_solver.hpp"
#include "serve/serve_status.hpp"

namespace locmm {

struct TenantLimits {
  std::int64_t max_batch_edits = 256;   // submit: larger batches rejected
  std::int64_t max_queued_batches = 8;  // backpressure bound
  double apply_budget_us = 0.0;         // drain budget per batch; 0 = none
};

struct TenantOptions {
  std::int32_t R = 4;
  TSearchOptions t_search = {};
  std::size_t threads = 1;
  TenantLimits limits;
};

struct TenantStats {
  std::uint64_t committed_epoch = 0;  // batches committed into the solver
  std::int64_t queued_batches = 0;
  std::int64_t queued_edits = 0;
  std::int64_t accepted = 0;           // admitted batches (incl. coalesced)
  std::int64_t coalesced = 0;          // ...merged into a queued batch
  std::int64_t rejected_malformed = 0;
  std::int64_t rejected_oversized = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t deadline_aborts = 0;    // transactional drain abandonments
  std::int64_t internal_errors = 0;    // contained CheckError escapes
};

struct QueryResult {
  double value = 0.0;
  // Committed state lags admitted edits (a deadline abort or an un-drained
  // queue); the answer is exact for the last committed epoch.
  bool stale = false;
  std::uint64_t epoch = 0;
};

class SolverService {
 public:
  SolverService() = default;
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  // Registers `name` with a cold solve of `special` (must satisfy the §4
  // special form; anything else is kInvalidArgument, not a throw).
  ServeStatus create_tenant(const std::string& name,
                            const MaxMinInstance& special,
                            const TenantOptions& opt = {});
  ServeStatus drop_tenant(const std::string& name);
  std::vector<std::string> tenant_names() const;

  // Admission + enqueue; never re-solves (see drain).  Empty deltas are
  // trivially kOk.
  ServeStatus submit(const std::string& name, const InstanceDelta& delta);

  // Applies the tenant's queued batches to its committed solver, each under
  // the per-batch deadline budget (when configured).  Stops at the first
  // deadline abandonment with kDeadlineExceeded; kOk means the queue
  // drained fully.
  ServeStatus drain(const std::string& name);

  // Idle-cycle repair: drains every tenant WITHOUT budgets, so batches a
  // deadline kept abandoning eventually commit.  Returns the number of
  // batches committed across all tenants.
  std::int64_t repair_idle();

  // Point queries, answered from the committed epoch (never recompute, so
  // they are cheap and never throw; `stale` flags a lagging queue).
  ServeStatus query_x(const std::string& name, AgentId agent,
                      QueryResult* out) const;
  ServeStatus utility(const std::string& name, QueryResult* out) const;

  ServeStatus stats(const std::string& name, TenantStats* out) const;

 private:
  struct Tenant {
    mutable std::mutex mu;
    TenantOptions opt;
    std::unique_ptr<IncrementalSolver> solver;       // committed state
    std::unique_ptr<SpecialFormInstance> projected;  // committed + queued
    std::deque<InstanceDelta> queue;
    TenantStats stats;
  };

  std::shared_ptr<Tenant> find(const std::string& name) const;
  // Drains one tenant (tenant->mu must be held); with_budget selects the
  // per-batch deadline.  Commits are counted into *committed when set.
  ServeStatus drain_locked(Tenant& t, bool with_budget,
                           std::int64_t* committed = nullptr);

  mutable std::shared_mutex map_mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace locmm
