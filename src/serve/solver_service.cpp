#include "serve/solver_service.hpp"

#include <algorithm>
#include <unordered_set>

namespace locmm {

namespace {

std::string join_violations(const std::vector<std::string>& v) {
  std::string msg = v.front();
  if (v.size() > 1) {
    msg += " (+" + std::to_string(v.size() - 1) + " more)";
  }
  return msg;
}

std::uint64_t row_key(RowKind k, std::int32_t row) {
  return (static_cast<std::uint64_t>(k == RowKind::kObjective) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(row));
}

std::uint64_t edge_key(RowKind k, std::int32_t row, AgentId agent) {
  return (static_cast<std::uint64_t>(k == RowKind::kObjective) << 63) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(agent));
}

// Conservative proxy for "the dirty balls overlap": the two batches share a
// touched row or a touched agent (shared seeds => shared balls; disjoint
// seeds CAN still give overlapping balls, which only costs a second
// re-solve, never correctness).
bool footprints_overlap(const InstanceDelta& a, const InstanceDelta& b) {
  std::unordered_set<std::uint64_t> rows;
  std::unordered_set<std::int64_t> agents;
  a.for_each_touched_edge([&](RowKind k, std::int32_t row, AgentId agent) {
    rows.insert(row_key(k, row));
    agents.insert(agent);
  });
  bool hit = false;
  b.for_each_touched_edge([&](RowKind k, std::int32_t row, AgentId agent) {
    if (rows.count(row_key(k, row)) != 0 || agents.count(agent) != 0) {
      hit = true;
    }
  });
  return hit;
}

// Merges the coefficient-only batch `add` into the coefficient-only batch
// `into`: the last write per (kind, row, agent) wins, which is exactly what
// applying the two batches in order would compute -- one re-solve instead
// of two.  Edits apply in vector order, and one batch may hit the same
// entry twice, so the overwrite must target the LAST occurrence in `into`
// (an earlier one would be shadowed by into's own later duplicate).
void coalesce_coeff_batch(InstanceDelta& into, const InstanceDelta& add) {
  for (const CoeffEdit& e : add.coeff_edits) {
    const auto rit =
        std::find_if(into.coeff_edits.rbegin(), into.coeff_edits.rend(),
                     [&](const CoeffEdit& q) {
                       return q.kind == e.kind && q.row == e.row &&
                              q.agent == e.agent;
                     });
    if (rit != into.coeff_edits.rend()) {
      rit->coeff = e.coeff;
    } else {
      into.coeff_edits.push_back(e);
    }
  }
}

// Whether `add` may merge into the queue tail `tail`.  Coefficient-only
// pairs always can (the legacy path).  A STRUCTURAL merge concatenates the
// remove and add lists, which reorders add's removes ahead of tail's adds
// and coefficient edits; that is a no-op exactly when nothing `add` removes
// was added or coefficient-edited by `tail`.  Then, because removes are
// ordered erases and adds append at the row end, the merged batch applied
// to the pre-tail state touches the same entries and leaves every row in
// the same final entry order as applying the two batches in sequence --
// one re-solve, bitwise the same committed state.  (The converse overlaps
// are impossible past admission: `add` cannot re-add what `tail` added or
// remove what `tail` removed, since it was validated against the projected
// instance with `tail` already applied.)  Structural merges also respect
// max_batch_edits, so a coalesced batch never exceeds what submit() would
// admit outright.
bool coalescible(const InstanceDelta& tail, const InstanceDelta& add,
                 std::int64_t max_batch_edits) {
  if (!tail.structural() && !add.structural()) return true;
  if (static_cast<std::int64_t>(tail.size() + add.size()) > max_batch_edits) {
    return false;
  }
  std::unordered_set<std::uint64_t> pinned;
  for (const MembershipEdit& e : tail.adds) {
    pinned.insert(edge_key(e.kind, e.row, e.agent));
  }
  for (const CoeffEdit& e : tail.coeff_edits) {
    pinned.insert(edge_key(e.kind, e.row, e.agent));
  }
  for (const MembershipEdit& e : add.removes) {
    if (pinned.count(edge_key(e.kind, e.row, e.agent)) != 0) return false;
  }
  return true;
}

// Merges `add` into `into` (coalescible() must hold): removes and adds
// concatenate in admission order, coefficient edits last-write-wins.
void coalesce_batch(InstanceDelta& into, const InstanceDelta& add) {
  into.removes.insert(into.removes.end(), add.removes.begin(),
                      add.removes.end());
  into.adds.insert(into.adds.end(), add.adds.begin(), add.adds.end());
  coalesce_coeff_batch(into, add);
}

}  // namespace

std::shared_ptr<SolverService::Tenant> SolverService::find(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

ServeStatus SolverService::create_tenant(const std::string& name,
                                         const MaxMinInstance& special,
                                         const TenantOptions& opt) {
  if (name.empty()) {
    return ServeStatus::Error(ServeCode::kInvalidArgument,
                              "empty tenant name");
  }
  if (find(name) != nullptr) {
    return ServeStatus::Error(ServeCode::kTenantExists,
                              "tenant '" + name + "' already exists");
  }
  auto t = std::make_shared<Tenant>();
  t->opt = opt;
  // The cold solve runs outside every lock (it can be the expensive part of
  // the call); a non-special-form instance is the caller's problem, so the
  // construction-time CheckError comes back as a status, not a throw.
  try {
    IncrementalSolver::Options sopt;
    sopt.R = opt.R;
    sopt.t_search = opt.t_search;
    sopt.threads = opt.threads;
    sopt.engine = DynamicEngine::kMemoizedDp;
    t->solver = std::make_unique<IncrementalSolver>(special, sopt);
    t->projected = std::make_unique<SpecialFormInstance>(special);
  } catch (const CheckError& e) {
    return ServeStatus::Error(ServeCode::kInvalidArgument,
                              std::string("instance rejected: ") + e.what());
  }
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  const auto [it, inserted] = tenants_.emplace(name, std::move(t));
  if (!inserted) {
    return ServeStatus::Error(ServeCode::kTenantExists,
                              "tenant '" + name + "' already exists");
  }
  return ServeStatus::Ok();
}

ServeStatus SolverService::drop_tenant(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  // In-flight calls holding the shared_ptr finish safely; the map simply
  // stops handing the tenant out.
  if (tenants_.erase(name) == 0) {
    return ServeStatus::Error(ServeCode::kUnknownTenant,
                              "no tenant '" + name + "'");
  }
  return ServeStatus::Ok();
}

std::vector<std::string> SolverService::tenant_names() const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) names.push_back(name);
  return names;
}

ServeStatus SolverService::submit(const std::string& name,
                                  const InstanceDelta& delta) {
  const std::shared_ptr<Tenant> t = find(name);
  if (t == nullptr) {
    return ServeStatus::Error(ServeCode::kUnknownTenant,
                              "no tenant '" + name + "'");
  }
  if (delta.empty()) return ServeStatus::Ok();
  std::lock_guard<std::mutex> lock(t->mu);
  TenantStats& st = t->stats;

  if (static_cast<std::int64_t>(delta.size()) >
      t->opt.limits.max_batch_edits) {
    ++st.rejected_oversized;
    return ServeStatus::Error(
        ServeCode::kOversizedBatch,
        "batch of " + std::to_string(delta.size()) +
            " edits exceeds the limit of " +
            std::to_string(t->opt.limits.max_batch_edits));
  }

  // Exact admission against the PROJECTED instance (committed + queued):
  // whatever is admitted here is guaranteed applicable once its turn in the
  // queue comes, so drain-time rejections cannot happen.
  const std::vector<std::string> violations =
      t->projected->check_applicable(delta);
  if (!violations.empty()) {
    ++st.rejected_malformed;
    return ServeStatus::Error(ServeCode::kMalformedDelta,
                              join_violations(violations));
  }

  // Coalesce: a batch whose footprint overlaps the queue tail merges into
  // it when the merge is order-equivalent (coalescible; always true for
  // coefficient-only pairs, conditional for structural ones).  The tail has
  // not started applying -- drain holds the same mutex -- so the merged
  // batch commits exactly what the two would in admission order, with one
  // re-solve instead of two.
  if (!t->queue.empty() && footprints_overlap(t->queue.back(), delta) &&
      coalescible(t->queue.back(), delta, t->opt.limits.max_batch_edits)) {
    coalesce_batch(t->queue.back(), delta);
    t->projected->apply(delta);  // cannot fail: admitted above
    ++st.coalesced;
    ++st.accepted;
    return ServeStatus::Ok();
  }

  if (static_cast<std::int64_t>(t->queue.size()) >=
      t->opt.limits.max_queued_batches) {
    ++st.shed_queue_full;
    return ServeStatus::Error(
        ServeCode::kQueueFull,
        "queue at capacity (" +
            std::to_string(t->opt.limits.max_queued_batches) +
            " batches); batch shed");
  }

  t->projected->apply(delta);  // cannot fail: admitted above
  t->queue.push_back(delta);
  ++st.accepted;
  return ServeStatus::Ok();
}

ServeStatus SolverService::drain_locked(Tenant& t, bool with_budget,
                                        std::int64_t* committed) {
  while (!t.queue.empty()) {
    const bool budget =
        with_budget && t.opt.limits.apply_budget_us > 0.0;
    try {
      if (budget) {
        const Deadline deadline =
            Deadline::after_us(t.opt.limits.apply_budget_us);
        t.solver->apply(t.queue.front(), &deadline);
      } else {
        t.solver->apply(t.queue.front());
      }
    } catch (const DeadlineExceeded& e) {
      // Transactional abandonment: the solver rolled back bitwise, the
      // batch stays queued for repair_idle, queries keep serving the last
      // committed epoch (flagged stale).
      ++t.stats.deadline_aborts;
      return ServeStatus::Error(ServeCode::kDeadlineExceeded, e.what());
    } catch (const CheckError& e) {
      // Admission induction says this cannot happen; if it does anyway it
      // is a bug -- contain it: count, drop the queue, resynchronize the
      // projection from the (rolled back, still consistent) committed
      // state, and report instead of throwing across the boundary.
      ++t.stats.internal_errors;
      t.queue.clear();
      t.projected =
          std::make_unique<SpecialFormInstance>(t.solver->special().instance());
      return ServeStatus::Error(ServeCode::kInternal, e.what());
    }
    t.queue.pop_front();
    ++t.stats.committed_epoch;
    if (committed != nullptr) ++*committed;
  }
  return ServeStatus::Ok();
}

ServeStatus SolverService::drain(const std::string& name) {
  const std::shared_ptr<Tenant> t = find(name);
  if (t == nullptr) {
    return ServeStatus::Error(ServeCode::kUnknownTenant,
                              "no tenant '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(t->mu);
  return drain_locked(*t, /*with_budget=*/true);
}

std::int64_t SolverService::repair_idle() {
  std::vector<std::shared_ptr<Tenant>> all;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    all.reserve(tenants_.size());
    for (const auto& [name, t] : tenants_) all.push_back(t);
  }
  std::int64_t committed = 0;
  for (const std::shared_ptr<Tenant>& t : all) {
    std::lock_guard<std::mutex> lock(t->mu);
    drain_locked(*t, /*with_budget=*/false, &committed);
  }
  return committed;
}

ServeStatus SolverService::query_x(const std::string& name, AgentId agent,
                                   QueryResult* out) const {
  const std::shared_ptr<Tenant> t = find(name);
  if (t == nullptr) {
    return ServeStatus::Error(ServeCode::kUnknownTenant,
                              "no tenant '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(t->mu);
  if (agent < 0 ||
      static_cast<std::size_t>(agent) >= t->solver->x().size()) {
    return ServeStatus::Error(ServeCode::kInvalidArgument,
                              "agent " + std::to_string(agent) +
                                  " out of range");
  }
  out->value = t->solver->x()[static_cast<std::size_t>(agent)];
  out->stale = !t->queue.empty();
  out->epoch = t->stats.committed_epoch;
  return ServeStatus::Ok();
}

ServeStatus SolverService::utility(const std::string& name,
                                   QueryResult* out) const {
  const std::shared_ptr<Tenant> t = find(name);
  if (t == nullptr) {
    return ServeStatus::Error(ServeCode::kUnknownTenant,
                              "no tenant '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(t->mu);
  out->value = t->solver->special().instance().utility(t->solver->x());
  out->stale = !t->queue.empty();
  out->epoch = t->stats.committed_epoch;
  return ServeStatus::Ok();
}

ServeStatus SolverService::stats(const std::string& name,
                                 TenantStats* out) const {
  const std::shared_ptr<Tenant> t = find(name);
  if (t == nullptr) {
    return ServeStatus::Error(ServeCode::kUnknownTenant,
                              "no tenant '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(t->mu);
  *out = t->stats;
  out->queued_batches = static_cast<std::int64_t>(t->queue.size());
  out->queued_edits = 0;
  for (const InstanceDelta& d : t->queue) {
    out->queued_edits += static_cast<std::int64_t>(d.size());
  }
  return ServeStatus::Ok();
}

}  // namespace locmm
