#include "serve/serve_status.hpp"

namespace locmm {

const char* to_string(ServeCode code) {
  switch (code) {
    case ServeCode::kOk: return "ok";
    case ServeCode::kUnknownTenant: return "unknown-tenant";
    case ServeCode::kTenantExists: return "tenant-exists";
    case ServeCode::kMalformedDelta: return "malformed-delta";
    case ServeCode::kOversizedBatch: return "oversized-batch";
    case ServeCode::kQueueFull: return "queue-full";
    case ServeCode::kDeadlineExceeded: return "deadline-exceeded";
    case ServeCode::kInvalidArgument: return "invalid-argument";
    case ServeCode::kInternal: return "internal-error";
  }
  return "?";
}

}  // namespace locmm
