// serve_status.hpp -- the error taxonomy of the serving boundary.
//
// Inside the library a broken invariant throws CheckError and that is the
// right tool: callers are trusted code and a violated precondition is a
// bug.  At the SERVICE boundary the caller is an untrusted tenant, and a
// malformed delta, an oversized batch or an unknown tenant name are normal
// traffic, not bugs.  Every SolverService entry point therefore returns a
// ServeStatus: tenant-attributable failures come back as structured
// rejections with a code and a human-readable message, CheckError stays
// reserved for true internal invariants (and even those are caught at the
// boundary, reported as kInternal, and contained by resetting the tenant's
// queue -- a service worker thread must never unwind through a throw).
#pragma once

#include <string>

namespace locmm {

enum class ServeCode {
  kOk = 0,
  kUnknownTenant,      // no tenant under that name
  kTenantExists,       // create_tenant: name already taken
  kMalformedDelta,     // admission dry run rejected the batch (message
                       // carries the first violations verbatim)
  kOversizedBatch,     // batch exceeds TenantLimits::max_batch_edits
  kQueueFull,          // backpressure: bounded queue at capacity, batch shed
  kDeadlineExceeded,   // drain abandoned transactionally; committed state
                       // still serves (stale) until the next idle repair
  kInvalidArgument,    // bad query argument / non-special-form instance
  kInternal,           // contained CheckError escape -- a bug, counted and
                       // reported, never thrown across the boundary
};

const char* to_string(ServeCode code);

struct ServeStatus {
  ServeCode code = ServeCode::kOk;
  std::string message;

  bool ok() const { return code == ServeCode::kOk; }
  static ServeStatus Ok() { return {}; }
  static ServeStatus Error(ServeCode c, std::string msg) {
    return {c, std::move(msg)};
  }
};

}  // namespace locmm
