// grid.cpp -- torus grid family.
//
// Agents at the cells of an R x C torus; every horizontal edge carries a
// degree-2 constraint and every vertical edge a degree-2 objective.  Agents
// have |Iv| = |Kv| = 2, delta_I = delta_K = 2.  The family scales to
// millions of nodes with constant-size local views -- the E4 locality
// workload.
#include "gen/generators.hpp"

namespace locmm {

MaxMinInstance grid_instance(const GridParams& p, std::uint64_t seed) {
  LOCMM_CHECK(p.rows >= 3 && p.cols >= 3);
  Rng rng(seed);
  const std::int32_t n = p.rows * p.cols;
  InstanceBuilder b(n);
  auto id = [&](std::int32_t r, std::int32_t c) -> AgentId {
    return ((r + p.rows) % p.rows) * p.cols + ((c + p.cols) % p.cols);
  };
  for (std::int32_t r = 0; r < p.rows; ++r) {
    for (std::int32_t c = 0; c < p.cols; ++c) {
      b.add_constraint({{id(r, c), rng.uniform(p.coeff_lo, p.coeff_hi)},
                        {id(r, c + 1), rng.uniform(p.coeff_lo, p.coeff_hi)}});
    }
  }
  for (std::int32_t r = 0; r < p.rows; ++r) {
    for (std::int32_t c = 0; c < p.cols; ++c) {
      b.add_objective({{id(r, c), 1.0}, {id(r + 1, c), 1.0}});
    }
  }
  return b.build();
}

MaxMinInstance special_grid_instance(const SpecialGridParams& p,
                                     std::uint64_t seed) {
  LOCMM_CHECK(p.rows >= 4 && p.rows % 2 == 0);
  LOCMM_CHECK(p.cols >= 3);
  Rng rng(seed);
  const std::int32_t n = p.rows * p.cols;
  InstanceBuilder b(n);
  auto id = [&](std::int32_t r, std::int32_t c) -> AgentId {
    return ((r + p.rows) % p.rows) * p.cols + ((c + p.cols) % p.cols);
  };
  // Horizontal torus edges: one degree-2 constraint each, so |Iv| = 2.
  for (std::int32_t r = 0; r < p.rows; ++r) {
    for (std::int32_t c = 0; c < p.cols; ++c) {
      b.add_constraint({{id(r, c), rng.uniform(p.coeff_lo, p.coeff_hi)},
                        {id(r, c + 1), rng.uniform(p.coeff_lo, p.coeff_hi)}});
    }
  }
  // Vertical edges between paired rows only (a perfect matching), so every
  // agent has exactly one unit objective: §5 special form by construction.
  // Consequence (see generators.hpp): row pairs are independent prisms.
  for (std::int32_t r = 0; r < p.rows; r += 2) {
    for (std::int32_t c = 0; c < p.cols; ++c) {
      b.add_objective({{id(r, c), 1.0}, {id(r + 1, c), 1.0}});
    }
  }
  return b.build();
}

}  // namespace locmm
