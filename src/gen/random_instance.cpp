// random_instance.cpp -- random bounded-degree general and special-form
// max-min LPs.  Construction guarantees the §4 preamble invariants (every
// row nonempty, every agent in >= 1 constraint and >= 1 objective) and
// connectivity (a random backbone joins agent j to a random earlier agent).
#include <algorithm>
#include <vector>

#include "gen/generators.hpp"

namespace locmm {

namespace {

double draw_coeff(Rng& rng, double lo, double hi, bool unit) {
  return unit ? 1.0 : rng.uniform(lo, hi);
}

// Samples `size` distinct agents from [0, n).
std::vector<AgentId> sample_agents(Rng& rng, std::int32_t n,
                                   std::int32_t size) {
  std::vector<AgentId> out;
  out.reserve(static_cast<std::size_t>(size));
  while (static_cast<std::int32_t>(out.size()) < size) {
    const auto v = static_cast<AgentId>(rng.below(static_cast<std::uint64_t>(n)));
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

}  // namespace

MaxMinInstance random_general(const RandomGeneralParams& p,
                              std::uint64_t seed) {
  LOCMM_CHECK(p.num_agents >= 2);
  LOCMM_CHECK(p.delta_i >= 2 && p.delta_k >= 1);
  Rng rng(seed);
  const std::int32_t n = p.num_agents;
  InstanceBuilder b(n);

  auto coeff = [&] {
    return draw_coeff(rng, p.coeff_lo, p.coeff_hi, p.unit_coefficients);
  };

  // Connectivity backbone: agent j shares a constraint with a random
  // earlier agent.
  for (AgentId j = 1; j < n; ++j) {
    const auto prev = static_cast<AgentId>(rng.below(static_cast<std::uint64_t>(j)));
    b.add_constraint({{prev, coeff()}, {j, coeff()}});
  }

  // Extra constraints with degrees in [1, delta_i].
  const auto extra_c =
      static_cast<std::int64_t>(p.extra_constraints * static_cast<double>(n));
  for (std::int64_t e = 0; e < extra_c; ++e) {
    const auto size = static_cast<std::int32_t>(
        rng.range(1, std::min<std::int64_t>(p.delta_i, n)));
    std::vector<Entry> row;
    for (AgentId v : sample_agents(rng, n, size)) row.push_back({v, coeff()});
    b.add_constraint(std::move(row));
  }

  // Objective cover: chunk a shuffled agent list into rows of size
  // in [1, delta_k], so every agent appears in at least one objective.
  std::vector<AgentId> order(static_cast<std::size_t>(n));
  for (AgentId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  shuffle(order.begin(), order.end(), rng);
  for (std::size_t pos = 0; pos < order.size();) {
    const auto size = static_cast<std::size_t>(
        rng.range(1, std::min<std::int64_t>(p.delta_k,
                                            static_cast<std::int64_t>(
                                                order.size() - pos))));
    std::vector<Entry> row;
    for (std::size_t j = 0; j < size; ++j)
      row.push_back({order[pos + j], coeff()});
    b.add_objective(std::move(row));
    pos += size;
  }

  // Extra objectives.
  const auto extra_k =
      static_cast<std::int64_t>(p.extra_objectives * static_cast<double>(n));
  for (std::int64_t e = 0; e < extra_k; ++e) {
    const auto size = static_cast<std::int32_t>(
        rng.range(1, std::min<std::int64_t>(p.delta_k, n)));
    std::vector<Entry> row;
    for (AgentId v : sample_agents(rng, n, size)) row.push_back({v, coeff()});
    b.add_objective(std::move(row));
  }

  MaxMinInstance inst = b.build();
  LOCMM_CHECK(inst.connected());
  return inst;
}

MaxMinInstance random_special_form(const RandomSpecialParams& p,
                                   std::uint64_t seed) {
  LOCMM_CHECK(p.num_agents >= 2);
  LOCMM_CHECK(p.delta_k >= 2);
  Rng rng(seed);

  // Objectives first: partition agents into groups of size in [2, delta_k];
  // group g owns agents [group_start[g], group_start[g+1]).  c = 1.
  std::vector<std::int32_t> group_start{0};
  while (group_start.back() < p.num_agents) {
    const auto size = static_cast<std::int32_t>(rng.range(2, p.delta_k));
    group_start.push_back(group_start.back() + size);
  }
  const std::int32_t n = group_start.back();  // rounded-up agent count

  InstanceBuilder b(n);
  for (std::size_t g = 0; g + 1 < group_start.size(); ++g) {
    std::vector<Entry> row;
    for (std::int32_t v = group_start[g]; v < group_start[g + 1]; ++v)
      row.push_back({v, 1.0});
    b.add_objective(std::move(row));
  }

  auto coeff = [&] {
    return draw_coeff(rng, p.coeff_lo, p.coeff_hi, p.unit_coefficients);
  };

  // Constraint backbone across groups for connectivity: group g's first
  // agent pairs with a random agent of an earlier group.
  for (std::size_t g = 1; g + 1 < group_start.size(); ++g) {
    const auto prev = static_cast<AgentId>(
        rng.below(static_cast<std::uint64_t>(group_start[g])));
    b.add_constraint({{prev, coeff()}, {group_start[g], coeff()}});
  }

  // Cover: every agent needs >= 1 constraint.
  for (AgentId v = 0; v < n; ++v) {
    auto other = static_cast<AgentId>(rng.below(static_cast<std::uint64_t>(n)));
    if (other == v) other = (v + 1) % n;
    b.add_constraint({{v, coeff()}, {other, coeff()}});
  }

  // Extra random pair constraints.
  const auto extra =
      static_cast<std::int64_t>(p.extra_constraints * static_cast<double>(n));
  for (std::int64_t e = 0; e < extra; ++e) {
    const auto v = static_cast<AgentId>(rng.below(static_cast<std::uint64_t>(n)));
    auto w = static_cast<AgentId>(rng.below(static_cast<std::uint64_t>(n)));
    if (w == v) w = (v + 1) % n;
    b.add_constraint({{v, coeff()}, {w, coeff()}});
  }

  MaxMinInstance inst = b.build();
  LOCMM_CHECK(inst.connected());
  return inst;
}

}  // namespace locmm
