// generators.hpp -- workload families for tests, examples and benches.
//
// Every generator is deterministic in its (params, seed) pair; all
// randomness flows through support/prng.hpp.  Families:
//
//   random_general     arbitrary bounded-degree max-min LPs (the E1/E3/E6
//                      workhorse; guaranteed connected and valid)
//   random_special_form instances already in §5 special form (E2/E7)
//   cycle_instance     agents on a cycle, consecutive-pair constraints and
//                      objectives; delta_I = delta_K = 2 (unit optimum = 1
//                      for unit coefficients -- handy sanity anchor)
//   path_instance      the acyclic cousin (communication graph is a tree;
//                      exercises §4.5 singleton-objective augmentation)
//   grid_instance      torus: horizontal constraint edges, vertical
//                      objective edges (scalable locality workload, E4)
//   tree_instance      random alternating tree (unfolding == graph)
//   sensor_instance    balanced data gathering (paper §1 motivation):
//                      sensors = objectives, sinks = capacity constraints,
//                      agents = sensor-sink assignments (bipartite LP)
//   bandwidth_instance fair bandwidth allocation (paper §1 motivation):
//                      links = constraints, customers = objectives,
//                      agents = path flow variables
//   layered_instance   Figure-1-style layered wheel (up/down role structure
//                      closed into a cycle of layers; the E5 tightness and
//                      shifting-loss probe)
#pragma once

#include <cstdint>

#include "lp/instance.hpp"
#include "support/prng.hpp"

namespace locmm {

struct RandomGeneralParams {
  std::int32_t num_agents = 40;
  std::int32_t delta_i = 3;           // max constraint degree
  std::int32_t delta_k = 3;           // max objective degree
  double extra_constraints = 0.7;     // extra rows per agent beyond backbone
  double extra_objectives = 0.4;      // extra rows per agent beyond cover
  double coeff_lo = 0.5;              // coefficients uniform in [lo, hi]
  double coeff_hi = 2.0;
  bool unit_coefficients = false;     // force all coefficients to 1 ({0,1} LP)
};
MaxMinInstance random_general(const RandomGeneralParams& p, std::uint64_t seed);

struct RandomSpecialParams {
  std::int32_t num_agents = 40;   // rounded up to fill the last objective
  std::int32_t delta_k = 3;       // objective sizes uniform in [2, delta_k]
  double extra_constraints = 1.0; // constraint rows per agent beyond backbone
  double coeff_lo = 0.5;
  double coeff_hi = 2.0;
  bool unit_coefficients = false;
};
MaxMinInstance random_special_form(const RandomSpecialParams& p,
                                   std::uint64_t seed);

struct CycleParams {
  std::int32_t num_agents = 12;  // >= 3
  double coeff_lo = 1.0;         // constraint coefficients
  double coeff_hi = 1.0;
  bool unit_objectives = true;   // c = 1; otherwise same range as a
};
MaxMinInstance cycle_instance(const CycleParams& p, std::uint64_t seed);

MaxMinInstance path_instance(std::int32_t num_agents);  // even, >= 4

struct GridParams {
  std::int32_t rows = 6;
  std::int32_t cols = 6;
  double coeff_lo = 1.0;
  double coeff_hi = 1.0;
};
MaxMinInstance grid_instance(const GridParams& p, std::uint64_t seed);

struct SpecialGridParams {
  std::int32_t rows = 6;  // even, >= 4: objectives pair rows 2k and 2k+1
  std::int32_t cols = 6;  // >= 3
  double coeff_lo = 1.0;  // horizontal constraint coefficients
  double coeff_hi = 1.0;
};
// Paired-row torus grid natively in §5 special form: every horizontal
// torus edge carries a degree-2 constraint, and the vertical edges between
// rows 2k and 2k+1 carry the (unit) objectives, so |Iv| = 2, |Kv| = 1,
// |Vk| = 2 for every agent.  Because |Kv| = 1 forces the vertical
// objectives to be a perfect matching of rows, consecutive row PAIRS are
// not coupled: the graph is rows/2 independent 2 x cols prisms (circular
// ladders) cut from the torus, not the fully 2D-coupled torus.  That is
// exactly what keeps it engine-L-tractable: unlike grid_instance (whose §4
// pipeline raises the comm-graph degree) or a fully coupled special-form
// torus (branching 3), radius-29 views here stay ~10^5 nodes, so
// whole-instance solves scale to R = 4.  With unit coefficients it is
// vertex-transitive up to the wrap-around port order: the grid workload of
// the class-collapse benchmarks.
MaxMinInstance special_grid_instance(const SpecialGridParams& p,
                                     std::uint64_t seed);

struct TreeParams {
  std::int32_t max_agents = 50;
  std::int32_t max_constraint_children = 2;  // per-agent constraint fanout
  std::int32_t delta_k = 3;                  // objective fanout <= delta_k - 1
  double grow_prob = 0.8;
  double coeff_lo = 0.5;
  double coeff_hi = 2.0;
};
MaxMinInstance tree_instance(const TreeParams& p, std::uint64_t seed);

struct SensorParams {
  std::int32_t num_sensors = 30;
  std::int32_t num_sinks = 10;
  std::int32_t max_sensors_per_sink = 4;  // = delta_I of the instance
  double range = 0.35;                    // connection radius in unit square
  double energy_exponent = 2.0;           // a ~ dist^exponent (path loss)
};
MaxMinInstance sensor_instance(const SensorParams& p, std::uint64_t seed);

struct BandwidthParams {
  std::int32_t num_routers = 16;
  std::int32_t num_chords = 8;        // extra links on top of the ring
  std::int32_t num_customers = 10;
  std::int32_t paths_per_customer = 3;
  double capacity_lo = 1.0;
  double capacity_hi = 4.0;
};
MaxMinInstance bandwidth_instance(const BandwidthParams& p,
                                  std::uint64_t seed);

struct RegularSpecialParams {
  std::int32_t num_objectives = 12;  // agents = num_objectives * delta_k
  std::int32_t delta_k = 3;          // every objective has exactly delta_k
  std::int32_t constraints_per_agent = 2;  // |Iv| = this, for every agent
  double coeff_lo = 1.0;
  double coeff_hi = 1.0;
  std::int32_t max_attempts = 200;   // pairing retries (simple graph)
};
// Fully regular special-form instance via the configuration model: every
// objective has exactly delta_k unit-coefficient agents, every agent has
// exactly `constraints_per_agent` degree-2 constraints with random partners
// (no self-loops, no parallel pairs).  Locally, every agent looks alike up
// to port numbering and coefficients -- the closest synthetic analogue of
// the lower-bound instances of [7] (see DESIGN.md §6), used by bench E5.
MaxMinInstance regular_special_instance(const RegularSpecialParams& p,
                                        std::uint64_t seed);

struct CirculantSpecialParams {
  std::int32_t num_objectives = 12;  // agents = num_objectives * delta_k
  std::int32_t delta_k = 3;          // objective size (consecutive blocks)
  std::int32_t stride = 5;           // partner offset; 2 * stride % n != 0
  double coeff_lo = 1.0;
  double coeff_hi = 1.0;
};
// Deterministic, structured counterpart of regular_special_instance:
// objective k covers the consecutive block of delta_k agents, and
// constraint j pairs agents {j, j + stride (mod n)}, so every agent has
// exactly two degree-2 constraints and one objective -- the same degree
// profile as the random configuration model, but circulant.  With unit
// coefficients all agents look alike up to the wrap-around port order, so
// the number of distinct radius-D views is O(D), independent of n: the
// "d-regular" workload where cross-agent view canonicalization collapses a
// 10k-agent solve to a handful of evaluations (the paper's lower-bound
// instances [7] are exactly such symmetric regular constructions).
MaxMinInstance circulant_special_instance(const CirculantSpecialParams& p,
                                          std::uint64_t seed);

struct LayeredParams {
  std::int32_t delta_k = 3;  // objective size (1 up-agent + delta_k-1 down)
  std::int32_t layers = 6;   // number of objective layers around the wheel
  std::int32_t width = 4;    // objectives per layer
  std::int32_t twist = 1;    // wiring offset between layers (girth knob)
};
MaxMinInstance layered_instance(const LayeredParams& p);

}  // namespace locmm
