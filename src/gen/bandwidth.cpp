// bandwidth.cpp -- max-min fair bandwidth allocation (paper §1 motivation).
//
// A router network (ring plus random chords) carries traffic for customers.
// Each customer k gets a handful of candidate routes between its endpoints;
// one agent variable per route says how much flow rides it.  Every link is
// a capacity constraint over the routes crossing it (a_iv = 1 / capacity_i,
// so the row reads "total flow <= capacity"); every customer is an
// objective summing its route variables.  Maximising the minimum customer
// throughput is the max-min LP.  Routes have length > 1, so agents sit in
// many constraints (|Iv| large), and popular links collect many routes
// (delta_I large) -- the family stresses §4.3 hardest.
#include <algorithm>
#include <deque>
#include <vector>

#include "gen/generators.hpp"

namespace locmm {

namespace {

// BFS route in the router graph avoiding (where possible) a set of
// discouraged links; returns node sequence, empty if unreachable.
std::vector<std::int32_t> bfs_route(
    const std::vector<std::vector<std::int32_t>>& adj, std::int32_t src,
    std::int32_t dst, const std::vector<char>& discouraged_node) {
  std::vector<std::int32_t> parent(adj.size(), -1);
  std::deque<std::int32_t> queue{src};
  parent[static_cast<std::size_t>(src)] = src;
  while (!queue.empty()) {
    const std::int32_t u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    for (std::int32_t w : adj[static_cast<std::size_t>(u)]) {
      if (parent[static_cast<std::size_t>(w)] >= 0) continue;
      if (discouraged_node[static_cast<std::size_t>(w)] && w != dst) continue;
      parent[static_cast<std::size_t>(w)] = u;
      queue.push_back(w);
    }
  }
  if (parent[static_cast<std::size_t>(dst)] < 0) return {};
  std::vector<std::int32_t> path{dst};
  while (path.back() != src) {
    path.push_back(parent[static_cast<std::size_t>(path.back())]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

MaxMinInstance bandwidth_instance(const BandwidthParams& p,
                                  std::uint64_t seed) {
  LOCMM_CHECK(p.num_routers >= 4);
  LOCMM_CHECK(p.num_customers >= 1 && p.paths_per_customer >= 1);
  Rng rng(seed);

  // Router graph: ring + chords.  Links indexed by (min, max) pair.
  const std::int32_t nr = p.num_routers;
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(nr));
  std::vector<std::pair<std::int32_t, std::int32_t>> links;
  std::vector<double> capacity;
  auto add_link = [&](std::int32_t a, std::int32_t bb) {
    if (a == bb) return;
    if (a > bb) std::swap(a, bb);
    for (const auto& l : links)
      if (l.first == a && l.second == bb) return;
    links.emplace_back(a, bb);
    capacity.push_back(rng.uniform(p.capacity_lo, p.capacity_hi));
    adj[static_cast<std::size_t>(a)].push_back(bb);
    adj[static_cast<std::size_t>(bb)].push_back(a);
  };
  for (std::int32_t j = 0; j < nr; ++j) add_link(j, (j + 1) % nr);
  for (std::int32_t c = 0; c < p.num_chords; ++c) {
    add_link(static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(nr))),
             static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(nr))));
  }
  auto link_index = [&](std::int32_t a, std::int32_t bb) {
    if (a > bb) std::swap(a, bb);
    for (std::size_t l = 0; l < links.size(); ++l)
      if (links[l].first == a && links[l].second == bb)
        return static_cast<std::int32_t>(l);
    LOCMM_CHECK_MSG(false, "unknown link");
    return -1;
  };

  InstanceBuilder b;
  std::vector<std::vector<Entry>> link_rows(links.size());
  std::vector<std::vector<Entry>> customer_rows(
      static_cast<std::size_t>(p.num_customers));

  for (std::int32_t k = 0; k < p.num_customers; ++k) {
    const auto src = static_cast<std::int32_t>(
        rng.below(static_cast<std::uint64_t>(nr)));
    auto dst = static_cast<std::int32_t>(
        rng.below(static_cast<std::uint64_t>(nr)));
    if (dst == src) dst = (src + nr / 2) % nr;

    std::vector<char> discouraged(static_cast<std::size_t>(nr), 0);
    for (std::int32_t route = 0; route < p.paths_per_customer; ++route) {
      const auto path = bfs_route(adj, src, dst, discouraged);
      if (path.empty()) break;  // no further disjoint-ish route
      const AgentId v = b.add_agent();
      for (std::size_t j = 0; j + 1 < path.size(); ++j) {
        const std::int32_t l = link_index(path[j], path[j + 1]);
        link_rows[static_cast<std::size_t>(l)].push_back(
            {v, 1.0 / capacity[static_cast<std::size_t>(l)]});
      }
      customer_rows[static_cast<std::size_t>(k)].push_back({v, 1.0});
      // Discourage interior nodes of this route for the next one.
      for (std::size_t j = 1; j + 1 < path.size(); ++j)
        discouraged[static_cast<std::size_t>(path[j])] = 1;
    }
    LOCMM_CHECK_MSG(!customer_rows[static_cast<std::size_t>(k)].empty(),
                    "customer " << k << " got no route");
  }

  for (auto& row : link_rows)
    if (!row.empty()) b.add_constraint(std::move(row));
  for (auto& row : customer_rows) b.add_objective(std::move(row));
  return b.build();
}

}  // namespace locmm
