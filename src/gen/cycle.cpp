// cycle.cpp -- cycle and path families (delta_I = delta_K = 2).
//
// cycle_instance: agents v_0..v_{n-1} around a cycle; constraint i_j and
// objective k_j both span the consecutive pair {v_j, v_{j+1 mod n}}.  With
// unit coefficients the optimum is exactly 1 (x = 1/2 everywhere), which the
// sanity tests pin.  These are the classic locality benchmarks: every local
// view of a long cycle is identical to a path's.
//
// path_instance: the open-chain cousin; interior pairs alternate constraint
// / objective edges so the communication graph is a tree, and the two
// endpoint agents get singleton objectives (exercising §4.5).
#include "gen/generators.hpp"

namespace locmm {

MaxMinInstance cycle_instance(const CycleParams& p, std::uint64_t seed) {
  LOCMM_CHECK(p.num_agents >= 3);
  Rng rng(seed);
  const std::int32_t n = p.num_agents;
  InstanceBuilder b(n);
  for (std::int32_t j = 0; j < n; ++j) {
    const AgentId u = j;
    const AgentId w = (j + 1) % n;
    b.add_constraint({{u, rng.uniform(p.coeff_lo, p.coeff_hi)},
                      {w, rng.uniform(p.coeff_lo, p.coeff_hi)}});
  }
  for (std::int32_t j = 0; j < n; ++j) {
    const AgentId u = j;
    const AgentId w = (j + 1) % n;
    const double cu =
        p.unit_objectives ? 1.0 : rng.uniform(p.coeff_lo, p.coeff_hi);
    const double cw =
        p.unit_objectives ? 1.0 : rng.uniform(p.coeff_lo, p.coeff_hi);
    b.add_objective({{u, cu}, {w, cw}});
  }
  return b.build();
}

MaxMinInstance path_instance(std::int32_t num_agents) {
  LOCMM_CHECK(num_agents >= 4 && num_agents % 2 == 0);
  InstanceBuilder b(num_agents);
  // Constraints on pairs (0,1), (2,3), ...; objectives on (1,2), (3,4), ...
  for (std::int32_t j = 0; j + 1 < num_agents; j += 2) {
    b.add_constraint({{j, 1.0}, {j + 1, 1.0}});
  }
  for (std::int32_t j = 1; j + 1 < num_agents; j += 2) {
    b.add_objective({{j, 1.0}, {j + 1, 1.0}});
  }
  b.add_objective({{0, 1.0}});                // endpoint singletons (§4.5)
  b.add_objective({{num_agents - 1, 1.0}});
  return b.build();
}

}  // namespace locmm
