// tree.cpp -- random alternating trees.
//
// Grown root-down: an agent may spawn constraint children (degree-2
// constraint to one fresh agent each) and one objective grouping it with a
// batch of fresh agents.  Every intermediate node (constraint or objective)
// joins an agent to otherwise-disjoint subtrees, so the communication graph
// is a tree: its unfolding is itself, making the family a direct probe of
// the §3 machinery (view trees terminate, t_u exact on subtrees).
// Validity is patched at the end: agents missing an objective get a
// singleton objective (§4.5 fodder), agents missing a constraint get a
// singleton constraint (§4.2 fodder).
#include <deque>

#include "gen/generators.hpp"

namespace locmm {

MaxMinInstance tree_instance(const TreeParams& p, std::uint64_t seed) {
  LOCMM_CHECK(p.max_agents >= 2);
  LOCMM_CHECK(p.delta_k >= 2);
  Rng rng(seed);
  InstanceBuilder b;

  std::deque<AgentId> frontier{b.add_agent()};
  std::vector<char> has_objective(1, 0);
  std::vector<char> has_constraint(1, 0);

  auto fresh = [&]() {
    const AgentId v = b.add_agent();
    has_objective.push_back(0);
    has_constraint.push_back(0);
    return v;
  };
  auto coeff = [&] { return rng.uniform(p.coeff_lo, p.coeff_hi); };

  while (!frontier.empty() && b.num_agents() < p.max_agents) {
    const AgentId v = frontier.front();
    frontier.pop_front();

    // Constraint children.
    const auto nc = static_cast<std::int32_t>(
        rng.range(0, p.max_constraint_children));
    for (std::int32_t j = 0; j < nc && b.num_agents() < p.max_agents; ++j) {
      if (!rng.bernoulli(p.grow_prob)) continue;
      const AgentId child = fresh();
      b.add_constraint({{v, coeff()}, {child, coeff()}});
      has_constraint[static_cast<std::size_t>(v)] = 1;
      has_constraint[static_cast<std::size_t>(child)] = 1;
      frontier.push_back(child);
    }

    // One objective grouping v with fresh agents.
    if (!has_objective[static_cast<std::size_t>(v)] &&
        rng.bernoulli(p.grow_prob) && b.num_agents() < p.max_agents) {
      const auto nk = static_cast<std::int32_t>(
          rng.range(1, p.delta_k - 1));
      std::vector<Entry> row{{v, coeff()}};
      for (std::int32_t j = 0; j < nk && b.num_agents() < p.max_agents; ++j) {
        const AgentId child = fresh();
        row.push_back({child, coeff()});
        frontier.push_back(child);
      }
      if (row.size() >= 2) {
        for (const Entry& e : row)
          has_objective[static_cast<std::size_t>(e.agent)] = 1;
        b.add_objective(std::move(row));
      }
    }
  }

  // Patch validity.
  for (AgentId v = 0; v < b.num_agents(); ++v) {
    if (!has_objective[static_cast<std::size_t>(v)])
      b.add_objective({{v, coeff()}});
    if (!has_constraint[static_cast<std::size_t>(v)])
      b.add_constraint({{v, coeff()}});
  }
  return b.build();
}

}  // namespace locmm
