// regular.cpp -- fully regular special-form instances (configuration
// model).  See generators.hpp for the contract.
#include <algorithm>
#include <vector>

#include "gen/generators.hpp"

namespace locmm {

MaxMinInstance regular_special_instance(const RegularSpecialParams& p,
                                        std::uint64_t seed) {
  LOCMM_CHECK(p.num_objectives >= 2);
  LOCMM_CHECK(p.delta_k >= 2);
  LOCMM_CHECK(p.constraints_per_agent >= 1);
  const std::int32_t n = p.num_objectives * p.delta_k;
  LOCMM_CHECK_MSG(
      static_cast<std::int64_t>(n) * p.constraints_per_agent % 2 == 0,
      "total constraint stubs must be even; adjust the parameters");

  Rng rng(seed);

  // Objectives: consecutive blocks of delta_k agents, unit coefficients.
  InstanceBuilder b(n);
  for (std::int32_t k = 0; k < p.num_objectives; ++k) {
    std::vector<Entry> row;
    for (std::int32_t c = 0; c < p.delta_k; ++c)
      row.push_back({k * p.delta_k + c, 1.0});
    b.add_objective(std::move(row));
  }

  // Constraints: pair up stubs uniformly; reject self-pairs and repeated
  // pairs, retrying the whole pairing a bounded number of times (the usual
  // configuration-model rejection loop; succeeds fast for these sizes).
  std::vector<std::pair<AgentId, AgentId>> pairs;
  for (std::int32_t attempt = 0; attempt < p.max_attempts; ++attempt) {
    std::vector<AgentId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * p.constraints_per_agent);
    for (AgentId v = 0; v < n; ++v) {
      for (std::int32_t c = 0; c < p.constraints_per_agent; ++c)
        stubs.push_back(v);
    }
    shuffle(stubs.begin(), stubs.end(), rng);
    pairs.clear();
    bool ok = true;
    std::vector<std::pair<AgentId, AgentId>> seen;
    for (std::size_t s = 0; s + 1 < stubs.size(); s += 2) {
      AgentId a = stubs[s], c = stubs[s + 1];
      if (a == c) {
        ok = false;
        break;
      }
      if (a > c) std::swap(a, c);
      if (std::find(seen.begin(), seen.end(), std::make_pair(a, c)) !=
          seen.end()) {
        ok = false;
        break;
      }
      seen.emplace_back(a, c);
      pairs.emplace_back(a, c);
    }
    if (ok) break;
    pairs.clear();
  }
  LOCMM_CHECK_MSG(!pairs.empty(),
                  "configuration model failed to produce a simple pairing; "
                  "raise max_attempts or lower constraints_per_agent");

  for (const auto& [a, c] : pairs) {
    b.add_constraint({{a, rng.uniform(p.coeff_lo, p.coeff_hi)},
                      {c, rng.uniform(p.coeff_lo, p.coeff_hi)}});
  }
  return b.build();
}

MaxMinInstance circulant_special_instance(const CirculantSpecialParams& p,
                                          std::uint64_t seed) {
  LOCMM_CHECK(p.num_objectives >= 2);
  LOCMM_CHECK(p.delta_k >= 2);
  const std::int32_t n = p.num_objectives * p.delta_k;
  LOCMM_CHECK_MSG(p.stride > 0 && p.stride % n != 0 && (2 * p.stride) % n != 0,
                  "stride must not be 0 or n/2 modulo n (self-pairs / "
                  "parallel constraint rows)");
  Rng rng(seed);

  InstanceBuilder b(n);
  // Constraint j pairs {j, j + stride}: every agent sits in exactly two
  // rows (once per side), |Vi| = 2.
  for (std::int32_t j = 0; j < n; ++j) {
    b.add_constraint(
        {{j, rng.uniform(p.coeff_lo, p.coeff_hi)},
         {(j + p.stride) % n, rng.uniform(p.coeff_lo, p.coeff_hi)}});
  }
  // Objectives: consecutive blocks of delta_k agents, unit coefficients.
  for (std::int32_t k = 0; k < p.num_objectives; ++k) {
    std::vector<Entry> row;
    for (std::int32_t c = 0; c < p.delta_k; ++c)
      row.push_back({k * p.delta_k + c, 1.0});
    b.add_objective(std::move(row));
  }
  return b.build();
}

}  // namespace locmm
