// sensor.cpp -- balanced data gathering in a wireless sensor network
// (the paper's §1 motivating application; cf. Floréen et al. [8]).
//
// Sensors and sinks are placed uniformly in the unit square.  Agent
// variables x_{sensor,sink} describe how much of a sensor's data each
// nearby sink collects.  Each sink has unit processing capacity, with
// per-assignment energy cost a ~ (1 + dist)^e (path-loss model): a capacity
// *constraint* of degree <= max_sensors_per_sink.  Each sensor wants its
// data gathered: an *objective* summing its assignment variables.  The task
// "maximise the minimum gathered amount over sensors" is exactly a max-min
// LP, and a *bipartite* one (each agent touches one constraint and one
// objective), so the pipeline's §4.3 degree reduction does the heavy
// lifting: delta_I = max_sensors_per_sink.
//
// Assignment discipline:
//   1. every sensor is assigned to one sink -- its nearest sink with spare
//     slots, processed globally in nearest-first order (so the cap binds
//     strictly whenever num_sensors <= cap * num_sinks; only a genuinely
//     over-full field overflows);
//   2. extra in-range pairs are added nearest-first while slots remain,
//     giving sensors multiple sinks (objective degree > 1).
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gen/generators.hpp"

namespace locmm {

MaxMinInstance sensor_instance(const SensorParams& p, std::uint64_t seed) {
  LOCMM_CHECK(p.num_sensors >= 1 && p.num_sinks >= 1);
  LOCMM_CHECK(p.max_sensors_per_sink >= 1);
  Rng rng(seed);

  struct Point {
    double x, y;
  };
  std::vector<Point> sensors(static_cast<std::size_t>(p.num_sensors));
  std::vector<Point> sinks(static_cast<std::size_t>(p.num_sinks));
  for (auto& pt : sensors) pt = {rng.uniform(), rng.uniform()};
  for (auto& pt : sinks) pt = {rng.uniform(), rng.uniform()};

  auto dist = [&](std::int32_t s, std::int32_t t) {
    return std::hypot(sensors[static_cast<std::size_t>(s)].x -
                          sinks[static_cast<std::size_t>(t)].x,
                      sensors[static_cast<std::size_t>(s)].y -
                          sinks[static_cast<std::size_t>(t)].y);
  };

  std::vector<std::int32_t> load(static_cast<std::size_t>(p.num_sinks), 0);
  std::vector<std::vector<char>> assigned(
      static_cast<std::size_t>(p.num_sensors),
      std::vector<char>(static_cast<std::size_t>(p.num_sinks), 0));
  struct Pair {
    std::int32_t sensor, sink;
    double d;
  };
  std::vector<Pair> pairs;

  // Phase 1: cover every sensor, nearest-first globally.  A sensor takes
  // its nearest sink with a spare slot; if all sinks are full (over-full
  // field), it takes its nearest sink regardless.
  std::vector<std::int32_t> order(static_cast<std::size_t>(p.num_sensors));
  for (std::int32_t s = 0; s < p.num_sensors; ++s)
    order[static_cast<std::size_t>(s)] = s;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     double da = std::numeric_limits<double>::infinity();
                     double db = da;
                     for (std::int32_t t = 0; t < p.num_sinks; ++t) {
                       da = std::min(da, dist(a, t));
                       db = std::min(db, dist(b, t));
                     }
                     return da < db;
                   });
  for (std::int32_t s : order) {
    std::int32_t best = -1, fallback = -1;
    double best_d = std::numeric_limits<double>::infinity();
    double fallback_d = best_d;
    for (std::int32_t t = 0; t < p.num_sinks; ++t) {
      const double d = dist(s, t);
      if (d < fallback_d) {
        fallback_d = d;
        fallback = t;
      }
      if (load[static_cast<std::size_t>(t)] < p.max_sensors_per_sink &&
          d < best_d) {
        best_d = d;
        best = t;
      }
    }
    const std::int32_t t = (best >= 0) ? best : fallback;
    pairs.push_back({s, t, dist(s, t)});
    ++load[static_cast<std::size_t>(t)];
    assigned[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)] = 1;
  }

  // Phase 2: extra in-range pairs, nearest-first, while slots remain.
  std::vector<Pair> extras;
  for (std::int32_t s = 0; s < p.num_sensors; ++s) {
    for (std::int32_t t = 0; t < p.num_sinks; ++t) {
      const double d = dist(s, t);
      if (d <= p.range &&
          !assigned[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)])
        extras.push_back({s, t, d});
    }
  }
  std::stable_sort(extras.begin(), extras.end(),
                   [](const Pair& a, const Pair& b) { return a.d < b.d; });
  for (const Pair& e : extras) {
    if (load[static_cast<std::size_t>(e.sink)] >= p.max_sensors_per_sink)
      continue;
    pairs.push_back(e);
    ++load[static_cast<std::size_t>(e.sink)];
  }

  // One agent per pair; constraint row per sink; objective per sensor.
  InstanceBuilder b;
  std::vector<std::vector<Entry>> sink_rows(
      static_cast<std::size_t>(p.num_sinks));
  std::vector<std::vector<Entry>> sensor_rows(
      static_cast<std::size_t>(p.num_sensors));
  for (const Pair& pr : pairs) {
    const AgentId v = b.add_agent();
    // Energy cost grows with distance: gathering from far away consumes
    // more of the sink's unit budget.
    const double a = std::pow(1.0 + pr.d, p.energy_exponent);
    sink_rows[static_cast<std::size_t>(pr.sink)].push_back({v, a});
    sensor_rows[static_cast<std::size_t>(pr.sensor)].push_back({v, 1.0});
  }
  for (auto& row : sink_rows)
    if (!row.empty()) b.add_constraint(std::move(row));
  for (auto& row : sensor_rows) {
    LOCMM_CHECK(!row.empty());
    b.add_objective(std::move(row));
  }
  return b.build();
}

}  // namespace locmm
