// hard.cpp -- layered "wheel" family: the tightness probe (experiment E5).
//
// The paper's matching lower bound [7] is driven by instances whose local
// views are symmetric between the up-agent and down-agent roles of §6 while
// the global layer structure forces a low optimum.  We build the Figure-1
// layer pattern -- objectives, each owning one up-agent (previous layer) and
// delta_K - 1 down-agents (next layer), constraints pairing each down-agent
// with an up-agent of the following layer -- and close L layers into a
// wheel.  The instance is already in §5 special form with unit
// coefficients.
//
// Its optimum is delta_K - 1 (x = 1 on down-agents, 0 on up-agents), while
// any solution that hedges between the two role assignments -- as every
// port-numbering local algorithm must when the roles are not locally
// distinguishable (delta_K = 2: a plain 4L-cycle) -- pays the paper's
// threshold factor.  The `twist` parameter staggers the inter-layer wiring
// to push the girth up so that larger local views remain tree-like.
#include "gen/generators.hpp"

namespace locmm {

MaxMinInstance layered_instance(const LayeredParams& p) {
  LOCMM_CHECK(p.delta_k >= 2);
  LOCMM_CHECK(p.layers >= 2);
  LOCMM_CHECK(p.width >= 1);
  const std::int32_t dk = p.delta_k;
  const std::int32_t L = p.layers;
  const std::int32_t W = p.width;

  // Agent ids: layer l has W up-agents then (dk-1)*W down-agents.
  const std::int32_t per_layer = W * dk;
  InstanceBuilder b(L * per_layer);
  auto up = [&](std::int32_t l, std::int32_t j) -> AgentId {
    return ((l % L + L) % L) * per_layer + (j % W + W) % W;
  };
  auto down = [&](std::int32_t l, std::int32_t j, std::int32_t c) -> AgentId {
    return ((l % L + L) % L) * per_layer + W + (j % W + W) % W * (dk - 1) + c;
  };

  // Objectives: one per (layer, j), unit coefficients (special form).
  for (std::int32_t l = 0; l < L; ++l) {
    for (std::int32_t j = 0; j < W; ++j) {
      std::vector<Entry> row{{up(l, j), 1.0}};
      for (std::int32_t c = 0; c < dk - 1; ++c)
        row.push_back({down(l, j, c), 1.0});
      b.add_objective(std::move(row));
    }
  }

  // Constraints: down(l, j, c) pairs with an up-agent of layer l+1; the
  // linear index m = (dk-1) j + c is spread across the W up-agents with a
  // per-layer twist.
  for (std::int32_t l = 0; l < L; ++l) {
    for (std::int32_t j = 0; j < W; ++j) {
      for (std::int32_t c = 0; c < dk - 1; ++c) {
        const std::int32_t m = (dk - 1) * j + c;
        const std::int32_t target = (m + p.twist * l) % W;
        b.add_constraint({{down(l, j, c), 1.0}, {up(l + 1, target), 1.0}});
      }
    }
  }
  return b.build();
}

}  // namespace locmm
