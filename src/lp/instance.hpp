// instance.hpp -- the central problem object: a max-min linear program
// distributed over a bipartite communication graph (paper §1.1).
//
// A MaxMinInstance holds
//   * agents v in V (one LP variable x_v per agent),
//   * constraints i in I (rows of A: sum_{v in Vi} a_iv x_v <= 1),
//   * objectives k in K (rows of C: utility sum_{v in Vk} c_kv x_v),
// together with both incidence directions in CSR form.  The order of the
// entries inside each row, and of the rows inside each agent's incidence
// list, *is* the port numbering of the paper's model (§1.2): a node's ports
// are numbered by the position of the edge in its list.  Builders and
// transformations preserve these orders deterministically.
//
// The rows live in SplicedRows (lp/spliced_rows.hpp), a slack-CSR layout, so
// a membership edit splices the touched row and agent in O(row degree)
// instead of shifting the whole packed array.  All contracts about row
// contents are accessor-level (the spans), not physical-layout-level.
//
// The task (paper eq. (2)):
//   maximise   omega(x) = min_k sum_{v in Vk} c_kv x_v
//   subject to sum_{v in Vi} a_iv x_v <= 1  for all i,   x >= 0.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lp/spliced_rows.hpp"
#include "support/check.hpp"

namespace locmm {

using AgentId = std::int32_t;
using ConstraintId = std::int32_t;
using ObjectiveId = std::int32_t;

// One matrix entry as seen from the row side: which agent, what coefficient.
struct Entry {
  AgentId agent;
  double coeff;

  friend bool operator==(const Entry&, const Entry&) = default;
};

// One matrix entry as seen from the agent side: which row, what coefficient.
struct Incidence {
  std::int32_t row;
  double coeff;

  friend bool operator==(const Incidence&, const Incidence&) = default;
};

struct InstanceStats {
  std::int64_t agents = 0;
  std::int64_t constraints = 0;
  std::int64_t objectives = 0;
  std::int64_t nnz_a = 0;     // entries of A
  std::int64_t nnz_c = 0;     // entries of C
  std::int32_t delta_i = 0;   // max |Vi|  (constraint degree bound)
  std::int32_t delta_k = 0;   // max |Vk|  (objective degree bound)
  std::int32_t max_iv = 0;    // max |Iv|  (constraints per agent)
  std::int32_t max_kv = 0;    // max |Kv|  (objectives per agent)
};

class InstanceBuilder;
struct InstanceDelta;  // lp/delta.hpp

// O(ball) undo record for a batch of edits: the pre-edit contents of every
// touched row and agent incidence list, captured by snapshot() and written
// back by restore().  Sized by the batch footprint, never by the instance.
struct InstancePatch {
  std::vector<ConstraintId> constraint_ids;
  std::vector<std::vector<Entry>> constraint_rows;
  std::vector<ObjectiveId> objective_ids;
  std::vector<std::vector<Entry>> objective_rows;
  std::vector<AgentId> agent_ids;
  std::vector<std::vector<Incidence>> agent_constraints;
  std::vector<std::vector<Incidence>> agent_objectives;
};

class MaxMinInstance {
 public:
  MaxMinInstance() = default;

  std::int32_t num_agents() const { return num_agents_; }
  std::int32_t num_constraints() const {
    return static_cast<std::int32_t>(constraint_rows_.num_rows());
  }
  std::int32_t num_objectives() const {
    return static_cast<std::int32_t>(objective_rows_.num_rows());
  }

  // Row views (entries in port order).
  std::span<const Entry> constraint_row(ConstraintId i) const {
    LOCMM_DCHECK(i >= 0 && i < num_constraints());
    return constraint_rows_.row(static_cast<std::size_t>(i));
  }
  std::span<const Entry> objective_row(ObjectiveId k) const {
    LOCMM_DCHECK(k >= 0 && k < num_objectives());
    return objective_rows_.row(static_cast<std::size_t>(k));
  }

  // Agent incidence views (rows in port order).
  std::span<const Incidence> agent_constraints(AgentId v) const {
    LOCMM_DCHECK(v >= 0 && v < num_agents());
    return agent_constraint_rows_.row(static_cast<std::size_t>(v));
  }
  std::span<const Incidence> agent_objectives(AgentId v) const {
    LOCMM_DCHECK(v >= 0 && v < num_agents());
    return agent_objective_rows_.row(static_cast<std::size_t>(v));
  }

  InstanceStats stats() const;

  // The utility omega(x) = min over objectives of the objective's row value.
  // Requires at least one objective.
  double utility(std::span<const double> x) const;

  // Per-objective utilities omega_k(x).
  std::vector<double> objective_values(std::span<const double> x) const;

  // max over constraints of (a_i . x) - 1; negative/zero means feasible.
  // Also accounts for negativity of x: returns max(violation, -min_v x_v).
  double violation(std::span<const double> x) const;

  bool is_feasible(std::span<const double> x, double tol = 1e-9) const {
    return violation(x) <= tol;
  }

  // Structural sanity per §4's preamble: every constraint and objective is
  // adjacent to >= 1 agent; every agent to >= 1 constraint and >= 1
  // objective; all coefficients strictly positive; no duplicate agent within
  // a row.  Throws CheckError with a description if violated.
  void validate() const;

  // True if the communication graph (agents + constraints + objectives as
  // nodes) is connected.  The algorithm handles components independently;
  // generators aim to produce connected instances and test with this.
  bool connected() const;

  // Applies a batched edit in place (lp/delta.hpp: removes, then adds, then
  // coefficient edits), leaving every touched row accessor-identical to an
  // InstanceBuilder rebuild of the edited instance.  Cost: O(1) array writes
  // per coefficient edit and O(row degree), amortized, per membership edit
  // (the rows splice in place; nothing shifts globally).  Checks the local
  // invariants of the touched rows/agents after the batch; defined in
  // lp/delta.cpp.
  void apply(const InstanceDelta& delta);

  // Captures the current contents of the named rows/agents (duplicates in
  // the id lists are fine; each is recorded once per occurrence and restores
  // idempotently).  restore() writes a patch back, reverting an apply()
  // whose footprint the patch covers.  Both cost O(patch), never O(n).
  InstancePatch snapshot(std::span<const ConstraintId> constraints,
                         std::span<const ObjectiveId> objectives,
                         std::span<const AgentId> agents) const;
  void restore(const InstancePatch& patch);

  friend class InstanceBuilder;

 private:
  std::int32_t num_agents_ = 0;

  // Slack CSR over constraint rows / objective rows, and over agents'
  // incident constraints / objectives (in port order).
  SplicedRows<Entry> constraint_rows_;
  SplicedRows<Entry> objective_rows_;
  SplicedRows<Incidence> agent_constraint_rows_;
  SplicedRows<Incidence> agent_objective_rows_;
};

// Accumulates rows, then build() computes agent incidence and validates
// index ranges.  Entry order inside each row is preserved (it defines the
// ports); the agent-side port order is the order in which rows mentioning
// the agent were added (constraints first by row insertion order, then the
// same for objectives).
class InstanceBuilder {
 public:
  // Declare agents up front or grow implicitly via add_agents.
  explicit InstanceBuilder(std::int32_t num_agents = 0)
      : num_agents_(num_agents) {
    LOCMM_CHECK(num_agents >= 0);
  }

  AgentId add_agent() { return num_agents_++; }
  void ensure_agents(std::int32_t n) {
    LOCMM_CHECK(n >= 0);
    if (n > num_agents_) num_agents_ = n;
  }

  ConstraintId add_constraint(std::vector<Entry> row);
  ObjectiveId add_objective(std::vector<Entry> row);

  std::int32_t num_agents() const { return num_agents_; }
  std::int32_t num_constraints() const {
    return static_cast<std::int32_t>(constraint_rows_.size());
  }
  std::int32_t num_objectives() const {
    return static_cast<std::int32_t>(objective_rows_.size());
  }

  // Builds the instance.  If `validate` is true (default), also runs
  // MaxMinInstance::validate().
  MaxMinInstance build(bool validate = true) const;

 private:
  std::int32_t num_agents_ = 0;
  std::vector<std::vector<Entry>> constraint_rows_;
  std::vector<std::vector<Entry>> objective_rows_;
};

// Returns a copy of `inst` with agents relabelled by `perm` (new id of agent
// v is perm[v]) and row orders preserved.  Utility/feasibility are invariant
// under this; used by the invariance property tests.
MaxMinInstance relabel_agents(const MaxMinInstance& inst,
                              std::span<const AgentId> perm);

// Human-readable one-line summary, e.g. "V=12 I=20 K=6 dI=3 dK=4".
std::string describe(const MaxMinInstance& inst);

}  // namespace locmm
