// preprocess.hpp -- degenerate-case handling from the §4 preamble.
//
//   "Indeed, isolated constraints can be deleted, isolated objectives force
//    the optimum of (2) to zero, non-contributing agents can be set to
//    zero, and unconstrained agents can be set to +infinity."
//
// MaxMinInstance::validate() deliberately rejects these shapes; this module
// is the missing front door.  It takes a *raw* instance description and
// iterates the four rules to a fixpoint:
//   * empty constraint rows are dropped;
//   * an empty objective row pins the optimum to zero (the result is
//     decided immediately: x = 0 is optimal);
//   * agents in no objective are set to zero and removed;
//   * agents in no constraint make every objective they serve satisfiable
//     to any level, so those objectives are removed (they can never be the
//     minimum), and the agent is remembered as *unbounded*;
// removals cascade (dropping an objective can orphan further agents, which
// can empty further rows), hence the fixpoint loop.
//
// lift() converts a solution of the reduced instance into a solution of the
// raw system: zeroed agents get 0, and each unbounded agent gets the value
// required to serve its removed objectives at the achieved utility.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lp/instance.hpp"

namespace locmm {

struct RawInstance {
  std::int32_t num_agents = 0;
  std::vector<std::vector<Entry>> constraints;
  std::vector<std::vector<Entry>> objectives;
};

class PreprocessResult {
 public:
  // True if preprocessing alone settled the problem (see decided_zero()).
  bool decided() const { return decided_; }
  // An isolated objective forces omega* = 0 (x = 0 is then optimal).
  bool decided_zero() const { return decided_; }

  // The validated reduced instance (only when !decided()).
  const MaxMinInstance& instance() const {
    LOCMM_CHECK_MSG(!decided_, "instance() on a decided preprocess result");
    return instance_;
  }

  // Raw agents whose value may be made arbitrarily large (unconstrained and
  // contributing); lift() assigns them just enough for `utility`.
  const std::vector<AgentId>& unbounded_agents() const { return unbounded_; }

  // Maps a solution of instance() (utility `utility`) to the raw agent
  // space with the same (or better) raw utility.
  std::vector<double> lift(std::span<const double> x_reduced,
                           double utility) const;

  friend PreprocessResult preprocess(const RawInstance& raw);

 private:
  bool decided_ = false;
  MaxMinInstance instance_;
  std::int32_t raw_agents_ = 0;
  std::vector<std::int32_t> reduced_id_;   // raw agent -> reduced id or -1
  std::vector<AgentId> unbounded_;
  // For each removed objective: (unbounded agent chosen to serve it, its
  // coefficient there).  lift() sets the agent to utility / coeff.
  std::vector<std::pair<AgentId, double>> removed_objective_server_;
};

PreprocessResult preprocess(const RawInstance& raw);

}  // namespace locmm
