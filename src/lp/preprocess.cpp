#include "lp/preprocess.hpp"

#include <algorithm>

namespace locmm {

PreprocessResult preprocess(const RawInstance& raw) {
  LOCMM_CHECK(raw.num_agents >= 0);
  const auto n = static_cast<std::size_t>(raw.num_agents);
  for (const auto& row : raw.constraints) {
    for (const Entry& e : row) {
      LOCMM_CHECK_MSG(e.agent >= 0 && e.agent < raw.num_agents,
                      "raw constraint references agent " << e.agent);
      LOCMM_CHECK_MSG(e.coeff > 0.0, "raw coefficients must be positive");
    }
  }
  for (const auto& row : raw.objectives) {
    for (const Entry& e : row) {
      LOCMM_CHECK_MSG(e.agent >= 0 && e.agent < raw.num_agents,
                      "raw objective references agent " << e.agent);
      LOCMM_CHECK_MSG(e.coeff > 0.0, "raw coefficients must be positive");
    }
  }

  PreprocessResult out;
  out.raw_agents_ = raw.num_agents;

  // Live flags, driven to a fixpoint.
  std::vector<char> agent_alive(n, 1);
  std::vector<char> agent_unbounded(n, 0);
  std::vector<char> constraint_alive(raw.constraints.size(), 1);
  std::vector<char> objective_alive(raw.objectives.size(), 1);

  // An objective that is empty *from the start* pins omega* to zero.
  for (const auto& row : raw.objectives) {
    if (row.empty()) {
      out.decided_ = true;
      out.reduced_id_.assign(n, -1);
      return out;
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;

    // Isolated (empty) constraints are deleted.
    for (std::size_t i = 0; i < raw.constraints.size(); ++i) {
      if (!constraint_alive[i]) continue;
      bool any = false;
      for (const Entry& e : raw.constraints[i]) {
        if (agent_alive[static_cast<std::size_t>(e.agent)]) any = true;
      }
      if (!any) {
        constraint_alive[i] = 0;
        changed = true;
      }
    }

    // Agents: count live incidences.
    std::vector<std::int32_t> in_constraints(n, 0), in_objectives(n, 0);
    for (std::size_t i = 0; i < raw.constraints.size(); ++i) {
      if (!constraint_alive[i]) continue;
      for (const Entry& e : raw.constraints[i]) {
        if (agent_alive[static_cast<std::size_t>(e.agent)])
          ++in_constraints[static_cast<std::size_t>(e.agent)];
      }
    }
    for (std::size_t k = 0; k < raw.objectives.size(); ++k) {
      if (!objective_alive[k]) continue;
      for (const Entry& e : raw.objectives[k]) {
        if (agent_alive[static_cast<std::size_t>(e.agent)])
          ++in_objectives[static_cast<std::size_t>(e.agent)];
      }
    }

    for (std::size_t v = 0; v < n; ++v) {
      if (!agent_alive[v]) continue;
      if (in_objectives[v] == 0) {
        // Non-contributing: set to zero and remove.
        agent_alive[v] = 0;
        changed = true;
      } else if (in_constraints[v] == 0) {
        // Unconstrained and contributing: its objectives can be served to
        // any level, so they can never be the minimum -- remove them and
        // remember the agent.
        agent_unbounded[v] = 1;
        agent_alive[v] = 0;
        changed = true;
        for (std::size_t k = 0; k < raw.objectives.size(); ++k) {
          if (!objective_alive[k]) continue;
          for (const Entry& e : raw.objectives[k]) {
            if (static_cast<std::size_t>(e.agent) == v) {
              objective_alive[k] = 0;
              out.removed_objective_server_.emplace_back(
                  static_cast<AgentId>(v), e.coeff);
              break;
            }
          }
        }
      }
    }

    // An objective that *became* empty after removals: its remaining
    // support is gone.  Its agents were removed either as non-contributing
    // (value 0 -- but then the objective pins omega to 0 only if no other
    // support...) -- by construction an alive objective loses members only
    // when they were zeroed or unbounded; if ALL members were zeroed the
    // optimum is 0; if any was unbounded the row was already removed above.
    for (std::size_t k = 0; k < raw.objectives.size(); ++k) {
      if (!objective_alive[k]) continue;
      bool any = false;
      for (const Entry& e : raw.objectives[k]) {
        if (agent_alive[static_cast<std::size_t>(e.agent)]) any = true;
      }
      if (!any) {
        out.decided_ = true;
        out.reduced_id_.assign(n, -1);
        return out;
      }
    }
  }

  // Assemble the reduced instance.
  out.reduced_id_.assign(n, -1);
  InstanceBuilder b;
  for (std::size_t v = 0; v < n; ++v) {
    if (agent_alive[v]) out.reduced_id_[v] = b.add_agent();
    if (agent_unbounded[v]) out.unbounded_.push_back(static_cast<AgentId>(v));
  }
  for (std::size_t i = 0; i < raw.constraints.size(); ++i) {
    if (!constraint_alive[i]) continue;
    std::vector<Entry> row;
    for (const Entry& e : raw.constraints[i]) {
      const std::int32_t id = out.reduced_id_[static_cast<std::size_t>(e.agent)];
      if (id >= 0) row.push_back({id, e.coeff});
    }
    if (!row.empty()) b.add_constraint(std::move(row));
  }
  for (std::size_t k = 0; k < raw.objectives.size(); ++k) {
    if (!objective_alive[k]) continue;
    std::vector<Entry> row;
    for (const Entry& e : raw.objectives[k]) {
      const std::int32_t id = out.reduced_id_[static_cast<std::size_t>(e.agent)];
      if (id >= 0) row.push_back({id, e.coeff});
    }
    LOCMM_CHECK(!row.empty());
    b.add_objective(std::move(row));
  }
  LOCMM_CHECK_MSG(b.num_objectives() > 0,
                  "all objectives removed as unbounded; the raw optimum is "
                  "+infinity (no meaningful max-min instance remains)");
  out.instance_ = b.build();
  return out;
}

std::vector<double> PreprocessResult::lift(std::span<const double> x_reduced,
                                           double utility) const {
  std::vector<double> x(static_cast<std::size_t>(raw_agents_), 0.0);
  if (decided_) return x;  // x = 0 is optimal (omega* = 0)
  LOCMM_CHECK(static_cast<std::int32_t>(x_reduced.size()) ==
              instance_.num_agents());
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (reduced_id_[v] >= 0)
      x[v] = x_reduced[static_cast<std::size_t>(reduced_id_[v])];
  }
  // Serve each removed objective at `utility` through its chosen agent.
  for (const auto& [agent, coeff] : removed_objective_server_) {
    x[static_cast<std::size_t>(agent)] =
        std::max(x[static_cast<std::size_t>(agent)], utility / coeff);
  }
  return x;
}

}  // namespace locmm
