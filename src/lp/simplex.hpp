// simplex.hpp -- dense two-phase primal simplex for ground-truth optima.
//
// The paper assumes each node can solve a (small) LP exactly (§5.2); we also
// need the *global* optimum omega* as the denominator of every measured
// approximation ratio.  This is a from-scratch tableau simplex:
//   maximise  c . z   subject to  M z <= b,  z >= 0
// with arbitrary-sign b (phase 1 with artificials when some b < 0),
// Dantzig pricing with an automatic switch to Bland's rule under degeneracy
// (anti-cycling), and dual extraction so callers can verify optimality via
// a duality certificate instead of trusting the solver.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace locmm {

enum class LpStatus {
  kOptimal,
  kUnbounded,
  kInfeasible,
  kIterationLimit,
};

const char* to_string(LpStatus s);

struct SparseLpRow {
  std::vector<std::pair<std::int32_t, double>> entries;  // (column, coeff)
  double rhs = 0.0;
};

struct SimplexOptions {
  double tol = 1e-9;            // pivot/feasibility tolerance
  std::int64_t max_iters = 0;   // 0 = automatic (50*(m+n) + 10000)
  // After this many consecutive degenerate pivots, switch to Bland's rule
  // until the objective strictly improves.
  int degenerate_switch = 64;
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> primal;  // size = num_vars
  std::vector<double> dual;    // size = num_rows; multipliers of the <= rows
  std::int64_t iterations = 0;
};

// Solves max c.z s.t. rows, z >= 0.  `objective` must have size num_vars;
// row entries must reference columns in [0, num_vars).
LpResult simplex_solve_max(std::int32_t num_vars,
                           std::span<const SparseLpRow> rows,
                           std::span<const double> objective,
                           const SimplexOptions& options = {});

}  // namespace locmm
