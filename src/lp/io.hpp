// io.hpp -- plain-text serialization of max-min LP instances.
//
// Format (line oriented, '#' comments allowed):
//   maxminlp 1
//   agents <n>
//   constraint <agent> <coeff> [<agent> <coeff> ...]
//   objective  <agent> <coeff> [<agent> <coeff> ...]
// Entry order is preserved, so the port numbering round-trips.
#pragma once

#include <iosfwd>
#include <string>

#include "lp/instance.hpp"

namespace locmm {

void write_instance(std::ostream& os, const MaxMinInstance& inst);
MaxMinInstance read_instance(std::istream& is);

void save_instance(const std::string& path, const MaxMinInstance& inst);
MaxMinInstance load_instance(const std::string& path);

}  // namespace locmm
