// io.hpp -- plain-text serialization of max-min LP instances.
//
// Format (line oriented, '#' comments allowed):
//   maxminlp 1
//   agents <n>
//   constraint <agent> <coeff> [<agent> <coeff> ...]
//   objective  <agent> <coeff> [<agent> <coeff> ...]
// Entry order is preserved, so the port numbering round-trips.
//
// read_instance treats the stream as UNTRUSTED: every malformed shape --
// truncated lines, garbage tokens, overflowing ids, header violations,
// semantic rejects out of the builder -- throws ParseError with the
// offending line number, never UB and never a partially built instance
// (tests/io_test.cpp drives a corpus of hostile streams through it under
// ASan).  ReadLimits caps the resources a hostile stream can commit before
// validation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "lp/instance.hpp"
#include "support/check.hpp"

namespace locmm {

// Malformed input stream.  Derives from CheckError so legacy catch sites
// keep working, but a parse failure is a caller-attributable input error,
// not an internal invariant: the serving layer maps it to a structured
// rejection instead of letting it escape as CheckError.
class ParseError : public CheckError {
 public:
  explicit ParseError(const std::string& what) : CheckError(what) {}
};

// Ceilings against allocation bombs: an "agents 2000000000" line would
// otherwise commit gigabytes before the builder validates anything.  The
// defaults sit far above every real instance in this repo; serving tenants
// pass tighter ones.
struct ReadLimits {
  std::int64_t max_agents = 50'000'000;
  std::int64_t max_rows = 100'000'000;
  std::int64_t max_row_entries = 1'000'000;
};

void write_instance(std::ostream& os, const MaxMinInstance& inst);
MaxMinInstance read_instance(std::istream& is, const ReadLimits& limits = {});

void save_instance(const std::string& path, const MaxMinInstance& inst);
MaxMinInstance load_instance(const std::string& path);

}  // namespace locmm
