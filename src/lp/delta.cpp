#include "lp/delta.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>

namespace locmm {

const char* to_string(RowKind k) {
  switch (k) {
    case RowKind::kConstraint: return "constraint";
    case RowKind::kObjective: return "objective";
  }
  return "?";
}

namespace {

// The spliced-CSR pair an edit addresses: row entries + agent incidence,
// selected by RowKind.  Both live inside MaxMinInstance; the helpers below
// splice the touched row and agent only -- O(row degree), never O(nnz).
struct RowArrays {
  SplicedRows<Entry>& rows;
  SplicedRows<Incidence>& agents;
};

std::int64_t find_in_row(const RowArrays& a, std::int32_t row, AgentId v) {
  const auto entries = a.rows.row(static_cast<std::size_t>(row));
  for (std::size_t j = 0; j < entries.size(); ++j) {
    if (entries[j].agent == v) return static_cast<std::int64_t>(j);
  }
  return -1;
}

std::int64_t find_in_agent(const RowArrays& a, AgentId v, std::int32_t row) {
  const auto inc = a.agents.row(static_cast<std::size_t>(v));
  for (std::size_t j = 0; j < inc.size(); ++j) {
    if (inc[j].row == row) return static_cast<std::int64_t>(j);
  }
  return -1;
}

// The mutation helpers below run only after check_applicable has admitted
// the whole batch, so their lookups cannot fail on well-formed callers; the
// CHECKs that remain guard the internal CSR invariants, not the input.

void remove_membership(RowArrays a, const MembershipEdit& e) {
  const std::int64_t rj = find_in_row(a, e.row, e.agent);
  LOCMM_CHECK(rj >= 0);
  a.rows.erase(static_cast<std::size_t>(e.row), static_cast<std::size_t>(rj));
  const std::int64_t aj = find_in_agent(a, e.agent, e.row);
  LOCMM_CHECK(aj >= 0);
  a.agents.erase(static_cast<std::size_t>(e.agent),
                 static_cast<std::size_t>(aj));
}

void add_membership(RowArrays a, const MembershipEdit& e) {
  // Appended at the end of the row: the new entry takes the last port,
  // exactly where InstanceBuilder would put it.
  a.rows.push_back(static_cast<std::size_t>(e.row), Entry{e.agent, e.coeff});
  // Agent side: the builder scans rows in id order, so the incidence list is
  // sorted ascending by row; insert at the position that keeps it so.
  const auto inc = a.agents.row(static_cast<std::size_t>(e.agent));
  std::size_t pos = 0;
  while (pos < inc.size() && inc[pos].row < e.row) ++pos;
  a.agents.insert(static_cast<std::size_t>(e.agent), pos,
                  Incidence{e.row, e.coeff});
}

void edit_coefficient(RowArrays a, const CoeffEdit& e) {
  const std::int64_t rj = find_in_row(a, e.row, e.agent);
  LOCMM_CHECK(rj >= 0);
  a.rows.mutable_row(
      static_cast<std::size_t>(e.row))[static_cast<std::size_t>(rj)]
      .coeff = e.coeff;
  const std::int64_t aj = find_in_agent(a, e.agent, e.row);
  LOCMM_CHECK(aj >= 0);
  a.agents.mutable_row(
      static_cast<std::size_t>(e.agent))[static_cast<std::size_t>(aj)]
      .coeff = e.coeff;
}

// 64-bit keys for the dry-run simulation maps: (kind, row, agent) for
// memberships, (kind, id) for per-row / per-agent growth accounting.
std::uint64_t edge_key(RowKind k, std::int32_t row, AgentId agent) {
  return (static_cast<std::uint64_t>(k == RowKind::kObjective) << 63) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(agent));
}
std::uint64_t id_key(RowKind k, std::int32_t id) {
  return (static_cast<std::uint64_t>(k == RowKind::kObjective) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
}

}  // namespace

std::vector<std::string> InstanceDelta::check_applicable(
    const MaxMinInstance& inst) const {
  std::vector<std::string> out;
  auto complain = [&out](const auto& streamable) {
    std::ostringstream os;
    streamable(os);
    out.push_back(os.str());
  };

  // Batch-local state: membership overrides keyed by (kind, row, agent),
  // and net growth per touched row / per touched agent incidence list.  The
  // instance is consulted lazily (one row scan per distinct edge), so the
  // dry run costs O(batch * row degree) like apply() itself -- never O(n).
  std::unordered_map<std::uint64_t, bool> present;
  std::unordered_map<std::uint64_t, std::int64_t> row_growth;
  std::unordered_map<std::uint64_t, std::int64_t> agent_growth;

  auto rows_of = [&inst](RowKind k) {
    return k == RowKind::kConstraint ? inst.num_constraints()
                                     : inst.num_objectives();
  };
  auto ids_ok = [&](RowKind k, std::int32_t row, AgentId agent) {
    bool ok = true;
    if (row < 0 || row >= rows_of(k)) {
      complain([&](std::ostringstream& os) {
        os << to_string(k) << " row " << row << " out of range";
      });
      ok = false;
    }
    if (agent < 0 || agent >= inst.num_agents()) {
      complain([&](std::ostringstream& os) {
        os << "agent " << agent << " out of range";
      });
      ok = false;
    }
    return ok;
  };
  auto entry_in_instance = [&](RowKind k, std::int32_t row, AgentId agent) {
    const auto entries = k == RowKind::kConstraint ? inst.constraint_row(row)
                                                   : inst.objective_row(row);
    for (const Entry& e : entries) {
      if (e.agent == agent) return true;
    }
    return false;
  };
  auto is_present = [&](RowKind k, std::int32_t row, AgentId agent) {
    const auto it = present.find(edge_key(k, row, agent));
    if (it != present.end()) return it->second;
    return entry_in_instance(k, row, agent);
  };
  auto coeff_ok = [&](RowKind k, std::int32_t row, AgentId agent, double c,
                      const char* verb) {
    if (c > 0.0 && std::isfinite(c)) return true;
    complain([&](std::ostringstream& os) {
      os << "delta " << verb << " " << to_string(k) << " row " << row
         << ", agent " << agent << " with "
         << (c > 0.0 ? "non-finite" : "non-positive") << " coefficient " << c;
    });
    return false;
  };

  for (const MembershipEdit& e : removes) {
    if (!ids_ok(e.kind, e.row, e.agent)) continue;
    if (!is_present(e.kind, e.row, e.agent)) {
      complain([&](std::ostringstream& os) {
        os << "delta removes agent " << e.agent << " from "
           << to_string(e.kind) << " row " << e.row
           << ", but it is not there";
      });
      continue;
    }
    present[edge_key(e.kind, e.row, e.agent)] = false;
    --row_growth[id_key(e.kind, e.row)];
    --agent_growth[edge_key(e.kind, 0, e.agent)];
  }
  for (const MembershipEdit& e : adds) {
    if (!ids_ok(e.kind, e.row, e.agent)) continue;
    const bool well_formed = coeff_ok(e.kind, e.row, e.agent, e.coeff, "adds");
    if (is_present(e.kind, e.row, e.agent)) {
      complain([&](std::ostringstream& os) {
        os << "delta adds agent " << e.agent << " to " << to_string(e.kind)
           << " row " << e.row << ", but it is already there";
      });
      continue;
    }
    if (!well_formed) continue;
    present[edge_key(e.kind, e.row, e.agent)] = true;
    ++row_growth[id_key(e.kind, e.row)];
    ++agent_growth[edge_key(e.kind, 0, e.agent)];
  }
  for (const CoeffEdit& e : coeff_edits) {
    if (!ids_ok(e.kind, e.row, e.agent)) continue;
    coeff_ok(e.kind, e.row, e.agent, e.coeff, "sets");
    if (!is_present(e.kind, e.row, e.agent)) {
      complain([&](std::ostringstream& os) {
        os << "delta edits " << to_string(e.kind) << " row " << e.row
           << ", agent " << e.agent << ", but the entry does not exist";
      });
    }
  }

  // Post-batch local invariants of everything touched (the whole-instance
  // contract of validate(), restricted to the batch's footprint).
  for (const auto& [key, growth] : row_growth) {
    const RowKind k = (key >> 32) != 0 ? RowKind::kObjective
                                       : RowKind::kConstraint;
    const auto row = static_cast<std::int32_t>(key & 0xFFFFFFFFu);
    const auto size = static_cast<std::int64_t>(
        (k == RowKind::kConstraint ? inst.constraint_row(row).size()
                                   : inst.objective_row(row).size()));
    if (size + growth < 1) {
      complain([&](std::ostringstream& os) {
        os << "delta leaves " << to_string(k) << " row " << row << " empty";
      });
    }
  }
  for (const auto& [key, growth] : agent_growth) {
    const RowKind k = (key >> 63) != 0 ? RowKind::kObjective
                                       : RowKind::kConstraint;
    const auto agent = static_cast<AgentId>(key & 0xFFFFFFFFu);
    const auto size = static_cast<std::int64_t>(
        (k == RowKind::kConstraint ? inst.agent_constraints(agent).size()
                                   : inst.agent_objectives(agent).size()));
    if (size + growth < 1) {
      complain([&](std::ostringstream& os) {
        os << "delta leaves agent " << agent << " without "
           << (k == RowKind::kConstraint ? "constraints" : "objectives");
      });
    }
  }
  return out;
}

void MaxMinInstance::apply(const InstanceDelta& delta) {
  // Admit-then-mutate: the dry run validates the whole batch against the
  // untouched instance, and the mutation below cannot fail afterwards --
  // the strong exception guarantee (a rejected delta throws with the
  // instance bitwise unchanged).
  const std::vector<std::string> violations = delta.check_applicable(*this);
  LOCMM_CHECK_MSG(violations.empty(),
                  "delta rejected: " << violations.front()
                                     << (violations.size() > 1
                                             ? " (+" +
                                                   std::to_string(
                                                       violations.size() - 1) +
                                                   " more)"
                                             : ""));

  RowArrays con{constraint_rows_, agent_constraint_rows_};
  RowArrays obj{objective_rows_, agent_objective_rows_};
  auto arrays = [&](RowKind k) -> RowArrays& {
    return k == RowKind::kConstraint ? con : obj;
  };
  for (const MembershipEdit& e : delta.removes) {
    remove_membership(arrays(e.kind), e);
  }
  for (const MembershipEdit& e : delta.adds) {
    add_membership(arrays(e.kind), e);
  }
  for (const CoeffEdit& e : delta.coeff_edits) {
    edit_coefficient(arrays(e.kind), e);
  }
}

std::optional<InstanceDelta> diff_instances(const MaxMinInstance& from,
                                            const MaxMinInstance& to) {
  if (from.num_agents() != to.num_agents() ||
      from.num_constraints() != to.num_constraints() ||
      from.num_objectives() != to.num_objectives()) {
    return std::nullopt;
  }
  InstanceDelta delta;
  auto diff_rows = [&](RowKind kind, std::int32_t rows, auto row_of_from,
                       auto row_of_to) -> bool {
    for (std::int32_t r = 0; r < rows; ++r) {
      const auto a = row_of_from(r);
      const auto b = row_of_to(r);
      if (a.size() != b.size()) return false;
      for (std::size_t j = 0; j < a.size(); ++j) {
        if (a[j].agent != b[j].agent) return false;
        // Exact bit compare, so applying the diff reproduces `to` bitwise
        // (and 0.0 vs -0.0 counts as a change, conservatively).
        if (std::memcmp(&a[j].coeff, &b[j].coeff, sizeof(double)) != 0) {
          delta.coeff_edits.push_back({kind, r, a[j].agent, b[j].coeff});
        }
      }
    }
    return true;
  };
  if (!diff_rows(RowKind::kConstraint, from.num_constraints(),
                 [&](std::int32_t r) { return from.constraint_row(r); },
                 [&](std::int32_t r) { return to.constraint_row(r); })) {
    return std::nullopt;
  }
  if (!diff_rows(RowKind::kObjective, from.num_objectives(),
                 [&](std::int32_t r) { return from.objective_row(r); },
                 [&](std::int32_t r) { return to.objective_row(r); })) {
    return std::nullopt;
  }
  return delta;
}

}  // namespace locmm
