#include "lp/delta.hpp"

#include <algorithm>
#include <cstring>

namespace locmm {

const char* to_string(RowKind k) {
  switch (k) {
    case RowKind::kConstraint: return "constraint";
    case RowKind::kObjective: return "objective";
  }
  return "?";
}

namespace {

// The CSR pair an edit addresses: row entries + agent incidence, selected by
// RowKind.  All four arrays live inside MaxMinInstance; the helpers below
// mutate them through these references.
struct RowArrays {
  std::vector<std::int64_t>& row_offsets;
  std::vector<Entry>& row_entries;
  std::vector<std::int64_t>& agent_offsets;
  std::vector<Incidence>& agent_inc;
};

std::int64_t find_in_row(const RowArrays& a, std::int32_t row, AgentId v) {
  for (std::int64_t j = a.row_offsets[static_cast<std::size_t>(row)];
       j < a.row_offsets[static_cast<std::size_t>(row) + 1]; ++j) {
    if (a.row_entries[static_cast<std::size_t>(j)].agent == v) return j;
  }
  return -1;
}

std::int64_t find_in_agent(const RowArrays& a, AgentId v, std::int32_t row) {
  for (std::int64_t j = a.agent_offsets[static_cast<std::size_t>(v)];
       j < a.agent_offsets[static_cast<std::size_t>(v) + 1]; ++j) {
    if (a.agent_inc[static_cast<std::size_t>(j)].row == row) return j;
  }
  return -1;
}

void remove_membership(RowArrays a, const MembershipEdit& e) {
  const std::int64_t rj = find_in_row(a, e.row, e.agent);
  LOCMM_CHECK_MSG(rj >= 0, "delta removes agent " << e.agent << " from "
                                                  << to_string(e.kind)
                                                  << " row " << e.row
                                                  << ", but it is not there");
  a.row_entries.erase(a.row_entries.begin() + rj);
  for (std::size_t i = static_cast<std::size_t>(e.row) + 1;
       i < a.row_offsets.size(); ++i) {
    --a.row_offsets[i];
  }
  const std::int64_t aj = find_in_agent(a, e.agent, e.row);
  LOCMM_CHECK(aj >= 0);
  a.agent_inc.erase(a.agent_inc.begin() + aj);
  for (std::size_t i = static_cast<std::size_t>(e.agent) + 1;
       i < a.agent_offsets.size(); ++i) {
    --a.agent_offsets[i];
  }
}

void add_membership(RowArrays a, const MembershipEdit& e) {
  LOCMM_CHECK_MSG(e.coeff > 0.0, "delta adds agent "
                                     << e.agent << " to " << to_string(e.kind)
                                     << " row " << e.row
                                     << " with non-positive coefficient "
                                     << e.coeff);
  LOCMM_CHECK_MSG(find_in_row(a, e.row, e.agent) < 0,
                  "delta adds agent " << e.agent << " to " << to_string(e.kind)
                                      << " row " << e.row
                                      << ", but it is already there");
  // Appended at the end of the row: the new entry takes the last port,
  // exactly where InstanceBuilder would put it.
  a.row_entries.insert(
      a.row_entries.begin() + a.row_offsets[static_cast<std::size_t>(e.row) + 1],
      Entry{e.agent, e.coeff});
  for (std::size_t i = static_cast<std::size_t>(e.row) + 1;
       i < a.row_offsets.size(); ++i) {
    ++a.row_offsets[i];
  }
  // Agent side: the builder scans rows in id order, so the incidence list is
  // sorted ascending by row; insert at the position that keeps it so.
  std::int64_t pos = a.agent_offsets[static_cast<std::size_t>(e.agent)];
  const std::int64_t end = a.agent_offsets[static_cast<std::size_t>(e.agent) + 1];
  while (pos < end && a.agent_inc[static_cast<std::size_t>(pos)].row < e.row) {
    ++pos;
  }
  a.agent_inc.insert(a.agent_inc.begin() + pos, Incidence{e.row, e.coeff});
  for (std::size_t i = static_cast<std::size_t>(e.agent) + 1;
       i < a.agent_offsets.size(); ++i) {
    ++a.agent_offsets[i];
  }
}

void edit_coefficient(RowArrays a, const CoeffEdit& e) {
  LOCMM_CHECK_MSG(e.coeff > 0.0, "delta sets " << to_string(e.kind) << " row "
                                               << e.row << ", agent "
                                               << e.agent
                                               << " to non-positive "
                                               << e.coeff);
  const std::int64_t rj = find_in_row(a, e.row, e.agent);
  LOCMM_CHECK_MSG(rj >= 0, "delta edits " << to_string(e.kind) << " row "
                                          << e.row << ", agent " << e.agent
                                          << ", but the entry does not exist");
  a.row_entries[static_cast<std::size_t>(rj)].coeff = e.coeff;
  const std::int64_t aj = find_in_agent(a, e.agent, e.row);
  LOCMM_CHECK(aj >= 0);
  a.agent_inc[static_cast<std::size_t>(aj)].coeff = e.coeff;
}

}  // namespace

void MaxMinInstance::apply(const InstanceDelta& delta) {
  RowArrays con{constraint_offsets_, constraint_entries_,
                agent_constraint_offsets_, agent_constraint_inc_};
  RowArrays obj{objective_offsets_, objective_entries_,
                agent_objective_offsets_, agent_objective_inc_};
  auto arrays = [&](RowKind k) -> RowArrays& {
    return k == RowKind::kConstraint ? con : obj;
  };
  auto check_row_id = [&](RowKind k, std::int32_t row, AgentId v) {
    const std::int32_t rows =
        k == RowKind::kConstraint ? num_constraints() : num_objectives();
    LOCMM_CHECK_MSG(row >= 0 && row < rows,
                    to_string(k) << " row " << row << " out of range");
    LOCMM_CHECK_MSG(v >= 0 && v < num_agents(),
                    "agent " << v << " out of range");
  };

  // Touched rows/agents for the end-of-batch local validation.
  std::vector<std::int32_t> touched_con, touched_obj;
  std::vector<AgentId> touched_agents;
  auto touch = [&](RowKind k, std::int32_t row, AgentId v) {
    (k == RowKind::kConstraint ? touched_con : touched_obj).push_back(row);
    touched_agents.push_back(v);
  };

  for (const MembershipEdit& e : delta.removes) {
    check_row_id(e.kind, e.row, e.agent);
    remove_membership(arrays(e.kind), e);
    touch(e.kind, e.row, e.agent);
  }
  for (const MembershipEdit& e : delta.adds) {
    check_row_id(e.kind, e.row, e.agent);
    add_membership(arrays(e.kind), e);
    touch(e.kind, e.row, e.agent);
  }
  for (const CoeffEdit& e : delta.coeff_edits) {
    check_row_id(e.kind, e.row, e.agent);
    edit_coefficient(arrays(e.kind), e);
    touch(e.kind, e.row, e.agent);
  }

  // Local invariants of everything the batch touched (the whole-instance
  // contract of validate(), restricted to the edit's footprint).
  auto dedup = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(touched_con);
  dedup(touched_obj);
  dedup(touched_agents);
  for (const std::int32_t i : touched_con) {
    LOCMM_CHECK_MSG(!constraint_row(i).empty(),
                    "delta leaves constraint row " << i << " empty");
  }
  for (const std::int32_t k : touched_obj) {
    LOCMM_CHECK_MSG(!objective_row(k).empty(),
                    "delta leaves objective row " << k << " empty");
  }
  for (const AgentId v : touched_agents) {
    LOCMM_CHECK_MSG(!agent_constraints(v).empty(),
                    "delta leaves agent " << v << " without constraints");
    LOCMM_CHECK_MSG(!agent_objectives(v).empty(),
                    "delta leaves agent " << v << " without objectives");
  }
}

std::optional<InstanceDelta> diff_instances(const MaxMinInstance& from,
                                            const MaxMinInstance& to) {
  if (from.num_agents() != to.num_agents() ||
      from.num_constraints() != to.num_constraints() ||
      from.num_objectives() != to.num_objectives()) {
    return std::nullopt;
  }
  InstanceDelta delta;
  auto diff_rows = [&](RowKind kind, std::int32_t rows, auto row_of_from,
                       auto row_of_to) -> bool {
    for (std::int32_t r = 0; r < rows; ++r) {
      const auto a = row_of_from(r);
      const auto b = row_of_to(r);
      if (a.size() != b.size()) return false;
      for (std::size_t j = 0; j < a.size(); ++j) {
        if (a[j].agent != b[j].agent) return false;
        // Exact bit compare, so applying the diff reproduces `to` bitwise
        // (and 0.0 vs -0.0 counts as a change, conservatively).
        if (std::memcmp(&a[j].coeff, &b[j].coeff, sizeof(double)) != 0) {
          delta.coeff_edits.push_back({kind, r, a[j].agent, b[j].coeff});
        }
      }
    }
    return true;
  };
  if (!diff_rows(RowKind::kConstraint, from.num_constraints(),
                 [&](std::int32_t r) { return from.constraint_row(r); },
                 [&](std::int32_t r) { return to.constraint_row(r); })) {
    return std::nullopt;
  }
  if (!diff_rows(RowKind::kObjective, from.num_objectives(),
                 [&](std::int32_t r) { return from.objective_row(r); },
                 [&](std::int32_t r) { return to.objective_row(r); })) {
    return std::nullopt;
  }
  return delta;
}

}  // namespace locmm
