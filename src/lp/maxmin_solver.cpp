#include "lp/maxmin_solver.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace locmm {

MaxMinLpResult solve_lp_optimum(const MaxMinInstance& inst,
                                const SimplexOptions& options) {
  const std::int32_t n = inst.num_agents();
  const std::int32_t mi = inst.num_constraints();
  const std::int32_t mk = inst.num_objectives();
  LOCMM_CHECK_MSG(mk > 0, "max-min LP needs at least one objective");

  // Variables: columns [0, n) are x, column n is omega.
  std::vector<SparseLpRow> rows;
  rows.reserve(static_cast<std::size_t>(mi + mk));
  for (ConstraintId i = 0; i < mi; ++i) {
    SparseLpRow row;
    row.rhs = 1.0;
    for (const Entry& e : inst.constraint_row(i))
      row.entries.emplace_back(e.agent, e.coeff);
    rows.push_back(std::move(row));
  }
  for (ObjectiveId k = 0; k < mk; ++k) {
    SparseLpRow row;
    row.rhs = 0.0;
    row.entries.emplace_back(n, 1.0);  // +omega
    for (const Entry& e : inst.objective_row(k))
      row.entries.emplace_back(e.agent, -e.coeff);
    rows.push_back(std::move(row));
  }
  std::vector<double> objective(static_cast<std::size_t>(n) + 1, 0.0);
  objective.back() = 1.0;

  const LpResult lp = simplex_solve_max(n + 1, rows, objective, options);

  MaxMinLpResult out;
  out.status = lp.status;
  out.iterations = lp.iterations;
  if (lp.status != LpStatus::kOptimal) return out;
  out.omega = lp.objective;
  out.x.assign(lp.primal.begin(), lp.primal.begin() + n);
  out.dual_i.assign(lp.dual.begin(), lp.dual.begin() + mi);
  out.dual_k.assign(lp.dual.begin() + mi, lp.dual.end());
  return out;
}

CertificateReport check_certificate(const MaxMinInstance& inst,
                                    const MaxMinLpResult& result) {
  LOCMM_CHECK(result.status == LpStatus::kOptimal);
  const std::int32_t n = inst.num_agents();
  LOCMM_CHECK(static_cast<std::int32_t>(result.x.size()) == n);
  LOCMM_CHECK(static_cast<std::int32_t>(result.dual_i.size()) ==
              inst.num_constraints());
  LOCMM_CHECK(static_cast<std::int32_t>(result.dual_k.size()) ==
              inst.num_objectives());

  CertificateReport rep;
  rep.scale = std::abs(result.omega) + 1.0;

  rep.primal_violation = std::max(0.0, inst.violation(result.x));

  // Dual feasibility.
  double dviol = 0.0;
  for (double y : result.dual_i) dviol = std::max(dviol, -y);
  for (double y : result.dual_k) dviol = std::max(dviol, -y);
  // Per-agent rows: sum_i a_iv y_i - sum_k c_kv y_k >= 0.
  for (AgentId v = 0; v < n; ++v) {
    double lhs = 0.0;
    for (const Incidence& inc : inst.agent_constraints(v))
      lhs += inc.coeff * result.dual_i[inc.row];
    for (const Incidence& inc : inst.agent_objectives(v))
      lhs -= inc.coeff * result.dual_k[inc.row];
    dviol = std::max(dviol, -lhs);
  }
  // Omega row: sum_k y_k >= 1.
  double ysum = 0.0;
  for (double y : result.dual_k) ysum += y;
  dviol = std::max(dviol, 1.0 - ysum);
  rep.dual_violation = dviol;

  // Gap: omega(x) vs dual objective sum_i y_i.
  double dual_obj = 0.0;
  for (double y : result.dual_i) dual_obj += y;
  rep.gap = std::abs(inst.utility(result.x) - dual_obj);
  return rep;
}

}  // namespace locmm
