// maxmin_solver.hpp -- exact (ground-truth) solution of a max-min LP.
//
// The max-min LP
//   max omega  s.t.  A x <= 1,  C x >= omega 1,  x >= 0
// is solved as the standard-form LP over z = (x, omega):
//   max omega  s.t.  A x <= 1,  omega - C x <= 0,  x, omega >= 0.
// All right-hand sides are nonnegative, so the slack basis is feasible and
// phase 1 never runs.  A valid instance (validate() passes) is always
// feasible (x = 0) and bounded (every agent is constrained), so the status
// is kOptimal unless the iteration limit trips.
//
// The result carries the dual multipliers, and check_certificate() verifies
// optimality *independently of the solver*: primal feasibility, dual
// feasibility, and zero duality gap together certify omega* exactly (LP
// strong duality).  Every ground-truth value used in the experiments is
// gated on this certificate.
#pragma once

#include <span>
#include <vector>

#include "lp/instance.hpp"
#include "lp/simplex.hpp"

namespace locmm {

struct MaxMinLpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double omega = 0.0;            // optimal utility omega*
  std::vector<double> x;         // optimal agent values
  std::vector<double> dual_i;    // multipliers of the packing rows (>= 0)
  std::vector<double> dual_k;    // multipliers of the covering rows (>= 0)
  std::int64_t iterations = 0;
};

MaxMinLpResult solve_lp_optimum(const MaxMinInstance& inst,
                                const SimplexOptions& options = {});

// LP duality certificate for the max-min LP.  With y_i >= 0, y_k >= 0:
//   dual feasibility:  sum_i a_iv y_i >= sum_k c_kv y_k  for every agent v,
//                      sum_k y_k >= 1,
//   weak duality:      omega(any feasible x) <= sum_i y_i,
// so primal-feasible x with utility equal to sum_i y_i is optimal.
struct CertificateReport {
  double primal_violation = 0.0;  // max constraint violation of x
  double dual_violation = 0.0;    // max violation of the dual constraints
  double gap = 0.0;               // |omega(x) - sum_i y_i|
  double scale = 1.0;             // |omega*| + 1, for relative comparison
  bool ok(double tol = 1e-7) const {
    return primal_violation <= tol * scale && dual_violation <= tol * scale &&
           gap <= tol * scale;
  }
};

CertificateReport check_certificate(const MaxMinInstance& inst,
                                    const MaxMinLpResult& result);

}  // namespace locmm
