#include "lp/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "support/check.hpp"

namespace locmm {

void write_instance(std::ostream& os, const MaxMinInstance& inst) {
  os << "maxminlp 1\n";
  os << "agents " << inst.num_agents() << "\n";
  os << std::setprecision(17);
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i) {
    os << "constraint";
    for (const Entry& e : inst.constraint_row(i))
      os << ' ' << e.agent << ' ' << e.coeff;
    os << "\n";
  }
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    os << "objective";
    for (const Entry& e : inst.objective_row(k))
      os << ' ' << e.agent << ' ' << e.coeff;
    os << "\n";
  }
}

namespace {

[[noreturn]] void parse_fail(std::int64_t line_no, const std::string& msg) {
  throw ParseError("parse error at line " + std::to_string(line_no) + ": " +
                   msg);
}

}  // namespace

MaxMinInstance read_instance(std::istream& is, const ReadLimits& limits) {
  std::string line;
  std::int64_t line_no = 0;
  std::int64_t rows = 0;
  bool saw_magic = false;
  InstanceBuilder builder;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank line
    if (word == "maxminlp") {
      int version = 0;
      if (!(ls >> version) || version != 1) {
        parse_fail(line_no, "unsupported maxminlp version");
      }
      saw_magic = true;
    } else if (word == "agents") {
      if (!saw_magic) parse_fail(line_no, "missing 'maxminlp 1' header");
      std::int64_t n = -1;
      if (!(ls >> n) || n < 0) parse_fail(line_no, "bad agents line");
      if (n > limits.max_agents) {
        parse_fail(line_no, "agents " + std::to_string(n) +
                                " exceeds the limit of " +
                                std::to_string(limits.max_agents));
      }
      builder.ensure_agents(static_cast<std::int32_t>(n));
    } else if (word == "constraint" || word == "objective") {
      if (!saw_magic) parse_fail(line_no, "missing 'maxminlp 1' header");
      if (++rows > limits.max_rows) {
        parse_fail(line_no, "more than " + std::to_string(limits.max_rows) +
                                " rows");
      }
      std::vector<Entry> row;
      AgentId agent;
      double coeff;
      while (ls >> agent) {
        if (!(ls >> coeff)) {
          parse_fail(line_no, "bad or missing coefficient in " + word +
                                  " row (after agent " +
                                  std::to_string(agent) + ")");
        }
        if (static_cast<std::int64_t>(row.size()) >= limits.max_row_entries) {
          parse_fail(line_no, "row exceeds " +
                                  std::to_string(limits.max_row_entries) +
                                  " entries");
        }
        row.push_back({agent, coeff});
      }
      // The extraction loop stops at end-of-line OR on a token that is not
      // an agent id (garbage, or an id overflowing int32) -- tell them
      // apart so hostile tokens fail loudly instead of truncating the row.
      if (ls.fail() && !ls.eof()) {
        std::string tok;
        ls.clear();
        ls >> tok;
        parse_fail(line_no, "bad token '" + tok + "' in " + word + " row");
      }
      if (row.empty()) parse_fail(line_no, "empty " + word + " row");
      if (word == "constraint") {
        builder.add_constraint(std::move(row));
      } else {
        builder.add_objective(std::move(row));
      }
    } else {
      parse_fail(line_no, "unknown directive '" + word + "'");
    }
  }
  if (is.bad()) parse_fail(line_no, "stream I/O failure");
  if (!saw_magic) parse_fail(line_no, "missing 'maxminlp 1' header");
  // The builder's semantic validation (ids in range, coefficients positive,
  // no duplicate agent per row, every agent constrained and objectived) is
  // an input problem here, not an internal invariant: re-brand it.
  try {
    return builder.build();
  } catch (const ParseError&) {
    throw;
  } catch (const CheckError& e) {
    throw ParseError(std::string("parse error: invalid instance: ") +
                     e.what());
  }
}

void save_instance(const std::string& path, const MaxMinInstance& inst) {
  std::ofstream os(path);
  LOCMM_CHECK_MSG(os, "cannot open '" << path << "' for writing");
  write_instance(os, inst);
  LOCMM_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

MaxMinInstance load_instance(const std::string& path) {
  std::ifstream is(path);
  LOCMM_CHECK_MSG(is, "cannot open '" << path << "' for reading");
  return read_instance(is);
}

}  // namespace locmm
