#include "lp/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "support/check.hpp"

namespace locmm {

void write_instance(std::ostream& os, const MaxMinInstance& inst) {
  os << "maxminlp 1\n";
  os << "agents " << inst.num_agents() << "\n";
  os << std::setprecision(17);
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i) {
    os << "constraint";
    for (const Entry& e : inst.constraint_row(i))
      os << ' ' << e.agent << ' ' << e.coeff;
    os << "\n";
  }
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    os << "objective";
    for (const Entry& e : inst.objective_row(k))
      os << ' ' << e.agent << ' ' << e.coeff;
    os << "\n";
  }
}

MaxMinInstance read_instance(std::istream& is) {
  std::string line;
  bool saw_magic = false;
  InstanceBuilder builder;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank line
    if (word == "maxminlp") {
      int version = 0;
      LOCMM_CHECK_MSG(ls >> version && version == 1,
                      "unsupported maxminlp version");
      saw_magic = true;
    } else if (word == "agents") {
      LOCMM_CHECK_MSG(saw_magic, "missing 'maxminlp 1' header");
      std::int32_t n = 0;
      LOCMM_CHECK_MSG((ls >> n) && n >= 0, "bad agents line");
      builder.ensure_agents(n);
    } else if (word == "constraint" || word == "objective") {
      LOCMM_CHECK_MSG(saw_magic, "missing 'maxminlp 1' header");
      std::vector<Entry> row;
      AgentId agent;
      double coeff;
      while (ls >> agent) {
        LOCMM_CHECK_MSG(ls >> coeff, "dangling agent id in row");
        row.push_back({agent, coeff});
      }
      LOCMM_CHECK_MSG(!row.empty(), "empty " << word << " row");
      if (word == "constraint") {
        builder.add_constraint(std::move(row));
      } else {
        builder.add_objective(std::move(row));
      }
    } else {
      LOCMM_CHECK_MSG(false, "unknown directive '" << word << "'");
    }
  }
  LOCMM_CHECK_MSG(saw_magic, "missing 'maxminlp 1' header");
  return builder.build();
}

void save_instance(const std::string& path, const MaxMinInstance& inst) {
  std::ofstream os(path);
  LOCMM_CHECK_MSG(os, "cannot open '" << path << "' for writing");
  write_instance(os, inst);
  LOCMM_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

MaxMinInstance load_instance(const std::string& path) {
  std::ifstream is(path);
  LOCMM_CHECK_MSG(is, "cannot open '" << path << "' for reading");
  return read_instance(is);
}

}  // namespace locmm
