// delta.hpp -- batched edits against a MaxMinInstance (the dynamic-update
// model of paper §1.3).
//
// A local algorithm is automatically an efficient *dynamic* algorithm: a
// change to one coefficient can only affect outputs inside the radius-D(R)
// ball around the touched edge.  InstanceDelta is the edit language that the
// incremental layers speak (lp -> graph -> core -> dynamic): coefficient
// changes plus add/remove of row memberships, addressed by (row, agent) so a
// delta survives being routed through deterministic rewrites that preserve
// ids.
//
// Application order within one batch is fixed: removes, then adds, then
// coefficient edits (each group in vector order).  This makes the common
// structural edits expressible atomically -- e.g. rewiring a special-form
// |Vi| = 2 constraint is remove(i, w) + add(i, w'), and moving an agent
// between objectives is remove(k, v) + add(k', v) -- without ever observing
// a half-applied state.  Local invariants (rows non-empty, no duplicate
// agent in a row, every touched agent keeps >= 1 constraint and >= 1
// objective, coefficients > 0 and finite) are validated by
// check_applicable, a dry run that simulates the whole batch WITHOUT
// mutating anything -- the admission-control primitive of the serving layer
// (src/serve): untrusted tenant deltas are screened before any state is
// touched, and every violation comes back as a structured message instead
// of a throw.
//
// MaxMinInstance::apply gives the strong exception guarantee on top of it:
// the batch is checked in full first, and only a clean batch mutates (the
// mutation itself cannot fail), so a rejected delta throws CheckError with
// the instance bitwise unchanged.
//
// MaxMinInstance::apply (declared in lp/instance.hpp, defined here) edits
// the CSR arrays in place and leaves the instance bit-identical to a full
// InstanceBuilder rebuild of the edited rows: memberships are appended at
// the end of their row (the new entry takes the last port), and the
// agent-side incidence keeps its rows sorted ascending -- exactly the port
// numbering the builder derives from row-insertion order.  That identity is
// what makes every downstream structure (CommGraph, views, WL colours)
// agree bitwise with a cold rebuild, and it is asserted by the randomized
// tests in tests/incremental_test.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lp/instance.hpp"

namespace locmm {

// Which row family an edit addresses.
enum class RowKind : std::uint8_t { kConstraint, kObjective };

const char* to_string(RowKind k);

// Sets the coefficient of an existing (row, agent) entry.
struct CoeffEdit {
  RowKind kind = RowKind::kConstraint;
  std::int32_t row = -1;
  AgentId agent = -1;
  double coeff = 0.0;

  friend bool operator==(const CoeffEdit&, const CoeffEdit&) = default;
};

// Adds `agent` to `row` with `coeff` (appended: it takes the row's last
// port), or removes an existing (row, agent) entry (coeff ignored).
struct MembershipEdit {
  RowKind kind = RowKind::kConstraint;
  std::int32_t row = -1;
  AgentId agent = -1;
  double coeff = 0.0;

  friend bool operator==(const MembershipEdit&, const MembershipEdit&) =
      default;
};

struct InstanceDelta {
  std::vector<MembershipEdit> removes;
  std::vector<MembershipEdit> adds;
  std::vector<CoeffEdit> coeff_edits;

  bool empty() const {
    return removes.empty() && adds.empty() && coeff_edits.empty();
  }

  // True when the delta changes the sparsity pattern (and hence node
  // degrees, ports and adjacency) rather than just coefficient values.
  bool structural() const { return !removes.empty() || !adds.empty(); }

  std::size_t size() const {
    return removes.size() + adds.size() + coeff_edits.size();
  }

  // Visits every edited (row, agent) edge as (kind, row, agent), in
  // application order (removes, adds, coefficient edits).  This is the
  // dirty-seed enumeration shared by the incremental layers: both endpoints
  // of every visited edge seed the radius-D(R) flood of the engine-L
  // dirty-ball path (dynamic/incremental_solver.hpp) and the activation
  // distances of the SyncNetwork replay (dist/message_passing.hpp).
  template <typename Fn>
  void for_each_touched_edge(Fn&& fn) const {
    for (const MembershipEdit& e : removes) fn(e.kind, e.row, e.agent);
    for (const MembershipEdit& e : adds) fn(e.kind, e.row, e.agent);
    for (const CoeffEdit& e : coeff_edits) fn(e.kind, e.row, e.agent);
  }

  // Dry-run admission check: simulates the batch against `inst` (removes,
  // then adds, then coefficient edits, exactly the apply() order, including
  // edits that reference memberships created earlier in the same batch) and
  // returns one message per violation -- out-of-range row/agent ids,
  // non-positive / non-finite / NaN coefficients, removes of absent
  // entries, duplicate adds, rows left empty, agents left without a
  // constraint or an objective.  Empty result == the batch is applicable:
  // apply() on the same instance is then guaranteed to succeed.  Never
  // mutates and never throws; cost is O(batch * row degree), the same
  // bound as apply() itself.
  std::vector<std::string> check_applicable(const MaxMinInstance& inst) const;

  // --- convenience builders ---------------------------------------------
  InstanceDelta& set_constraint_coeff(ConstraintId i, AgentId v, double a) {
    coeff_edits.push_back({RowKind::kConstraint, i, v, a});
    return *this;
  }
  InstanceDelta& set_objective_coeff(ObjectiveId k, AgentId v, double c) {
    coeff_edits.push_back({RowKind::kObjective, k, v, c});
    return *this;
  }
  InstanceDelta& add_to_constraint(ConstraintId i, AgentId v, double a) {
    adds.push_back({RowKind::kConstraint, i, v, a});
    return *this;
  }
  InstanceDelta& add_to_objective(ObjectiveId k, AgentId v, double c) {
    adds.push_back({RowKind::kObjective, k, v, c});
    return *this;
  }
  InstanceDelta& remove_from_constraint(ConstraintId i, AgentId v) {
    removes.push_back({RowKind::kConstraint, i, v, 0.0});
    return *this;
  }
  InstanceDelta& remove_from_objective(ObjectiveId k, AgentId v) {
    removes.push_back({RowKind::kObjective, k, v, 0.0});
    return *this;
  }
};

// The coefficient-only delta turning `from` into `to`, or nullopt when the
// two differ structurally (agent counts, row counts, or any row's agent
// sequence).  Coefficients are compared by exact bit pattern, so applying
// the result to `from` reproduces `to` bitwise.  This is how
// LocalResolver::resolve routes an original-instance edit through the §4
// pipeline: re-run the (cheap, deterministic) pipeline on the edited input
// and diff the special-form outputs -- the transforms map structure to
// structure and coefficients to nearby coefficients, so a coefficient edit
// surfaces as a small special-form coefficient delta.
std::optional<InstanceDelta> diff_instances(const MaxMinInstance& from,
                                            const MaxMinInstance& to);

}  // namespace locmm
