#include "lp/instance.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

namespace locmm {

InstanceStats MaxMinInstance::stats() const {
  InstanceStats s;
  s.agents = num_agents();
  s.constraints = num_constraints();
  s.objectives = num_objectives();
  s.nnz_a = constraint_rows_.live();
  s.nnz_c = objective_rows_.live();
  for (ConstraintId i = 0; i < num_constraints(); ++i) {
    s.delta_i = std::max(s.delta_i,
                         static_cast<std::int32_t>(constraint_row(i).size()));
  }
  for (ObjectiveId k = 0; k < num_objectives(); ++k) {
    s.delta_k = std::max(s.delta_k,
                         static_cast<std::int32_t>(objective_row(k).size()));
  }
  for (AgentId v = 0; v < num_agents(); ++v) {
    s.max_iv = std::max(s.max_iv,
                        static_cast<std::int32_t>(agent_constraints(v).size()));
    s.max_kv = std::max(s.max_kv,
                        static_cast<std::int32_t>(agent_objectives(v).size()));
  }
  return s;
}

double MaxMinInstance::utility(std::span<const double> x) const {
  LOCMM_CHECK(static_cast<std::int32_t>(x.size()) == num_agents());
  LOCMM_CHECK_MSG(num_objectives() > 0, "utility of instance with no objectives");
  double omega = std::numeric_limits<double>::infinity();
  for (ObjectiveId k = 0; k < num_objectives(); ++k) {
    double val = 0.0;
    for (const Entry& e : objective_row(k)) val += e.coeff * x[e.agent];
    omega = std::min(omega, val);
  }
  return omega;
}

std::vector<double> MaxMinInstance::objective_values(
    std::span<const double> x) const {
  LOCMM_CHECK(static_cast<std::int32_t>(x.size()) == num_agents());
  std::vector<double> vals(static_cast<std::size_t>(num_objectives()), 0.0);
  for (ObjectiveId k = 0; k < num_objectives(); ++k) {
    double val = 0.0;
    for (const Entry& e : objective_row(k)) val += e.coeff * x[e.agent];
    vals[static_cast<std::size_t>(k)] = val;
  }
  return vals;
}

double MaxMinInstance::violation(std::span<const double> x) const {
  LOCMM_CHECK(static_cast<std::int32_t>(x.size()) == num_agents());
  double worst = 0.0;
  for (ConstraintId i = 0; i < num_constraints(); ++i) {
    double lhs = 0.0;
    for (const Entry& e : constraint_row(i)) lhs += e.coeff * x[e.agent];
    worst = std::max(worst, lhs - 1.0);
  }
  for (AgentId v = 0; v < num_agents(); ++v) worst = std::max(worst, -x[v]);
  return worst;
}

void MaxMinInstance::validate() const {
  auto check_rows = [&](auto count, auto row_of, const char* kind) {
    std::vector<char> seen(static_cast<std::size_t>(num_agents()), 0);
    for (std::int32_t r = 0; r < count; ++r) {
      auto row = row_of(r);
      LOCMM_CHECK_MSG(!row.empty(), kind << " row " << r << " is empty");
      for (const Entry& e : row) {
        LOCMM_CHECK_MSG(e.agent >= 0 && e.agent < num_agents(),
                        kind << " row " << r << " references agent "
                             << e.agent << " out of range");
        LOCMM_CHECK_MSG(e.coeff > 0.0, kind << " row " << r
                                            << " has non-positive coefficient "
                                            << e.coeff);
        LOCMM_CHECK_MSG(!seen[static_cast<std::size_t>(e.agent)],
                        kind << " row " << r << " repeats agent " << e.agent);
        seen[static_cast<std::size_t>(e.agent)] = 1;
      }
      for (const Entry& e : row) seen[static_cast<std::size_t>(e.agent)] = 0;
    }
  };
  check_rows(num_constraints(),
             [&](ConstraintId i) { return constraint_row(i); }, "constraint");
  check_rows(num_objectives(), [&](ObjectiveId k) { return objective_row(k); },
             "objective");

  for (AgentId v = 0; v < num_agents(); ++v) {
    LOCMM_CHECK_MSG(!agent_constraints(v).empty(),
                    "agent " << v << " has no constraints (unconstrained; "
                             << "preprocess per paper §4 before building)");
    LOCMM_CHECK_MSG(!agent_objectives(v).empty(),
                    "agent " << v << " has no objectives (non-contributing; "
                             << "preprocess per paper §4 before building)");
  }
}

bool MaxMinInstance::connected() const {
  const std::int64_t total = static_cast<std::int64_t>(num_agents()) +
                             num_constraints() + num_objectives();
  if (total == 0) return true;
  // Node numbering: agents, then constraints, then objectives.
  const std::int64_t coff = num_agents();
  const std::int64_t koff = coff + num_constraints();
  std::vector<char> seen(static_cast<std::size_t>(total), 0);
  std::vector<std::int64_t> stack{0};
  seen[0] = 1;
  std::int64_t visited = 0;
  while (!stack.empty()) {
    const std::int64_t node = stack.back();
    stack.pop_back();
    ++visited;
    auto push = [&](std::int64_t u) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        stack.push_back(u);
      }
    };
    if (node < coff) {
      const auto v = static_cast<AgentId>(node);
      for (const Incidence& inc : agent_constraints(v)) push(coff + inc.row);
      for (const Incidence& inc : agent_objectives(v)) push(koff + inc.row);
    } else if (node < koff) {
      const auto i = static_cast<ConstraintId>(node - coff);
      for (const Entry& e : constraint_row(i)) push(e.agent);
    } else {
      const auto k = static_cast<ObjectiveId>(node - koff);
      for (const Entry& e : objective_row(k)) push(e.agent);
    }
  }
  return visited == total;
}

ConstraintId InstanceBuilder::add_constraint(std::vector<Entry> row) {
  for (const Entry& e : row) {
    LOCMM_CHECK_MSG(e.agent >= 0, "constraint entry with negative agent id");
    ensure_agents(e.agent + 1);
  }
  constraint_rows_.push_back(std::move(row));
  return static_cast<ConstraintId>(constraint_rows_.size()) - 1;
}

ObjectiveId InstanceBuilder::add_objective(std::vector<Entry> row) {
  for (const Entry& e : row) {
    LOCMM_CHECK_MSG(e.agent >= 0, "objective entry with negative agent id");
    ensure_agents(e.agent + 1);
  }
  objective_rows_.push_back(std::move(row));
  return static_cast<ObjectiveId>(objective_rows_.size()) - 1;
}

MaxMinInstance InstanceBuilder::build(bool validate) const {
  MaxMinInstance inst;
  inst.num_agents_ = num_agents_;

  for (const auto& row : constraint_rows_) {
    inst.constraint_rows_.append_row(row);
  }
  for (const auto& row : objective_rows_) {
    inst.objective_rows_.append_row(row);
  }

  // Agent incidence, in row-insertion order (this fixes the agent-side port
  // numbering deterministically).
  const auto n = static_cast<std::size_t>(num_agents_);
  std::vector<std::vector<Incidence>> cinc(n), kinc(n);
  for (std::size_t r = 0; r < constraint_rows_.size(); ++r) {
    for (const Entry& e : constraint_rows_[r]) {
      cinc[static_cast<std::size_t>(e.agent)].push_back(
          {static_cast<std::int32_t>(r), e.coeff});
    }
  }
  for (std::size_t r = 0; r < objective_rows_.size(); ++r) {
    for (const Entry& e : objective_rows_[r]) {
      kinc[static_cast<std::size_t>(e.agent)].push_back(
          {static_cast<std::int32_t>(r), e.coeff});
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    inst.agent_constraint_rows_.append_row(cinc[v]);
    inst.agent_objective_rows_.append_row(kinc[v]);
  }

  if (validate) inst.validate();
  return inst;
}

InstancePatch MaxMinInstance::snapshot(
    std::span<const ConstraintId> constraints,
    std::span<const ObjectiveId> objectives,
    std::span<const AgentId> agents) const {
  InstancePatch p;
  for (const ConstraintId i : constraints) {
    const auto row = constraint_row(i);
    p.constraint_ids.push_back(i);
    p.constraint_rows.emplace_back(row.begin(), row.end());
  }
  for (const ObjectiveId k : objectives) {
    const auto row = objective_row(k);
    p.objective_ids.push_back(k);
    p.objective_rows.emplace_back(row.begin(), row.end());
  }
  for (const AgentId v : agents) {
    const auto cons = agent_constraints(v);
    const auto objs = agent_objectives(v);
    p.agent_ids.push_back(v);
    p.agent_constraints.emplace_back(cons.begin(), cons.end());
    p.agent_objectives.emplace_back(objs.begin(), objs.end());
  }
  return p;
}

void MaxMinInstance::restore(const InstancePatch& patch) {
  for (std::size_t j = 0; j < patch.constraint_ids.size(); ++j) {
    constraint_rows_.assign_row(
        static_cast<std::size_t>(patch.constraint_ids[j]),
        patch.constraint_rows[j]);
  }
  for (std::size_t j = 0; j < patch.objective_ids.size(); ++j) {
    objective_rows_.assign_row(static_cast<std::size_t>(patch.objective_ids[j]),
                               patch.objective_rows[j]);
  }
  for (std::size_t j = 0; j < patch.agent_ids.size(); ++j) {
    const auto v = static_cast<std::size_t>(patch.agent_ids[j]);
    agent_constraint_rows_.assign_row(v, patch.agent_constraints[j]);
    agent_objective_rows_.assign_row(v, patch.agent_objectives[j]);
  }
}

MaxMinInstance relabel_agents(const MaxMinInstance& inst,
                              std::span<const AgentId> perm) {
  LOCMM_CHECK(static_cast<std::int32_t>(perm.size()) == inst.num_agents());
  InstanceBuilder b(inst.num_agents());
  for (ConstraintId i = 0; i < inst.num_constraints(); ++i) {
    std::vector<Entry> row;
    row.reserve(inst.constraint_row(i).size());
    for (const Entry& e : inst.constraint_row(i))
      row.push_back({perm[e.agent], e.coeff});
    b.add_constraint(std::move(row));
  }
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    std::vector<Entry> row;
    row.reserve(inst.objective_row(k).size());
    for (const Entry& e : inst.objective_row(k))
      row.push_back({perm[e.agent], e.coeff});
    b.add_objective(std::move(row));
  }
  return b.build();
}

std::string describe(const MaxMinInstance& inst) {
  const InstanceStats s = inst.stats();
  std::ostringstream os;
  os << "V=" << s.agents << " I=" << s.constraints << " K=" << s.objectives
     << " nnzA=" << s.nnz_a << " nnzC=" << s.nnz_c << " dI=" << s.delta_i
     << " dK=" << s.delta_k << " max|Iv|=" << s.max_iv
     << " max|Kv|=" << s.max_kv;
  return os.str();
}

}  // namespace locmm
