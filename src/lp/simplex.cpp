#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "support/check.hpp"

namespace locmm {

const char* to_string(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

// Dense tableau state.  Row r stores the current representation of equality
// row r over all columns plus its rhs; `basis[r]` is the column basic in r.
// The reduced-cost row `d` satisfies d[j] = c[j] - y . A_j where y are the
// simplex multipliers of the current basis; optimality at d <= tol.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : b_(rows, 0.0),
        d_(cols, 0.0),
        basis_(rows, -1),
        m_(rows),
        cols_(cols),
        a_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t j) { return a_[r * cols_ + j]; }
  double at(std::size_t r, std::size_t j) const { return a_[r * cols_ + j]; }

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return cols_; }

  std::vector<double> b_;        // current rhs (>= 0 throughout)
  std::vector<double> d_;        // reduced costs
  std::vector<std::int32_t> basis_;
  double value_ = 0.0;           // current objective value

  void pivot(std::size_t pr, std::size_t pc) {
    const double piv = at(pr, pc);
    const double inv = 1.0 / piv;
    for (std::size_t j = 0; j < cols_; ++j) at(pr, j) *= inv;
    at(pr, pc) = 1.0;  // exact
    b_[pr] *= inv;

    for (std::size_t r = 0; r < m_; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (f == 0.0) continue;
      double* row = &a_[r * cols_];
      const double* prow = &a_[pr * cols_];
      for (std::size_t j = 0; j < cols_; ++j) row[j] -= f * prow[j];
      row[pc] = 0.0;  // exact
      b_[r] -= f * b_[pr];
      if (b_[r] < 0.0 && b_[r] > -1e-12) b_[r] = 0.0;  // clamp fp dust
    }
    const double fd = d_[pc];
    if (fd != 0.0) {
      const double* prow = &a_[pr * cols_];
      for (std::size_t j = 0; j < cols_; ++j) d_[j] -= fd * prow[j];
      d_[pc] = 0.0;
      value_ += fd * b_[pr];
    }
    basis_[pr] = static_cast<std::int32_t>(pc);
  }

 private:
  std::size_t m_;
  std::size_t cols_;
  std::vector<double> a_;
};

struct PricingState {
  bool bland = false;          // currently using Bland's rule
  int degenerate_run = 0;      // consecutive degenerate pivots
};

// One simplex phase: optimise the current d-row.  `allowed[j]` masks columns
// that may enter (artificials are barred in phase 2).  Returns kOptimal when
// no improving column remains.
LpStatus run_phase(Tableau& t, const std::vector<char>& allowed,
                   const SimplexOptions& opt, std::int64_t max_iters,
                   std::int64_t& iters, PricingState& pricing) {
  const double tol = opt.tol;
  while (true) {
    // --- entering column ---
    std::int64_t enter = -1;
    if (pricing.bland) {
      for (std::size_t j = 0; j < t.cols(); ++j) {
        if (allowed[j] && t.d_[j] > tol) {
          enter = static_cast<std::int64_t>(j);
          break;
        }
      }
    } else {
      double best = tol;
      for (std::size_t j = 0; j < t.cols(); ++j) {
        if (allowed[j] && t.d_[j] > best) {
          best = t.d_[j];
          enter = static_cast<std::int64_t>(j);
        }
      }
    }
    if (enter < 0) return LpStatus::kOptimal;

    // --- ratio test (leaving row) ---
    const auto pc = static_cast<std::size_t>(enter);
    std::int64_t leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.rows(); ++r) {
      const double a = t.at(r, pc);
      if (a <= tol) continue;
      const double ratio = t.b_[r] / a;
      // Tie-break on the smaller basic column index: combined with Bland's
      // entering rule this guarantees termination under degeneracy.
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && leave >= 0 &&
           t.basis_[r] < t.basis_[static_cast<std::size_t>(leave)])) {
        best_ratio = ratio;
        leave = static_cast<std::int64_t>(r);
      }
    }
    if (leave < 0) return LpStatus::kUnbounded;

    const bool degenerate = best_ratio <= tol;
    if (degenerate) {
      if (++pricing.degenerate_run >= opt.degenerate_switch)
        pricing.bland = true;
    } else {
      pricing.degenerate_run = 0;
      pricing.bland = false;
    }

    t.pivot(static_cast<std::size_t>(leave), pc);
    if (++iters > max_iters) return LpStatus::kIterationLimit;
  }
}

}  // namespace

LpResult simplex_solve_max(std::int32_t num_vars,
                           std::span<const SparseLpRow> rows,
                           std::span<const double> objective,
                           const SimplexOptions& options) {
  LOCMM_CHECK(num_vars >= 0);
  LOCMM_CHECK(static_cast<std::int32_t>(objective.size()) == num_vars);

  const std::size_t n = static_cast<std::size_t>(num_vars);
  const std::size_t m = rows.size();

  // Negate rows with negative rhs so b >= 0; remember orientation for the
  // dual signs.  sigma[r] = +1 (slack e_r) or -1 (surplus -e_r + artificial).
  std::vector<int> sigma(m, +1);
  std::vector<std::size_t> artificial_of_row;  // rows needing artificials
  for (std::size_t r = 0; r < m; ++r) {
    if (rows[r].rhs < 0.0) {
      sigma[r] = -1;
      artificial_of_row.push_back(r);
    }
  }
  const std::size_t num_art = artificial_of_row.size();
  const std::size_t slack0 = n;
  const std::size_t art0 = n + m;
  const std::size_t cols = n + m + num_art;

  Tableau t(m, cols);
  for (std::size_t r = 0; r < m; ++r) {
    const double flip = (sigma[r] > 0) ? 1.0 : -1.0;
    for (const auto& [col, coeff] : rows[r].entries) {
      LOCMM_CHECK_MSG(col >= 0 && col < num_vars,
                      "LP row references column " << col << " out of range");
      t.at(r, static_cast<std::size_t>(col)) += flip * coeff;
    }
    t.at(r, slack0 + r) = flip;  // slack (+1) or surplus (-1)
    t.b_[r] = flip * rows[r].rhs;
  }
  for (std::size_t a = 0; a < num_art; ++a) {
    const std::size_t r = artificial_of_row[a];
    t.at(r, art0 + a) = 1.0;
    t.basis_[r] = static_cast<std::int32_t>(art0 + a);
  }
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis_[r] < 0) t.basis_[r] = static_cast<std::int32_t>(slack0 + r);
  }

  const std::int64_t max_iters =
      options.max_iters > 0
          ? options.max_iters
          : 50 * static_cast<std::int64_t>(m + n) + 10000;

  LpResult result;
  std::vector<char> allowed(cols, 1);

  // ---- Phase 1: drive artificials to zero ----
  if (num_art > 0) {
    // Maximise -(sum of artificials); price out the initially-basic ones.
    for (std::size_t a = 0; a < num_art; ++a) t.d_[art0 + a] = -1.0;
    for (std::size_t a = 0; a < num_art; ++a) {
      const std::size_t r = artificial_of_row[a];
      // d += 1 * row r (adds back the basic artificial's cost row).
      for (std::size_t j = 0; j < cols; ++j) t.d_[j] += t.at(r, j);
      t.value_ -= t.b_[r];  // phase-1 objective starts at -(sum artificials)
    }
    // Termination is decided from the basic artificial values directly (see
    // art_sum below), not from value_, which is rebuilt for phase 2 anyway.
    PricingState pricing;
    const LpStatus st =
        run_phase(t, allowed, options, max_iters, result.iterations, pricing);
    if (st == LpStatus::kIterationLimit) {
      result.status = st;
      return result;
    }
    // Infeasible iff some artificial retains positive value.
    double art_sum = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis_[r] >= static_cast<std::int32_t>(art0)) art_sum += t.b_[r];
    }
    if (art_sum > options.tol * 10) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Pivot basic-at-zero artificials out where possible.
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis_[r] < static_cast<std::int32_t>(art0)) continue;
      std::int64_t pc = -1;
      for (std::size_t j = 0; j < art0; ++j) {
        if (std::abs(t.at(r, j)) > options.tol * 10) {
          pc = static_cast<std::int64_t>(j);
          break;
        }
      }
      if (pc >= 0) t.pivot(r, static_cast<std::size_t>(pc));
      // else: redundant row; harmless -- the artificial stays basic at 0 and
      // is barred from re-entering below.
    }
    for (std::size_t a = 0; a < num_art; ++a) allowed[art0 + a] = 0;
  }

  // ---- Phase 2: the real objective ----
  // Rebuild the reduced-cost row from scratch for the phase-2 costs.
  std::vector<double> cost(cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) cost[j] = objective[j];
  std::fill(t.d_.begin(), t.d_.end(), 0.0);
  t.value_ = 0.0;
  for (std::size_t j = 0; j < cols; ++j) t.d_[j] = cost[j];
  for (std::size_t r = 0; r < m; ++r) {
    const double cb = cost[static_cast<std::size_t>(t.basis_[r])];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j < cols; ++j) t.d_[j] -= cb * t.at(r, j);
    t.value_ += cb * t.b_[r];
  }

  PricingState pricing;
  const LpStatus st =
      run_phase(t, allowed, options, max_iters, result.iterations, pricing);
  result.status = st;
  if (st != LpStatus::kOptimal) return result;

  result.objective = t.value_;
  result.primal.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const auto j = static_cast<std::size_t>(t.basis_[r]);
    if (j < n) result.primal[j] = t.b_[r];
  }
  // Dual of equality row r is y'_r = -d[slack_r] * sigma_r... derivation:
  // d[slack_r] = cost[slack_r] - y' . (initial slack column) = -sigma_r y'_r,
  // so y'_r = -sigma_r * d[slack_r].  The multiplier of the *original* <=
  // inequality equals y'_r for sigma=+1 rows and -y'_r for negated rows.
  result.dual.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double yprime = -static_cast<double>(sigma[r]) * t.d_[slack0 + r];
    result.dual[r] = (sigma[r] > 0) ? yprime : -yprime;
  }
  return result;
}

}  // namespace locmm
