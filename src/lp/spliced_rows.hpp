// spliced_rows.hpp -- a CSR variant that supports O(row) splicing.
//
// Classic CSR (offsets + one packed entry array) makes membership edits
// O(nnz): inserting into a row shifts every later entry and every later
// offset.  SplicedRows keeps per-row (position, length, capacity) descriptors
// into a shared heap instead.  A row with spare capacity patches in place; a
// full row relocates to the end of the heap with deterministic slack, leaving
// a tombstoned hole behind.  Compaction is deferred until the dead space
// would exceed the live entries, so a long edit stream costs amortized O(row)
// per membership edit and O(1) per coefficient edit -- never O(nnz).
//
// "Bit-identical" contracts elsewhere in the repo are stated about the
// *accessor-visible* row contents (the spans returned by row()), not the
// physical heap layout: two SplicedRows that went through different edit
// histories may place rows differently while exposing identical spans.
//
// Mutating calls (insert/erase/assign_row/append_row) may relocate or
// compact, which invalidates every previously obtained span.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace locmm {

template <typename T>
class SplicedRows {
 public:
  std::size_t num_rows() const { return pos_.size(); }

  // Total live entries across all rows (the CSR "nnz").
  std::int64_t live() const { return live_; }

  std::span<const T> row(std::size_t r) const {
    LOCMM_DCHECK(r < pos_.size());
    return {data_.data() + pos_[r], static_cast<std::size_t>(len_[r])};
  }
  std::span<T> mutable_row(std::size_t r) {
    LOCMM_DCHECK(r < pos_.size());
    return {data_.data() + pos_[r], static_cast<std::size_t>(len_[r])};
  }

  // Build-time append: the new row is packed tight (capacity == length).
  void append_row(std::span<const T> entries) {
    pos_.push_back(static_cast<std::int64_t>(data_.size()));
    len_.push_back(static_cast<std::int32_t>(entries.size()));
    cap_.push_back(static_cast<std::int32_t>(entries.size()));
    data_.insert(data_.end(), entries.begin(), entries.end());
    live_ += static_cast<std::int64_t>(entries.size());
  }

  // Inserts `value` at position `at` of row `r` (0 <= at <= len).
  void insert(std::size_t r, std::size_t at, const T& value) {
    LOCMM_DCHECK(r < pos_.size());
    LOCMM_DCHECK(at <= static_cast<std::size_t>(len_[r]));
    if (len_[r] == cap_[r]) relocate(r, len_[r] + 1);
    T* base = data_.data() + pos_[r];
    for (std::size_t j = static_cast<std::size_t>(len_[r]); j > at; --j) {
      base[j] = base[j - 1];
    }
    base[at] = value;
    ++len_[r];
    ++live_;
  }

  void push_back(std::size_t r, const T& value) {
    insert(r, static_cast<std::size_t>(len_[r]), value);
  }

  // Erases the entry at position `at` of row `r`.  The freed slot stays as
  // slack capacity of the row; the global dead-space accounting may trigger
  // a compaction.
  void erase(std::size_t r, std::size_t at) {
    LOCMM_DCHECK(r < pos_.size());
    LOCMM_DCHECK(at < static_cast<std::size_t>(len_[r]));
    T* base = data_.data() + pos_[r];
    for (std::size_t j = at + 1; j < static_cast<std::size_t>(len_[r]); ++j) {
      base[j - 1] = base[j];
    }
    --len_[r];
    --live_;
    maybe_compact();
  }

  // Replaces row `r` wholesale (the splice primitive for derived arrays).
  void assign_row(std::size_t r, std::span<const T> entries) {
    LOCMM_DCHECK(r < pos_.size());
    const auto n = static_cast<std::int32_t>(entries.size());
    if (n > cap_[r]) relocate(r, n);
    live_ += n - len_[r];
    len_[r] = n;
    std::copy(entries.begin(), entries.end(), data_.data() + pos_[r]);
    maybe_compact();
  }

  void clear() {
    pos_.clear();
    len_.clear();
    cap_.clear();
    data_.clear();
    live_ = 0;
  }

 private:
  // Deterministic slack policy: a relocated row gets headroom proportional
  // to its new length, so a hot row settles after O(log) relocations.
  static std::int32_t slack_capacity(std::int32_t n) {
    return n + std::max<std::int32_t>(4, n / 2);
  }

  // Moves row `r` to the end of the heap with capacity >= `want`, leaving
  // its old slots dead.
  void relocate(std::size_t r, std::int32_t want) {
    const std::int32_t new_cap = slack_capacity(want);
    const auto new_pos = static_cast<std::int64_t>(data_.size());
    data_.resize(data_.size() + static_cast<std::size_t>(new_cap));
    T* src = data_.data() + pos_[r];
    T* dst = data_.data() + new_pos;
    std::copy(src, src + len_[r], dst);
    pos_[r] = new_pos;
    cap_[r] = new_cap;
  }

  // Deferred compaction: once the dead space exceeds the live entries (and a
  // floor that stops tiny instances from thrashing), rebuild the heap tight
  // in row order.  Amortized O(1) per edit, invisible through row().
  void maybe_compact() {
    const auto dead = static_cast<std::int64_t>(data_.size()) - live_;
    if (dead <= live_ || dead <= 256) return;
    std::vector<T> packed;
    packed.reserve(static_cast<std::size_t>(live_));
    for (std::size_t r = 0; r < pos_.size(); ++r) {
      const T* src = data_.data() + pos_[r];
      pos_[r] = static_cast<std::int64_t>(packed.size());
      cap_[r] = len_[r];
      packed.insert(packed.end(), src, src + len_[r]);
    }
    data_ = std::move(packed);
  }

  std::vector<std::int64_t> pos_;
  std::vector<std::int32_t> len_;
  std::vector<std::int32_t> cap_;
  std::vector<T> data_;
  std::int64_t live_ = 0;
};

}  // namespace locmm
