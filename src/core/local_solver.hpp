// local_solver.hpp -- engine C: centralized simulation of the §5 algorithm.
//
// Computes exactly what every agent of the special-form instance outputs,
// but by shared dynamic programming on the finite graph G instead of
// per-agent local views.  Validity rests on the position-independence of
// t, s and g (DESIGN.md §3): the unfolding subtree below an agent copy is
// determined by the agent's identity in G, so one value per (agent, depth)
// suffices.  Engine L (view_solver.hpp) recomputes the same quantities
// definitionally on explicit local views; the integration tests require
// bitwise-tolerance agreement between the two.
//
// Phases (paper §5):
//   1. t_v  per agent        -- optimum of the alternating tree A_v   (§5.1-2)
//   2. s_v  smoothing        -- min of t over the radius-(4r+2) ball  (§5.3)
//   3. g± tables and x       -- recursion (12)-(14), output (18)      (§5.3)
#pragma once

#include <cstdint>
#include <vector>

#include "core/g_recursion.hpp"
#include "core/special_form.hpp"
#include "core/upper_bound.hpp"

namespace locmm {

struct SpecialRunResult {
  std::int32_t R = 0;
  std::int32_t r = 0;           // r = R - 2
  std::vector<double> t;        // per-agent upper bounds
  std::vector<double> s;        // smoothed bounds
  GTables g;                    // g± tables (kept for analysis/benches)
  std::vector<double> x;        // the algorithm's output (18)
};

// Runs the §5 algorithm on a special-form instance.  threads: 1 = serial,
// 0 = all hardware threads (parallel over agents in phase 1).
SpecialRunResult solve_special_centralized(const SpecialFormInstance& sf,
                                           std::int32_t R,
                                           const TSearchOptions& opt = {},
                                           std::size_t threads = 1);

}  // namespace locmm
