// view_solver.hpp -- engine L: the definitional local algorithm.
//
// Every agent builds its radius-D local view (the truncated unfolding of §3)
// and computes its output x_v from that view *alone*, exactly as a node of
// the distributed system would after D communication rounds (§4.1: gather
// the local view, then simulate).  This engine is an independent,
// tree-recursive implementation of the recursions (5)-(7) and (12)-(14); it
// never consults the global graph during evaluation, which makes it the
// faithfulness reference that engine C (local_solver.hpp) and engine M
// (dist/) are tested against.
//
// The view radius is
//     D(R) = 12 r + 5,   r = R - 2:
// x_v needs g values at agents up to distance 4r, whose smoothed bounds s
// read t at distance up to 4r + (4r+2), and each t reads its alternating
// tree, another 4r+3.  Evaluation CHECK-fails loudly if anything ever reads
// beyond the materialised view, so an under-sized D cannot silently corrupt
// results.
#pragma once

#include <cstdint>
#include <vector>

#include "core/upper_bound.hpp"
#include "graph/view_tree.hpp"

namespace locmm {

// The local horizon of the §5 algorithm as implemented here.
std::int32_t view_radius(std::int32_t R);

// Computes the output of the agent at the root of `view` (which must be an
// agent node of a special-form instance's communication graph).
double solve_agent_from_view(const ViewTree& view, std::int32_t R,
                             const TSearchOptions& opt = {});

// Computes only the upper bound t_u for the agent at the root of `view`
// (radius 4r+3 suffices).  Used by the streaming engine (dist/streaming),
// which floods t/s/g as scalars instead of gathering radius-D views.
double t_root_from_view(const ViewTree& view, std::int32_t r,
                        const TSearchOptions& opt = {});

// Runs engine L for every agent of a special-form instance: builds each
// agent's view and evaluates it.  Exponential in R (views are trees), so
// intended for validation and small/medium instances; engine C is the fast
// path.  threads: 1 = serial, 0 = all hardware threads.
std::vector<double> solve_special_local_views(const MaxMinInstance& special,
                                              std::int32_t R,
                                              const TSearchOptions& opt = {},
                                              std::size_t threads = 1);

}  // namespace locmm
