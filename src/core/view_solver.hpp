// view_solver.hpp -- engine L: the definitional local algorithm.
//
// Every agent builds its radius-D local view (the truncated unfolding of §3)
// and computes its output x_v from that view *alone*, exactly as a node of
// the distributed system would after D communication rounds (§4.1: gather
// the local view, then simulate).  Two interchangeable implementations of
// the recursions (5)-(7) and (12)-(14) live here, selected by
// TSearchOptions::engine:
//
//   * ViewEngine::kMemoizedDp (default) -- an iterative, memoized, bottom-up
//     dynamic program over the *shared structure* of the view tree.  Every
//     §5 quantity is position-independent (Example 2 of the paper), so all
//     copies of a G-node share one table row: f± and g± live in flat tables
//     indexed by (origin slot) * (r+1) + d; each probed omega fills its
//     tables in one reverse-topological sweep (depth-major buckets), the
//     t-searches of all agents of an s-ball run batched against shared
//     omega-tables (searches whose next probe coincides share one sweep),
//     and all scratch storage is reused across agents via ViewEvalScratch.
//     Total work is polynomial in the number of *distinct* G-nodes the view
//     projects to -- never exponential in r, even though the view tree
//     itself grows like Delta^D.
//
//   * ViewEngine::kNaive -- the literal tree-recursive transcription of the
//     paper's recursions, kept as the differential-testing oracle.  It
//     re-expands the recursion on every call and runs a fresh bisection per
//     agent, so it is exponentially slower across the omega probes of an
//     s-ball; tests assert the DP engine matches it (and engine C,
//     local_solver.hpp) to high precision.
//
// Both implementations never consult the global graph during evaluation,
// which makes engine L the faithfulness reference for the other engines.
//
// The view radius is
//     D(R) = 12 r + 5,   r = R - 2:
// x_v needs g values at agents up to distance 4r, whose smoothed bounds s
// read t at distance up to 4r + (4r+2), and each t reads its alternating
// tree, another 4r+3.  Evaluation CHECK-fails loudly if anything ever reads
// beyond the materialised view, so an under-sized D cannot silently corrupt
// results.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/upper_bound.hpp"
#include "graph/color_refine.hpp"
#include "graph/view_tree.hpp"

namespace locmm {

class TValueStore;  // core/dp_snapshot.hpp

namespace detail {
struct DpScratch;  // internal tables of the memoized DP engine
}

// Reusable scratch buffers for the DP engine: tables, adjacency slices,
// worklists.  Hand the same object to successive evaluations (one per
// thread) to avoid re-allocating per agent; any evaluation resets the
// contents but keeps the capacity.
class ViewEvalScratch {
 public:
  ViewEvalScratch();
  ~ViewEvalScratch();
  ViewEvalScratch(ViewEvalScratch&&) noexcept;
  ViewEvalScratch& operator=(ViewEvalScratch&&) noexcept;

  detail::DpScratch& impl() { return *impl_; }

  // Table (re)allocation events observed across evaluations: incremented at
  // each reset whose monitored buffers grew capacity since the previous
  // reset.  A scratch reused across a steady-state edit stream stops
  // counting after warm-up -- the allocation-churn proof the reuse tests
  // assert.
  std::int64_t reallocations() const;

 private:
  std::unique_ptr<detail::DpScratch> impl_;
};

// A pool of (ViewTree, ViewEvalScratch) arenas shared across evaluation
// calls.  evaluate_view_classes leases one arena per in-flight class
// evaluation, so a long-lived caller (IncrementalSolver) reuses the same
// build buffers and DP tables across successive apply() calls instead of
// relying on thread_local lifetime -- and can PROVE it via
// table_reallocations().  Thread-safe; the pool grows to the peak
// concurrency ever seen and never shrinks.
class EvalScratchPool {
 public:
  EvalScratchPool();
  ~EvalScratchPool();
  EvalScratchPool(const EvalScratchPool&) = delete;
  EvalScratchPool& operator=(const EvalScratchPool&) = delete;

  class Lease {
   public:
    explicit Lease(EvalScratchPool& pool);
    ~Lease();
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ViewTree& view();
    ViewEvalScratch& scratch();

   private:
    EvalScratchPool& pool_;
    struct EvalScratchPoolArena* arena_;
  };

  // Arenas ever created (== peak concurrent leases).
  std::int64_t arenas() const;
  // Sum of ViewEvalScratch::reallocations() over all arenas.  Call only
  // while no lease is outstanding (between apply() calls).
  std::int64_t table_reallocations() const;

 private:
  friend class Lease;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<struct EvalScratchPoolArena>> arenas_;
  std::vector<struct EvalScratchPoolArena*> free_;
};

// Delta-aware warm start for the memoized DP engine (ignored by kNaive).
// `store` supplies previously computed t values by agent origin
// (core/dp_snapshot.hpp): every t-needed origin with a ready entry is
// served without re-running its bisection, and every bisection actually
// run publishes its result back.  The caller must have invalidated all
// origins whose dependency cone an edit touched; served values are then
// bitwise the values the bisection would reproduce, so outputs equal a
// cold evaluation exactly.  reused / recomputed report this call's serving
// split (also accumulated into TSearchStats::warm_entries_reused /
// cone_entries_recomputed).
struct DpWarmStart {
  TValueStore* store = nullptr;
  std::int64_t reused = 0;      // out: t values served from the store
  std::int64_t recomputed = 0;  // out: bisections run with the store active
};

// The local horizon of the §5 algorithm as implemented here.
std::int32_t view_radius(std::int32_t R);

// Computes the output of the agent at the root of `view` (which must be an
// agent node of a special-form instance's communication graph).  `scratch`
// is optional; passing one amortises allocations across calls.
double solve_agent_from_view(const ViewTree& view, std::int32_t R,
                             const TSearchOptions& opt = {},
                             ViewEvalScratch* scratch = nullptr,
                             DpWarmStart* warm = nullptr);

// Computes agent `v`'s output straight off the communication graph --
// bitwise identical to solve_agent_from_view on v's radius-view_radius(R)
// view, without materialising it.  The memoized DP is origin-keyed (every
// view copy of an agent collapses to one slot) and a view's adjacency
// slices are exactly the graph rows in port order, so skipping the unfold
// changes no value anywhere; on fat views it removes the dominant cost.
// kMemoizedDp only (CHECK-enforced): the naive engine is view-based by
// definition.  The fat-view fast path (IncrementalSolver::Options::
// warm_start) evaluates dirty classes through this with a DpWarmStart
// attached.
double solve_agent_on_graph(const CommGraph& g, AgentId v, std::int32_t R,
                            const TSearchOptions& opt = {},
                            ViewEvalScratch* scratch = nullptr,
                            DpWarmStart* warm = nullptr);

// Computes only the upper bound t_u for the agent at the root of `view`
// (radius 4r+3 suffices).  Used by the streaming engine (dist/streaming),
// which floods t/s/g as scalars instead of gathering radius-D views.
double t_root_from_view(const ViewTree& view, std::int32_t r,
                        const TSearchOptions& opt = {},
                        ViewEvalScratch* scratch = nullptr);

// Runs engine L for every agent of a special-form instance.  With
// opt.canonicalize_views (the default) this is a three-stage pipeline whose
// cost scales with the number of *distinct view-equivalence classes*, not
// the number of agents:
//
//   refine     WL colour refinement on the communication graph
//              (graph/color_refine.hpp) groups agents whose radius-D views
//              coincide, without materialising any view;
//   evaluate   one representative per class builds its view (per-thread
//              arena) and evaluates it -- consulting opt.view_cache, when
//              set: colour-keyed hits skip even the representative's view
//              build, so warm solves cost refine + broadcast only;
//   broadcast  x_v is fanned out to every member of each class (identical
//              views provably produce identical outputs, PAPER §3
//              Remarks 4-5; the property tests assert bit-for-bit equality
//              with the uncanonicalized path).
//
// Stage timings and class/cache counters land in TSearchOptions::stats.
// With canonicalize_views = false every agent builds and evaluates its own
// view (the PR-1 baseline; one evaluation per agent).  threads: 1 = serial,
// 0 = all hardware threads.  Either way the result is bitwise independent
// of `threads`.
std::vector<double> solve_special_local_views(const MaxMinInstance& special,
                                              std::int32_t R,
                                              const TSearchOptions& opt = {},
                                              std::size_t threads = 1);

// The evaluate stage of the pipeline above, exposed for the incremental
// subsystem (src/dynamic), which feeds it dirty-ball classes instead of a
// whole-instance partition: one output per class, each representative
// evaluated through the optional cross-solve cache (colour-keyed fast path
// first, canonical-hash entries after the build, then a real evaluation).
// Reads classes.representative / color_a / color_b / rounds only --
// class_of and class_size may be left empty.  Updates opt.stats's
// class_eval_us and class_cache_hits; `evals` counts the evaluations
// actually run (<= num_classes; the rest came from the cache).  The result
// is bitwise independent of `threads`.
// `warm_store` (optional, kMemoizedDp only) wires every representative
// evaluation to a TValueStore (see DpWarmStart above); warm_t_reused /
// cone_t_recomputed total the serving split over this call.  `pool`
// (optional) replaces the thread_local build/table arenas with leases from
// a caller-owned EvalScratchPool, so buffer reuse spans the caller's
// lifetime, not the thread pool's.  Neither affects outputs.
struct ClassEvalResult {
  std::vector<double> x_class;
  std::int64_t evals = 0;
  std::int64_t cache_hits = 0;
  std::int64_t warm_t_reused = 0;
  std::int64_t cone_t_recomputed = 0;
};
ClassEvalResult evaluate_view_classes(const CommGraph& g,
                                      const ViewClasses& classes,
                                      std::int32_t R, const TSearchOptions& opt,
                                      std::size_t threads,
                                      TValueStore* warm_store = nullptr,
                                      EvalScratchPool* pool = nullptr);

}  // namespace locmm
