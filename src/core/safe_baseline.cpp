#include "core/safe_baseline.hpp"

#include <algorithm>
#include <limits>

namespace locmm {

std::vector<double> solve_safe(const MaxMinInstance& inst) {
  const auto n = static_cast<std::size_t>(inst.num_agents());
  std::vector<double> x(n, 0.0);
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    double val = std::numeric_limits<double>::infinity();
    for (const Incidence& inc : inst.agent_constraints(v)) {
      const double deg =
          static_cast<double>(inst.constraint_row(inc.row).size());
      val = std::min(val, 1.0 / (deg * inc.coeff));
    }
    LOCMM_CHECK_MSG(val < std::numeric_limits<double>::infinity(),
                    "agent " << v << " is unconstrained");
    x[static_cast<std::size_t>(v)] = val;
  }
  return x;
}

}  // namespace locmm
