#include "core/view_class_cache.hpp"

#include "support/hash.hpp"

namespace locmm {

ViewClassCache::ViewClassCache(const Config& config)
    : config_(config),
      shards_(config.shards == 0 ? 16 : config.shards),
      snapshot_budget_(
          std::make_shared<SnapshotBudget>(config.snapshot_byte_budget)) {
  LOCMM_CHECK(config_.verify_node_limit >= 0);
  LOCMM_CHECK(config_.resident_node_budget >= 0);
  LOCMM_CHECK(config_.snapshot_byte_budget >= 0);
}

std::shared_ptr<TValueStore> ViewClassCache::new_snapshot_store(
    std::int32_t num_origins) {
  return std::make_shared<TValueStore>(num_origins, snapshot_budget_);
}

std::uint64_t ViewClassCache::options_fingerprint(const TSearchOptions& opt) {
  std::uint64_t h = 0xff51afd7ed558ccdull;
  h = hash_combine(h, coeff_bits_exact(opt.tol));
  h = hash_combine(h, static_cast<std::uint64_t>(opt.max_iters));
  h = hash_combine(h, static_cast<std::uint64_t>(opt.exact_lp));
  h = hash_combine(h, static_cast<std::uint64_t>(opt.engine));
  return h;
}

std::uint64_t ViewClassCache::key_of(const ViewTree& view, std::int32_t R,
                                     std::uint64_t fp) {
  return hash_combine(hash_combine(view.canonical_hash(),
                                   static_cast<std::uint64_t>(R)),
                      fp);
}

bool ViewClassCache::matches(const Entry& e, const ViewTree& view,
                             std::int32_t R, std::uint64_t fp) {
  if (e.canonical_hash != view.canonical_hash() || e.R != R || e.fp != fp ||
      e.size != view.size()) {
    return false;
  }
  if (e.verified) return ViewTree::structurally_equal(e.view, view);
  return e.secondary_hash == view.secondary_hash();
}

std::uint64_t ViewClassCache::color_key(std::uint64_t color_a,
                                        std::uint64_t color_b,
                                        std::int32_t rounds, std::int32_t R,
                                        std::uint64_t fp) {
  std::uint64_t h = hash_combine(color_a, color_b);
  h = hash_combine(h, static_cast<std::uint64_t>(rounds));
  h = hash_combine(h, static_cast<std::uint64_t>(R));
  return hash_combine(h, fp);
}

bool ViewClassCache::lookup_color(std::uint64_t color_key, double* x) {
  Shard& shard = shards_[shard_of(color_key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.color_entries.find(color_key);
  if (it == shard.color_entries.end()) return false;
  *x = it->second.x;
  it->second.last_used = epoch_.load(std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ViewClassCache::insert_color(std::uint64_t color_key, double x) {
  Shard& shard = shards_[shard_of(color_key)];
  const std::uint32_t now = epoch_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.color_entries.emplace(color_key,
                                                    ColorEntry{x, now});
  if (!inserted) it->second.last_used = now;
}

void ViewClassCache::begin_epoch() {
  const std::uint32_t now =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.max_entry_age == 0 || now <= config_.max_entry_age) return;
  // Sweep only every max_entry_age-th epoch: the scan is O(total entries),
  // and running it per epoch would make every O(dirty-ball) update pay
  // O(cache).  Amortized, each epoch costs O(entries / age), and an unhit
  // entry lives between age and 2*age epochs -- same bound up to a factor
  // of two, which is what an eviction heuristic is allowed to blur.
  if (now % config_.max_entry_age != 0) return;
  const std::uint32_t cutoff = now - config_.max_entry_age;
  std::int64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.color_entries.begin();
         it != shard.color_entries.end();) {
      if (it->second.last_used < cutoff) {
        it = shard.color_entries.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      std::vector<Entry>& bucket = it->second;
      for (std::size_t i = 0; i < bucket.size();) {
        if (bucket[i].last_used < cutoff) {
          if (bucket[i].verified) {
            resident_nodes_.fetch_sub(bucket[i].size,
                                      std::memory_order_relaxed);
          }
          bucket[i] = std::move(bucket.back());
          bucket.pop_back();
          ++dropped;
        } else {
          ++i;
        }
      }
      it = bucket.empty() ? shard.entries.erase(it) : std::next(it);
    }
  }
  evictions_.fetch_add(dropped, std::memory_order_relaxed);
}

bool ViewClassCache::lookup(const ViewTree& view, std::int32_t R,
                            std::uint64_t fp, double* x) {
  // A truncated view's identity covers only what survived the node budget;
  // distinct views truncated at the same budget would alias.  Callers must
  // cache complete views only.
  LOCMM_CHECK(!view.truncated());
  const std::uint64_t key = key_of(view, R, fp);
  Shard& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    for (Entry& e : it->second) {
      if (matches(e, view, R, fp)) {
        *x = e.x;
        e.last_used = epoch_.load(std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ViewClassCache::insert(const ViewTree& view, std::int32_t R,
                            std::uint64_t fp, double x) {
  LOCMM_CHECK(!view.truncated());  // see lookup
  const std::uint64_t key = key_of(view, R, fp);
  Shard& shard = shards_[shard_of(key)];
  Entry e;
  e.canonical_hash = view.canonical_hash();
  e.secondary_hash = view.secondary_hash();
  e.size = view.size();
  e.R = R;
  e.fp = fp;
  e.x = x;
  e.last_used = epoch_.load(std::memory_order_relaxed);
  // Reserve budget first, roll back on overshoot: concurrent inserts can
  // never settle above resident_node_budget.
  bool keep_copy = false;
  if (view.size() <= config_.verify_node_limit) {
    if (resident_nodes_.fetch_add(view.size(), std::memory_order_relaxed) +
            view.size() <=
        config_.resident_node_budget) {
      keep_copy = true;
    } else {
      resident_nodes_.fetch_sub(view.size(), std::memory_order_relaxed);
    }
  }
  if (keep_copy) {
    e.verified = true;
    // Slim copy: nodes + child index only (what structurally_equal and the
    // hash accessors read), capacity trimmed -- not the whole build arena.
    e.view = view.structural_copy();
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<Entry>& bucket = shard.entries[key];
  for (const Entry& existing : bucket) {
    if (matches(existing, view, R, fp)) {
      // Racing duplicate insert: drop ours (values are bit-identical).
      if (e.verified)
        resident_nodes_.fetch_sub(view.size(), std::memory_order_relaxed);
      return;
    }
  }
  bucket.push_back(std::move(e));
}

std::int64_t ViewClassCache::entries() const {
  std::int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, bucket] : shard.entries)
      total += static_cast<std::int64_t>(bucket.size());
  }
  return total;
}

std::int64_t ViewClassCache::color_entries() const {
  std::int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += static_cast<std::int64_t>(shard.color_entries.size());
  }
  return total;
}

void ViewClassCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.color_entries.clear();
  }
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  resident_nodes_ = 0;
}

}  // namespace locmm
