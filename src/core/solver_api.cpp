#include "core/solver_api.hpp"

#include <algorithm>

#include "core/local_solver.hpp"
#include "core/view_solver.hpp"
#include "transform/transform.hpp"

namespace locmm {

double special_form_guarantee(std::int32_t delta_k, std::int32_t R) {
  LOCMM_CHECK(delta_k >= 2 && R >= 2);
  return 2.0 * (1.0 - 1.0 / static_cast<double>(delta_k)) *
         (1.0 + 1.0 / static_cast<double>(R - 1));
}

double theorem1_guarantee(std::int32_t delta_i, std::int32_t delta_k,
                          std::int32_t R) {
  LOCMM_CHECK(delta_i >= 2 && delta_k >= 2 && R >= 2);
  return static_cast<double>(delta_i) *
         (1.0 - 1.0 / static_cast<double>(delta_k)) *
         (1.0 + 1.0 / static_cast<double>(R - 1));
}

LocalSolution solve_local(const MaxMinInstance& inst,
                          const LocalParams& params) {
  LOCMM_CHECK_MSG(params.R >= 2, "R must be >= 2");

  const Pipeline pipeline = to_special_form(inst);
  const SpecialFormInstance sf(pipeline.special);

  LocalSolution sol;
  sol.ratio_factor = pipeline.ratio_factor;
  sol.special_stats = pipeline.special.stats();
  sol.view_radius = view_radius(params.R);

  switch (params.engine) {
    case LocalEngine::kCentralized: {
      SpecialRunResult run = solve_special_centralized(
          sf, params.R, params.t_search, params.threads);
      sol.t_min_special =
          run.t.empty() ? 0.0 : *std::min_element(run.t.begin(), run.t.end());
      sol.x_special = std::move(run.x);
      break;
    }
    case LocalEngine::kLocalViews: {
      sol.x_special = solve_special_local_views(
          pipeline.special, params.R, params.t_search, params.threads);
      // t is internal to the per-view evaluation; recompute the global
      // bound cheaply through engine C's phase 1 for the diagnostics.
      const std::vector<double> t =
          compute_t_all(sf, params.R - 2, params.t_search, params.threads);
      sol.t_min_special =
          t.empty() ? 0.0 : *std::min_element(t.begin(), t.end());
      break;
    }
  }

  sol.omega_special = pipeline.special.utility(sol.x_special);
  sol.x = pipeline.map_back(sol.x_special);
  sol.omega = inst.utility(sol.x);

  const InstanceStats orig = inst.stats();
  sol.guarantee = theorem1_guarantee(std::max(orig.delta_i, 2),
                                     std::max(orig.delta_k, 2), params.R);
  return sol;
}

}  // namespace locmm
