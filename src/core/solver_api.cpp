#include "core/solver_api.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/local_solver.hpp"
#include "core/view_class_cache.hpp"
#include "core/view_solver.hpp"
#include "dist/fault.hpp"
#include "dist/gather.hpp"
#include "dist/streaming.hpp"
#include "dynamic/incremental_solver.hpp"
#include "transform/transform.hpp"

namespace locmm {

double special_form_guarantee(std::int32_t delta_k, std::int32_t R) {
  LOCMM_CHECK(delta_k >= 2 && R >= 2);
  return 2.0 * (1.0 - 1.0 / static_cast<double>(delta_k)) *
         (1.0 + 1.0 / static_cast<double>(R - 1));
}

double theorem1_guarantee(std::int32_t delta_i, std::int32_t delta_k,
                          std::int32_t R) {
  LOCMM_CHECK(delta_i >= 2 && delta_k >= 2 && R >= 2);
  return static_cast<double>(delta_i) *
         (1.0 - 1.0 / static_cast<double>(delta_k)) *
         (1.0 + 1.0 / static_cast<double>(R - 1));
}

namespace {

// The pipeline-independent tail of solve_local: map back, measure, attach
// the a-priori guarantee.  Shared with LocalResolver's solution refresh.
void finish_solution(const MaxMinInstance& inst, const Pipeline& pipeline,
                     std::int32_t R, LocalSolution& sol) {
  sol.ratio_factor = pipeline.ratio_factor;
  sol.special_stats = pipeline.special.stats();
  sol.view_radius = view_radius(R);
  sol.omega_special = pipeline.special.utility(sol.x_special);
  sol.x = pipeline.map_back(sol.x_special);
  sol.omega = inst.utility(sol.x);
  const InstanceStats orig = inst.stats();
  sol.guarantee = theorem1_guarantee(std::max(orig.delta_i, 2),
                                     std::max(orig.delta_k, 2), R);
}

// min_v t_v through engine C's phase 1, for the engines that do not produce
// it as a by-product (L / M / S compute t inside per-view evaluations).
double t_min_via_cone(const SpecialFormInstance& sf, const LocalParams& params) {
  const std::vector<double> t =
      compute_t_all(sf, params.R - 2, params.t_search, params.threads);
  return t.empty() ? 0.0 : *std::min_element(t.begin(), t.end());
}

// Lifts per-special-agent degradation flags through the §4 back-maps to the
// original agents.  Every back-map stage is a coordinate selection (prefix
// truncation), a positive scaling (x/gamma, 2x/divisor), or a max() over
// split copies / halves -- so a sentinel pushed far ABOVE any feasible value
// propagates to exactly the original coordinates that read at least one
// degraded special agent.  (A downward perturbation would be unsound: the
// max() over copies can mask it behind a clean sibling, and masking is
// precisely wrong here -- the clean sibling's argmax status itself hinges on
// the degraded copy's unknown true value.)  Flags are detected bitwise
// against the unperturbed map-back, which the sentinel's ~1e30 magnitude
// makes unambiguous.
std::vector<std::uint8_t> degraded_to_original(
    const Pipeline& pipeline, const std::vector<double>& x_special,
    const std::vector<std::uint8_t>& degraded_special,
    const std::vector<double>& x_original) {
  std::vector<std::uint8_t> out(x_original.size(), 0);
  bool any = false;
  for (const std::uint8_t f : degraded_special) any = any || (f != 0);
  if (!any) return out;

  LOCMM_CHECK(degraded_special.size() == x_special.size());
  std::vector<double> probe = x_special;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    if (degraded_special[i] != 0)
      probe[i] = 1e30 * (1.0 + static_cast<double>(i % 13));
  }
  const std::vector<double> moved = pipeline.map_back(probe);
  LOCMM_CHECK(moved.size() == x_original.size());
  for (std::size_t v = 0; v < moved.size(); ++v) {
    out[v] = std::memcmp(&moved[v], &x_original[v], sizeof(double)) != 0 ? 1
                                                                         : 0;
  }
  return out;
}

}  // namespace

LocalSolution solve_local(const MaxMinInstance& inst,
                          const LocalParams& params) {
  LOCMM_CHECK_MSG(params.R >= 2, "R must be >= 2");
  LOCMM_CHECK_MSG(params.faults == nullptr ||
                      params.engine == LocalEngine::kMessagePassing ||
                      params.engine == LocalEngine::kStreaming,
                  "fault injection needs a distributed engine (M / S)");

  const Pipeline pipeline = to_special_form(inst);
  const SpecialFormInstance sf(pipeline.special);

  LocalSolution sol;
  switch (params.engine) {
    case LocalEngine::kCentralized: {
      SpecialRunResult run = solve_special_centralized(
          sf, params.R, params.t_search, params.threads);
      sol.t_min_special =
          run.t.empty() ? 0.0 : *std::min_element(run.t.begin(), run.t.end());
      sol.x_special = std::move(run.x);
      break;
    }
    case LocalEngine::kLocalViews: {
      sol.x_special = solve_special_local_views(
          pipeline.special, params.R, params.t_search, params.threads);
      // t is internal to the per-view evaluation; recompute the global
      // bound cheaply through engine C's phase 1 for the diagnostics.
      sol.t_min_special = t_min_via_cone(sf, params);
      break;
    }
    case LocalEngine::kMessagePassing: {
      MessageRunResult run = solve_special_message_passing(
          pipeline.special, params.R, params.t_search, params.threads,
          params.faults);
      sol.x_special = std::move(run.x);
      sol.net_stats = run.stats;
      sol.degraded_special = std::move(run.degraded);
      sol.t_min_special = t_min_via_cone(sf, params);
      break;
    }
    case LocalEngine::kStreaming: {
      StreamingRunResult run = solve_special_streaming(
          pipeline.special, params.R, params.t_search, params.threads,
          params.faults);
      sol.x_special = std::move(run.x);
      sol.net_stats = run.stats;
      sol.degraded_special = std::move(run.degraded);
      sol.t_min_special = t_min_via_cone(sf, params);
      break;
    }
  }

  finish_solution(inst, pipeline, params.R, sol);
  if (!sol.degraded_special.empty()) {
    sol.degraded = degraded_to_original(pipeline, sol.x_special,
                                        sol.degraded_special, sol.x);
  }
  return sol;
}

// ---------------------------------------------------------------------------
// LocalResolver
// ---------------------------------------------------------------------------

LocalResolver::LocalResolver(const MaxMinInstance& inst,
                             const LocalParams& params)
    : params_(params), inst_(inst), cache_(std::make_unique<ViewClassCache>()) {
  LOCMM_CHECK_MSG(params_.R >= 2, "R must be >= 2");
  LOCMM_CHECK_MSG(params_.faults == nullptr ||
                      params_.engine == LocalEngine::kMessagePassing ||
                      params_.engine == LocalEngine::kStreaming,
                  "fault injection needs a distributed engine (M / S)");
  pipeline_ = to_special_form(inst_);
  solve_from_pipeline();
}

LocalResolver::~LocalResolver() = default;
LocalResolver::LocalResolver(LocalResolver&&) noexcept = default;
LocalResolver& LocalResolver::operator=(LocalResolver&&) noexcept = default;

void LocalResolver::solve_from_pipeline() {
  IncrementalSolver::Options opt;
  opt.R = params_.R;
  opt.t_search = params_.t_search;
  opt.threads = params_.threads;
  opt.cache = cache_.get();
  // kCentralized has no incremental counterpart (its shared DP is global by
  // construction); the resolver carries it on the engine-L dirty-ball path,
  // which the tests hold bit-identical to scratch engine-L solves.
  switch (params_.engine) {
    case LocalEngine::kCentralized:
    case LocalEngine::kLocalViews:
      opt.engine = DynamicEngine::kMemoizedDp;
      break;
    case LocalEngine::kMessagePassing:
      opt.engine = DynamicEngine::kMessagePassing;
      break;
    case LocalEngine::kStreaming:
      opt.engine = DynamicEngine::kStreaming;
      break;
  }
  // The scenario applies to the distributed COLD solve only; subsequent
  // replays run over the repaired (bitwise fault-free) history.  When the
  // cold run cannot fully recover, the IncrementalSolver degrades itself to
  // the engine-L dirty-ball path and we surface that here.
  opt.cold_faults = params_.faults;
  inc_ = std::make_unique<IncrementalSolver>(pipeline_.special, opt);
  sol_.x_special = inc_->x();
  sol_.net_stats = inc_->cold_net_stats();
  sol_.degraded_to_local = inc_->degraded_to_local();
  finish_solution(inst_, pipeline_, params_.R, sol_);
}

const LocalSolution& LocalResolver::resolve(const InstanceDelta& delta) {
  if (delta.empty()) return sol_;

  // Admission first: a rejected delta throws before anything at all -- not
  // even an instance copy -- happens.
  const std::vector<std::string> violations = delta.check_applicable(inst_);
  LOCMM_CHECK_MSG(violations.empty(),
                  "delta rejected: " << violations.front()
                                     << (violations.size() > 1
                                             ? " (+" +
                                                   std::to_string(
                                                       violations.size() - 1) +
                                                   " more)"
                                             : ""));

  // Id-map fast path: translate the batch straight into special-form
  // coordinates through the pipeline's persistent id map -- no pipeline
  // re-run, no instance snapshot, no diff; O(ball) end to end.  Ordering
  // carries the strong guarantee without any rollback state: map_delta is
  // const and reads only pre-edit state, inc_->apply is transactional (a
  // throw leaves the solver bitwise untouched and propagates with the
  // resolver equally untouched), and everything after it is infallible --
  // inst_.apply was admitted above, pipeline_.special is bitwise equal to
  // the solver's instance so the same mapped delta applies, and the gamma
  // fold + solution refresh are pure writes.
  if (params_.map_structural_deltas) {
    const std::optional<MappedDelta> mapped =
        pipeline_.id_map.map_delta(delta, inst_);
    if (mapped.has_value()) {
      inc_->apply(mapped->special);
      inst_.apply(delta);
      pipeline_.special.apply(mapped->special);
      pipeline_.id_map.apply_gamma_updates(*mapped);
      last_was_delta_ = true;
      sol_.x_special = inc_->x();
      sol_.net_stats = inc_->last_update().net;
      finish_solution(inst_, pipeline_, params_.R, sol_);
      return sol_;
    }
  }

  // Strong guarantee for deeper failures too: snapshot the members a failed
  // re-solve would otherwise leave half-updated (O(nnz), the price the old
  // rejection-safety copy paid on every call -- now only both-ways cheap:
  // the happy path moves them back out of scope).  inc_ needs no snapshot:
  // its own apply() is transactional, and the re-initialisation path only
  // replaces it after the new solver constructed successfully.
  MaxMinInstance prev_inst = inst_;
  Pipeline prev_pipeline = pipeline_;
  const bool prev_last_was_delta = last_was_delta_;
  try {
    inst_.apply(delta);  // cannot fail: admitted above

    // Re-run the §4 pipeline on the edited original.  The transforms are
    // deterministic whole-instance passes whose *structure* depends only on
    // the sparsity pattern, so a coefficient-only delta yields a special
    // form that diffs against the previous one as a small coefficient delta
    // (structural edits renumber the output and make the diff fail over to
    // a cache-warm re-initialisation).  The pipeline itself is O(n) with
    // small constants -- the dirty-ball solve it feeds is what was worth
    // saving.
    Pipeline next = to_special_form(inst_);
    const std::optional<InstanceDelta> special_delta =
        diff_instances(pipeline_.special, next.special);
    pipeline_ = std::move(next);  // back-maps capture coefficients: swap

    if (special_delta.has_value()) {
      last_was_delta_ = true;
      inc_->apply(*special_delta);
      sol_.x_special = inc_->x();
      // The dynamic path's scheduler accounting: fresh messages scale with
      // the dirty ball, replayed ones with what it consumed from the cache
      // (both zero for the engine-L resolver, which never touches the
      // wire).
      sol_.net_stats = inc_->last_update().net;
      finish_solution(inst_, pipeline_, params_.R, sol_);
    } else {
      last_was_delta_ = false;
      solve_from_pipeline();  // cache_ survives: colour-hits stay warm
    }
  } catch (...) {
    // Roll the resolver back to the pre-call state.  inc_ already rolled
    // itself back (transactional apply), or was never replaced (a throwing
    // re-initialisation leaves the old solver in place), so restoring the
    // instance and pipeline re-establishes the full invariant.  sol_ is
    // written only after the solve committed, so it was never touched.
    inst_ = std::move(prev_inst);
    pipeline_ = std::move(prev_pipeline);
    last_was_delta_ = prev_last_was_delta;
    throw;
  }
  return sol_;
}

}  // namespace locmm
