#include "core/upper_bound.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "support/thread_pool.hpp"

namespace locmm {

namespace {

// Hash key for a cone state: agent, depth index, role.
std::uint64_t state_key(AgentId v, std::int32_t d, bool plus) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d)) << 1) |
         (plus ? 1u : 0u);
}

}  // namespace

TCone::TCone(const SpecialFormInstance& sf, AgentId u, std::int32_t r)
    : sf_(sf), u_(u), r_(r) {
  LOCMM_CHECK(r >= 0);
  LOCMM_CHECK(u >= 0 && u < sf.num_agents());

  std::unordered_map<std::uint64_t, std::int64_t> index;
  index.reserve(64);

  auto intern = [&](AgentId v, std::int32_t d, bool plus) -> std::int64_t {
    const std::uint64_t key = state_key(v, d, plus);
    auto [it, inserted] = index.try_emplace(
        key, static_cast<std::int64_t>(states_.size()));
    if (inserted) states_.push_back({v, d, plus, 0, 0});
    return it->second;
  };

  // Root condition (9) lives at state (u, r, -).  BFS discovers states layer
  // by layer; dependencies always point to later (deeper) states, so reverse
  // index order is a valid evaluation order.
  intern(u, r, /*plus=*/false);
  for (std::size_t head = 0; head < states_.size(); ++head) {
    // Copy key fields: states_ may grow (and reallocate) below.
    const AgentId v = states_[head].v;
    const std::int32_t d = states_[head].d;
    const bool plus = states_[head].plus;

    const auto deps_begin = static_cast<std::int64_t>(deps_.size());
    if (plus) {
      if (d > 0) {
        // (7): one dependency per incident constraint, in port order.
        for (const ConstraintArc& arc : sf.arcs(v)) {
          deps_.push_back(intern(arc.partner, d - 1, /*plus=*/false));
        }
      }
    } else {
      // (6): one dependency per sibling, in the objective's port order.
      for (AgentId w : sf.siblings(v)) {
        deps_.push_back(intern(w, d, /*plus=*/true));
      }
    }
    states_[head].deps_begin = deps_begin;
    states_[head].deps_end = static_cast<std::int64_t>(deps_.size());
  }
}

bool TCone::check(double omega, std::vector<double>& scratch) const {
  scratch.resize(states_.size());
  bool ok = true;
  for (std::int64_t idx = static_cast<std::int64_t>(states_.size()) - 1;
       idx >= 0; --idx) {
    const State& st = states_[static_cast<std::size_t>(idx)];
    double val;
    if (st.plus) {
      if (st.d == 0) {
        val = sf_.inv_cap(st.v);  // (5)
      } else {
        val = std::numeric_limits<double>::infinity();
        const auto arcs = sf_.arcs(st.v);
        for (std::size_t j = 0; j < arcs.size(); ++j) {
          const ConstraintArc& arc = arcs[j];
          const double fm =
              scratch[static_cast<std::size_t>(deps_[st.deps_begin +
                                                     static_cast<std::int64_t>(j)])];
          val = std::min(val, (1.0 - arc.a_partner * fm) / arc.a_self);  // (7)
        }
      }
      if (!(val >= 0.0)) ok = false;  // condition (8)
    } else {
      double sum = 0.0;
      for (std::int64_t j = st.deps_begin; j < st.deps_end; ++j) {
        sum += scratch[static_cast<std::size_t>(deps_[j])];
      }
      val = std::max(0.0, omega - sum);  // (6)
      if (idx == 0 && !(val <= sf_.inv_cap(u_))) ok = false;  // condition (9)
    }
    scratch[static_cast<std::size_t>(idx)] = val;
  }
  return ok;
}

// Defined in alt_tree.cpp; declared here to keep upper_bound.hpp free of the
// AltTree types (callers opt in through TSearchOptions::exact_lp).
double t_exact_lp(const SpecialFormInstance& sf, AgentId u, std::int32_t r);

double compute_t_single(const SpecialFormInstance& sf, AgentId u,
                        std::int32_t r, const TSearchOptions& opt) {
  if (opt.exact_lp) return t_exact_lp(sf, u, r);
  const TCone cone(sf, u, r);
  std::vector<double> scratch;

  std::int64_t checks = 0;
  auto flush_stats = [&] {
    if (opt.stats == nullptr) return;
    opt.stats->t_searches.fetch_add(1, std::memory_order_relaxed);
    opt.stats->t_checks.fetch_add(checks, std::memory_order_relaxed);
    opt.stats->f_evals.fetch_add(checks * cone.num_states(),
                                 std::memory_order_relaxed);
  };

  double lo = 0.0;
  double hi = sf.t_search_upper(u);
  ++checks;
  LOCMM_CHECK(cone.check(0.0, scratch));  // omega = 0 is always feasible
  ++checks;
  if (cone.check(hi, scratch)) {
    flush_stats();
    return hi;
  }

  const double eps = opt.tol * std::max(1.0, hi);
  int iters = 0;
  while (hi - lo > eps && iters < opt.max_iters) {
    const double mid = 0.5 * (lo + hi);
    ++checks;
    if (cone.check(mid, scratch)) {
      lo = mid;
    } else {
      hi = mid;
    }
    ++iters;
  }
  flush_stats();
  // Return the feasible endpoint: all conditions (8)-(9) hold at lo exactly,
  // so the feasibility half of the analysis is preserved without error.
  return lo;
}

std::vector<double> compute_t_all(const SpecialFormInstance& sf,
                                  std::int32_t r, const TSearchOptions& opt,
                                  std::size_t threads) {
  std::vector<double> t(static_cast<std::size_t>(sf.num_agents()), 0.0);
  parallel_for(t.size(), threads, [&](std::size_t v) {
    t[v] = compute_t_single(sf, static_cast<AgentId>(v), r, opt);
  });
  return t;
}

FTables evaluate_f_global(const SpecialFormInstance& sf, std::int32_t r,
                          double omega) {
  const auto n = static_cast<std::size_t>(sf.num_agents());
  FTables ft;
  ft.plus.assign(static_cast<std::size_t>(r) + 1, std::vector<double>(n, 0.0));
  ft.minus.assign(static_cast<std::size_t>(r) + 1, std::vector<double>(n, 0.0));

  for (std::int32_t d = 0; d <= r; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    if (d == 0) {
      for (std::size_t v = 0; v < n; ++v)
        ft.plus[0][v] = sf.inv_cap(static_cast<AgentId>(v));  // (5)
    } else {
      for (std::size_t v = 0; v < n; ++v) {
        double val = std::numeric_limits<double>::infinity();
        for (const ConstraintArc& arc : sf.arcs(static_cast<AgentId>(v))) {
          val = std::min(val, (1.0 - arc.a_partner *
                                         ft.minus[sd - 1][static_cast<std::size_t>(
                                             arc.partner)]) /
                                  arc.a_self);  // (7)
        }
        ft.plus[sd][v] = val;
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (AgentId w : sf.siblings(static_cast<AgentId>(v)))
        sum += ft.plus[sd][static_cast<std::size_t>(w)];
      ft.minus[sd][v] = std::max(0.0, omega - sum);  // (6)
    }
  }
  return ft;
}

}  // namespace locmm
