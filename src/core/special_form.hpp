// special_form.hpp -- flattened adaptor for the §5 special form.
//
// After the §4 pipeline the instance satisfies |Vi| = 2, |Vk| >= 2,
// |Kv| = 1, |Iv| >= 1 and c_kv = 1.  The §5 recursions only ever ask three
// questions of the topology:
//   * which constraints touch agent v, with which coefficients, and who is
//     the partner n(v, i) on the other side (paper notation),
//   * which objective k(v) owns v, and who are the siblings N(v),
//   * what is min_{i in Iv} 1 / a_iv (the agent's capacity bound).
// SpecialFormInstance precomputes all three as per-agent rows (slack CSR,
// lp/spliced_rows.hpp) in port order, so the hot loops of engine C are
// cache-friendly index walks and a structural edit splices only the rows of
// the agents it dirties.
//
// Owns a copy of the underlying MaxMinInstance, so it can outlive (and be
// safely constructed from) temporaries; instances are CSR arrays, so the
// copy is a handful of memcpys.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "lp/instance.hpp"
#include "lp/spliced_rows.hpp"

namespace locmm {

// One constraint incident to an agent, seen from that agent.
struct ConstraintArc {
  ConstraintId id = -1;
  double a_self = 0.0;     // a_iv for this agent
  AgentId partner = -1;    // n(v, i): the unique other agent of the row
  double a_partner = 0.0;  // a_{i, n(v,i)}
};

// O(ball) undo record for SpecialFormInstance::apply: the instance-level
// patch plus the set of agents whose derived rows the batch dirties (the
// same closure apply() recomputes, so restore() is exactly symmetric).
struct SpecialFormPatch {
  InstancePatch inst;
  std::vector<AgentId> dirty;
};

class SpecialFormInstance {
 public:
  // Checks the special-form contract (throws CheckError otherwise).
  explicit SpecialFormInstance(const MaxMinInstance& inst);

  // Applies a batched edit (lp/delta.hpp) to the owned instance and brings
  // the derived arrays back in sync.  Coefficient-only deltas patch in
  // place: the touched arcs (a_self at the agent, a_partner at the partner),
  // then inv_cap and t_search_upper of the affected agents and their
  // objective rows.  Structural deltas (membership add/remove) splice: the
  // dirty closure -- agents named in the batch, members of every touched
  // row, and members of those agents' objective rows -- gets its derived
  // rows recomputed from the edited instance, bitwise identical to a full
  // rebuild.  Either way the cost is O(batch * row degree), independent of
  // n; admission induction (check_applicable validated every touched
  // element) stands in for the constructor's whole-instance re-check.  The
  // whole batch is admitted via check_applicable first and only a clean
  // batch mutates, so apply has the strong exception guarantee: a rejected
  // delta throws CheckError with the instance and every derived array
  // bitwise unchanged.
  void apply(const InstanceDelta& delta);

  // Dry-run admission check (the special-form analogue of
  // InstanceDelta::check_applicable, which it includes): the batch must be
  // applicable to the underlying instance AND preserve the special-form
  // contract on everything it touches -- objective coefficients pinned to 1,
  // touched constraint rows left with exactly 2 agents, touched objective
  // rows with >= 2, touched agents in exactly 1 objective row.  Returns one
  // message per violation; empty means apply() is guaranteed to succeed.
  // Never mutates, never throws.
  std::vector<std::string> check_applicable(const InstanceDelta& delta) const;

  // Captures the pre-edit state of everything `delta` touches (rows, agent
  // incidence, derived rows' dirty closure) so a committed apply(delta) can
  // be undone in O(ball): restore() writes the instance patch back and
  // recomputes the derived rows of the recorded dirty set.  Snapshot before
  // apply; restoring leaves the object bitwise at the snapshot state.
  SpecialFormPatch snapshot_for(const InstanceDelta& delta) const;
  void restore(const SpecialFormPatch& patch);

  const MaxMinInstance& instance() const { return inst_; }
  std::int32_t num_agents() const { return inst_.num_agents(); }

  ObjectiveId objective(AgentId v) const {
    return objective_[static_cast<std::size_t>(v)];
  }

  // N(v) = V_k(v) \ {v}, in the objective row's port order.
  std::span<const AgentId> siblings(AgentId v) const {
    return siblings_.row(static_cast<std::size_t>(v));
  }

  // Incident constraints in the agent's port order.
  std::span<const ConstraintArc> arcs(AgentId v) const {
    return arcs_.row(static_cast<std::size_t>(v));
  }

  // min_{i in Iv} 1 / a_iv; every feasible x has x_v <= inv_cap(v).
  double inv_cap(AgentId v) const {
    return inv_cap_[static_cast<std::size_t>(v)];
  }

  // Upper bound for the binary search for t_v (see upper_bound.cpp):
  // sum_{w in V_k(v)} inv_cap(w), evaluated in port order (v's own term
  // first, then siblings) so that engines C and L agree bitwise.
  double t_search_upper(AgentId v) const {
    return t_upper_[static_cast<std::size_t>(v)];
  }

 private:
  // Recomputes every derived array from inst_ (the constructor body; the
  // only full-instance pass left -- apply() never calls it).
  void rebuild_derived();

  // Recomputes objective_/siblings_/arcs_/inv_cap_ of one agent from inst_
  // (same per-agent procedure as rebuild_derived, so the result is bitwise
  // identical to a fresh construction).
  void recompute_agent(AgentId v);
  void recompute_t_upper(AgentId v);

  // The agents whose derived rows a structural batch can change: agents
  // named in the batch, members (pre-state) of every touched row, plus the
  // members of all those agents' (pre-state) objective rows -- the t_upper
  // neighborhood.  Computed against the PRE-edit instance; the post-edit
  // members are covered because every agent a batch adds is named in it.
  std::vector<AgentId> dirty_closure(const InstanceDelta& delta) const;

  MaxMinInstance inst_;
  std::vector<ObjectiveId> objective_;
  SplicedRows<AgentId> siblings_;
  SplicedRows<ConstraintArc> arcs_;
  std::vector<double> inv_cap_;
  std::vector<double> t_upper_;
};

}  // namespace locmm
