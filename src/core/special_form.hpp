// special_form.hpp -- flattened adaptor for the §5 special form.
//
// After the §4 pipeline the instance satisfies |Vi| = 2, |Vk| >= 2,
// |Kv| = 1, |Iv| >= 1 and c_kv = 1.  The §5 recursions only ever ask three
// questions of the topology:
//   * which constraints touch agent v, with which coefficients, and who is
//     the partner n(v, i) on the other side (paper notation),
//   * which objective k(v) owns v, and who are the siblings N(v),
//   * what is min_{i in Iv} 1 / a_iv (the agent's capacity bound).
// SpecialFormInstance precomputes all three as contiguous arrays in port
// order, so the hot loops of engine C are cache-friendly index walks.
//
// Owns a copy of the underlying MaxMinInstance, so it can outlive (and be
// safely constructed from) temporaries; instances are CSR arrays, so the
// copy is a handful of memcpys.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "lp/instance.hpp"

namespace locmm {

// One constraint incident to an agent, seen from that agent.
struct ConstraintArc {
  ConstraintId id = -1;
  double a_self = 0.0;     // a_iv for this agent
  AgentId partner = -1;    // n(v, i): the unique other agent of the row
  double a_partner = 0.0;  // a_{i, n(v,i)}
};

class SpecialFormInstance {
 public:
  // Checks the special-form contract (throws CheckError otherwise).
  explicit SpecialFormInstance(const MaxMinInstance& inst);

  // Applies a batched edit (lp/delta.hpp) to the owned instance and brings
  // the derived arrays back in sync.  Coefficient-only deltas patch in
  // place: the touched arcs (a_self at the agent, a_partner at the partner),
  // then inv_cap and t_search_upper of the affected agents and their
  // objective rows -- O(edits * row degree), independent of n.  Structural
  // deltas (membership add/remove) rebuild the derived arrays from the
  // edited instance -- O(n) with small constants, still negligible next to
  // any solve; see src/dynamic/incremental_solver.hpp for the layer that
  // keeps the *solve* ball-local either way.  The whole batch is admitted
  // via check_applicable first and only a clean batch mutates, so apply has
  // the strong exception guarantee: a rejected delta throws CheckError with
  // the instance and every derived array bitwise unchanged.
  void apply(const InstanceDelta& delta);

  // Dry-run admission check (the special-form analogue of
  // InstanceDelta::check_applicable, which it includes): the batch must be
  // applicable to the underlying instance AND preserve the special-form
  // contract on everything it touches -- objective coefficients pinned to 1,
  // touched constraint rows left with exactly 2 agents, touched objective
  // rows with >= 2, touched agents in exactly 1 objective row.  Returns one
  // message per violation; empty means apply() is guaranteed to succeed.
  // Never mutates, never throws.
  std::vector<std::string> check_applicable(const InstanceDelta& delta) const;

  const MaxMinInstance& instance() const { return inst_; }
  std::int32_t num_agents() const { return inst_.num_agents(); }

  ObjectiveId objective(AgentId v) const {
    return objective_[static_cast<std::size_t>(v)];
  }

  // N(v) = V_k(v) \ {v}, in the objective row's port order.
  std::span<const AgentId> siblings(AgentId v) const {
    return {siblings_.data() + sibling_offsets_[static_cast<std::size_t>(v)],
            siblings_.data() + sibling_offsets_[static_cast<std::size_t>(v) + 1]};
  }

  // Incident constraints in the agent's port order.
  std::span<const ConstraintArc> arcs(AgentId v) const {
    return {arcs_.data() + arc_offsets_[static_cast<std::size_t>(v)],
            arcs_.data() + arc_offsets_[static_cast<std::size_t>(v) + 1]};
  }

  // min_{i in Iv} 1 / a_iv; every feasible x has x_v <= inv_cap(v).
  double inv_cap(AgentId v) const {
    return inv_cap_[static_cast<std::size_t>(v)];
  }

  // Upper bound for the binary search for t_v (see upper_bound.cpp):
  // sum_{w in V_k(v)} inv_cap(w), evaluated in port order (v's own term
  // first, then siblings) so that engines C and L agree bitwise.
  double t_search_upper(AgentId v) const {
    return t_upper_[static_cast<std::size_t>(v)];
  }

 private:
  // Recomputes every derived array from inst_ (the constructor body; also
  // the structural-delta path of apply).
  void rebuild_derived();

  MaxMinInstance inst_;
  std::vector<ObjectiveId> objective_;
  std::vector<std::int64_t> sibling_offsets_;
  std::vector<AgentId> siblings_;
  std::vector<std::int64_t> arc_offsets_;
  std::vector<ConstraintArc> arcs_;
  std::vector<double> inv_cap_;
  std::vector<double> t_upper_;
};

}  // namespace locmm
