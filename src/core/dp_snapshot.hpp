// dp_snapshot.hpp -- persisted DP results for the fat-view fast path.
//
// Engine L's dominant cost on fat-view instances (torus at R = 4) is the
// batched t-bisection of view_solver.cpp: every evaluated representative
// re-derives t for every agent origin its smoothing balls touch, ~40
// omega-sweeps per origin.  But t_u is position-independent (PAPER §5,
// Example 2): its value depends only on u's radius-(4r+3) neighbourhood in
// G, never on which view it is evaluated in.  So t values computed by ONE
// class evaluation are valid verbatim for every other evaluation against
// the same instance -- across the dirty classes of one update and across
// updates, until an edit lands inside the value's dependency cone.
//
// TValueStore is that shared table: a dense origin -> t map owned by one
// IncrementalSolver (one "snapshot domain"), minted and byte-budgeted
// through ViewClassCache::new_snapshot_store.  The DP evaluator serves
// t-needed origins from the store and publishes what it had to bisect; the
// solver invalidates exactly the edit's t-dependency cone (comm-graph
// radius 4r+3 around the touched edges) before each re-evaluation.  Every
// served value is bitwise the value the bisection would reproduce, so
// warm-started solves stay bit-identical to cold ones.
//
// Concurrency: class evaluations run in a parallel_for, so lookups,
// publishes and the ready flags are atomics (value store-release before the
// flag, flag load-acquire before the value).  Two threads publishing the
// same origin race benignly: the bisection is deterministic, so they write
// identical bits.  Invalidation only runs between evaluations (the solver's
// single-threaded phases).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace locmm {

// Shared ledger bounding the bytes of all TValueStores minted from one
// ViewClassCache, the way resident_node_budget bounds representative view
// copies.  Held by shared_ptr from the cache AND from every store, so a
// store may outlive the cache that minted it without dangling.
struct SnapshotBudget {
  explicit SnapshotBudget(std::int64_t limit_bytes) : limit(limit_bytes) {}
  const std::int64_t limit;
  std::atomic<std::int64_t> bytes{0};
  // Stores refused materialisation for lack of budget (they stay disabled:
  // every lookup misses, every publish is a no-op -- solves run cold).
  std::atomic<std::int64_t> drops{0};
};

class TValueStore {
 public:
  // Dense table over [0, num_origins).  Reserves its bytes against `budget`
  // up front; on overshoot the store is created disabled (lookup always
  // misses) rather than partially resident, so the budget is a hard cap.
  TValueStore(std::int32_t num_origins,
              std::shared_ptr<SnapshotBudget> budget);
  ~TValueStore();

  TValueStore(const TValueStore&) = delete;
  TValueStore& operator=(const TValueStore&) = delete;

  bool enabled() const { return n_ > 0; }
  std::int64_t bytes() const;
  // Origins currently holding a ready value.
  std::int64_t entries() const {
    return ready_.load(std::memory_order_relaxed);
  }

  // On a hit, writes the stored t into *t and returns true.
  bool lookup(std::int32_t origin, double* t) const {
    if (origin < 0 || origin >= n_) return false;
    const auto o = static_cast<std::size_t>(origin);
    if (state_[o].load(std::memory_order_acquire) == 0) return false;
    *t = t_[o].load(std::memory_order_relaxed);
    return true;
  }

  void publish(std::int32_t origin, double t) {
    if (origin < 0 || origin >= n_) return;
    const auto o = static_cast<std::size_t>(origin);
    t_[o].store(t, std::memory_order_relaxed);
    if (state_[o].exchange(1, std::memory_order_release) == 0)
      ready_.fetch_add(1, std::memory_order_relaxed);
  }

  void invalidate(std::int32_t origin) {
    if (origin < 0 || origin >= n_) return;
    const auto o = static_cast<std::size_t>(origin);
    if (state_[o].exchange(0, std::memory_order_relaxed) != 0)
      ready_.fetch_sub(1, std::memory_order_relaxed);
  }

  void invalidate_all();

 private:
  std::int32_t n_ = 0;
  std::unique_ptr<std::atomic<double>[]> t_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> state_;
  std::atomic<std::int64_t> ready_{0};
  std::shared_ptr<SnapshotBudget> budget_;
};

}  // namespace locmm
