// upper_bound.hpp -- the per-agent upper bounds t_u of paper §5.1-§5.2.
//
// t_u is the optimum of the max-min LP restricted to the alternating tree
// A_u (depth 4r+3 in the unfolding).  The paper characterises it through the
// recursion (5)-(7):
//   f+_{v,0}(w)  = min_{i in Iv} 1/a_iv                                  (5)
//   f-_{v,d}(w)  = max{0, w - sum_{u in N(v)} f+_{u,d}(w)}               (6)
//   f+_{v,d}(w)  = min_{i in Iv} (1 - a_{i,n(v,i)} f-_{n(v,i),d-1}(w)) / a_iv
//                                                                        (7)
// and t_u = max{w >= 0 : all f+ >= 0 in A_u (8) and
//                        f-_{u,r}(w) <= min_i 1/a_iu (9)}.
//
// Key structural facts we exploit (documented in DESIGN.md §3):
//   * f±_{u,v,d} does not depend on the root u (Example 2 of the paper):
//     the subtree hanging below an agent copy in the unfolding is determined
//     by the agent's identity in G, so f± is a function of (v, d) only.
//     We therefore evaluate the recursion on *states* (v, d, +/-) of the
//     finite graph G rather than on explicit unfoldings.
//   * f+ is non-increasing and f- non-decreasing in w, so each condition of
//     (8)-(9) holds exactly on an interval [0, theta]; t_u is found by
//     bisection (the paper: "a simple binary search ... is sufficient").
//     We return the largest *verified-feasible* w, so every downstream
//     feasibility property (Lemmas 5, 7, 9, 11) holds exactly; only the
//     approximation guarantee degrades, by at most `tol`.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/special_form.hpp"
#include "support/deadline.hpp"

namespace locmm {

class ViewClassCache;  // core/view_class_cache.hpp

// Which implementation evaluates the §5 recursions on an explicit local view
// (engine L, view_solver.hpp).
enum class ViewEngine : std::uint8_t {
  // Iterative, memoized, bottom-up dynamic program over flat
  // (view-node, depth) tables: each state is evaluated at most once per
  // probed omega, t-searches for all agents of an s-ball share their
  // omega-tables, and scratch buffers are reused across agents.  Default.
  kMemoizedDp,
  // Literal tree-recursive transcription of (5)-(14): re-expands the
  // recursion from scratch on every call.  Kept as the differential-testing
  // oracle for the DP engine (it is the closest reading of the paper).
  kNaive,
};

// Operation counters for the evaluation engines.  All fields are atomic so a
// single stats object can be shared across the per-agent parallel loops;
// engines accumulate locally and flush once per evaluated agent.
struct TSearchStats {
  std::atomic<std::int64_t> f_evals{0};   // f± state evaluations / calls
  std::atomic<std::int64_t> g_evals{0};   // g± state evaluations / calls
  std::atomic<std::int64_t> t_searches{0};  // bisection searches run
  std::atomic<std::int64_t> t_checks{0};    // condition (8)-(9) evaluations
  std::atomic<std::int64_t> omega_sweeps{0};  // DP: distinct-omega table fills
  std::atomic<std::int64_t> view_nodes{0};    // sum of evaluated view sizes

  // Canonicalization pipeline counters (solve_special_local_views with
  // TSearchOptions::canonicalize_views; see core/view_class_cache.hpp).
  std::atomic<std::int64_t> view_evals{0};    // full view evaluations run
  std::atomic<std::int64_t> view_classes{0};  // equivalence classes found
  std::atomic<std::int64_t> class_cache_hits{0};  // classes served from cache
  std::atomic<std::int64_t> evals_avoided{0};  // agents - evaluations run
  // Per-stage wall time of the pipeline, microseconds.
  std::atomic<std::int64_t> refine_us{0};      // WL colour refinement
  std::atomic<std::int64_t> class_eval_us{0};  // representative build + eval
  std::atomic<std::int64_t> broadcast_us{0};   // x_v fan-out to class members

  // Incremental re-solve counters (src/dynamic/incremental_solver.hpp).
  // Per update: agents whose radius-D(R) view may have changed (the dirty
  // ball), agents whose stored output was reused untouched, and the dirty
  // view classes whose cached evaluation the edit invalidated (each one is
  // re-evaluated or served by the cross-solve cache; see class_cache_hits).
  std::atomic<std::int64_t> agents_dirty{0};
  std::atomic<std::int64_t> agents_reused{0};
  std::atomic<std::int64_t> classes_invalidated{0};

  // Fat-view fast path (core/dp_snapshot.hpp + the SoA sweeps of
  // view_solver.cpp).  Per evaluation with a TValueStore attached:
  // t-needed origins served from the store without re-bisecting, and the
  // bisections that DID run because the origin sat in the edit's dirty
  // cone (or was never computed).  vector_sweeps counts the multi-omega
  // SoA table fills (chunks batching >= 2 distinct probe omegas into one
  // reverse-topological sweep); omega_sweeps keeps its per-distinct-omega
  // semantics, so vector_sweeps < omega_sweeps measures the batching.
  std::atomic<std::int64_t> warm_entries_reused{0};
  std::atomic<std::int64_t> cone_entries_recomputed{0};
  std::atomic<std::int64_t> vector_sweeps{0};

  void reset() {
    f_evals = 0;
    g_evals = 0;
    t_searches = 0;
    t_checks = 0;
    omega_sweeps = 0;
    view_nodes = 0;
    view_evals = 0;
    view_classes = 0;
    class_cache_hits = 0;
    evals_avoided = 0;
    refine_us = 0;
    class_eval_us = 0;
    broadcast_us = 0;
    agents_dirty = 0;
    agents_reused = 0;
    classes_invalidated = 0;
    warm_entries_reused = 0;
    cone_entries_recomputed = 0;
    vector_sweeps = 0;
  }
};

struct TSearchOptions {
  // Bisection stops when the bracket is below tol * max(1, initial hi).
  double tol = 1e-12;
  int max_iters = 200;
  // Use the exact LP route of §5.2 ("the node u uses an LP solver to find
  // the optimum of the LP associated with A_u") instead of bisection.
  // Exact up to simplex arithmetic, but A_u is materialised explicitly
  // (exponential in r) -- intended for validation and small r.  Note the
  // bisection returns the largest *verified-feasible* omega, so its
  // downstream feasibility is exact; the LP route can overshoot by solver
  // round-off (~1e-9), which propagates into an equally tiny constraint
  // slack violation.
  bool exact_lp = false;
  // Engine-L implementation selector (ignored by engine C).
  ViewEngine engine = ViewEngine::kMemoizedDp;
  // Whole-instance engine-L solves (solve_special_local_views) group agents
  // into view-equivalence classes via WL colour refinement and evaluate one
  // representative per class (identical views provably produce identical
  // outputs in the port-numbering model, PAPER §3 Remarks 4-5).  Disable to
  // force the PR-1 one-evaluation-per-agent path (the differential baseline).
  bool canonicalize_views = true;
  // Optional cross-solve class cache (core/view_class_cache.hpp); not owned.
  // When set, representative evaluations are looked up / inserted under
  // (canonical hash, R, options fingerprint), so repeated solves over
  // instances sharing view classes skip the evaluation entirely.
  ViewClassCache* view_cache = nullptr;
  // Restrict view_cache traffic to the colour-keyed entries: misses insert
  // only the WL-colour key and never touch the canonical-hash layer, which
  // Merkle-hashes and structurally copies the representative view (O(view
  // nodes) per class -- measurable when a large dirty ball meets fat
  // views).  Sound whenever the colours are full-depth fingerprints of the
  // complete depth-D unfolding (refine_view_classes with full_depth, which
  // every cache-enabled path uses): equal colours already imply equal views
  // at the cache's own ~2^-128 risk level, so no hit is lost.  The dynamic
  // subsystem (src/dynamic) runs with this on; whole-instance solves keep
  // the default (hash-verified entries) unless told otherwise.  Does not
  // affect outputs, so it is excluded from the options fingerprint.
  bool cache_color_keys_only = false;
  // Optional operation-count instrumentation; not owned.  Thread-safe.
  TSearchStats* stats = nullptr;
  // Optional cooperative compute budget (support/deadline.hpp); not owned.
  // Deadline-aware stages (evaluate_view_classes) probe it per view-class
  // evaluation and abandon the solve with DeadlineExceeded once expired --
  // the serving layer's degradation hook.  Does not affect outputs of
  // completed solves, so (like stats) it is excluded from the ViewClassCache
  // options fingerprint.
  const Deadline* deadline = nullptr;
};

// The dependency cone of agent u: all states (v, d, role) reachable from the
// root condition (u, r, -) through the recursion, deduplicated, in reverse
// evaluation order.  Reused across the bisection iterations.
class TCone {
 public:
  TCone(const SpecialFormInstance& sf, AgentId u, std::int32_t r);

  // Evaluates the recursion at `omega` and returns whether conditions
  // (8)-(9) hold.  `values` is scratch storage resized internally.
  bool check(double omega, std::vector<double>& scratch) const;

  std::int64_t num_states() const {
    return static_cast<std::int64_t>(states_.size());
  }

 private:
  struct State {
    AgentId v;
    std::int32_t d;
    bool plus;
    std::int64_t deps_begin;  // into deps_: dependency state indices
    std::int64_t deps_end;
  };

  const SpecialFormInstance& sf_;
  AgentId u_;
  std::int32_t r_;
  std::vector<State> states_;      // BFS discovery order from the root state
  std::vector<std::int64_t> deps_;
};

// t_u for one agent (builds the cone internally).
double compute_t_single(const SpecialFormInstance& sf, AgentId u,
                        std::int32_t r, const TSearchOptions& opt = {});

// t for all agents, optionally thread-parallel (threads = 0: all cores).
std::vector<double> compute_t_all(const SpecialFormInstance& sf,
                                  std::int32_t r,
                                  const TSearchOptions& opt = {},
                                  std::size_t threads = 1);

// Global evaluation of the f-recursion at a fixed omega over every agent of
// G: tables[d][v].  Exposed for the analysis tests (monotonicity in omega
// and in d, agreement with the cone evaluation).
struct FTables {
  // plus[d][v] = f+_{v,d}(omega); minus[d][v] = f-_{v,d}(omega).
  std::vector<std::vector<double>> plus;
  std::vector<std::vector<double>> minus;
};
FTables evaluate_f_global(const SpecialFormInstance& sf, std::int32_t r,
                          double omega);

}  // namespace locmm
