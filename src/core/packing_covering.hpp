// packing_covering.hpp -- mixed packing and covering via max-min LPs.
//
// Paper §1: "An algorithm for approximating max-min LPs also enables one to
// solve approximate mixed packing and covering LPs [Young, FOCS'01]; a
// particular special case is finding an (approximate) solution to a
// nonnegative system of linear equations."
//
// The reduction: given nonnegative data, seek x >= 0 with
//     A x <= b   (packing)   and   C x >= c   (covering).
// Normalise rows by their right-hand sides and maximise the worst covering
// slack:  max omega  s.t.  (A/b) x <= 1,  (C/c) x >= omega 1.  The system is
// feasible iff omega* >= 1.  Running the local alpha-approximation yields x
// with packing satisfied exactly and min_k C_k x / c_k = omega(x):
//     omega(x) >= 1        -> kFeasible        (x solves the system)
//     omega(x) >= 1/alpha  -> kRelaxedFeasible (covering met to 1/alpha;
//                             feasibility itself remains undecided)
//     omega(x) <  1/alpha  -> kInfeasible      (omega* <= alpha omega(x) < 1
//                             certifies there is no exact solution)
//
// Preprocessing handles the degenerate shapes the §4 preamble talks about:
// b_i = 0 forces its variables to zero; variables in no covering row are
// non-contributing and set to zero; variables in no packing row get a
// synthetic capacity just high enough to saturate every covering row they
// serve (a finite stand-in for "set to +infinity").
#pragma once

#include <cstdint>
#include <vector>

#include "core/solver_api.hpp"
#include "lp/simplex.hpp"

namespace locmm {

struct PackingCoveringProblem {
  std::int32_t num_vars = 0;
  std::vector<SparseLpRow> packing;   // sum_j a_ij x_j <= rhs_i, all >= 0
  std::vector<SparseLpRow> covering;  // sum_j c_kj x_j >= rhs_k, all >= 0
};

enum class PcStatus { kFeasible, kRelaxedFeasible, kInfeasible };

const char* to_string(PcStatus s);

struct PackingCoveringResult {
  PcStatus status = PcStatus::kInfeasible;
  std::vector<double> x;      // packing always satisfied (up to fp tol)
  double cover_factor = 0.0;  // min_k C_k x / c_k over rows with rhs > 0
  double alpha = 1.0;         // approximation guarantee that was applied
};

// Local (Theorem 1) solver; alpha = the a-priori guarantee for the reduced
// instance's degrees and params.R.
PackingCoveringResult solve_packing_covering_local(
    const PackingCoveringProblem& problem, const LocalParams& params = {});

// Exact solver (bundled simplex); alpha = 1.
PackingCoveringResult solve_packing_covering_exact(
    const PackingCoveringProblem& problem);

// The nonnegative-linear-system special case: M x ~= d becomes
// packing M x <= d plus covering M x >= d.
PackingCoveringProblem linear_system_problem(
    std::int32_t num_vars, const std::vector<SparseLpRow>& equations);

// Residuals of a candidate solution: max_i (A_i x - b_i) and
// min_k C_k x / c_k (the numbers behind `status`).
double packing_violation(const PackingCoveringProblem& problem,
                         std::span<const double> x);
double covering_factor(const PackingCoveringProblem& problem,
                       std::span<const double> x);

}  // namespace locmm
