#include "core/g_recursion.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "support/thread_pool.hpp"

namespace locmm {

GTables compute_g(const SpecialFormInstance& sf, const std::vector<double>& s,
                  std::int32_t r, std::size_t threads, TSearchStats* stats) {
  const auto n = static_cast<std::size_t>(sf.num_agents());
  LOCMM_CHECK(s.size() == n);
  LOCMM_CHECK(r >= 0);

  GTables g;
  g.plus.assign(static_cast<std::size_t>(r) + 1, std::vector<double>(n, 0.0));
  g.minus.assign(static_cast<std::size_t>(r) + 1, std::vector<double>(n, 0.0));

  for (std::int32_t d = 0; d <= r; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    if (d == 0) {
      parallel_for(n, threads, [&](std::size_t v) {
        g.plus[0][v] = sf.inv_cap(static_cast<AgentId>(v));  // (12)
      });
    } else {
      parallel_for(n, threads, [&](std::size_t v) {
        double val = std::numeric_limits<double>::infinity();
        for (const ConstraintArc& arc : sf.arcs(static_cast<AgentId>(v))) {
          val = std::min(
              val, (1.0 - arc.a_partner *
                              g.minus[sd - 1]
                                     [static_cast<std::size_t>(arc.partner)]) /
                       arc.a_self);  // (14)
        }
        g.plus[sd][v] = val;
      });
    }
    parallel_for(n, threads, [&](std::size_t v) {
      double sum = 0.0;
      for (AgentId w : sf.siblings(static_cast<AgentId>(v)))
        sum += g.plus[sd][static_cast<std::size_t>(w)];
      g.minus[sd][v] = std::max(0.0, s[v] - sum);  // (13)
    });
  }
  if (stats != nullptr) {
    stats->g_evals.fetch_add(2 * static_cast<std::int64_t>(n) * (r + 1),
                             std::memory_order_relaxed);
  }
  return g;
}

std::vector<double> output_x(const GTables& g, std::int32_t r) {
  LOCMM_CHECK(static_cast<std::size_t>(r) + 1 == g.plus.size());
  LOCMM_CHECK(g.plus.size() == g.minus.size());
  const std::size_t n = g.plus[0].size();
  const double scale = 1.0 / (2.0 * static_cast<double>(r + 2));  // R = r + 2
  std::vector<double> x(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    double sum = 0.0;
    for (std::int32_t d = 0; d <= r; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      sum += g.plus[sd][v] + g.minus[sd][v];
    }
    x[v] = scale * sum;  // (18)
  }
  return x;
}

}  // namespace locmm
