#include "core/view_solver.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "support/thread_pool.hpp"

namespace locmm {

std::int32_t view_radius(std::int32_t R) {
  LOCMM_CHECK(R >= 2);
  const std::int32_t r = R - 2;
  return 12 * r + 5;
}

namespace {

// Evaluates the §5 algorithm for the root of one local view.  All methods
// address view-node indices; origins are never read.
class ViewEvaluator {
 public:
  ViewEvaluator(const ViewTree& view, std::int32_t r,
                const TSearchOptions& opt)
      : view_(view), r_(r), opt_(opt) {}

  double x_root() {
    LOCMM_CHECK(view_.node(0).type == NodeType::kAgent);
    double sum = 0.0;
    for (std::int32_t d = 0; d <= r_; ++d) {
      sum += g_plus(0, d) + g_minus(0, d);
    }
    return sum / (2.0 * static_cast<double>(r_ + 2));  // (18), R = r + 2
  }

  double t_root() {
    LOCMM_CHECK(view_.node(0).type == NodeType::kAgent);
    return t_at(0);
  }

 private:
  // --- view topology helpers -------------------------------------------

  // min_{i in Iv} 1/a_iv from the view; requires all constraint ports of
  // `a` to be materialised.
  double inv_cap(std::int32_t a) {
    require_expanded(a);
    double cap = std::numeric_limits<double>::infinity();
    view_.for_each_neighbor(a, [&](std::int32_t, std::int32_t nbr,
                                   double coeff) {
      if (view_.node(nbr).type == NodeType::kConstraint)
        cap = std::min(cap, 1.0 / coeff);
    });
    return cap;
  }

  // The unique objective neighbour of agent `a`.
  std::int32_t objective_of(std::int32_t a) {
    require_expanded(a);
    std::int32_t k = -1;
    view_.for_each_neighbor(a, [&](std::int32_t, std::int32_t nbr, double) {
      if (view_.node(nbr).type == NodeType::kObjective) {
        LOCMM_CHECK_MSG(k < 0, "|Kv| != 1 in view (not special form)");
        k = nbr;
      }
    });
    LOCMM_CHECK_MSG(k >= 0, "agent without objective in view");
    return k;
  }

  // Calls fn(constraint_idx, a_self) per constraint neighbour, port order.
  template <typename Fn>
  void for_each_constraint(std::int32_t a, Fn&& fn) {
    require_expanded(a);
    view_.for_each_neighbor(a, [&](std::int32_t, std::int32_t nbr,
                                   double coeff) {
      if (view_.node(nbr).type == NodeType::kConstraint) fn(nbr, coeff);
    });
  }

  // Calls fn(sibling_idx) for the agents of objective `k` other than `a`,
  // in the objective's port order.
  template <typename Fn>
  void for_each_sibling(std::int32_t k, std::int32_t a, Fn&& fn) {
    require_expanded(k);
    view_.for_each_neighbor(k, [&](std::int32_t, std::int32_t nbr, double) {
      LOCMM_CHECK(view_.node(nbr).type == NodeType::kAgent);
      if (nbr != a) fn(nbr);
    });
  }

  // The other agent of constraint `c`, and its coefficient.
  void partner_of(std::int32_t c, std::int32_t a, std::int32_t& partner,
                  double& a_partner) {
    require_expanded(c);
    partner = -1;
    view_.for_each_neighbor(c, [&](std::int32_t, std::int32_t nbr,
                                   double coeff) {
      if (nbr != a) {
        LOCMM_CHECK_MSG(partner < 0, "|Vi| != 2 in view (not special form)");
        partner = nbr;
        a_partner = coeff;
      }
    });
    LOCMM_CHECK_MSG(partner >= 0, "constraint without partner in view");
  }

  void require_expanded(std::int32_t idx) {
    LOCMM_CHECK_MSG(view_.expanded(idx),
                    "evaluation reached the view frontier (depth "
                        << view_.node(idx).depth << " of " << view_.depth()
                        << "); view_radius() is too small");
  }

  // --- the f recursion and t (paper §5.1-§5.2) --------------------------

  double f_plus(std::int32_t a, std::int32_t d, double omega, bool& ok) {
    double val;
    if (d == 0) {
      val = inv_cap(a);  // (5)
    } else {
      val = std::numeric_limits<double>::infinity();
      for_each_constraint(a, [&](std::int32_t c, double a_self) {
        std::int32_t p = -1;
        double a_partner = 0.0;
        partner_of(c, a, p, a_partner);
        val = std::min(val,
                       (1.0 - a_partner * f_minus(p, d - 1, omega, ok)) /
                           a_self);  // (7)
      });
    }
    if (!(val >= 0.0)) ok = false;  // condition (8)
    return val;
  }

  double f_minus(std::int32_t a, std::int32_t d, double omega, bool& ok) {
    const std::int32_t k = objective_of(a);
    double sum = 0.0;
    for_each_sibling(k, a, [&](std::int32_t w) {
      sum += f_plus(w, d, omega, ok);
    });
    return std::max(0.0, omega - sum);  // (6)
  }

  // t at view-agent `a`: bisection on conditions (8)-(9); returns the
  // largest verified-feasible omega, exactly as engine C does.
  double t_at(std::int32_t a) {
    auto it = t_memo_.find(a);
    if (it != t_memo_.end()) return it->second;

    const double cap = inv_cap(a);
    double hi = cap;
    for_each_sibling(objective_of(a), a,
                     [&](std::int32_t w) { hi += inv_cap(w); });

    auto check = [&](double omega) {
      bool ok = true;
      const double fm = f_minus(a, r_, omega, ok);
      if (!(fm <= cap)) ok = false;  // condition (9)
      return ok;
    };

    double lo = 0.0;
    LOCMM_CHECK(check(0.0));
    double t;
    if (check(hi)) {
      t = hi;
    } else {
      const double eps = opt_.tol * std::max(1.0, hi);
      int iters = 0;
      while (hi - lo > eps && iters < opt_.max_iters) {
        const double mid = 0.5 * (lo + hi);
        if (check(mid)) {
          lo = mid;
        } else {
          hi = mid;
        }
        ++iters;
      }
      t = lo;
    }
    t_memo_.emplace(a, t);
    return t;
  }

  // --- smoothing (§5.3) --------------------------------------------------

  // s at view-agent `a`: min of t over view agents within tree distance
  // 4r+2 (= the radius-(4r+2) ball of the unfolding).
  double s_at(std::int32_t a) {
    auto it = s_memo_.find(a);
    if (it != s_memo_.end()) return it->second;

    double s = std::numeric_limits<double>::infinity();
    // Tree BFS from `a`; (node, parent-of-step) pairs avoid backtracking.
    std::vector<std::pair<std::int32_t, std::int32_t>> frontier{{a, -1}};
    std::vector<std::pair<std::int32_t, std::int32_t>> next;
    for (std::int32_t dist = 0; dist <= 4 * r_ + 2; ++dist) {
      for (const auto& [node, from] : frontier) {
        if (view_.node(node).type == NodeType::kAgent)
          s = std::min(s, t_at(node));
        if (dist == 4 * r_ + 2) continue;
        require_expanded(node);
        view_.for_each_neighbor(node, [&](std::int32_t, std::int32_t nbr,
                                          double) {
          if (nbr != from) next.emplace_back(nbr, node);
        });
      }
      frontier.swap(next);
      next.clear();
    }
    s_memo_.emplace(a, s);
    return s;
  }

  // --- the g recursion and output (§5.3) ---------------------------------

  double g_plus(std::int32_t a, std::int32_t d) {
    if (d == 0) return inv_cap(a);  // (12)
    double val = std::numeric_limits<double>::infinity();
    for_each_constraint(a, [&](std::int32_t c, double a_self) {
      std::int32_t p = -1;
      double a_partner = 0.0;
      partner_of(c, a, p, a_partner);
      val = std::min(val, (1.0 - a_partner * g_minus(p, d - 1)) / a_self);
    });  // (14)
    return val;
  }

  double g_minus(std::int32_t a, std::int32_t d) {
    const std::int32_t k = objective_of(a);
    double sum = 0.0;
    for_each_sibling(k, a, [&](std::int32_t w) { sum += g_plus(w, d); });
    return std::max(0.0, s_at(a) - sum);  // (13)
  }

  const ViewTree& view_;
  std::int32_t r_;
  TSearchOptions opt_;
  std::unordered_map<std::int32_t, double> t_memo_;
  std::unordered_map<std::int32_t, double> s_memo_;
};

}  // namespace

double solve_agent_from_view(const ViewTree& view, std::int32_t R,
                             const TSearchOptions& opt) {
  LOCMM_CHECK(R >= 2);
  ViewEvaluator eval(view, R - 2, opt);
  return eval.x_root();
}

double t_root_from_view(const ViewTree& view, std::int32_t r,
                        const TSearchOptions& opt) {
  LOCMM_CHECK(r >= 0);
  ViewEvaluator eval(view, r, opt);
  return eval.t_root();
}

std::vector<double> solve_special_local_views(const MaxMinInstance& special,
                                              std::int32_t R,
                                              const TSearchOptions& opt,
                                              std::size_t threads) {
  const CommGraph g(special);
  const std::int32_t D = view_radius(R);
  std::vector<double> x(static_cast<std::size_t>(special.num_agents()), 0.0);
  parallel_for(x.size(), threads, [&](std::size_t v) {
    const ViewTree view =
        ViewTree::build(g, g.agent_node(static_cast<AgentId>(v)), D);
    x[v] = solve_agent_from_view(view, R, opt);
  });
  return x;
}

}  // namespace locmm
