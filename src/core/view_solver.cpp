#include "core/view_solver.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/dp_snapshot.hpp"
#include "core/view_class_cache.hpp"
#include "graph/color_refine.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace locmm {

std::int32_t view_radius(std::int32_t R) {
  LOCMM_CHECK(R >= 2);
  const std::int32_t r = R - 2;
  return 12 * r + 5;
}

namespace {

// Per-evaluation operation counters; flushed into the shared atomic
// TSearchStats once per agent so the hot loops stay contention-free.
struct LocalStats {
  std::int64_t f_evals = 0;
  std::int64_t g_evals = 0;
  std::int64_t t_searches = 0;
  std::int64_t t_checks = 0;
  std::int64_t omega_sweeps = 0;
  std::int64_t vector_sweeps = 0;

  void flush(TSearchStats* s, std::int64_t nodes) const {
    if (s == nullptr) return;
    s->f_evals.fetch_add(f_evals, std::memory_order_relaxed);
    s->g_evals.fetch_add(g_evals, std::memory_order_relaxed);
    s->t_searches.fetch_add(t_searches, std::memory_order_relaxed);
    s->t_checks.fetch_add(t_checks, std::memory_order_relaxed);
    s->omega_sweeps.fetch_add(omega_sweeps, std::memory_order_relaxed);
    s->vector_sweeps.fetch_add(vector_sweeps, std::memory_order_relaxed);
    s->view_nodes.fetch_add(nodes, std::memory_order_relaxed);
  }
};

// ===========================================================================
// Engine L / kNaive: literal transcription of the §5 recursions.
//
// Evaluates the algorithm for the root of one local view by re-expanding the
// f/g recursions on every call.  All methods address view-node indices;
// origins are never read.  Kept verbatim as the differential-testing oracle
// for the DP engine below.
// ===========================================================================
class ViewEvaluator {
 public:
  ViewEvaluator(const ViewTree& view, std::int32_t r,
                const TSearchOptions& opt, LocalStats* stats)
      : view_(view), r_(r), opt_(opt), stats_(stats) {}

  double x_root() {
    LOCMM_CHECK(view_.node(0).type == NodeType::kAgent);
    double sum = 0.0;
    for (std::int32_t d = 0; d <= r_; ++d) {
      sum += g_plus(0, d) + g_minus(0, d);
    }
    return sum / (2.0 * static_cast<double>(r_ + 2));  // (18), R = r + 2
  }

  double t_root() {
    LOCMM_CHECK(view_.node(0).type == NodeType::kAgent);
    return t_at(0);
  }

 private:
  // --- view topology helpers -------------------------------------------

  // min_{i in Iv} 1/a_iv from the view; requires all constraint ports of
  // `a` to be materialised.
  double inv_cap(std::int32_t a) {
    require_expanded(a);
    double cap = std::numeric_limits<double>::infinity();
    view_.for_each_neighbor(a, [&](std::int32_t, std::int32_t nbr,
                                   double coeff) {
      if (view_.node(nbr).type == NodeType::kConstraint)
        cap = std::min(cap, 1.0 / coeff);
    });
    return cap;
  }

  // The unique objective neighbour of agent `a`.
  std::int32_t objective_of(std::int32_t a) {
    require_expanded(a);
    std::int32_t k = -1;
    view_.for_each_neighbor(a, [&](std::int32_t, std::int32_t nbr, double) {
      if (view_.node(nbr).type == NodeType::kObjective) {
        LOCMM_CHECK_MSG(k < 0, "|Kv| != 1 in view (not special form)");
        k = nbr;
      }
    });
    LOCMM_CHECK_MSG(k >= 0, "agent without objective in view");
    return k;
  }

  // Calls fn(constraint_idx, a_self) per constraint neighbour, port order.
  template <typename Fn>
  void for_each_constraint(std::int32_t a, Fn&& fn) {
    require_expanded(a);
    view_.for_each_neighbor(a, [&](std::int32_t, std::int32_t nbr,
                                   double coeff) {
      if (view_.node(nbr).type == NodeType::kConstraint) fn(nbr, coeff);
    });
  }

  // Calls fn(sibling_idx) for the agents of objective `k` other than `a`,
  // in the objective's port order.
  template <typename Fn>
  void for_each_sibling(std::int32_t k, std::int32_t a, Fn&& fn) {
    require_expanded(k);
    view_.for_each_neighbor(k, [&](std::int32_t, std::int32_t nbr, double) {
      LOCMM_CHECK(view_.node(nbr).type == NodeType::kAgent);
      if (nbr != a) fn(nbr);
    });
  }

  // The other agent of constraint `c`, and its coefficient.
  void partner_of(std::int32_t c, std::int32_t a, std::int32_t& partner,
                  double& a_partner) {
    require_expanded(c);
    partner = -1;
    view_.for_each_neighbor(c, [&](std::int32_t, std::int32_t nbr,
                                   double coeff) {
      if (nbr != a) {
        LOCMM_CHECK_MSG(partner < 0, "|Vi| != 2 in view (not special form)");
        partner = nbr;
        a_partner = coeff;
      }
    });
    LOCMM_CHECK_MSG(partner >= 0, "constraint without partner in view");
  }

  void require_expanded(std::int32_t idx) {
    LOCMM_CHECK_MSG(view_.expanded(idx),
                    "evaluation reached the view frontier (depth "
                        << view_.node(idx).depth << " of " << view_.depth()
                        << "); view_radius() is too small");
  }

  // --- the f recursion and t (paper §5.1-§5.2) --------------------------

  double f_plus(std::int32_t a, std::int32_t d, double omega, bool& ok) {
    if (stats_ != nullptr) ++stats_->f_evals;
    double val;
    if (d == 0) {
      val = inv_cap(a);  // (5)
    } else {
      val = std::numeric_limits<double>::infinity();
      for_each_constraint(a, [&](std::int32_t c, double a_self) {
        std::int32_t p = -1;
        double a_partner = 0.0;
        partner_of(c, a, p, a_partner);
        val = std::min(val,
                       (1.0 - a_partner * f_minus(p, d - 1, omega, ok)) /
                           a_self);  // (7)
      });
    }
    if (!(val >= 0.0)) ok = false;  // condition (8)
    return val;
  }

  double f_minus(std::int32_t a, std::int32_t d, double omega, bool& ok) {
    if (stats_ != nullptr) ++stats_->f_evals;
    const std::int32_t k = objective_of(a);
    double sum = 0.0;
    for_each_sibling(k, a, [&](std::int32_t w) {
      sum += f_plus(w, d, omega, ok);
    });
    return std::max(0.0, omega - sum);  // (6)
  }

  // t at view-agent `a`: bisection on conditions (8)-(9); returns the
  // largest verified-feasible omega, exactly as engine C does.
  double t_at(std::int32_t a) {
    auto it = t_memo_.find(a);
    if (it != t_memo_.end()) return it->second;
    if (stats_ != nullptr) ++stats_->t_searches;

    const double cap = inv_cap(a);
    double hi = cap;
    for_each_sibling(objective_of(a), a,
                     [&](std::int32_t w) { hi += inv_cap(w); });

    auto check = [&](double omega) {
      if (stats_ != nullptr) ++stats_->t_checks;
      bool ok = true;
      const double fm = f_minus(a, r_, omega, ok);
      if (!(fm <= cap)) ok = false;  // condition (9)
      return ok;
    };

    double lo = 0.0;
    LOCMM_CHECK(check(0.0));
    double t;
    if (check(hi)) {
      t = hi;
    } else {
      const double eps = opt_.tol * std::max(1.0, hi);
      int iters = 0;
      while (hi - lo > eps && iters < opt_.max_iters) {
        const double mid = 0.5 * (lo + hi);
        if (check(mid)) {
          lo = mid;
        } else {
          hi = mid;
        }
        ++iters;
      }
      t = lo;
    }
    t_memo_.emplace(a, t);
    return t;
  }

  // --- smoothing (§5.3) --------------------------------------------------

  // s at view-agent `a`: min of t over view agents within tree distance
  // 4r+2 (= the radius-(4r+2) ball of the unfolding).
  double s_at(std::int32_t a) {
    auto it = s_memo_.find(a);
    if (it != s_memo_.end()) return it->second;

    double s = std::numeric_limits<double>::infinity();
    // Tree BFS from `a`; (node, parent-of-step) pairs avoid backtracking.
    std::vector<std::pair<std::int32_t, std::int32_t>> frontier{{a, -1}};
    std::vector<std::pair<std::int32_t, std::int32_t>> next;
    for (std::int32_t dist = 0; dist <= 4 * r_ + 2; ++dist) {
      for (const auto& [node, from] : frontier) {
        if (view_.node(node).type == NodeType::kAgent)
          s = std::min(s, t_at(node));
        if (dist == 4 * r_ + 2) continue;
        require_expanded(node);
        view_.for_each_neighbor(node, [&](std::int32_t, std::int32_t nbr,
                                          double) {
          if (nbr != from) next.emplace_back(nbr, node);
        });
      }
      frontier.swap(next);
      next.clear();
    }
    s_memo_.emplace(a, s);
    return s;
  }

  // --- the g recursion and output (§5.3) ---------------------------------

  double g_plus(std::int32_t a, std::int32_t d) {
    if (stats_ != nullptr) ++stats_->g_evals;
    if (d == 0) return inv_cap(a);  // (12)
    double val = std::numeric_limits<double>::infinity();
    for_each_constraint(a, [&](std::int32_t c, double a_self) {
      std::int32_t p = -1;
      double a_partner = 0.0;
      partner_of(c, a, p, a_partner);
      val = std::min(val, (1.0 - a_partner * g_minus(p, d - 1)) / a_self);
    });  // (14)
    return val;
  }

  double g_minus(std::int32_t a, std::int32_t d) {
    if (stats_ != nullptr) ++stats_->g_evals;
    const std::int32_t k = objective_of(a);
    double sum = 0.0;
    for_each_sibling(k, a, [&](std::int32_t w) { sum += g_plus(w, d); });
    return std::max(0.0, s_at(a) - sum);  // (13)
  }

  const ViewTree& view_;
  std::int32_t r_;
  TSearchOptions opt_;
  LocalStats* stats_;
  std::unordered_map<std::int32_t, double> t_memo_;
  std::unordered_map<std::int32_t, double> s_memo_;
};

}  // namespace

// ===========================================================================
// Engine L / kMemoizedDp: iterative bottom-up dynamic program over the
// *shared* structure of the unfolding.
//
// The truncated unfolding has up to Delta^(12r+5) nodes, but every quantity
// of the recursions (5)-(14) is position-independent (Example 2 of the
// paper): the neighbourhood of a view node -- and hence f±, g±, t, s at it
// -- is determined by the G-node it projects to (its origin), because ports
// and coefficients are inherited from G (Remarks 4-5 of §3).  The naive
// engine walks the view and therefore recomputes each (origin, depth) state
// astronomically many times, once per copy per probe; this engine keys
// every state by origin instead, collapsing the exponential view to the
// polynomial inner ball of G that the view actually projects.  All tables
// are flat vectors indexed by slot * (r+1) + d, where `slot` is a dense id
// assigned to each *touched* agent origin.  Per origin the shallowest view
// copy (ViewTree::representative, recorded during the BFS build) serves as
// the adjacency lookup point -- it is the most-expanded copy, so its
// neighbour list is exactly the origin's adjacency in G:
//
//   phase 1  mark the g-dependency cone of the root (which g±, s, t values
//            the output (18) reads), CHECK-ing view-frontier overruns where
//            the needed adjacency is not materialised;
//   phase 2  one BFS per s-needed agent over the reconstructed agent graph
//            (arc partners + siblings, 2r+1 steps = the radius-(4r+2)
//            comm-graph ball) collects the ball and the union of t-needed
//            agents;
//   phase 3  batched t-search: all needed agents bisect in lockstep;
//            searches whose next probe omega is bit-identical share a
//            single omega-table fill (one reverse-topological sweep over
//            depth-major buckets of the marked cone union).  Brackets are
//            per-agent and reproduce the naive bisection trajectory
//            bit-for-bit, so outputs are identical to the oracle.
//   phase 4  s = min t over each stored ball; one depth-major sweep fills
//            the g tables; (18) sums the root row.
//
// Adjacency is pre-sliced once per touched origin (constraint arcs with
// partner + both coefficients, sibling lists in port order), so the O(1)
// state updates read contiguous arrays instead of re-walking the view.
// Because every copy of an origin lists its neighbours in the origin's
// original port order, the min/sum reduction order -- and therefore every
// floating-point result -- is bit-identical to the naive engine's.
// ===========================================================================

namespace detail {

struct DpScratch {
  // SoA probe lanes: one reverse-topological sweep fills the f tables for
  // up to kLanes DISTINCT probe omegas at once, each omega occupying a
  // contiguous lane stripe (state-major, lane-minor: index
  // (slot * (r+1) + d) * kLanes + lane).  The per-state fmark bytes double
  // as lane masks -- bit l set means lane l's search cone needs the state
  // -- which is why kLanes is exactly 8.  Full-mask states (the common
  // case in fat views, where the lockstep bisections share their cones)
  // take a branch-free all-lane inner loop the compiler vectorizes; other
  // states fill only their marked lanes, so total f-work never exceeds the
  // one-sweep-per-omega baseline.
  static constexpr std::int32_t kLanes = 8;

  // --- origin-indexed, epoch-stamped (O(1) reset, grow-only) ------------
  // Entries are valid only when their epoch matches `epoch`; growth fills
  // epoch 0, which is never current.
  std::vector<std::int32_t> origin2slot;
  std::vector<std::uint32_t> slot_epoch;
  std::uint32_t epoch = 0;

  // --- slot-indexed (dense ids for touched agent origins) ---------------
  std::vector<std::int32_t> slot_origin;
  std::vector<std::uint8_t> slot_flags;
  std::vector<double> inv_cap;

  // Constraint arcs in port order: partner agent origin + both coefficients.
  std::vector<std::int64_t> arc_offsets;  // size slots+1
  std::vector<std::int32_t> arc_partner;
  std::vector<double> arc_a_self;
  std::vector<double> arc_a_partner;

  // Siblings (objective row minus self, as origins) in the objective's
  // port order.
  std::vector<std::int64_t> sib_offsets;  // size slots+1
  std::vector<std::int32_t> sib_origin;

  // --- flat (slot, depth) tables ----------------------------------------
  // f tables are lane-striped (see kLanes): index (slot*(r+1)+d)*kLanes+l.
  // The fmark bytes are per-state lane masks.  g tables stay single-lane
  // (one sweep total), index slot * (r+1) + d.
  std::vector<double> f_plus, f_minus;
  std::vector<std::uint8_t> fok_plus, fok_minus;  // condition-(8) cone flags
  std::vector<std::uint8_t> fmark_plus, fmark_minus;
  std::vector<double> g_plus, g_minus;
  std::vector<std::uint8_t> gmark_plus, gmark_minus;

  // --- per-slot t / s values --------------------------------------------
  std::vector<std::uint8_t> t_need;
  std::vector<double> t_val;
  std::vector<std::uint8_t> s_need;
  std::vector<double> s_val;

  // --- worklists and buckets --------------------------------------------
  std::vector<std::vector<std::int32_t>> fbucket_plus, fbucket_minus;
  std::vector<std::vector<std::int32_t>> gbucket_plus, gbucket_minus;
  std::vector<std::int32_t> s_list;  // slots needing s, discovery order
  std::vector<std::int32_t> t_list;  // slots needing t, discovery order
  std::vector<std::int64_t> ball_offsets;  // s_list-parallel slices into...
  std::vector<std::int32_t> ball_slots;    // ...the stored balls
  std::vector<std::uint8_t> in_ball;       // per-slot BFS visited marks
  std::vector<std::int32_t> bfs_cur, bfs_next;
  std::vector<std::pair<std::uint64_t, std::int32_t>> probes;

  struct TSearch {
    std::int32_t slot = -1;
    double cap = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double eps = 0.0;
    double result = 0.0;
    std::int32_t iters = 0;
    std::uint8_t stage = 0;  // 0: probe 0, 1: probe hi, 2: bisect, 3: done
  };
  std::vector<TSearch> searches;

  // Allocation-churn accounting (ViewEvalScratch::reallocations): one event
  // per reset that observes the monitored buffers (the largest table and
  // the origin map) above their previously seen capacity -- i.e. the
  // PREVIOUS evaluation had to allocate.  Steady-state reuse counts zero.
  std::int64_t reallocs = 0;
  std::size_t fcap_seen = 0;
  std::size_t ocap_seen = 0;

  void reset(std::int32_t r) {
    if (f_plus.capacity() > fcap_seen || origin2slot.capacity() > ocap_seen) {
      ++reallocs;
      fcap_seen = f_plus.capacity();
      ocap_seen = origin2slot.capacity();
    }
    ++epoch;
    if (epoch == 0) {  // wrapped: stale stamps could collide, wipe them
      slot_epoch.assign(slot_epoch.size(), 0);
      epoch = 1;
    }
    slot_origin.clear();
    slot_flags.clear();
    inv_cap.clear();
    arc_offsets.assign(1, 0);
    arc_partner.clear();
    arc_a_self.clear();
    arc_a_partner.clear();
    sib_offsets.assign(1, 0);
    sib_origin.clear();
    f_plus.clear();
    f_minus.clear();
    fok_plus.clear();
    fok_minus.clear();
    fmark_plus.clear();
    fmark_minus.clear();
    g_plus.clear();
    g_minus.clear();
    gmark_plus.clear();
    gmark_minus.clear();
    t_need.clear();
    t_val.clear();
    s_need.clear();
    s_val.clear();
    const auto depths = static_cast<std::size_t>(r) + 1;
    fbucket_plus.resize(depths);
    fbucket_minus.resize(depths);
    gbucket_plus.resize(depths);
    gbucket_minus.resize(depths);
    for (std::size_t d = 0; d < depths; ++d) {
      fbucket_plus[d].clear();
      fbucket_minus[d].clear();
      gbucket_plus[d].clear();
      gbucket_minus[d].clear();
    }
    s_list.clear();
    t_list.clear();
    ball_offsets.assign(1, 0);
    ball_slots.clear();
    in_ball.clear();
    probes.clear();
    searches.clear();
  }
};

}  // namespace detail

namespace {

class DpViewEvaluator {
  // slot_flags bits.
  static constexpr std::uint8_t kCapOk = 1u << 0;
  static constexpr std::uint8_t kArcsOk = 1u << 1;
  static constexpr std::uint8_t kSibsOk = 1u << 2;
  static constexpr std::uint8_t kArcsMalformed = 1u << 3;
  static constexpr std::uint8_t kSibsMalformed = 1u << 4;

  static constexpr std::int32_t kLanes = detail::DpScratch::kLanes;

 public:
  DpViewEvaluator(const ViewTree& view, std::int32_t r,
                  const TSearchOptions& opt, detail::DpScratch& sc,
                  LocalStats* stats, DpWarmStart* warm = nullptr)
      : view_(&view), r_(r), opt_(opt), sc_(sc), stats_(stats), warm_(warm) {
    sc_.reset(r);
  }

  // Graph-backed construction (the fat-view fast path): the same DP driven
  // straight off the comm graph, no materialised view.  Sound and BITWISE
  // identical to the view-backed run because the DP is origin-keyed
  // throughout (slot_of collapses every view copy to its origin already)
  // and a view's adjacency slices are exactly the graph rows in port order
  // -- the view build only ever re-serialises them.  Skipping the unfold
  // removes the dominant cost on fat views, where the radius-(12r+5) tree
  // holds orders of magnitude more copies than the graph ball has origins.
  DpViewEvaluator(const CommGraph& g, NodeId root, std::int32_t r,
                  const TSearchOptions& opt, detail::DpScratch& sc,
                  LocalStats* stats, DpWarmStart* warm = nullptr)
      : view_(nullptr), g_(&g), groot_(root), r_(r), opt_(opt), sc_(sc),
        stats_(stats), warm_(warm) {
    sc_.reset(r);
  }

  // The output rule (18) for the root agent.
  double x_root() {
    const std::int32_t root = root_slot();
    for (std::int32_t d = 0; d <= r_; ++d) {
      mark_g_plus(root, d);
      mark_g_minus(root, d);
    }
    run_smoothing_and_t();
    fill_g_tables();
    double sum = 0.0;
    const std::int64_t row = static_cast<std::int64_t>(root) * (r_ + 1);
    for (std::int32_t d = 0; d <= r_; ++d) {
      sum += sc_.g_plus[static_cast<std::size_t>(row + d)] +
             sc_.g_minus[static_cast<std::size_t>(row + d)];
    }
    return sum / (2.0 * static_cast<double>(r_ + 2));  // (18), R = r + 2
  }

  double t_root() {
    const std::int32_t root = root_slot();
    if (!sc_.t_need[static_cast<std::size_t>(root)]) {
      sc_.t_need[static_cast<std::size_t>(root)] = 1;
      sc_.t_list.push_back(root);
    }
    run_t_searches();
    return sc_.t_val[static_cast<std::size_t>(root)];
  }

 private:
  // --- slots and adjacency slices ---------------------------------------

  std::int32_t root_slot() {
    if (g_ != nullptr) {
      LOCMM_CHECK(g_->type(groot_) == NodeType::kAgent);
      return slot_of(groot_);
    }
    LOCMM_CHECK(view_->node(0).type == NodeType::kAgent);
    return slot_of(view_->node(0).origin);
  }

  std::int32_t slot_of(NodeId origin) {
    const auto o = static_cast<std::size_t>(origin);
    if (o < sc_.origin2slot.size() && sc_.slot_epoch[o] == sc_.epoch)
      return sc_.origin2slot[o];
    return create_slot(origin);
  }

  // The shallowest (most-expanded) copy of `origin`, or -1 when the origin
  // never appears in the view.  Constraint/objective nodes adjacent to an
  // expanded agent copy always appear, so -1 only arises past the frontier.
  // View-backed mode only.
  std::int32_t rep_of(NodeId origin) const {
    return view_->representative(origin);
  }

  std::int32_t create_slot(NodeId origin) {
    const auto slot = static_cast<std::int32_t>(sc_.slot_origin.size());
    const auto o = static_cast<std::size_t>(origin);
    if (o >= sc_.origin2slot.size()) {
      sc_.origin2slot.resize(o + 1);
      sc_.slot_epoch.resize(o + 1, 0);
    }
    sc_.origin2slot[o] = slot;
    sc_.slot_epoch[o] = sc_.epoch;
    sc_.slot_origin.push_back(origin);

    std::uint8_t flags = 0;
    double cap = std::numeric_limits<double>::infinity();
    if (g_ != nullptr) {
      harvest_graph(origin, flags, cap);
    } else {
      harvest_view(origin, flags, cap);
    }

    sc_.arc_offsets.push_back(static_cast<std::int64_t>(sc_.arc_partner.size()));
    sc_.sib_offsets.push_back(static_cast<std::int64_t>(sc_.sib_origin.size()));
    sc_.slot_flags.push_back(flags);
    sc_.inv_cap.push_back(cap);

    const auto rows = (static_cast<std::size_t>(slot) + 1) *
                      (static_cast<std::size_t>(r_) + 1);
    const auto lane_rows = rows * static_cast<std::size_t>(kLanes);
    sc_.f_plus.resize(lane_rows);
    sc_.f_minus.resize(lane_rows);
    sc_.fok_plus.resize(lane_rows, 0);
    sc_.fok_minus.resize(lane_rows, 0);
    sc_.fmark_plus.resize(rows, 0);
    sc_.fmark_minus.resize(rows, 0);
    sc_.g_plus.resize(rows);
    sc_.g_minus.resize(rows);
    sc_.gmark_plus.resize(rows, 0);
    sc_.gmark_minus.resize(rows, 0);
    sc_.t_need.push_back(0);
    sc_.t_val.push_back(0.0);
    sc_.s_need.push_back(0);
    sc_.s_val.push_back(0.0);
    return slot;
  }

  // Harvests the slot's cap / arc / sibling slices from the materialised
  // view (the shallowest copy of `origin`).
  void harvest_view(NodeId origin, std::uint8_t& flags, double& cap) {
    const std::int32_t a = rep_of(origin);
    LOCMM_DCHECK(a >= 0 && view_->node(a).type == NodeType::kAgent);
    std::int32_t objective = -1;
    bool multi_objective = false;
    bool arcs_frontier = false, arcs_malformed = false;

    if (!view_->expanded(a)) return;
    flags |= kCapOk;
    const auto ids = view_->neighbor_ids(a);
    const auto coeffs = view_->neighbor_coeffs(a);
    for (std::size_t p = 0; p < ids.size(); ++p) {
      const std::int32_t nbr = ids[p];
      if (view_->node(nbr).type == NodeType::kConstraint) {
        cap = std::min(cap, 1.0 / coeffs[p]);
        // Any expanded copy of the constraint exposes both endpoints;
        // prefer the shallowest.
        const std::int32_t c = rep_of(view_->node(nbr).origin);
        LOCMM_DCHECK(c >= 0);
        if (!view_->expanded(c)) {
          arcs_frontier = true;
          continue;
        }
        // The unique partner agent of this |Vi| = 2 constraint.
        NodeId partner = -1;
        double a_partner = 0.0;
        const auto cids = view_->neighbor_ids(c);
        const auto ccoeffs = view_->neighbor_coeffs(c);
        for (std::size_t q = 0; q < cids.size(); ++q) {
          if (view_->node(cids[q]).origin == origin) continue;
          if (partner >= 0) {
            arcs_malformed = true;
            break;
          }
          partner = view_->node(cids[q]).origin;
          a_partner = ccoeffs[q];
        }
        if (partner < 0) arcs_malformed = true;
        if (!arcs_malformed) {
          sc_.arc_partner.push_back(partner);
          sc_.arc_a_self.push_back(coeffs[p]);
          sc_.arc_a_partner.push_back(a_partner);
        }
      } else if (view_->node(nbr).type == NodeType::kObjective) {
        if (objective >= 0) {
          multi_objective = true;
        } else {
          objective = rep_of(view_->node(nbr).origin);
          LOCMM_DCHECK(objective >= 0);
        }
      }
    }
    if (!arcs_frontier && !arcs_malformed) flags |= kArcsOk;
    if (arcs_malformed) flags |= kArcsMalformed;

    if (objective < 0 || multi_objective) {
      flags |= kSibsMalformed;
    } else if (view_->expanded(objective)) {
      bool sibs_malformed = false;
      for (const std::int32_t w : view_->neighbor_ids(objective)) {
        if (view_->node(w).type != NodeType::kAgent) {
          sibs_malformed = true;
          break;
        }
        if (view_->node(w).origin != origin)
          sc_.sib_origin.push_back(view_->node(w).origin);
      }
      if (sibs_malformed) {
        flags |= kSibsMalformed;
      } else {
        flags |= kSibsOk;
      }
    }
  }

  // The graph-backed twin of harvest_view: identical slice contents in
  // identical (port) order -- a view copy's neighbour list IS the graph row
  // of its origin, re-serialised by the unfold -- so every downstream value
  // lands bitwise the same.  A graph slot is never a frontier: every flag
  // is decided here and fail_frontier stays unreachable in graph mode.
  void harvest_graph(NodeId origin, std::uint8_t& flags, double& cap) {
    LOCMM_DCHECK(g_->type(origin) == NodeType::kAgent);
    flags |= kCapOk;
    NodeId objective = -1;
    bool multi_objective = false;
    bool arcs_malformed = false;
    for (const HalfEdge& e : g_->neighbors(origin)) {
      if (g_->type(e.to) == NodeType::kConstraint) {
        cap = std::min(cap, 1.0 / e.coeff);
        // The unique partner agent of this |Vi| = 2 constraint.
        NodeId partner = -1;
        double a_partner = 0.0;
        for (const HalfEdge& ce : g_->neighbors(e.to)) {
          if (ce.to == origin) continue;
          if (partner >= 0) {
            arcs_malformed = true;
            break;
          }
          partner = ce.to;
          a_partner = ce.coeff;
        }
        if (partner < 0) arcs_malformed = true;
        if (!arcs_malformed) {
          sc_.arc_partner.push_back(partner);
          sc_.arc_a_self.push_back(e.coeff);
          sc_.arc_a_partner.push_back(a_partner);
        }
      } else if (g_->type(e.to) == NodeType::kObjective) {
        if (objective >= 0) {
          multi_objective = true;
        } else {
          objective = e.to;
        }
      }
    }
    if (!arcs_malformed) flags |= kArcsOk;
    if (arcs_malformed) flags |= kArcsMalformed;

    if (objective < 0 || multi_objective) {
      flags |= kSibsMalformed;
    } else {
      bool sibs_malformed = false;
      for (const HalfEdge& oe : g_->neighbors(objective)) {
        if (g_->type(oe.to) != NodeType::kAgent) {
          sibs_malformed = true;
          break;
        }
        if (oe.to != origin) sc_.sib_origin.push_back(oe.to);
      }
      if (sibs_malformed) {
        flags |= kSibsMalformed;
      } else {
        flags |= kSibsOk;
      }
    }
  }

  void fail_frontier(std::int32_t slot) {
    LOCMM_CHECK(view_ != nullptr);  // graph slots are never frontiers
    const std::int32_t node =
        rep_of(sc_.slot_origin[static_cast<std::size_t>(slot)]);
    LOCMM_CHECK_MSG(false, "evaluation reached the view frontier (depth "
                               << (node >= 0 ? view_->node(node).depth : -1)
                               << " of " << view_->depth()
                               << "); view_radius() is too small");
  }

  void use_cap(std::int32_t slot) {
    if (!(sc_.slot_flags[static_cast<std::size_t>(slot)] & kCapOk))
      fail_frontier(slot);
  }

  void use_arcs(std::int32_t slot) {
    const std::uint8_t flags = sc_.slot_flags[static_cast<std::size_t>(slot)];
    if (flags & kArcsOk) return;
    LOCMM_CHECK_MSG(!(flags & kArcsMalformed),
                    "|Vi| != 2 in view (not special form)");
    fail_frontier(slot);
  }

  void use_sibs(std::int32_t slot) {
    const std::uint8_t flags = sc_.slot_flags[static_cast<std::size_t>(slot)];
    if (flags & kSibsOk) return;
    LOCMM_CHECK_MSG(!(flags & kSibsMalformed),
                    "|Kv| != 1 in view (not special form)");
    fail_frontier(slot);
  }

  std::int64_t at(std::int32_t slot, std::int32_t d) const {
    return static_cast<std::int64_t>(slot) * (r_ + 1) + d;
  }

  // --- phase 1: mark the g-dependency cone of the root ------------------

  void mark_g_plus(std::int32_t slot, std::int32_t d) {
    auto& mark = sc_.gmark_plus[static_cast<std::size_t>(at(slot, d))];
    if (mark) return;
    mark = 1;
    sc_.gbucket_plus[static_cast<std::size_t>(d)].push_back(slot);
    if (d == 0) {
      use_cap(slot);  // (12)
      return;
    }
    use_arcs(slot);  // (14) reads every incident constraint's partner
    for (std::int64_t j = sc_.arc_offsets[static_cast<std::size_t>(slot)];
         j < sc_.arc_offsets[static_cast<std::size_t>(slot) + 1]; ++j) {
      mark_g_minus(slot_of(sc_.arc_partner[static_cast<std::size_t>(j)]),
                   d - 1);
    }
  }

  void mark_g_minus(std::int32_t slot, std::int32_t d) {
    auto& mark = sc_.gmark_minus[static_cast<std::size_t>(at(slot, d))];
    if (mark) return;
    mark = 1;
    sc_.gbucket_minus[static_cast<std::size_t>(d)].push_back(slot);
    if (!sc_.s_need[static_cast<std::size_t>(slot)]) {  // (13) reads s_v
      sc_.s_need[static_cast<std::size_t>(slot)] = 1;
      sc_.s_list.push_back(slot);
    }
    use_sibs(slot);
    for (std::int64_t j = sc_.sib_offsets[static_cast<std::size_t>(slot)];
         j < sc_.sib_offsets[static_cast<std::size_t>(slot) + 1]; ++j) {
      mark_g_plus(slot_of(sc_.sib_origin[static_cast<std::size_t>(j)]), d);
    }
  }

  // --- phase 2: smoothing balls and the t-needed set --------------------

  // One BFS per s-needed agent over the reconstructed agent graph (arc
  // partners and siblings, i.e. 2 comm-graph hops per step): 2r+1 steps
  // reach exactly the agents of the radius-(4r+2) comm-graph ball, whose
  // origin set equals the unfolding ball of §5.3 (shortest paths never
  // backtrack).  Stores the ball (for the min in phase 4) and adds its
  // agents to the union of t-needed agents.
  void collect_smoothing_balls() {
    const std::int32_t steps = 2 * r_ + 1;
    for (const std::int32_t a : sc_.s_list) {
      const auto ball_begin = static_cast<std::size_t>(sc_.ball_slots.size());
      sc_.bfs_cur.assign(1, a);
      visit_ball(a);
      for (std::int32_t dist = 0; dist <= steps; ++dist) {
        for (const std::int32_t slot : sc_.bfs_cur) {
          if (dist == steps) continue;
          // Expanding needs the slot's full agent adjacency.
          use_arcs(slot);
          use_sibs(slot);
          for (std::int64_t j =
                   sc_.arc_offsets[static_cast<std::size_t>(slot)];
               j < sc_.arc_offsets[static_cast<std::size_t>(slot) + 1]; ++j) {
            const std::int32_t nbr =
                slot_of(sc_.arc_partner[static_cast<std::size_t>(j)]);
            if (visit_ball(nbr)) sc_.bfs_next.push_back(nbr);
          }
          for (std::int64_t j =
                   sc_.sib_offsets[static_cast<std::size_t>(slot)];
               j < sc_.sib_offsets[static_cast<std::size_t>(slot) + 1]; ++j) {
            const std::int32_t nbr =
                slot_of(sc_.sib_origin[static_cast<std::size_t>(j)]);
            if (visit_ball(nbr)) sc_.bfs_next.push_back(nbr);
          }
        }
        sc_.bfs_cur.swap(sc_.bfs_next);
        sc_.bfs_next.clear();
      }
      // Reset the visited marks via the collected ball (O(ball)).
      for (std::size_t j = ball_begin; j < sc_.ball_slots.size(); ++j)
        sc_.in_ball[static_cast<std::size_t>(sc_.ball_slots[j])] = 0;
      sc_.ball_offsets.push_back(
          static_cast<std::int64_t>(sc_.ball_slots.size()));
    }
  }

  // Marks `slot` as a member of the current ball; returns true on first
  // visit.  Also adds it to the t-needed union.
  bool visit_ball(std::int32_t slot) {
    if (sc_.in_ball.size() < sc_.slot_origin.size())
      sc_.in_ball.resize(sc_.slot_origin.size(), 0);
    if (sc_.in_ball[static_cast<std::size_t>(slot)]) return false;
    sc_.in_ball[static_cast<std::size_t>(slot)] = 1;
    sc_.ball_slots.push_back(slot);
    if (!sc_.t_need[static_cast<std::size_t>(slot)]) {
      sc_.t_need[static_cast<std::size_t>(slot)] = 1;
      sc_.t_list.push_back(slot);
    }
    return true;
  }

  // --- phase 3: batched t-search ----------------------------------------

  // Initialises one bisection per t-needed agent; the search bracket and
  // probe sequence are exactly the naive engine's, so results agree
  // bit-for-bit.  hi = sum of inv_cap over the objective row, own term
  // first (matching SpecialFormInstance::t_search_upper).
  //
  // Warm start (fat-view fast path): with a TValueStore attached, t-needed
  // origins whose value is ready in the store are served outright -- no
  // search, no sweeps -- and every bisection actually run publishes its
  // result back.  t is position-independent (Example 2), so a stored value
  // is bitwise what this bisection would recompute, PROVIDED the caller
  // invalidated every origin within comm-graph distance 4r+3 of an edit
  // (the farthest coefficient the t recursion reads).  IncrementalSolver
  // maintains exactly that cone.
  void run_t_searches() {
    TValueStore* const store = warm_ != nullptr ? warm_->store : nullptr;
    sc_.searches.clear();
    sc_.searches.reserve(sc_.t_list.size());
    for (const std::int32_t slot : sc_.t_list) {
      if (store != nullptr) {
        double tv;
        if (store->lookup(sc_.slot_origin[static_cast<std::size_t>(slot)],
                          &tv)) {
          sc_.t_val[static_cast<std::size_t>(slot)] = tv;
          ++warm_->reused;
          continue;
        }
        ++warm_->recomputed;
      }
      detail::DpScratch::TSearch ts;
      ts.slot = slot;
      use_cap(slot);
      ts.cap = sc_.inv_cap[static_cast<std::size_t>(slot)];
      double hi = ts.cap;
      use_sibs(slot);
      for (std::int64_t j = sc_.sib_offsets[static_cast<std::size_t>(slot)];
           j < sc_.sib_offsets[static_cast<std::size_t>(slot) + 1]; ++j) {
        const std::int32_t ws =
            slot_of(sc_.sib_origin[static_cast<std::size_t>(j)]);
        use_cap(ws);
        hi += sc_.inv_cap[static_cast<std::size_t>(ws)];
      }
      ts.hi = hi;
      ts.eps = opt_.tol * std::max(1.0, hi);
      sc_.searches.push_back(ts);
    }
    if (stats_ != nullptr)
      stats_->t_searches += static_cast<std::int64_t>(sc_.searches.size());

    std::size_t remaining = sc_.searches.size();
    while (remaining > 0) {
      // Group the active searches by the bit pattern of their next probe:
      // every group shares one omega-table fill, and up to kLanes DISTINCT
      // omegas batch into one SoA sweep.
      sc_.probes.clear();
      for (std::size_t i = 0; i < sc_.searches.size(); ++i) {
        const auto& ts = sc_.searches[i];
        if (ts.stage == 3) continue;
        const double omega = ts.stage == 0   ? 0.0
                             : ts.stage == 1 ? ts.hi
                                             : 0.5 * (ts.lo + ts.hi);
        sc_.probes.emplace_back(std::bit_cast<std::uint64_t>(omega),
                                static_cast<std::int32_t>(i));
      }
      std::sort(sc_.probes.begin(), sc_.probes.end());
      std::size_t i = 0;
      while (i < sc_.probes.size()) {
        double lane_omega[kLanes];
        std::size_t lane_begin[kLanes + 1];
        std::int32_t lanes = 0;
        while (i < sc_.probes.size() && lanes < kLanes) {
          lane_begin[lanes] = i;
          lane_omega[lanes] = std::bit_cast<double>(sc_.probes[i].first);
          std::size_t j = i;
          while (j < sc_.probes.size() &&
                 sc_.probes[j].first == sc_.probes[i].first) {
            ++j;
          }
          ++lanes;
          i = j;
        }
        lane_begin[lanes] = i;
        sweep_f(lane_omega, lane_begin, lanes);
        for (std::int32_t l = 0; l < lanes; ++l) {
          for (std::size_t m = lane_begin[l]; m < lane_begin[l + 1]; ++m) {
            auto& ts =
                sc_.searches[static_cast<std::size_t>(sc_.probes[m].second)];
            const std::int64_t root = at(ts.slot, r_) * kLanes + l;
            const bool ok =
                sc_.fok_minus[static_cast<std::size_t>(root)] != 0 &&
                sc_.f_minus[static_cast<std::size_t>(root)] <= ts.cap;  // (9)
            if (advance(ts, lane_omega[l], ok)) --remaining;
          }
        }
      }
    }
    for (const auto& ts : sc_.searches) {
      sc_.t_val[static_cast<std::size_t>(ts.slot)] = ts.result;
      if (store != nullptr)
        store->publish(sc_.slot_origin[static_cast<std::size_t>(ts.slot)],
                       ts.result);
    }
  }

  // One bisection step; returns true when the search just finished.  The
  // stage machine reproduces the naive t_at() control flow exactly:
  // check(0) must pass, check(hi) short-circuits, then standard bisection
  // on [lo, hi] with the tolerance/iteration budget of TSearchOptions.
  bool advance(detail::DpScratch::TSearch& ts, double omega, bool ok) {
    if (stats_ != nullptr) ++stats_->t_checks;
    switch (ts.stage) {
      case 0:
        LOCMM_CHECK_MSG(ok, "omega = 0 must satisfy conditions (8)-(9)");
        ts.stage = 1;
        return false;
      case 1:
        if (ok) {
          ts.result = ts.hi;
          ts.stage = 3;
          return true;
        }
        break;
      default:
        if (ok) {
          ts.lo = omega;
        } else {
          ts.hi = omega;
        }
        ++ts.iters;
        break;
    }
    if (ts.hi - ts.lo > ts.eps && ts.iters < opt_.max_iters) {
      ts.stage = 2;
      return false;
    }
    ts.result = ts.lo;
    ts.stage = 3;
    return true;
  }

  // Fills the f±/fok tables for up to kLanes distinct omegas in ONE
  // reverse-topological sweep (SoA batching): lane l holds omega
  // lane_omega[l], whose searches sit in probes[lane_begin[l],
  // lane_begin[l+1]).  A marking pass gathers each lane's dependency cone
  // into the shared depth-major buckets, recording per-state LANE MASKS in
  // the fmark bytes (bit l = lane l needs this state).  The fill then walks
  // each bucketed state once: full-mask states take the branch-free
  // all-lane loop (contiguous stripes of kLanes doubles -- the compiler's
  // vectorization target), partial-mask states fill only their marked
  // lanes.  Per-lane floating-point op order is IDENTICAL to the scalar
  // single-omega sweep, so results are bitwise unchanged, and total f-work
  // equals the sum of the per-omega cones -- batching never inflates it.
  void sweep_f(const double* lane_omega, const std::size_t* lane_begin,
               std::int32_t lanes) {
    if (stats_ != nullptr) {
      stats_->omega_sweeps += lanes;  // per-distinct-omega semantics
      if (lanes >= 2) ++stats_->vector_sweeps;
    }
    for (std::int32_t l = 0; l < lanes; ++l) {
      const auto bit = static_cast<std::uint8_t>(1u << l);
      for (std::size_t m = lane_begin[l]; m < lane_begin[l + 1]; ++m) {
        mark_f_minus(
            sc_.searches[static_cast<std::size_t>(sc_.probes[m].second)].slot,
            r_, bit);
      }
    }
    const auto full =
        static_cast<std::uint8_t>((1u << lanes) - 1u);  // all-lane mask
    std::int64_t evals = 0;
    for (std::int32_t d = 0; d <= r_; ++d) {
      auto& plus_bucket = sc_.fbucket_plus[static_cast<std::size_t>(d)];
      for (const std::int32_t s : plus_bucket) {
        const std::uint8_t mask =
            sc_.fmark_plus[static_cast<std::size_t>(at(s, d))];
        const std::int64_t base = at(s, d) * kLanes;
        evals += std::popcount(static_cast<unsigned>(mask));
        if (d == 0) {
          const double val = sc_.inv_cap[static_cast<std::size_t>(s)];  // (5)
          const std::uint8_t ok = val >= 0.0 ? 1 : 0;  // condition (8)
          for (std::int32_t l = 0; l < lanes; ++l) {
            sc_.f_plus[static_cast<std::size_t>(base + l)] = val;
            sc_.fok_plus[static_cast<std::size_t>(base + l)] = ok;
          }
          continue;
        }
        if (mask == full) {
          // All lanes need this state: one pass over the arcs, a stripe of
          // lanes per arc -- the vectorizable hot path.
          double vals[kLanes];
          std::uint8_t oks[kLanes];
          for (std::int32_t l = 0; l < lanes; ++l) {
            vals[l] = std::numeric_limits<double>::infinity();
            oks[l] = 1;
          }
          for (std::int64_t j = sc_.arc_offsets[static_cast<std::size_t>(s)];
               j < sc_.arc_offsets[static_cast<std::size_t>(s) + 1]; ++j) {
            const std::int32_t ps =
                sc_.origin2slot[static_cast<std::size_t>(
                    sc_.arc_partner[static_cast<std::size_t>(j)])];
            const std::int64_t depb = at(ps, d - 1) * kLanes;
            const double ap =
                sc_.arc_a_partner[static_cast<std::size_t>(j)];
            const double as = sc_.arc_a_self[static_cast<std::size_t>(j)];
            for (std::int32_t l = 0; l < lanes; ++l) {
              oks[l] &= sc_.fok_minus[static_cast<std::size_t>(depb + l)];
              vals[l] = std::min(
                  vals[l],
                  (1.0 -
                   ap * sc_.f_minus[static_cast<std::size_t>(depb + l)]) /
                      as);  // (7)
            }
          }
          for (std::int32_t l = 0; l < lanes; ++l) {
            if (!(vals[l] >= 0.0)) oks[l] = 0;  // condition (8)
            sc_.f_plus[static_cast<std::size_t>(base + l)] = vals[l];
            sc_.fok_plus[static_cast<std::size_t>(base + l)] = oks[l];
          }
          continue;
        }
        // Partial mask: scalar chain per marked lane (same arc order).
        for (std::int32_t l = 0; l < lanes; ++l) {
          if ((mask & (1u << l)) == 0) continue;
          double val = std::numeric_limits<double>::infinity();
          std::uint8_t ok = 1;
          for (std::int64_t j = sc_.arc_offsets[static_cast<std::size_t>(s)];
               j < sc_.arc_offsets[static_cast<std::size_t>(s) + 1]; ++j) {
            const std::int32_t ps =
                sc_.origin2slot[static_cast<std::size_t>(
                    sc_.arc_partner[static_cast<std::size_t>(j)])];
            const std::int64_t dep = at(ps, d - 1) * kLanes + l;
            ok &= sc_.fok_minus[static_cast<std::size_t>(dep)];
            val = std::min(
                val, (1.0 - sc_.arc_a_partner[static_cast<std::size_t>(j)] *
                                sc_.f_minus[static_cast<std::size_t>(dep)]) /
                         sc_.arc_a_self[static_cast<std::size_t>(j)]);  // (7)
          }
          if (!(val >= 0.0)) ok = 0;  // condition (8)
          sc_.f_plus[static_cast<std::size_t>(base + l)] = val;
          sc_.fok_plus[static_cast<std::size_t>(base + l)] = ok;
        }
      }
      auto& minus_bucket = sc_.fbucket_minus[static_cast<std::size_t>(d)];
      for (const std::int32_t s : minus_bucket) {
        const std::uint8_t mask =
            sc_.fmark_minus[static_cast<std::size_t>(at(s, d))];
        const std::int64_t base = at(s, d) * kLanes;
        evals += std::popcount(static_cast<unsigned>(mask));
        if (mask == full) {
          double sums[kLanes];
          std::uint8_t oks[kLanes];
          for (std::int32_t l = 0; l < lanes; ++l) {
            sums[l] = 0.0;
            oks[l] = 1;
          }
          for (std::int64_t j = sc_.sib_offsets[static_cast<std::size_t>(s)];
               j < sc_.sib_offsets[static_cast<std::size_t>(s) + 1]; ++j) {
            const std::int32_t ws = sc_.origin2slot[static_cast<std::size_t>(
                sc_.sib_origin[static_cast<std::size_t>(j)])];
            const std::int64_t depb = at(ws, d) * kLanes;
            for (std::int32_t l = 0; l < lanes; ++l) {
              sums[l] += sc_.f_plus[static_cast<std::size_t>(depb + l)];
              oks[l] &= sc_.fok_plus[static_cast<std::size_t>(depb + l)];
            }
          }
          for (std::int32_t l = 0; l < lanes; ++l) {
            sc_.f_minus[static_cast<std::size_t>(base + l)] =
                std::max(0.0, lane_omega[l] - sums[l]);  // (6)
            sc_.fok_minus[static_cast<std::size_t>(base + l)] = oks[l];
          }
          continue;
        }
        for (std::int32_t l = 0; l < lanes; ++l) {
          if ((mask & (1u << l)) == 0) continue;
          double sum = 0.0;
          std::uint8_t ok = 1;
          for (std::int64_t j = sc_.sib_offsets[static_cast<std::size_t>(s)];
               j < sc_.sib_offsets[static_cast<std::size_t>(s) + 1]; ++j) {
            const std::int32_t ws = sc_.origin2slot[static_cast<std::size_t>(
                sc_.sib_origin[static_cast<std::size_t>(j)])];
            const std::int64_t dep = at(ws, d) * kLanes + l;
            sum += sc_.f_plus[static_cast<std::size_t>(dep)];
            ok &= sc_.fok_plus[static_cast<std::size_t>(dep)];
          }
          sc_.f_minus[static_cast<std::size_t>(base + l)] =
              std::max(0.0, lane_omega[l] - sum);  // (6)
          sc_.fok_minus[static_cast<std::size_t>(base + l)] = ok;
        }
      }
    }
    if (stats_ != nullptr) stats_->f_evals += evals;
    // Unmark via the buckets (O(touched), not O(table)).
    for (std::int32_t d = 0; d <= r_; ++d) {
      for (const std::int32_t s : sc_.fbucket_plus[static_cast<std::size_t>(d)])
        sc_.fmark_plus[static_cast<std::size_t>(at(s, d))] = 0;
      for (const std::int32_t s :
           sc_.fbucket_minus[static_cast<std::size_t>(d)])
        sc_.fmark_minus[static_cast<std::size_t>(at(s, d))] = 0;
      sc_.fbucket_plus[static_cast<std::size_t>(d)].clear();
      sc_.fbucket_minus[static_cast<std::size_t>(d)].clear();
    }
  }

  // Marks state (slot, d, ±) as needed by lane `bit` and recurses into its
  // dependencies.  A state enters its bucket on FIRST marking only; later
  // lanes just OR their bit in, but must still recurse -- their cone may
  // extend past states another lane already marked.
  void mark_f_plus(std::int32_t slot, std::int32_t d, std::uint8_t bit) {
    auto& mark = sc_.fmark_plus[static_cast<std::size_t>(at(slot, d))];
    if (mark & bit) return;
    if (mark == 0) sc_.fbucket_plus[static_cast<std::size_t>(d)].push_back(slot);
    mark |= bit;
    if (d == 0) {
      use_cap(slot);
      return;
    }
    use_arcs(slot);
    for (std::int64_t j = sc_.arc_offsets[static_cast<std::size_t>(slot)];
         j < sc_.arc_offsets[static_cast<std::size_t>(slot) + 1]; ++j) {
      mark_f_minus(slot_of(sc_.arc_partner[static_cast<std::size_t>(j)]),
                   d - 1, bit);
    }
  }

  void mark_f_minus(std::int32_t slot, std::int32_t d, std::uint8_t bit) {
    auto& mark = sc_.fmark_minus[static_cast<std::size_t>(at(slot, d))];
    if (mark & bit) return;
    if (mark == 0)
      sc_.fbucket_minus[static_cast<std::size_t>(d)].push_back(slot);
    mark |= bit;
    use_sibs(slot);
    for (std::int64_t j = sc_.sib_offsets[static_cast<std::size_t>(slot)];
         j < sc_.sib_offsets[static_cast<std::size_t>(slot) + 1]; ++j) {
      mark_f_plus(slot_of(sc_.sib_origin[static_cast<std::size_t>(j)]), d, bit);
    }
  }

  // --- phase 4: s values and the g tables -------------------------------

  void run_smoothing_and_t() {
    collect_smoothing_balls();
    run_t_searches();
    // s_v = min t over the stored radius-(4r+2) ball (§5.3).
    for (std::size_t i = 0; i < sc_.s_list.size(); ++i) {
      double s = std::numeric_limits<double>::infinity();
      for (std::int64_t j = sc_.ball_offsets[i]; j < sc_.ball_offsets[i + 1];
           ++j) {
        s = std::min(
            s, sc_.t_val[static_cast<std::size_t>(
                   sc_.ball_slots[static_cast<std::size_t>(j)])]);
      }
      sc_.s_val[static_cast<std::size_t>(sc_.s_list[i])] = s;
    }
  }

  // One bottom-up sweep over the marked g states: d ascending, g+ before
  // g- (exactly the dependency order of (12)-(14)).
  void fill_g_tables() {
    std::int64_t evals = 0;
    for (std::int32_t d = 0; d <= r_; ++d) {
      auto& plus_bucket = sc_.gbucket_plus[static_cast<std::size_t>(d)];
      for (const std::int32_t s : plus_bucket) {
        double val;
        if (d == 0) {
          val = sc_.inv_cap[static_cast<std::size_t>(s)];  // (12)
        } else {
          val = std::numeric_limits<double>::infinity();
          for (std::int64_t j = sc_.arc_offsets[static_cast<std::size_t>(s)];
               j < sc_.arc_offsets[static_cast<std::size_t>(s) + 1]; ++j) {
            const std::int32_t ps =
                sc_.origin2slot[static_cast<std::size_t>(
                    sc_.arc_partner[static_cast<std::size_t>(j)])];
            val = std::min(
                val, (1.0 - sc_.arc_a_partner[static_cast<std::size_t>(j)] *
                                sc_.g_minus[static_cast<std::size_t>(
                                    at(ps, d - 1))]) /
                         sc_.arc_a_self[static_cast<std::size_t>(j)]);  // (14)
          }
        }
        sc_.g_plus[static_cast<std::size_t>(at(s, d))] = val;
      }
      auto& minus_bucket = sc_.gbucket_minus[static_cast<std::size_t>(d)];
      for (const std::int32_t s : minus_bucket) {
        double sum = 0.0;
        for (std::int64_t j = sc_.sib_offsets[static_cast<std::size_t>(s)];
             j < sc_.sib_offsets[static_cast<std::size_t>(s) + 1]; ++j) {
          const std::int32_t ws = sc_.origin2slot[static_cast<std::size_t>(
              sc_.sib_origin[static_cast<std::size_t>(j)])];
          sum += sc_.g_plus[static_cast<std::size_t>(at(ws, d))];
        }
        sc_.g_minus[static_cast<std::size_t>(at(s, d))] =
            std::max(0.0, sc_.s_val[static_cast<std::size_t>(s)] - sum);  // (13)
      }
      evals += static_cast<std::int64_t>(plus_bucket.size()) +
               static_cast<std::int64_t>(minus_bucket.size());
    }
    if (stats_ != nullptr) stats_->g_evals += evals;
  }

  const ViewTree* view_ = nullptr;  // view-backed mode
  const CommGraph* g_ = nullptr;    // graph-backed mode (fat-view fast path)
  NodeId groot_ = -1;               // root agent node in graph-backed mode
  std::int32_t r_;
  const TSearchOptions& opt_;
  detail::DpScratch& sc_;
  LocalStats* stats_;
  DpWarmStart* warm_;
};

}  // namespace

ViewEvalScratch::ViewEvalScratch() : impl_(new detail::DpScratch) {}
ViewEvalScratch::~ViewEvalScratch() = default;
ViewEvalScratch::ViewEvalScratch(ViewEvalScratch&&) noexcept = default;
ViewEvalScratch& ViewEvalScratch::operator=(ViewEvalScratch&&) noexcept =
    default;

std::int64_t ViewEvalScratch::reallocations() const { return impl_->reallocs; }

// One arena = everything a class evaluation touches for buffers: the view
// build target and the DP tables.
struct EvalScratchPoolArena {
  ViewTree view;
  ViewEvalScratch scratch;
};

EvalScratchPool::EvalScratchPool() = default;
EvalScratchPool::~EvalScratchPool() = default;

EvalScratchPool::Lease::Lease(EvalScratchPool& pool) : pool_(pool) {
  std::lock_guard<std::mutex> lk(pool_.mu_);
  if (!pool_.free_.empty()) {
    arena_ = pool_.free_.back();
    pool_.free_.pop_back();
  } else {
    pool_.arenas_.push_back(std::make_unique<EvalScratchPoolArena>());
    arena_ = pool_.arenas_.back().get();
  }
}

EvalScratchPool::Lease::~Lease() {
  std::lock_guard<std::mutex> lk(pool_.mu_);
  pool_.free_.push_back(arena_);
}

ViewTree& EvalScratchPool::Lease::view() { return arena_->view; }
ViewEvalScratch& EvalScratchPool::Lease::scratch() { return arena_->scratch; }

std::int64_t EvalScratchPool::arenas() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(arenas_.size());
}

std::int64_t EvalScratchPool::table_reallocations() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::int64_t total = 0;
  for (const auto& a : arenas_) total += a->scratch.reallocations();
  return total;
}

double solve_agent_from_view(const ViewTree& view, std::int32_t R,
                             const TSearchOptions& opt,
                             ViewEvalScratch* scratch, DpWarmStart* warm) {
  LOCMM_CHECK(R >= 2);
  LocalStats stats;
  double x;
  if (opt.engine == ViewEngine::kNaive) {
    ViewEvaluator eval(view, R - 2, opt, opt.stats ? &stats : nullptr);
    x = eval.x_root();
  } else {
    ViewEvalScratch local_scratch;
    DpViewEvaluator eval(view, R - 2, opt,
                         (scratch ? *scratch : local_scratch).impl(),
                         opt.stats ? &stats : nullptr, warm);
    x = eval.x_root();
  }
  stats.flush(opt.stats, view.size());
  if (opt.stats != nullptr) {
    opt.stats->view_evals.fetch_add(1, std::memory_order_relaxed);
    if (warm != nullptr) {
      opt.stats->warm_entries_reused.fetch_add(warm->reused,
                                               std::memory_order_relaxed);
      opt.stats->cone_entries_recomputed.fetch_add(warm->recomputed,
                                                   std::memory_order_relaxed);
    }
  }
  return x;
}

double solve_agent_on_graph(const CommGraph& g, AgentId v, std::int32_t R,
                            const TSearchOptions& opt,
                            ViewEvalScratch* scratch, DpWarmStart* warm) {
  LOCMM_CHECK(R >= 2);
  // The view-free construction exists for the memoized DP only; the naive
  // engine is view-based by definition (it is the differential oracle for
  // exactly this equivalence).
  LOCMM_CHECK(opt.engine == ViewEngine::kMemoizedDp);
  LocalStats stats;
  ViewEvalScratch local_scratch;
  DpViewEvaluator eval(g, g.agent_node(v), R - 2, opt,
                       (scratch ? *scratch : local_scratch).impl(),
                       opt.stats ? &stats : nullptr, warm);
  const double x = eval.x_root();
  stats.flush(opt.stats, 0);  // no view materialised
  if (opt.stats != nullptr) {
    opt.stats->view_evals.fetch_add(1, std::memory_order_relaxed);
    if (warm != nullptr) {
      opt.stats->warm_entries_reused.fetch_add(warm->reused,
                                               std::memory_order_relaxed);
      opt.stats->cone_entries_recomputed.fetch_add(warm->recomputed,
                                                   std::memory_order_relaxed);
    }
  }
  return x;
}

double t_root_from_view(const ViewTree& view, std::int32_t r,
                        const TSearchOptions& opt, ViewEvalScratch* scratch) {
  LOCMM_CHECK(r >= 0);
  LocalStats stats;
  double t;
  if (opt.engine == ViewEngine::kNaive) {
    ViewEvaluator eval(view, r, opt, opt.stats ? &stats : nullptr);
    t = eval.t_root();
  } else {
    ViewEvalScratch local;
    ViewEvalScratch& sc = scratch ? *scratch : local;
    DpViewEvaluator eval(view, r, opt, sc.impl(),
                         opt.stats ? &stats : nullptr);
    t = eval.t_root();
  }
  stats.flush(opt.stats, view.size());
  return t;
}

std::vector<double> solve_special_local_views(const MaxMinInstance& special,
                                              std::int32_t R,
                                              const TSearchOptions& opt,
                                              std::size_t threads) {
  const CommGraph g(special);
  const std::int32_t D = view_radius(R);
  std::vector<double> x(static_cast<std::size_t>(special.num_agents()), 0.0);
  if (x.empty()) return x;

  if (!opt.canonicalize_views) {
    // PR-1 baseline: one view build + evaluation per agent.
    parallel_for(x.size(), threads, [&](std::size_t v) {
      // Per-thread arenas: the view buffer and the DP tables persist across
      // agents (and across calls), so the per-agent loop stops
      // re-allocating.
      thread_local ViewTree view;
      thread_local ViewEvalScratch scratch;
      ViewTree::build_into(g, g.agent_node(static_cast<AgentId>(v)), D, view);
      x[v] = solve_agent_from_view(view, R, opt, &scratch);
    });
    return x;
  }

  // Stage 1 (refine): group agents into view-equivalence classes on the
  // agent graph, without materialising any view.  Full-depth colours are
  // only needed when they outlive this solve as cross-instance cache keys
  // (color_key below); the cache-less default stops the hash sweeps at
  // partition stabilization, which yields the identical grouping.
  Timer refine_timer;
  const ViewClasses classes =
      refine_view_classes(g, D, /*full_depth=*/opt.view_cache != nullptr);
  const auto num_classes = static_cast<std::size_t>(classes.num_classes());
  if (opt.stats != nullptr) {
    opt.stats->refine_us.fetch_add(
        static_cast<std::int64_t>(refine_timer.micros()),
        std::memory_order_relaxed);
    opt.stats->view_classes.fetch_add(
        static_cast<std::int64_t>(num_classes), std::memory_order_relaxed);
  }

  // Stage 2 (evaluate): build + evaluate one representative per class,
  // through the cross-solve cache when one is supplied.
  const ClassEvalResult ev = evaluate_view_classes(g, classes, R, opt, threads);
  if (opt.stats != nullptr) {
    opt.stats->evals_avoided.fetch_add(
        static_cast<std::int64_t>(x.size()) - ev.evals,
        std::memory_order_relaxed);
  }

  // Stage 3 (broadcast): fan each class value out to its members.
  Timer broadcast_timer;
  for (std::size_t v = 0; v < x.size(); ++v) {
    x[v] = ev.x_class[static_cast<std::size_t>(classes.class_of[v])];
  }
  if (opt.stats != nullptr) {
    opt.stats->broadcast_us.fetch_add(
        static_cast<std::int64_t>(broadcast_timer.micros()),
        std::memory_order_relaxed);
  }
  return x;
}

ClassEvalResult evaluate_view_classes(const CommGraph& g,
                                      const ViewClasses& classes,
                                      std::int32_t R, const TSearchOptions& opt,
                                      std::size_t threads,
                                      TValueStore* warm_store,
                                      EvalScratchPool* pool) {
  const std::int32_t D = view_radius(R);
  const auto num_classes = static_cast<std::size_t>(classes.num_classes());
  // The warm-start contract (position-independent t, bitwise-reproducible
  // bisections) holds for the memoized DP only; other engines ignore the
  // store rather than corrupt it.
  TValueStore* const wstore =
      (warm_store != nullptr && opt.engine == ViewEngine::kMemoizedDp &&
       warm_store->enabled())
          ? warm_store
          : nullptr;
  ClassEvalResult res;
  res.x_class.assign(num_classes, 0.0);
  if (num_classes == 0) return res;

  // Each class writes its own slot, so the schedule cannot affect the
  // output.  Cache order: colour-keyed first (no view needed at all -- the
  // warm fast path), then the canonical-hash entries after the build, then
  // a real evaluation.
  Timer eval_timer;
  ViewClassCache* const cache = opt.view_cache;
  const std::uint64_t fp =
      cache != nullptr ? ViewClassCache::options_fingerprint(opt) : 0;
  std::vector<double>& xc = res.x_class;
  std::atomic<std::int64_t> cache_hits{0};
  std::atomic<std::int64_t> evals{0};
  std::atomic<std::int64_t> warm_reused{0};
  std::atomic<std::int64_t> cone_recomputed{0};
  std::atomic<bool> past_deadline{false};
  parallel_for(num_classes, threads, [&](std::size_t ci) {
    // Cooperative budget probe, once per class: workers never throw across
    // the pool boundary -- they set the shared flag and drain, and the
    // single DeadlineExceeded is raised after the join below.
    if (opt.deadline != nullptr &&
        (past_deadline.load(std::memory_order_relaxed) ||
         opt.deadline->tick())) {
      past_deadline.store(true, std::memory_order_relaxed);
      return;
    }
    std::uint64_t ckey = 0;
    if (cache != nullptr) {
      ckey = ViewClassCache::color_key(classes.color_a[ci],
                                       classes.color_b[ci], classes.rounds,
                                       R, fp);
      if (cache->lookup_color(ckey, &xc[ci])) {
        cache_hits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // Buffer arenas: leased from the caller's pool when one is supplied
    // (reuse spans the caller's lifetime), thread_local otherwise.
    std::optional<EvalScratchPool::Lease> lease;
    if (pool != nullptr) lease.emplace(*pool);
    thread_local ViewTree tl_view;
    thread_local ViewEvalScratch tl_scratch;
    ViewTree& view = lease ? lease->view() : tl_view;
    ViewEvalScratch& scratch = lease ? lease->scratch() : tl_scratch;
    if (wstore != nullptr) {
      // Fat-view fast path: evaluate the representative straight off the
      // comm graph -- bitwise the view-backed output (the DP is
      // origin-keyed; see DpViewEvaluator's graph-backed constructor) with
      // no O(view) unfold, while the attached store serves every t outside
      // the invalidated cone.  No view means colour-keyed caching only;
      // the hash-keyed entry is skipped, which only ever costs a
      // re-evaluation on a colour-stream collision.
      DpWarmStart warm{wstore};
      xc[ci] = solve_agent_on_graph(g, classes.representative[ci], R, opt,
                                    &scratch, &warm);
      evals.fetch_add(1, std::memory_order_relaxed);
      warm_reused.fetch_add(warm.reused, std::memory_order_relaxed);
      cone_recomputed.fetch_add(warm.recomputed, std::memory_order_relaxed);
      if (cache != nullptr) cache->insert_color(ckey, xc[ci]);
      return;
    }
    ViewTree::build_into(
        g, g.agent_node(classes.representative[ci]), D, view);
    if (cache != nullptr && !opt.cache_color_keys_only &&
        cache->lookup(view, R, fp, &xc[ci])) {
      cache_hits.fetch_add(1, std::memory_order_relaxed);
      cache->insert_color(ckey, xc[ci]);
      return;
    }
    xc[ci] = solve_agent_from_view(view, R, opt, &scratch);
    evals.fetch_add(1, std::memory_order_relaxed);
    if (cache != nullptr) {
      if (!opt.cache_color_keys_only) cache->insert(view, R, fp, xc[ci]);
      cache->insert_color(ckey, xc[ci]);
    }
  });
  if (past_deadline.load()) {
    // Skipped classes hold meaningless zeros; the caller must abandon the
    // whole result (IncrementalSolver::apply rolls back transactionally).
    // Cache insertions from classes that DID complete stay valid: every
    // entry is a self-contained (key, value) fact independent of this call.
    throw DeadlineExceeded("deadline exceeded during view-class evaluation");
  }
  res.evals = evals.load();
  res.cache_hits = cache_hits.load();
  res.warm_t_reused = warm_reused.load();
  res.cone_t_recomputed = cone_recomputed.load();
  if (opt.stats != nullptr) {
    opt.stats->class_eval_us.fetch_add(
        static_cast<std::int64_t>(eval_timer.micros()),
        std::memory_order_relaxed);
    opt.stats->class_cache_hits.fetch_add(res.cache_hits,
                                          std::memory_order_relaxed);
  }
  return res;
}

}  // namespace locmm
