#include "core/shifting.hpp"

namespace locmm {

void validate_layers(const SpecialFormInstance& sf,
                     const LayerAssignment& layers) {
  const auto n = static_cast<std::size_t>(sf.num_agents());
  LOCMM_CHECK(layers.is_up.size() == n && layers.layer.size() == n);
  LOCMM_CHECK_MSG(layers.modulus > 0 && layers.modulus % 4 == 0,
                  "layer modulus must be a positive multiple of 4");
  const std::int32_t m = layers.modulus;

  for (AgentId v = 0; v < sf.num_agents(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    const std::int32_t l = layers.layer[sv];
    LOCMM_CHECK_MSG(l >= 0 && l < m, "agent " << v << " layer out of range");
    const std::int32_t cls = l % 4;
    if (layers.is_up[sv]) {
      LOCMM_CHECK_MSG(cls == 3, "up-agent " << v << " at layer " << l
                                            << " != 3 (mod 4)  [Lemma 8]");
    } else {
      LOCMM_CHECK_MSG(cls == 1, "down-agent " << v << " at layer " << l
                                              << " != 1 (mod 4)  [Lemma 8]");
    }
    // Constraints: partner role opposite; down sits two layers below up.
    for (const ConstraintArc& arc : sf.arcs(v)) {
      const auto sp = static_cast<std::size_t>(arc.partner);
      LOCMM_CHECK_MSG(layers.is_up[sv] != layers.is_up[sp],
                      "constraint " << arc.id
                                    << " joins two same-role agents  [§6 (i)]");
      if (layers.is_up[sv]) {
        LOCMM_CHECK_MSG(layers.layer[sp] == (l + m - 2) % m,
                        "constraint " << arc.id << " layer geometry broken");
      }
    }
  }
  // Objectives: exactly one up-agent; down-agents two layers below... above.
  const MaxMinInstance& inst = sf.instance();
  for (ObjectiveId k = 0; k < inst.num_objectives(); ++k) {
    std::int32_t ups = 0;
    std::int32_t up_layer = -1;
    for (const Entry& e : inst.objective_row(k)) {
      if (layers.is_up[static_cast<std::size_t>(e.agent)]) {
        ++ups;
        up_layer = layers.layer[static_cast<std::size_t>(e.agent)];
      }
    }
    LOCMM_CHECK_MSG(ups == 1, "objective " << k << " has " << ups
                                           << " up-agents != 1  [§6 (ii)]");
    for (const Entry& e : inst.objective_row(k)) {
      const auto sv = static_cast<std::size_t>(e.agent);
      if (layers.is_up[sv]) continue;
      LOCMM_CHECK_MSG(layers.layer[sv] == (up_layer + 2) % m,
                      "objective " << k << " layer geometry broken");
    }
  }
}

LayerAssignment wheel_layers(std::int32_t delta_k, std::int32_t L,
                             std::int32_t W) {
  LOCMM_CHECK(delta_k >= 2 && L >= 2 && W >= 1);
  const std::int32_t per_layer = W * delta_k;
  LayerAssignment out;
  out.modulus = 4 * L;
  out.is_up.resize(static_cast<std::size_t>(L * per_layer));
  out.layer.resize(static_cast<std::size_t>(L * per_layer));
  for (std::int32_t l = 0; l < L; ++l) {
    for (std::int32_t idx = 0; idx < per_layer; ++idx) {
      const auto a = static_cast<std::size_t>(l * per_layer + idx);
      const bool up = idx < W;
      out.is_up[a] = up;
      // Objective layer 4l; up-agent one above, down-agents one below.
      out.layer[a] = up ? (4 * l + out.modulus - 1) % out.modulus
                        : (4 * l + 1) % out.modulus;
    }
  }
  return out;
}

LayerAssignment flip_roles(const LayerAssignment& layers) {
  // Negating the layer function reverses the up/down orientation while
  // keeping objectives at 0 and constraints at 2 (mod 4).  The result is a
  // *valid* assignment only when every objective has exactly one down-agent
  // (delta_K = 2); validate_layers() enforces that at the point of use.
  LayerAssignment out;
  out.modulus = layers.modulus;
  out.is_up.resize(layers.is_up.size());
  out.layer.resize(layers.layer.size());
  for (std::size_t v = 0; v < layers.is_up.size(); ++v) {
    out.is_up[v] = !layers.is_up[v];
    out.layer[v] = (layers.modulus - layers.layer[v]) % layers.modulus;
  }
  return out;
}

std::vector<double> shifting_solution(const SpecialFormInstance& sf,
                                      const LayerAssignment& layers,
                                      const GTables& g, std::int32_t R,
                                      std::int32_t j) {
  LOCMM_CHECK(R >= 2);
  LOCMM_CHECK(j >= 0 && j < R);
  LOCMM_CHECK_MSG(layers.modulus % (4 * R) == 0,
                  "layer modulus " << layers.modulus
                                   << " is not a multiple of 4R; the (mod 4R)"
                                      " classes of (19) are ill-defined");
  const std::int32_t r = R - 2;
  const auto n = static_cast<std::size_t>(sf.num_agents());
  std::vector<double> y(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::int32_t l = layers.layer[v];
    std::int32_t d;
    if (layers.is_up[v]) {
      // l = 4(Rc + j) + 4d - 1  =>  d = ((l+1)/4 - j) mod R.
      d = (((l + 1) / 4 - j) % R + R) % R;
    } else {
      // l = 4(Rc + j) + 4d + 1  =>  d = ((l-1)/4 - j) mod R.
      d = (((l - 1) / 4 - j) % R + R) % R;
    }
    if (d == R - 1) {
      y[v] = 0.0;  // the passive layer of shift j
    } else if (layers.is_up[v]) {
      y[v] = g.minus[static_cast<std::size_t>(r - d)][v];
    } else {
      y[v] = g.plus[static_cast<std::size_t>(r - d)][v];
    }
  }
  return y;
}

std::vector<double> shifted_average(const SpecialFormInstance& sf,
                                    const LayerAssignment& layers,
                                    const GTables& g, std::int32_t R) {
  LOCMM_CHECK(R >= 2);
  const std::int32_t r = R - 2;
  const auto n = static_cast<std::size_t>(sf.num_agents());
  std::vector<double> y(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    double sum = 0.0;
    for (std::int32_t d = 0; d <= r; ++d) {
      sum += layers.is_up[v] ? g.minus[static_cast<std::size_t>(d)][v]
                             : g.plus[static_cast<std::size_t>(d)][v];
    }
    y[v] = sum / static_cast<double>(R);  // (20)
  }
  return y;
}

}  // namespace locmm
