#include "core/packing_covering.hpp"

#include <algorithm>
#include <limits>

#include "lp/maxmin_solver.hpp"

namespace locmm {

const char* to_string(PcStatus s) {
  switch (s) {
    case PcStatus::kFeasible: return "feasible";
    case PcStatus::kRelaxedFeasible: return "relaxed-feasible";
    case PcStatus::kInfeasible: return "infeasible";
  }
  return "?";
}

namespace {

constexpr double kTol = 1e-9;

struct Reduction {
  MaxMinInstance instance;            // empty if decided during preprocessing
  std::vector<std::int32_t> agent_of; // var -> agent id, or -1 (forced zero)
  bool decided = false;               // preprocessing already settled it
  PcStatus decided_status = PcStatus::kInfeasible;
};

Reduction reduce(const PackingCoveringProblem& problem) {
  Reduction red;
  const auto n = static_cast<std::size_t>(problem.num_vars);
  for (const SparseLpRow& row : problem.packing) {
    LOCMM_CHECK_MSG(row.rhs >= 0.0, "packing rhs must be nonnegative");
    for (const auto& [col, coeff] : row.entries) {
      LOCMM_CHECK(col >= 0 && col < problem.num_vars);
      LOCMM_CHECK_MSG(coeff >= 0.0, "packing coefficients must be >= 0");
    }
  }
  for (const SparseLpRow& row : problem.covering) {
    LOCMM_CHECK_MSG(row.rhs >= 0.0, "covering rhs must be nonnegative");
    for (const auto& [col, coeff] : row.entries) {
      LOCMM_CHECK(col >= 0 && col < problem.num_vars);
      LOCMM_CHECK_MSG(coeff >= 0.0, "covering coefficients must be >= 0");
    }
  }

  // b_i = 0 forces every variable with a positive coefficient to zero.
  std::vector<char> forced_zero(n, 0);
  for (const SparseLpRow& row : problem.packing) {
    if (row.rhs > 0.0) continue;
    for (const auto& [col, coeff] : row.entries) {
      if (coeff > 0.0) forced_zero[static_cast<std::size_t>(col)] = 1;
    }
  }
  // Variables in no covering row are non-contributing: zero them too.
  std::vector<char> covers(n, 0);
  for (const SparseLpRow& row : problem.covering) {
    for (const auto& [col, coeff] : row.entries) {
      if (coeff > 0.0) covers[static_cast<std::size_t>(col)] = 1;
    }
  }

  // A covering row with rhs > 0 whose surviving support is empty is
  // unsatisfiable outright.
  for (const SparseLpRow& row : problem.covering) {
    if (row.rhs <= 0.0) continue;
    bool alive = false;
    for (const auto& [col, coeff] : row.entries) {
      if (coeff > 0.0 && !forced_zero[static_cast<std::size_t>(col)])
        alive = true;
    }
    if (!alive) {
      red.decided = true;
      red.decided_status = PcStatus::kInfeasible;
      red.agent_of.assign(n, -1);
      return red;
    }
  }

  // Synthetic capacity for variables without any live packing row: the
  // largest value that could ever help is saturating each covering row it
  // serves; cap at the max of rhs_k / c_kv over those rows.
  std::vector<double> cap(n, 0.0);
  for (const SparseLpRow& row : problem.covering) {
    for (const auto& [col, coeff] : row.entries) {
      if (coeff > 0.0 && row.rhs > 0.0) {
        cap[static_cast<std::size_t>(col)] =
            std::max(cap[static_cast<std::size_t>(col)], row.rhs / coeff);
      }
    }
  }
  std::vector<char> has_packing(n, 0);
  for (const SparseLpRow& row : problem.packing) {
    if (row.rhs <= 0.0) continue;
    for (const auto& [col, coeff] : row.entries) {
      if (coeff > 0.0) has_packing[static_cast<std::size_t>(col)] = 1;
    }
  }

  red.agent_of.assign(n, -1);
  InstanceBuilder b;
  for (std::size_t v = 0; v < n; ++v) {
    if (forced_zero[v] || !covers[v]) continue;
    red.agent_of[v] = b.add_agent();
  }

  for (const SparseLpRow& row : problem.packing) {
    if (row.rhs <= 0.0) continue;
    std::vector<Entry> out;
    for (const auto& [col, coeff] : row.entries) {
      const std::int32_t agent = red.agent_of[static_cast<std::size_t>(col)];
      if (agent >= 0 && coeff > 0.0) out.push_back({agent, coeff / row.rhs});
    }
    if (!out.empty()) b.add_constraint(std::move(out));
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (red.agent_of[v] < 0 || has_packing[v]) continue;
    // "Unconstrained agents can be set to +inf" (§4 preamble): a synthetic
    // capacity just high enough to saturate its covering rows.
    LOCMM_CHECK(cap[v] > 0.0);
    b.add_constraint({{red.agent_of[v], 1.0 / cap[v]}});
  }
  for (const SparseLpRow& row : problem.covering) {
    if (row.rhs <= 0.0) continue;  // trivially satisfied
    std::vector<Entry> out;
    for (const auto& [col, coeff] : row.entries) {
      const std::int32_t agent = red.agent_of[static_cast<std::size_t>(col)];
      if (agent >= 0 && coeff > 0.0) out.push_back({agent, coeff / row.rhs});
    }
    LOCMM_CHECK(!out.empty());  // dead rows were rejected above
    b.add_objective(std::move(out));
  }

  if (b.num_objectives() == 0) {
    // No covering row with rhs > 0: x = 0 solves everything.
    red.decided = true;
    red.decided_status = PcStatus::kFeasible;
    return red;
  }
  red.instance = b.build();
  return red;
}

PackingCoveringResult assemble(const PackingCoveringProblem& problem,
                               const Reduction& red,
                               std::span<const double> x_agents,
                               double alpha) {
  PackingCoveringResult res;
  res.alpha = alpha;
  res.x.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
  for (std::size_t v = 0; v < res.x.size(); ++v) {
    if (red.agent_of[v] >= 0)
      res.x[v] = x_agents[static_cast<std::size_t>(red.agent_of[v])];
  }
  res.cover_factor = covering_factor(problem, res.x);
  if (res.cover_factor >= 1.0 - kTol) {
    res.status = PcStatus::kFeasible;
  } else if (res.cover_factor >= 1.0 / alpha - kTol) {
    res.status = PcStatus::kRelaxedFeasible;
  } else {
    res.status = PcStatus::kInfeasible;
  }
  return res;
}

}  // namespace

PackingCoveringResult solve_packing_covering_local(
    const PackingCoveringProblem& problem, const LocalParams& params) {
  const Reduction red = reduce(problem);
  if (red.decided) {
    PackingCoveringResult res;
    res.status = red.decided_status;
    res.x.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
    res.cover_factor = covering_factor(problem, res.x);
    return res;
  }
  const LocalSolution sol = solve_local(red.instance, params);
  return assemble(problem, red, sol.x, sol.guarantee);
}

PackingCoveringResult solve_packing_covering_exact(
    const PackingCoveringProblem& problem) {
  const Reduction red = reduce(problem);
  if (red.decided) {
    PackingCoveringResult res;
    res.status = red.decided_status;
    res.x.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
    res.cover_factor = covering_factor(problem, res.x);
    return res;
  }
  const MaxMinLpResult lp = solve_lp_optimum(red.instance);
  LOCMM_CHECK(lp.status == LpStatus::kOptimal);
  return assemble(problem, red, lp.x, /*alpha=*/1.0);
}

PackingCoveringProblem linear_system_problem(
    std::int32_t num_vars, const std::vector<SparseLpRow>& equations) {
  PackingCoveringProblem p;
  p.num_vars = num_vars;
  p.packing = equations;
  p.covering = equations;
  return p;
}

double packing_violation(const PackingCoveringProblem& problem,
                         std::span<const double> x) {
  LOCMM_CHECK(static_cast<std::int32_t>(x.size()) == problem.num_vars);
  double worst = 0.0;
  for (const SparseLpRow& row : problem.packing) {
    double lhs = 0.0;
    for (const auto& [col, coeff] : row.entries)
      lhs += coeff * x[static_cast<std::size_t>(col)];
    worst = std::max(worst, lhs - row.rhs);
  }
  return worst;
}

double covering_factor(const PackingCoveringProblem& problem,
                       std::span<const double> x) {
  LOCMM_CHECK(static_cast<std::int32_t>(x.size()) == problem.num_vars);
  double factor = std::numeric_limits<double>::infinity();
  for (const SparseLpRow& row : problem.covering) {
    if (row.rhs <= 0.0) continue;
    double lhs = 0.0;
    for (const auto& [col, coeff] : row.entries)
      lhs += coeff * x[static_cast<std::size_t>(col)];
    factor = std::min(factor, lhs / row.rhs);
  }
  return factor;
}

}  // namespace locmm
