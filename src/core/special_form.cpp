#include "core/special_form.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_set>

#include "lp/delta.hpp"
#include "transform/transform.hpp"

namespace locmm {

SpecialFormInstance::SpecialFormInstance(const MaxMinInstance& instance)
    : inst_(instance) {
  rebuild_derived();
}

void SpecialFormInstance::rebuild_derived() {
  const MaxMinInstance& inst = inst_;
  check_special_form(inst);
  const auto n = static_cast<std::size_t>(inst.num_agents());

  objective_.resize(n);
  inv_cap_.resize(n);
  t_upper_.resize(n);
  siblings_.clear();
  arcs_.clear();

  std::vector<AgentId> sib;
  std::vector<ConstraintArc> row_arcs;
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    const ObjectiveId k = inst.agent_objectives(v)[0].row;
    objective_[sv] = k;

    // Siblings in the objective row's port order.
    sib.clear();
    for (const Entry& e : inst.objective_row(k)) {
      if (e.agent != v) sib.push_back(e.agent);
    }
    siblings_.append_row(sib);

    // Constraint arcs in the agent's port order.
    row_arcs.clear();
    double cap = std::numeric_limits<double>::infinity();
    for (const Incidence& inc : inst.agent_constraints(v)) {
      const auto row = inst.constraint_row(inc.row);
      LOCMM_CHECK(row.size() == 2);
      const Entry& other = (row[0].agent == v) ? row[1] : row[0];
      LOCMM_CHECK(other.agent != v);
      row_arcs.push_back({inc.row, inc.coeff, other.agent, other.coeff});
      cap = std::min(cap, 1.0 / inc.coeff);
    }
    arcs_.append_row(row_arcs);
    inv_cap_[sv] = cap;
  }

  // t-search upper bound: own capacity plus siblings' capacities, in port
  // order (matches the view-tree evaluation order of engine L).
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    recompute_t_upper(v);
  }
}

void SpecialFormInstance::recompute_agent(AgentId v) {
  const auto sv = static_cast<std::size_t>(v);
  const ObjectiveId k = inst_.agent_objectives(v)[0].row;
  objective_[sv] = k;

  std::vector<AgentId> sib;
  for (const Entry& e : inst_.objective_row(k)) {
    if (e.agent != v) sib.push_back(e.agent);
  }
  siblings_.assign_row(sv, sib);

  std::vector<ConstraintArc> row_arcs;
  double cap = std::numeric_limits<double>::infinity();
  for (const Incidence& inc : inst_.agent_constraints(v)) {
    const auto row = inst_.constraint_row(inc.row);
    LOCMM_CHECK(row.size() == 2);
    const Entry& other = (row[0].agent == v) ? row[1] : row[0];
    LOCMM_CHECK(other.agent != v);
    row_arcs.push_back({inc.row, inc.coeff, other.agent, other.coeff});
    cap = std::min(cap, 1.0 / inc.coeff);
  }
  arcs_.assign_row(sv, row_arcs);
  inv_cap_[sv] = cap;
}

void SpecialFormInstance::recompute_t_upper(AgentId v) {
  const auto sv = static_cast<std::size_t>(v);
  double hi = inv_cap_[sv];
  for (AgentId w : siblings(v)) hi += inv_cap_[static_cast<std::size_t>(w)];
  t_upper_[sv] = hi;
}

std::vector<AgentId> SpecialFormInstance::dirty_closure(
    const InstanceDelta& delta) const {
  std::unordered_set<std::uint64_t> rows_seen;
  std::vector<AgentId> s0;
  delta.for_each_touched_edge([&](RowKind k, std::int32_t row, AgentId agent) {
    s0.push_back(agent);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(k == RowKind::kObjective) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(row));
    if (!rows_seen.insert(key).second) return;
    const auto entries = k == RowKind::kConstraint ? inst_.constraint_row(row)
                                                   : inst_.objective_row(row);
    for (const Entry& e : entries) s0.push_back(e.agent);
  });
  std::sort(s0.begin(), s0.end());
  s0.erase(std::unique(s0.begin(), s0.end()), s0.end());

  std::vector<AgentId> dirty = s0;
  for (const AgentId v : s0) {
    const ObjectiveId k = objective_[static_cast<std::size_t>(v)];
    for (const Entry& e : inst_.objective_row(k)) dirty.push_back(e.agent);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

std::vector<std::string> SpecialFormInstance::check_applicable(
    const InstanceDelta& delta) const {
  std::vector<std::string> out = delta.check_applicable(inst_);

  // The special form pins every objective coefficient to 1 (paper §4: the
  // pipeline normalizes c_kv away; §5 never reads it).
  auto pinned = [&out](const char* verb, std::int32_t row, AgentId agent,
                       double c) {
    if (c == 1.0) return;
    std::ostringstream os;
    os << "objective coefficients are fixed to 1 in special form (" << verb
       << " of row " << row << ", agent " << agent << " to " << c << ")";
    out.push_back(os.str());
  };
  for (const MembershipEdit& e : delta.adds) {
    if (e.kind == RowKind::kObjective) pinned("add", e.row, e.agent, e.coeff);
  }
  for (const CoeffEdit& e : delta.coeff_edits) {
    if (e.kind == RowKind::kObjective) pinned("edit", e.row, e.agent, e.coeff);
  }

  // The structural postconditions need clean growth accounting, which the
  // instance-level dry run only guarantees for an admissible batch.
  if (!out.empty()) return out;

  std::map<std::int32_t, std::int64_t> con_growth, obj_growth;
  std::map<AgentId, std::int64_t> kv_growth;
  auto account = [&](const MembershipEdit& e, std::int64_t d) {
    if (e.kind == RowKind::kConstraint) {
      con_growth[e.row] += d;
    } else {
      obj_growth[e.row] += d;
      kv_growth[e.agent] += d;
    }
  };
  for (const MembershipEdit& e : delta.removes) account(e, -1);
  for (const MembershipEdit& e : delta.adds) account(e, +1);

  for (const auto& [row, g] : con_growth) {
    const auto size =
        static_cast<std::int64_t>(inst_.constraint_row(row).size()) + g;
    if (size != 2) {
      std::ostringstream os;
      os << "delta leaves constraint row " << row << " with " << size
         << " agents; special form requires exactly 2";
      out.push_back(os.str());
    }
  }
  for (const auto& [row, g] : obj_growth) {
    const auto size =
        static_cast<std::int64_t>(inst_.objective_row(row).size()) + g;
    if (size < 2) {
      std::ostringstream os;
      os << "delta leaves objective row " << row << " with " << size
         << " agents; special form requires >= 2";
      out.push_back(os.str());
    }
  }
  for (const auto& [agent, g] : kv_growth) {
    const auto size =
        static_cast<std::int64_t>(inst_.agent_objectives(agent).size()) + g;
    if (size != 1) {
      std::ostringstream os;
      os << "delta leaves agent " << agent << " in " << size
         << " objective rows; special form requires exactly 1";
      out.push_back(os.str());
    }
  }
  return out;
}

SpecialFormPatch SpecialFormInstance::snapshot_for(
    const InstanceDelta& delta) const {
  std::vector<ConstraintId> cons;
  std::vector<ObjectiveId> objs;
  std::vector<AgentId> agents;
  delta.for_each_touched_edge([&](RowKind k, std::int32_t row, AgentId agent) {
    (k == RowKind::kConstraint ? cons : objs).push_back(row);
    agents.push_back(agent);
  });
  auto dedup = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(cons);
  dedup(objs);
  dedup(agents);
  SpecialFormPatch p;
  p.inst = inst_.snapshot(cons, objs, agents);
  p.dirty = dirty_closure(delta);
  return p;
}

void SpecialFormInstance::restore(const SpecialFormPatch& patch) {
  inst_.restore(patch.inst);
  for (const AgentId v : patch.dirty) recompute_agent(v);
  for (const AgentId v : patch.dirty) recompute_t_upper(v);
}

void SpecialFormInstance::apply(const InstanceDelta& delta) {
  // Admit-then-mutate (same shape as MaxMinInstance::apply): once the batch
  // passes the special-form dry run, nothing below can fail, so a rejected
  // delta throws with instance and derived arrays bitwise unchanged.
  const std::vector<std::string> violations = check_applicable(delta);
  LOCMM_CHECK_MSG(violations.empty(),
                  "delta rejected: " << violations.front()
                                     << (violations.size() > 1
                                             ? " (+" +
                                                   std::to_string(
                                                       violations.size() - 1) +
                                                   " more)"
                                             : ""));

  if (delta.structural()) {
    // O(ball) splice: the dirty closure is computed against the pre-edit
    // instance (the post-edit members it misses are all named in the batch,
    // hence already in it), then every dirty agent's derived rows are
    // recomputed from the edited instance with the exact per-agent procedure
    // of rebuild_derived -- bitwise identical to a full rebuild.  Admission
    // above already validated the special-form contract on everything the
    // batch touches, which is the induction step replacing the constructor's
    // whole-instance check_special_form.
    const std::vector<AgentId> dirty = dirty_closure(delta);
    inst_.apply(delta);
    for (const AgentId v : dirty) recompute_agent(v);
    for (const AgentId v : dirty) recompute_t_upper(v);
    return;
  }
  inst_.apply(delta);

  // Coefficient-only: patch the touched arcs, then the capacity-derived
  // values of the affected agents and their objective rows.
  std::vector<AgentId> touched;  // agents whose inv_cap may have changed
  for (const CoeffEdit& e : delta.coeff_edits) {
    if (e.kind != RowKind::kConstraint) continue;  // objective edits: c == 1
    AgentId partner = -1;
    for (ConstraintArc& arc : arcs_.mutable_row(static_cast<std::size_t>(e.agent))) {
      if (arc.id == e.row) {
        arc.a_self = e.coeff;
        partner = arc.partner;
        break;
      }
    }
    LOCMM_CHECK_MSG(partner >= 0, "coefficient edit addresses constraint "
                                      << e.row << " not incident to agent "
                                      << e.agent);
    for (ConstraintArc& arc : arcs_.mutable_row(static_cast<std::size_t>(partner))) {
      if (arc.id == e.row) {
        arc.a_partner = e.coeff;
        break;
      }
    }
    touched.push_back(e.agent);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  for (const AgentId v : touched) {
    double cap = std::numeric_limits<double>::infinity();
    for (const ConstraintArc& arc : arcs(v)) {
      cap = std::min(cap, 1.0 / arc.a_self);
    }
    inv_cap_[static_cast<std::size_t>(v)] = cap;
  }

  // t_search_upper sums inv_cap over the whole objective row, so every
  // member of a touched agent's row refreshes (in the row's port order,
  // keeping the bitwise agreement with a fresh construction).
  std::vector<ObjectiveId> rows;
  for (const AgentId v : touched) {
    rows.push_back(objective_[static_cast<std::size_t>(v)]);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  for (const ObjectiveId k : rows) {
    for (const Entry& e : inst_.objective_row(k)) {
      recompute_t_upper(e.agent);
    }
  }
}

}  // namespace locmm
