#include "core/special_form.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "lp/delta.hpp"
#include "transform/transform.hpp"

namespace locmm {

SpecialFormInstance::SpecialFormInstance(const MaxMinInstance& instance)
    : inst_(instance) {
  rebuild_derived();
}

void SpecialFormInstance::rebuild_derived() {
  const MaxMinInstance& inst = inst_;
  check_special_form(inst);
  const auto n = static_cast<std::size_t>(inst.num_agents());

  objective_.resize(n);
  inv_cap_.resize(n);
  t_upper_.resize(n);
  sibling_offsets_.assign(n + 1, 0);
  arc_offsets_.assign(n + 1, 0);

  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    const ObjectiveId k = inst.agent_objectives(v)[0].row;
    objective_[sv] = k;
    sibling_offsets_[sv + 1] =
        sibling_offsets_[sv] +
        static_cast<std::int64_t>(inst.objective_row(k).size()) - 1;
    arc_offsets_[sv + 1] =
        arc_offsets_[sv] +
        static_cast<std::int64_t>(inst.agent_constraints(v).size());
  }
  siblings_.resize(static_cast<std::size_t>(sibling_offsets_.back()));
  arcs_.resize(static_cast<std::size_t>(arc_offsets_.back()));

  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    // Siblings in the objective row's port order.
    auto spos = static_cast<std::size_t>(sibling_offsets_[sv]);
    for (const Entry& e : inst.objective_row(objective_[sv])) {
      if (e.agent != v) siblings_[spos++] = e.agent;
    }
    LOCMM_CHECK(spos == static_cast<std::size_t>(sibling_offsets_[sv + 1]));

    // Constraint arcs in the agent's port order.
    auto apos = static_cast<std::size_t>(arc_offsets_[sv]);
    double cap = std::numeric_limits<double>::infinity();
    for (const Incidence& inc : inst.agent_constraints(v)) {
      const auto row = inst.constraint_row(inc.row);
      LOCMM_CHECK(row.size() == 2);
      const Entry& other = (row[0].agent == v) ? row[1] : row[0];
      LOCMM_CHECK(other.agent != v);
      arcs_[apos++] = {inc.row, inc.coeff, other.agent, other.coeff};
      cap = std::min(cap, 1.0 / inc.coeff);
    }
    inv_cap_[sv] = cap;
  }

  // t-search upper bound: own capacity plus siblings' capacities, in port
  // order (matches the view-tree evaluation order of engine L).
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    double hi = inv_cap_[sv];
    for (AgentId w : siblings(v)) hi += inv_cap_[static_cast<std::size_t>(w)];
    t_upper_[sv] = hi;
  }
}

std::vector<std::string> SpecialFormInstance::check_applicable(
    const InstanceDelta& delta) const {
  std::vector<std::string> out = delta.check_applicable(inst_);

  // The special form pins every objective coefficient to 1 (paper §4: the
  // pipeline normalizes c_kv away; §5 never reads it).
  auto pinned = [&out](const char* verb, std::int32_t row, AgentId agent,
                       double c) {
    if (c == 1.0) return;
    std::ostringstream os;
    os << "objective coefficients are fixed to 1 in special form (" << verb
       << " of row " << row << ", agent " << agent << " to " << c << ")";
    out.push_back(os.str());
  };
  for (const MembershipEdit& e : delta.adds) {
    if (e.kind == RowKind::kObjective) pinned("add", e.row, e.agent, e.coeff);
  }
  for (const CoeffEdit& e : delta.coeff_edits) {
    if (e.kind == RowKind::kObjective) pinned("edit", e.row, e.agent, e.coeff);
  }

  // The structural postconditions need clean growth accounting, which the
  // instance-level dry run only guarantees for an admissible batch.
  if (!out.empty()) return out;

  std::map<std::int32_t, std::int64_t> con_growth, obj_growth;
  std::map<AgentId, std::int64_t> kv_growth;
  auto account = [&](const MembershipEdit& e, std::int64_t d) {
    if (e.kind == RowKind::kConstraint) {
      con_growth[e.row] += d;
    } else {
      obj_growth[e.row] += d;
      kv_growth[e.agent] += d;
    }
  };
  for (const MembershipEdit& e : delta.removes) account(e, -1);
  for (const MembershipEdit& e : delta.adds) account(e, +1);

  for (const auto& [row, g] : con_growth) {
    const auto size =
        static_cast<std::int64_t>(inst_.constraint_row(row).size()) + g;
    if (size != 2) {
      std::ostringstream os;
      os << "delta leaves constraint row " << row << " with " << size
         << " agents; special form requires exactly 2";
      out.push_back(os.str());
    }
  }
  for (const auto& [row, g] : obj_growth) {
    const auto size =
        static_cast<std::int64_t>(inst_.objective_row(row).size()) + g;
    if (size < 2) {
      std::ostringstream os;
      os << "delta leaves objective row " << row << " with " << size
         << " agents; special form requires >= 2";
      out.push_back(os.str());
    }
  }
  for (const auto& [agent, g] : kv_growth) {
    const auto size =
        static_cast<std::int64_t>(inst_.agent_objectives(agent).size()) + g;
    if (size != 1) {
      std::ostringstream os;
      os << "delta leaves agent " << agent << " in " << size
         << " objective rows; special form requires exactly 1";
      out.push_back(os.str());
    }
  }
  return out;
}

void SpecialFormInstance::apply(const InstanceDelta& delta) {
  // Admit-then-mutate (same shape as MaxMinInstance::apply): once the batch
  // passes the special-form dry run, nothing below can fail, so a rejected
  // delta throws with instance and derived arrays bitwise unchanged.
  const std::vector<std::string> violations = check_applicable(delta);
  LOCMM_CHECK_MSG(violations.empty(),
                  "delta rejected: " << violations.front()
                                     << (violations.size() > 1
                                             ? " (+" +
                                                   std::to_string(
                                                       violations.size() - 1) +
                                                   " more)"
                                             : ""));

  inst_.apply(delta);
  if (delta.structural()) {
    // Membership edits move degrees/ports; rebuild the derived arrays from
    // the edited instance (O(n) small-constant passes, including the full
    // special-form re-check).
    rebuild_derived();
    return;
  }

  // Coefficient-only: patch the touched arcs, then the capacity-derived
  // values of the affected agents and their objective rows.
  std::vector<AgentId> touched;  // agents whose inv_cap may have changed
  for (const CoeffEdit& e : delta.coeff_edits) {
    if (e.kind != RowKind::kConstraint) continue;  // objective edits: c == 1
    const auto sv = static_cast<std::size_t>(e.agent);
    AgentId partner = -1;
    for (std::int64_t j = arc_offsets_[sv]; j < arc_offsets_[sv + 1]; ++j) {
      if (arcs_[static_cast<std::size_t>(j)].id == e.row) {
        arcs_[static_cast<std::size_t>(j)].a_self = e.coeff;
        partner = arcs_[static_cast<std::size_t>(j)].partner;
        break;
      }
    }
    LOCMM_CHECK_MSG(partner >= 0, "coefficient edit addresses constraint "
                                      << e.row << " not incident to agent "
                                      << e.agent);
    const auto sp = static_cast<std::size_t>(partner);
    for (std::int64_t j = arc_offsets_[sp]; j < arc_offsets_[sp + 1]; ++j) {
      if (arcs_[static_cast<std::size_t>(j)].id == e.row) {
        arcs_[static_cast<std::size_t>(j)].a_partner = e.coeff;
        break;
      }
    }
    touched.push_back(e.agent);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  for (const AgentId v : touched) {
    const auto sv = static_cast<std::size_t>(v);
    double cap = std::numeric_limits<double>::infinity();
    for (std::int64_t j = arc_offsets_[sv]; j < arc_offsets_[sv + 1]; ++j) {
      cap = std::min(cap, 1.0 / arcs_[static_cast<std::size_t>(j)].a_self);
    }
    inv_cap_[sv] = cap;
  }

  // t_search_upper sums inv_cap over the whole objective row, so every
  // member of a touched agent's row refreshes (in the row's port order,
  // keeping the bitwise agreement with a fresh construction).
  std::vector<ObjectiveId> rows;
  for (const AgentId v : touched) {
    rows.push_back(objective_[static_cast<std::size_t>(v)]);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  for (const ObjectiveId k : rows) {
    for (const Entry& e : inst_.objective_row(k)) {
      const auto su = static_cast<std::size_t>(e.agent);
      double hi = inv_cap_[su];
      for (AgentId w : siblings(e.agent)) {
        hi += inv_cap_[static_cast<std::size_t>(w)];
      }
      t_upper_[su] = hi;
    }
  }
}

}  // namespace locmm
