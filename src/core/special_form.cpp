#include "core/special_form.hpp"

#include <algorithm>
#include <limits>

#include "transform/transform.hpp"

namespace locmm {

SpecialFormInstance::SpecialFormInstance(const MaxMinInstance& instance)
    : inst_(instance) {
  const MaxMinInstance& inst = inst_;
  check_special_form(inst);
  const auto n = static_cast<std::size_t>(inst.num_agents());

  objective_.resize(n);
  inv_cap_.resize(n);
  t_upper_.resize(n);
  sibling_offsets_.assign(n + 1, 0);
  arc_offsets_.assign(n + 1, 0);

  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    const ObjectiveId k = inst.agent_objectives(v)[0].row;
    objective_[sv] = k;
    sibling_offsets_[sv + 1] =
        sibling_offsets_[sv] +
        static_cast<std::int64_t>(inst.objective_row(k).size()) - 1;
    arc_offsets_[sv + 1] =
        arc_offsets_[sv] +
        static_cast<std::int64_t>(inst.agent_constraints(v).size());
  }
  siblings_.resize(static_cast<std::size_t>(sibling_offsets_.back()));
  arcs_.resize(static_cast<std::size_t>(arc_offsets_.back()));

  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    // Siblings in the objective row's port order.
    auto spos = static_cast<std::size_t>(sibling_offsets_[sv]);
    for (const Entry& e : inst.objective_row(objective_[sv])) {
      if (e.agent != v) siblings_[spos++] = e.agent;
    }
    LOCMM_CHECK(spos == static_cast<std::size_t>(sibling_offsets_[sv + 1]));

    // Constraint arcs in the agent's port order.
    auto apos = static_cast<std::size_t>(arc_offsets_[sv]);
    double cap = std::numeric_limits<double>::infinity();
    for (const Incidence& inc : inst.agent_constraints(v)) {
      const auto row = inst.constraint_row(inc.row);
      LOCMM_CHECK(row.size() == 2);
      const Entry& other = (row[0].agent == v) ? row[1] : row[0];
      LOCMM_CHECK(other.agent != v);
      arcs_[apos++] = {inc.row, inc.coeff, other.agent, other.coeff};
      cap = std::min(cap, 1.0 / inc.coeff);
    }
    inv_cap_[sv] = cap;
  }

  // t-search upper bound: own capacity plus siblings' capacities, in port
  // order (matches the view-tree evaluation order of engine L).
  for (AgentId v = 0; v < inst.num_agents(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    double hi = inv_cap_[sv];
    for (AgentId w : siblings(v)) hi += inv_cap_[static_cast<std::size_t>(w)];
    t_upper_[sv] = hi;
  }
}

}  // namespace locmm
