// smoothing.hpp -- the smoothed upper bounds s_v of paper §5.3.
//
// s_v = min { t_u : u an agent within distance 4r+2 of v in G }.
//
// The paper defines the distance in the unfolding G'; endpoints of
// non-backtracking walks of length <= L from v coincide with the G-ball of
// radius L (shortest paths never backtrack), so the unfolding ball and the
// G-ball contain the same set of *agent identities*, and since t is
// position-independent the two minima agree.  Agents sit at even distances
// in the bipartite communication graph, hence 4r+2 graph hops = 2r+1 hops in
// the agent adjacency (shared constraint or shared objective), which we
// realise as 2r+1 rounds of neighbourhood minima -- exactly the message
// pattern a distributed implementation would use.
#pragma once

#include <vector>

#include "core/special_form.hpp"

namespace locmm {

// Each of the 2r+1 rounds is data-parallel over agents (reads `s`, writes
// `next`); threads: 1 = serial, 0 = all hardware threads.
std::vector<double> smooth_min(const SpecialFormInstance& sf,
                               const std::vector<double>& t, std::int32_t r,
                               std::size_t threads = 1);

}  // namespace locmm
