// view_class_cache.hpp -- cross-solve cache of evaluated view-equivalence
// classes.
//
// Engine L's output for an agent is a pure function of (its local view, R,
// the evaluation options): identical views provably produce identical
// outputs in the port-numbering model (PAPER §3, Remarks 4-5), and both
// engine-L implementations are deterministic.  This cache memoizes that
// function across whole-instance solves, so a workload that keeps solving
// instances with recurring local structure (rolling windows over a sensor
// field, per-tick re-solves of a slowly-changing network) pays one
// evaluation per *distinct view class ever seen*, not per agent per solve.
//
// Keying is two-level, exactly as cheap as it can be while staying exact:
//   level 1  (canonical_hash, R, options fingerprint) -> bucket (sharded
//            hash map; the shard index is derived from the key, so
//            concurrent representative evaluations from the thread pool
//            touch disjoint mutexes with high probability);
//   level 2  within a bucket, entries are arbitrated with
//            ViewTree::structurally_equal against the stored representative
//            view -- a hash collision (or a deliberate merge from
//            coefficient quantization) costs one extra comparison, never a
//            wrong result.
//
// Entries whose view exceeds `verify_node_limit` do not keep the
// representative copy (a radius-29 view can run to tens of millions of
// nodes); they fall back to a (canonical_hash, secondary_hash, size)
// fingerprint match.  The two hashes are genuinely independent per-node
// Merkle streams, and the secondary stream folds *exact* coefficient bits
// (no quantization), so a wrong fingerprint-only merge needs a ~2^-128
// simultaneous collision -- in particular, views whose coefficients differ
// below the canonical stream's quantum still separate.
// `resident_node_budget` bounds the total nodes retained across shards
// (entries store a slimmed structural copy, ~52 bytes/node); once
// exhausted, further inserts of any size degrade to fingerprint-only
// entries -- the solve still succeeds and the cache keeps answering, it
// just stops holding representative copies.  Entry records themselves
// (~100 bytes each, plus one colour-keyed double per class) are NOT
// bounded by the budget; for long-lived caches, epoch-based eviction
// (Config::max_entry_age + begin_epoch()) bounds them instead: a long edit
// stream mints a handful of new colour keys per edit, and entries not hit
// for max_entry_age epochs are swept -- eviction only ever costs a
// re-evaluation, never correctness.  clear() remains the workload-boundary
// hammer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/dp_snapshot.hpp"
#include "core/upper_bound.hpp"
#include "graph/view_tree.hpp"

namespace locmm {

class ViewClassCache {
 public:
  struct Config {
    std::size_t shards = 16;
    // Entries above this many view nodes are stored fingerprint-only.
    std::int32_t verify_node_limit = 1 << 20;
    // Total view nodes retained across all shards for exact verification.
    std::int64_t resident_node_budget = 32ll << 20;
    // Total bytes of DP t-table snapshots (core/dp_snapshot.hpp) minted
    // through new_snapshot_store, across all stores alive at once.  A hard
    // cap enforced at mint time: a store that would overshoot is created
    // disabled (its owner's solves simply run cold) rather than partially
    // resident.  16 bytes/agent, so the default covers ~4M agents.
    std::int64_t snapshot_byte_budget = 64ll << 20;
    // Epoch-based eviction of entry records (colour-keyed AND hash-keyed):
    // 0 = keep everything (the default); N > 0 makes begin_epoch() sweep
    // entries whose last hit or insert is more than N epochs old.  The
    // sweep itself runs every N-th epoch (amortized O(entries/N) per
    // epoch), so an unhit entry survives between N and 2N epochs.
    // IncrementalSolver::apply advances the epoch of its cache once per
    // update, so N is "survive roughly N edits without a hit".
    std::uint32_t max_entry_age = 0;
  };

  ViewClassCache() : ViewClassCache(Config{}) {}
  explicit ViewClassCache(const Config& config);

  ViewClassCache(const ViewClassCache&) = delete;
  ViewClassCache& operator=(const ViewClassCache&) = delete;

  // The part of TSearchOptions that changes evaluation results (tol,
  // max_iters, exact_lp, engine); instrumentation and pipeline toggles are
  // excluded.
  static std::uint64_t options_fingerprint(const TSearchOptions& opt);

  // Looks `view` up under (canonical hash, R, fp); on a hit, stores the
  // cached output in *x and returns true.  Thread-safe.  CHECK-fails on a
  // truncated view (try_build_into hitting its node budget): everything past
  // the cut is invisible to the identity, so two same-budget truncations of
  // genuinely different views would alias.
  bool lookup(const ViewTree& view, std::int32_t R, std::uint64_t fp,
              double* x);

  // --- colour-keyed fast path ------------------------------------------
  // The WL colour pair of a class (color_refine.hpp) is an
  // instance-independent fingerprint of its complete depth-`rounds`
  // unfolding -- refine_view_classes runs the hash streams for all `depth`
  // requested rounds precisely so that this holds across instances, not
  // just within the solve that produced the colours -- and it is available
  // BEFORE any view is materialised, so a warm solve that hits here skips
  // the representative's view build entirely (the dominant warm cost at
  // large R).  Folding `rounds` (== the view depth) into the key keeps
  // colours refined to different depths apart; a wrong merge needs a
  // ~2^-128 two-stream collision, the same risk level as the
  // fingerprint-only entry fallback.  Colour hits count into hits();
  // colour misses are not counted (the hash-keyed lookup that follows is).
  static std::uint64_t color_key(std::uint64_t color_a, std::uint64_t color_b,
                                 std::int32_t rounds, std::int32_t R,
                                 std::uint64_t fp);
  bool lookup_color(std::uint64_t color_key, double* x);
  void insert_color(std::uint64_t color_key, double x);

  // Records the evaluated output for `view`'s class.  Inserting a class
  // that is already present (e.g. two threads racing on the same miss) is
  // harmless: equal views produce bit-identical outputs, so whichever entry
  // lands first answers all later lookups with the same value.  CHECK-fails
  // on a truncated view (see lookup).
  void insert(const ViewTree& view, std::int32_t R, std::uint64_t fp,
              double x);

  // Advances the eviction epoch and, on every Config::max_entry_age-th
  // epoch, sweeps the entry records (colour-keyed and hash-keyed) whose
  // last hit or insert is older than max_entry_age epochs, releasing the
  // resident-node budget of evicted representative copies.  Call once per
  // workload unit (IncrementalSolver::apply does, per update).
  // Thread-safe; concurrent lookups simply miss the swept entries and
  // re-evaluate.
  void begin_epoch();
  std::uint32_t epoch() const { return epoch_.load(); }

  // Mints a per-solver DP t-table snapshot (dense over [0, num_origins)
  // agent origins), byte-accounted against Config::snapshot_byte_budget the
  // way representative view copies are accounted against
  // resident_node_budget.  The returned store holds the budget ledger by
  // shared_ptr, so it stays safe even if it outlives this cache.  See
  // core/dp_snapshot.hpp for the serving/invalidation contract.
  std::shared_ptr<TValueStore> new_snapshot_store(std::int32_t num_origins);
  // Bytes currently reserved by live snapshot stores / stores refused for
  // lack of budget.
  std::int64_t snapshot_bytes() const { return snapshot_budget_->bytes.load(); }
  std::int64_t snapshot_drops() const { return snapshot_budget_->drops.load(); }

  std::int64_t entries() const;
  // Colour-keyed entry records (counted separately from hash-keyed ones).
  std::int64_t color_entries() const;
  std::int64_t hits() const { return hits_.load(); }
  std::int64_t misses() const { return misses_.load(); }
  // Entry records dropped by epoch eviction since construction / clear().
  std::int64_t evictions() const { return evictions_.load(); }
  // View nodes currently retained for exact verification.
  std::int64_t resident_nodes() const { return resident_nodes_.load(); }

  void clear();

 private:
  struct Entry {
    std::uint64_t canonical_hash = 0;
    std::uint64_t secondary_hash = 0;
    std::int32_t size = 0;
    std::int32_t R = 0;
    std::uint64_t fp = 0;
    bool verified = false;  // true when `view` holds the representative copy
    std::uint32_t last_used = 0;  // epoch of the last hit or the insert
    ViewTree view;
    double x = 0.0;
  };
  struct ColorEntry {
    double x = 0.0;
    std::uint32_t last_used = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    // Keyed by key_of(); the small per-key vector holds genuine key
    // collisions (distinct classes sharing a 64-bit key), arbitrated by
    // matches().  Lookup/insert stay O(1) expected however many classes a
    // long-lived cache accumulates.
    std::unordered_map<std::uint64_t, std::vector<Entry>> entries;
    // Colour-keyed outputs (see color_key): no arbitration beyond the
    // 128-bit colour folded into the key.
    std::unordered_map<std::uint64_t, ColorEntry> color_entries;
  };

  std::size_t shard_of(std::uint64_t key) const {
    return static_cast<std::size_t>(key) % shards_.size();
  }
  static std::uint64_t key_of(const ViewTree& view, std::int32_t R,
                              std::uint64_t fp);
  // Matches entry against (view, R, fp): level-1 key fields first, then the
  // level-2 arbiter (structural when the copy is resident, fingerprint
  // otherwise).
  static bool matches(const Entry& e, const ViewTree& view, std::int32_t R,
                      std::uint64_t fp);

  Config config_;
  std::vector<Shard> shards_;
  std::shared_ptr<SnapshotBudget> snapshot_budget_;
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> resident_nodes_{0};
};

}  // namespace locmm
