// solver_api.hpp -- the end-to-end public entry point of locmm.
//
// solve_local() realises Theorem 1's algorithm on an arbitrary max-min LP:
//   1. reduce to special form with the §4 pipeline (factor delta_I / 2),
//   2. run the §5 local algorithm with shifting parameter R,
//   3. map the solution back through the pipeline.
// The a-priori guarantee carried in the result is
//   ratio <= delta_I (1 - 1/delta_K) (1 + 1/(R-1))
// (paper §6.3); measured ratios against the LP optimum are typically far
// better (bench E1).
//
// LocalResolver is the dynamic entry point (paper §1.3): it holds a solved
// instance and re-solves *incrementally* under batched edits, routing each
// original-instance delta through the §4 pipeline to a special-form delta
// for the radius-D(R) dirty-ball machinery of src/dynamic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/upper_bound.hpp"
#include "dist/message_passing.hpp"
#include "lp/delta.hpp"
#include "lp/instance.hpp"
#include "transform/transform.hpp"

namespace locmm {

class IncrementalSolver;  // dynamic/incremental_solver.hpp
class ViewClassCache;     // core/view_class_cache.hpp

enum class LocalEngine {
  kCentralized,     // engine C: shared DP on G (fast path; default)
  kLocalViews,      // engine L: per-agent evaluation on explicit local views
  kMessagePassing,  // engine M: gather radius-D views over SyncNetwork, then
                    // simulate (dist/gather.hpp); exponential-size messages
  kStreaming,       // engine S: scalar t/s/g floods after a shallow gather
                    // (dist/streaming.hpp); +2 rounds, small messages
};

struct LocalParams {
  std::int32_t R = 4;  // shifting parameter; horizon and ratio both grow in R
  LocalEngine engine = LocalEngine::kCentralized;
  TSearchOptions t_search = {};
  std::size_t threads = 1;  // 0 = all hardware threads
  // LocalResolver only: route resolve() deltas through the pipeline's
  // persistent id map (PipelineIdMap::map_delta) whenever the edit meets
  // the fast-path conditions, turning an original-instance membership edit
  // into an O(ball) special-form delta with NO pipeline re-run.  Off, every
  // delta takes the legacy re-pipeline + diff / re-initialise path -- the
  // differential oracle the tests and benches compare the fast path
  // against.  Solutions are bitwise identical either way.
  bool map_structural_deltas = true;
  // Optional seeded fault-injection scenario (dist/fault.hpp; not owned,
  // must outlive the call).  Engines M / S only: the distributed run (or
  // LocalResolver's distributed cold solve) executes under the scenario
  // with checksum detection, bounded retransmission and per-agent
  // degradation (LocalSolution::degraded).  The simulated engines C / L
  // have no wire to fault: passing a plan with them CHECK-fails.
  const FaultPlan* faults = nullptr;
};

struct LocalSolution {
  // Solution of the *original* instance (feasible by construction).
  std::vector<double> x;
  double omega = 0.0;  // utility of x on the original instance

  // Diagnostics.
  std::vector<double> x_special;    // solution of the special-form instance
  double omega_special = 0.0;       // its utility there
  double t_min_special = 0.0;       // min_v t_v: upper bound on the special
                                    // optimum (Lemmas 2-3); 0 on the
                                    // incremental path (LocalResolver skips
                                    // the whole-instance engine-C pass it
                                    // would cost)
  double ratio_factor = 1.0;        // pipeline factor (delta_I / 2)
  double guarantee = 0.0;           // a-priori ratio bound (see above)
  InstanceStats special_stats;      // size of the transformed instance
  std::int32_t view_radius = 0;     // local horizon D(R) of engine L / M
  // Scheduler accounting of the distributed engines (M / S): rounds,
  // delivered messages, modeled bytes, largest message.  All zero for the
  // simulated engines C / L, which never touch the network substrate.
  RunStats net_stats;

  // Fault-tolerance diagnostics, populated only when LocalParams::faults
  // injected a scenario into a distributed run (empty otherwise).
  // degraded_special[i] == 1 marks a special-form agent inside an
  // unrecoverable fault cone: its x_special entry is the engine-L fallback
  // evaluation, not the in-network value.  degraded[v] == 1 marks the
  // ORIGINAL agents whose mapped-back value reads at least one such
  // special agent (through any §4 back-map, including the max() over
  // split copies), i.e. the coordinates of x that are estimates rather
  // than exact replays.  All-zero vectors mean the run fully recovered.
  std::vector<std::uint8_t> degraded;
  std::vector<std::uint8_t> degraded_special;
  // LocalResolver only: a faulty distributed cold solve that could not be
  // fully recovered dropped the recorded network and carried on over the
  // engine-L dirty-ball path (see IncrementalSolver::degraded_to_local).
  bool degraded_to_local = false;
};

LocalSolution solve_local(const MaxMinInstance& inst,
                          const LocalParams& params = {});

// Incremental counterpart of solve_local for long-lived, slowly-mutating
// instances (sensor fields with drifting link qualities, allocation
// networks under churn).  Construction performs one cold solve;
// resolve(delta) then applies an edit batch addressed against the ORIGINAL
// instance and re-solves at dirty-ball cost.  Three tiers, tried in order:
//
//   * id-map fast path (LocalParams::map_structural_deltas, the default):
//     the pipeline's persistent old-id -> new-id map
//     (transform.hpp: PipelineIdMap) translates the batch -- membership
//     add/remove AND coefficient edits alike -- straight into a special-form
//     delta whenever every touched id provably leaves the §4 numbering
//     fixed (non-gadget size-2 constraint rows at zero growth,
//     singly-imaged agents with |Kv| preserved, non-singleton objective
//     rows).  No pipeline re-run, no O(n) anything: the IncrementalSolver
//     (src/dynamic) absorbs the mapped delta by re-evaluating only the
//     radius-D(R) ball around the change, and the id map's gamma entries
//     absorb any objective-coefficient rescale;
//   * re-pipeline + diff: edits outside the fast path re-run the (cheap,
//     deterministic) §4 pipeline on the edited original and diff the
//     special-form outputs (lp/delta.hpp: diff_instances) into a
//     coefficient delta for the same dirty-ball machinery;
//   * re-initialise: when the pipeline's numbering genuinely shifted (the
//     diff fails), the resolver rebuilds its IncrementalSolver against the
//     new special form while KEEPING the cross-solve ViewClassCache, so
//     every view class ever evaluated is still served by a colour-keyed
//     lookup and only genuinely new classes pay for an evaluation.
//
// LocalParams::engine selects the incremental realisation: kLocalViews
// re-solves through the engine-L dirty-ball machinery; kMessagePassing /
// kStreaming hold a recorded SyncNetwork and replay it, re-executing only
// dirty-ball nodes -- solution().net_stats then carries the replay's
// fresh-vs-replayed message split (paper §1.3, distributed end to end).
// For those three, solution().x is bit-identical to
// solve_local(instance(), params) with the same engine on the edited
// instance (tests/incremental_test.cpp, tests/dynamic_dist_test.cpp).
// kCentralized has no incremental counterpart (its shared DP is global by
// construction) and is carried on the engine-L path too: its resolver
// matches scratch *engine-L* solves bitwise, which coincides with engine C
// only to ~1e-9 once edits break the instance's symmetry.  t_min_special
// is not maintained (see LocalSolution).
class LocalResolver {
 public:
  explicit LocalResolver(const MaxMinInstance& inst,
                         const LocalParams& params = {});
  ~LocalResolver();
  LocalResolver(LocalResolver&&) noexcept;
  LocalResolver& operator=(LocalResolver&&) noexcept;

  const MaxMinInstance& instance() const { return inst_; }
  const LocalSolution& solution() const { return sol_; }

  // Applies `delta` (original-instance coordinates) and incrementally
  // re-solves; returns the updated solution.  Strong exception guarantee:
  // a delta the admission dry run rejects (InstanceDelta::check_applicable)
  // throws CheckError before anything happens, and a failure deeper in the
  // solve rolls back -- instance, pipeline, solver and solution are left
  // bitwise as before the call either way (tests/solver_api_test.cpp diffs
  // the full state after every rejected-delta shape).
  const LocalSolution& resolve(const InstanceDelta& delta);

  // Whether the last resolve() fed the IncrementalSolver a special-form
  // delta -- the id-map fast path (structural or coefficient edits inside
  // its conditions) or the re-pipeline + diff path -- as opposed to
  // re-initialising against a renumbered pipeline (still cache-warm).
  // With map_structural_deltas, membership edits on id-stable regions
  // report true; only numbering-shifting edits (gadget-adjacent rows,
  // |Kv| changes, splits) fall back to false.
  bool last_resolve_was_delta() const { return last_was_delta_; }

 private:
  void solve_from_pipeline();  // (re)builds inc_ and sol_ from inst_

  LocalParams params_;
  MaxMinInstance inst_;
  Pipeline pipeline_;
  std::unique_ptr<ViewClassCache> cache_;  // survives re-initialisation
  std::unique_ptr<IncrementalSolver> inc_;
  LocalSolution sol_;
  bool last_was_delta_ = false;
};

// The a-priori approximation guarantee of Theorem 1's algorithm for an
// instance with the given degree bounds and shifting parameter.
double theorem1_guarantee(std::int32_t delta_i, std::int32_t delta_k,
                          std::int32_t R);

// The special-form guarantee 2 (1 - 1/delta_k) (1 + 1/(R-1)) of §6.
double special_form_guarantee(std::int32_t delta_k, std::int32_t R);

}  // namespace locmm
