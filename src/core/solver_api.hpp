// solver_api.hpp -- the end-to-end public entry point of locmm.
//
// solve_local() realises Theorem 1's algorithm on an arbitrary max-min LP:
//   1. reduce to special form with the §4 pipeline (factor delta_I / 2),
//   2. run the §5 local algorithm with shifting parameter R,
//   3. map the solution back through the pipeline.
// The a-priori guarantee carried in the result is
//   ratio <= delta_I (1 - 1/delta_K) (1 + 1/(R-1))
// (paper §6.3); measured ratios against the LP optimum are typically far
// better (bench E1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/upper_bound.hpp"
#include "lp/instance.hpp"

namespace locmm {

enum class LocalEngine {
  kCentralized,  // engine C: shared DP on G (fast path; default)
  kLocalViews,   // engine L: per-agent evaluation on explicit local views
};

struct LocalParams {
  std::int32_t R = 4;  // shifting parameter; horizon and ratio both grow in R
  LocalEngine engine = LocalEngine::kCentralized;
  TSearchOptions t_search = {};
  std::size_t threads = 1;  // 0 = all hardware threads
};

struct LocalSolution {
  // Solution of the *original* instance (feasible by construction).
  std::vector<double> x;
  double omega = 0.0;  // utility of x on the original instance

  // Diagnostics.
  std::vector<double> x_special;    // solution of the special-form instance
  double omega_special = 0.0;       // its utility there
  double t_min_special = 0.0;       // min_v t_v: upper bound on the special
                                    // optimum (Lemmas 2-3)
  double ratio_factor = 1.0;        // pipeline factor (delta_I / 2)
  double guarantee = 0.0;           // a-priori ratio bound (see above)
  InstanceStats special_stats;      // size of the transformed instance
  std::int32_t view_radius = 0;     // local horizon D(R) of engine L / M
};

LocalSolution solve_local(const MaxMinInstance& inst,
                          const LocalParams& params = {});

// The a-priori approximation guarantee of Theorem 1's algorithm for an
// instance with the given degree bounds and shifting parameter.
double theorem1_guarantee(std::int32_t delta_i, std::int32_t delta_k,
                          std::int32_t R);

// The special-form guarantee 2 (1 - 1/delta_k) (1 + 1/(R-1)) of §6.
double special_form_guarantee(std::int32_t delta_k, std::int32_t R);

}  // namespace locmm
