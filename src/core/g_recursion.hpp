// g_recursion.hpp -- the g-tables (12)-(14) and the output rule (18).
//
//   g+_{v,0} = min_{i in Iv} 1/a_iv                                     (12)
//   g-_{v,d} = max{0, s_v - sum_{w in N(v)} g+_{w,d}}                   (13)
//   g+_{v,d} = min_{i in Iv} (1 - a_{i,n(v,i)} g-_{n(v,i),d-1}) / a_iv  (14)
//
//   x_v = (1/2R) sum_{d=0..r} (g+_{v,d} + g-_{v,d})                     (18)
//
// The g values are the f values of §5.1 evaluated at the *smoothed* bounds
// s_v instead of a common omega (Example 2 of the paper); they are
// position-independent, so a single sweep over the finite graph per depth d
// computes them for all agents -- this is the whole of engine C's per-round
// work after t and s are known.  Evaluation order: g+_d then g-_d for
// d = 0..r, since (13) reads g+ at the same depth and (14) reads g- one
// depth lower.
#pragma once

#include <vector>

#include "core/special_form.hpp"
#include "core/upper_bound.hpp"

namespace locmm {

struct GTables {
  // plus[d][v] = g+_{v,d}; minus[d][v] = g-_{v,d}; d in [0, r].
  std::vector<std::vector<double>> plus;
  std::vector<std::vector<double>> minus;
};

// The per-depth sweeps are data-parallel over agents (each state reads only
// the previous row / the g+ row of the same depth); threads: 1 = serial,
// 0 = all hardware threads.  `stats` (optional) accumulates g_evals.
GTables compute_g(const SpecialFormInstance& sf, const std::vector<double>& s,
                  std::int32_t r, std::size_t threads = 1,
                  TSearchStats* stats = nullptr);

// The output (18); R = r + 2.
std::vector<double> output_x(const GTables& g, std::int32_t r);

}  // namespace locmm
