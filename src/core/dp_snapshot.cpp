#include "core/dp_snapshot.hpp"

namespace locmm {

namespace {

std::int64_t table_bytes(std::int32_t n) {
  return static_cast<std::int64_t>(n) *
         static_cast<std::int64_t>(sizeof(std::atomic<double>) +
                                   sizeof(std::atomic<std::uint8_t>));
}

}  // namespace

TValueStore::TValueStore(std::int32_t num_origins,
                         std::shared_ptr<SnapshotBudget> budget)
    : budget_(std::move(budget)) {
  if (num_origins <= 0) return;
  // Reserve first, roll back on overshoot (the resident_node_budget
  // protocol): concurrent mints can never settle above the limit.
  if (budget_ != nullptr) {
    const std::int64_t want = table_bytes(num_origins);
    if (budget_->bytes.fetch_add(want, std::memory_order_relaxed) + want >
        budget_->limit) {
      budget_->bytes.fetch_sub(want, std::memory_order_relaxed);
      budget_->drops.fetch_add(1, std::memory_order_relaxed);
      return;  // disabled: solves simply run cold
    }
  }
  n_ = num_origins;
  const auto n = static_cast<std::size_t>(n_);
  t_ = std::make_unique<std::atomic<double>[]>(n);
  state_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    state_[i].store(0, std::memory_order_relaxed);
  }
}

TValueStore::~TValueStore() {
  if (n_ > 0 && budget_ != nullptr)
    budget_->bytes.fetch_sub(table_bytes(n_), std::memory_order_relaxed);
}

std::int64_t TValueStore::bytes() const {
  return n_ > 0 ? table_bytes(n_) : 0;
}

void TValueStore::invalidate_all() {
  for (std::int32_t o = 0; o < n_; ++o) invalidate(o);
}

}  // namespace locmm
