#include "core/smoothing.hpp"

#include <algorithm>

#include "support/thread_pool.hpp"

namespace locmm {

std::vector<double> smooth_min(const SpecialFormInstance& sf,
                               const std::vector<double>& t, std::int32_t r,
                               std::size_t threads) {
  const auto n = static_cast<std::size_t>(sf.num_agents());
  LOCMM_CHECK(t.size() == n);
  std::vector<double> s = t;
  std::vector<double> next(n);
  for (std::int32_t round = 0; round < 2 * r + 1; ++round) {
    parallel_for(n, threads, [&](std::size_t v) {
      double m = s[v];
      for (const ConstraintArc& arc : sf.arcs(static_cast<AgentId>(v)))
        m = std::min(m, s[static_cast<std::size_t>(arc.partner)]);
      for (AgentId w : sf.siblings(static_cast<AgentId>(v)))
        m = std::min(m, s[static_cast<std::size_t>(w)]);
      next[v] = m;
    });
    s.swap(next);
  }
  return s;
}

}  // namespace locmm
