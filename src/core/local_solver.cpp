#include "core/local_solver.hpp"

#include "core/smoothing.hpp"

namespace locmm {

SpecialRunResult solve_special_centralized(const SpecialFormInstance& sf,
                                           std::int32_t R,
                                           const TSearchOptions& opt,
                                           std::size_t threads) {
  LOCMM_CHECK_MSG(R >= 2, "the shifting parameter requires R >= 2");
  SpecialRunResult run;
  run.R = R;
  run.r = R - 2;
  run.t = compute_t_all(sf, run.r, opt, threads);
  run.s = smooth_min(sf, run.t, run.r, threads);
  run.g = compute_g(sf, run.s, run.r, threads, opt.stats);
  run.x = output_x(run.g, run.r);
  return run;
}

}  // namespace locmm
