// alt_tree.hpp -- explicit alternating trees A_u (paper §5.1) and the exact
// LP route to t_u (paper §5.2: "we assume here that the node u uses an LP
// solver to find the optimum of the LP associated with A_u").
//
// build_alternating_tree materialises A_u as a standalone MaxMinInstance:
// one agent per *copy* (walks can revisit G-agents through different paths,
// each copy is a separate variable, exactly as in the unfolding), degree-2
// constraint rows inside the tree, degree-1 rows at the leaf constraints
// (levels -2 and 4r+2: the restriction drops the absent partner, which is
// the relaxation Lemma 2 speaks of), and complete unit-coefficient
// objective rows (Lemma 1's completeness clause).
//
// t_exact_lp solves that instance with the bundled simplex; the tests
// demand agreement with the production bisection (compute_t_single) and
// verify Lemma 3's extreme-point bounds on every optimal solution.
#pragma once

#include <cstdint>
#include <vector>

#include "core/special_form.hpp"
#include "core/upper_bound.hpp"

namespace locmm {

// Which (origin, depth, role) of the f recursion each agent-copy realises.
struct CopyInfo {
  AgentId origin = -1;
  std::int32_t d = 0;   // depth index of (5)-(7); root carries d = r
  bool plus = false;    // true: f+ position (level 1 mod 4); false: f-
};

struct AltTree {
  MaxMinInstance instance;      // the max-min LP associated with A_u
  AgentId root = 0;             // the copy of u
  std::vector<CopyInfo> copies; // per agent-copy of `instance`
};

// Materialises A_u.  `max_copies` guards the exponential growth.
AltTree build_alternating_tree(const SpecialFormInstance& sf, AgentId u,
                               std::int32_t r,
                               std::int64_t max_copies = 2'000'000);

// t_u as the exact optimum of the A_u LP (Lemma 3), via simplex.
double t_exact_lp(const SpecialFormInstance& sf, AgentId u, std::int32_t r);

}  // namespace locmm
