// safe_baseline.hpp -- the "safe" algorithm (paper §1.3, refs [8, 16]).
//
// The strongest previously-known local algorithm for *general* max-min LPs:
// each agent outputs
//     x_v = min_{i in Iv} 1 / (|Vi| a_iv)
// with zero communication rounds beyond learning |Vi| from each adjacent
// constraint (1 round).  Feasibility: sum_{v in Vi} a_iv x_v <=
// sum_{v in Vi} 1/|Vi| = 1.  Approximation factor delta_I: any feasible y
// has y_v <= min_i 1/a_iv <= delta_I x_v, so c_k y <= delta_I c_k x for
// every objective k, hence omega* <= delta_I omega(x).
//
// This is the baseline the paper's Theorem 1 improves on (from delta_I to
// delta_I (1 - 1/delta_K) + eps); bench E3 measures the gap.
#pragma once

#include <vector>

#include "lp/instance.hpp"

namespace locmm {

std::vector<double> solve_safe(const MaxMinInstance& inst);

}  // namespace locmm
