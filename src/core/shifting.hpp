// shifting.hpp -- the §6 analysis machinery, executable.
//
// The proof of Theorem 1 partitions agents into *up* and *down* roles and
// assigns integer *layers* (Figure 3 weights) so that objectives sit at
// 0 (mod 4), down-agents at 1, constraints at 2, up-agents at 3 (Lemma 8).
// For a shift j it defines the solution y(j) (eq. (19)) that silences every
// R-th layer of objectives and serves the rest at full s_v (Lemma 9), and
// averages over shifts to get y (eq. (20), Lemma 10); averaging over both
// role assignments then yields the algorithm's actual output x (Lemma 11's
// argument).
//
// Layers cannot be computed *locally* in a consistent way -- that is
// precisely why the algorithm hedges over both roles (§2) -- but they can be
// computed globally on instances whose structure admits them, and that makes
// the whole §6 ledger machine-checkable: this header provides the role/layer
// container, a validator for the §6 partition properties, the ground-truth
// assignment for the layered-wheel family, and eq. (19)/(20) themselves.
// The shifting_test suite runs Lemmas 9, 10 and 11 as assertions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/g_recursion.hpp"
#include "core/special_form.hpp"

namespace locmm {

struct LayerAssignment {
  // Per agent: role and layer; layers are meaningful modulo `modulus`
  // (cyclic instances close after modulus/4 objective layers; acyclic
  // instances may use any modulus that is a multiple of 4R).
  std::vector<bool> is_up;
  std::vector<std::int32_t> layer;  // in [0, modulus)
  std::int32_t modulus = 0;
};

// Checks the §6 partition properties against a special-form instance:
//   * down-agents at layer 1 (mod 4), up-agents at 3 (mod 4);
//   * every constraint joins one up-agent and one down-agent, at layers
//     (c+1, c-1) around a common constraint layer c = 2 (mod 4);
//   * every objective has exactly one up-agent, at layer k-1, and its
//     down-agents at k+1, for a common objective layer k = 0 (mod 4).
// Throws CheckError with a description on the first violation.
void validate_layers(const SpecialFormInstance& sf,
                     const LayerAssignment& layers);

// Ground-truth assignment for gen/hard.cpp's layered wheel (delta_k, L, W,
// twist as passed to layered_instance).  modulus = 4 L.
LayerAssignment wheel_layers(std::int32_t delta_k, std::int32_t L,
                             std::int32_t W);

// Flips every role and shifts layers by 2 so the flipped assignment is
// again valid (up <-> down around each constraint; objectives keep their
// layer class).  Used to realise "choose the layers so that v is an
// up-agent" (§6.2) on symmetric instances.
LayerAssignment flip_roles(const LayerAssignment& layers);

// Eq. (19): the shifted solution y(j) for shift parameter j in [0, R);
// requires 4R | modulus so the (mod 4R) layer classes are well defined.
std::vector<double> shifting_solution(const SpecialFormInstance& sf,
                                      const LayerAssignment& layers,
                                      const GTables& g, std::int32_t R,
                                      std::int32_t j);

// Eq. (20): the average over all R shifts -- equivalently the closed form
// y_v = (1/R) sum_d g-_{v,d} (up) or (1/R) sum_d g+_{v,d} (down).
std::vector<double> shifted_average(const SpecialFormInstance& sf,
                                    const LayerAssignment& layers,
                                    const GTables& g, std::int32_t R);

}  // namespace locmm
