#include "core/alt_tree.hpp"

#include <deque>

#include "lp/maxmin_solver.hpp"

namespace locmm {

AltTree build_alternating_tree(const SpecialFormInstance& sf, AgentId u,
                               std::int32_t r, std::int64_t max_copies) {
  LOCMM_CHECK(r >= 0);
  LOCMM_CHECK(u >= 0 && u < sf.num_agents());

  InstanceBuilder b;
  std::vector<CopyInfo> copies;
  auto fresh = [&](AgentId origin, std::int32_t d, bool plus) {
    const AgentId c = b.add_agent();
    copies.push_back({origin, d, plus});
    LOCMM_CHECK_MSG(static_cast<std::int64_t>(copies.size()) <= max_copies,
                    "alternating tree exceeds " << max_copies << " copies");
    return c;
  };

  // Root u: minus position at depth r (condition (9) lives here).
  const AgentId root = fresh(u, r, /*plus=*/false);
  // Level -2 leaf constraints: restriction drops the partner.
  for (const ConstraintArc& arc : sf.arcs(u)) {
    b.add_constraint({{root, arc.a_self}});
  }

  // BFS through the alternating structure.  Queue items are *agent copies*
  // that still need their "down-side" expanded.
  struct Item {
    AgentId copy;
    AgentId origin;
    std::int32_t d;
    bool plus;          // plus: expand constraints; minus: expand objective
    std::int32_t level; // agent level in A_u (root: -1)
  };
  std::deque<Item> queue{{root, u, r, false, -1}};

  while (!queue.empty()) {
    const Item it = queue.front();
    queue.pop_front();

    if (!it.plus) {
      // Minus agent: expand its objective (level +1), whose other members
      // are plus agents at the same depth index d.
      std::vector<Entry> row{{it.copy, 1.0}};
      for (AgentId w : sf.siblings(it.origin)) {
        const AgentId wc = fresh(w, it.d, /*plus=*/true);
        row.push_back({wc, 1.0});
        queue.push_back({wc, w, it.d, true, it.level + 2});
      }
      b.add_objective(std::move(row));
    } else {
      // Plus agent at level L: expand all constraints (level L+1).  At the
      // boundary level 4r+2 they are leaves (degree-1 rows); otherwise the
      // partner is a minus agent at depth d-1.
      const std::int32_t clevel = it.level + 1;
      for (const ConstraintArc& arc : sf.arcs(it.origin)) {
        if (clevel >= 4 * r + 2) {
          b.add_constraint({{it.copy, arc.a_self}});
        } else {
          const AgentId pc = fresh(arc.partner, it.d - 1, /*plus=*/false);
          b.add_constraint({{it.copy, arc.a_self}, {pc, arc.a_partner}});
          queue.push_back({pc, arc.partner, it.d - 1, false, clevel + 1});
        }
      }
    }
  }

  AltTree out;
  out.instance = b.build();
  out.root = root;
  out.copies = std::move(copies);
  return out;
}

double t_exact_lp(const SpecialFormInstance& sf, AgentId u, std::int32_t r) {
  const AltTree tree = build_alternating_tree(sf, u, r);
  const MaxMinLpResult res = solve_lp_optimum(tree.instance);
  LOCMM_CHECK_MSG(res.status == LpStatus::kOptimal,
                  "A_u LP not optimal: " << to_string(res.status));
  return res.omega;
}

}  // namespace locmm
