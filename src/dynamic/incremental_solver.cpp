#include "dynamic/incremental_solver.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "dist/fault.hpp"
#include "dist/gather.hpp"
#include "dist/streaming.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace locmm {

IncrementalSolver::IncrementalSolver(const MaxMinInstance& special)
    : IncrementalSolver(special, Options{}) {}

IncrementalSolver::IncrementalSolver(const MaxMinInstance& special,
                                     const Options& opt)
    : opt_(opt), sf_(special), g_(sf_.instance()) {
  LOCMM_CHECK_MSG(opt_.R >= 2, "R must be >= 2");
  LOCMM_CHECK_MSG(opt_.cold_faults == nullptr ||
                      opt_.engine != DynamicEngine::kMemoizedDp,
                  "cold_faults needs a distributed engine (M / S)");
  D_ = view_radius(opt_.R);
  if (opt_.cache != nullptr) {
    cache_ = opt_.cache;
  } else {
    owned_cache_ = std::make_unique<ViewClassCache>();
    cache_ = owned_cache_.get();
  }
  eval_opt_ = opt_.t_search;
  eval_opt_.canonicalize_views = true;
  eval_opt_.view_cache = cache_;
  // Full-depth colours are always in hand here, so the canonical-hash cache
  // layer (which hashes and copies every representative view) buys nothing:
  // colour-keyed entries carry the whole cross-update reuse.
  eval_opt_.cache_color_keys_only = true;

  node_stamp_.assign(static_cast<std::size_t>(g_.num_nodes()), 0);
  agent_stamp_.assign(static_cast<std::size_t>(g_.num_agents()), 0);

  const auto n = static_cast<std::size_t>(g_.num_agents());
  x_.assign(n, 0.0);
  color_a_.assign(n, 0);
  color_b_.assign(n, 0);

  // The distributed engines build their network even for an empty instance
  // (the cold run is a no-op): apply_distributed can then rely on net_
  // unconditionally, and an edit addressed against the empty instance dies
  // in sf_.apply's batch validation rather than on a null network.
  if (opt_.engine != DynamicEngine::kMemoizedDp) {
    // Distributed cold solve: one recorded SyncNetwork run of the selected
    // engine.  The history it leaves behind is the whole update state --
    // replays splice the clean cone from it -- so no colours and no class
    // cache are maintained on this path.
    net_ = std::make_unique<SyncNetwork>(g_, opt_.threads);
    if (opt_.cold_faults != nullptr && opt_.cold_faults->any_faults() &&
        g_.num_nodes() > 0) {
      // Faulty cold solve: run under the scenario, repair the history by
      // replaying the frozen region fault-free.  A full recovery leaves
      // net_'s history bitwise equal to a fault-free recording, so every
      // subsequent apply() replays off it unchanged.
      const std::int32_t rounds = opt_.engine == DynamicEngine::kMessagePassing
                                      ? D_
                                      : streaming_rounds(opt_.R);
      FaultTolerantResult ft = run_fault_tolerant(
          *net_, *opt_.cold_faults,
          [this](NodeId u) { return make_program(u); }, rounds, opt_.R,
          opt_.t_search);
      cold_net_ = ft.stats;
      if (!ft.fully_recovered) {
        // Graceful degradation: the repaired history is NOT trustworthy as
        // replay state (degraded agents carry fallback values), so drop the
        // network and restart cold on the engine-L dirty-ball path, which
        // every later apply() then uses.  Slower per update, but exact.
        net_.reset();
        opt_.engine = DynamicEngine::kMemoizedDp;
        degraded_to_local_ = true;
        cold_solve_memoized();
        return;
      }
      x_ = std::move(ft.x);
      return;
    }
    std::vector<std::unique_ptr<NodeProgram>> programs;
    programs.reserve(static_cast<std::size_t>(g_.num_nodes()));
    for (NodeId u = 0; u < g_.num_nodes(); ++u)
      programs.push_back(make_program(u));
    cold_net_ = net_->run(programs, 1 << 20, /*record=*/true);
    for (AgentId v = 0; v < g_.num_agents(); ++v) {
      const auto* prog = static_cast<const AgentNodeProgram*>(
          programs[static_cast<std::size_t>(g_.agent_node(v))].get());
      x_[static_cast<std::size_t>(v)] = prog->x();
    }
    return;
  }
  if (n == 0) return;
  cold_solve_memoized();
}

void IncrementalSolver::cold_solve_memoized() {
  const auto n = static_cast<std::size_t>(g_.num_agents());
  if (n == 0) return;

  // Fat-view fast path state: the persisted t-table (budget-accounted
  // through the cache) and the cone flood's stamp array.  Minted here --
  // not in the constructor -- so the degradation path (distributed cold
  // solve falling back to engine L) gets it too.
  if (opt_.warm_start && tstore_ == nullptr) {
    tstore_ = cache_->new_snapshot_store(g_.num_agents());
    t_stamp_.assign(static_cast<std::size_t>(g_.num_nodes()), 0);
  }

  // Cold solve: the refine / evaluate-representatives / broadcast pipeline
  // of solve_special_local_views, run here so the per-agent colours and the
  // populated cache survive as the update state.  Full-depth colours are
  // mandatory: they are compared against colours computed on *edited*
  // graphs later (the cross-instance soundness argument of
  // graph/color_refine.hpp).

  Timer refine_timer;
  const ViewClasses classes =
      refine_view_classes(g_, D_, /*full_depth=*/true);
  if (eval_opt_.stats != nullptr) {
    eval_opt_.stats->refine_us.fetch_add(
        static_cast<std::int64_t>(refine_timer.micros()),
        std::memory_order_relaxed);
    eval_opt_.stats->view_classes.fetch_add(classes.num_classes(),
                                            std::memory_order_relaxed);
  }
  const ClassEvalResult ev =
      evaluate_view_classes(g_, classes, opt_.R, eval_opt_, opt_.threads,
                            tstore_.get(), &pool_);
  if (eval_opt_.stats != nullptr) {
    eval_opt_.stats->evals_avoided.fetch_add(
        static_cast<std::int64_t>(n) - ev.evals, std::memory_order_relaxed);
  }
  for (std::size_t v = 0; v < n; ++v) {
    const auto ci = static_cast<std::size_t>(classes.class_of[v]);
    x_[v] = ev.x_class[ci];
    color_a_[v] = classes.color_a[ci];
    color_b_[v] = classes.color_b[ci];
  }
}

void IncrementalSolver::collect_dirty(const CommGraph& g,
                                      const std::vector<NodeId>& seeds,
                                      std::vector<AgentId>& dirty) {
  // Fresh node stamps per flood (distances differ between the pre- and
  // post-edit graphs); the agent stamp persists across the two floods of
  // one update, so `dirty` accumulates the union without duplicates.
  const std::uint32_t flood_epoch = ++epoch_;
  const std::uint32_t agent_epoch = epoch_ - (epoch_ % 2 == 0 ? 1 : 0);
  auto take_agent = [&](NodeId node) {
    if (g.type(node) != NodeType::kAgent) return;
    auto& stamp = agent_stamp_[static_cast<std::size_t>(node)];
    if (stamp >= agent_epoch) return;
    stamp = agent_epoch;
    dirty.push_back(static_cast<AgentId>(node));
  };

  bfs_cur_.clear();
  bfs_next_.clear();
  for (const NodeId s : seeds) {
    auto& stamp = node_stamp_[static_cast<std::size_t>(s)];
    if (stamp == flood_epoch) continue;
    stamp = flood_epoch;
    bfs_cur_.push_back(s);
    take_agent(s);
  }
  // Large frontiers expand data-parallel: each frontier node claims its
  // unstamped neighbours with an atomic exchange on the node stamp (exactly
  // one claimant observes the pre-epoch value), writes them into its own
  // bucket, and the buckets concatenate serially.  The claimed SET per level
  // equals the serial sweep's (a node adjacent to several frontier nodes is
  // claimed exactly once, at the first level that reaches it), and `dirty`
  // is consumed sorted by the callers, so the flood result is bitwise
  // independent of the thread count.
  constexpr std::size_t kParallelFrontier = 256;
  std::vector<std::vector<NodeId>> buckets;
  for (std::int32_t dist = 0; dist < D_ && !bfs_cur_.empty(); ++dist) {
    if (opt_.threads > 1 && bfs_cur_.size() >= kParallelFrontier) {
      buckets.resize(bfs_cur_.size());
      parallel_for(bfs_cur_.size(), opt_.threads, [&](std::size_t i) {
        auto& out = buckets[i];
        out.clear();
        for (const HalfEdge& e : g.neighbors(bfs_cur_[i])) {
          std::atomic_ref<std::uint32_t> stamp(
              node_stamp_[static_cast<std::size_t>(e.to)]);
          if (stamp.exchange(flood_epoch, std::memory_order_relaxed) !=
              flood_epoch) {
            out.push_back(e.to);
          }
        }
      });
      for (const auto& bucket : buckets) {
        for (const NodeId u : bucket) {
          bfs_next_.push_back(u);
          take_agent(u);
        }
      }
    } else {
      for (const NodeId u : bfs_cur_) {
        for (const HalfEdge& e : g.neighbors(u)) {
          auto& stamp = node_stamp_[static_cast<std::size_t>(e.to)];
          if (stamp == flood_epoch) continue;
          stamp = flood_epoch;
          bfs_next_.push_back(e.to);
          take_agent(e.to);
        }
      }
    }
    bfs_cur_.swap(bfs_next_);
    bfs_next_.clear();
  }
}

void IncrementalSolver::flood_t_cone(const CommGraph& g,
                                     const std::vector<NodeId>& seeds) {
  // 4r+3 comm-graph hops bound every coefficient the t recursion (and its
  // bisection bracket) reads; see the declaration comment.
  const std::int32_t depth = 4 * (opt_.R - 2) + 3;
  const std::uint32_t flood_epoch = ++t_epoch_;
  bfs_cur_.clear();
  bfs_next_.clear();
  for (const NodeId s : seeds) {
    auto& stamp = t_stamp_[static_cast<std::size_t>(s)];
    if (stamp == flood_epoch) continue;
    stamp = flood_epoch;
    bfs_cur_.push_back(s);
    if (g.type(s) == NodeType::kAgent) t_cone_.push_back(static_cast<AgentId>(s));
  }
  for (std::int32_t dist = 0; dist < depth && !bfs_cur_.empty(); ++dist) {
    for (const NodeId u : bfs_cur_) {
      for (const HalfEdge& e : g.neighbors(u)) {
        auto& stamp = t_stamp_[static_cast<std::size_t>(e.to)];
        if (stamp == flood_epoch) continue;
        stamp = flood_epoch;
        bfs_next_.push_back(e.to);
        if (g.type(e.to) == NodeType::kAgent)
          t_cone_.push_back(static_cast<AgentId>(e.to));
      }
    }
    bfs_cur_.swap(bfs_next_);
    bfs_next_.clear();
  }
}

std::unique_ptr<NodeProgram> IncrementalSolver::make_program(
    NodeId /*node*/) const {
  if (opt_.engine == DynamicEngine::kMessagePassing)
    return std::make_unique<GatherProgram>(D_, opt_.R, opt_.t_search);
  return make_streaming_program(opt_.R, opt_.t_search);
}

const std::vector<double>& IncrementalSolver::apply(
    const InstanceDelta& delta, const Deadline* deadline) {
  LOCMM_CHECK_MSG(deadline == nullptr ||
                      opt_.engine == DynamicEngine::kMemoizedDp,
                  "deadline-bounded apply is an engine-L feature; the "
                  "distributed replays have no abandon points");
  last_ = {};
  last_.agents_reused = g_.num_agents();
  if (delta.empty()) return x_;

  // Admission before anything mutates or even advances (cache epoch, flood
  // stamps): a rejected delta leaves the solver bitwise untouched.
  const std::vector<std::string> violations = sf_.check_applicable(delta);
  LOCMM_CHECK_MSG(violations.empty(),
                  "delta rejected: " << violations.front()
                                     << (violations.size() > 1
                                             ? " (+" +
                                                   std::to_string(
                                                       violations.size() - 1) +
                                                   " more)"
                                             : ""));

  // Dirty seeds: both endpoints of every touched edge.  Row/agent counts
  // never change under membership edits, so node ids are stable across the
  // pre- and post-edit graphs and one seed list serves both floods.
  std::vector<NodeId> seeds;
  delta.for_each_touched_edge(
      [&](RowKind kind, std::int32_t row, AgentId agent) {
        seeds.push_back(kind == RowKind::kConstraint
                            ? g_.constraint_node(row)
                            : g_.objective_node(row));
        seeds.push_back(g_.agent_node(agent));
      });
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  if (opt_.engine == DynamicEngine::kMemoizedDp) {
    apply_memoized(seeds, delta, deadline);
  } else {
    apply_distributed(seeds, delta);
  }
  return x_;
}

void IncrementalSolver::apply_distributed(const std::vector<NodeId>& seeds,
                                          const InstanceDelta& delta) {
  // Pre-edit distances for structural deltas: a removed edge can leave
  // nodes that were reachable only through it arbitrarily far from every
  // seed in the post-edit graph while their cached messages still encode
  // paths through it -- the replay must activate them too (the same
  // pre+post-graph flood the engine-L path runs for its dirty ball).
  std::vector<std::int32_t> pre_dist;
  Timer flood_timer;
  if (delta.structural()) {
    pre_dist = g_.bfs_distances(std::span<const NodeId>(seeds),
                                net_->recorded_rounds() - 1);
  }
  last_.flood_us += flood_timer.micros();

  Timer apply_timer;
  sf_.apply(delta);
  if (delta.structural()) {
    g_.apply_delta(delta, sf_.instance());
    LOCMM_CHECK(static_cast<std::size_t>(g_.num_nodes()) ==
                node_stamp_.size());
    net_->refresh_topology();
  } else {
    for (const CoeffEdit& e : delta.coeff_edits) {
      const NodeId row = e.kind == RowKind::kConstraint
                             ? g_.constraint_node(e.row)
                             : g_.objective_node(e.row);
      g_.set_edge_coefficient(row, g_.agent_node(e.agent), e.coeff);
    }
  }
  last_.apply_us = apply_timer.micros();

  Timer eval_timer;
  SyncNetwork::ReplayResult rep = net_->replay(
      seeds, [this](NodeId u) { return make_program(u); }, pre_dist);
  last_.eval_us = eval_timer.micros();
  last_.net = rep.stats;

  std::int64_t dirty_agents = 0;
  for (std::size_t i = 0; i < rep.executed.size(); ++i) {
    const NodeId u = rep.executed[i];
    if (g_.type(u) != NodeType::kAgent) continue;
    ++dirty_agents;
    x_[static_cast<std::size_t>(u)] =
        static_cast<const AgentNodeProgram*>(rep.programs[i].get())->x();
  }
  last_.agents_dirty = dirty_agents;
  last_.agents_reused = g_.num_agents() - dirty_agents;

  if (TSearchStats* s = opt_.t_search.stats; s != nullptr) {
    s->agents_dirty.fetch_add(last_.agents_dirty, std::memory_order_relaxed);
    s->agents_reused.fetch_add(last_.agents_reused,
                               std::memory_order_relaxed);
  }
}

void IncrementalSolver::apply_memoized(const std::vector<NodeId>& seeds,
                                       const InstanceDelta& delta,
                                       const Deadline* deadline) {
  // One cache epoch per update: entries whose last hit is older than the
  // cache's configured max_entry_age get swept (no-op on the default
  // keep-everything configuration).
  cache_->begin_epoch();

  // Near-wrap renumbering: the stamp arrays only ever compare against the
  // current epoch, so zeroing both and restarting the counter is invisible
  // -- one O(n) fill per ~4 billion updates keeps a long-lived solver
  // running forever (each update claims at most 3 epochs).
  constexpr std::uint32_t kEpochRenumber = 0xFFFFFF00u;
  if (epoch_ >= kEpochRenumber) {
    std::fill(node_stamp_.begin(), node_stamp_.end(), 0u);
    std::fill(agent_stamp_.begin(), agent_stamp_.end(), 0u);
    epoch_ = 0;
  }
  if (t_epoch_ >= kEpochRenumber) {
    std::fill(t_stamp_.begin(), t_stamp_.end(), 0u);
    t_epoch_ = 0;
  }
  t_cone_.clear();

  // The per-update agent-dedup epoch spans the (up to) two floods below;
  // collect_dirty claims epoch numbers pairwise, so force the counter onto
  // an even boundary first: both floods then share one agent epoch.
  if (epoch_ % 2 != 0) ++epoch_;

  // Everything up to the sf_.apply below reads the PRE-edit state, so a
  // deadline expiring here abandons with nothing to roll back (flood
  // stamps and the cache epoch are scratch, not observable solve state).
  if (deadline != nullptr) deadline->check("admission");

  std::vector<AgentId> dirty;
  Timer flood_timer;
  if (delta.structural()) {
    // Pre-edit ball: agents that can *lose* sight of a removed edge (the
    // new graph may put them beyond D of every seed).
    collect_dirty(g_, seeds, dirty);
    // Pre-edit t-cone: origins whose t may DROP its dependence on a removed
    // edge (the post-edit flood alone could miss them when removal
    // disconnects).  Coefficient-only deltas keep the topology, so their
    // pre- and post-edit cones coincide and the post flood suffices.
    if (tstore_ != nullptr) flood_t_cone(g_, seeds);
  }
  last_.flood_us += flood_timer.micros();

  // Rollback state, captured before the mutation: a structural delta
  // snapshots only the rows and agents it touches (O(ball) copies, matching
  // the O(ball) splice it precedes); a coefficient-only delta records the
  // inverse edits (first write per entry wins, so duplicate edits in one
  // batch still restore the original value).
  std::optional<SpecialFormPatch> pre_edit;
  InstanceDelta inverse;
  if (delta.structural()) {
    pre_edit = sf_.snapshot_for(delta);
  } else {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(delta.coeff_edits.size());
    for (const CoeffEdit& e : delta.coeff_edits) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(e.kind == RowKind::kObjective) << 63) |
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.row))
           << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.agent));
      if (!seen.insert(key).second) continue;
      const auto row = e.kind == RowKind::kConstraint
                           ? sf_.instance().constraint_row(e.row)
                           : sf_.instance().objective_row(e.row);
      for (const Entry& en : row) {
        if (en.agent == e.agent) {
          inverse.coeff_edits.push_back({e.kind, e.row, e.agent, en.coeff});
          break;
        }
      }
    }
  }

  Timer apply_timer;
  sf_.apply(delta);
  if (delta.structural()) {
    g_.apply_delta(delta, sf_.instance());
    LOCMM_CHECK(static_cast<std::size_t>(g_.num_nodes()) ==
                node_stamp_.size());
  } else {
    for (const CoeffEdit& e : delta.coeff_edits) {
      const NodeId row = e.kind == RowKind::kConstraint
                             ? g_.constraint_node(e.row)
                             : g_.objective_node(e.row);
      g_.set_edge_coefficient(row, g_.agent_node(e.agent), e.coeff);
    }
  }
  last_.apply_us = apply_timer.micros();

  try {
    if (deadline != nullptr) deadline->check("graph patch");

    flood_timer.reset();
    collect_dirty(g_, seeds, dirty);  // post-edit ball
    std::sort(dirty.begin(), dirty.end());
    // Post-edit t-cone, then invalidation: every snapshot entry an edit can
    // have perturbed is dropped BEFORE any evaluation may serve it.  The
    // union with the pre-edit cone lands in t_cone_ (duplicates absorbed by
    // the idempotent invalidate).
    if (tstore_ != nullptr) {
      flood_t_cone(g_, seeds);
      for (const AgentId u : t_cone_) tstore_->invalidate(u);
      last_.cone_invalidated = static_cast<std::int64_t>(t_cone_.size());
    }
    last_.flood_us += flood_timer.micros();
    last_.agents_dirty = static_cast<std::int64_t>(dirty.size());
    last_.agents_reused = g_.num_agents() - last_.agents_dirty;
    if (dirty.empty()) return;

    // Re-colour the dirty ball only (cone-restricted WL; bit-equal to a
    // whole-graph full-depth refine for exactly these agents).
    Timer refine_timer;
    const PartialColors pc = refine_agent_colors(g_, D_, dirty, opt_.threads);
    last_.refine_us = refine_timer.micros();
    last_.region_nodes = pc.region_nodes;
    if (deadline != nullptr) deadline->check("recolour");

    // Group the dirty agents into view classes by colour.  `dirty` is
    // sorted ascending, so the first member seen is the smallest agent: the
    // same representative choice refine_view_classes makes.
    ViewClasses groups;
    groups.rounds = D_;
    std::vector<std::int32_t> group_of(dirty.size());
    std::unordered_map<ColorPair, std::int32_t, ColorPairHash> ids;
    ids.reserve(dirty.size());
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      const ColorPair c{pc.color_a[i], pc.color_b[i]};
      const auto [it, inserted] = ids.emplace(
          c, static_cast<std::int32_t>(groups.representative.size()));
      if (inserted) {
        groups.representative.push_back(dirty[i]);
        groups.class_size.push_back(0);
        groups.color_a.push_back(c.a);
        groups.color_b.push_back(c.b);
      }
      group_of[i] = it->second;
      ++groups.class_size[static_cast<std::size_t>(it->second)];
    }
    last_.classes_invalidated = groups.num_classes();

    // Evaluate one representative per dirty class (colour-keyed cache hits
    // skip even the view build), then scatter to the dirty agents.  Clean
    // agents keep their stored output: their view is unchanged and x_v is a
    // pure function of the view.  The scatter into x_ / colours happens
    // only after the evaluation returned in full, so an abandonment inside
    // it leaves the solution arrays untouched.
    TSearchOptions eopt = eval_opt_;
    eopt.deadline = deadline;
    Timer eval_timer;
    const ClassEvalResult ev = evaluate_view_classes(
        g_, groups, opt_.R, eopt, opt_.threads, tstore_.get(), &pool_);
    last_.eval_us = eval_timer.micros();
    last_.class_cache_hits = ev.cache_hits;
    last_.evals = ev.evals;
    last_.warm_t_reused = ev.warm_t_reused;
    last_.cone_t_recomputed = ev.cone_t_recomputed;
    Timer broadcast_timer;
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      const auto v = static_cast<std::size_t>(dirty[i]);
      x_[v] = ev.x_class[static_cast<std::size_t>(group_of[i])];
      color_a_[v] = pc.color_a[i];
      color_b_[v] = pc.color_b[i];
    }
    last_.broadcast_us = broadcast_timer.micros();
  } catch (...) {
    // Commit-or-rollback: undo the instance + graph mutation, leaving the
    // solver bitwise as before the call (x_ and the colours were never
    // written -- the scatter runs strictly after the last throw point).
    // The structural path restores the touched rows from the O(ball) patch
    // and re-splices the graph against the restored instance (apply_delta
    // is symmetric: the touched node set is the same either way); the
    // coefficient path applies the recorded inverse.
    if (pre_edit.has_value()) {
      sf_.restore(*pre_edit);
      g_.apply_delta(delta, sf_.instance());
    } else {
      sf_.apply(inverse);
      for (const CoeffEdit& e : inverse.coeff_edits) {
        const NodeId row = e.kind == RowKind::kConstraint
                               ? g_.constraint_node(e.row)
                               : g_.objective_node(e.row);
        g_.set_edge_coefficient(row, g_.agent_node(e.agent), e.coeff);
      }
    }
    // The abandoned evaluation may have PUBLISHED post-edit t values for
    // cone origins before throwing; drop the whole cone again so the store
    // holds only values valid for the rolled-back (pre-edit) state.
    // Publishes outside the cone are pre/post-identical by definition and
    // stay.  Re-invalidating never-published origins is a no-op.
    if (tstore_ != nullptr)
      for (const AgentId u : t_cone_) tstore_->invalidate(u);
    last_ = {};
    last_.agents_reused = g_.num_agents();
    throw;
  }

  if (TSearchStats* s = eval_opt_.stats; s != nullptr) {
    s->agents_dirty.fetch_add(last_.agents_dirty, std::memory_order_relaxed);
    s->agents_reused.fetch_add(last_.agents_reused,
                               std::memory_order_relaxed);
    s->classes_invalidated.fetch_add(last_.classes_invalidated,
                                     std::memory_order_relaxed);
    // All WL time lands in refine_us, cold and incremental alike (the
    // evaluate stage already flushed class_eval_us / class_cache_hits, and
    // solve_agent_from_view the warm_entries_reused / cone_entries_
    // recomputed counters).
    s->refine_us.fetch_add(static_cast<std::int64_t>(last_.refine_us),
                           std::memory_order_relaxed);
    s->broadcast_us.fetch_add(static_cast<std::int64_t>(last_.broadcast_us),
                              std::memory_order_relaxed);
    s->view_classes.fetch_add(last_.classes_invalidated,
                              std::memory_order_relaxed);
  }
}

}  // namespace locmm
