// incremental_solver.hpp -- delta-driven dynamic re-solves (paper §1.3).
//
// "A local algorithm is automatically an efficient dynamic graph algorithm":
// because every output x_v is a pure function of v's radius-D(R) local view
// (PAPER §3, Remarks 4-5), an edit to the instance can only change the
// outputs of agents whose view contains a touched edge -- the agents within
// distance D(R) of the edit.  Earlier PRs demonstrated this read-only
// (bench E9 re-solved from scratch and measured the change radius); this
// class *exploits* it: it holds a solved SpecialFormInstance plus its
// solution and applies batched edits by
//
//   1. computing the dirty edge set (the rows/agents the delta touches) and
//      flooding it to the radius-D(R) agent ball on CommGraph -- in both the
//      pre- and post-edit graphs for structural deltas, since a removed
//      edge can push agents that used to see it beyond the new horizon;
//   2. patching the layers below in place (SpecialFormInstance::apply,
//      CommGraph::set_edge_coefficient; structural deltas splice only the
//      touched adjacency rows via CommGraph::apply_delta -- O(ball), not
//      O(V+E));
//   3. re-colouring ONLY the dirty ball with the cone-restricted WL
//      refinement (graph/color_refine.hpp: refine_agent_colors), grouping
//      dirty agents into view-equivalence classes without touching the
//      other n - |ball| agents;
//   4. evaluating one representative per dirty class through the engine-L
//      DP and the persistent ViewClassCache (core/view_solver.hpp:
//      evaluate_view_classes) -- a class whose full-depth colour was ever
//      seen before (in the initial solve or any earlier update) skips even
//      the view build;
//   5. scattering the class outputs to the dirty agents.  Clean agents keep
//      their stored output bit-for-bit: their view did not change, and
//      x_v is a pure function of the view.
//
// The result after every apply() is bit-identical to a cold
// solve_special_local_views of the edited instance (asserted by the
// randomized scripts in tests/incremental_test.cpp), but the per-update
// cost is governed by the dirty ball, not by n: the whole-graph WL sweep
// (O(D |E|)) and the per-class evaluations that dominate a cold solve
// shrink to their ball-restricted counterparts.  Counters land in
// TSearchStats (agents_dirty / agents_reused / classes_invalidated) and in
// the per-update UpdateStats.
//
// The same observation holds *distributed* (§1.3's actual claim): in the
// message-passing model, after an edit only the nodes inside the dirty ball
// need to re-send -- everyone else's messages are provably unchanged and can
// be replayed from a recorded history.  Options::engine selects the
// realisation: kMemoizedDp re-solves through the shared-memory engine-L
// pipeline above; kMessagePassing and kStreaming hold a dynamic SyncNetwork
// (dist/message_passing.hpp) whose replay(delta) re-executes engine M's
// view gathering or engine S's scalar phases only on the dirty-ball nodes,
// splicing cached subtrees / scalars for the clean cone.  Either way the
// result after every apply() is bit-identical to the matching from-scratch
// engine run (tests/dynamic_dist_test.cpp), and fresh message counts scale
// with the ball, never with n (UpdateStats::net).
//
// For edits addressed against an *original* (non-special-form) instance,
// use LocalResolver (core/solver_api.hpp), which routes the edit through
// the §4 pipeline and feeds the resulting special-form delta here.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/special_form.hpp"
#include "core/view_class_cache.hpp"
#include "core/view_solver.hpp"
#include "dist/message_passing.hpp"
#include "graph/comm_graph.hpp"
#include "lp/delta.hpp"
#include "support/deadline.hpp"

namespace locmm {

// Which engine carries the incremental re-solves.
enum class DynamicEngine {
  kMemoizedDp,      // engine L: dirty-ball WL recolouring + class evaluation
                    // through the persistent colour-keyed cache (default)
  kMessagePassing,  // engine M: SyncNetwork replay of the view gathering --
                    // dirty-ball nodes re-gather, the clean cone is spliced
                    // from cached subtree messages
  kStreaming,       // engine S: SyncNetwork replay of the t-gather and the
                    // smoothing/g scalar floods on dirty-ball nodes only
};

class IncrementalSolver {
 public:
  struct Options {
    std::int32_t R = 4;
    // Evaluation knobs (tol, engine, stats, ...).  The view_cache field is
    // ignored: the solver always evaluates through a persistent cache --
    // `cache` below, or an internally owned one -- because cross-update
    // colour hits are the point of the exercise.
    TSearchOptions t_search = {};
    std::size_t threads = 1;  // 0 = all hardware threads
    // Optional shared cross-solve cache (not owned).  Lets several solvers
    // (or a re-initialising LocalResolver) pool their evaluated classes.
    // Configure eviction (ViewClassCache::Config::max_entry_age) on the
    // cache you pass in: apply() advances its epoch once per update.
    ViewClassCache* cache = nullptr;
    // Engine carrying the updates (see DynamicEngine).  The distributed
    // engines keep the recorded message history resident (one copy of the
    // cold run's traffic) -- that history IS the state replay serves the
    // clean cone from.
    DynamicEngine engine = DynamicEngine::kMemoizedDp;
    // Optional seeded fault scenario for the distributed COLD solve
    // (dist/fault.hpp; not owned, must outlive construction; distributed
    // engines only -- CHECK-fails with kMemoizedDp).  When the run fully
    // recovers, the repaired history is bitwise the fault-free recording,
    // so every subsequent apply() replays exactly as if no fault happened.
    // When it cannot (retransmit budget exhausted), the solver degrades
    // gracefully: it drops the network, re-solves cold through the
    // engine-L dirty-ball path, and carries ALL subsequent updates there
    // (degraded_to_local() reports this).
    const FaultPlan* cold_faults = nullptr;
    // Fat-view fast path (engine L only), two coupled pieces:
    //   1. persist the DP t-table across updates in a TValueStore minted
    //      from the cache (core/dp_snapshot.hpp), invalidating exactly the
    //      edit's t-dependency cone (comm-graph radius 4r+3 around the
    //      touched edges) per apply -- evaluations re-bisect only cone
    //      origins and serve the rest from the snapshot;
    //   2. evaluate dirty-class representatives straight off the comm
    //      graph (solve_agent_on_graph) instead of materialising their
    //      radius-(12r+5) views -- the DP is origin-keyed, so the unfold
    //      only ever re-serialises the graph rows it was built from.
    // Together they turn a fat-view update (torus / circulant at R >= 3,
    // where per-class evaluation dominates) from O(dirty classes x view)
    // into O(dirty classes x graph ball + cone re-bisections).  Outputs
    // are bit-identical either way (t is position-independent, the
    // bisection deterministic, and the graph slices equal the view's);
    // disable only to measure the cold path.
    bool warm_start = true;
  };

  // Solves `special` cold -- through the refine / evaluate-representatives
  // / broadcast pipeline of solve_special_local_views (kMemoizedDp) or a
  // recorded SyncNetwork run of the selected distributed engine -- and
  // keeps everything the updates need: the instance, the graph, the
  // solution, and the per-agent full-depth WL colours (engine L) or the
  // per-node message history (engines M / S).
  IncrementalSolver(const MaxMinInstance& special, const Options& opt);
  explicit IncrementalSolver(const MaxMinInstance& special);

  // The SyncNetwork reference into g_ and the node-indexed scratch make a
  // moved-to solver point at the wrong graph; hold it by unique_ptr if it
  // has to travel.
  IncrementalSolver(const IncrementalSolver&) = delete;
  IncrementalSolver& operator=(const IncrementalSolver&) = delete;

  const std::vector<double>& x() const { return x_; }
  const SpecialFormInstance& special() const { return sf_; }
  const CommGraph& graph() const { return g_; }
  std::int32_t R() const { return opt_.R; }
  DynamicEngine engine() const { return opt_.engine; }
  ViewClassCache& cache() { return *cache_; }

  // Scheduler accounting of the cold solve (engines M / S; all zero for
  // kMemoizedDp, which never touches the network substrate).  With
  // Options::cold_faults set, this carries the faulty run's full fault
  // block (drops, retransmissions, recovery rounds, replayed repairs).
  const RunStats& cold_net_stats() const { return cold_net_; }

  // Whether an unrecoverable Options::cold_faults scenario forced the
  // fallback from the requested distributed engine to the engine-L
  // dirty-ball path (engine() reports kMemoizedDp from then on).
  bool degraded_to_local() const { return degraded_to_local_; }

  // Per-update accounting (also mirrored into Options::t_search.stats when
  // set, under the TSearchStats names).
  struct UpdateStats {
    std::int64_t agents_dirty = 0;    // |dirty ball| (old + new graph union)
    std::int64_t agents_reused = 0;   // n - agents_dirty: outputs untouched
    std::int64_t classes_invalidated = 0;  // dirty view classes this update
    std::int64_t class_cache_hits = 0;     // ...served by the cache
    std::int64_t evals = 0;                // ...actually evaluated
    std::int64_t region_nodes = 0;    // WL recolouring region |ball(dirty,D)|
    // Fat-view fast path (Options::warm_start): t values served from the
    // snapshot across this update's evaluations, bisections re-run because
    // the origin sat in the invalidated cone (or was never computed), and
    // the snapshot entries the edit's t-cone flood invalidated.
    std::int64_t warm_t_reused = 0;
    std::int64_t cone_t_recomputed = 0;
    std::int64_t cone_invalidated = 0;
    double apply_us = 0.0;   // instance + derived arrays + graph patch
    double flood_us = 0.0;   // dirty-ball BFS (both graphs on structural)
    double refine_us = 0.0;  // cone-restricted WL recolouring
    double eval_us = 0.0;    // dirty-class evaluation (incl. cache lookups)
    double broadcast_us = 0.0;  // class-output scatter to dirty agents
    // Engines M / S: the replay's scheduler accounting.  fresh_* is the
    // §1.3 headline -- bounded by the dirty ball times the round count,
    // independent of n; replayed_* is what the ball consumed from the
    // cached history.  All zero for kMemoizedDp.
    RunStats net;
  };

  // Applies the batch (lp/delta.hpp semantics: removes, adds, coefficient
  // edits, in that order) and incrementally re-solves; returns the updated
  // solution.
  //
  // Transactional: commit-or-rollback.  A delta that breaks the
  // special-form contract is rejected by the admission dry run
  // (SpecialFormInstance::check_applicable) and throws CheckError BEFORE
  // anything -- instance, graph, colours, cache, x -- is touched.  A
  // `deadline` (engine L only; distributed engines CHECK it is null) that
  // expires mid-resolve throws DeadlineExceeded and rolls the already
  // applied mutation back: coefficient-only deltas via the recorded inverse
  // delta, structural deltas via an O(ball) patch of the touched rows
  // (SpecialFormInstance::restore) plus a graph re-splice against the
  // restored instance -- either way the solver is left bitwise identical to
  // the state before the call, except for the ViewClassCache, which may
  // have gained entries and advanced an epoch (sound: every entry is a
  // self-contained colour -> value fact, and eviction only ever costs a
  // re-evaluation).  Proved by the snapshot-compare tests in
  // tests/incremental_test.cpp.
  const std::vector<double>& apply(const InstanceDelta& delta,
                                   const Deadline* deadline = nullptr);

  const UpdateStats& last_update() const { return last_; }

  // The persisted DP t-table (null when warm_start is off, the engine is
  // distributed, or the instance is empty; disabled -- enabled() false --
  // when the cache's snapshot byte budget refused it).  Exposed for tests
  // and benches to inspect entries() / bytes().
  const TValueStore* snapshot_store() const { return tstore_.get(); }

  // Allocation-churn accounting of the pooled evaluation arenas (engine L):
  // arenas ever created (== peak concurrent class evaluations) and total
  // DP-table reallocation events across them.  Steady-state edit streams
  // stop accumulating reallocations after warm-up -- asserted by the
  // scratch-reuse tests.
  std::int64_t scratch_arenas() const { return pool_.arenas(); }
  std::int64_t scratch_reallocations() const {
    return pool_.table_reallocations();
  }

  // Per-agent full-depth WL colours of the current solve state (engine L;
  // all-zero for distributed engines, which keep message history instead).
  // Exposed so tests can snapshot-compare the full solver state bitwise.
  std::span<const std::uint64_t> agent_colors_a() const { return color_a_; }
  std::span<const std::uint64_t> agent_colors_b() const { return color_b_; }

  // Fast-forwards the flood-epoch counter (test hook for the near-wrap
  // renumbering path; `epoch` must not move backwards).
  void set_flood_epoch_for_test(std::uint32_t epoch) {
    LOCMM_CHECK(epoch >= epoch_);
    epoch_ = epoch;
  }

 private:
  // Marks and appends all agents within distance D(R) of `seeds` in `g`.
  // Dedup across the two floods of one update is epoch-stamped, so repeat
  // visits cost nothing and no O(n) clearing happens per update.
  void collect_dirty(const CommGraph& g, const std::vector<NodeId>& seeds,
                     std::vector<AgentId>& dirty);

  // Appends to t_cone_ every agent within comm-graph distance 4r+3 of
  // `seeds` in `g` -- the t-dependency cone: t_u reads coefficients of
  // agents at distance <= 4r+2 and rows at <= 4r+3 (upper_bound.hpp's
  // recursion plus the sibling caps of the bisection bracket), so every t
  // outside the cone is bitwise unaffected by an edit at the seeds.  Uses
  // its own epoch-stamped visited array (t_stamp_), so the pre- and
  // post-edit floods of a structural delta stay independent BFS passes;
  // overlap lands in t_cone_ twice, which the idempotent invalidate absorbs.
  void flood_t_cone(const CommGraph& g, const std::vector<NodeId>& seeds);

  // One NodeProgram of the selected distributed engine for `node`.
  std::unique_ptr<NodeProgram> make_program(NodeId node) const;

  // The engine-L cold solve (refine / evaluate-representatives / broadcast),
  // leaving the colours and the populated cache behind as update state.
  // Runs at construction for kMemoizedDp, and again as the degradation
  // target when a faulty distributed cold solve cannot fully recover.
  void cold_solve_memoized();

  // The engine-L update path (WL recolouring + class evaluation) and the
  // distributed one (SyncNetwork replay); apply() dispatches on the engine.
  void apply_memoized(const std::vector<NodeId>& seeds,
                      const InstanceDelta& delta, const Deadline* deadline);
  void apply_distributed(const std::vector<NodeId>& seeds,
                         const InstanceDelta& delta);

  Options opt_;
  TSearchOptions eval_opt_;  // t_search with view_cache wired to cache_
  std::int32_t D_ = 0;
  std::unique_ptr<ViewClassCache> owned_cache_;
  ViewClassCache* cache_ = nullptr;

  SpecialFormInstance sf_;
  CommGraph g_;
  // Engines M / S: the recorded network (holds the per-node message history
  // the replays splice the clean cone from); null for kMemoizedDp.
  std::unique_ptr<SyncNetwork> net_;
  RunStats cold_net_;
  bool degraded_to_local_ = false;
  std::vector<double> x_;
  // Per-agent full-depth WL colours (the class fingerprints of the last
  // solve state; dirty agents are re-coloured on every update).
  std::vector<std::uint64_t> color_a_, color_b_;

  // Flood scratch: per-node visited stamps (two floods per update), and a
  // per-agent stamp deduplicating the union of their agent sets.
  std::vector<std::uint32_t> node_stamp_;
  std::vector<std::uint32_t> agent_stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> bfs_cur_, bfs_next_;

  // Fat-view fast path state (engine L, Options::warm_start): the persisted
  // t-table, its per-update invalidation cone, and the cone flood's own
  // stamp array (separate from node_stamp_ so the dirty-ball floods keep
  // their pairwise agent-epoch protocol untouched).
  std::shared_ptr<TValueStore> tstore_;
  std::vector<std::uint32_t> t_stamp_;
  std::uint32_t t_epoch_ = 0;
  std::vector<AgentId> t_cone_;
  // Pooled (view, DP-table) arenas reused across every evaluation this
  // solver ever runs -- cold solve and all updates.
  EvalScratchPool pool_;

  UpdateStats last_;
};

}  // namespace locmm
