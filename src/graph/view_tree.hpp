// view_tree.hpp -- truncated unfoldings (paper §3).
//
// The unfolding G' of G rooted at r has one node per non-backtracking walk
// from r; it is the universal cover of G.  A local algorithm with horizon D
// in the port-numbering model sees exactly the depth-D truncation of the
// unfolding rooted at itself (its *local view*): children of a node reached
// via edge e are its neighbours via every incident edge except e, and types,
// port numbers and coefficients are inherited from the parent graph
// (Remarks 4-5 of §3).
//
// ViewTree materialises this truncation.  Each node records its parent, the
// port index *at this node* that leads to the parent, the edge coefficient,
// and its origin (the parent node in G).  Origins exist only for testing and
// instrumentation -- the algorithms never branch on them, which is what
// makes the implementation identifier-free as required by the model.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/comm_graph.hpp"

namespace locmm {

struct ViewNode {
  NodeType type = NodeType::kAgent;
  std::int32_t parent = -1;       // index of parent view-node; -1 at the root
  std::int32_t parent_port = -1;  // port at THIS node leading to the parent
  double parent_coeff = 0.0;      // a_iv / c_kv on the parent edge
  std::int32_t depth = 0;
  NodeId origin = -1;             // G-node this copy projects to (testing only)
  std::int32_t degree = 0;        // full degree in G (part of local input)
  std::int32_t constraint_degree = 0;  // for agents: # constraint ports
  std::int32_t first_child = 0;   // children stored contiguously,
  std::int32_t num_children = 0;  // in port order with parent_port skipped
};

class ViewTree {
 public:
  ViewTree() = default;

  // Builds the depth-`depth` truncation of the unfolding rooted at `root`.
  // `max_nodes` guards against exponential blow-up on high-degree graphs.
  static ViewTree build(const CommGraph& g, NodeId root, std::int32_t depth,
                        std::int64_t max_nodes = 64 * 1000 * 1000);

  std::int32_t size() const { return static_cast<std::int32_t>(nodes_.size()); }
  const ViewNode& node(std::int32_t idx) const {
    LOCMM_DCHECK(idx >= 0 && idx < size());
    return nodes_[static_cast<std::size_t>(idx)];
  }
  std::int32_t depth() const { return depth_; }

  // Child view-node indices of `idx` (port order, parent port skipped).
  std::span<const std::int32_t> children(std::int32_t idx) const {
    const ViewNode& n = node(idx);
    return {child_index_.data() + n.first_child,
            child_index_.data() + n.first_child + n.num_children};
  }

  // True when all non-parent ports of `idx` are materialised as children
  // (false exactly at the truncation frontier).
  bool expanded(std::int32_t idx) const {
    const ViewNode& n = node(idx);
    return n.num_children + (n.parent >= 0 ? 1 : 0) == n.degree;
  }

  // Calls fn(port, neighbor_view_index, coeff) for every materialised
  // neighbour of `idx`, in the node's original port order (the parent edge
  // interleaved at parent_port).  Frontier nodes only expose their parent.
  template <typename Fn>
  void for_each_neighbor(std::int32_t idx, Fn&& fn) const {
    const ViewNode& n = node(idx);
    auto kids = children(idx);
    if (kids.empty()) {
      if (n.parent >= 0) fn(n.parent_port, n.parent, n.parent_coeff);
      return;
    }
    std::int32_t j = 0;
    const std::int32_t total =
        static_cast<std::int32_t>(kids.size()) + (n.parent >= 0 ? 1 : 0);
    for (std::int32_t port = 0; port < total; ++port) {
      if (n.parent >= 0 && port == n.parent_port) {
        fn(port, n.parent, n.parent_coeff);
      } else {
        const std::int32_t child = kids[j++];
        fn(port, child,
           nodes_[static_cast<std::size_t>(child)].parent_coeff);
      }
    }
  }

  // Structural equality ignoring origins: same shape, types, port positions
  // and coefficients.  This is the "information content" a port-numbering
  // algorithm can observe; the faithfulness tests compare message-gathered
  // views with directly-built ones through this.
  static bool same_view(const ViewTree& a, const ViewTree& b);

  // Approximate serialized size in bytes (for message accounting): per node
  // type + degree + parent port + coefficient.
  std::int64_t byte_size() const {
    return static_cast<std::int64_t>(nodes_.size()) * 13;
  }

  friend class ViewAssembler;  // dist/gather.cpp splices message views

 private:
  std::vector<ViewNode> nodes_;
  std::vector<std::int32_t> child_index_;
  std::int32_t depth_ = 0;
};

}  // namespace locmm
