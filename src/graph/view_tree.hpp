// view_tree.hpp -- truncated unfoldings (paper §3).
//
// The unfolding G' of G rooted at r has one node per non-backtracking walk
// from r; it is the universal cover of G.  A local algorithm with horizon D
// in the port-numbering model sees exactly the depth-D truncation of the
// unfolding rooted at itself (its *local view*): children of a node reached
// via edge e are its neighbours via every incident edge except e, and types,
// port numbers and coefficients are inherited from the parent graph
// (Remarks 4-5 of §3).
//
// ViewTree materialises this truncation.  Each node records its parent, the
// port index *at this node* that leads to the parent, the edge coefficient,
// and its origin (the parent node in G).  The naive oracle engine never
// branches on origins, which witnesses that the algorithm is definable in
// the identifier-free port-numbering model; the memoized DP engine uses
// origins purely as pointers into the unfolding's shared structure (all
// copies of a G-node carry identical subproblems -- Example 2 of the paper
// -- so deduplicating by origin provably changes no output, which the
// differential tests assert).
//
// Two distinct notions of identity coexist here and must not be conflated:
//
//   * origins identify copies of the SAME G-node inside ONE view.  They are
//     intra-view pointers into the unfolding's shared structure; they carry
//     global node ids, so nothing observable by a port-numbering algorithm
//     may ever branch on their values (engines use them only as dictionary
//     keys -- see ViewNode::origin).
//   * canonical_hash() identifies structurally EQUAL views ACROSS agents:
//     an origin-free, bottom-up Merkle-style fingerprint of exactly the
//     information content a port-numbering algorithm can observe (types,
//     degrees, port positions, coefficients).  Two agents whose views share
//     a canonical hash -- verified exactly via structurally_equal -- are
//     view-equivalent and provably compute identical outputs (Remarks 4-5),
//     which is what the cross-agent class cache (core/view_class_cache.hpp)
//     exploits to evaluate one representative per equivalence class.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/comm_graph.hpp"
#include "support/wire_layout.hpp"

namespace locmm {

struct ViewNode {
  NodeType type = NodeType::kAgent;
  std::int32_t parent = -1;       // index of parent view-node; -1 at the root
  std::int32_t parent_port = -1;  // port at THIS node leading to the parent
  double parent_coeff = 0.0;      // a_iv / c_kv on the parent edge
  std::int32_t depth = 0;
  // G-node this copy projects to.  Load-bearing since the memoized DP engine
  // (PR 1) keys its (slot, depth) tables on it: all copies of an origin share
  // one table row.  Engines may use it as an opaque dictionary key only --
  // never branch on its value, which a port-numbering algorithm cannot see
  // (the naive oracle never reads it at all; see the header preamble for the
  // origin vs canonical-hash distinction).
  NodeId origin = -1;
  std::int32_t degree = 0;        // full degree in G (part of local input)
  std::int32_t constraint_degree = 0;  // for agents: # constraint ports
  std::int32_t first_child = 0;   // children stored contiguously,
  std::int32_t num_children = 0;  // in port order with parent_port skipped
};

class ViewTree {
 public:
  ViewTree() = default;

  // Builds the depth-`depth` truncation of the unfolding rooted at `root`.
  // `max_nodes` guards against exponential blow-up on high-degree graphs:
  // exceeding it CHECK-fails with the offending root, radius and node budget
  // in the message (use try_build_into for a non-throwing variant).
  static ViewTree build(const CommGraph& g, NodeId root, std::int32_t depth,
                        std::int64_t max_nodes = 64 * 1000 * 1000);

  // Arena-style build: reuses `out`'s storage (capacity is retained across
  // calls), so a per-agent loop over views of similar size stops paying one
  // set of allocations per agent.  `out` is left equal to what build() would
  // have returned.
  static void build_into(const CommGraph& g, NodeId root, std::int32_t depth,
                         ViewTree& out,
                         std::int64_t max_nodes = 64 * 1000 * 1000);

  // Like build_into, but a blown `max_nodes` budget truncates instead of
  // throwing: the BFS stops expanding, `out.truncated()` is set, and the
  // tree stays internally consistent (unexpanded nodes read as frontier, so
  // an engine that actually needs them still CHECK-fails loudly).  Returns
  // true when the full depth-`depth` truncation fit in the budget.
  static bool try_build_into(const CommGraph& g, NodeId root,
                             std::int32_t depth, ViewTree& out,
                             std::int64_t max_nodes = 64 * 1000 * 1000);

  // True when the last build stopped at the node budget rather than the
  // requested depth (only reachable via try_build_into; build/build_into
  // CHECK-fail instead).
  bool truncated() const { return truncated_; }

  std::int32_t size() const { return static_cast<std::int32_t>(nodes_.size()); }
  const ViewNode& node(std::int32_t idx) const {
    LOCMM_DCHECK(idx >= 0 && idx < size());
    return nodes_[static_cast<std::size_t>(idx)];
  }
  std::int32_t depth() const { return depth_; }

  // Child view-node indices of `idx` (port order, parent port skipped).
  std::span<const std::int32_t> children(std::int32_t idx) const {
    const ViewNode& n = node(idx);
    return {child_index_.data() + n.first_child,
            child_index_.data() + n.first_child + n.num_children};
  }

  // True when all non-parent ports of `idx` are materialised as children
  // (false exactly at the truncation frontier).
  bool expanded(std::int32_t idx) const {
    const ViewNode& n = node(idx);
    return n.num_children + (n.parent >= 0 ? 1 : 0) == n.degree;
  }

  // Materialised neighbours of `idx` in the node's original port order (the
  // parent edge interleaved at parent_port).  Frontier nodes only expose
  // their parent.  These slices are precomputed at build time so that the
  // evaluation engines walk flat arrays instead of re-deriving the
  // interleaving on every visit.
  std::span<const std::int32_t> neighbor_ids(std::int32_t idx) const {
    const ViewNode& n = node(idx);
    return {nbr_ids_.data() + nbr_offsets_[static_cast<std::size_t>(idx)],
            nbr_ids_.data() + nbr_offsets_[static_cast<std::size_t>(idx)] +
                n.num_children + (n.parent >= 0 ? 1 : 0)};
  }
  std::span<const double> neighbor_coeffs(std::int32_t idx) const {
    const ViewNode& n = node(idx);
    return {nbr_coeffs_.data() + nbr_offsets_[static_cast<std::size_t>(idx)],
            nbr_coeffs_.data() + nbr_offsets_[static_cast<std::size_t>(idx)] +
                n.num_children + (n.parent >= 0 ? 1 : 0)};
  }

  // Calls fn(port, neighbor_view_index, coeff) for every materialised
  // neighbour of `idx`, in port order (a thin wrapper over the cached
  // adjacency slices).
  template <typename Fn>
  void for_each_neighbor(std::int32_t idx, Fn&& fn) const {
    const ViewNode& n = node(idx);
    if (n.num_children == 0) {  // frontier: only the parent edge is visible
      if (n.parent >= 0) fn(n.parent_port, n.parent, n.parent_coeff);
      return;
    }
    const auto ids = neighbor_ids(idx);
    const auto coeffs = neighbor_coeffs(idx);
    for (std::size_t port = 0; port < ids.size(); ++port) {
      fn(static_cast<std::int32_t>(port), ids[port], coeffs[port]);
    }
  }

  // Recomputes the cached adjacency slices from nodes_/child_index_ and
  // invalidates the memoized hashes.  Called by build_into(); anything else
  // that splices nodes directly (the future dist/ ViewAssembler) must call
  // it before handing the tree to an engine or the class cache.
  void rebuild_neighbor_cache();

  // Structural equality ignoring origins: same shape, types, port positions
  // and coefficients (compared exactly), plus the depth and truncated()
  // flags (a budget-cut tree never equals a complete one).  This is the
  // "information content" a port-numbering algorithm can observe; the
  // faithfulness tests compare message-gathered views with directly-built
  // ones through this, and the class cache uses it as the collision arbiter
  // for canonical_hash().
  static bool structurally_equal(const ViewTree& a, const ViewTree& b);

  // Backwards-compatible alias for structurally_equal.
  static bool same_view(const ViewTree& a, const ViewTree& b) {
    return structurally_equal(a, b);
  }

  // Origin-free, bottom-up Merkle-style fingerprint of the view: per node a
  // hash over (type, degree, constraint_degree, parent port, quantized
  // parent coefficient, port-ordered child hashes), folded from the leaves
  // to the root in one reverse pass over the BFS layout (children always
  // follow their parent, so reverse storage order is a valid bottom-up
  // topological order).  Computed lazily on first access (one pass,
  // memoized until the tree changes), so builds that never canonicalize
  // pay nothing.  structurally_equal views always share a hash; hash-equal
  // views are *almost always* structurally equal -- collisions (including
  // deliberate merges from coefficient quantization, see support/hash.hpp)
  // must be arbitrated with structurally_equal before a result is shared
  // across agents.
  std::uint64_t canonical_hash() const {
    if (!hashes_valid_) recompute_hashes();
    return canonical_hash_;
  }

  // A second, genuinely independent per-node Merkle stream: different seed
  // and *exact* coefficient bits (no quantization), so views whose
  // coefficients differ by less than the canonical stream's quantum still
  // separate here.  (canonical_hash, secondary_hash, size) is a 128+ bit
  // identity used where keeping the whole representative view for exact
  // arbitration is impractical (ViewClassCache entries above its
  // verification budget).
  std::uint64_t secondary_hash() const {
    if (!hashes_valid_) recompute_hashes();
    return secondary_hash_;
  }

  // A copy carrying only what structurally_equal and the hash accessors
  // need (nodes, child index, depth, memoized hashes) with capacity
  // trimmed: what ViewClassCache stores per entry.  The adjacency caches
  // and the origin->representative map are NOT copied -- call
  // rebuild_neighbor_cache() before handing the copy to an engine.
  ViewTree structural_copy() const;

  // Exact serialized size in bytes: the real codec (dist/wire.hpp
  // encode_view) emits kWireNodeBytes per node and nothing else, and
  // CHECK-fails if its output ever drifts from this number -- so the byte
  // statistics quoted by RunStats and the benches are the measured wire
  // format, not a parallel hand-maintained formula (round-trip tested per
  // generator family in tests/wire_test.cpp).
  std::int64_t byte_size() const {
    return static_cast<std::int64_t>(nodes_.size()) * kWireNodeBytes;
  }

  // The shallowest copy of a G-node in this view, or -1 when it has none.
  // Recorded during construction at no extra cost (the BFS build order makes
  // the first copy the minimum-depth one).  The memoized DP engine keys its
  // tables on origins through this: every quantity of the §5 recursions is
  // position-independent (Example 2 of the paper), so all copies of an
  // origin share one table row and the shallowest copy -- the one with the
  // most materialised adjacency -- serves as the lookup point.
  std::int32_t representative(NodeId origin) const {
    const auto o = static_cast<std::size_t>(origin);
    if (o >= rep_.size() || rep_epoch_[o] != rep_epoch_now_) return -1;
    return rep_[o];
  }

  friend class ViewAssembler;  // dist/gather.cpp splices message views
  friend class WireCodec;      // dist/wire.cpp decodes serialized views

 private:
  std::vector<ViewNode> nodes_;
  std::vector<std::int32_t> child_index_;
  // Cached adjacency (see neighbor_ids/neighbor_coeffs): per node, the
  // materialised neighbours in port order, parent edge interleaved.
  std::vector<std::int64_t> nbr_offsets_;
  std::vector<std::int32_t> nbr_ids_;
  std::vector<double> nbr_coeffs_;
  // Origin -> shallowest copy, epoch-stamped so arena reuse (build_into)
  // resets it in O(1).
  std::vector<std::int32_t> rep_;
  std::vector<std::uint32_t> rep_epoch_;
  std::uint32_t rep_epoch_now_ = 0;
  std::int32_t depth_ = 0;
  bool truncated_ = false;
  // Memoized fingerprints (see canonical_hash/secondary_hash): computed on
  // first access, mutable so the const accessors can fill them in.  Not
  // thread-safe to race; views are per-thread arenas or cache-private
  // copies, both single-owner by construction.
  mutable bool hashes_valid_ = false;
  mutable std::uint64_t canonical_hash_ = 0;
  mutable std::uint64_t secondary_hash_ = 0;
  // Per-node subtree hashes of the two streams, scratch for the bottom-up
  // fold (arena-retained like the other buffers).
  mutable std::vector<std::uint64_t> hash_scratch_a_;
  mutable std::vector<std::uint64_t> hash_scratch_b_;

  static void build_impl(const CommGraph& g, NodeId root, std::int32_t depth,
                         ViewTree& out, std::int64_t max_nodes,
                         bool allow_truncation);
  void recompute_hashes() const;
};

}  // namespace locmm
