// comm_graph.hpp -- the communication graph G = (V u I u K, E) of §1.1/§1.2.
//
// A flattened, typed view of a MaxMinInstance: one node per agent,
// constraint and objective, adjacency lists with the edge coefficient, and
// ports numbered by list position (the port-numbering model: each node
// orders its incident edges; we inherit the deterministic order fixed by the
// instance rows).  Agents list their constraint edges first, then their
// objective edges, matching the agent's local input (Iv, Kv, coefficients).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lp/instance.hpp"
#include "lp/spliced_rows.hpp"

namespace locmm {

using NodeId = std::int64_t;

enum class NodeType : std::uint8_t { kAgent, kConstraint, kObjective };

const char* to_string(NodeType t);

struct HalfEdge {
  NodeId to = -1;
  double coeff = 0.0;  // a_iv or c_kv on this edge
};

class CommGraph {
 public:
  explicit CommGraph(const MaxMinInstance& inst);

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.num_rows()); }
  std::int32_t num_agents() const { return num_agents_; }
  std::int32_t num_constraints() const { return num_constraints_; }
  std::int32_t num_objectives() const { return num_objectives_; }

  NodeId agent_node(AgentId v) const { return v; }
  NodeId constraint_node(ConstraintId i) const { return num_agents_ + i; }
  NodeId objective_node(ObjectiveId k) const {
    return num_agents_ + num_constraints_ + k;
  }

  NodeType type(NodeId node) const {
    LOCMM_DCHECK(node >= 0 && node < num_nodes());
    if (node < num_agents_) return NodeType::kAgent;
    if (node < num_agents_ + num_constraints_) return NodeType::kConstraint;
    return NodeType::kObjective;
  }

  // Index of the node within its own class (AgentId / ConstraintId /
  // ObjectiveId depending on type()).
  std::int32_t class_index(NodeId node) const {
    switch (type(node)) {
      case NodeType::kAgent: return static_cast<std::int32_t>(node);
      case NodeType::kConstraint:
        return static_cast<std::int32_t>(node - num_agents_);
      case NodeType::kObjective:
        return static_cast<std::int32_t>(node - num_agents_ - num_constraints_);
    }
    return -1;
  }

  // Neighbours in port order; the index into this span is the port number.
  std::span<const HalfEdge> neighbors(NodeId node) const {
    LOCMM_DCHECK(node >= 0 && node < num_nodes());
    return adj_.row(static_cast<std::size_t>(node));
  }

  std::int32_t degree(NodeId node) const {
    return static_cast<std::int32_t>(neighbors(node).size());
  }

  // The port at the neighbour reached via `port` of `node` that leads back
  // to `node` (first match in the neighbour's port order).  Part of every
  // local view (the child's parent_port), so ViewTree::build and the WL
  // colour refinement MUST resolve it identically -- both call this.
  std::int32_t back_port(NodeId node, std::int32_t port) const;

  // For an agent node: ports [0, constraint_degree) are constraints and
  // ports [constraint_degree, degree) are objectives.
  std::int32_t constraint_degree(NodeId agent) const {
    LOCMM_DCHECK(type(agent) == NodeType::kAgent);
    return constraint_degree_[static_cast<std::size_t>(agent)];
  }

  // Patches the coefficient written on the (row_node, agent) edge, in both
  // directions, without touching the topology.  O(deg) per call: the edge is
  // located by scanning the two port lists (an agent meets a given row at
  // most once, so both slots are unique).  This is the single-edge
  // coefficient path; whole deltas (including structural ones) go through
  // apply_delta below.
  void set_edge_coefficient(NodeId row_node, NodeId agent, double coeff);

  // Splices the graph to match `inst`, which must be the instance AFTER
  // `delta` was applied to the instance this graph was built from (node
  // counts never change under deltas).  Every node the delta touches -- the
  // row nodes and the agents of its membership and coefficient edits -- has
  // its adjacency row rebuilt wholesale from `inst`, which reproduces the
  // constructor's port order exactly (rows and incidence lists ARE the port
  // numbering), so the result is accessor-identical to CommGraph(inst).
  // O(ball): only touched rows splice; the adjacency heap is slack CSR.
  // Calling apply_delta(delta, pre_inst) after the instance was rolled back
  // to pre_inst un-does the splice -- the rollback path of
  // src/dynamic/incremental_solver.cpp uses exactly that symmetry.
  void apply_delta(const InstanceDelta& delta, const MaxMinInstance& inst);

  // BFS distances from `src`, capped at max_dist (nodes farther away get -1).
  std::vector<std::int32_t> bfs_distances(NodeId src,
                                          std::int32_t max_dist) const;

  // Multi-source variant: distance to the nearest of `sources`.  The shared
  // flood of the dynamic layers -- SyncNetwork::replay derives activation
  // rounds from it and IncrementalSolver feeds it pre-edit distances.
  std::vector<std::int32_t> bfs_distances(std::span<const NodeId> sources,
                                          std::int32_t max_dist) const;

  // All nodes within distance max_dist of src, in BFS (distance, discovery)
  // order; the first element is src itself.
  std::vector<NodeId> ball(NodeId src, std::int32_t max_dist) const;

 private:
  std::int32_t num_agents_ = 0;
  std::int32_t num_constraints_ = 0;
  std::int32_t num_objectives_ = 0;
  SplicedRows<HalfEdge> adj_;
  std::vector<std::int32_t> constraint_degree_;
};

}  // namespace locmm
