// color_refine.hpp -- port-numbering Weisfeiler-Leman colour refinement on
// the communication graph: the cheap, graph-side pre-hash of the view
// canonicalization layer.
//
// In the port-numbering model two agents with structurally identical
// radius-D views provably produce identical outputs (PAPER §3, Remarks 4-5),
// so a whole-instance engine-L solve only needs one evaluation per
// *view-equivalence class*.  Materialising views just to discover the
// classes would defeat the purpose (views grow like Delta^D); instead we
// iterate colour refinement directly on CommGraph:
//
//   c_0(v)     = h(type, degree, constraint_degree)
//   c_{t+1}(v) = h(c_t(v), port-ordered sequence of
//                  (c_t(u_p), back-port at u_p, exact coefficient bits))
//
// which is the classic WL unfolding-tree correspondence adapted to ports:
// with a perfect hash, c_D(v) = c_D(u) holds exactly when the depth-D
// truncated unfoldings of v and u are equal as port-numbered trees.  The
// completeness direction (equal views => equal colours) is deterministic --
// every input of the recurrence is part of the depth-D view -- so refinement
// NEVER splits a genuine equivalence class and no deduplication opportunity
// is missed.  The soundness direction (equal colours => equal views) is
// probabilistic; colours are 128-bit (two independently-seeded streams) so a
// wrong merge needs a 2^-128 collision.  Coefficients enter with their exact
// bit pattern (support/hash.hpp coeff_bits_exact): unlike the canonical-hash
// buckets, WL merges are acted on without per-member structural
// verification, so no quantization is allowed here.
//
// Refinement only ever splits classes (c_t is folded into c_{t+1}), so once
// a round leaves the class count unchanged the partition is stable and the
// remaining rounds are skipped -- on a symmetric n-agent instance the whole
// grouping costs O(stable_rounds * |E|), independent of D.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/comm_graph.hpp"

namespace locmm {

struct ViewClasses {
  // Dense class id per agent (indexed by AgentId); ids are assigned in
  // first-seen order over agent ids, so the partition is deterministic.
  std::vector<std::int32_t> class_of;
  // Per class: the smallest member agent (the evaluation representative)
  // and the class size.
  std::vector<AgentId> representative;
  std::vector<std::int32_t> class_size;
  // Per class: the 128-bit WL colour (both streams).  Together with
  // `rounds` this is an instance-independent fingerprint of the class's
  // depth-`rounds`-refined view, usable as a cache key across solves
  // (ViewClassCache::color_key) at the same ~2^-128 risk level as the
  // fingerprint-only entry fallback.
  std::vector<std::uint64_t> color_a;
  std::vector<std::uint64_t> color_b;
  // Refinement rounds actually executed and whether the partition reached a
  // fixed point before the requested depth.
  std::int32_t rounds = 0;
  bool stabilized = false;

  std::int32_t num_classes() const {
    return static_cast<std::int32_t>(representative.size());
  }
};

// Groups the agents of `g` into view-equivalence classes for views of depth
// `depth` (= view_radius(R) for engine L).  Runs at most `depth` refinement
// rounds, stopping early once the partition stabilizes.
ViewClasses refine_view_classes(const CommGraph& g, std::int32_t depth);

}  // namespace locmm
