// color_refine.hpp -- port-numbering Weisfeiler-Leman colour refinement on
// the communication graph: the cheap, graph-side pre-hash of the view
// canonicalization layer.
//
// In the port-numbering model two agents with structurally identical
// radius-D views provably produce identical outputs (PAPER §3, Remarks 4-5),
// so a whole-instance engine-L solve only needs one evaluation per
// *view-equivalence class*.  Materialising views just to discover the
// classes would defeat the purpose (views grow like Delta^D); instead we
// iterate colour refinement directly on CommGraph:
//
//   c_0(v)     = h(type, degree, constraint_degree)
//   c_{t+1}(v) = h(c_t(v), port-ordered sequence of
//                  (c_t(u_p), back-port at u_p, exact coefficient bits))
//
// which is the classic WL unfolding-tree correspondence adapted to ports:
// with a perfect hash, c_D(v) = c_D(u) holds exactly when the depth-D
// truncated unfoldings of v and u are equal as port-numbered trees.  The
// completeness direction (equal views => equal colours) is deterministic --
// every input of the recurrence is part of the depth-D view -- so refinement
// NEVER splits a genuine equivalence class and no deduplication opportunity
// is missed.  The soundness direction (equal colours => equal views) is
// probabilistic; colours are 128-bit (two independently-seeded streams) so a
// wrong merge needs a 2^-128 collision.  Coefficients enter with their exact
// bit pattern (support/hash.hpp coeff_bits_exact): unlike the canonical-hash
// buckets, WL merges are acted on without per-member structural
// verification, so no quantization is allowed here.
//
// Refinement only ever splits classes (c_t is folded into c_{t+1}), so once
// a round leaves the class count unchanged the partition is stable and the
// class-counting bookkeeping stops -- on a symmetric n-agent instance the
// hash-map work costs O(stable_rounds * |E|), independent of D.  The hash
// streams themselves always run the full `depth` rounds (an O(|E|) sweep per
// round, no hash maps): within one instance stopping at stabilization would
// be sound, but the colours are also used as instance-independent cache keys
// (ViewClassCache::color_key), and a colour that only fingerprints the
// depth-t unfolding of a round-t-stable partition does not determine the
// depth-D view of an agent from a different instance -- two instances can
// stabilize at the same t with equal depth-t unfoldings and diverging
// deeper structure.  Running all rounds makes c_depth a fingerprint of the
// complete depth-`depth` unfolding, cross-instance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/comm_graph.hpp"
#include "support/hash.hpp"

namespace locmm {

// A 128-bit two-stream WL colour, usable as a hash-map key.  This is the
// grouping currency of the refinement: both refine_view_classes and the
// dynamic subsystem's dirty-ball grouping (src/dynamic) key their class
// maps on it, so the two can never drift onto different colour layouts.
struct ColorPair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const ColorPair&, const ColorPair&) = default;
};

struct ColorPairHash {
  std::size_t operator()(const ColorPair& c) const {
    return static_cast<std::size_t>(hash_combine(c.a, c.b));
  }
};

struct ViewClasses {
  // Dense class id per agent (indexed by AgentId); ids are assigned in
  // first-seen order over agent ids, so the partition is deterministic.
  std::vector<std::int32_t> class_of;
  // Per class: the smallest member agent (the evaluation representative)
  // and the class size.
  std::vector<AgentId> representative;
  std::vector<std::int32_t> class_size;
  // Per class: the 128-bit WL colour (both streams).  The hash streams run
  // for all `depth` requested rounds (see the preamble), so together with
  // `rounds` (== depth) this is an instance-independent fingerprint of the
  // class's complete depth-`depth` unfolding, usable as a cache key across
  // solves (ViewClassCache::color_key) at the same ~2^-128 risk level as
  // the fingerprint-only entry fallback.
  std::vector<std::uint64_t> color_a;
  std::vector<std::uint64_t> color_b;
  // Hash rounds executed: the requested depth with full_depth (whenever
  // depth > 0), else == stable_rounds (the sweeps stop at stabilization).
  std::int32_t rounds = 0;
  // Whether the partition reached a fixed point within `depth` rounds, and
  // the round at which it did (== rounds when it never stabilized).  Only
  // the class-count bookkeeping stops there; the colours keep refining.
  bool stabilized = false;
  std::int32_t stable_rounds = 0;

  std::int32_t num_classes() const {
    return static_cast<std::int32_t>(representative.size());
  }
};

// Groups the agents of `g` into view-equivalence classes for views of depth
// `depth` (= view_radius(R) for engine L).  With `full_depth` (the safe
// default) the hash streams run all `depth` rounds -- required whenever the
// colours outlive the solve as cross-instance cache keys
// (ViewClassCache::color_key) -- and only the class-count bookkeeping stops
// early once the partition stabilizes.  Pass full_depth = false when the
// colours are used solely to group agents within this one instance: a
// stable partition cannot split again, so stopping the sweeps at
// stabilization yields the identical partition and skips
// O((depth - stable_rounds) * |E|) of hashing -- but the resulting colours
// fingerprint only the depth-stable_rounds unfolding and MUST NOT be used
// as cross-solve keys.
ViewClasses refine_view_classes(const CommGraph& g, std::int32_t depth,
                                bool full_depth = true);

// Full-depth colours for a *subset* of agents, recomputed from scratch but
// reading the graph only inside ball(agents, depth): the dynamic-update
// path of src/dynamic/incremental_solver.  Runs the identical recurrence as
// refine_view_classes (same seeds, same per-round fold, always the full
// `depth` rounds) restricted to the region R = ball(agents, depth); nodes
// at the region boundary read a fixed placeholder for their out-of-region
// neighbours and therefore carry garbage colours, but the standard cone
// argument keeps the garbage out of the results: c_t(u) is exact whenever
// ball(u, t) is contained in R, and for a seed agent v the whole dependency
// cone of c_depth(v) -- the values (u, t) with dist(v, u) <= depth - t --
// satisfies that containment because ball(v, depth) is a subset of R by
// construction.  The returned colours are therefore bit-equal to what a
// whole-graph refine_view_classes(g, depth, /*full_depth=*/true) would
// assign these agents, at O(depth * |ball(agents, depth)| * deg) cost
// instead of O(depth * |E|): after a local edit, only the dirty ball pays
// for re-colouring.  With threads > 1 the region-adjacency build and the
// per-round sweeps run data-parallel over the region (each index writes its
// own slot reading only the previous round), so the colours are bitwise
// independent of the thread count.
struct PartialColors {
  std::vector<AgentId> agents;  // the input agents, in input order
  std::vector<std::uint64_t> color_a;  // parallel to `agents`
  std::vector<std::uint64_t> color_b;
  std::int64_t region_nodes = 0;  // |ball(agents, depth)|: the work bound
};
PartialColors refine_agent_colors(const CommGraph& g, std::int32_t depth,
                                  std::span<const AgentId> agents,
                                  std::size_t threads = 1);

}  // namespace locmm
