#include "graph/view_tree.hpp"

#include <cmath>

namespace locmm {

ViewTree ViewTree::build(const CommGraph& g, NodeId root, std::int32_t depth,
                         std::int64_t max_nodes) {
  LOCMM_CHECK(root >= 0 && root < g.num_nodes());
  LOCMM_CHECK(depth >= 0);

  ViewTree t;
  t.depth_ = depth;

  auto make_node = [&](NodeId origin, std::int32_t parent,
                       std::int32_t parent_port, double parent_coeff,
                       std::int32_t d) {
    ViewNode n;
    n.type = g.type(origin);
    n.parent = parent;
    n.parent_port = parent_port;
    n.parent_coeff = parent_coeff;
    n.depth = d;
    n.origin = origin;
    n.degree = g.degree(origin);
    n.constraint_degree =
        (n.type == NodeType::kAgent) ? g.constraint_degree(origin) : 0;
    return n;
  };

  t.nodes_.push_back(make_node(root, -1, -1, 0.0, 0));

  // BFS expansion; children of the node popped at position `head` are
  // appended contiguously, in port order, skipping the parent port.
  std::size_t head = 0;
  while (head < t.nodes_.size()) {
    const auto idx = static_cast<std::int32_t>(head);
    // Copy the fields we need: nodes_ may reallocate below.
    const NodeId origin = t.nodes_[head].origin;
    const std::int32_t d = t.nodes_[head].depth;
    const std::int32_t parent_port = t.nodes_[head].parent_port;
    ++head;
    if (d >= depth) continue;

    const auto neigh = g.neighbors(origin);
    t.nodes_[static_cast<std::size_t>(idx)].first_child =
        static_cast<std::int32_t>(t.child_index_.size());
    std::int32_t added = 0;
    for (std::int32_t port = 0; port < static_cast<std::int32_t>(neigh.size());
         ++port) {
      if (port == parent_port) continue;  // non-backtracking
      const HalfEdge& e = neigh[static_cast<std::size_t>(port)];
      // Port at the child that leads back here.
      std::int32_t back_port = -1;
      const auto child_neigh = g.neighbors(e.to);
      for (std::int32_t q = 0;
           q < static_cast<std::int32_t>(child_neigh.size()); ++q) {
        if (child_neigh[static_cast<std::size_t>(q)].to == origin) {
          back_port = q;
          break;
        }
      }
      LOCMM_CHECK_MSG(back_port >= 0, "asymmetric adjacency in CommGraph");
      const auto child_idx = static_cast<std::int32_t>(t.nodes_.size());
      t.nodes_.push_back(make_node(e.to, idx, back_port, e.coeff, d + 1));
      t.child_index_.push_back(child_idx);
      ++added;
      LOCMM_CHECK_MSG(static_cast<std::int64_t>(t.nodes_.size()) <= max_nodes,
                      "view tree exceeds " << max_nodes
                                           << " nodes; reduce depth/degree");
    }
    t.nodes_[static_cast<std::size_t>(idx)].num_children = added;
  }
  return t;
}

bool ViewTree::same_view(const ViewTree& a, const ViewTree& b) {
  if (a.size() != b.size()) return false;
  // Both trees are stored in deterministic BFS/port order, so structural
  // equality reduces to elementwise comparison (origins excluded).
  for (std::int32_t i = 0; i < a.size(); ++i) {
    const ViewNode& x = a.node(i);
    const ViewNode& y = b.node(i);
    if (x.type != y.type || x.parent != y.parent ||
        x.parent_port != y.parent_port || x.depth != y.depth ||
        x.degree != y.degree || x.constraint_degree != y.constraint_degree ||
        x.num_children != y.num_children || x.first_child != y.first_child) {
      return false;
    }
    if (std::abs(x.parent_coeff - y.parent_coeff) > 0.0) return false;
  }
  return true;
}

}  // namespace locmm
