#include "graph/view_tree.hpp"

#include <cmath>

namespace locmm {

ViewTree ViewTree::build(const CommGraph& g, NodeId root, std::int32_t depth,
                         std::int64_t max_nodes) {
  ViewTree t;
  build_into(g, root, depth, t, max_nodes);
  return t;
}

void ViewTree::build_into(const CommGraph& g, NodeId root, std::int32_t depth,
                          ViewTree& out, std::int64_t max_nodes) {
  LOCMM_CHECK(root >= 0 && root < g.num_nodes());
  LOCMM_CHECK(depth >= 0);

  ViewTree& t = out;
  t.nodes_.clear();
  t.child_index_.clear();
  t.depth_ = depth;
  // New representative-map generation; O(1) arena reuse (stale entries keep
  // their old epoch stamp and read as absent).
  ++t.rep_epoch_now_;
  if (t.rep_epoch_now_ == 0) {
    t.rep_epoch_.assign(t.rep_epoch_.size(), 0);
    t.rep_epoch_now_ = 1;
  }
  auto note_origin = [&](NodeId origin, std::int32_t idx) {
    const auto o = static_cast<std::size_t>(origin);
    if (o >= t.rep_.size()) {
      t.rep_.resize(o + 1);
      t.rep_epoch_.resize(o + 1, 0);
    }
    if (t.rep_epoch_[o] != t.rep_epoch_now_) {
      t.rep_epoch_[o] = t.rep_epoch_now_;
      t.rep_[o] = idx;  // BFS order: the first copy is the shallowest
    }
  };

  auto make_node = [&](NodeId origin, std::int32_t parent,
                       std::int32_t parent_port, double parent_coeff,
                       std::int32_t d) {
    ViewNode n;
    n.type = g.type(origin);
    n.parent = parent;
    n.parent_port = parent_port;
    n.parent_coeff = parent_coeff;
    n.depth = d;
    n.origin = origin;
    n.degree = g.degree(origin);
    n.constraint_degree =
        (n.type == NodeType::kAgent) ? g.constraint_degree(origin) : 0;
    return n;
  };

  t.nodes_.push_back(make_node(root, -1, -1, 0.0, 0));
  note_origin(root, 0);

  // BFS expansion; children of the node popped at position `head` are
  // appended contiguously, in port order, skipping the parent port.
  std::size_t head = 0;
  while (head < t.nodes_.size()) {
    const auto idx = static_cast<std::int32_t>(head);
    // Copy the fields we need: nodes_ may reallocate below.
    const NodeId origin = t.nodes_[head].origin;
    const std::int32_t d = t.nodes_[head].depth;
    const std::int32_t parent_port = t.nodes_[head].parent_port;
    ++head;
    if (d >= depth) continue;

    const auto neigh = g.neighbors(origin);
    t.nodes_[static_cast<std::size_t>(idx)].first_child =
        static_cast<std::int32_t>(t.child_index_.size());
    std::int32_t added = 0;
    for (std::int32_t port = 0; port < static_cast<std::int32_t>(neigh.size());
         ++port) {
      if (port == parent_port) continue;  // non-backtracking
      const HalfEdge& e = neigh[static_cast<std::size_t>(port)];
      // Port at the child that leads back here.
      std::int32_t back_port = -1;
      const auto child_neigh = g.neighbors(e.to);
      for (std::int32_t q = 0;
           q < static_cast<std::int32_t>(child_neigh.size()); ++q) {
        if (child_neigh[static_cast<std::size_t>(q)].to == origin) {
          back_port = q;
          break;
        }
      }
      LOCMM_CHECK_MSG(back_port >= 0, "asymmetric adjacency in CommGraph");
      const auto child_idx = static_cast<std::int32_t>(t.nodes_.size());
      t.nodes_.push_back(make_node(e.to, idx, back_port, e.coeff, d + 1));
      note_origin(e.to, child_idx);
      t.child_index_.push_back(child_idx);
      ++added;
      LOCMM_CHECK_MSG(static_cast<std::int64_t>(t.nodes_.size()) <= max_nodes,
                      "view tree exceeds " << max_nodes
                                           << " nodes; reduce depth/degree");
    }
    t.nodes_[static_cast<std::size_t>(idx)].num_children = added;
  }
  t.rebuild_neighbor_cache();
}

void ViewTree::rebuild_neighbor_cache() {
  const std::size_t n = nodes_.size();
  nbr_offsets_.clear();
  nbr_offsets_.reserve(n + 1);
  nbr_ids_.clear();
  nbr_coeffs_.clear();
  std::int64_t total = 0;
  nbr_offsets_.push_back(0);
  for (const ViewNode& v : nodes_) {
    total += v.num_children + (v.parent >= 0 ? 1 : 0);
    nbr_offsets_.push_back(total);
  }
  nbr_ids_.resize(static_cast<std::size_t>(total));
  nbr_coeffs_.resize(static_cast<std::size_t>(total));
  for (std::size_t i = 0; i < n; ++i) {
    const ViewNode& v = nodes_[i];
    std::int64_t at = nbr_offsets_[i];
    const std::int32_t* kids = child_index_.data() + v.first_child;
    std::int32_t j = 0;
    const std::int32_t total_ports = v.num_children + (v.parent >= 0 ? 1 : 0);
    for (std::int32_t port = 0; port < total_ports; ++port, ++at) {
      if (v.parent >= 0 && (port == v.parent_port || v.num_children == 0)) {
        // Frontier nodes expose only their parent, at slot 0.
        nbr_ids_[static_cast<std::size_t>(at)] = v.parent;
        nbr_coeffs_[static_cast<std::size_t>(at)] = v.parent_coeff;
      } else {
        const std::int32_t child = kids[j++];
        nbr_ids_[static_cast<std::size_t>(at)] = child;
        nbr_coeffs_[static_cast<std::size_t>(at)] =
            nodes_[static_cast<std::size_t>(child)].parent_coeff;
      }
    }
  }
}

bool ViewTree::same_view(const ViewTree& a, const ViewTree& b) {
  if (a.size() != b.size()) return false;
  // Both trees are stored in deterministic BFS/port order, so structural
  // equality reduces to elementwise comparison (origins excluded).
  for (std::int32_t i = 0; i < a.size(); ++i) {
    const ViewNode& x = a.node(i);
    const ViewNode& y = b.node(i);
    if (x.type != y.type || x.parent != y.parent ||
        x.parent_port != y.parent_port || x.depth != y.depth ||
        x.degree != y.degree || x.constraint_degree != y.constraint_degree ||
        x.num_children != y.num_children || x.first_child != y.first_child) {
      return false;
    }
    if (std::abs(x.parent_coeff - y.parent_coeff) > 0.0) return false;
  }
  return true;
}

}  // namespace locmm
