#include "graph/view_tree.hpp"

#include <algorithm>
#include <cmath>

#include "support/hash.hpp"

namespace locmm {

ViewTree ViewTree::build(const CommGraph& g, NodeId root, std::int32_t depth,
                         std::int64_t max_nodes) {
  ViewTree t;
  build_into(g, root, depth, t, max_nodes);
  return t;
}

void ViewTree::build_into(const CommGraph& g, NodeId root, std::int32_t depth,
                          ViewTree& out, std::int64_t max_nodes) {
  build_impl(g, root, depth, out, max_nodes, /*allow_truncation=*/false);
}

bool ViewTree::try_build_into(const CommGraph& g, NodeId root,
                              std::int32_t depth, ViewTree& out,
                              std::int64_t max_nodes) {
  build_impl(g, root, depth, out, max_nodes, /*allow_truncation=*/true);
  return !out.truncated_;
}

void ViewTree::build_impl(const CommGraph& g, NodeId root, std::int32_t depth,
                          ViewTree& out, std::int64_t max_nodes,
                          bool allow_truncation) {
  LOCMM_CHECK(root >= 0 && root < g.num_nodes());
  LOCMM_CHECK(depth >= 0);
  LOCMM_CHECK(max_nodes >= 1);

  ViewTree& t = out;
  t.nodes_.clear();
  t.child_index_.clear();
  t.depth_ = depth;
  t.truncated_ = false;
  // New representative-map generation; O(1) arena reuse (stale entries keep
  // their old epoch stamp and read as absent).
  ++t.rep_epoch_now_;
  if (t.rep_epoch_now_ == 0) {
    t.rep_epoch_.assign(t.rep_epoch_.size(), 0);
    t.rep_epoch_now_ = 1;
  }
  auto note_origin = [&](NodeId origin, std::int32_t idx) {
    const auto o = static_cast<std::size_t>(origin);
    if (o >= t.rep_.size()) {
      t.rep_.resize(o + 1);
      t.rep_epoch_.resize(o + 1, 0);
    }
    if (t.rep_epoch_[o] != t.rep_epoch_now_) {
      t.rep_epoch_[o] = t.rep_epoch_now_;
      t.rep_[o] = idx;  // BFS order: the first copy is the shallowest
    }
  };

  auto make_node = [&](NodeId origin, std::int32_t parent,
                       std::int32_t parent_port, double parent_coeff,
                       std::int32_t d) {
    ViewNode n;
    n.type = g.type(origin);
    n.parent = parent;
    n.parent_port = parent_port;
    n.parent_coeff = parent_coeff;
    n.depth = d;
    n.origin = origin;
    n.degree = g.degree(origin);
    n.constraint_degree =
        (n.type == NodeType::kAgent) ? g.constraint_degree(origin) : 0;
    return n;
  };

  t.nodes_.push_back(make_node(root, -1, -1, 0.0, 0));
  note_origin(root, 0);

  // BFS expansion; children of the node popped at position `head` are
  // appended contiguously, in port order, skipping the parent port.
  std::size_t head = 0;
  while (head < t.nodes_.size() && !t.truncated_) {
    const auto idx = static_cast<std::int32_t>(head);
    // Copy the fields we need: nodes_ may reallocate below.
    const NodeId origin = t.nodes_[head].origin;
    const std::int32_t d = t.nodes_[head].depth;
    const std::int32_t parent_port = t.nodes_[head].parent_port;
    ++head;
    if (d >= depth) continue;

    const auto neigh = g.neighbors(origin);
    t.nodes_[static_cast<std::size_t>(idx)].first_child =
        static_cast<std::int32_t>(t.child_index_.size());
    std::int32_t added = 0;
    for (std::int32_t port = 0; port < static_cast<std::int32_t>(neigh.size());
         ++port) {
      if (port == parent_port) continue;  // non-backtracking
      if (static_cast<std::int64_t>(t.nodes_.size()) >= max_nodes) {
        if (allow_truncation) {
          t.truncated_ = true;
          break;
        }
        LOCMM_CHECK_MSG(false, "view tree exceeds the node budget: root "
                                   << root << " (" << to_string(g.type(root))
                                   << "), requested depth " << depth
                                   << ", max_nodes " << max_nodes
                                   << " reached while expanding depth " << d
                                   << "; reduce the radius/degree, raise the "
                                      "budget, or use try_build_into");
      }
      const HalfEdge& e = neigh[static_cast<std::size_t>(port)];
      // Port at the child that leads back here; shared with the WL
      // refinement so both resolve it identically (a load-bearing
      // invariant -- see CommGraph::back_port).
      const std::int32_t back_port = g.back_port(origin, port);
      const auto child_idx = static_cast<std::int32_t>(t.nodes_.size());
      t.nodes_.push_back(make_node(e.to, idx, back_port, e.coeff, d + 1));
      note_origin(e.to, child_idx);
      t.child_index_.push_back(child_idx);
      ++added;
    }
    t.nodes_[static_cast<std::size_t>(idx)].num_children = added;
  }
  t.rebuild_neighbor_cache();
}

void ViewTree::rebuild_neighbor_cache() {
  const std::size_t n = nodes_.size();
  nbr_offsets_.clear();
  nbr_offsets_.reserve(n + 1);
  nbr_ids_.clear();
  nbr_coeffs_.clear();
  std::int64_t total = 0;
  nbr_offsets_.push_back(0);
  for (const ViewNode& v : nodes_) {
    total += v.num_children + (v.parent >= 0 ? 1 : 0);
    nbr_offsets_.push_back(total);
  }
  nbr_ids_.resize(static_cast<std::size_t>(total));
  nbr_coeffs_.resize(static_cast<std::size_t>(total));
  for (std::size_t i = 0; i < n; ++i) {
    const ViewNode& v = nodes_[i];
    std::int64_t at = nbr_offsets_[i];
    const std::int32_t* kids = child_index_.data() + v.first_child;
    std::int32_t j = 0;
    const std::int32_t total_ports = v.num_children + (v.parent >= 0 ? 1 : 0);
    // Slot of the parent edge: its own port when that lies within the
    // materialised range, else the last slot.  The latter covers frontier
    // nodes (no children, parent at slot 0) and nodes a truncation cut
    // mid-expansion before reaching parent_port -- the parent edge is how
    // the node was reached, so it is always materialised, and clamping
    // keeps the child walk within v's own num_children entries.
    const std::int32_t parent_slot =
        v.parent < 0 ? -1 : std::min(v.parent_port, total_ports - 1);
    for (std::int32_t port = 0; port < total_ports; ++port, ++at) {
      if (port == parent_slot) {
        nbr_ids_[static_cast<std::size_t>(at)] = v.parent;
        nbr_coeffs_[static_cast<std::size_t>(at)] = v.parent_coeff;
      } else {
        const std::int32_t child = kids[j++];
        nbr_ids_[static_cast<std::size_t>(at)] = child;
        nbr_coeffs_[static_cast<std::size_t>(at)] =
            nodes_[static_cast<std::size_t>(child)].parent_coeff;
      }
    }
  }
  hashes_valid_ = false;
}

void ViewTree::recompute_hashes() const {
  // Bottom-up Merkle fold in one reverse pass: the BFS layout stores every
  // child after its parent, so iterating indices high-to-low sees all child
  // hashes before each parent.  Nothing origin-dependent enters the mix.
  // Two genuinely independent per-node streams: A seeds one constant and
  // quantizes coefficients (cheap grouping, arbitrated exactly downstream),
  // B seeds another and folds the *exact* coefficient bits, so the pair
  // (canonical, secondary) only collides for structurally different views
  // at the ~2^-128 level -- a wrong fingerprint-only cache merge needs both
  // streams to collide at once.
  const std::size_t n = nodes_.size();
  hash_scratch_a_.resize(n);
  hash_scratch_b_.resize(n);
  for (std::size_t i = n; i-- > 0;) {
    const ViewNode& v = nodes_[i];
    std::uint64_t ha = 0x9ae16a3b2f90404full;  // stream-A node seed
    std::uint64_t hb = 0xc3a5c85c97cb3127ull;  // stream-B node seed
    const auto fold = [&](std::uint64_t x) {
      ha = hash_combine(ha, x);
      hb = hash_combine(hb, x);
    };
    fold(static_cast<std::uint64_t>(v.type));
    fold(static_cast<std::uint64_t>(v.degree));
    fold(static_cast<std::uint64_t>(v.constraint_degree));
    fold(static_cast<std::uint64_t>(v.parent_port + 1));
    ha = hash_combine(ha, coeff_bits_quantized(v.parent_coeff));
    hb = hash_combine(hb, coeff_bits_exact(v.parent_coeff));
    fold(static_cast<std::uint64_t>(v.num_children));
    for (std::int32_t c = 0; c < v.num_children; ++c) {
      const auto child = static_cast<std::size_t>(
          child_index_[static_cast<std::size_t>(v.first_child + c)]);
      ha = hash_combine(ha, hash_scratch_a_[child]);
      hb = hash_combine(hb, hash_scratch_b_[child]);
    }
    hash_scratch_a_[i] = ha;
    hash_scratch_b_[i] = hb;
  }
  // The truncation flag is part of the identity, like depth_: a tree cut by
  // the node budget must never fingerprint-match a complete tree (what lies
  // beyond the cut is unknown).
  const std::uint64_t tail = hash_combine(
      static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(truncated_));
  canonical_hash_ = hash_combine(
      hash_combine(n > 0 ? hash_scratch_a_[0] : 0,
                   static_cast<std::uint64_t>(depth_)),
      tail);
  secondary_hash_ = hash_combine(
      hash_combine(n > 0 ? hash_scratch_b_[0] : 0,
                   static_cast<std::uint64_t>(depth_)),
      tail);
  hashes_valid_ = true;
}

ViewTree ViewTree::structural_copy() const {
  ViewTree t;
  t.nodes_ = nodes_;
  t.nodes_.shrink_to_fit();
  t.child_index_ = child_index_;
  t.child_index_.shrink_to_fit();
  t.depth_ = depth_;
  t.truncated_ = truncated_;
  t.hashes_valid_ = hashes_valid_;
  t.canonical_hash_ = canonical_hash_;
  t.secondary_hash_ = secondary_hash_;
  return t;
}

bool ViewTree::structurally_equal(const ViewTree& a, const ViewTree& b) {
  // The truncation depth and the budget-truncation flag are part of the
  // view's identity (the hashes fold both): a deeper request that happens
  // to exhaust the same finite unfolding still announces a different
  // horizon, and a budget-cut tree never equals a complete one -- what lies
  // beyond the cut is unknown, so equality of the surviving arrays proves
  // nothing.  Two trees truncated at the same budget can still coincide
  // here while their full views differ, which is why the class cache
  // refuses truncated views outright (ViewClassCache::lookup/insert).
  if (a.size() != b.size() || a.depth() != b.depth() ||
      a.truncated() != b.truncated()) {
    return false;
  }
  // Both trees are stored in deterministic BFS/port order, so structural
  // equality reduces to elementwise comparison (origins excluded).
  for (std::int32_t i = 0; i < a.size(); ++i) {
    const ViewNode& x = a.node(i);
    const ViewNode& y = b.node(i);
    if (x.type != y.type || x.parent != y.parent ||
        x.parent_port != y.parent_port || x.depth != y.depth ||
        x.degree != y.degree || x.constraint_degree != y.constraint_degree ||
        x.num_children != y.num_children) {
      return false;
    }
    // first_child is only meaningful through children(), i.e. when the node
    // has children: builders differ on what they leave in the field for
    // childless inner nodes (build_impl stamps the running cursor, the
    // assembler and the wire decoder leave 0), and that difference is not
    // structure.
    if (x.num_children != 0 && x.first_child != y.first_child) return false;
    if (std::abs(x.parent_coeff - y.parent_coeff) > 0.0) return false;
  }
  return true;
}

}  // namespace locmm
