#include "graph/comm_graph.hpp"

#include <deque>

namespace locmm {

const char* to_string(NodeType t) {
  switch (t) {
    case NodeType::kAgent: return "agent";
    case NodeType::kConstraint: return "constraint";
    case NodeType::kObjective: return "objective";
  }
  return "?";
}

CommGraph::CommGraph(const MaxMinInstance& inst)
    : num_agents_(inst.num_agents()),
      num_constraints_(inst.num_constraints()),
      num_objectives_(inst.num_objectives()) {
  const NodeId total = static_cast<NodeId>(num_agents_) + num_constraints_ +
                       num_objectives_;
  offsets_.assign(static_cast<std::size_t>(total) + 1, 0);
  constraint_degree_.assign(static_cast<std::size_t>(num_agents_), 0);

  // Degrees.
  for (AgentId v = 0; v < num_agents_; ++v) {
    const auto ic = inst.agent_constraints(v).size();
    const auto ik = inst.agent_objectives(v).size();
    offsets_[static_cast<std::size_t>(v) + 1] =
        static_cast<std::int64_t>(ic + ik);
    constraint_degree_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(ic);
  }
  for (ConstraintId i = 0; i < num_constraints_; ++i) {
    offsets_[static_cast<std::size_t>(constraint_node(i)) + 1] =
        static_cast<std::int64_t>(inst.constraint_row(i).size());
  }
  for (ObjectiveId k = 0; k < num_objectives_; ++k) {
    offsets_[static_cast<std::size_t>(objective_node(k)) + 1] =
        static_cast<std::int64_t>(inst.objective_row(k).size());
  }
  for (std::size_t n = 0; n + 1 < offsets_.size(); ++n)
    offsets_[n + 1] += offsets_[n];
  edges_.resize(static_cast<std::size_t>(offsets_.back()));

  // Fill in port order.
  for (AgentId v = 0; v < num_agents_; ++v) {
    auto pos = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    for (const Incidence& inc : inst.agent_constraints(v))
      edges_[pos++] = {constraint_node(inc.row), inc.coeff};
    for (const Incidence& inc : inst.agent_objectives(v))
      edges_[pos++] = {objective_node(inc.row), inc.coeff};
  }
  for (ConstraintId i = 0; i < num_constraints_; ++i) {
    auto pos = static_cast<std::size_t>(
        offsets_[static_cast<std::size_t>(constraint_node(i))]);
    for (const Entry& e : inst.constraint_row(i))
      edges_[pos++] = {agent_node(e.agent), e.coeff};
  }
  for (ObjectiveId k = 0; k < num_objectives_; ++k) {
    auto pos = static_cast<std::size_t>(
        offsets_[static_cast<std::size_t>(objective_node(k))]);
    for (const Entry& e : inst.objective_row(k))
      edges_[pos++] = {agent_node(e.agent), e.coeff};
  }
}

std::int32_t CommGraph::back_port(NodeId node, std::int32_t port) const {
  const NodeId to = neighbors(node)[static_cast<std::size_t>(port)].to;
  const auto to_neigh = neighbors(to);
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(to_neigh.size());
       ++q) {
    if (to_neigh[static_cast<std::size_t>(q)].to == node) return q;
  }
  LOCMM_CHECK_MSG(false, "asymmetric adjacency in CommGraph");
  return -1;
}

void CommGraph::set_edge_coefficient(NodeId row_node, NodeId agent,
                                     double coeff) {
  LOCMM_CHECK_MSG(type(row_node) != NodeType::kAgent &&
                      type(agent) == NodeType::kAgent,
                  "set_edge_coefficient wants (constraint|objective, agent), "
                  "got ("
                      << to_string(type(row_node)) << ", "
                      << to_string(type(agent)) << ")");
  auto patch = [&](NodeId from, NodeId to) {
    const auto base = static_cast<std::size_t>(offsets_[
        static_cast<std::size_t>(from)]);
    const auto deg = static_cast<std::size_t>(degree(from));
    for (std::size_t p = 0; p < deg; ++p) {
      if (edges_[base + p].to == to) {
        edges_[base + p].coeff = coeff;
        return true;
      }
    }
    return false;
  };
  LOCMM_CHECK_MSG(patch(row_node, agent) && patch(agent, row_node),
                  "set_edge_coefficient: no edge between node "
                      << row_node << " and agent " << agent);
}

std::vector<std::int32_t> CommGraph::bfs_distances(
    NodeId src, std::int32_t max_dist) const {
  return bfs_distances(std::span<const NodeId>(&src, 1), max_dist);
}

std::vector<std::int32_t> CommGraph::bfs_distances(
    std::span<const NodeId> sources, std::int32_t max_dist) const {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(num_nodes()), -1);
  std::deque<NodeId> queue;
  for (const NodeId src : sources) {
    LOCMM_CHECK(src >= 0 && src < num_nodes());
    if (dist[static_cast<std::size_t>(src)] == 0) continue;
    dist[static_cast<std::size_t>(src)] = 0;
    queue.push_back(src);
  }
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    const std::int32_t d = dist[static_cast<std::size_t>(node)];
    if (d >= max_dist) continue;
    for (const HalfEdge& e : neighbors(node)) {
      auto& dd = dist[static_cast<std::size_t>(e.to)];
      if (dd < 0) {
        dd = d + 1;
        queue.push_back(e.to);
      }
    }
  }
  return dist;
}

std::vector<NodeId> CommGraph::ball(NodeId src, std::int32_t max_dist) const {
  LOCMM_CHECK(src >= 0 && src < num_nodes());
  std::vector<std::int32_t> dist(static_cast<std::size_t>(num_nodes()), -1);
  dist[static_cast<std::size_t>(src)] = 0;
  std::vector<NodeId> order{src};
  std::size_t head = 0;
  while (head < order.size()) {
    const NodeId node = order[head++];
    const std::int32_t d = dist[static_cast<std::size_t>(node)];
    if (d >= max_dist) continue;
    for (const HalfEdge& e : neighbors(node)) {
      auto& dd = dist[static_cast<std::size_t>(e.to)];
      if (dd < 0) {
        dd = d + 1;
        order.push_back(e.to);
      }
    }
  }
  return order;
}

}  // namespace locmm
