#include "graph/comm_graph.hpp"

#include <algorithm>
#include <deque>

#include "lp/delta.hpp"

namespace locmm {

const char* to_string(NodeType t) {
  switch (t) {
    case NodeType::kAgent: return "agent";
    case NodeType::kConstraint: return "constraint";
    case NodeType::kObjective: return "objective";
  }
  return "?";
}

namespace {

// Adjacency row builders shared by the constructor and apply_delta, so a
// spliced row is byte-for-byte what a fresh construction would produce.
void agent_adjacency(const CommGraph& g, const MaxMinInstance& inst, AgentId v,
                     std::vector<HalfEdge>& out) {
  out.clear();
  for (const Incidence& inc : inst.agent_constraints(v))
    out.push_back({g.constraint_node(inc.row), inc.coeff});
  for (const Incidence& inc : inst.agent_objectives(v))
    out.push_back({g.objective_node(inc.row), inc.coeff});
}

void row_adjacency(const CommGraph& g, std::span<const Entry> row,
                   std::vector<HalfEdge>& out) {
  out.clear();
  for (const Entry& e : row) out.push_back({g.agent_node(e.agent), e.coeff});
}

}  // namespace

CommGraph::CommGraph(const MaxMinInstance& inst)
    : num_agents_(inst.num_agents()),
      num_constraints_(inst.num_constraints()),
      num_objectives_(inst.num_objectives()) {
  constraint_degree_.assign(static_cast<std::size_t>(num_agents_), 0);

  // One adjacency row per node, in port order (agents: constraints first,
  // then objectives; rows: their entries).
  std::vector<HalfEdge> row;
  for (AgentId v = 0; v < num_agents_; ++v) {
    agent_adjacency(*this, inst, v, row);
    adj_.append_row(row);
    constraint_degree_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(inst.agent_constraints(v).size());
  }
  for (ConstraintId i = 0; i < num_constraints_; ++i) {
    row_adjacency(*this, inst.constraint_row(i), row);
    adj_.append_row(row);
  }
  for (ObjectiveId k = 0; k < num_objectives_; ++k) {
    row_adjacency(*this, inst.objective_row(k), row);
    adj_.append_row(row);
  }
}

void CommGraph::apply_delta(const InstanceDelta& delta,
                            const MaxMinInstance& inst) {
  LOCMM_CHECK_MSG(inst.num_agents() == num_agents_ &&
                      inst.num_constraints() == num_constraints_ &&
                      inst.num_objectives() == num_objectives_,
                  "apply_delta: node counts changed");
  std::vector<NodeId> nodes;
  delta.for_each_touched_edge([&](RowKind k, std::int32_t r, AgentId agent) {
    nodes.push_back(k == RowKind::kConstraint ? constraint_node(r)
                                              : objective_node(r));
    nodes.push_back(agent_node(agent));
  });
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::vector<HalfEdge> row;
  for (const NodeId node : nodes) {
    switch (type(node)) {
      case NodeType::kAgent: {
        const auto v = static_cast<AgentId>(node);
        agent_adjacency(*this, inst, v, row);
        constraint_degree_[static_cast<std::size_t>(v)] =
            static_cast<std::int32_t>(inst.agent_constraints(v).size());
        break;
      }
      case NodeType::kConstraint:
        row_adjacency(*this, inst.constraint_row(class_index(node)), row);
        break;
      case NodeType::kObjective:
        row_adjacency(*this, inst.objective_row(class_index(node)), row);
        break;
    }
    adj_.assign_row(static_cast<std::size_t>(node), row);
  }
}

std::int32_t CommGraph::back_port(NodeId node, std::int32_t port) const {
  const NodeId to = neighbors(node)[static_cast<std::size_t>(port)].to;
  const auto to_neigh = neighbors(to);
  for (std::int32_t q = 0; q < static_cast<std::int32_t>(to_neigh.size());
       ++q) {
    if (to_neigh[static_cast<std::size_t>(q)].to == node) return q;
  }
  LOCMM_CHECK_MSG(false, "asymmetric adjacency in CommGraph");
  return -1;
}

void CommGraph::set_edge_coefficient(NodeId row_node, NodeId agent,
                                     double coeff) {
  LOCMM_CHECK_MSG(type(row_node) != NodeType::kAgent &&
                      type(agent) == NodeType::kAgent,
                  "set_edge_coefficient wants (constraint|objective, agent), "
                  "got ("
                      << to_string(type(row_node)) << ", "
                      << to_string(type(agent)) << ")");
  auto patch = [&](NodeId from, NodeId to) {
    for (HalfEdge& e : adj_.mutable_row(static_cast<std::size_t>(from))) {
      if (e.to == to) {
        e.coeff = coeff;
        return true;
      }
    }
    return false;
  };
  LOCMM_CHECK_MSG(patch(row_node, agent) && patch(agent, row_node),
                  "set_edge_coefficient: no edge between node "
                      << row_node << " and agent " << agent);
}

std::vector<std::int32_t> CommGraph::bfs_distances(
    NodeId src, std::int32_t max_dist) const {
  return bfs_distances(std::span<const NodeId>(&src, 1), max_dist);
}

std::vector<std::int32_t> CommGraph::bfs_distances(
    std::span<const NodeId> sources, std::int32_t max_dist) const {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(num_nodes()), -1);
  std::deque<NodeId> queue;
  for (const NodeId src : sources) {
    LOCMM_CHECK(src >= 0 && src < num_nodes());
    if (dist[static_cast<std::size_t>(src)] == 0) continue;
    dist[static_cast<std::size_t>(src)] = 0;
    queue.push_back(src);
  }
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    const std::int32_t d = dist[static_cast<std::size_t>(node)];
    if (d >= max_dist) continue;
    for (const HalfEdge& e : neighbors(node)) {
      auto& dd = dist[static_cast<std::size_t>(e.to)];
      if (dd < 0) {
        dd = d + 1;
        queue.push_back(e.to);
      }
    }
  }
  return dist;
}

std::vector<NodeId> CommGraph::ball(NodeId src, std::int32_t max_dist) const {
  LOCMM_CHECK(src >= 0 && src < num_nodes());
  std::vector<std::int32_t> dist(static_cast<std::size_t>(num_nodes()), -1);
  dist[static_cast<std::size_t>(src)] = 0;
  std::vector<NodeId> order{src};
  std::size_t head = 0;
  while (head < order.size()) {
    const NodeId node = order[head++];
    const std::int32_t d = dist[static_cast<std::size_t>(node)];
    if (d >= max_dist) continue;
    for (const HalfEdge& e : neighbors(node)) {
      auto& dd = dist[static_cast<std::size_t>(e.to)];
      if (dd < 0) {
        dd = d + 1;
        order.push_back(e.to);
      }
    }
  }
  return order;
}

}  // namespace locmm
