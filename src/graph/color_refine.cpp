#include "graph/color_refine.hpp"

#include <unordered_map>
#include <utility>

#include "support/hash.hpp"

namespace locmm {

namespace {

// Seeds of the two independent colour streams.
constexpr std::uint64_t kSeedA = 0x517cc1b727220a95ull;
constexpr std::uint64_t kSeedB = 0x2545f4914f6cdd1dull;

struct Color {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const Color&) const = default;
};

struct ColorHash {
  std::size_t operator()(const Color& c) const {
    return static_cast<std::size_t>(hash_combine(c.a, c.b));
  }
};

// Counts the distinct colours over all nodes (the partition size; refinement
// only splits, so an unchanged count means a stable partition).
std::int64_t count_classes(const std::vector<Color>& colors) {
  std::unordered_map<Color, std::int32_t, ColorHash> seen;
  seen.reserve(colors.size());
  for (const Color& c : colors) seen.emplace(c, 0);
  return static_cast<std::int64_t>(seen.size());
}

}  // namespace

ViewClasses refine_view_classes(const CommGraph& g, std::int32_t depth,
                                bool full_depth) {
  LOCMM_CHECK(depth >= 0);
  const auto n = static_cast<std::size_t>(g.num_nodes());

  // Back ports: for the neighbour u at port p of v, the port at u leading
  // back to v (part of the view structure -- the child's parent_port).
  // Resolved by the same CommGraph::back_port the view build uses, so the
  // WL colours and the materialized views can never disagree on it.
  std::vector<std::int64_t> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets[v + 1] =
        offsets[v] + g.degree(static_cast<NodeId>(v));
  }
  std::vector<std::int32_t> back_port(static_cast<std::size_t>(offsets[n]));
  for (std::size_t v = 0; v < n; ++v) {
    const auto deg = g.degree(static_cast<NodeId>(v));
    for (std::int32_t p = 0; p < deg; ++p) {
      back_port[static_cast<std::size_t>(offsets[v]) +
                static_cast<std::size_t>(p)] =
          g.back_port(static_cast<NodeId>(v), p);
    }
  }

  // c_0: the node's own local input.
  std::vector<Color> cur(n), next(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto node = static_cast<NodeId>(v);
    const auto type = static_cast<std::uint64_t>(g.type(node));
    const auto deg = static_cast<std::uint64_t>(g.degree(node));
    const std::uint64_t cdeg =
        g.type(node) == NodeType::kAgent
            ? static_cast<std::uint64_t>(g.constraint_degree(node))
            : 0;
    cur[v].a = hash_combine(hash_combine(hash_combine(kSeedA, type), deg),
                            cdeg);
    cur[v].b = hash_combine(hash_combine(hash_combine(kSeedB, type), deg),
                            cdeg);
  }

  // With full_depth, the hash streams run for ALL `depth` rounds -- never
  // cut short -- so the final colours fingerprint the full depth-`depth`
  // unfolding.  Within one instance the stable partition argument lets them
  // stop at stabilization (the !full_depth mode), but full-depth colours
  // double as cross-solve cache keys (ViewClassCache::color_key), and a
  // depth-t colour of a round-t-stable partition does NOT determine the
  // depth-D view of agents from a *different* instance: two instances can
  // stabilize at the same t with agents whose depth-t unfoldings coincide
  // while the depth-D ones differ.  The class-splitting bookkeeping
  // (count_classes) always stops early either way: a stable partition
  // cannot split again, so the remaining full-depth rounds cost one O(|E|)
  // hash sweep each and no hash-map work.
  ViewClasses out;
  std::int64_t classes = count_classes(cur);
  for (std::int32_t round = 0; round < depth; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      const auto neigh = g.neighbors(static_cast<NodeId>(v));
      Color h = cur[v];  // fold the previous colour in: refinement-only
      for (std::size_t p = 0; p < neigh.size(); ++p) {
        const auto u = static_cast<std::size_t>(neigh[p].to);
        const auto bp = static_cast<std::uint64_t>(
            back_port[static_cast<std::size_t>(offsets[v]) + p]);
        const std::uint64_t coeff = coeff_bits_exact(neigh[p].coeff);
        h.a = hash_combine(hash_combine(hash_combine(h.a, cur[u].a), bp),
                           coeff);
        h.b = hash_combine(hash_combine(hash_combine(h.b, cur[u].b), bp),
                           coeff);
      }
      next[v] = h;
    }
    cur.swap(next);
    out.rounds = round + 1;
    if (!out.stabilized) {
      const std::int64_t now = count_classes(cur);
      LOCMM_DCHECK(now >= classes);
      if (now == classes) {
        out.stabilized = true;
        out.stable_rounds = round + 1;
        if (!full_depth) break;
      } else {
        classes = now;
      }
    }
  }
  if (!out.stabilized) out.stable_rounds = out.rounds;

  // Dense agent classes in first-seen order over agent ids.
  const auto agents = static_cast<std::size_t>(g.num_agents());
  out.class_of.assign(agents, -1);
  std::unordered_map<Color, std::int32_t, ColorHash> ids;
  ids.reserve(agents);
  for (std::size_t v = 0; v < agents; ++v) {
    const Color& c = cur[static_cast<std::size_t>(
        g.agent_node(static_cast<AgentId>(v)))];
    auto [it, inserted] =
        ids.emplace(c, static_cast<std::int32_t>(out.representative.size()));
    if (inserted) {
      out.representative.push_back(static_cast<AgentId>(v));
      out.class_size.push_back(0);
      out.color_a.push_back(c.a);
      out.color_b.push_back(c.b);
    }
    out.class_of[v] = it->second;
    ++out.class_size[static_cast<std::size_t>(it->second)];
  }
  return out;
}

}  // namespace locmm
