#include "graph/color_refine.hpp"

#include <unordered_map>
#include <utility>

#include "support/hash.hpp"
#include "support/thread_pool.hpp"

namespace locmm {

namespace {

// Seeds of the two independent colour streams.
constexpr std::uint64_t kSeedA = 0x517cc1b727220a95ull;
constexpr std::uint64_t kSeedB = 0x2545f4914f6cdd1dull;

using Color = ColorPair;  // the shared key type of color_refine.hpp
using ColorHash = ColorPairHash;

// The two pieces of the recurrence, shared verbatim by the whole-graph
// refinement and the cone-restricted refine_agent_colors so the two can
// never diverge: colours are only comparable across the two paths (and
// across solves, via ViewClassCache::color_key) if every round hashes the
// identical byte sequence.
Color initial_color(const CommGraph& g, NodeId node) {
  const auto type = static_cast<std::uint64_t>(g.type(node));
  const auto deg = static_cast<std::uint64_t>(g.degree(node));
  const std::uint64_t cdeg =
      g.type(node) == NodeType::kAgent
          ? static_cast<std::uint64_t>(g.constraint_degree(node))
          : 0;
  Color c;
  c.a = hash_combine(hash_combine(hash_combine(kSeedA, type), deg), cdeg);
  c.b = hash_combine(hash_combine(hash_combine(kSeedB, type), deg), cdeg);
  return c;
}

void fold_neighbor(Color& h, const Color& u, std::uint64_t back_port,
                   std::uint64_t coeff_bits) {
  h.a = hash_combine(hash_combine(hash_combine(h.a, u.a), back_port),
                     coeff_bits);
  h.b = hash_combine(hash_combine(hash_combine(h.b, u.b), back_port),
                     coeff_bits);
}

// Counts the distinct colours over all nodes (the partition size; refinement
// only splits, so an unchanged count means a stable partition).
std::int64_t count_classes(const std::vector<Color>& colors) {
  std::unordered_map<Color, std::int32_t, ColorHash> seen;
  seen.reserve(colors.size());
  for (const Color& c : colors) seen.emplace(c, 0);
  return static_cast<std::int64_t>(seen.size());
}

}  // namespace

ViewClasses refine_view_classes(const CommGraph& g, std::int32_t depth,
                                bool full_depth) {
  LOCMM_CHECK(depth >= 0);
  const auto n = static_cast<std::size_t>(g.num_nodes());

  // Back ports: for the neighbour u at port p of v, the port at u leading
  // back to v (part of the view structure -- the child's parent_port).
  // Resolved by the same CommGraph::back_port the view build uses, so the
  // WL colours and the materialized views can never disagree on it.
  std::vector<std::int64_t> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets[v + 1] =
        offsets[v] + g.degree(static_cast<NodeId>(v));
  }
  std::vector<std::int32_t> back_port(static_cast<std::size_t>(offsets[n]));
  for (std::size_t v = 0; v < n; ++v) {
    const auto deg = g.degree(static_cast<NodeId>(v));
    for (std::int32_t p = 0; p < deg; ++p) {
      back_port[static_cast<std::size_t>(offsets[v]) +
                static_cast<std::size_t>(p)] =
          g.back_port(static_cast<NodeId>(v), p);
    }
  }

  // c_0: the node's own local input.
  std::vector<Color> cur(n), next(n);
  for (std::size_t v = 0; v < n; ++v) {
    cur[v] = initial_color(g, static_cast<NodeId>(v));
  }

  // With full_depth, the hash streams run for ALL `depth` rounds -- never
  // cut short -- so the final colours fingerprint the full depth-`depth`
  // unfolding.  Within one instance the stable partition argument lets them
  // stop at stabilization (the !full_depth mode), but full-depth colours
  // double as cross-solve cache keys (ViewClassCache::color_key), and a
  // depth-t colour of a round-t-stable partition does NOT determine the
  // depth-D view of agents from a *different* instance: two instances can
  // stabilize at the same t with agents whose depth-t unfoldings coincide
  // while the depth-D ones differ.  The class-splitting bookkeeping
  // (count_classes) always stops early either way: a stable partition
  // cannot split again, so the remaining full-depth rounds cost one O(|E|)
  // hash sweep each and no hash-map work.
  ViewClasses out;
  std::int64_t classes = count_classes(cur);
  for (std::int32_t round = 0; round < depth; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      const auto neigh = g.neighbors(static_cast<NodeId>(v));
      Color h = cur[v];  // fold the previous colour in: refinement-only
      for (std::size_t p = 0; p < neigh.size(); ++p) {
        const auto u = static_cast<std::size_t>(neigh[p].to);
        const auto bp = static_cast<std::uint64_t>(
            back_port[static_cast<std::size_t>(offsets[v]) + p]);
        fold_neighbor(h, cur[u], bp, coeff_bits_exact(neigh[p].coeff));
      }
      next[v] = h;
    }
    cur.swap(next);
    out.rounds = round + 1;
    if (!out.stabilized) {
      const std::int64_t now = count_classes(cur);
      LOCMM_DCHECK(now >= classes);
      if (now == classes) {
        out.stabilized = true;
        out.stable_rounds = round + 1;
        if (!full_depth) break;
      } else {
        classes = now;
      }
    }
  }
  if (!out.stabilized) out.stable_rounds = out.rounds;

  // Dense agent classes in first-seen order over agent ids.
  const auto agents = static_cast<std::size_t>(g.num_agents());
  out.class_of.assign(agents, -1);
  std::unordered_map<Color, std::int32_t, ColorHash> ids;
  ids.reserve(agents);
  for (std::size_t v = 0; v < agents; ++v) {
    const Color& c = cur[static_cast<std::size_t>(
        g.agent_node(static_cast<AgentId>(v)))];
    auto [it, inserted] =
        ids.emplace(c, static_cast<std::int32_t>(out.representative.size()));
    if (inserted) {
      out.representative.push_back(static_cast<AgentId>(v));
      out.class_size.push_back(0);
      out.color_a.push_back(c.a);
      out.color_b.push_back(c.b);
    }
    out.class_of[v] = it->second;
    ++out.class_size[static_cast<std::size_t>(it->second)];
  }
  return out;
}

PartialColors refine_agent_colors(const CommGraph& g, std::int32_t depth,
                                  std::span<const AgentId> agents,
                                  std::size_t threads) {
  LOCMM_CHECK(depth >= 0);
  PartialColors out;
  out.agents.assign(agents.begin(), agents.end());
  out.color_a.resize(agents.size());
  out.color_b.resize(agents.size());
  if (agents.empty()) return out;

  // Region R = ball(agents, depth), discovered by multi-source BFS; `local`
  // maps a region node to its index in `region` (everything below indexes
  // region-locally, so the whole call costs O(|R|), not O(|V|)).
  std::unordered_map<NodeId, std::int32_t> local;
  std::vector<NodeId> region;
  auto visit = [&](NodeId u) -> bool {
    const auto [it, inserted] =
        local.emplace(u, static_cast<std::int32_t>(region.size()));
    if (inserted) region.push_back(u);
    return inserted;
  };
  std::vector<NodeId> frontier, next_frontier;
  for (const AgentId v : agents) {
    LOCMM_CHECK(v >= 0 && v < g.num_agents());
    if (visit(g.agent_node(v))) frontier.push_back(g.agent_node(v));
  }
  for (std::int32_t dist = 0; dist < depth && !frontier.empty(); ++dist) {
    for (const NodeId u : frontier) {
      for (const HalfEdge& e : g.neighbors(u)) {
        if (visit(e.to)) next_frontier.push_back(e.to);
      }
    }
    frontier.swap(next_frontier);
    next_frontier.clear();
  }
  out.region_nodes = static_cast<std::int64_t>(region.size());

  // Region-local adjacency: neighbour's local index (-1 when it lies outside
  // the region), back port and exact coefficient bits, exactly the inputs of
  // the whole-graph recurrence.
  std::vector<std::int64_t> offsets(region.size() + 1, 0);
  for (std::size_t i = 0; i < region.size(); ++i) {
    offsets[i + 1] = offsets[i] + g.degree(region[i]);
  }
  std::vector<std::int32_t> nbr_local(static_cast<std::size_t>(offsets.back()));
  std::vector<std::uint64_t> nbr_bp(nbr_local.size());
  std::vector<std::uint64_t> nbr_coeff(nbr_local.size());
  // Each region index fills only its own slot range reading the shared
  // `local` map, so the build is data-parallel over the cone.
  parallel_for(region.size(), threads, [&](std::size_t i) {
    const NodeId u = region[i];
    const auto neigh = g.neighbors(u);
    for (std::size_t p = 0; p < neigh.size(); ++p) {
      const auto slot = static_cast<std::size_t>(offsets[i]) + p;
      const auto it = local.find(neigh[p].to);
      nbr_local[slot] = it == local.end() ? -1 : it->second;
      nbr_bp[slot] = static_cast<std::uint64_t>(
          g.back_port(u, static_cast<std::int32_t>(p)));
      nbr_coeff[slot] = coeff_bits_exact(neigh[p].coeff);
    }
  });

  std::vector<Color> cur(region.size()), next(region.size());
  for (std::size_t i = 0; i < region.size(); ++i) {
    cur[i] = initial_color(g, region[i]);
  }
  // Out-of-region neighbours fold a fixed placeholder: the node reading one
  // sits at region-boundary distance, so its colour is outside every seed
  // agent's dependency cone (see the header preamble) and never surfaces.
  //
  // Each sweep reads `cur` and writes next[i] only, so the rounds run
  // data-parallel too -- same bytes hashed in the same per-node order,
  // bitwise identical to the serial sweep for any thread count.
  const Color placeholder{};
  for (std::int32_t round = 0; round < depth; ++round) {
    parallel_for(region.size(), threads, [&](std::size_t i) {
      Color h = cur[i];
      for (std::int64_t j = offsets[i]; j < offsets[i + 1]; ++j) {
        const std::int32_t u = nbr_local[static_cast<std::size_t>(j)];
        fold_neighbor(h,
                      u >= 0 ? cur[static_cast<std::size_t>(u)] : placeholder,
                      nbr_bp[static_cast<std::size_t>(j)],
                      nbr_coeff[static_cast<std::size_t>(j)]);
      }
      next[i] = h;
    });
    cur.swap(next);
  }

  for (std::size_t i = 0; i < agents.size(); ++i) {
    const Color& c = cur[static_cast<std::size_t>(
        local.at(g.agent_node(agents[static_cast<std::size_t>(i)])))];
    out.color_a[i] = c.a;
    out.color_b[i] = c.b;
  }
  return out;
}

}  // namespace locmm
