// deadline.hpp -- cooperative per-request compute budgets.
//
// A Deadline is a cancellation token the serving layer threads through a
// re-solve: long-running stages call tick()/check() at natural boundaries
// (per pipeline stage, per view-class evaluation) and abandon the work with
// DeadlineExceeded once the budget is gone.  The exception deliberately does
// NOT derive from CheckError: running out of time is a normal, contained
// serving outcome (the caller keeps the last committed state and repairs
// later), not a violated invariant.
//
// Two expiry modes:
//   * after_us(budget) -- wall-clock, what production serving uses;
//   * at_check(n)      -- deterministic, expires on the n-th tick()
//                         (0-based), so tests can drive an abandonment into
//                         every abort point of a transactional apply and
//                         prove the rollback bitwise, without racing a
//                         clock.
// The tick counter is atomic: ticks may come from thread-pool workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace locmm {

// Thrown by deadline-aware stages when the budget expires.  The operation
// that threw is required to leave its state as if never started (the
// transactional-apply contract of dynamic/incremental_solver.hpp).
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

class Deadline {
 public:
  Deadline() = default;
  // The atomic tick counter would otherwise delete these; copying carries
  // the count over so a copied deadline keeps the same remaining budget.
  Deadline(const Deadline& o)
      : at_(o.at_),
        timed_(o.timed_),
        expire_at_check_(o.expire_at_check_),
        checks_(o.checks_.load(std::memory_order_relaxed)) {}
  Deadline& operator=(const Deadline& o) {
    at_ = o.at_;
    timed_ = o.timed_;
    expire_at_check_ = o.expire_at_check_;
    checks_.store(o.checks_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  // Wall-clock budget from now.  A non-positive budget is already expired.
  static Deadline after_us(double budget_us) {
    Deadline d;
    d.timed_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::micro>(
                    budget_us > 0.0 ? budget_us : 0.0));
    return d;
  }

  // Deterministic expiry on the n-th tick() (0-based): at_check(0) expires
  // on the very first tick, at_check(2) lets two ticks pass.  Test-oriented.
  static Deadline at_check(std::int64_t n) {
    Deadline d;
    d.expire_at_check_ = n;
    return d;
  }

  // Counts one budget probe and reports whether the deadline has passed.
  // Never throws; parallel workers use this to set a shared abort flag.
  bool tick() const {
    const std::int64_t seen = checks_.fetch_add(1, std::memory_order_relaxed);
    if (expire_at_check_ >= 0 && seen >= expire_at_check_) return true;
    return timed_ && std::chrono::steady_clock::now() >= at_;
  }

  // tick() + throw: stage boundaries in single-threaded control flow.
  void check(const char* stage) const {
    if (tick()) {
      throw DeadlineExceeded(std::string("deadline exceeded at ") + stage);
    }
  }

  std::int64_t ticks() const { return checks_.load(std::memory_order_relaxed); }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool timed_ = false;
  std::int64_t expire_at_check_ = -1;
  mutable std::atomic<std::int64_t> checks_{0};
};

}  // namespace locmm
