#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace locmm {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  LOCMM_CHECK(n_ > 0);
  return mean_;
}

double Accumulator::variance() const {
  LOCMM_CHECK(n_ > 0);
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  LOCMM_CHECK(n_ > 0);
  return min_;
}

double Accumulator::max() const {
  LOCMM_CHECK(n_ > 0);
  return max_;
}

double quantile(std::vector<double> sample, double q) {
  LOCMM_CHECK(!sample.empty());
  LOCMM_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

}  // namespace locmm
