#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

#include "support/check.hpp"

namespace locmm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t nthreads = workers_.size();
  if (nthreads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Oversubscribe chunks 4x relative to threads so uneven per-agent work
  // (view sizes vary) load-balances without a dynamic counter per index.
  const std::size_t chunks = std::min(n, nthreads * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  struct Shared {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto shared = std::make_shared<Shared>();
  std::size_t actual_chunks = 0;
  for (std::size_t lo = 0; lo < n; lo += chunk_size) ++actual_chunks;
  shared->remaining.store(actual_chunks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t lo = 0; lo < n; lo += chunk_size) {
      const std::size_t hi = std::min(lo + chunk_size, n);
      queue_.push([shared, lo, hi, &body] {
        try {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(shared->error_mutex);
          if (!shared->error) shared->error = std::current_exception();
        }
        if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> dlock(shared->done_mutex);
          shared->done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(shared->done_mutex);
  shared->done_cv.wait(lock, [&] {
    return shared->remaining.load(std::memory_order_acquire) == 0;
  });
  if (shared->error) std::rethrow_exception(shared->error);
}

ThreadPool& ThreadPool::global(std::size_t threads) {
  static std::unique_ptr<ThreadPool> pool;
  static std::mutex m;
  std::lock_guard<std::mutex> lock(m);
  if (!pool || (threads != 0 && pool->thread_count() != threads)) {
    pool = std::make_unique<ThreadPool>(threads);
  }
  return *pool;
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool::global(threads).parallel_for(n, body);
}

}  // namespace locmm
