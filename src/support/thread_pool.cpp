#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

#include "support/check.hpp"

namespace locmm {

namespace {
// The pool (if any) whose worker is running the current thread.  Set once
// per worker at startup; parallel_for consults it to detect re-entrant use.
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t nthreads = workers_.size();
  // Re-entrant call from one of this pool's own workers: run inline.  The
  // queue-and-wait path would deadlock here -- the caller is a worker, so
  // once every worker is a blocked caller nobody is left to drain the queue
  // (exactly what a SyncNetwork round does when a node program's receive
  // calls back into parallel_for).  The caller's siblings are already
  // spreading the *outer* loop across the pool, so inline execution loses
  // no parallelism.
  if (tls_worker_pool == this || nthreads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Dynamic work distribution: one queue entry per worker, each draining a
  // shared atomic index.  Per-index cost varies by orders of magnitude in
  // the per-agent loops (view sizes differ between graph core and
  // periphery), so static chunking leaves workers idle; a fetch-add per
  // index costs nanoseconds next to any body we run.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> failed{false};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto shared = std::make_shared<Shared>();
  const std::size_t tasks = std::min(n, nthreads);
  shared->remaining.store(tasks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t t = 0; t < tasks; ++t) {
      queue_.push([shared, n, &body] {
        try {
          for (;;) {
            if (shared->failed.load(std::memory_order_relaxed)) break;
            const std::size_t i =
                shared->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) break;
            body(i);
          }
        } catch (...) {
          shared->failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> elock(shared->error_mutex);
          if (!shared->error) shared->error = std::current_exception();
        }
        if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> dlock(shared->done_mutex);
          shared->done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(shared->done_mutex);
  shared->done_cv.wait(lock, [&] {
    return shared->remaining.load(std::memory_order_acquire) == 0;
  });
  if (shared->error) std::rethrow_exception(shared->error);
}

std::shared_ptr<ThreadPool> ThreadPool::global(std::size_t threads) {
  static std::shared_ptr<ThreadPool> pool;
  static std::mutex m;
  std::lock_guard<std::mutex> lock(m);
  if (!pool || (threads != 0 && pool->thread_count() != threads)) {
    // Swap, never destroy in place: earlier callers may still hold the old
    // pool through their shared_ptr, and it stays alive for them.
    pool = std::make_shared<ThreadPool>(threads);
  }
  return pool;
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Keep a reference for the duration of the loop so a concurrent
  // global(other_count) cannot destroy the pool under us.
  const std::shared_ptr<ThreadPool> pool = ThreadPool::global(threads);
  pool->parallel_for(n, body);
}

}  // namespace locmm
