// table.hpp -- fixed-width ASCII tables for the experiment harness.
//
// Every bench binary prints the rows/series of its experiment through this
// printer so that EXPERIMENTS.md and bench_output.txt stay uniform and
// diffable across runs.
#pragma once

#include <string>
#include <type_traits>
#include <vector>

namespace locmm {

class Table {
 public:
  explicit Table(std::string title);

  // Column headers; must be set before any row.
  void columns(std::vector<std::string> names);

  // Append a row of preformatted cells (use cell() helpers below).
  void row(std::vector<std::string> cells);

  // Free-form annotation printed under the table.
  void note(std::string text);

  // Renders to a string; print() writes to stdout.
  std::string render() const;
  void print() const;

  // Cell formatting helpers.
  static std::string cell(double value, int precision = 4);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string cell(T value) {
    return std::to_string(value);
  }
  static std::string cell(const char* s);
  static std::string cell(const std::string& s);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace locmm
