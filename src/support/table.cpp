#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "support/check.hpp"

namespace locmm {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::columns(std::vector<std::string> names) {
  LOCMM_CHECK_MSG(rows_.empty(), "columns() must precede rows");
  columns_ = std::move(names);
}

void Table::row(std::vector<std::string> cells) {
  LOCMM_CHECK_MSG(cells.size() == columns_.size(),
                  "row width " << cells.size() << " != column count "
                               << columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::note(std::string text) { notes_.push_back(std::move(text)); }

std::string Table::render() const {
  std::vector<std::size_t> width(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& r : rows_) width[c] = std::max(width[c], r[c].size());
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      for (std::size_t p = cells[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-");
      for (std::size_t p = 0; p < width[c]; ++p) os << '-';
    }
    os << "-|\n";
  };

  if (!columns_.empty()) {
    emit_rule();
    emit_row(columns_);
    emit_rule();
    for (const auto& r : rows_) emit_row(r);
    emit_rule();
  }
  for (const auto& n : notes_) os << "  note: " << n << "\n";
  return os.str();
}

void Table::print() const { std::cout << render() << std::flush; }

std::string Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::cell(const char* s) { return std::string(s); }
std::string Table::cell(const std::string& s) { return s; }

}  // namespace locmm
