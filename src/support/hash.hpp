// hash.hpp -- deterministic 64-bit mixing for structural fingerprints.
//
// The canonicalization layer (graph/view_tree.hpp canonical hashes,
// graph/color_refine.hpp WL colours, core/view_class_cache.hpp keys) needs a
// fast, seedable, platform-independent hash.  std::hash is none of those
// (identity on integers under libstdc++, unspecified elsewhere), so we use
// the splitmix64 finalizer as the mixer.  Nothing here is cryptographic;
// collisions are arbitrated by exact structural comparison wherever a wrong
// merge could change results (see ViewClassCache), and 128-bit double
// hashing bounds the residual risk where full verification is impractical.
#pragma once

#include <bit>
#include <cstdint>

namespace locmm {

// splitmix64 finalizer: a fast, well-distributed 64 -> 64 bijection.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Sequential combiner: order-sensitive (hash_combine(a, b) != of (b, a)),
// which is what port-ordered structures need.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                       (seed >> 2)));
}

// Exact bit pattern of a coefficient, with -0.0 folded into +0.0 so that
// arithmetically equal edges always hash equal.  Used where a hash merge is
// acted on without structural verification (WL colours).
inline std::uint64_t coeff_bits_exact(double c) {
  if (c == 0.0) c = 0.0;  // -0.0 == 0.0, so this normalizes the sign bit
  return std::bit_cast<std::uint64_t>(c);
}

// Raw bit pattern of a double, -0.0 kept distinct from +0.0.  This is the
// fold for *wire checksums* (dist/fault.hpp: message_checksum), where the
// sign of zero is a payload bit like any other and a single-bit corruption
// must always change the digest -- the opposite contract from
// coeff_bits_exact, whose callers want arithmetically equal coefficients to
// hash equal.
inline std::uint64_t payload_bits(double c) {
  return std::bit_cast<std::uint64_t>(c);
}

// Quantized bit pattern: the low 12 mantissa bits are truncated, grouping
// coefficients equal up to ~2^-40 relative under one hash.  Only safe where
// an exact arbiter runs on hash equality: ViewTree::canonical_hash buckets
// are verified with structurally_equal (exact doubles) when the
// representative copy is resident, and with the exact-coefficient
// secondary_hash stream otherwise -- so quantization can only cost extra
// comparisons, never a wrong merge.
inline std::uint64_t coeff_bits_quantized(double c) {
  return coeff_bits_exact(c) & ~0xFFFull;
}

}  // namespace locmm
