// thread_pool.hpp -- fixed-size worker pool with a blocking parallel_for.
//
// The local algorithm is embarrassingly parallel over agents (each agent's
// computation reads only its own local view), so the only parallel primitive
// the library needs is a blocking parallel loop.  Per-agent cost varies by
// orders of magnitude (view sizes differ wildly between the core and the
// periphery of a graph), so the loop hands out indices through a dynamic
// atomic counter: each worker claims the next index when it finishes the
// previous one, which load-balances without any static chunking choice.
// Results are written to per-index slots by the caller, so the schedule
// cannot affect the output -- a requirement for the reproducibility tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace locmm {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Runs body(i) for every i in [0, n); blocks until all complete.
  // Exceptions thrown by body are captured and the first one is rethrown
  // on the calling thread after the loop drains (remaining indices may be
  // skipped once a failure is recorded).
  //
  // Safe to call from inside a body running on this same pool: re-entrant
  // calls are detected (thread-local worker marker) and run inline on the
  // calling worker instead of enqueueing -- the queue-and-wait path would
  // deadlock once every worker is a blocked nested caller, which is what a
  // SyncNetwork round does when a node program calls back into the library.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // Process-wide pool, created on first use.  `threads` is honoured only by
  // the first call; later calls with a different request swap in a new pool
  // (benches use this to sweep thread counts).  Callers receive shared
  // ownership, so a pool that is still in use elsewhere survives the swap --
  // holding the returned shared_ptr across a resize is safe (it used to be a
  // dangling reference).
  static std::shared_ptr<ThreadPool> global(std::size_t threads = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience wrapper over the global pool.  threads == 1 runs inline on the
// calling thread (no pool involvement), which keeps single-thread timings
// honest in the scaling benches.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace locmm
