// check.hpp -- runtime invariant checking for locmm.
//
// LOCMM_CHECK is active in all build types: the library validates its inputs
// and internal invariants unconditionally (the cost is negligible next to the
// algorithmic work, and silent corruption of an approximation experiment is
// far more expensive than a branch).  LOCMM_DCHECK compiles out in NDEBUG
// builds and is reserved for hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace locmm {

// Thrown on any violated precondition or internal invariant.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "LOCMM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace locmm

#define LOCMM_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr))                                                         \
      ::locmm::detail::check_fail(#expr, __FILE__, __LINE__, "");        \
  } while (0)

#define LOCMM_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream locmm_os_;                                      \
      locmm_os_ << msg;                                                  \
      ::locmm::detail::check_fail(#expr, __FILE__, __LINE__,             \
                                  locmm_os_.str());                      \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define LOCMM_DCHECK(expr) ((void)0)
#else
#define LOCMM_DCHECK(expr) LOCMM_CHECK(expr)
#endif
