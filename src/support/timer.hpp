// timer.hpp -- monotonic wall-clock timing for benches and examples.
#pragma once

#include <chrono>

namespace locmm {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace locmm
