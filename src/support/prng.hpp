// prng.hpp -- deterministic pseudo-random number generation.
//
// All randomness in locmm flows through Xoshiro256** seeded via SplitMix64,
// so every generated instance, workload and experiment is reproducible from
// a single 64-bit seed.  We deliberately avoid std::mt19937 plus
// std::uniform_*_distribution: their outputs are not specified bit-for-bit
// across standard library implementations, which would make "same seed, same
// experiment" false across toolchains.
#pragma once

#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace locmm {

// SplitMix64: used to expand one seed into the Xoshiro state.
// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: the workhorse generator.
// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators", ACM TOMS 2021.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // An all-zero state is a fixed point; SplitMix64 cannot emit four zero
    // outputs in a row, so this is unreachable, but we keep the guard as
    // documentation of the invariant.
    LOCMM_CHECK(s_[0] | s_[1] | s_[2] | s_[3]);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1): 53 high bits, exactly representable.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    LOCMM_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n) by Lemire's multiply-shift rejection method --
  // unbiased and reproducible.
  std::uint64_t below(std::uint64_t n) {
    LOCMM_CHECK(n > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    LOCMM_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Derive an independent child generator (for per-agent or per-trial
  // streams that must not depend on iteration order).
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

// Fisher-Yates shuffle with our Rng (std::shuffle's result is unspecified
// across implementations).
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  auto n = last - first;
  for (auto i = n - 1; i > 0; --i) {
    auto j = static_cast<decltype(i)>(rng.below(static_cast<std::uint64_t>(i + 1)));
    using std::swap;
    swap(first[i], first[j]);
  }
}

}  // namespace locmm
