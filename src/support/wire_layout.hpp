// wire_layout.hpp -- the fixed 13-byte-per-node wire layout, shared between
// the real codec (dist/wire.hpp) and the byte accounting that quotes it
// (ViewTree::byte_size, Message::byte_size).
//
// One serialized view node is exactly kWireNodeBytes = 13 bytes:
//
//     [ header: 5 bytes LE ][ parent coefficient: 8 bytes, raw IEEE-754 LE ]
//
// with the 40 header bits packed as
//
//     bits  0..1   type               (kAgent / kConstraint / kObjective)
//     bits  2..11  degree             (10 bits; full degree in G)
//     bits 12..21  parent_port + 1    (10 bits; 0 = no parent, view roots)
//     bits 22..31  num_children       (10 bits; preorder subtrees following)
//     bits 32..39  degree - constraint_degree  (8 bits; agents only, the
//                  objective-port count |Kv|; MUST be 0 for relay nodes)
//
// Every header bit is significant -- there is no padding, so a single-bit
// corruption anywhere in a frame always lands in checksummed content.  The
// constraint degree rides as the *objective* port count because it is
// bounded by |Kv| (1 in special form) rather than by the degree, so 8 bits
// suffice where the raw constraint_degree would need the full degree width.
// Field widths are enforced at encode time (LOCMM_CHECK) and validated at
// decode time; the generator families top out at single-digit degrees, so
// the 10-bit ceilings are two orders of magnitude of headroom.
//
// This header is layering-neutral on purpose: graph/view_tree.hpp includes
// it for the per-node constant without depending on dist/.
#pragma once

#include <cstdint>

namespace locmm {

inline constexpr std::int64_t kWireNodeBytes = 13;
inline constexpr std::int64_t kWireHeaderBytes = 5;
inline constexpr std::int64_t kWireCoeffBytes = 8;
static_assert(kWireHeaderBytes + kWireCoeffBytes == kWireNodeBytes);

// Message frame envelopes (dist/wire.hpp).  A scalar frame is
// [kind:1][payload:8][checksum:8]; a view frame is
// [kind:1][count:4][count * 13 payload][checksum:8].  Silent ports
// (Message::Kind::kNone) are never transmitted and cost 0 bytes.
inline constexpr std::int64_t kScalarFrameBytes = 1 + 8 + 8;
inline constexpr std::int64_t kViewFrameOverheadBytes = 1 + 4 + 8;

constexpr std::int64_t view_frame_bytes(std::int64_t nodes) {
  return kViewFrameOverheadBytes + nodes * kWireNodeBytes;
}

// Header field widths and ceilings.
inline constexpr std::uint32_t kWireTypeBits = 2;
inline constexpr std::uint32_t kWireDegreeBits = 10;
inline constexpr std::uint32_t kWirePortBits = 10;
inline constexpr std::uint32_t kWireChildBits = 10;
inline constexpr std::uint32_t kWireObjDegBits = 8;
static_assert(kWireTypeBits + kWireDegreeBits + kWirePortBits +
                  kWireChildBits + kWireObjDegBits ==
              8 * kWireHeaderBytes);

inline constexpr std::uint32_t kWireMaxDegree = (1u << kWireDegreeBits) - 1;
inline constexpr std::uint32_t kWireMaxObjDeg = (1u << kWireObjDegBits) - 1;

// The unpacked header fields, pre-validation (decode hands these back raw;
// dist/wire.cpp applies the semantic checks).
struct WireHeader {
  std::uint32_t type = 0;
  std::uint32_t degree = 0;
  std::uint32_t pport1 = 0;   // parent_port + 1; 0 encodes "no parent"
  std::uint32_t nchild = 0;
  std::uint32_t objdeg = 0;   // degree - constraint_degree (agents)
};

constexpr std::uint64_t pack_wire_header(const WireHeader& h) {
  return static_cast<std::uint64_t>(h.type) |
         (static_cast<std::uint64_t>(h.degree) << kWireTypeBits) |
         (static_cast<std::uint64_t>(h.pport1)
          << (kWireTypeBits + kWireDegreeBits)) |
         (static_cast<std::uint64_t>(h.nchild)
          << (kWireTypeBits + kWireDegreeBits + kWirePortBits)) |
         (static_cast<std::uint64_t>(h.objdeg)
          << (kWireTypeBits + kWireDegreeBits + kWirePortBits +
              kWireChildBits));
}

constexpr WireHeader unpack_wire_header(std::uint64_t bits) {
  WireHeader h;
  h.type = static_cast<std::uint32_t>(bits & ((1u << kWireTypeBits) - 1));
  bits >>= kWireTypeBits;
  h.degree = static_cast<std::uint32_t>(bits & kWireMaxDegree);
  bits >>= kWireDegreeBits;
  h.pport1 = static_cast<std::uint32_t>(bits & ((1u << kWirePortBits) - 1));
  bits >>= kWirePortBits;
  h.nchild = static_cast<std::uint32_t>(bits & ((1u << kWireChildBits) - 1));
  bits >>= kWireChildBits;
  h.objdeg = static_cast<std::uint32_t>(bits & kWireMaxObjDeg);
  return h;
}

// Little-endian byte IO, alignment-free (frames land at arbitrary offsets
// inside transport buffers).
inline void store_le(std::uint8_t* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i)
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint64_t load_le(const std::uint8_t* in, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace locmm
