// stats.hpp -- streaming summary statistics for experiment tables.
#pragma once

#include <cstddef>
#include <vector>

namespace locmm {

// Welford-style streaming accumulator: numerically stable mean/variance,
// min/max, count.  Used by every bench that aggregates over trials.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact quantile of a sample (linear interpolation between order statistics,
// the "type 7" definition used by R and NumPy).  q in [0, 1].
double quantile(std::vector<double> sample, double q);

}  // namespace locmm
