#include "dist/fault.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "core/view_solver.hpp"
#include "dist/wire.hpp"
#include "graph/view_tree.hpp"
#include "support/hash.hpp"

namespace locmm {

namespace {

// Distinct decision streams per fault kind: the same (round, node, port,
// attempt) coordinates must answer independently for drop vs corrupt vs
// duplicate, so each query salts the seed differently before mixing.
constexpr std::uint64_t kDropSalt = 0x64726f7065640001ull;
constexpr std::uint64_t kCorruptSalt = 0x636f727275707402ull;
constexpr std::uint64_t kCorruptBitsSalt = 0x636f727242697403ull;
constexpr std::uint64_t kDuplicateSalt = 0x6475706c69636104ull;
constexpr std::uint64_t kReorderSalt = 0x72656f7264657205ull;

std::uint64_t decision_hash(std::uint64_t seed, std::uint64_t salt,
                            std::int32_t round, NodeId node, std::int32_t port,
                            std::int32_t attempt) {
  std::uint64_t h = mix64(seed ^ salt);
  h = hash_combine(h, static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(round)));
  h = hash_combine(h, static_cast<std::uint64_t>(node));
  h = hash_combine(h, static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(port)));
  h = hash_combine(h, static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(attempt)));
  return h;
}

// The top 53 bits as a uniform double in [0, 1).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void check_rate(double rate, const char* name) {
  LOCMM_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                  name << " must be in [0, 1], got " << rate);
}

}  // namespace

FaultPlan::FaultPlan(FaultSpec spec) : spec_(std::move(spec)) {
  check_rate(spec_.drop_rate, "drop_rate");
  check_rate(spec_.corrupt_rate, "corrupt_rate");
  check_rate(spec_.duplicate_rate, "duplicate_rate");
  check_rate(spec_.reorder_rate, "reorder_rate");
  LOCMM_CHECK_MSG(spec_.max_retransmits >= 0,
                  "max_retransmits must be >= 0, got "
                      << spec_.max_retransmits);
  for (const CrashEvent& ev : spec_.crashes) {
    LOCMM_CHECK_MSG(ev.round >= 1,
                    "crash round must be >= 1, got " << ev.round);
    LOCMM_CHECK_MSG(ev.restart_round < 0 || ev.restart_round >= ev.round,
                    "restart round " << ev.restart_round
                        << " precedes crash round " << ev.round);
  }
}

bool FaultPlan::any_faults() const {
  return spec_.drop_rate > 0.0 || spec_.corrupt_rate > 0.0 ||
         spec_.duplicate_rate > 0.0 || spec_.reorder_rate > 0.0 ||
         !spec_.crashes.empty();
}

bool FaultPlan::drops(std::int32_t round, NodeId node, std::int32_t port,
                      std::int32_t attempt) const {
  return spec_.drop_rate > 0.0 &&
         to_unit(decision_hash(spec_.seed, kDropSalt, round, node, port,
                               attempt)) < spec_.drop_rate;
}

bool FaultPlan::corrupts(std::int32_t round, NodeId node, std::int32_t port,
                         std::int32_t attempt) const {
  return spec_.corrupt_rate > 0.0 &&
         to_unit(decision_hash(spec_.seed, kCorruptSalt, round, node, port,
                               attempt)) < spec_.corrupt_rate;
}

std::uint64_t FaultPlan::corruption_bits(std::int32_t round, NodeId node,
                                         std::int32_t port) const {
  return decision_hash(spec_.seed, kCorruptBitsSalt, round, node, port, 0);
}

bool FaultPlan::duplicates(std::int32_t round, NodeId node,
                           std::int32_t port) const {
  return spec_.duplicate_rate > 0.0 &&
         to_unit(decision_hash(spec_.seed, kDuplicateSalt, round, node, port,
                               0)) < spec_.duplicate_rate;
}

bool FaultPlan::reorders(std::int32_t round, NodeId receiver) const {
  return spec_.reorder_rate > 0.0 &&
         to_unit(decision_hash(spec_.seed, kReorderSalt, round, receiver, 0,
                               0)) < spec_.reorder_rate;
}

const CrashEvent* FaultPlan::crash_at(NodeId node, std::int32_t round) const {
  for (const CrashEvent& ev : spec_.crashes)
    if (ev.node == node && ev.round == round) return &ev;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Checksums and the delivery-boundary validation.
// ---------------------------------------------------------------------------

std::uint64_t message_checksum(const Message& m) {
  // The checksum *is* the one the codec stamps into the frame: encode and
  // read the trailing field back, so this function can never drift from
  // what the transports verify on receive.  kNone encodes to zero bytes and
  // checksums as the empty frame.
  const std::vector<std::uint8_t> frame = encode_message(m);
  if (frame.empty()) return frame_checksum({});
  return load_le(frame.data() + frame.size() - 8, 8);
}

bool wire_view_well_formed(std::span<const WireNode> blob) {
  if (blob.empty()) return false;
  // Field sanity first, so the structural fold below never trusts a count
  // it has not vetted.  Every wire node hangs below an edge, so it has a
  // parent port within its own degree, and (non-backtracking rule) at most
  // degree - 1 preorder children.  constraint_degree partitions an agent's
  // ports and is zero for relays.
  for (const WireNode& w : blob) {
    const auto type_byte = static_cast<std::uint8_t>(w.type);
    if (type_byte > static_cast<std::uint8_t>(NodeType::kObjective))
      return false;
    if (w.degree < 1) return false;
    if (w.parent_port < 0 || w.parent_port >= w.degree) return false;
    if (w.num_children < 0 || w.num_children > w.degree - 1) return false;
    if (w.constraint_degree < 0 || w.constraint_degree > w.degree)
      return false;
    if (w.type != NodeType::kAgent && w.constraint_degree != 0) return false;
  }
  // Exactly one preorder subtree: the same reverse fold
  // ViewAssembler::assemble runs, but as a predicate -- this is what lets
  // the assemble CHECKs stay internal invariants (nothing malformed gets
  // past the delivery boundary to reach them).
  std::vector<std::int32_t> stack;
  for (std::int32_t i = static_cast<std::int32_t>(blob.size()) - 1; i >= 0;
       --i) {
    const std::int32_t nc = blob[static_cast<std::size_t>(i)].num_children;
    for (std::int32_t c = 0; c < nc; ++c) {
      if (stack.empty()) return false;
      stack.pop_back();
    }
    stack.push_back(i);
  }
  return stack.size() == 1;
}

bool message_well_formed(const Message& m) {
  switch (m.kind) {
    case Message::Kind::kNone: return m.view.empty();
    case Message::Kind::kScalar: return m.view.empty();
    case Message::Kind::kView: return wire_view_well_formed(m.view);
  }
  return false;  // corrupted kind byte
}

// ---------------------------------------------------------------------------
// run_fault_tolerant -- injection, recovery, degradation.
// ---------------------------------------------------------------------------

FaultTolerantResult run_fault_tolerant(SyncNetwork& net, const FaultPlan& plan,
                                       const SyncNetwork::ProgramFactory& make,
                                       std::int32_t schedule_rounds,
                                       std::int32_t R,
                                       const TSearchOptions& opt) {
  LOCMM_CHECK_MSG(R >= 2, "R must be >= 2");
  const CommGraph& g = net.graph();
  const auto sn = static_cast<std::size_t>(g.num_nodes());

  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(sn);
  for (NodeId u = 0; u < g.num_nodes(); ++u) programs.push_back(make(u));

  FaultTolerantResult res;
  FaultOutcome fo;
  res.stats = net.run_under_faults(programs, plan, schedule_rounds, fo);

  // Recovery: the frozen cone re-executes through the recorded history on a
  // fault-free control channel.  replay() serves the clean region from
  // cache and overwrites frozen rows with what those nodes truly compute,
  // so afterwards the history -- and every re-executed program's state --
  // is bitwise identical to a fault-free recorded run.  Lost nodes
  // re-execute too: that restores the *history* (so dynamic updates can
  // keep building on it); their agents are still flagged below, because
  // the physical node never produced those values.
  SyncNetwork::ReplayResult rep;
  std::vector<std::int64_t> executed_slot(sn, -1);
  if (!fo.clean()) {
    rep = net.replay(fo.frozen, make);
    res.recovered_nodes = static_cast<std::int64_t>(rep.executed.size());
    for (std::size_t i = 0; i < rep.executed.size(); ++i)
      executed_slot[static_cast<std::size_t>(rep.executed[i])] =
          static_cast<std::int64_t>(i);
    res.stats.fresh_messages += rep.stats.fresh_messages;
    res.stats.fresh_bytes += rep.stats.fresh_bytes;
    res.stats.replayed_messages += rep.stats.replayed_messages;
    res.stats.replayed_bytes += rep.stats.replayed_bytes;
    res.stats.max_message_bytes =
        std::max(res.stats.max_message_bytes, rep.stats.max_message_bytes);
    res.stats.messages =
        res.stats.fresh_messages + res.stats.replayed_messages;
    res.stats.bytes = res.stats.fresh_bytes + res.stats.replayed_bytes;
  }

  const std::int32_t num_agents = g.num_agents();
  res.x.assign(static_cast<std::size_t>(num_agents), 0.0);
  res.degraded.assign(static_cast<std::size_t>(num_agents), 0);
  const std::int32_t D = view_radius(R);
  ViewEvalScratch scratch;
  ViewTree view;
  for (std::int32_t v = 0; v < num_agents; ++v) {
    const NodeId node = g.agent_node(v);
    const auto svn = static_cast<std::size_t>(node);
    const auto sv = static_cast<std::size_t>(v);
    if (fo.lost[svn] != 0) {
      // Unrecoverable cone: the agent's true in-network value consumed a
      // message no retransmit could restore (or flowed through a node that
      // never came back).  Degrade to the engine-L evaluation of its
      // radius-D(R) ball -- the centrally-assisted fallback a deployment
      // runs for a dead sensor's neighbourhood.  Identical to engine M's
      // own value; within ~1 ulp of engine S's.
      res.degraded[sv] = 1;
      ++res.degraded_agents;
      ViewTree::build_into(g, node, D, view);
      res.x[sv] = solve_agent_from_view(view, R, opt, &scratch);
      continue;
    }
    const std::int64_t slot = executed_slot[svn];
    const NodeProgram* prog =
        slot >= 0 ? rep.programs[static_cast<std::size_t>(slot)].get()
                  : programs[svn].get();
    res.x[sv] = static_cast<const AgentNodeProgram*>(prog)->x();
  }
  res.fully_recovered = res.degraded_agents == 0;
  return res;
}

}  // namespace locmm
